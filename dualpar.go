// Package dualpar is the public entry point to the DualPar reproduction: a
// deterministic simulation of a parallel I/O cluster (PVFS2-style file
// system, MPI-IO, kernel disk schedulers, rotating disks) hosting MPI
// programs that run computation-driven (vanilla or collective I/O),
// prefetching (Strategy 2), or under DualPar's opportunistic data-driven
// execution (Zhang, Davis, Jiang — IPDPS 2012).
//
// A minimal run:
//
//	sim := dualpar.NewSimulation(dualpar.Defaults())
//	prog := sim.AddProgram(dualpar.MPIIOTest(64, 64<<20, false), dualpar.DualParForced, dualpar.ProgramOptions{})
//	sim.Run(time.Hour)
//	fmt.Println(prog.Throughput())
//
// The facade re-exports the pieces most users need; the full surface lives
// in the internal packages (see DESIGN.md for the map).
package dualpar

import (
	"io"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/disk"
	"dualpar/internal/fault"
	"dualpar/internal/iosched"
	"dualpar/internal/workloads"
)

// Mode selects a program's execution scheme.
type Mode = core.Mode

// Execution modes.
const (
	// Vanilla is computation-driven vanilla MPI-IO (the paper's
	// Strategy 1).
	Vanilla = core.ModeVanilla
	// Collective routes every I/O call through two-phase collective I/O.
	Collective = core.ModeCollective
	// Prefetching is application-level pre-execution prefetching with
	// immediate issue (the paper's Strategy 2).
	Prefetching = core.ModeStrategy2
	// DualPar is the full system: EMC switches the data-driven mode on and
	// off opportunistically.
	DualPar = core.ModeDualPar
	// DualParForced pins the data-driven mode on (the paper's
	// single-application runs).
	DualParForced = core.ModeDataDriven
)

// ParseMode converts a mode name ("vanilla", "collective", "strategy2",
// "dualpar", "data-driven") to a Mode.
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// Config bundles the cluster and DualPar configurations.
type Config struct {
	// Cluster describes the simulated testbed (servers, disks, network,
	// file system). See cluster.DefaultConfig for the paper's platform.
	Cluster cluster.Config
	// Core carries DualPar's tunables (cache quota, thresholds, slots).
	Core core.Config
}

// Defaults returns the paper's platform and prototype parameters: 9 data
// servers with two-disk RAIDs behind CFQ, 64 KB striping, Gigabit Ethernet,
// 1 MB per-process cache quota.
func Defaults() Config {
	return Config{
		Cluster: cluster.DefaultConfig(),
		Core:    core.DefaultConfig(),
	}
}

// WithSeed returns the config with a different simulation seed (runs are
// deterministic per seed).
func (c Config) WithSeed(seed int64) Config {
	c.Cluster.Seed = seed
	return c
}

// WithScheduler returns the config using the named disk scheduler on every
// data server: "cfq" (default), "deadline", "noop", or "anticipatory".
func (c Config) WithScheduler(name string) Config {
	switch name {
	case "deadline":
		c.Cluster.NewScheduler = func() iosched.Algorithm { return iosched.NewDeadline() }
	case "noop":
		c.Cluster.NewScheduler = func() iosched.Algorithm { return iosched.NewNOOP() }
	case "anticipatory":
		c.Cluster.NewScheduler = func() iosched.Algorithm { return iosched.NewAnticipatory() }
	default:
		c.Cluster.NewScheduler = nil // CFQ
	}
	return c
}

// WithSSD returns the config with flash storage instead of rotating RAIDs.
func (c Config) WithSSD() Config {
	sp := disk.DefaultSSDParams()
	c.Cluster.SSD = &sp
	return c
}

// WithTracing returns the config with blktrace-style logging enabled on
// every data server.
func (c Config) WithTracing() Config {
	c.Cluster.TraceServers = true
	return c
}

// WithFaults returns the config with a deterministic fault schedule (see
// fault.Parse for the spec grammar) threaded through the testbed, and the
// client and CRM retry watchdogs armed so degraded runs keep making
// progress. It panics on a malformed spec (a configuration bug).
func (c Config) WithFaults(spec string) Config {
	sch, err := fault.Parse(spec)
	if err != nil {
		panic(err)
	}
	c.Cluster.Faults = sch
	c.Cluster.PFS.RequestTimeout = 250 * time.Millisecond
	c.Cluster.PFS.MaxRetries = 4
	c.Cluster.PFS.RetryBackoff = 20 * time.Millisecond
	c.Core.CRMTimeout = 2 * time.Second
	c.Core.CRMMaxRetries = 3
	c.Core.CRMBackoff = 50 * time.Millisecond
	return c
}

// Simulation hosts programs on one simulated cluster.
type Simulation struct {
	cl     *cluster.Cluster
	runner *core.Runner
}

// NewSimulation builds the cluster and the DualPar runtime.
func NewSimulation(cfg Config) *Simulation {
	cl := cluster.New(cfg.Cluster)
	return &Simulation{cl: cl, runner: core.NewRunner(cl, cfg.Core)}
}

// Cluster exposes the underlying testbed (server stats, traces, network).
func (s *Simulation) Cluster() *cluster.Cluster { return s.cl }

// ProgramOptions tunes one program's placement and start time.
type ProgramOptions struct {
	// RanksPerNode places this many ranks per compute node (default 8).
	RanksPerNode int
	// FirstNodeIndex offsets the program's first compute node.
	FirstNodeIndex int
	// StartAt delays the program's start in virtual time.
	StartAt time.Duration
}

// Program is a running (or finished) program instance.
type Program struct {
	run *core.ProgramRun
}

// AddProgram registers a workload under an execution mode. Call before Run.
func (s *Simulation) AddProgram(w workloads.Program, mode Mode, opts ProgramOptions) *Program {
	return &Program{run: s.runner.Add(w, mode, core.AddOptions{
		RanksPerNode:   opts.RanksPerNode,
		FirstNodeIndex: opts.FirstNodeIndex,
		StartAt:        opts.StartAt,
	})}
}

// Run executes the simulation until every program finishes or maxTime of
// virtual time elapses; it reports whether everything finished.
func (s *Simulation) Run(maxTime time.Duration) bool { return s.runner.Run(maxTime) }

// Elapsed is the program's measured execution time (zero until finished).
func (p *Program) Elapsed() time.Duration { return p.run.Elapsed() }

// Bytes is the data volume the program moved.
func (p *Program) Bytes() int64 { return p.run.Instr().TotalBytes() }

// Throughput is the program's data volume over its execution time, MB/s.
func (p *Program) Throughput() float64 {
	e := p.run.Elapsed()
	if e <= 0 {
		return 0
	}
	return float64(p.Bytes()) / (1 << 20) / e.Seconds()
}

// IORatio is the mean fraction of rank time spent in I/O, the paper's I/O
// intensity metric.
func (p *Program) IORatio() float64 { return p.run.Instr().IORatio() }

// DataDriven reports whether the program is currently in data-driven mode.
func (p *Program) DataDriven() bool { return p.run.DataDriven() }

// ModeSwitches returns the (time, on/off) log of data-driven transitions.
func (p *Program) ModeSwitches() []core.ModeSwitch { return p.run.ModeSwitches }

// Run gives access to the full internal state for advanced inspection.
func (p *Program) Run() *core.ProgramRun { return p.run }

// Workload constructors for the paper's benchmarks, sized by total bytes.

// Demo is the paper's §II synthetic program (8 procs, 16 segments per call).
func Demo(procs int, fileBytes, segBytes int64, computePerCall time.Duration) workloads.Demo {
	d := workloads.DefaultDemo()
	d.Procs = procs
	d.FileBytes = fileBytes
	d.SegBytes = segBytes
	d.ComputePerCall = computePerCall
	return d
}

// MPIIOTest is PVFS2's sequential benchmark.
func MPIIOTest(procs int, fileBytes int64, write bool) workloads.MPIIOTest {
	m := workloads.DefaultMPIIOTest()
	m.Procs = procs
	m.FileBytes = fileBytes
	m.Write = write
	return m
}

// IOR is ior-mpi-io: per-process scopes, scattered across the servers.
func IOR(procs int, fileBytes int64, write bool) workloads.IOR {
	i := workloads.DefaultIOR()
	i.Procs = procs
	i.FileBytes = fileBytes
	i.Write = write
	return i
}

// Noncontig is Argonne's column-access benchmark.
func Noncontig(procs int, fileBytes int64, write bool) workloads.Noncontig {
	n := workloads.DefaultNoncontig()
	n.Procs = procs
	n.FileBytes = fileBytes
	n.Write = write
	return n
}

// BTIO is the NAS BT-IO solver write phase.
func BTIO(procs int, totalBytes int64, steps int) workloads.BTIO {
	b := workloads.DefaultBTIO()
	b.Procs = procs
	b.TotalBytes = totalBytes
	b.Steps = steps
	return b
}

// HPIO is the Northwestern/Sandia region benchmark.
func HPIO(procs int, regions, regionBytes, spacing int64) workloads.HPIO {
	h := workloads.DefaultHPIO()
	h.Procs = procs
	h.RegionCount = regions
	h.RegionBytes = regionBytes
	h.RegionSpacing = spacing
	return h
}

// S3asim is the sequence-similarity search workload.
func S3asim(procs, queries int) workloads.S3asim {
	s := workloads.DefaultS3asim()
	s.Procs = procs
	s.Queries = queries
	return s
}

// ReplayTrace parses a CSV I/O trace (see workloads.ParseTrace for the
// format) into a replayable program, so real applications' recorded I/O can
// be evaluated under every execution mode.
func ReplayTrace(name string, r io.Reader) (*workloads.Replay, error) {
	return workloads.ParseTrace(name, r)
}

// Checkpoint is the PLFS-style N-1 checkpoint pattern: every rank writes an
// unaligned block of one shared file per barrier-synchronized checkpoint.
func Checkpoint(procs, checkpoints int, blockBytes int64) workloads.Checkpoint {
	c := workloads.DefaultCheckpoint()
	c.Procs = procs
	c.Checkpoints = checkpoints
	c.BlockBytes = blockBytes
	return c
}
