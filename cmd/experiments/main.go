// Command experiments regenerates every table and figure of the paper's
// evaluation. Results print as aligned tables; -out writes CSV files (and
// LBN trace series for the figure experiments) into a directory.
//
// Usage:
//
//	experiments [-run all|fig1a|fig1b|fig1cd|fig3|fig4|fig5|table2|fig6|fig7|fig8|table3|straggler|engines|...]
//	            [-quick] [-seed N] [-out DIR] [-q] [-parallel N] [-report]
//	            [-engine extent|bptree|lsm] [-cpuprofile FILE] [-memprofile FILE]
//
// Sweeps run across GOMAXPROCS workers by default; -parallel 1 falls back to
// the serial path. Output tables are byte-identical either way (the sweep
// engine merges cells in canonical order); only stderr progress-line
// interleaving differs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"dualpar/internal/fs"
	"dualpar/internal/harness"
	"dualpar/internal/metrics"
)

var experiments = map[string]func(harness.Opts) *harness.Result{
	"fig1a":  harness.Fig1a,
	"fig1b":  harness.Fig1b,
	"fig1cd": harness.Fig1cd,
	"fig3":   harness.Fig3,
	"fig4":   harness.Fig4,
	"fig5":   harness.Fig5,
	"table2": harness.Table2,
	"fig6":   harness.Fig6,
	"fig7":   harness.Fig7,
	"fig8":   harness.Fig8,
	"table3": harness.Table3,

	"ablate-sched":     harness.AblateScheduler,
	"ablate-t":         harness.AblateTImprovement,
	"ablate-hole":      harness.AblateHoleThreshold,
	"ablate-chunk":     harness.AblateChunkSize,
	"ablate-origins":   harness.AblateDiskOrigins,
	"ablate-cb":        harness.AblateCollectiveBuffer,
	"ablate-ssd":       harness.AblateSSD,
	"ablate-writepath": harness.AblateWritePath,
	"ablate-s2window":  harness.AblateStrategy2Window,
	"ablate-servers":   harness.AblateServers,
	"ablate-pipeline":  harness.AblatePipeline,

	"straggler":    harness.Straggler,
	"availability": harness.Availability,
	"checkpoint":   harness.Checkpoint,
	"multitenant":  harness.Multitenant,
	"engines":      harness.Engines,
}

var order = []string{
	"fig1a", "fig1b", "fig1cd", "fig3", "fig4", "fig5", "table2", "fig6", "fig7", "fig8", "table3",
	"ablate-sched", "ablate-t", "ablate-hole", "ablate-chunk", "ablate-origins", "ablate-cb", "ablate-ssd",
	"ablate-writepath", "ablate-s2window", "ablate-servers", "ablate-pipeline",
	"straggler", "availability", "checkpoint", "multitenant", "engines",
}

func main() {
	run := flag.String("run", "all", "experiment id or 'all'")
	quick := flag.Bool("quick", false, "reduced workload sizes (smoke test)")
	seed := flag.Int64("seed", 1, "simulation seed")
	out := flag.String("out", "", "directory for CSV outputs")
	quiet := flag.Bool("q", false, "suppress progress lines")
	parallel := flag.Int("parallel", 0, "max concurrent sweep cells (0 = GOMAXPROCS, 1 = serial)")
	audit := flag.Bool("audit", false, "arm the invariant oracles on every run (fail loudly with a reproducer artifact)")
	report := flag.Bool("report", false, "attach tracing to every run and print time-attribution reports after the tables")
	engine := flag.String("engine", "", "data-server storage engine: extent|bptree|lsm (default extent; the engines experiment sweeps all three regardless)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	validEngine := *engine == ""
	for _, e := range fs.Engines() {
		if *engine == e {
			validEngine = true
		}
	}
	if !validEngine {
		fmt.Fprintf(os.Stderr, "unknown engine %q; known: %s\n", *engine, strings.Join(fs.Engines(), " "))
		os.Exit(2)
	}

	harness.SetAudit(*audit)
	harness.SetReport(*report)
	harness.SetEngine(*engine)

	var log io.Writer = os.Stderr
	if *quiet {
		log = nil
	}
	opts := harness.Opts{Quick: *quick, Seed: *seed, Log: log, Parallel: *parallel}

	var ids []string
	if *run == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*run, ",") {
			if _, ok := experiments[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, strings.Join(order, " "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	// Experiments run through the sweep pool (whole experiments are
	// themselves independent cells); results print afterwards in request
	// order, so stdout is byte-identical at any parallelism.
	results := make([]*harness.Result, len(ids))
	cells := make([]harness.Cell, len(ids))
	for i, id := range ids {
		cells[i] = harness.Cell{Key: id, Run: func() { results[i] = experiments[id](opts) }}
	}
	if err := harness.RunCells(context.Background(), *parallel, cells); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, res := range results {
		fmt.Printf("== %s ==\n", res.Title)
		for _, n := range res.Notes {
			fmt.Printf("   note: %s\n", n)
		}
		fmt.Println(res.Table.String())
		for _, s := range res.Series {
			fmt.Print(metrics.ASCIIChart(s, 72, 8))
		}
		if *out != "" {
			if err := writeResult(*out, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if *report {
		// Reports drain sorted by run key, so this section is byte-identical
		// at any -parallel setting.
		for _, rr := range harness.DrainReports() {
			fmt.Printf("== report: %s ==\n", rr.Key)
			if err := rr.Report.RenderText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if !rr.Report.Conserved() {
				fmt.Fprintf(os.Stderr, "run %s: attribution violates conservation (max residual %dns)\n",
					rr.Key, int64(rr.Report.MaxResidual))
				os.Exit(1)
			}
			fmt.Println()
		}
	}
}

func writeResult(dir string, res *harness.Result) error {
	f, err := os.Create(filepath.Join(dir, res.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Table.WriteCSVTable(f); err != nil {
		return err
	}
	if len(res.Series) > 0 {
		sf, err := os.Create(filepath.Join(dir, res.ID+"-series.csv"))
		if err != nil {
			return err
		}
		defer sf.Close()
		if err := metrics.WriteCSV(sf, res.Series...); err != nil {
			return err
		}
	}
	return nil
}
