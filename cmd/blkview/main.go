// Command blkview runs a workload with blktrace-style disk tracing enabled
// and dumps the access log of one data server — the raw data behind the
// paper's Figures 1(c,d) and 6 — as CSV or a terminal scatter plot.
//
// Usage:
//
//	blkview -workload mpi-io-test -mode vanilla -instances 2 [-server 0]
//	        [-from 1.0 -to 2.0] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/disk"
	"dualpar/internal/workloads"
)

func main() {
	workload := flag.String("workload", "mpi-io-test", "mpi-io-test|demo|noncontig|hpio")
	mode := flag.String("mode", "vanilla", "vanilla|collective|strategy2|dualpar|data-driven")
	instances := flag.Int("instances", 1, "concurrent program instances")
	mbytes := flag.Int64("mb", 32, "data volume per instance in MiB")
	server := flag.Int("server", 0, "data server index to inspect")
	from := flag.Float64("from", 0, "window start (seconds)")
	to := flag.Float64("to", 0, "window end (seconds; 0 = whole run)")
	csvPath := flag.String("csv", "", "write CSV here instead of plotting")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	ccfg := cluster.DefaultConfig()
	ccfg.Seed = *seed
	ccfg.TraceServers = true
	cl := cluster.New(ccfg)
	runner := core.NewRunner(cl, core.DefaultConfig())
	m, err := core.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for i := 0; i < *instances; i++ {
		prog, err := buildWorkload(*workload, i, *mbytes<<20)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runner.Add(prog, m, core.AddOptions{RanksPerNode: 8})
	}
	if !runner.Run(24 * time.Hour) {
		fmt.Fprintln(os.Stderr, "simulation did not finish")
		os.Exit(1)
	}

	tr := cl.Stores[*server].Device().Trace()
	entries := tr.Entries()
	if *to > 0 {
		entries = tr.Window(secDur(*from), secDur(*to))
	} else if *from > 0 {
		entries = tr.Window(secDur(*from), time.Duration(1<<62))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Fprintln(f, "time_s,lbn,sectors,rw")
		for _, e := range entries {
			rw := "R"
			if e.Write {
				rw = "W"
			}
			fmt.Fprintf(f, "%.6f,%d,%d,%s\n", e.At.Seconds(), e.LBN, e.Sectors, rw)
		}
		fmt.Printf("wrote %d entries to %s\n", len(entries), *csvPath)
		return
	}
	plot(entries)
	fmt.Printf("entries: %d   monotonicity: %.2f   mean seek: %.0f sectors\n",
		len(entries), disk.Monotonicity(entries), disk.MeanSeek(entries))
}

func secDur(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// plot renders LBN-vs-time as a terminal scatter, the shape the paper's
// blktrace figures show.
func plot(entries []disk.Entry) {
	if len(entries) == 0 {
		fmt.Println("(no trace entries)")
		return
	}
	const width, height = 78, 20
	minT, maxT := entries[0].At, entries[len(entries)-1].At
	minL, maxL := entries[0].LBN, entries[0].LBN
	for _, e := range entries {
		if e.LBN < minL {
			minL = e.LBN
		}
		if e.LBN > maxL {
			maxL = e.LBN
		}
	}
	if maxT == minT {
		maxT = minT + 1
	}
	if maxL == minL {
		maxL = minL + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, e := range entries {
		x := int(float64(e.At-minT) / float64(maxT-minT) * float64(width-1))
		y := int(float64(e.LBN-minL) / float64(maxL-minL) * float64(height-1))
		ch := byte('r')
		if e.Write {
			ch = 'w'
		}
		grid[height-1-y][x] = ch
	}
	fmt.Printf("LBN %d..%d over %.3fs..%.3fs\n", minL, maxL, minT.Seconds(), maxT.Seconds())
	for _, row := range grid {
		fmt.Printf("|%s|\n", row)
	}
}

func buildWorkload(name string, instance int, bytes int64) (workloads.Program, error) {
	switch name {
	case "mpi-io-test":
		m := workloads.DefaultMPIIOTest()
		m.FileBytes = bytes
		m.FileName = fmt.Sprintf("mpiio-%d.dat", instance)
		return m, nil
	case "demo":
		d := workloads.DefaultDemo()
		d.FileBytes = bytes
		d.FileName = fmt.Sprintf("demo-%d.dat", instance)
		return d, nil
	case "noncontig":
		n := workloads.DefaultNoncontig()
		n.FileBytes = bytes
		n.FileName = fmt.Sprintf("noncontig-%d.dat", instance)
		return n, nil
	case "hpio":
		h := workloads.DefaultHPIO()
		h.RegionCount = bytes / h.RegionBytes
		h.FileName = fmt.Sprintf("hpio-%d.dat", instance)
		return h, nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}
