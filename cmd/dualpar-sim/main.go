// Command dualpar-sim runs one benchmark on the simulated cluster under a
// chosen execution scheme and prints the measured outcome: elapsed time,
// throughput, disk efficiency, cache behavior, and mode switches.
//
// Usage:
//
//	dualpar-sim -workload mpi-io-test -mode dualpar -procs 64 -mb 128 [-write]
//	            [-servers 9] [-sched cfq|deadline|noop] [-seed N]
//	            [-trace out.json] [-stats] [-report] [-faults SPEC] [-replicas N]
//
// -trace writes a Chrome trace-event JSON of every I/O request's journey
// through the stack (load it at ui.perfetto.dev); -stats prints the metrics
// registry (latency histograms, counters, gauges) after the run; -report
// prints the time-attribution report (phase breakdown, per-server
// utilization, critical paths — see dualpar-analyze for offline use on a
// saved -trace file).
//
// -faults injects a deterministic fault schedule (see fault.Parse), e.g.
// "disk:1*10@5s-30s;crash:2@5s-20s;drop:102:0.2@0s-10s", and arms the
// client and CRM retry watchdogs; fault windows, drops, retries, failovers,
// and rebuild progress appear as instants in -trace output.
//
// -replicas N stripes each file across N replicas (rack-stride placement);
// reads fail over between replicas and writes complete at a majority quorum
// when crash faults are scheduled.
//
// -tenants SPEC switches to multi-tenant mode: instead of one workload, a
// seeded generator launches each tenant's stream of small jobs onto one
// shared cluster and the cluster-wide arbiter rations data-driven grants
// under the spec's policy (see tenant.ParseSpec), e.g.
// "tenants:4,arrival=poisson:12,policy=fair,grants=12,cache=64M,jobs=40,ranks=2,hot=0x6".
// The run prints per-tenant job counts, grant/deny/revoke totals, and
// elapsed-time percentiles; -workload and -mode are ignored.
//
// -burst SPEC adds a burst-buffer write log on every compute node:
// epoch-tagged checkpoint writes (ckpt-n1/ckpt-nn workloads) absorb into
// the node-local log at log speed and drain to the PFS in the background;
// an epoch is committed once every rank has sealed it. SPEC is "on" for
// the defaults or "cap=64M,absorb=400M,drain=100M,seal=500us" form (see
// burst.ParseSpec). "crash:client<rank>@T" in -faults crash-stops the job:
// unsealed log records are lost, sealed ones replay on recovery.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"dualpar/internal/burst"
	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/fault"
	"dualpar/internal/iosched"
	"dualpar/internal/obs"
	"dualpar/internal/obs/analyze"
	"dualpar/internal/sim"
	"dualpar/internal/tenant"
	"dualpar/internal/workloads"
)

func main() {
	workload := flag.String("workload", "mpi-io-test", "demo|mpi-io-test|hpio|ior-mpi-io|noncontig|btio|s3asim|checkpoint|ckpt-n1|ckpt-nn|depreader")
	mode := flag.String("mode", "vanilla", "vanilla|collective|strategy2|dualpar|data-driven")
	procs := flag.Int("procs", 64, "MPI processes")
	mbytes := flag.Int64("mb", 64, "data volume in MiB")
	write := flag.Bool("write", false, "write instead of read (where applicable)")
	servers := flag.Int("servers", 9, "data servers")
	sched := flag.String("sched", "cfq", "disk scheduler: cfq|deadline|noop|anticipatory")
	engine := flag.String("engine", "", "data-server storage engine: extent|bptree|lsm (default extent)")
	seed := flag.Int64("seed", 1, "simulation seed")
	emclog := flag.Bool("emclog", false, "print EMC's per-slot decisions")
	slot := flag.Duration("slot", 0, "EMC sampling slot (default 1s)")
	traceOut := flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to this file")
	stats := flag.Bool("stats", false, "print the metrics registry after the run")
	report := flag.Bool("report", false, "print the time-attribution report (phases, utilization, critical paths)")
	faults := flag.String("faults", "", "fault schedule, e.g. 'disk:1*10@5s-30s;crash:2@5s-20s;drop:102:0.2'")
	replicas := flag.Int("replicas", 1, "data replicas per stripe (1 = unreplicated)")
	audit := flag.Bool("audit", false, "arm the invariant oracles; violations exit 1 with a reproducer artifact")
	burstSpec := flag.String("burst", "", "per-node burst-buffer write log: 'on' for defaults or 'cap=64M,absorb=400M,drain=100M,seal=500us'")
	tenants := flag.String("tenants", "", "multi-tenant mode: tenancy spec (see tenant.ParseSpec), e.g. 'tenants:4,arrival=poisson:12,policy=fair,grants=12,jobs=40,ranks=2'")
	flag.Parse()

	if *tenants != "" {
		if err := runTenants(*tenants, *seed, *slot, *audit, *engine); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	prog, err := buildWorkload(*workload, *procs, *mbytes<<20, *write)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	m, err := core.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ccfg := cluster.DefaultConfig()
	ccfg.DataServers = *servers
	ccfg.Seed = *seed
	ccfg.PFS.Replicas = *replicas
	ccfg.FS.Engine = *engine
	if err := ccfg.FS.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch *sched {
	case "cfq":
	case "deadline":
		ccfg.NewScheduler = func() iosched.Algorithm { return iosched.NewDeadline() }
	case "noop":
		ccfg.NewScheduler = func() iosched.Algorithm { return iosched.NewNOOP() }
	case "anticipatory":
		ccfg.NewScheduler = func() iosched.Algorithm { return iosched.NewAnticipatory() }
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *sched)
		os.Exit(2)
	}
	var collector *obs.Collector
	if *traceOut != "" || *stats || *report {
		collector = obs.NewCollector()
		ccfg.Obs = collector
	}
	dcfg := core.DefaultConfig()
	if *faults != "" {
		sch, err := fault.Parse(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ccfg.Faults = sch
		// Arm the tolerance watchdogs at both layers: fine-grained request
		// timeouts in the PFS client, the coarser batch watchdog in CRM.
		ccfg.PFS.RequestTimeout = 250 * time.Millisecond
		ccfg.PFS.MaxRetries = 4
		ccfg.PFS.RetryBackoff = 20 * time.Millisecond
		dcfg.CRMTimeout = 2 * time.Second
		dcfg.CRMMaxRetries = 3
		dcfg.CRMBackoff = 50 * time.Millisecond
	}
	if *burstSpec != "" {
		spec := *burstSpec
		if spec == "on" || spec == "default" {
			spec = ""
		}
		bc, err := burst.ParseSpec(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ccfg.Burst = &bc
	}
	cl := cluster.New(ccfg)
	if *slot > 0 {
		dcfg.SlotEvery = *slot
	}
	dcfg.Audit = *audit
	runner := core.NewRunner(cl, dcfg)
	pr := runner.Add(prog, m, core.AddOptions{RanksPerNode: 8})
	if !runner.Run(24 * time.Hour) {
		fmt.Fprintln(os.Stderr, "simulation did not finish within 24 simulated hours")
		os.Exit(1)
	}
	if err := runner.AuditErr(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	bytes := pr.Instr().TotalBytes()
	elapsed := pr.Elapsed()
	rwLabel := rw(*write)
	switch *workload {
	case "btio", "checkpoint", "ckpt-n1", "ckpt-nn":
		rwLabel = "write" // these model write phases regardless of -write
	case "s3asim":
		rwLabel = "read+write"
	}
	fmt.Printf("workload:    %s (%d procs, %s)\n", prog.Name(), prog.Ranks(), rwLabel)
	fmt.Printf("mode:        %s\n", m)
	fmt.Printf("elapsed:     %.3f s (simulated)\n", elapsed.Seconds())
	fmt.Printf("volume:      %.1f MiB\n", float64(bytes)/(1<<20))
	fmt.Printf("throughput:  %.1f MB/s\n", float64(bytes)/(1<<20)/elapsed.Seconds())
	st := cl.ServerStats()
	fmt.Printf("disk:        %d accesses, %d seeks, avg seek %.0f sectors\n",
		st.Accesses, st.Seeks, st.AvgSeekDistance())
	fmt.Printf("network:     %.1f MiB on the wire, %d messages\n",
		float64(cl.Net.BytesSent())/(1<<20), cl.Net.Messages())
	if *faults != "" {
		fmt.Printf("faults:      %d windows, %d messages dropped, %d client retries, %d read failovers\n",
			len(ccfg.Faults.Windows), cl.Net.Drops(), cl.FS.Retries(), cl.FS.Failovers())
	}
	if c := pr.Cache(); c != nil {
		fmt.Printf("cache:       %d gets, %d hits, %d evictions\n", c.Gets(), c.Hits(), c.Evictions())
	}
	if tier := cl.Burst(); tier != nil {
		s := tier.Stats()
		var meanLag time.Duration
		if s.DrainOps > 0 {
			meanLag = s.DrainLag / time.Duration(s.DrainOps)
		}
		fmt.Printf("burst:       %.1f MiB absorbed, %.1f MiB drained, %.1f MiB replayed, %.1f MiB discarded, stall %.1f ms, mean drain lag %.1f ms\n",
			float64(s.Absorbed)/(1<<20), float64(s.Drained)/(1<<20),
			float64(s.Replayed)/(1<<20), float64(s.Discarded)/(1<<20),
			s.Stall.Seconds()*1e3, meanLag.Seconds()*1e3)
		if err := tier.Err(); err != nil {
			fmt.Printf("burst error: %v\n", err)
		}
	}
	if pr.Crashed() {
		fmt.Printf("crash:       client crash at %.2fs; last committed epoch %d\n",
			pr.EndedAt.Seconds(), pr.CommittedEpoch())
	} else if e := pr.CommittedEpoch(); e > 0 {
		fmt.Printf("epochs:      %d committed\n", e)
	}
	if *audit {
		fmt.Printf("audit:       all %d oracles held\n", runner.Auditor().Oracles())
	}
	if *emclog {
		fmt.Println("EMC decisions (t, io_ratio, seek/req improvement, data-driven):")
		for _, d := range runner.EMCDecisions() {
			fmt.Printf("  %6.2fs  io=%.2f  imp=%6.1f  dd=%v\n",
				d.At.Seconds(), d.IORatio, d.Improvement, d.DataDriven)
		}
	}
	if len(pr.ModeSwitches) > 0 {
		fmt.Printf("mode log:    ")
		for _, sw := range pr.ModeSwitches {
			state := "off"
			if sw.On {
				state = "ON"
			}
			fmt.Printf("[%.2fs %s] ", sw.At.Seconds(), state)
		}
		fmt.Println()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := collector.WriteTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace:       %s (%d spans, %d instants; open at ui.perfetto.dev)\n",
			*traceOut, len(collector.Spans()), len(collector.Instants()))
	}
	var rep *analyze.Report
	if *report {
		// Register the phase histograms before the summary prints so -stats
		// shows per-request phase latencies alongside the raw stage metrics.
		rep = analyze.FromCollector(collector, analyze.Options{})
		rep.RegisterMetrics(collector.Metrics(), analyze.AttributeAll(collector.Spans()))
	}
	if *stats {
		fmt.Println()
		if err := collector.WriteSummary(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if rep != nil {
		fmt.Println()
		if err := rep.RenderText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !rep.Conserved() {
			fmt.Fprintf(os.Stderr, "time attribution violates conservation (max residual %dns)\n",
				int64(rep.MaxResidual))
			os.Exit(1)
		}
	}
}

// runTenants drives the multi-tenant mode: the seeded generator's full job
// schedule runs on one shared tenanted cluster (open-loop kinds submit at
// their arrival times from a single driver proc; the closed-loop kind
// spawns one proc per tenant worker), then per-tenant outcomes print as a
// small table. Deterministic per spec+seed.
func runTenants(spec string, seed int64, slot time.Duration, audit bool, engine string) error {
	tc, err := tenant.ParseSpec(spec)
	if err != nil {
		return err
	}
	tc.Seed = seed
	ccfg := cluster.DefaultConfig()
	ccfg.Seed = seed
	ccfg.Tenancy = &tc
	ccfg.FS.Engine = engine
	if err := ccfg.FS.Validate(); err != nil {
		return err
	}
	cl := cluster.New(ccfg)
	dcfg := core.DefaultConfig()
	dcfg.SlotEvery = 250 * time.Millisecond
	if slot > 0 {
		dcfg.SlotEvery = slot
	}
	dcfg.Audit = audit
	runner := core.NewRunner(cl, dcfg)
	sched := tenant.Schedule(tc)
	runs := make([]*core.ProgramRun, len(sched))
	addJob := func(p *sim.Proc, i int, onDone func()) {
		j := sched[i]
		d := workloads.DefaultDemo()
		d.Procs = tc.Ranks
		d.SegBytes = 4 << 10
		d.SegsPerCall = 4
		d.FileName = fmt.Sprintf("t%dj%d.dat", j.Tenant, j.Index)
		switch j.Class {
		case "s":
			d.FileBytes = 96 << 10
		case "m":
			d.FileBytes = 192 << 10
		default:
			d.FileBytes = 384 << 10
		}
		m := core.ModeVanilla
		if j.Mode == "dualpar" {
			m = core.ModeDataDriven
		}
		runs[i] = runner.Add(d, m, core.AddOptions{
			RanksPerNode:   tc.Ranks,
			FirstNodeIndex: i % ccfg.ComputeNodes,
			StartAt:        p.Now(),
			Tenant:         j.Tenant,
			OnDone:         onDone,
		})
	}
	if tc.Arrival.Kind == tenant.ArrivalClosed {
		byWorker := make(map[[2]int][]int)
		for i, j := range sched {
			k := [2]int{j.Tenant, j.Worker}
			byWorker[k] = append(byWorker[k], i)
		}
		for t := 0; t < tc.Tenants; t++ {
			for w := 0; w < tc.Arrival.Workers; w++ {
				idxs := byWorker[[2]int{t, w}]
				cl.K.Spawn(fmt.Sprintf("tenant%d/worker%d", t, w), func(p *sim.Proc) {
					for _, i := range idxs {
						sig := cl.K.NewSignal()
						done := false
						addJob(p, i, func() { done = true; sig.Broadcast() })
						for !done {
							sig.Wait(p)
						}
						if tc.Arrival.Think > 0 {
							p.Sleep(tc.Arrival.Think)
						}
					}
				})
			}
		}
	} else {
		cl.K.Spawn("tenant/arrivals", func(p *sim.Proc) {
			for i := range sched {
				if at := sched[i].At; at > p.Now() {
					p.Sleep(at - p.Now())
				}
				addJob(p, i, nil)
			}
		})
	}
	finished := runner.Run(24 * time.Hour)
	if err := runner.AuditErr(); err != nil {
		return err
	}
	arb := cl.Arbiter()
	fmt.Printf("tenancy:     %s\n", tc)
	fmt.Printf("jobs:        %d across %d tenants", len(sched), tc.Tenants)
	if !finished {
		fmt.Printf(" (some unfinished at 24h budget)")
	}
	fmt.Println()
	var makespan time.Duration
	fmt.Println("tenant  jobs  granted  denied  revoked  mean_ms    p99_ms")
	for t := 0; t < tc.Tenants; t++ {
		var els []time.Duration
		var sum time.Duration
		for i, pr := range runs {
			if pr == nil || sched[i].Tenant != t || !pr.Done {
				continue
			}
			els = append(els, pr.Elapsed())
			sum += pr.Elapsed()
			if pr.EndedAt > makespan {
				makespan = pr.EndedAt
			}
		}
		var mean, p99 time.Duration
		if len(els) > 0 {
			mean = sum / time.Duration(len(els))
			sort.Slice(els, func(i, k int) bool { return els[i] < els[k] })
			idx := int(math.Ceil(0.99*float64(len(els)))) - 1
			if idx < 0 {
				idx = 0
			}
			p99 = els[idx]
		}
		fmt.Printf("%-6d  %-4d  %-7d  %-6d  %-7d  %-9.1f  %-9.1f\n",
			t, len(els), arb.Grants(t), arb.Denies(t), arb.Revokes(t),
			mean.Seconds()*1e3, p99.Seconds()*1e3)
	}
	fmt.Printf("makespan:    %.3f s (simulated)\n", makespan.Seconds())
	if audit {
		fmt.Printf("audit:       all %d oracles held\n", runner.Auditor().Oracles())
	}
	return nil
}

func rw(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

func buildWorkload(name string, procs int, bytes int64, write bool) (workloads.Program, error) {
	switch name {
	case "demo":
		d := workloads.DefaultDemo()
		d.Procs = procs
		d.FileBytes = bytes
		d.Write = write
		return d, nil
	case "mpi-io-test":
		m := workloads.DefaultMPIIOTest()
		m.Procs = procs
		m.FileBytes = bytes
		m.Write = write
		return m, nil
	case "hpio":
		h := workloads.DefaultHPIO()
		h.Procs = procs
		h.RegionCount = bytes / h.RegionBytes
		h.Write = write
		return h, nil
	case "ior-mpi-io":
		i := workloads.DefaultIOR()
		i.Procs = procs
		i.FileBytes = bytes
		i.Write = write
		return i, nil
	case "noncontig":
		n := workloads.DefaultNoncontig()
		n.Procs = procs
		n.FileBytes = bytes
		n.Write = write
		return n, nil
	case "btio":
		// BT-IO's canonical phase writes the solution array; -write is
		// implied. (Set Read in code to model the verification read-back.)
		b := workloads.DefaultBTIO()
		b.Procs = procs
		b.TotalBytes = bytes
		return b, nil
	case "s3asim":
		s := workloads.DefaultS3asim()
		s.Procs = procs
		return s, nil
	case "checkpoint":
		c := workloads.DefaultCheckpoint()
		c.Procs = procs
		c.Checkpoints = int(bytes / (int64(procs) * c.BlockBytes))
		if c.Checkpoints < 1 {
			c.Checkpoints = 1
		}
		return c, nil
	case "ckpt-n1", "ckpt-nn":
		// Epoch checkpointing with per-epoch seals (N-1 shared file or N-N
		// per-rank files); -mb sets the total volume across epochs.
		c := workloads.DefaultEpochCheckpoint(name == "ckpt-n1")
		c.Procs = procs
		epochs := int(bytes / (int64(procs) * c.BlockBytes))
		if epochs < 1 {
			epochs = 1
		}
		c.Epochs = epochs
		return c, nil
	case "depreader":
		d := workloads.DefaultDependentReader()
		d.Procs = procs
		d.FileBytes = bytes
		return d, nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}
