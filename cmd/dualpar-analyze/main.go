// Command dualpar-analyze explains where a finished run's simulated time
// went. It reads a Chrome trace-event JSON file written by dualpar-sim
// -trace (or any obs.WriteTrace output) and prints the time-attribution
// report: per-phase breakdown with a conservation check, per-server
// utilization timelines with a load-imbalance index, and the longest
// requests' critical paths.
//
// Usage:
//
//	dualpar-sim -workload noncontig -mode dualpar -trace run.json
//	dualpar-analyze run.json
//	dualpar-analyze -format json -buckets 40 -top 5 run.json
//	dualpar-analyze -strict run.json        # also fail on empty critical path
//
// The input path "-" reads from stdin. Exit status: 0 on a conserving
// report, 1 when attribution fails conservation (or, with -strict, when no
// critical path could be extracted), 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dualpar/internal/obs/analyze"
)

func main() {
	format := flag.String("format", "text", "output format: text|json|csv")
	buckets := flag.Int("buckets", 0, "utilization timeline buckets per server (default 20)")
	top := flag.Int("top", 0, "critical paths to keep (default 3)")
	strict := flag.Bool("strict", false, "also fail (exit 1) when no critical path was extracted")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dualpar-analyze [-format text|json|csv] [-buckets N] [-top N] [-strict] trace.json")
		os.Exit(2)
	}
	var in io.Reader
	if path := flag.Arg(0); path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	spans, err := analyze.ParseTrace(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rep := analyze.Analyze(spans, analyze.Options{Buckets: *buckets, TopPaths: *top})

	var renderErr error
	switch *format {
	case "text":
		renderErr = rep.RenderText(os.Stdout)
	case "json":
		renderErr = rep.RenderJSON(os.Stdout)
	case "csv":
		renderErr = rep.RenderCSV(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
	if renderErr != nil {
		fmt.Fprintln(os.Stderr, renderErr)
		os.Exit(2)
	}

	if !rep.Conserved() {
		fmt.Fprintf(os.Stderr, "dualpar-analyze: attribution violates conservation (max residual %dns)\n",
			int64(rep.MaxResidual))
		os.Exit(1)
	}
	if *strict {
		if len(rep.CriticalPaths) == 0 {
			fmt.Fprintln(os.Stderr, "dualpar-analyze: no critical path extracted (no traced requests?)")
			os.Exit(1)
		}
		for _, cp := range rep.CriticalPaths {
			if len(cp.Path) == 0 {
				fmt.Fprintf(os.Stderr, "dualpar-analyze: request %d has an empty critical path\n", cp.ID)
				os.Exit(1)
			}
		}
	}
}
