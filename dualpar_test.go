package dualpar_test

import (
	"fmt"
	"testing"
	"time"

	"dualpar"
)

func TestFacadeQuickRun(t *testing.T) {
	sim := dualpar.NewSimulation(dualpar.Defaults())
	prog := sim.AddProgram(dualpar.MPIIOTest(16, 8<<20, false), dualpar.Vanilla, dualpar.ProgramOptions{})
	if !sim.Run(time.Hour) {
		t.Fatalf("simulation did not finish")
	}
	if prog.Elapsed() <= 0 {
		t.Fatalf("elapsed = %v", prog.Elapsed())
	}
	if prog.Bytes() != 8<<20 {
		t.Fatalf("bytes = %d", prog.Bytes())
	}
	if prog.Throughput() <= 0 {
		t.Fatalf("throughput = %g", prog.Throughput())
	}
	if r := prog.IORatio(); r <= 0 || r > 1 {
		t.Fatalf("io ratio = %g", r)
	}
}

func TestFacadeDualParBeatsVanilla(t *testing.T) {
	run := func(mode dualpar.Mode) float64 {
		sim := dualpar.NewSimulation(dualpar.Defaults())
		prog := sim.AddProgram(dualpar.Demo(8, 16<<20, 4<<10, 0), mode, dualpar.ProgramOptions{})
		if !sim.Run(time.Hour) {
			t.Fatalf("did not finish")
		}
		return prog.Throughput()
	}
	van := run(dualpar.Vanilla)
	dd := run(dualpar.DualParForced)
	if dd <= van {
		t.Fatalf("dualpar %.1f not above vanilla %.1f", dd, van)
	}
}

func TestFacadeConfigKnobs(t *testing.T) {
	cfg := dualpar.Defaults().WithSeed(7).WithScheduler("deadline").WithTracing()
	sim := dualpar.NewSimulation(cfg)
	prog := sim.AddProgram(dualpar.IOR(8, 4<<20, false), dualpar.Vanilla, dualpar.ProgramOptions{RanksPerNode: 4})
	if !sim.Run(time.Hour) {
		t.Fatalf("did not finish")
	}
	if prog.Elapsed() <= 0 {
		t.Fatalf("no progress")
	}
	if sim.Cluster().Stores[0].Device().Trace() == nil {
		t.Fatalf("tracing not enabled")
	}
	if got := sim.Cluster().Stores[0].Dispatcher().Algorithm().Name(); got != "deadline" {
		t.Fatalf("scheduler = %q", got)
	}
}

func TestFacadeSSDAndAnticipatory(t *testing.T) {
	cfg := dualpar.Defaults().WithSSD().WithScheduler("anticipatory")
	sim := dualpar.NewSimulation(cfg)
	prog := sim.AddProgram(dualpar.Noncontig(16, 4<<20, false), dualpar.Collective, dualpar.ProgramOptions{})
	if !sim.Run(time.Hour) {
		t.Fatalf("did not finish")
	}
	if prog.Throughput() <= 0 {
		t.Fatalf("no throughput")
	}
}

func TestFacadeWorkloadConstructors(t *testing.T) {
	if w := dualpar.BTIO(16, 2<<20, 2); w.Ranks() != 16 {
		t.Fatalf("btio ranks = %d", w.Ranks())
	}
	if w := dualpar.HPIO(8, 128, 32<<10, 1<<10); w.TotalBytes() != 128*32<<10 {
		t.Fatalf("hpio bytes = %d", w.TotalBytes())
	}
	if w := dualpar.S3asim(8, 16); w.Queries != 16 {
		t.Fatalf("s3asim queries = %d", w.Queries)
	}
}

func TestFacadeModeSwitchLogExposed(t *testing.T) {
	sim := dualpar.NewSimulation(dualpar.Defaults())
	prog := sim.AddProgram(dualpar.MPIIOTest(16, 4<<20, false), dualpar.DualParForced, dualpar.ProgramOptions{})
	if !sim.Run(time.Hour) {
		t.Fatalf("did not finish")
	}
	if !prog.DataDriven() && len(prog.ModeSwitches()) == 0 {
		// Forced mode stays on unless the mis-prefetch guard fires; either
		// way the API surfaces must be callable.
		t.Fatalf("forced data-driven off without a logged switch")
	}
	if prog.Run() == nil {
		t.Fatalf("internal escape hatch missing")
	}
}

func TestFacadeParseMode(t *testing.T) {
	m, err := dualpar.ParseMode("collective")
	if err != nil || m != dualpar.Collective {
		t.Fatalf("ParseMode = %v, %v", m, err)
	}
}

// ExampleSimulation runs mpi-io-test under DualPar's forced data-driven
// mode and reports whether it outperformed the vanilla run.
func ExampleSimulation() {
	run := func(mode dualpar.Mode) float64 {
		sim := dualpar.NewSimulation(dualpar.Defaults())
		prog := sim.AddProgram(dualpar.MPIIOTest(16, 8<<20, false), mode, dualpar.ProgramOptions{})
		sim.Run(time.Hour)
		return prog.Throughput()
	}
	vanilla := run(dualpar.Vanilla)
	dual := run(dualpar.DualParForced)
	fmt.Println("dualpar faster:", dual > vanilla)
	// Output: dualpar faster: true
}
