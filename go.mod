module dualpar

go 1.22
