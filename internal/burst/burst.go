// Package burst is a host-side burst-buffer write log for checkpoint
// traffic: a per-client append-only log device that absorbs checkpoint
// writes at sequential log bandwidth and drains them to the parallel file
// system in the background at a throttled rate (iFast/ParaLog-style
// staging). The application's checkpoint stall becomes the log absorb time
// instead of the PFS write time; the PFS sees the same bytes slightly
// later, in deterministic log order.
//
// Durability contract: a checkpoint epoch is committed only when its log
// records are sealed. A client crash preserves the log device but loses
// everything unsealed; recovery discards unsealed records and replays
// sealed-but-undrained ones to the PFS in log order, so a committed epoch
// is always recoverable — either its bytes already reached the PFS (drain)
// or they replay from the log (recovery). Records whose drain completed
// before the crash are removed atomically with drain completion and are
// never replayed (no double-apply).
//
// Determinism: absorb serializes on a per-log device resource, drain and
// replay follow strict log-sequence order, and all timing derives from
// configured bandwidths — the same schedule yields byte-identical runs. A
// run with no burst tier configured takes none of these code paths.
package burst

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dualpar/internal/check"
	"dualpar/internal/ext"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// DrainOriginBase tags the drainer's PFS requests for the I/O scheduler:
// drain traffic from compute node n carries origin DrainOriginBase+n,
// keeping it distinct from application, flusher, and verifier origins.
const DrainOriginBase = 1 << 22

// ErrNoCommittedEpoch reports a recovery that found no epoch sealed by
// every rank: the job crashed before its first checkpoint committed, so
// there is nothing to restart from.
var ErrNoCommittedEpoch = errors.New("burst: no committed checkpoint epoch")

// EpochError carries the checkpoint epoch whose drain or replay failed. It
// wraps the underlying PFS error, so errors.Is(err, pfs.ErrRetriesExhausted)
// still matches through it.
type EpochError struct {
	Epoch int
	Err   error
}

// Error implements error.
func (e *EpochError) Error() string {
	return fmt.Sprintf("burst: epoch %d: %v", e.Epoch, e.Err)
}

// Unwrap exposes the underlying PFS error to errors.Is/As.
func (e *EpochError) Unwrap() error { return e.Err }

// Config sizes the per-client log devices. All rates are bytes per second.
type Config struct {
	// CapacityBytes bounds each log's resident (absorbed, not yet drained)
	// bytes; an append that would exceed it blocks until the drain frees
	// space (backpressure).
	CapacityBytes int64
	// AbsorbBps is the sequential append bandwidth of the log device.
	AbsorbBps int64
	// DrainBps throttles the background drain to the PFS.
	DrainBps int64
	// SealLatency is the flush-barrier cost of sealing an epoch durable.
	SealLatency time.Duration
}

// DefaultConfig is a small fast NVMe-class log: 64 MiB capacity, 400 MiB/s
// absorb, 100 MiB/s drain, 500 µs seal barrier.
func DefaultConfig() Config {
	return Config{
		CapacityBytes: 64 << 20,
		AbsorbBps:     400 << 20,
		DrainBps:      100 << 20,
		SealLatency:   500 * time.Microsecond,
	}
}

// Validate reports configuration errors. A zero drain rate is rejected
// rather than silently meaning "never drain": resident bytes would only
// grow until backpressure wedged every writer.
func (c Config) Validate() error {
	switch {
	case c.CapacityBytes <= 0:
		return fmt.Errorf("burst: capacity %d bytes", c.CapacityBytes)
	case c.AbsorbBps <= 0:
		return fmt.Errorf("burst: absorb rate %d B/s", c.AbsorbBps)
	case c.DrainBps <= 0:
		return fmt.Errorf("burst: drain rate %d B/s", c.DrainBps)
	case c.SealLatency < 0:
		return fmt.Errorf("burst: seal latency %v", c.SealLatency)
	}
	return nil
}

// ParseSpec builds a Config from a compact spec string, for command-line
// use: comma-separated key=value pairs over DefaultConfig, with byte sizes
// taking K/M/G suffixes and seal taking a Go duration. An empty spec is the
// default config.
//
//	cap=64M,absorb=400M,drain=100M,seal=500us
func ParseSpec(spec string) (Config, error) {
	c := DefaultConfig()
	if spec == "" {
		return c, nil
	}
	for _, kv := range splitComma(spec) {
		k, v, ok := cut(kv, '=')
		if !ok {
			return c, fmt.Errorf("burst: %q: want key=value", kv)
		}
		var err error
		switch k {
		case "cap":
			c.CapacityBytes, err = parseBytes(v)
		case "absorb":
			c.AbsorbBps, err = parseBytes(v)
		case "drain":
			c.DrainBps, err = parseBytes(v)
		case "seal":
			c.SealLatency, err = time.ParseDuration(v)
		default:
			return c, fmt.Errorf("burst: unknown key %q", k)
		}
		if err != nil {
			return c, fmt.Errorf("burst: %q: %v", kv, err)
		}
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

func splitComma(s string) []string {
	var out []string
	for {
		head, rest, ok := cut(s, ',')
		out = append(out, head)
		if !ok {
			return out
		}
		s = rest
	}
}

func cut(s string, sep byte) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// parseBytes parses "64M"-style sizes (K/M/G binary suffixes, plain digits
// are bytes).
func parseBytes(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'M', 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'G', 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	var n int64
	if s == "" {
		return 0, fmt.Errorf("bare size suffix")
	}
	for i := 0; i < len(s); i++ {
		d := s[i]
		if d < '0' || d > '9' {
			return 0, fmt.Errorf("bad size %q", s)
		}
		n = n*10 + int64(d-'0')
	}
	return n * mult, nil
}

// Writer is the PFS face the drainer writes through; *pfs.Client satisfies
// it. Writes are synchronous: they return after the bytes are durable at
// the write quorum, or with an error wrapping pfs.ErrRetriesExhausted.
type Writer interface {
	Write(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx) error
}

// Stats aggregates the byte-conservation counters of one log or tier:
// every absorbed byte is exactly one of drained, replayed, discarded, or
// still resident.
type Stats struct {
	Absorbed  int64         // bytes appended to the log
	Drained   int64         // bytes the background drain wrote to the PFS
	Replayed  int64         // sealed bytes recovery re-wrote to the PFS
	Discarded int64         // unsealed bytes recovery dropped
	Resident  int64         // bytes still in the log
	Stall     time.Duration // writer time blocked on capacity backpressure
	DrainLag  time.Duration // total seal→drain-complete latency
	DrainMax  time.Duration // worst single record's seal→drain latency
	DrainOps  int64         // records drained (for mean lag)
}

func (s *Stats) add(o Stats) {
	s.Absorbed += o.Absorbed
	s.Drained += o.Drained
	s.Replayed += o.Replayed
	s.Discarded += o.Discarded
	s.Resident += o.Resident
	s.Stall += o.Stall
	s.DrainLag += o.DrainLag
	if o.DrainMax > s.DrainMax {
		s.DrainMax = o.DrainMax
	}
	s.DrainOps += o.DrainOps
}

// Tier owns the per-compute-node logs of one cluster. Logs are created
// lazily at a node's first append and live for the whole run.
type Tier struct {
	k       *sim.Kernel
	cfg     Config
	obs     *obs.Collector
	audit   check.Ledger
	writerF func(node int) Writer
	logs    map[int]*Log
	order   []int // node ids in creation order (deterministic)
}

// NewTier builds a burst tier on kernel k; writerF supplies the node-local
// PFS client the drain writes through. Panics on an invalid config (a
// configuration bug, like fault.NewInjector).
func NewTier(k *sim.Kernel, cfg Config, writerF func(node int) Writer, c *obs.Collector) *Tier {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Tier{k: k, cfg: cfg, obs: c, writerF: writerF, logs: make(map[int]*Log)}
}

// Config returns the tier's configuration.
func (t *Tier) Config() Config { return t.cfg }

// Log returns node's log, creating it (and its drainer) on first use.
func (t *Tier) Log(node int) *Log {
	if l, ok := t.logs[node]; ok {
		return l
	}
	l := &Log{
		t:      t,
		node:   node,
		origin: DrainOriginBase + node,
		writer: t.writerF(node),
		recs:   make([]record, 16),
	}
	l.dev = t.k.NewResource(1)
	t.logs[node] = l
	t.order = append(t.order, node)
	t.k.Spawn(fmt.Sprintf("burst-drain-%d", node), l.drainLoop)
	return l
}

// nodes returns the log-holding node ids in ascending order.
func (t *Tier) nodes() []int {
	out := append([]int(nil), t.order...)
	sort.Ints(out)
	return out
}

// CrashNode crash-stops node's log host: the drainer parks after any
// in-flight record completes, and the log contents persist for Recover.
// Nodes without a log are untouched.
func (t *Tier) CrashNode(node int, at time.Duration) {
	l, ok := t.logs[node]
	if !ok {
		return
	}
	l.crashed = true
	if t.obs.Enabled() {
		t.obs.Instant("burst.crash", "burst", at, obs.I64("node", int64(node)))
	}
}

// Recover replays every crashed log in ascending node order: unsealed
// resident records are discarded (their epochs never committed), then
// sealed records replay to the PFS in log-sequence order at the drain
// rate. On success the drainers resume. The first replay error aborts
// recovery, wrapped with its epoch.
func (t *Tier) Recover(p *sim.Proc) error {
	for _, node := range t.nodes() {
		if l := t.logs[node]; l.crashed {
			if err := l.recover(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// WaitDrained blocks p until every log is empty (all absorbed bytes
// drained) or a drain error parked some log's drainer, which it returns.
func (t *Tier) WaitDrained(p *sim.Proc) error {
	for _, node := range t.nodes() {
		l := t.logs[node]
		for l.err == nil && l.len() > 0 && !l.crashed {
			l.space.Wait(p)
		}
		if l.err != nil {
			return l.err
		}
	}
	return nil
}

// Err returns the first drain/replay error across logs in ascending node
// order, or nil.
func (t *Tier) Err() error {
	for _, node := range t.nodes() {
		if l := t.logs[node]; l.err != nil {
			return l.err
		}
	}
	return nil
}

// Stats aggregates all logs' counters.
func (t *Tier) Stats() Stats {
	var s Stats
	for _, node := range t.nodes() {
		s.add(t.logs[node].Stats())
	}
	return s
}

// RegisterAudit arms the tier's byte-conservation oracle on a: every
// absorbed byte must be accounted for as drained, replayed, discarded, or
// resident, per log and in aggregate. Logs are enumerated at probe time
// because they are created lazily.
func (t *Tier) RegisterAudit(a *check.Auditor) {
	t.audit = a
	a.RegisterFinalProbe("burst.conserved", func() error {
		for _, node := range t.nodes() {
			s := t.logs[node].Stats()
			if got := s.Drained + s.Replayed + s.Discarded + s.Resident; got != s.Absorbed {
				return fmt.Errorf("log %d: absorbed %d != drained %d + replayed %d + discarded %d + resident %d",
					node, s.Absorbed, s.Drained, s.Replayed, s.Discarded, s.Resident)
			}
		}
		return nil
	})
}

// record is one appended extent. Drain and replay both write records back
// in seq order, so the drained prefix of the log is always contiguous.
type record struct {
	seq    int64
	rank   int32
	epoch  int32
	sealed bool
	sealAt time.Duration
	file   string
	x      ext.Extent
}

// Log is one compute node's append-only write log.
type Log struct {
	t      *Tier
	node   int
	origin int
	writer Writer
	dev    *sim.Resource // serializes absorb+seal on the log device
	err    error         // first drain/replay failure (an *EpochError)

	// ring buffer of resident records; head/tail are absolute counters,
	// len(recs) is a power of two.
	recs       []record
	head, tail int64
	seq        int64 // next record sequence number
	used       int64 // resident bytes

	crashed bool
	space   sim.Signal // broadcast when drain frees capacity / empties the log
	kick    sim.Signal // wakes the drainer on seal and recovery

	stall     time.Duration
	absorbed  int64
	drained   int64
	replayed  int64
	discarded int64
	drainLag  time.Duration
	drainMax  time.Duration
	drainOps  int64
	xferBuf   [1]ext.Extent // drain/replay scratch (single writer at a time)
}

func (l *Log) len() int { return int(l.tail - l.head) }

func (l *Log) at(i int64) *record { return &l.recs[int(i)&(len(l.recs)-1)] }

func (l *Log) push(r record) {
	if l.len() == len(l.recs) {
		grown := make([]record, len(l.recs)*2)
		for i := l.head; i < l.tail; i++ {
			grown[int(i)&(len(grown)-1)] = *l.at(i)
		}
		l.recs = grown
	}
	*l.at(l.tail) = r
	l.tail++
}

// pop removes the head record, crediting bytes to the given counter.
func (l *Log) pop() {
	rec := l.at(l.head)
	l.used -= rec.x.Len
	rec.file = "" // drop the string reference
	l.head++
	l.space.Broadcast()
}

// Stats returns this log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Absorbed: l.absorbed, Drained: l.drained, Replayed: l.replayed,
		Discarded: l.discarded, Resident: l.used,
		Stall: l.stall, DrainLag: l.drainLag, DrainMax: l.drainMax, DrainOps: l.drainOps,
	}
}

// xferTime is the duration of moving n bytes at bps.
func xferTime(n, bps int64) time.Duration {
	return time.Duration(n) * time.Second / time.Duration(bps)
}

// Append absorbs one checkpoint write into the log: each extent becomes
// one record, appended sequentially at the log's absorb bandwidth. When
// resident bytes would exceed capacity the caller blocks until the drain
// frees space; that wait is the checkpoint stall the tier exists to
// minimize, tracked in Stats.Stall.
func (l *Log) Append(p *sim.Proc, rank, epoch int, file string, extents []ext.Extent) {
	cfg := l.t.cfg
	for _, x := range extents {
		if x.Len > cfg.CapacityBytes {
			panic(fmt.Sprintf("burst: extent of %d bytes exceeds log capacity %d", x.Len, cfg.CapacityBytes))
		}
		start := p.Now()
		for l.used+x.Len > cfg.CapacityBytes {
			l.space.Wait(p)
		}
		l.used += x.Len
		if wait := p.Now() - start; wait > 0 {
			l.stall += wait
		}
		l.dev.Acquire(p, 1)
		p.Sleep(xferTime(x.Len, cfg.AbsorbBps))
		l.dev.Release(1)
		l.push(record{seq: l.seq, rank: int32(rank), epoch: int32(epoch), file: file, x: x})
		l.seq++
		l.absorbed += x.Len
		if a := l.t.audit; a != nil {
			a.Count("burst.absorbed.bytes", x.Len)
		}
	}
}

// Seal makes rank's records for epoch durable: after the device's flush
// barrier they survive a client crash and the epoch counts as committed
// for this rank. Sealing wakes the drainer.
func (l *Log) Seal(p *sim.Proc, rank, epoch int) {
	cfg := l.t.cfg
	l.dev.Acquire(p, 1)
	if cfg.SealLatency > 0 {
		p.Sleep(cfg.SealLatency)
	}
	l.dev.Release(1)
	var sealed int64
	for i := l.head; i < l.tail; i++ {
		rec := l.at(i)
		if !rec.sealed && int(rec.rank) == rank && int(rec.epoch) == epoch {
			rec.sealed = true
			rec.sealAt = p.Now()
			sealed += rec.x.Len
		}
	}
	if l.t.obs.Enabled() {
		l.t.obs.Instant("burst.seal", "burst", p.Now(),
			obs.I64("node", int64(l.node)), obs.I64("rank", int64(rank)),
			obs.I64("epoch", int64(epoch)), obs.I64("bytes", sealed))
	}
	l.kick.Broadcast()
}

// drainLoop is the background drainer: strict head-of-log order, sealed
// records only, paced at the drain rate. Unsealed or absent head parks it;
// a crash parks it after the in-flight record completes (drain completion
// removes the record atomically, so a completed drain is never replayed);
// a PFS write error records the epoch and parks it for good.
func (l *Log) drainLoop(p *sim.Proc) {
	for {
		for l.crashed || l.err != nil || l.len() == 0 || !l.at(l.head).sealed {
			l.kick.Wait(p)
		}
		rec := l.at(l.head)
		p.Sleep(xferTime(rec.x.Len, l.t.cfg.DrainBps))
		l.xferBuf[0] = rec.x
		if err := l.writer.Write(p, rec.file, l.xferBuf[:], l.origin, obs.Ctx{}); err != nil {
			l.err = &EpochError{Epoch: int(rec.epoch), Err: err}
			l.space.Broadcast() // unwedge WaitDrained
			continue
		}
		lag := p.Now() - rec.sealAt
		l.drainLag += lag
		if lag > l.drainMax {
			l.drainMax = lag
		}
		l.drainOps++
		l.drained += rec.x.Len
		if a := l.t.audit; a != nil {
			a.Count("burst.drained.bytes", rec.x.Len)
		}
		if l.t.obs.Enabled() {
			l.t.obs.Instant("burst.drain", "burst", p.Now(),
				obs.I64("node", int64(l.node)), obs.I64("rank", int64(rec.rank)),
				obs.I64("epoch", int64(rec.epoch)), obs.I64("bytes", rec.x.Len))
		}
		l.pop()
	}
}

// recover implements crash recovery for one log: discard unsealed resident
// records, replay the sealed remainder to the PFS in seq order at the
// drain rate, then clear the crash so the drainer resumes for any later
// appends.
func (l *Log) recover(p *sim.Proc) error {
	// Compact the ring in place, keeping sealed records in order. Every
	// discarded record must be unsealed — a sealed record belongs to a
	// committed (or committing) epoch and may never be dropped.
	keep := l.head
	for i := l.head; i < l.tail; i++ {
		rec := *l.at(i)
		if !rec.sealed {
			l.used -= rec.x.Len
			l.discarded += rec.x.Len
			if a := l.t.audit; a != nil {
				a.Count("burst.discarded.bytes", rec.x.Len)
				a.Checkf(!rec.sealed, "burst.discard.sealed",
					"log %d discarded sealed record seq %d (epoch %d)", l.node, rec.seq, rec.epoch)
			}
			if l.t.obs.Enabled() {
				l.t.obs.Instant("burst.discard", "burst", p.Now(),
					obs.I64("node", int64(l.node)), obs.I64("rank", int64(rec.rank)),
					obs.I64("epoch", int64(rec.epoch)), obs.I64("bytes", rec.x.Len))
			}
			continue
		}
		*l.at(keep) = rec
		keep++
	}
	for i := keep; i < l.tail; i++ {
		l.at(i).file = ""
	}
	l.tail = keep
	for l.len() > 0 {
		rec := l.at(l.head)
		p.Sleep(xferTime(rec.x.Len, l.t.cfg.DrainBps))
		l.xferBuf[0] = rec.x
		if err := l.writer.Write(p, rec.file, l.xferBuf[:], l.origin, obs.Ctx{}); err != nil {
			l.err = &EpochError{Epoch: int(rec.epoch), Err: err}
			return l.err
		}
		l.replayed += rec.x.Len
		if a := l.t.audit; a != nil {
			a.Count("burst.replayed.bytes", rec.x.Len)
		}
		if l.t.obs.Enabled() {
			l.t.obs.Instant("burst.replay", "burst", p.Now(),
				obs.I64("node", int64(l.node)), obs.I64("rank", int64(rec.rank)),
				obs.I64("epoch", int64(rec.epoch)), obs.I64("bytes", rec.x.Len))
		}
		l.pop()
	}
	l.crashed = false
	l.kick.Broadcast()
	return nil
}

// Epochs tracks per-rank sealed checkpoint epochs for one program. The
// workload seals epochs in order, so each rank's sealed epoch advances by
// exactly one; Committed is the epoch every rank has sealed — the newest
// checkpoint a restart can rely on.
type Epochs struct {
	last []int
}

// NewEpochs tracks ranks ranks, none of which has sealed anything yet.
func NewEpochs(ranks int) *Epochs { return &Epochs{last: make([]int, ranks)} }

// Seal records that rank sealed epoch. Epochs seal in order (a simulation
// invariant — the generator emits one seal per epoch between barriers), so
// anything but last+1 panics.
func (e *Epochs) Seal(rank, epoch int) {
	if epoch != e.last[rank]+1 {
		panic(fmt.Sprintf("burst: rank %d sealed epoch %d after epoch %d", rank, epoch, e.last[rank]))
	}
	e.last[rank] = epoch
}

// Committed returns the newest epoch sealed by every rank (0 = none).
func (e *Epochs) Committed() int {
	if len(e.last) == 0 {
		return 0
	}
	min := e.last[0]
	for _, v := range e.last[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Ranks returns the tracked rank count.
func (e *Epochs) Ranks() int { return len(e.last) }
