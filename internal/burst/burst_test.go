package burst

import (
	"errors"
	"testing"
	"time"

	"dualpar/internal/check"
	"dualpar/internal/ext"
	"dualpar/internal/obs"
	"dualpar/internal/pfs"
	"dualpar/internal/sim"
)

// fakeWriter records every PFS write the drainer issues, optionally
// failing each one with err after sleeping dur.
type fakeWriter struct {
	dur    time.Duration
	err    error
	writes []fakeWrite
}

type fakeWrite struct {
	file string
	x    ext.Extent
	at   time.Duration
}

func (w *fakeWriter) Write(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx) error {
	if w.dur > 0 {
		p.Sleep(w.dur)
	}
	if w.err != nil {
		return w.err
	}
	for _, x := range extents {
		w.writes = append(w.writes, fakeWrite{file: name, x: x, at: p.Now()})
	}
	return nil
}

// testTier builds a single-node tier over a fakeWriter. The config drains
// 1 KiB records in exactly 1 s each, with instant absorb and free seals,
// so tests can place crashes at precise points of the drain timeline.
func testTier(k *sim.Kernel, cfg Config) (*Tier, *fakeWriter) {
	w := &fakeWriter{}
	return NewTier(k, cfg, func(int) Writer { return w }, nil), w
}

var testCfg = Config{
	CapacityBytes: 1 << 20,
	AbsorbBps:     1 << 40, // instant absorb
	DrainBps:      1 << 10, // 1 KiB/s: one 1 KiB record drains in 1 s
	SealLatency:   0,
}

func rec(off int64) []ext.Extent { return []ext.Extent{{Off: off, Len: 1 << 10}} }

func checkConserved(t *testing.T, s Stats) {
	t.Helper()
	if got := s.Drained + s.Replayed + s.Discarded + s.Resident; got != s.Absorbed {
		t.Fatalf("bytes not conserved: absorbed %d, accounted %d (%+v)", s.Absorbed, got, s)
	}
}

func TestAbsorbDrainInOrder(t *testing.T) {
	k := sim.NewKernel(1)
	tier, w := testTier(k, testCfg)
	var drainErr error = errors.New("not run")
	k.Spawn("writer", func(p *sim.Proc) {
		l := tier.Log(0)
		l.Append(p, 0, 1, "f", rec(0))
		l.Append(p, 0, 1, "f", rec(1024))
		l.Seal(p, 0, 1)
		l.Append(p, 0, 2, "f", rec(2048))
		l.Seal(p, 0, 2)
		drainErr = tier.WaitDrained(p)
	})
	k.RunUntil(time.Hour)
	if drainErr != nil {
		t.Fatal(drainErr)
	}
	if len(w.writes) != 3 {
		t.Fatalf("drained %d records, want 3", len(w.writes))
	}
	for i, want := range []int64{0, 1024, 2048} {
		if w.writes[i].x.Off != want {
			t.Errorf("drain %d wrote offset %d, want %d (log order)", i, w.writes[i].x.Off, want)
		}
	}
	s := tier.Stats()
	checkConserved(t, s)
	if s.Resident != 0 || s.Drained != 3<<10 || s.Replayed != 0 || s.Discarded != 0 {
		t.Fatalf("stats %+v, want everything drained", s)
	}
	if s.DrainOps != 3 || s.DrainLag <= 0 || s.DrainMax <= 0 {
		t.Fatalf("drain lag not tracked: %+v", s)
	}
}

func TestBackpressureStallsWriter(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testCfg
	cfg.CapacityBytes = 2 << 10 // room for two records
	tier, w := testTier(k, cfg)
	k.Spawn("writer", func(p *sim.Proc) {
		l := tier.Log(0)
		for e := 1; e <= 4; e++ {
			l.Append(p, 0, e, "f", rec(int64(e-1)*1024))
			l.Seal(p, 0, e)
		}
		if err := tier.WaitDrained(p); err != nil {
			t.Error(err)
		}
	})
	k.RunUntil(time.Hour)
	if len(w.writes) != 4 {
		t.Fatalf("drained %d records, want 4", len(w.writes))
	}
	s := tier.Stats()
	checkConserved(t, s)
	// Records 1+2 fill the log; append 3 must wait for drain 1 (~1 s).
	if s.Stall < 900*time.Millisecond {
		t.Fatalf("capacity-full append stalled %v, want ≈1s of backpressure", s.Stall)
	}
}

func TestCrashBetweenSealAndDrainReplaysOnce(t *testing.T) {
	k := sim.NewKernel(1)
	tier, w := testTier(k, testCfg)
	var recovered error = errors.New("not run")
	k.Spawn("writer", func(p *sim.Proc) {
		l := tier.Log(0)
		l.Append(p, 0, 1, "f", rec(0))
		l.Append(p, 0, 1, "f", rec(1024))
		l.Seal(p, 0, 1)
		// Crash before yielding: the drainer (woken by the seal) has not
		// run yet, so both sealed records are resident — the precise
		// "sealed but drain not started" point.
		tier.CrashNode(0, p.Now())
	})
	k.RunUntil(time.Hour)
	if len(w.writes) != 0 {
		t.Fatalf("crashed log drained %d records before recovery", len(w.writes))
	}
	k.Spawn("recovery", func(p *sim.Proc) { recovered = tier.Recover(p) })
	k.RunUntil(2 * time.Hour)
	if recovered != nil {
		t.Fatal(recovered)
	}
	if len(w.writes) != 2 {
		t.Fatalf("replayed %d records, want exactly 2 (no loss, no double-apply)", len(w.writes))
	}
	s := tier.Stats()
	checkConserved(t, s)
	if s.Drained != 0 || s.Replayed != 2<<10 || s.Discarded != 0 || s.Resident != 0 {
		t.Fatalf("stats %+v, want both records replayed", s)
	}
}

func TestCrashMidDrainCompletesInFlightOnly(t *testing.T) {
	k := sim.NewKernel(1)
	tier, w := testTier(k, testCfg)
	k.Spawn("writer", func(p *sim.Proc) {
		l := tier.Log(0)
		l.Append(p, 0, 1, "f", rec(0))
		l.Append(p, 0, 1, "f", rec(1024))
		l.Seal(p, 0, 1)
	})
	// Record 1 drains over [0s,1s], record 2 over [1s,2s]: a crash at
	// 500ms lands mid-drain of record 1. Drain completion removes the
	// record atomically, so record 1 finishes and is never replayed;
	// record 2 stays resident for recovery.
	k.After(500*time.Millisecond, func() { tier.CrashNode(0, k.Now()) })
	k.RunUntil(time.Hour)
	if len(w.writes) != 1 || w.writes[0].x.Off != 0 {
		t.Fatalf("pre-recovery writes %+v, want exactly the in-flight record", w.writes)
	}
	k.Spawn("recovery", func(p *sim.Proc) {
		if err := tier.Recover(p); err != nil {
			t.Error(err)
		}
	})
	k.RunUntil(2 * time.Hour)
	if len(w.writes) != 2 || w.writes[1].x.Off != 1024 {
		t.Fatalf("writes after recovery %+v, want records 0 and 1024 exactly once each", w.writes)
	}
	s := tier.Stats()
	checkConserved(t, s)
	if s.Drained != 1<<10 || s.Replayed != 1<<10 {
		t.Fatalf("stats %+v, want one drained + one replayed", s)
	}
}

func TestCrashDiscardsUnsealed(t *testing.T) {
	k := sim.NewKernel(1)
	tier, w := testTier(k, testCfg)
	a := check.New(1, "burst-test")
	tier.RegisterAudit(a)
	k.Spawn("writer", func(p *sim.Proc) {
		l := tier.Log(0)
		l.Append(p, 0, 1, "f", rec(0))
		l.Seal(p, 0, 1)
		l.Append(p, 0, 2, "f", rec(1024)) // epoch 2 never sealed
		tier.CrashNode(0, p.Now())
	})
	k.RunUntil(time.Hour)
	k.Spawn("recovery", func(p *sim.Proc) {
		if err := tier.Recover(p); err != nil {
			t.Error(err)
		}
	})
	k.RunUntil(2 * time.Hour)
	if len(w.writes) != 1 || w.writes[0].x.Off != 0 {
		t.Fatalf("writes %+v, want only the sealed epoch-1 record", w.writes)
	}
	s := tier.Stats()
	checkConserved(t, s)
	// The epoch-2 append yields during absorb, so the drainer picks up the
	// sealed epoch-1 record before the crash lands: it completes as an
	// in-flight drain. Only the unsealed epoch-2 record is in the log at
	// recovery, and it is discarded.
	if s.Discarded != 1<<10 || s.Drained != 1<<10 || s.Replayed != 0 || s.Resident != 0 {
		t.Fatalf("stats %+v, want unsealed record discarded, sealed one drained in-flight", s)
	}
	a.RunFinalProbes()
	if err := a.Err(); err != nil {
		t.Fatalf("conservation oracle: %v", err)
	}
}

func TestDrainerResumesAfterRecovery(t *testing.T) {
	k := sim.NewKernel(1)
	tier, w := testTier(k, testCfg)
	k.Spawn("writer", func(p *sim.Proc) {
		l := tier.Log(0)
		l.Append(p, 0, 1, "f", rec(0))
		l.Seal(p, 0, 1)
		tier.CrashNode(0, p.Now())
		if err := tier.Recover(p); err != nil {
			t.Error(err)
		}
		// Post-recovery appends drain normally again.
		l.Append(p, 0, 2, "f", rec(1024))
		l.Seal(p, 0, 2)
		if err := tier.WaitDrained(p); err != nil {
			t.Error(err)
		}
	})
	k.RunUntil(time.Hour)
	if len(w.writes) != 2 {
		t.Fatalf("writes %+v, want replayed epoch 1 + drained epoch 2", w.writes)
	}
	s := tier.Stats()
	checkConserved(t, s)
	if s.Replayed != 1<<10 || s.Drained != 1<<10 {
		t.Fatalf("stats %+v, want one replayed + one drained", s)
	}
}

// TestDrainErrorCarriesEpoch is the RetryError-surfacing regression test:
// a drain that exhausts its PFS retries must report the originating epoch
// in the error chain without hiding the pfs sentinel.
func TestDrainErrorCarriesEpoch(t *testing.T) {
	k := sim.NewKernel(1)
	w := &fakeWriter{err: &pfs.RetryError{Op: "write", File: "f", Server: 2}}
	tier := NewTier(k, testCfg, func(int) Writer { return w }, nil)
	var got error
	k.Spawn("writer", func(p *sim.Proc) {
		l := tier.Log(0)
		l.Append(p, 0, 7, "f", rec(0))
		l.Seal(p, 0, 7)
		got = tier.WaitDrained(p)
	})
	k.RunUntil(time.Hour)
	if got == nil {
		t.Fatal("drain error not surfaced")
	}
	var ee *EpochError
	if !errors.As(got, &ee) || ee.Epoch != 7 {
		t.Fatalf("error %v does not carry epoch 7", got)
	}
	if !errors.Is(got, pfs.ErrRetriesExhausted) {
		t.Fatalf("error %v hides pfs.ErrRetriesExhausted", got)
	}
	var re *pfs.RetryError
	if !errors.As(got, &re) || re.Server != 2 {
		t.Fatalf("error %v hides the originating *pfs.RetryError", got)
	}
	if tier.Err() == nil {
		t.Fatal("Tier.Err() lost the drain error")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{
		{CapacityBytes: 0, AbsorbBps: 1, DrainBps: 1},
		{CapacityBytes: 1, AbsorbBps: 0, DrainBps: 1},
		{CapacityBytes: 1, AbsorbBps: 1, DrainBps: 0}, // drain throttle 0 rejected
		{CapacityBytes: 1, AbsorbBps: 1, DrainBps: -5},
		{CapacityBytes: 1, AbsorbBps: 1, DrainBps: 1, SealLatency: -time.Second},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewTier accepted DrainBps=0")
			}
		}()
		NewTier(sim.NewKernel(1), Config{CapacityBytes: 1, AbsorbBps: 1}, nil, nil)
	}()
}

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("cap=2M,absorb=100M,drain=50M,seal=1ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{CapacityBytes: 2 << 20, AbsorbBps: 100 << 20, DrainBps: 50 << 20, SealLatency: time.Millisecond}
	if c != want {
		t.Fatalf("ParseSpec = %+v, want %+v", c, want)
	}
	if c, err = ParseSpec(""); err != nil || c != DefaultConfig() {
		t.Fatalf("empty spec = %+v, %v, want defaults", c, err)
	}
	if c, err = ParseSpec("cap=1024"); err != nil || c.CapacityBytes != 1024 {
		t.Fatalf("plain bytes = %+v, %v", c, err)
	}
	for _, spec := range []string{
		"drain=0",   // zero drain throttle
		"cap",       // no value
		"cap=",      // empty size
		"cap=M",     // bare suffix
		"cap=12x",   // bad digit
		"seal=fast", // bad duration
		"seal=-1ms", // negative seal latency
		"turbo=1",   // unknown key
		"cap=-2M",   // negative size
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted an invalid spec", spec)
		}
	}
}

func TestEpochs(t *testing.T) {
	e := NewEpochs(3)
	if e.Committed() != 0 {
		t.Fatalf("fresh tracker committed %d, want 0", e.Committed())
	}
	e.Seal(0, 1)
	e.Seal(1, 1)
	if e.Committed() != 0 {
		t.Fatalf("committed %d with rank 2 unsealed, want 0", e.Committed())
	}
	e.Seal(2, 1)
	if e.Committed() != 1 {
		t.Fatalf("committed %d, want 1", e.Committed())
	}
	e.Seal(0, 2)
	if e.Committed() != 1 {
		t.Fatalf("committed %d after one rank advanced, want 1", e.Committed())
	}
	if e.Ranks() != 3 {
		t.Fatalf("ranks = %d", e.Ranks())
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-order seal accepted")
		}
	}()
	e.Seal(1, 3) // skips epoch 2
}

// nullWriter completes every write instantly and allocation-free.
type nullWriter struct{}

func (nullWriter) Write(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx) error {
	return nil
}

// BenchmarkBurstAbsorb measures the append hot path (no draining): the
// ring-buffer push and device pacing must not allocate in steady state.
func BenchmarkBurstAbsorb(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel(1)
	tier := NewTier(k, Config{
		CapacityBytes: 1 << 50, AbsorbBps: 1 << 30, DrainBps: 1 << 30,
	}, func(int) Writer { return nullWriter{} }, nil)
	l := tier.Log(0)
	exts := []ext.Extent{{Off: 0, Len: 4096}}
	k.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			exts[0].Off = int64(i) * 4096
			l.Append(p, 0, 1, "bench.dat", exts)
		}
	})
	b.ResetTimer()
	k.RunUntil(1 << 62)
	b.StopTimer()
	if got := tier.Stats().Absorbed; got != int64(b.N)*4096 {
		b.Fatalf("absorbed %d bytes, want %d", got, int64(b.N)*4096)
	}
}

// BenchmarkBurstDrain measures the steady-state absorb→seal→drain cycle
// against an instant PFS writer: the drainer's wake, pacing, and pop must
// not allocate once the ring is warm.
func BenchmarkBurstDrain(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel(1)
	tier := NewTier(k, Config{
		CapacityBytes: 1 << 30, AbsorbBps: 1 << 30, DrainBps: 1 << 30,
	}, func(int) Writer { return nullWriter{} }, nil)
	l := tier.Log(0)
	exts := []ext.Extent{{Off: 0, Len: 4096}}
	k.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			exts[0].Off = int64(i) * 4096
			l.Append(p, 0, i+1, "bench.dat", exts)
			l.Seal(p, 0, i+1)
		}
	})
	b.ResetTimer()
	k.RunUntil(1 << 62)
	b.StopTimer()
	s := tier.Stats()
	if s.Drained != int64(b.N)*4096 || s.Resident != 0 {
		b.Fatalf("drained %d of %d bytes (resident %d)", s.Drained, int64(b.N)*4096, s.Resident)
	}
}
