package sim

import (
	"testing"
	"time"
)

// Micro-benchmarks of the kernel hot paths the sweep engine leans on:
// event scheduling, Proc sleep/wake, and Signal waits. These are the
// per-simulated-operation costs, so allocs/op is the metric the baseline
// guards most tightly — the event free list and the per-Proc reusable
// waiter should keep the steady state at zero.

func BenchmarkKernelEvents(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			k.After(time.Microsecond, tick)
		}
	}
	k.After(time.Microsecond, tick)
	k.Run()
	if count != b.N {
		b.Fatalf("ran %d events, want %d", count, b.N)
	}
}

func BenchmarkKernelSleepWake(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel(1)
	k.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	k.Run()
}

func BenchmarkKernelSignalBroadcast(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel(1)
	s := k.NewSignal()
	const waiters = 8
	for w := 0; w < waiters; w++ {
		k.Spawn("waiter", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				s.Wait(p)
			}
		})
	}
	k.Spawn("broadcaster", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond) // let every waiter park first
			s.Broadcast()
		}
	})
	k.Run()
}

func BenchmarkKernelWaitTimeout(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel(1)
	s := k.NewSignal()
	k.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if s.WaitTimeout(p, time.Microsecond) {
				b.Errorf("wait %d: woken without a broadcast", i)
				return
			}
		}
	})
	k.Run()
}

// BenchmarkKernelPopulatedHeap measures scheduling against a deep standing
// heap: 1024 far-future events keep the 4-ary sift paths honest (an empty
// heap would route everything through the same-instant FIFO or solo-sleep
// shortcuts and never touch them).
func BenchmarkKernelPopulatedHeap(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel(1)
	const standing = 1024
	for i := 0; i < standing; i++ {
		k.After(time.Hour+time.Duration(i)*time.Second, func() {})
	}
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			k.After(time.Microsecond, tick)
		}
	}
	k.After(time.Microsecond, tick)
	k.RunUntil(time.Hour - time.Second)
	if count != b.N {
		b.Fatalf("ran %d events, want %d", count, b.N)
	}
}

// BenchmarkKernelWaitTimeoutEarlyWake measures the watchdog pattern where
// the broadcast always beats the timeout: every wait arms a long timer that
// must then be canceled, so this pins both the cancel path's cost and that
// spent timers never accumulate in the queue.
func BenchmarkKernelWaitTimeoutEarlyWake(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel(1)
	s := k.NewSignal()
	k.Spawn("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if !s.WaitTimeout(p, time.Hour) {
				b.Errorf("wait %d: timed out, want early broadcast", i)
				return
			}
		}
	})
	k.Spawn("waker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond) // let the waiter park first
			s.Broadcast()
		}
	})
	k.Run()
	if n := k.Pending(); n != 0 {
		b.Fatalf("Pending = %d after drain, want 0 (canceled timers must not linger)", n)
	}
}
