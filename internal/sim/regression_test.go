package sim

import (
	"math/rand"
	"testing"
	"time"

	"dualpar/internal/check"
)

// TestRunUntilStopKeepsClock pins the Stop/RunUntil interaction: Stop must
// leave the clock where the last event ran, not fast-forward it to the
// deadline, and a later RunUntil must resume the still-queued events at
// their original times. (The fast-forward-on-Stop bug made a resumed
// kernel fire queued events in its past.)
func TestRunUntilStopKeepsClock(t *testing.T) {
	k := NewKernel(1)
	var at3 time.Duration
	k.After(2*time.Second, func() { k.Stop() })
	k.After(3*time.Second, func() { at3 = k.Now() })

	k.RunUntil(10 * time.Second)
	if got := k.Now(); got != 2*time.Second {
		t.Fatalf("clock after Stop = %v, want 2s (must not jump to the deadline)", got)
	}
	if at3 != 0 {
		t.Fatalf("3s event ran before resume")
	}

	k.RunUntil(10 * time.Second)
	if at3 != 3*time.Second {
		t.Fatalf("resumed event ran at %v, want 3s", at3)
	}
	if got := k.Now(); got != 10*time.Second {
		t.Fatalf("clock after drained resume = %v, want the 10s deadline", got)
	}
}

// TestQueueRingCapacityBounded pins the ring-buffer fix: a long-lived queue
// cycling many items at low depth must keep a small constant buffer, not
// accumulate the dead prefix of everything it has consumed (the old
// head-slicing queue leaked its entire history).
func TestQueueRingCapacityBounded(t *testing.T) {
	q := NewQueue[int](nil)
	for i := 0; i < 100000; i++ {
		q.Put(i)
		if v, ok := q.TryGet(); !ok || v != i {
			t.Fatalf("cycle %d: got (%d, %v)", i, v, ok)
		}
	}
	if c := cap(q.buf); c > 8 {
		t.Fatalf("ring capacity = %d after 100k depth-1 put/get cycles, want <= 8", c)
	}
}

// TestWaitTimeoutCancelsDeadTimer pins the dead-timer fix: a WaitTimeout
// won by an early Broadcast must cancel its expiry event instead of leaving
// it queued until it fires as a no-op (watchdog-heavy runs carried armies
// of spent timers).
func TestWaitTimeoutCancelsDeadTimer(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSignal()
	k.After(time.Millisecond, func() { s.Broadcast() })
	woke := false
	k.Spawn("w", func(p *Proc) { woke = s.WaitTimeout(p, time.Hour) })
	k.RunUntil(2 * time.Millisecond)
	if !woke {
		t.Fatalf("waiter not woken by the early broadcast")
	}
	if n := k.Pending(); n != 0 {
		t.Fatalf("Pending = %d after broadcast-won wait, want 0 (expiry event canceled)", n)
	}
}

// refEvent is one entry of the reference event queue: a straightforward
// O(n) linear-scan min-extraction over (at, seq), independently
// re-implementing the pop order the kernel's 4-ary heap plus same-instant
// FIFO must produce.
type refEvent struct {
	at  time.Duration
	seq uint64
	id  int
}

// TestKernelPopOrderMatchesReference drives the kernel and a brute-force
// reference queue through the same randomized schedule/cancel workload —
// including same-instant children spawned mid-run, which exercise the FIFO
// batch path — and requires the identical execution order.
func TestKernelPopOrderMatchesReference(t *testing.T) {
	const (
		events  = 200
		maxAt   = 50 * time.Millisecond
		childID = 1 << 20 // child ids = parent id + childID, never spawn grandchildren
	)
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel(0)
		var got []int

		// Schedule the initial batch in lockstep with the reference queue;
		// seq assignment order is identical by construction.
		var pending []refEvent
		refSeq := uint64(0)
		ids := make([]eventID, events)
		for id := 0; id < events; id++ {
			at := time.Duration(rng.Intn(int(maxAt/time.Millisecond))) * time.Millisecond
			id := id
			ids[id] = k.schedule(at, func() {
				got = append(got, id)
				if id%5 == 0 {
					cid := id + childID
					k.schedule(k.now, func() { got = append(got, cid) })
				}
			})
			pending = append(pending, refEvent{at: at, seq: refSeq, id: id})
			refSeq++
		}
		// Cancel a random quarter (tombstoning FIFO entries and removing
		// heap entries alike).
		for i := events - 1; i >= 0; i-- {
			if rng.Intn(4) == 0 {
				k.cancel(ids[i])
				pending = append(pending[:i], pending[i+1:]...)
			}
		}

		// Reference execution: pop strictly by (at, seq); a popped parent
		// enqueues its same-instant child with the next seq, exactly as the
		// kernel's callback re-enters schedule.
		var want []int
		for len(pending) > 0 {
			mi := 0
			for j, e := range pending {
				if e.at < pending[mi].at || (e.at == pending[mi].at && e.seq < pending[mi].seq) {
					mi = j
				}
			}
			e := pending[mi]
			pending = append(pending[:mi], pending[mi+1:]...)
			want = append(want, e.id)
			if e.id < childID && e.id%5 == 0 {
				pending = append(pending, refEvent{at: e.at, seq: refSeq, id: e.id + childID})
				refSeq++
			}
		}

		k.Run()
		if len(got) != len(want) {
			t.Fatalf("seed %d: kernel ran %d events, reference %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: pop order diverges at %d: kernel %d, reference %d",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestClockMonotoneUnderStopResume property-tests the clock across random
// RunUntil/Stop/schedule sequences with the audit oracle armed: no Proc may
// ever observe time moving backwards, and the kernel clock itself must be
// non-decreasing across every RunUntil call.
func TestClockMonotoneUnderStopResume(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel(seed)
		aud := check.New(seed, "sim clock monotonicity property")
		aud.SetArtifactDir(t.TempDir())
		aud.SetClock(k.Now)
		k.SetAudit(aud)

		// A few procs sleeping random amounts (some identical, to collide
		// instants), signaling each other through a queue.
		q := NewQueue[int](k)
		for w := 0; w < 3; w++ {
			k.Spawn("worker", func(p *Proc) {
				for i := 0; i < 50; i++ {
					p.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
					q.Put(i)
				}
			})
		}
		k.Spawn("drain", func(p *Proc) {
			for i := 0; i < 150; i++ {
				q.Get(p)
			}
		})
		// Random Stop bombs.
		for i := 0; i < 10; i++ {
			k.After(time.Duration(rng.Intn(200))*time.Millisecond, k.Stop)
		}

		last := k.Now()
		for i := 0; i < 40 && (k.Pending() > 0 || i == 0); i++ {
			deadline := k.Now() + time.Duration(rng.Intn(60))*time.Millisecond
			k.RunUntil(deadline)
			if k.Now() < last {
				t.Fatalf("seed %d: clock moved backwards across RunUntil: %v -> %v", seed, last, k.Now())
			}
			last = k.Now()
		}
		k.Run() // drain whatever remains
		for _, v := range aud.Violations() {
			t.Errorf("seed %d: audit violation: %v", seed, v)
		}
	}
}
