package sim

import "fmt"

// A Resource is a counting semaphore in virtual time with FIFO admission:
// a large request at the head of the line blocks smaller ones behind it, so
// no requester starves.
type Resource struct {
	k     *Kernel
	cap   int
	used  int
	queue []*resWaiter
}

type resWaiter struct {
	p       *Proc
	n       int
	granted bool
}

// NewResource returns a Resource with the given capacity.
func (k *Kernel) NewResource(capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: non-positive resource capacity")
	}
	return &Resource{k: k, cap: capacity}
}

// Acquire blocks p until n units are available and takes them. n must not
// exceed the capacity.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.cap {
		panic(fmt.Sprintf("sim: acquire %d of capacity %d", n, r.cap))
	}
	if len(r.queue) == 0 && r.used+n <= r.cap {
		r.used += n
		return
	}
	w := &resWaiter{p: p, n: n}
	r.queue = append(r.queue, w)
	p.park()
	if !w.granted {
		panic("sim: resource waiter woken without grant")
	}
}

// Release returns n units and admits as many queued waiters, in FIFO order,
// as now fit.
func (r *Resource) Release(n int) {
	if n <= 0 {
		panic("sim: non-positive release")
	}
	r.used -= n
	if r.used < 0 {
		panic("sim: resource released below zero")
	}
	for len(r.queue) > 0 {
		head := r.queue[0]
		if r.used+head.n > r.cap {
			break
		}
		r.used += head.n
		head.granted = true
		r.queue = r.queue[1:]
		head.p.wakeAt(r.k.now)
	}
}

// InUse reports the units currently held.
func (r *Resource) InUse() int { return r.used }

// Waiting reports the number of queued acquirers.
func (r *Resource) Waiting() int { return len(r.queue) }
