package sim

import "time"

// A Proc is a simulated process: a goroutine whose execution is interleaved
// with virtual time under kernel control. Proc methods must only be called
// from the Proc's own goroutine (the function passed to Spawn).
type Proc struct {
	k       *Kernel
	name    string
	resume  chan struct{}
	wake    func() // pre-built resume event callback, shared by every wakeAt
	timerFn func() // pre-built WaitTimeout expiry callback, shared by every timed wait
	w       waiter // reusable Signal wait record (a Proc waits on one thing at a time)

	lastNow time.Duration // audit only: virtual time observed at the last resume
}

// Spawn creates a Proc named name running fn, starting at the current
// virtual time. It may be called from kernel context (before Run) or from
// another Proc.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt creates a Proc that starts at absolute virtual time at.
func (k *Kernel) SpawnAt(at time.Duration, name string, fn func(*Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	p.wake = func() {
		p.resume <- struct{}{}
		<-p.k.parked
	}
	p.timerFn = func() {
		// Expiry of the one timed wait this Proc can have outstanding. A
		// stale firing (the wait already ended, w may be serving a later
		// wait) is impossible as long as WaitTimeout cancels losing timers,
		// but the generation check keeps it a no-op regardless.
		w := &p.w
		if w.seq != w.timerSeq || w.fired {
			return
		}
		w.fired, w.timedOut = true, true
		w.timer = noEvent
		p.wakeAt(p.k.now)
	}
	p.w.p = p
	p.w.timer = noEvent
	k.nprocs++
	k.schedule(at, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil && k.failure == nil {
					k.failure = &procPanic{proc: p.name, value: r}
				}
				k.nprocs--
				k.parked <- struct{}{} // hand control back to the kernel
			}()
			fn(p)
		}()
		<-k.parked
	})
	return p
}

// Name returns the Proc's name.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this Proc runs under.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// park hands control to the kernel and blocks until resumed by a scheduled
// wake event.
func (p *Proc) park() {
	p.k.parked <- struct{}{}
	<-p.resume
	if p.k.audit != nil {
		p.k.audit.Checkf(p.k.now >= p.lastNow, "sim.proc.monotone",
			"proc %s resumed at %v after observing %v", p.name, p.k.now, p.lastNow)
		p.lastNow = p.k.now
	}
}

// wake schedules this Proc to resume at absolute time at. It runs in kernel
// context. The resume callback is built once per Proc (a Proc has at most
// one pending wake), so scheduling a wake allocates nothing.
func (p *Proc) wakeAt(at time.Duration) {
	p.k.schedule(at, p.wake)
}

// Sleep suspends the Proc for duration d of virtual time.
//
// Solo fast path: when nothing else is runnable in [now, now+d] — the
// same-instant FIFO is empty, the earliest heap event is strictly later
// than the wake would be, the RunUntil deadline is not in between, and
// Stop has not been called — handing control to the kernel would only pop
// this Proc's own wake event straight back. In that case the Proc advances
// the clock in place and keeps running, skipping the two goroutine
// switches of the park/resume handshake. The event timeline is identical:
// by construction no event exists in the skipped window, and relative
// schedule order (which decides same-instant ties) is unchanged.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	k := p.k
	at := k.now + d
	if !k.stopped && k.fifoHead >= len(k.fifo) &&
		(len(k.heap) == 0 || k.arena[k.heap[0]].at > at) &&
		(k.deadline < 0 || at <= k.deadline) {
		k.now = at
		if k.audit != nil {
			k.audit.Checkf(k.now >= p.lastNow, "sim.proc.monotone",
				"proc %s resumed at %v after observing %v", p.name, k.now, p.lastNow)
			p.lastNow = k.now
		}
		return
	}
	p.wakeAt(at)
	p.park()
}

// Yield reschedules the Proc at the current time, letting every other
// activity already queued at this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }
