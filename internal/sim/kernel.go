// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// A Kernel advances a virtual clock by executing events in (time, sequence)
// order. Simulated activities are written as ordinary Go functions running in
// Procs; a Proc blocks in virtual time with Sleep, Signal.Wait, Queue.Get,
// or Resource.Acquire. Although each Proc runs on its own goroutine, the
// kernel enforces strict alternation — exactly one Proc (or the kernel
// itself) executes at any instant — so simulations are fully deterministic:
// the same program and seed yield the same event order and results.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"dualpar/internal/check"
)

// event is a scheduled callback in virtual time.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation. The zero value is not usable; create
// one with NewKernel.
type Kernel struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	free    []*event      // recycled events (the sweep hot path allocates none at steady state)
	parked  chan struct{} // handshake: running Proc yields control back
	failure *procPanic    // first panic raised inside a Proc
	nprocs  int           // live (spawned, not yet finished) procs
	stopped bool
	rng     *rand.Rand
	audit   check.Ledger // nil unless a run auditor is attached
}

// SetAudit attaches an audit ledger: every Proc then verifies on resume that
// its observed virtual time never moves backwards. Nil (the default) costs
// one pointer comparison per park and keeps the hot paths allocation-free.
func (k *Kernel) SetAudit(l check.Ledger) { k.audit = l }

// procPanic carries a panic out of a Proc goroutine into Run.
type procPanic struct {
	proc  string
	value interface{}
}

// NewKernel returns a kernel with its clock at zero and a deterministic
// random source derived from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		parked: make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic random source. It must only be
// used from kernel or Proc context.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// schedule enqueues fn to run at absolute virtual time at. Event records are
// recycled through a free list: RunUntil returns each popped event after its
// callback finishes, so a steady-state simulation stops allocating them. No
// caller retains the record past its callback.
func (k *Kernel) schedule(at time.Duration, fn func()) *event {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, k.now))
	}
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		e.at, e.seq, e.fn = at, k.seq, fn
	} else {
		e = &event{at: at, seq: k.seq, fn: fn}
	}
	k.seq++
	heap.Push(&k.events, e)
	return e
}

// After schedules fn to run in kernel context after delay d. fn must not
// block in virtual time; use Spawn for blocking activities.
func (k *Kernel) After(d time.Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.schedule(k.now+d, fn)
}

// Every schedules fn to run in kernel context every period, starting one
// period from now, until the simulation ends or fn returns false.
func (k *Kernel) Every(period time.Duration, fn func() bool) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	var tick func()
	tick = func() {
		if fn() {
			k.schedule(k.now+period, tick)
		}
	}
	k.schedule(k.now+period, tick)
}

// Stop halts Run after the current event completes. Pending events remain
// queued and a subsequent Run continues from them.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until none remain, Stop is called, or a Proc panics
// (in which case the panic is re-raised on the caller's goroutine).
func (k *Kernel) Run() {
	k.RunUntil(-1)
}

// RunUntil executes events with timestamps <= deadline and then sets the
// clock to deadline. A negative deadline means run to completion. Events
// beyond the deadline stay queued for later Run/RunUntil calls.
func (k *Kernel) RunUntil(deadline time.Duration) {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		next := k.events[0]
		if deadline >= 0 && next.at > deadline {
			break
		}
		heap.Pop(&k.events)
		k.now = next.at
		next.fn()
		next.fn = nil
		k.free = append(k.free, next)
		if k.failure != nil {
			f := k.failure
			k.failure = nil
			panic(fmt.Sprintf("sim: proc %q panicked: %v", f.proc, f.value))
		}
	}
	if deadline >= 0 && k.now < deadline {
		k.now = deadline
	}
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// Live reports the number of spawned Procs that have not yet finished.
func (k *Kernel) Live() int { return k.nprocs }
