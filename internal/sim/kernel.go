// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// A Kernel advances a virtual clock by executing events in (time, sequence)
// order. Simulated activities are written as ordinary Go functions running in
// Procs; a Proc blocks in virtual time with Sleep, Signal.Wait, Queue.Get,
// or Resource.Acquire. Although each Proc runs on its own goroutine, the
// kernel enforces strict alternation — exactly one Proc (or the kernel
// itself) executes at any instant — so simulations are fully deterministic:
// the same program and seed yield the same event order and results.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"dualpar/internal/check"
)

// event is a scheduled callback in virtual time. Events live in the kernel's
// flat arena and are addressed by index everywhere — the priority queue, the
// same-instant FIFO, and the free list all hold arena indices, never
// pointers, so the scheduler moves 4-byte ints instead of boxed interface
// values and a recycled slot is a free-list push.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	pos int32 // index in Kernel.heap, or posFIFO / posFree
}

// pos sentinels for events not currently stored in the heap.
const (
	posFIFO int32 = -1 // queued in the same-instant FIFO
	posFree int32 = -2 // on the free list (or popped and running)
)

// eventID names one scheduled event for cancellation. The generation
// (seq) guards against the arena slot having been recycled: cancel is a
// no-op unless the slot still holds exactly the named event.
type eventID struct {
	idx int32
	seq uint64
}

// noEvent is the invalid eventID (the zero value would name arena slot 0).
var noEvent = eventID{idx: -1}

// Kernel is a discrete-event simulation. The zero value is not usable; create
// one with NewKernel.
type Kernel struct {
	now   time.Duration
	seq   uint64
	arena []event // flat event storage; heap/fifo/free hold indices into it

	// heap is an index-based 4-ary min-heap over (at, seq). Quadrupling the
	// fan-out halves the levels a pop sifts through, and the four child
	// indices it compares per level share one cache line.
	heap []int32

	// fifo batches same-instant work: an event scheduled at exactly now,
	// while the heap holds nothing at or before now, must run after every
	// already-queued same-instant event (its seq is the largest yet issued)
	// — so it skips the heap entirely and is appended here. Broadcast
	// fan-outs, queue hand-offs, yields, and netsim same-instant deliveries
	// all ride this path: waking N procs at one instant is N appends and N
	// slice reads, not N heap sifts.
	fifo     []int32
	fifoHead int

	free    []int32 // recycled arena slots
	pending int     // scheduled events not yet run or canceled

	// deadline is the active RunUntil deadline (-1 = unbounded), read by the
	// solo-sleep fast path in Proc.Sleep (valid whenever Proc code runs,
	// since Procs only execute inside the event loop).
	deadline time.Duration

	parked  chan struct{} // handshake: running Proc yields control back
	failure *procPanic    // first panic raised inside a Proc
	nprocs  int           // live (spawned, not yet finished) procs
	stopped bool
	rng     *rand.Rand
	audit   check.Ledger // nil unless a run auditor is attached
}

// SetAudit attaches an audit ledger: every Proc then verifies on resume that
// its observed virtual time never moves backwards. Nil (the default) costs
// one pointer comparison per park and keeps the hot paths allocation-free.
func (k *Kernel) SetAudit(l check.Ledger) { k.audit = l }

// procPanic carries a panic out of a Proc goroutine into Run.
type procPanic struct {
	proc  string
	value interface{}
}

// NewKernel returns a kernel with its clock at zero and a deterministic
// random source derived from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		deadline: -1,
		parked:   make(chan struct{}),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic random source. It must only be
// used from kernel or Proc context.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// schedule enqueues fn to run at absolute virtual time at and returns its
// id for cancel. Arena slots are recycled through the free list: the run
// loop returns each popped slot before its callback executes, so a
// steady-state simulation stops allocating event records entirely.
func (k *Kernel) schedule(at time.Duration, fn func()) eventID {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, k.now))
	}
	var idx int32
	if n := len(k.free); n > 0 {
		idx = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.arena = append(k.arena, event{})
		idx = int32(len(k.arena) - 1)
	}
	e := &k.arena[idx]
	e.at, e.seq, e.fn = at, k.seq, fn
	k.seq++
	k.pending++
	if at == k.now && (len(k.heap) == 0 || k.arena[k.heap[0]].at > k.now) {
		// Same-instant batch: every event at this instant still in the
		// structure is already in the FIFO with a smaller seq, and the heap
		// holds only later times, so appending preserves (time, seq) order.
		e.pos = posFIFO
		k.fifo = append(k.fifo, idx)
	} else {
		k.heapPush(idx)
	}
	return eventID{idx: idx, seq: e.seq}
}

// cancel removes a scheduled event before it fires. Canceling an event that
// already ran, was already canceled, or whose slot has been recycled is a
// no-op, so callers may cancel stale ids freely.
func (k *Kernel) cancel(id eventID) {
	if id.idx < 0 || int(id.idx) >= len(k.arena) {
		return
	}
	e := &k.arena[id.idx]
	if e.seq != id.seq || e.fn == nil {
		return
	}
	k.pending--
	if e.pos >= 0 {
		k.heapRemove(int(e.pos))
		k.freeSlot(id.idx)
	} else {
		// In the same-instant FIFO: tombstone in place (removal from the
		// middle would shift the batch); the run loop frees it when reached.
		e.fn = nil
	}
}

// freeSlot recycles an arena slot.
func (k *Kernel) freeSlot(idx int32) {
	e := &k.arena[idx]
	e.fn = nil
	e.pos = posFree
	k.free = append(k.free, idx)
}

// After schedules fn to run in kernel context after delay d. fn must not
// block in virtual time; use Spawn for blocking activities.
func (k *Kernel) After(d time.Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.schedule(k.now+d, fn)
}

// Every schedules fn to run in kernel context every period, starting one
// period from now, until the simulation ends or fn returns false.
func (k *Kernel) Every(period time.Duration, fn func() bool) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	var tick func()
	tick = func() {
		if fn() {
			k.schedule(k.now+period, tick)
		}
	}
	k.schedule(k.now+period, tick)
}

// Stop halts Run after the current event completes. Pending events remain
// queued and a subsequent Run continues from them.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until none remain, Stop is called, or a Proc panics
// (in which case the panic is re-raised on the caller's goroutine).
func (k *Kernel) Run() {
	k.RunUntil(-1)
}

// RunUntil executes events with timestamps <= deadline. A negative deadline
// means run to completion. When the loop genuinely drains past the deadline
// — no runnable event at or before it remains — the clock is fast-forwarded
// to the deadline; if Stop exited the loop early the clock stays where the
// last event left it, so queued events never fire in the kernel's past.
// Events beyond the deadline stay queued for later Run/RunUntil calls.
func (k *Kernel) RunUntil(deadline time.Duration) {
	k.stopped = false
	k.deadline = deadline
	for !k.stopped {
		var idx int32
		if k.fifoHead < len(k.fifo) {
			idx = k.fifo[k.fifoHead]
			e := &k.arena[idx]
			if e.fn == nil { // canceled in place; discard the tombstone
				k.fifoHead++
				k.freeSlot(idx)
				continue
			}
			if deadline >= 0 && e.at > deadline {
				break
			}
			k.fifoHead++
		} else {
			if k.fifoHead > 0 {
				k.fifo = k.fifo[:0]
				k.fifoHead = 0
			}
			if len(k.heap) == 0 {
				break
			}
			if deadline >= 0 && k.arena[k.heap[0]].at > deadline {
				break
			}
			idx = k.heapPopTop()
		}
		e := &k.arena[idx]
		k.now = e.at
		fn := e.fn
		k.pending--
		k.freeSlot(idx) // recycle before running: fn's own schedules reuse it
		fn()
		if k.failure != nil {
			f := k.failure
			k.failure = nil
			panic(fmt.Sprintf("sim: proc %q panicked: %v", f.proc, f.value))
		}
	}
	if deadline >= 0 && k.now < deadline && !k.stopped {
		k.now = deadline
	}
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.pending }

// Live reports the number of spawned Procs that have not yet finished.
func (k *Kernel) Live() int { return k.nprocs }

// The heap is a 4-ary min-heap of arena indices ordered by (at, seq):
// children of slot i live at 4i+1..4i+4. seq values are unique, so the
// order is total and ties never arise.

// heapPush inserts an arena index.
func (k *Kernel) heapPush(idx int32) {
	k.heap = append(k.heap, idx)
	k.siftUp(len(k.heap) - 1)
}

// heapPopTop removes and returns the minimum element's arena index.
func (k *Kernel) heapPopTop() int32 {
	h := k.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	k.heap = h[:last]
	if last > 0 {
		k.siftDown(0)
	}
	return top
}

// heapRemove deletes the element at heap position i (cancel's path).
func (k *Kernel) heapRemove(i int) {
	h := k.heap
	last := len(h) - 1
	moved := h[last]
	k.heap = h[:last]
	if i == last {
		return
	}
	h[i] = moved
	k.arena[moved].pos = int32(i)
	k.siftDown(i)
	k.siftUp(int(k.arena[moved].pos))
}

// siftUp restores heap order upward from position i.
func (k *Kernel) siftUp(i int) {
	h := k.heap
	idx := h[i]
	e := &k.arena[idx]
	for i > 0 {
		parent := (i - 1) / 4
		pe := &k.arena[h[parent]]
		if pe.at < e.at || (pe.at == e.at && pe.seq < e.seq) {
			break
		}
		h[i] = h[parent]
		k.arena[h[i]].pos = int32(i)
		i = parent
	}
	h[i] = idx
	e.pos = int32(i)
}

// siftDown restores heap order downward from position i.
func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	idx := h[i]
	e := &k.arena[idx]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		be := &k.arena[h[c]]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			je := &k.arena[h[j]]
			if je.at < be.at || (je.at == be.at && je.seq < be.seq) {
				best, be = j, je
			}
		}
		if e.at < be.at || (e.at == be.at && e.seq < be.seq) {
			break
		}
		h[i] = h[best]
		k.arena[h[i]].pos = int32(i)
		i = best
	}
	h[i] = idx
	e.pos = int32(i)
}
