package sim

// A Queue is an unbounded FIFO channel in virtual time. Put never blocks;
// Get blocks the calling Proc until an item is available. Multiple getters
// are served in wakeup order, deterministically.
type Queue[T any] struct {
	k        *Kernel
	items    []T
	nonEmpty *Signal
}

// NewQueue returns an empty queue bound to kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k, nonEmpty: k.NewSignal()}
}

// Put appends v and wakes any blocked getters. It may be called from kernel
// or Proc context.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	q.nonEmpty.Broadcast()
}

// Get removes and returns the head item, blocking p while the queue is
// empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.nonEmpty.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryGet removes and returns the head item if one is present.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Drain removes and returns all queued items.
func (q *Queue[T]) Drain() []T {
	items := q.items
	q.items = nil
	return items
}
