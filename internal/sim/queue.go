package sim

// A Queue is an unbounded FIFO channel in virtual time. Put never blocks;
// Get blocks the calling Proc until an item is available. Multiple getters
// are served in wakeup order, deterministically.
//
// Items live in a power-of-two ring buffer: consuming the head advances an
// index instead of re-slicing, so a long-lived dispatcher queue retains at
// most one buffer of capacity proportional to its high-water mark — never
// the dead prefix of everything it has consumed.
type Queue[T any] struct {
	buf      []T // ring storage; len(buf) is zero or a power of two
	head     int // index of the oldest item
	n        int // queued items
	nonEmpty Signal
}

// NewQueue returns an empty queue. The kernel argument is vestigial (the
// zero Queue works); it is kept so call sites read uniformly.
func NewQueue[T any](k *Kernel) *Queue[T] {
	_ = k
	return &Queue[T]{}
}

// Put appends v and wakes any blocked getters. It may be called from kernel
// or Proc context.
func (q *Queue[T]) Put(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
	q.nonEmpty.Wake(1)
}

// grow doubles the ring (minimum 8 slots), linearizing the live items.
func (q *Queue[T]) grow() {
	nb := make([]T, max(2*len(q.buf), 8))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

// pop removes and returns the head item; the caller guarantees q.n > 0. The
// vacated slot is zeroed so the ring never retains a consumed item for GC.
func (q *Queue[T]) pop() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// Get removes and returns the head item, blocking p while the queue is
// empty.
func (q *Queue[T]) Get(p *Proc) T {
	for q.n == 0 {
		q.nonEmpty.Wait(p)
	}
	return q.pop()
}

// TryGet removes and returns the head item if one is present.
func (q *Queue[T]) TryGet() (T, bool) {
	if q.n == 0 {
		var zero T
		return zero, false
	}
	return q.pop(), true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return q.n }

// Drain removes and returns all queued items.
func (q *Queue[T]) Drain() []T {
	if q.n == 0 {
		return nil
	}
	out := make([]T, q.n)
	for i := range out {
		out[i] = q.pop()
	}
	return out
}
