package sim

import (
	"testing"
	"time"
)

func TestAfterOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.After(20*time.Millisecond, func() { order = append(order, 2) })
	k.After(10*time.Millisecond, func() { order = append(order, 1) })
	k.After(30*time.Millisecond, func() { order = append(order, 3) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if k.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", k.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(time.Millisecond, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	var at1, at2 time.Duration
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		at1 = p.Now()
		p.Sleep(2 * time.Second)
		at2 = p.Now()
	})
	k.Run()
	if at1 != 5*time.Second || at2 != 7*time.Second {
		t.Fatalf("wake times %v, %v; want 5s, 7s", at1, at2)
	}
}

func TestSpawnAt(t *testing.T) {
	k := NewKernel(1)
	var started time.Duration = -1
	k.SpawnAt(3*time.Second, "late", func(p *Proc) { started = p.Now() })
	k.Run()
	if started != 3*time.Second {
		t.Fatalf("started at %v, want 3s", started)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel(42)
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(time.Duration(1+len(name)) * time.Millisecond)
					log = append(log, name)
				}
			})
		}
		k.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatalf("nondeterministic length")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("nondeterministic order: %v vs %v", got, first)
				}
			}
		}
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.After(time.Second, func() { fired++ })
	k.After(3*time.Second, func() { fired++ })
	k.RunUntil(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", k.Now())
	}
	k.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after full run, want 2", fired)
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.After(time.Second, func() { fired++; k.Stop() })
	k.After(2*time.Second, func() { fired++ })
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (Stop should halt)", fired)
	}
	k.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 after resuming", fired)
	}
}

func TestEvery(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	k.Every(time.Second, func() bool {
		ticks++
		return ticks < 4
	})
	k.Run()
	if ticks != 4 {
		t.Fatalf("ticks = %d, want 4", ticks)
	}
	if k.Now() != 4*time.Second {
		t.Fatalf("clock = %v, want 4s", k.Now())
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("bad", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("boom")
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatalf("expected panic from Run")
		}
	}()
	k.Run()
}

func TestLiveCount(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("p1", func(p *Proc) { p.Sleep(time.Second) })
	k.Spawn("p2", func(p *Proc) { p.Sleep(2 * time.Second) })
	if k.Live() != 2 {
		t.Fatalf("live = %d, want 2", k.Live())
	}
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("live = %d after run, want 0", k.Live())
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSignal()
	woken := 0
	for i := 0; i < 5; i++ {
		k.Spawn("waiter", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	k.Spawn("caster", func(p *Proc) {
		p.Sleep(time.Second)
		if s.WaiterCount() != 5 {
			t.Errorf("waiters = %d, want 5", s.WaiterCount())
		}
		s.Broadcast()
	})
	k.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestSignalNoMemory(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSignal()
	woken := false
	k.Spawn("caster", func(p *Proc) { s.Broadcast() })
	k.SpawnAt(time.Second, "late-waiter", func(p *Proc) {
		if s.WaitTimeout(p, time.Second) {
			woken = true
		}
	})
	k.Run()
	if woken {
		t.Fatalf("waiter woken by broadcast that happened before it waited")
	}
}

func TestWaitTimeoutFires(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSignal()
	var signaled bool
	var wokeAt time.Duration
	k.Spawn("waiter", func(p *Proc) {
		signaled = s.WaitTimeout(p, 3*time.Second)
		wokeAt = p.Now()
	})
	k.Run()
	if signaled {
		t.Fatalf("WaitTimeout reported signal, want timeout")
	}
	if wokeAt != 3*time.Second {
		t.Fatalf("woke at %v, want 3s", wokeAt)
	}
}

func TestWaitTimeoutSignaledEarly(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSignal()
	var signaled bool
	var wokeAt time.Duration
	k.Spawn("waiter", func(p *Proc) {
		signaled = s.WaitTimeout(p, 10*time.Second)
		wokeAt = p.Now()
	})
	k.Spawn("caster", func(p *Proc) {
		p.Sleep(time.Second)
		s.Broadcast()
	})
	k.Run()
	if !signaled {
		t.Fatalf("WaitTimeout reported timeout, want signal")
	}
	if wokeAt != time.Second {
		t.Fatalf("woke at %v, want 1s", wokeAt)
	}
	// The stale timeout event must not wake the proc again or panic.
}

func TestQueueFIFO(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Second)
			q.Put(i)
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[string](k)
	var gotAt time.Duration
	k.Spawn("consumer", func(p *Proc) {
		q.Get(p)
		gotAt = p.Now()
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(5 * time.Second)
		q.Put("x")
	})
	k.Run()
	if gotAt != 5*time.Second {
		t.Fatalf("got at %v, want 5s", gotAt)
	}
}

func TestQueueTryGetAndDrain(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	if _, ok := q.TryGet(); ok {
		t.Fatalf("TryGet on empty queue succeeded")
	}
	q.Put(1)
	q.Put(2)
	if v, ok := q.TryGet(); !ok || v != 1 {
		t.Fatalf("TryGet = %v,%v; want 1,true", v, ok)
	}
	q.Put(3)
	rest := q.Drain()
	if len(rest) != 2 || rest[0] != 2 || rest[1] != 3 {
		t.Fatalf("Drain = %v, want [2 3]", rest)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", q.Len())
	}
}

func TestResourceSerializes(t *testing.T) {
	k := NewKernel(1)
	r := k.NewResource(1)
	var log []time.Duration
	for i := 0; i < 3; i++ {
		k.Spawn("user", func(p *Proc) {
			r.Acquire(p, 1)
			log = append(log, p.Now())
			p.Sleep(time.Second)
			r.Release(1)
		})
	}
	k.Run()
	want := []time.Duration{0, time.Second, 2 * time.Second}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("acquisitions at %v, want %v", log, want)
		}
	}
}

func TestResourceFIFONoStarvation(t *testing.T) {
	k := NewKernel(1)
	r := k.NewResource(4)
	var order []string
	k.Spawn("hold", func(p *Proc) {
		r.Acquire(p, 3)
		p.Sleep(10 * time.Second)
		r.Release(3)
	})
	k.SpawnAt(time.Second, "big", func(p *Proc) {
		r.Acquire(p, 4) // cannot fit until hold releases
		order = append(order, "big")
		r.Release(4)
	})
	k.SpawnAt(2*time.Second, "small", func(p *Proc) {
		r.Acquire(p, 1) // would fit, but big is ahead: FIFO blocks it
		order = append(order, "small")
		r.Release(1)
	})
	k.Run()
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("order = %v, want [big small]", order)
	}
}

func TestResourceAccounting(t *testing.T) {
	k := NewKernel(1)
	r := k.NewResource(10)
	k.Spawn("u", func(p *Proc) {
		r.Acquire(p, 7)
		if r.InUse() != 7 {
			t.Errorf("InUse = %d, want 7", r.InUse())
		}
		r.Release(7)
		if r.InUse() != 0 {
			t.Errorf("InUse = %d, want 0", r.InUse())
		}
	})
	k.Run()
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel(1)
	wg := k.NewWaitGroup()
	wg.Add(3)
	var doneAt time.Duration
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		k.Spawn("worker", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Second)
			wg.Done()
		})
	}
	k.Run()
	if doneAt != 3*time.Second {
		t.Fatalf("waiter released at %v, want 3s", doneAt)
	}
}

func TestWaitGroupZeroImmediate(t *testing.T) {
	k := NewKernel(1)
	wg := k.NewWaitGroup()
	ran := false
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatalf("Wait on zero count did not return")
	}
}

func TestNestedSpawn(t *testing.T) {
	k := NewKernel(1)
	var childRan time.Duration = -1
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Second)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(time.Second)
			childRan = c.Now()
		})
		p.Sleep(5 * time.Second)
	})
	k.Run()
	if childRan != 2*time.Second {
		t.Fatalf("child ran at %v, want 2s", childRan)
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewKernel(7).Rand().Int63()
	b := NewKernel(7).Rand().Int63()
	if a != b {
		t.Fatalf("same seed produced different values")
	}
}

func TestSpawnAtPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("p", func(p *Proc) { p.Sleep(time.Second) })
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic scheduling in the past")
		}
	}()
	k.SpawnAt(500*time.Millisecond, "late", func(p *Proc) {})
}

func TestAfterNegativePanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	k.After(-time.Second, func() {})
}

func TestResourceMisusePanics(t *testing.T) {
	k := NewKernel(1)
	r := k.NewResource(2)
	for _, fn := range []func(){
		func() { k.NewResource(0) },
		func() { r.Release(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		}()
	}
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic acquiring over capacity")
			}
			panic("boom") // unwind the proc; Run re-raises it
		}()
		r.Acquire(p, 3)
	})
	defer func() { recover() }()
	k.Run()
}

func TestYieldOrdersAfterQueuedEvents(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	k.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
