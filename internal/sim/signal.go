package sim

import "time"

// A Signal is a broadcast condition variable in virtual time. Procs block on
// Wait or WaitTimeout; Broadcast wakes every currently blocked waiter. A
// Signal has no memory: a Broadcast with no waiters is a no-op.
type Signal struct {
	k       *Kernel
	waiters []waiterRef
}

// waiter is a Proc's wait record. Each Proc owns exactly one (it can only
// wait on one thing at a time), embedded in the Proc and reused across
// waits, so blocking on a Signal allocates nothing. The seq field
// distinguishes the current wait from records left behind in old waiter
// lists or captured by expired timeout timers.
type waiter struct {
	p        *Proc
	seq      uint64
	fired    bool // woken by Broadcast or timeout; skip further wakes
	timedOut bool
}

// waiterRef is one entry in a Signal's waiter list: the Proc's wait record
// plus the wait generation it was enqueued under. A record whose generation
// has moved on belongs to a later wait (possibly on another Signal) and must
// be ignored.
type waiterRef struct {
	w   *waiter
	seq uint64
}

// NewSignal returns a Signal bound to kernel k.
func (k *Kernel) NewSignal() *Signal { return &Signal{k: k} }

// arm resets p's wait record for a fresh wait and enqueues it.
func (s *Signal) arm(p *Proc) *waiter {
	w := &p.w
	w.seq++
	w.fired, w.timedOut = false, false
	s.waiters = append(s.waiters, waiterRef{w: w, seq: w.seq})
	return w
}

// Wait blocks p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.arm(p)
	p.park()
}

// WaitTimeout blocks p until the next Broadcast or until d elapses,
// whichever comes first. It reports whether the Proc was woken by a
// Broadcast (false means the wait timed out).
func (s *Signal) WaitTimeout(p *Proc, d time.Duration) bool {
	if d < 0 {
		panic("sim: negative timeout")
	}
	w := s.arm(p)
	seq := w.seq
	s.k.After(d, func() {
		if w.seq != seq || w.fired {
			return // the wait already ended (and w may be serving a later wait)
		}
		w.fired = true
		w.timedOut = true
		w.p.wakeAt(s.k.now)
	})
	p.park()
	return !w.timedOut
}

// Broadcast wakes all Procs currently blocked on the Signal. Wakeups are
// scheduled at the current time, after events already queued at this
// instant. Broadcast may be called from kernel or Proc context.
func (s *Signal) Broadcast() {
	// Strict alternation means no Wait can run mid-iteration, so the list
	// can be truncated in place and its backing array reused.
	for _, ref := range s.waiters {
		if ref.w.seq != ref.seq || ref.w.fired {
			continue
		}
		ref.w.fired = true
		ref.w.p.wakeAt(s.k.now)
	}
	s.waiters = s.waiters[:0]
}

// WaiterCount reports how many Procs are currently blocked on the Signal.
func (s *Signal) WaiterCount() int {
	n := 0
	for _, ref := range s.waiters {
		if ref.w.seq == ref.seq && !ref.w.fired {
			n++
		}
	}
	return n
}
