package sim

import "time"

// A Signal is a broadcast condition variable in virtual time. Procs block on
// Wait or WaitTimeout; Broadcast wakes every currently blocked waiter. A
// Signal has no memory: a Broadcast with no waiters is a no-op.
//
// The zero value is ready to use — the kernel is reached through the
// waiting Procs — so per-request structs embed a Signal by value instead of
// allocating one per request.
type Signal struct {
	waiters []waiterRef
}

// waiter is a Proc's wait record. Each Proc owns exactly one (it can only
// wait on one thing at a time), embedded in the Proc and reused across
// waits, so blocking on a Signal allocates nothing. The seq field
// distinguishes the current wait from records left behind in old waiter
// lists or captured by expired timeout timers.
type waiter struct {
	p        *Proc
	seq      uint64
	fired    bool // woken by Broadcast or timeout; skip further wakes
	timedOut bool

	// timer is the pending WaitTimeout expiry event (noEvent when none) and
	// timerSeq the wait generation it was armed for. A Broadcast-won wait
	// cancels its timer on resume so dead timers never linger in the event
	// queue.
	timer    eventID
	timerSeq uint64
}

// waiterRef is one entry in a Signal's waiter list: the Proc's wait record
// plus the wait generation it was enqueued under. A record whose generation
// has moved on belongs to a later wait (possibly on another Signal) and must
// be ignored.
type waiterRef struct {
	w   *waiter
	seq uint64
}

// NewSignal returns a fresh Signal. Retained for convenience; &Signal{} or
// an embedded value works just as well.
func (k *Kernel) NewSignal() *Signal { return &Signal{} }

// arm resets p's wait record for a fresh wait and enqueues it.
func (s *Signal) arm(p *Proc) *waiter {
	w := &p.w
	w.seq++
	w.fired, w.timedOut = false, false
	s.waiters = append(s.waiters, waiterRef{w: w, seq: w.seq})
	return w
}

// Wait blocks p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.arm(p)
	p.park()
}

// WaitTimeout blocks p until the next Broadcast or until d elapses,
// whichever comes first. It reports whether the Proc was woken by a
// Broadcast (false means the wait timed out).
func (s *Signal) WaitTimeout(p *Proc, d time.Duration) bool {
	if d < 0 {
		panic("sim: negative timeout")
	}
	w := s.arm(p)
	w.timerSeq = w.seq
	w.timer = p.k.schedule(p.k.now+d, p.timerFn)
	p.park()
	if !w.timedOut {
		// Broadcast won the race: the expiry event is dead weight — cancel
		// it so watchdog-heavy runs don't carry armies of spent timers in
		// the queue until they fire as no-ops.
		p.k.cancel(w.timer)
		w.timer = noEvent
	}
	w.timerSeq = 0 // wait generations start at 1; 0 can never match
	return !w.timedOut
}

// Broadcast wakes all Procs currently blocked on the Signal. Wakeups are
// scheduled at the current time, after events already queued at this
// instant. Broadcast may be called from kernel or Proc context.
func (s *Signal) Broadcast() {
	// Strict alternation means no Wait can run mid-iteration, so the list
	// can be truncated in place and its backing array reused.
	for _, ref := range s.waiters {
		if ref.w.seq != ref.seq || ref.w.fired {
			continue
		}
		ref.w.fired = true
		ref.w.p.wakeAt(ref.w.p.k.now)
	}
	s.waiters = s.waiters[:0]
}

// Wake wakes up to n Procs currently blocked on the Signal, oldest waits
// first, and reports how many it woke. Waiters not woken stay queued in
// order. Queues use it to wake exactly one getter per item: under a full
// Broadcast the herd's extra waiters wake at the same instant, find nothing,
// and re-arm in the same relative order — identical outcome, minus the
// spurious park/resume round trips.
func (s *Signal) Wake(n int) int {
	woken := 0
	i := 0
	for ; i < len(s.waiters) && woken < n; i++ {
		ref := s.waiters[i]
		if ref.w.seq != ref.seq || ref.w.fired {
			continue
		}
		ref.w.fired = true
		ref.w.p.wakeAt(ref.w.p.k.now)
		woken++
	}
	m := copy(s.waiters, s.waiters[i:])
	s.waiters = s.waiters[:m]
	return woken
}

// WaiterCount reports how many Procs are currently blocked on the Signal.
func (s *Signal) WaiterCount() int {
	n := 0
	for _, ref := range s.waiters {
		if ref.w.seq == ref.seq && !ref.w.fired {
			n++
		}
	}
	return n
}
