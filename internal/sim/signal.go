package sim

import "time"

// A Signal is a broadcast condition variable in virtual time. Procs block on
// Wait or WaitTimeout; Broadcast wakes every currently blocked waiter. A
// Signal has no memory: a Broadcast with no waiters is a no-op.
type Signal struct {
	k       *Kernel
	waiters []*waiter
}

type waiter struct {
	p        *Proc
	fired    bool // woken by Broadcast or timeout; skip further wakes
	timedOut bool
}

// NewSignal returns a Signal bound to kernel k.
func (k *Kernel) NewSignal() *Signal { return &Signal{k: k} }

// Wait blocks p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	w := &waiter{p: p}
	s.waiters = append(s.waiters, w)
	p.park()
}

// WaitTimeout blocks p until the next Broadcast or until d elapses,
// whichever comes first. It reports whether the Proc was woken by a
// Broadcast (false means the wait timed out).
func (s *Signal) WaitTimeout(p *Proc, d time.Duration) bool {
	if d < 0 {
		panic("sim: negative timeout")
	}
	w := &waiter{p: p}
	s.waiters = append(s.waiters, w)
	s.k.After(d, func() {
		if w.fired {
			return
		}
		w.fired = true
		w.timedOut = true
		w.p.wakeAt(s.k.now)
	})
	p.park()
	return !w.timedOut
}

// Broadcast wakes all Procs currently blocked on the Signal. Wakeups are
// scheduled at the current time, after events already queued at this
// instant. Broadcast may be called from kernel or Proc context.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		if w.fired {
			continue
		}
		w.fired = true
		w.p.wakeAt(s.k.now)
	}
}

// WaiterCount reports how many Procs are currently blocked on the Signal.
func (s *Signal) WaiterCount() int {
	n := 0
	for _, w := range s.waiters {
		if !w.fired {
			n++
		}
	}
	return n
}
