package sim

// A WaitGroup counts outstanding activities in virtual time. Unlike
// sync.WaitGroup it is safe to Add after waiters have blocked, because all
// execution is serialized by the kernel.
type WaitGroup struct {
	n    int
	zero Signal
}

// NewWaitGroup returns a WaitGroup with count zero.
func (k *Kernel) NewWaitGroup() *WaitGroup {
	return &WaitGroup{}
}

// Add increments the count by delta, which may be negative.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup count")
	}
	if wg.n == 0 {
		wg.zero.Broadcast()
	}
}

// Done decrements the count by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the count reaches zero. If the count is already zero
// it returns immediately.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.n > 0 {
		wg.zero.Wait(p)
	}
}

// Count reports the current count.
func (wg *WaitGroup) Count() int { return wg.n }
