// Package datatype models MPI derived datatypes at byte granularity: a
// Type describes the file-space footprint of one I/O call, expanded to an
// extent list relative to a base offset. The paper's demo program uses a
// Vector type; noncontig uses a vector-derived column access; BTIO uses an
// indexed layout.
package datatype

import (
	"fmt"

	"dualpar/internal/ext"
)

// A Type expands to byte extents relative to a base file offset.
type Type interface {
	// Extents returns the accessed ranges for one instance of the type
	// placed at base.
	Extents(base int64) []ext.Extent
	// Size is the number of bytes actually transferred per instance.
	Size() int64
	// Extent is the span of file space one instance covers (stride
	// footprint), i.e. the distance between consecutive instances.
	Extent() int64
}

// Contiguous is n consecutive bytes.
type Contiguous struct{ N int64 }

// Extents implements Type.
func (c Contiguous) Extents(base int64) []ext.Extent {
	if c.N <= 0 {
		return nil
	}
	return []ext.Extent{{Off: base, Len: c.N}}
}

// Size implements Type.
func (c Contiguous) Size() int64 { return c.N }

// Extent implements Type.
func (c Contiguous) Extent() int64 { return c.N }

// Vector is Count blocks of BlockLen bytes, the starts of consecutive
// blocks separated by Stride bytes (MPI_Type_vector in byte units).
type Vector struct {
	Count    int64
	BlockLen int64
	Stride   int64
}

// Extents implements Type.
func (v Vector) Extents(base int64) []ext.Extent {
	if v.Count <= 0 || v.BlockLen <= 0 {
		return nil
	}
	out := make([]ext.Extent, 0, v.Count)
	for i := int64(0); i < v.Count; i++ {
		out = append(out, ext.Extent{Off: base + i*v.Stride, Len: v.BlockLen})
	}
	return ext.Merge(out)
}

// Size implements Type.
func (v Vector) Size() int64 { return v.Count * v.BlockLen }

// Extent implements Type.
func (v Vector) Extent() int64 {
	if v.Count <= 0 {
		return 0
	}
	return (v.Count-1)*v.Stride + v.BlockLen
}

// Indexed is an explicit displacement/length list (MPI_Type_indexed in byte
// units).
type Indexed struct {
	Disps []int64
	Lens  []int64
}

// Extents implements Type.
func (x Indexed) Extents(base int64) []ext.Extent {
	if len(x.Disps) != len(x.Lens) {
		panic(fmt.Sprintf("datatype: %d displacements, %d lengths", len(x.Disps), len(x.Lens)))
	}
	out := make([]ext.Extent, 0, len(x.Disps))
	for i := range x.Disps {
		if x.Lens[i] > 0 {
			out = append(out, ext.Extent{Off: base + x.Disps[i], Len: x.Lens[i]})
		}
	}
	return ext.Merge(out)
}

// Size implements Type.
func (x Indexed) Size() int64 {
	var t int64
	for _, l := range x.Lens {
		t += l
	}
	return t
}

// Extent implements Type.
func (x Indexed) Extent() int64 {
	var hi int64
	for i := range x.Disps {
		if e := x.Disps[i] + x.Lens[i]; e > hi {
			hi = e
		}
	}
	return hi
}
