package datatype

import (
	"testing"
	"testing/quick"

	"dualpar/internal/ext"
)

func TestContiguous(t *testing.T) {
	c := Contiguous{N: 100}
	xs := c.Extents(50)
	if len(xs) != 1 || xs[0] != (ext.Extent{Off: 50, Len: 100}) {
		t.Fatalf("Extents = %v", xs)
	}
	if c.Size() != 100 || c.Extent() != 100 {
		t.Fatalf("Size/Extent = %d/%d", c.Size(), c.Extent())
	}
	zero := Contiguous{}
	if zero.Size() != 0 || len(zero.Extents(0)) != 0 {
		t.Fatalf("zero contiguous not empty")
	}
}

func TestVector(t *testing.T) {
	v := Vector{Count: 3, BlockLen: 4, Stride: 10}
	xs := v.Extents(100)
	want := []ext.Extent{{Off: 100, Len: 4}, {Off: 110, Len: 4}, {Off: 120, Len: 4}}
	if len(xs) != 3 {
		t.Fatalf("Extents = %v", xs)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("Extents = %v, want %v", xs, want)
		}
	}
	if v.Size() != 12 {
		t.Fatalf("Size = %d, want 12", v.Size())
	}
	if v.Extent() != 24 {
		t.Fatalf("Extent = %d, want 24 (2*10+4)", v.Extent())
	}
}

func TestVectorDenseMergesToContiguous(t *testing.T) {
	v := Vector{Count: 4, BlockLen: 10, Stride: 10}
	xs := v.Extents(0)
	if len(xs) != 1 || xs[0] != (ext.Extent{Off: 0, Len: 40}) {
		t.Fatalf("dense vector = %v, want single extent", xs)
	}
}

func TestIndexed(t *testing.T) {
	x := Indexed{Disps: []int64{0, 100, 50}, Lens: []int64{10, 10, 10}}
	xs := x.Extents(1000)
	want := []ext.Extent{{Off: 1000, Len: 10}, {Off: 1050, Len: 10}, {Off: 1100, Len: 10}}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("Extents = %v, want %v", xs, want)
		}
	}
	if x.Size() != 30 || x.Extent() != 110 {
		t.Fatalf("Size/Extent = %d/%d", x.Size(), x.Extent())
	}
}

func TestIndexedMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Indexed{Disps: []int64{0}, Lens: []int64{1, 2}}.Extents(0)
}

// Property: the total of Extents equals Size for vectors without overlap.
func TestVectorSizeMatchesExtents(t *testing.T) {
	f := func(count, block uint8, extra uint8) bool {
		v := Vector{
			Count:    int64(count%16) + 1,
			BlockLen: int64(block%64) + 1,
		}
		v.Stride = v.BlockLen + int64(extra%64) // stride >= blocklen: no overlap
		return ext.Total(v.Extents(12345)) == v.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
