package netsim

import (
	"testing"
	"time"

	"dualpar/internal/fault"
	"dualpar/internal/sim"
)

func TestSingleMessageTime(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, Config{Latency: time.Millisecond, Bandwidth: 1e6}) // 1 MB/s
	var took time.Duration
	k.Spawn("sender", func(p *sim.Proc) {
		t0 := p.Now()
		n.Send(p, 0, 1, 1e6) // 1 MB at 1 MB/s = 1 s + 1 ms latency
		took = p.Now() - t0
	})
	k.Run()
	want := time.Second + time.Millisecond
	if took != want {
		t.Fatalf("delivery took %v, want %v", took, want)
	}
}

func TestLocalDeliveryFree(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, DefaultConfig())
	var took time.Duration
	k.Spawn("sender", func(p *sim.Proc) {
		t0 := p.Now()
		n.Send(p, 3, 3, 1<<30)
		took = p.Now() - t0
	})
	k.Run()
	if took != 0 {
		t.Fatalf("same-node send took %v, want 0", took)
	}
}

func TestSenderLinkSerializes(t *testing.T) {
	// Two messages from the same sender to different receivers share the
	// uplink: total time ~ 2x single transfer.
	k := sim.NewKernel(1)
	n := New(k, Config{Latency: 0, Bandwidth: 1e6})
	var done [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("sender", func(p *sim.Proc) {
			n.Send(p, 0, 1+i, 1e6)
			done[i] = p.Now()
		})
	}
	k.Run()
	latest := done[0]
	if done[1] > latest {
		latest = done[1]
	}
	if latest < 2*time.Second {
		t.Fatalf("two 1s transfers on one uplink finished at %v, want >= 2s", latest)
	}
}

func TestIncastReceiverSerializes(t *testing.T) {
	// Four senders to one receiver: the downlink is the bottleneck.
	k := sim.NewKernel(1)
	n := New(k, Config{Latency: 0, Bandwidth: 1e6})
	var latest time.Duration
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("sender", func(p *sim.Proc) {
			n.Send(p, 1+i, 0, 1e6)
			if p.Now() > latest {
				latest = p.Now()
			}
		})
	}
	k.Run()
	if latest < 4*time.Second {
		t.Fatalf("4x1MB incast finished at %v, want >= 4s on a 1MB/s downlink", latest)
	}
}

func TestDisjointPairsRunInParallel(t *testing.T) {
	// A switched fabric: 0->1 and 2->3 do not contend.
	k := sim.NewKernel(1)
	n := New(k, Config{Latency: 0, Bandwidth: 1e6})
	var latest time.Duration
	pairs := [][2]int{{0, 1}, {2, 3}}
	for _, pr := range pairs {
		pr := pr
		k.Spawn("sender", func(p *sim.Proc) {
			n.Send(p, pr[0], pr[1], 1e6)
			if p.Now() > latest {
				latest = p.Now()
			}
		})
	}
	k.Run()
	if latest != time.Second {
		t.Fatalf("disjoint transfers finished at %v, want 1s (parallel)", latest)
	}
}

func TestDelayChargesLatencyOnly(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, DefaultConfig())
	var took time.Duration
	k.Spawn("p", func(p *sim.Proc) {
		t0 := p.Now()
		n.Delay(p)
		took = p.Now() - t0
	})
	k.Run()
	if took != DefaultConfig().Latency {
		t.Fatalf("Delay took %v, want %v", took, DefaultConfig().Latency)
	}
}

func TestTrafficCounters(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, DefaultConfig())
	k.Spawn("p", func(p *sim.Proc) {
		n.Send(p, 0, 1, 1000)
		n.Send(p, 0, 0, 1000) // local: never on the wire, counts toward neither
	})
	k.Run()
	if n.BytesSent() != 1000 || n.Messages() != 1 {
		t.Fatalf("bytes=%d messages=%d, want 1000/1", n.BytesSent(), n.Messages())
	}
}

func TestFaultDropChargesRetransmitTimeout(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := Config{Latency: 0, Bandwidth: 1e6, RetransmitTimeout: 300 * time.Millisecond}
	n := New(k, cfg)
	// Drop every attempt (prob capped at 0.95, so use many tries' worth of
	// certainty via prob close to 1 is not possible; instead drop window
	// with p=0.95 and a fixed seed gives a deterministic drop count).
	n.SetFaults(fault.NewInjector(k, &fault.Schedule{Windows: []fault.Window{
		{Kind: fault.LinkDrop, Target: 1, Prob: 0.95, Start: 0, End: time.Hour},
	}}, 42, nil))
	var took time.Duration
	k.Spawn("sender", func(p *sim.Proc) {
		t0 := p.Now()
		n.Send(p, 0, 1, 1e6) // 1 s serialization + drops
		took = p.Now() - t0
	})
	k.Run()
	if n.Drops() == 0 {
		t.Fatalf("no drops at p=0.95")
	}
	want := time.Second + time.Duration(n.Drops())*cfg.RetransmitTimeout
	if took != want {
		t.Fatalf("delivery took %v with %d drops, want %v", took, n.Drops(), want)
	}
}

func TestFaultLinkDegradeInflatesSerialization(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, Config{Latency: 0, Bandwidth: 1e6})
	n.SetFaults(fault.NewInjector(k, &fault.Schedule{Windows: []fault.Window{
		{Kind: fault.LinkSlow, Target: 1, Factor: 4},
	}}, 1, nil))
	var slow, healthy time.Duration
	k.Spawn("sender", func(p *sim.Proc) {
		t0 := p.Now()
		n.Send(p, 0, 1, 1e6) // degraded endpoint: 4x serialization
		slow = p.Now() - t0
		t0 = p.Now()
		n.Send(p, 2, 3, 1e6) // untouched pair
		healthy = p.Now() - t0
	})
	k.Run()
	if healthy != time.Second {
		t.Fatalf("healthy transfer took %v, want 1s", healthy)
	}
	if slow != 4*time.Second {
		t.Fatalf("degraded transfer took %v, want 4s", slow)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, DefaultConfig())
	k.Spawn("p", func(p *sim.Proc) {
		n.Send(p, 0, 1, -1)
	})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	k.Run()
}

func TestValidate(t *testing.T) {
	if (Config{Latency: -1, Bandwidth: 1}).Validate() == nil {
		t.Fatalf("negative latency passed")
	}
	if (Config{Latency: 0, Bandwidth: 0}).Validate() == nil {
		t.Fatalf("zero bandwidth passed")
	}
	if DefaultConfig().Validate() != nil {
		t.Fatalf("default config invalid")
	}
}
