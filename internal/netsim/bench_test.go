package netsim

import (
	"testing"

	"dualpar/internal/sim"
)

// BenchmarkKernelNetSend measures the per-message cost of the network
// model (link free-time bookkeeping plus the kernel sleep), the innermost
// loop of every simulated transfer.
func BenchmarkKernelNetSend(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel(1)
	n := New(k, DefaultConfig())
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			n.Send(p, i%4, 4+i%4, 64<<10)
		}
	})
	k.Run()
}
