// Package netsim models a switched, full-duplex Ethernet: each node has a
// transmit and a receive link of fixed bandwidth, messages pay a one-way
// latency, and the switch fabric itself is non-blocking (as on the paper's
// Gigabit Ethernet cluster). Contention appears exactly where it does in
// practice: at the sender's uplink and at the receiver's downlink (incast).
package netsim

import (
	"fmt"
	"time"

	"dualpar/internal/fault"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// Config describes link characteristics.
type Config struct {
	// Latency is the one-way message latency (propagation, switching, and
	// protocol stack).
	Latency time.Duration
	// Bandwidth is the per-direction link rate in bytes/second.
	Bandwidth float64
	// RetransmitTimeout is what a sender pays before retrying a message the
	// fault layer dropped (the transport's RTO; TCP's floor of the era).
	RetransmitTimeout time.Duration
}

// DefaultConfig approximates switched Gigabit Ethernet: ~940 Mb/s goodput
// and 100 µs one-way latency.
func DefaultConfig() Config {
	return Config{
		Latency:           100 * time.Microsecond,
		Bandwidth:         117e6,
		RetransmitTimeout: 200 * time.Millisecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Latency < 0 {
		return fmt.Errorf("netsim: Latency %v", c.Latency)
	}
	if c.Bandwidth <= 0 {
		return fmt.Errorf("netsim: Bandwidth %g", c.Bandwidth)
	}
	if c.RetransmitTimeout < 0 {
		return fmt.Errorf("netsim: RetransmitTimeout %v", c.RetransmitTimeout)
	}
	return nil
}

// Network charges virtual time for messages between nodes. Nodes are dense
// small integers assigned by the cluster layer.
type Network struct {
	k   *sim.Kernel
	cfg Config
	tx  []time.Duration // per-node transmit link free time, indexed by node
	rx  []time.Duration // per-node receive link free time, indexed by node

	bytesSent int64
	messages  int64
	drops     int64
	voided    int64

	faults *fault.Injector

	// One-entry serialization-time memo: message sizes repeat heavily
	// (headers, stripe units, page batches), and the float division in xfer
	// shows up on the per-message hot path. Caching the last (bytes, xfer)
	// pair returns the exact same Duration the division would, so the event
	// timeline is unchanged.
	lastBytes int64
	lastXfer  time.Duration

	obs       *obs.Collector
	cBytes    *obs.Counter
	cMessages *obs.Counter
	cDrops    *obs.Counter
}

// New creates a network.
func New(k *sim.Kernel, cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Network{k: k, cfg: cfg, lastBytes: -1}
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// SetObs attaches the observability collector. The counter handles are
// resolved once here; a nil collector yields nil handles whose Add is a
// no-op.
func (n *Network) SetObs(c *obs.Collector) {
	n.obs = c
	n.cBytes = c.Metrics().Counter("net.bytes")
	n.cMessages = c.Metrics().Counter("net.messages")
	n.cDrops = c.Metrics().Counter("net.drops")
}

// SetFaults attaches a fault injector; messages then suffer the schedule's
// link degradation and transient drops. A nil injector is a no-op.
func (n *Network) SetFaults(inj *fault.Injector) { n.faults = inj }

// BytesSent and Messages report cumulative wire traffic (same-node
// messages never touch the wire and count toward neither).
func (n *Network) BytesSent() int64 { return n.bytesSent }
func (n *Network) Messages() int64  { return n.messages }

// Drops reports messages lost to injected link faults (each cost the
// sender a retransmit timeout).
func (n *Network) Drops() int64 { return n.drops }

// Voided reports messages that vanished because an endpoint was a
// crash-stopped data server (no retransmission — nobody is home).
func (n *Network) Voided() int64 { return n.voided }

// grow ensures the link free-time slices cover node. Node ids are dense
// small integers, so flat slices beat maps on the per-message hot path.
func (n *Network) grow(node int) {
	for len(n.tx) <= node {
		n.tx = append(n.tx, 0)
		n.rx = append(n.rx, 0)
	}
}

// xfer returns the serialization time of a message.
func (n *Network) xfer(bytes int64) time.Duration {
	if bytes == n.lastBytes {
		return n.lastXfer
	}
	x := time.Duration(float64(bytes) / n.cfg.Bandwidth * float64(time.Second))
	n.lastBytes, n.lastXfer = bytes, x
	return x
}

// maxRetransmits bounds how often one message retries after injected
// drops; past the cap it is delivered regardless (the link is degraded,
// not partitioned).
const maxRetransmits = 16

// Send blocks p until a message of the given size from node from is fully
// delivered at node to. Local (same-node) messages never touch the wire:
// they cost nothing and count toward neither traffic counter.
func (n *Network) Send(p *sim.Proc, from, to int, bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("netsim: negative message size %d", bytes))
	}
	if from == to {
		return
	}
	// Transport-level loss: a dropped message costs the sender a retransmit
	// timeout before the next attempt.
	for attempt := 0; attempt < maxRetransmits && n.faults.Drop(from, to, p.Now()); attempt++ {
		n.drops++
		n.cDrops.Add(1)
		n.obs.Instant("fault.drop", "net", p.Now(),
			obs.I64("from", int64(from)), obs.I64("to", int64(to)),
			obs.I64("bytes", bytes))
		p.Sleep(n.cfg.RetransmitTimeout)
	}
	n.messages++
	n.cMessages.Add(1)
	n.bytesSent += bytes
	n.cBytes.Add(bytes)
	if from > to {
		n.grow(from)
	} else {
		n.grow(to)
	}
	now := p.Now()
	x := n.xfer(bytes)
	if f := n.faults.LinkFactor(from, to, now); f > 1 {
		x = time.Duration(float64(x) * f)
	}

	start := now
	if n.tx[from] > start {
		start = n.tx[from]
	}
	n.tx[from] = start + x

	// Bits begin arriving after the latency; the receive link serializes
	// delivery at link rate.
	arrive := start + n.cfg.Latency
	if n.rx[to] > arrive {
		arrive = n.rx[to]
	}
	done := arrive + x
	n.rx[to] = done

	p.Sleep(done - now)
}

// SendLossy is Send for crash-aware callers: when either endpoint is a
// crash-stopped data server the message vanishes — the sender still pays
// serialization and latency (the bits leave the NIC before anyone can know
// the peer is dead), but nothing is delivered and no retransmission
// happens. It reports whether the message arrived. rc carries the traced
// request for the StageNet span (zero Ctx = untraced).
func (n *Network) SendLossy(p *sim.Proc, from, to int, bytes int64, rc obs.Ctx) bool {
	if n.faults.NodeCrashed(from, p.Now()) || n.faults.NodeCrashed(to, p.Now()) {
		n.voided++
		n.obs.Instant("fault.void", "net", p.Now(),
			obs.I64("from", int64(from)), obs.I64("to", int64(to)),
			obs.I64("bytes", bytes))
		n.SendTraced(p, from, to, bytes, rc)
		return false
	}
	n.SendTraced(p, from, to, bytes, rc)
	return true
}

// SendTraced is Send plus a StageNet span against rc's request, recorded on
// rc's track. Untraced contexts fall through to plain Send.
func (n *Network) SendTraced(p *sim.Proc, from, to int, bytes int64, rc obs.Ctx) {
	if !rc.Traced() {
		n.Send(p, from, to, bytes)
		return
	}
	start := p.Now()
	n.Send(p, from, to, bytes)
	n.obs.Span(rc.ID, obs.StageNet, rc.Track, start, p.Now(),
		obs.I64("bytes", bytes), obs.I64("from", int64(from)), obs.I64("to", int64(to)))
}

// Delay charges the one-way latency only, for zero-payload control messages
// whose serialization is negligible.
func (n *Network) Delay(p *sim.Proc) {
	p.Sleep(n.cfg.Latency)
}
