package fs

import "fmt"

// bptreeEngine is an index-organized layout modeling an aged file system:
// allocation hands out deliberately small extents (AllocUnitBytes/128,
// page-rounded) and leaves a dead gap after every one wide enough to
// defeat the disk's forward-skip window, so a file's data is scattered
// forward across the LBN space and every fragment boundary costs a real
// head repositioning (seek + rotation). The file-offset → extent map lives
// in a B+tree (logarithmic range lookup); a flat sorted mirror of every
// insertion is kept alongside, and the audit oracle replays the tree
// against it — B+tree lookups and the flat map must agree exactly.
type bptreeEngine struct {
	cfg      Config
	files    map[string]*bptFile
	nexts    int64 // next free sector for allocation
	fragUnit int64 // allocation granularity, bytes
	fragGap  int64 // dead space after every allocation, bytes
}

type bptFile struct {
	name string
	size int64
	tree *bptree
	// shadow mirrors every extent insertion in file-offset order — the
	// equivalence oracle's flat source of truth.
	shadow []extent
}

func newBPTreeEngine(cfg Config) *bptreeEngine {
	ps := int64(cfg.PageSize)
	unit := cfg.AllocUnitBytes / 128
	unit = (unit + ps - 1) / ps * ps
	if unit < ps {
		unit = ps
	}
	// The gap must exceed the disk's streamed forward-skip window (256 KB
	// on the default geometry) or sequential scans would glide over it.
	gap := cfg.AllocUnitBytes / 16
	if gap < 8*unit {
		gap = 8 * unit
	}
	return &bptreeEngine{
		cfg:      cfg,
		files:    make(map[string]*bptFile),
		fragUnit: unit,
		fragGap:  gap,
	}
}

func (e *bptreeEngine) Kind() string { return EngineBPTree }

func (e *bptreeEngine) file(name string) *bptFile {
	f := e.files[name]
	if f == nil {
		f = &bptFile{name: name, tree: newBptree()}
		e.files[name] = f
		e.nexts += e.cfg.FileGapBytes / int64(sectorSize)
	}
	return f
}

func (e *bptreeEngine) Open(file string) { e.file(file) }

func (e *bptreeEngine) Ensure(file string, size int64) {
	f := e.file(file)
	for f.size < size {
		unit := e.fragUnit
		x := extent{fileOff: f.size, lbn: e.nexts, bytes: unit}
		f.tree.insert(x)
		f.shadow = append(f.shadow, x)
		f.size += unit
		// Never merge: burn the gap so the next extent is discontiguous,
		// like free space on an aged FS.
		e.nexts += (unit + e.fragGap) / sectorSize
	}
}

func (e *bptreeEngine) AllocatedSize(file string) int64 {
	if f, ok := e.files[file]; ok {
		return f.size
	}
	return 0
}

func (e *bptreeEngine) ReadRuns(out []lbnRun, file string, off, n int64) []lbnRun {
	f := e.file(file)
	end := off + n
	f.tree.visitRange(off, end, func(x extent) {
		lo, hi := off, end
		if lo < x.fileOff {
			lo = x.fileOff
		}
		if hi > x.fileOff+x.bytes {
			hi = x.fileOff + x.bytes
		}
		if hi <= lo {
			return
		}
		run := lbnRun{lbn: x.lbn + (lo-x.fileOff)/sectorSize, bytes: hi - lo}
		// Adjacent file offsets are discontiguous on disk by construction,
		// so runs never merge across extents.
		out = append(out, run)
	})
	return out
}

// WriteRuns: update in place, like the extent engine — only the lookup
// path (tree vs flat scan) and the layout differ.
func (e *bptreeEngine) WriteRuns(out []lbnRun, file string, off, n int64) []lbnRun {
	return e.ReadRuns(out, file, off, n)
}

func (e *bptreeEngine) ReadAheadLimit(file string, off int64) int64 {
	f, ok := e.files[file]
	if !ok {
		return off
	}
	limit := off
	f.tree.visitRange(off, off+1, func(x extent) {
		limit = x.fileOff + x.bytes
	})
	return limit
}

// CheckInvariants replays the B+tree against the flat shadow map: an
// in-order walk must yield exactly the shadow, and a point lookup through
// the tree must agree with a linear scan for every extent boundary.
func (e *bptreeEngine) CheckInvariants() error {
	for name, f := range e.files {
		var walked []extent
		f.tree.visitRange(0, f.size+1, func(x extent) { walked = append(walked, x) })
		if len(walked) != len(f.shadow) {
			return fmt.Errorf("bptree engine: file %s tree walk has %d extents, flat map %d", name, len(walked), len(f.shadow))
		}
		var covered int64
		for i, x := range walked {
			if x != f.shadow[i] {
				return fmt.Errorf("bptree engine: file %s extent %d diverges: tree %+v flat %+v", name, i, x, f.shadow[i])
			}
			if i > 0 && x.fileOff != f.shadow[i-1].fileOff+f.shadow[i-1].bytes {
				return fmt.Errorf("bptree engine: file %s extent %d not contiguous in file space", name, i)
			}
			covered += x.bytes
		}
		if covered != f.size {
			return fmt.Errorf("bptree engine: file %s extents cover %d bytes, size %d", name, covered, f.size)
		}
		if err := f.tree.check(); err != nil {
			return fmt.Errorf("bptree engine: file %s: %w", name, err)
		}
	}
	return nil
}

// --- B+tree over fileOff → extent ---

// bptOrder is the fan-out: max keys per node. Small enough that splits are
// exercised by ordinary workloads, large enough to stay shallow.
const bptOrder = 16

// bptNode is a node of the tree. Leaves hold extents (keys mirror
// exts[i].fileOff) and chain through next; internal nodes hold separator
// keys with len(kids) == len(keys)+1.
type bptNode struct {
	leaf bool
	keys []int64
	kids []*bptNode // internal only
	exts []extent   // leaf only
	next *bptNode   // leaf chain for range scans
}

type bptree struct {
	root   *bptNode
	height int
}

func newBptree() *bptree {
	return &bptree{root: &bptNode{leaf: true}, height: 1}
}

// insert adds an extent keyed by its fileOff. Extents are inserted with
// strictly increasing, non-overlapping file offsets (the allocator's
// contract), but insert handles arbitrary key order for generality.
func (t *bptree) insert(x extent) {
	mid, right := t.root.insert(x)
	if right != nil {
		t.root = &bptNode{keys: []int64{mid}, kids: []*bptNode{t.root, right}}
		t.height++
	}
}

// insert descends to a leaf; on overflow the node splits and returns the
// separator key plus the new right sibling for the parent to absorb.
func (n *bptNode) insert(x extent) (int64, *bptNode) {
	if n.leaf {
		i := lowerBound(n.keys, x.fileOff)
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = x.fileOff
		n.exts = append(n.exts, extent{})
		copy(n.exts[i+1:], n.exts[i:])
		n.exts[i] = x
		if len(n.keys) <= bptOrder {
			return 0, nil
		}
		h := len(n.keys) / 2
		right := &bptNode{leaf: true, keys: append([]int64(nil), n.keys[h:]...), exts: append([]extent(nil), n.exts[h:]...), next: n.next}
		n.keys, n.exts, n.next = n.keys[:h:h], n.exts[:h:h], right
		return right.keys[0], right
	}
	i := upperBound(n.keys, x.fileOff)
	mid, right := n.kids[i].insert(x)
	if right == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = mid
	n.kids = append(n.kids, nil)
	copy(n.kids[i+2:], n.kids[i+1:])
	n.kids[i+1] = right
	if len(n.keys) <= bptOrder {
		return 0, nil
	}
	h := len(n.keys) / 2
	sep := n.keys[h]
	rightN := &bptNode{keys: append([]int64(nil), n.keys[h+1:]...), kids: append([]*bptNode(nil), n.kids[h+1:]...)}
	n.keys, n.kids = n.keys[:h:h], n.kids[:h+1:h+1]
	return sep, rightN
}

// visitRange calls fn for every extent overlapping [off, end), in file
// order: descend to the leaf that could hold off, then walk the chain.
func (t *bptree) visitRange(off, end int64, fn func(extent)) {
	n := t.root
	for !n.leaf {
		n = n.kids[upperBound(n.keys, off)]
	}
	for ; n != nil; n = n.next {
		for _, x := range n.exts {
			if x.fileOff >= end {
				return
			}
			if x.fileOff+x.bytes <= off {
				continue
			}
			fn(x)
		}
	}
}

// check verifies structural invariants: sorted keys, balanced height,
// separator ordering, and the leaf chain covering every leaf.
func (t *bptree) check() error {
	var depth func(n *bptNode, d int, lo, hi int64) (int, error)
	depth = func(n *bptNode, d int, lo, hi int64) (int, error) {
		for i, k := range n.keys {
			if i > 0 && n.keys[i-1] >= k {
				return 0, fmt.Errorf("keys out of order at depth %d", d)
			}
			if k < lo || k >= hi {
				return 0, fmt.Errorf("key %d outside separator bounds [%d,%d)", k, lo, hi)
			}
		}
		if n.leaf {
			if len(n.exts) != len(n.keys) {
				return 0, fmt.Errorf("leaf with %d keys, %d extents", len(n.keys), len(n.exts))
			}
			return d, nil
		}
		if len(n.kids) != len(n.keys)+1 {
			return 0, fmt.Errorf("internal node with %d keys, %d kids", len(n.keys), len(n.kids))
		}
		want := -1
		for i, kid := range n.kids {
			klo, khi := lo, hi
			if i > 0 {
				klo = n.keys[i-1]
			}
			if i < len(n.keys) {
				khi = n.keys[i]
			}
			got, err := depth(kid, d+1, klo, khi)
			if err != nil {
				return 0, err
			}
			if want == -1 {
				want = got
			} else if got != want {
				return 0, fmt.Errorf("unbalanced: leaf depths %d and %d", want, got)
			}
		}
		return want, nil
	}
	const maxKey = int64(1) << 62
	d, err := depth(t.root, 1, -maxKey, maxKey)
	if err != nil {
		return err
	}
	if d != t.height {
		return fmt.Errorf("height %d, leaves at depth %d", t.height, d)
	}
	return nil
}

// lowerBound returns the first index i with keys[i] >= k.
func lowerBound(keys []int64, k int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		m := (lo + hi) / 2
		if keys[m] < k {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// upperBound returns the first index i with keys[i] > k — the child to
// descend into for key k.
func upperBound(keys []int64, k int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		m := (lo + hi) / 2
		if keys[m] <= k {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}
