package fs

import "dualpar/internal/sim"

// Engine names, for Config.Engine.
const (
	// EngineExtent is the contiguous-extent allocator the paper's data
	// servers model (update-in-place, allocation-unit extents, inter-file
	// gaps). The default; "" selects it too.
	EngineExtent = "extent"
	// EngineBPTree is an index-organized layout: the extent map lives in a
	// B+tree (logarithmic range lookup) and allocation deliberately
	// fragments files into small, gapped extents, modeling an aged file
	// system whose free space is scattered.
	EngineBPTree = "bptree"
	// EngineLSM is a log-structured store: writebacks append sequentially
	// to the head of a segmented log and a background compactor rewrites
	// fragmented segments at a throttled disk rate. Reads of overwritten
	// data chase pages into the log.
	EngineLSM = "lsm"
)

// Engines lists the selectable storage engines in canonical order.
func Engines() []string { return []string{EngineExtent, EngineBPTree, EngineLSM} }

// validEngine reports whether name selects a known engine ("" = default).
func validEngine(name string) bool {
	switch name {
	case "", EngineExtent, EngineBPTree, EngineLSM:
		return true
	}
	return false
}

// A StorageEngine decides where file bytes live in the device's LBN space:
// how layout is allocated, where reads find data, and where writes land.
// The Store above it owns everything engine-independent — the page cache,
// the dirty-page throttle, the flusher, and the block-layer dispatcher —
// and consults the engine exactly where the old hard-wired extent allocator
// sat, so engines see identical request streams and differ only in layout
// and background traffic.
//
// Engines are driven from simulation Procs (single-threaded between parks)
// and need no locking.
type StorageEngine interface {
	// Kind returns the engine name (one of the Engine* constants).
	Kind() string
	// Open touches a file, applying first-touch layout side effects (the
	// inter-file allocation gap) without growing it.
	Open(file string)
	// Ensure grows file's layout to cover [0, size). Reading unwritten
	// space still has layout, so the read path calls it too.
	Ensure(file string, size int64)
	// AllocatedSize reports the bytes of layout allocated to file (its
	// high-water mark rounded up to allocation granularity; 0 if absent).
	// It must not create the file.
	AllocatedSize(file string) int64
	// ReadRuns appends the contiguous LBN runs currently holding
	// [off, off+n) of file to out (callers pass a reusable scratch slice).
	ReadRuns(out []lbnRun, file string, off, n int64) []lbnRun
	// WriteRuns appends the LBN runs a write of [off, off+n) occupies and
	// commits any relocation (a log-structured engine assigns fresh
	// tail-of-log locations here; update-in-place engines return the same
	// runs as ReadRuns). The store calls it at data-reaching-disk time:
	// sync writes and writeback, never on dirtying a cache page.
	WriteRuns(out []lbnRun, file string, off, n int64) []lbnRun
	// ReadAheadLimit reports the furthest exclusive byte offset readahead
	// starting inside off's on-disk run may extend to without leaving that
	// contiguous region (kernel readahead does not seek). The store
	// additionally clips against the file's logical size.
	ReadAheadLimit(file string, off int64) int64
	// CheckInvariants is the engine's audit oracle: layout bookkeeping
	// must be self-consistent (extent maps match their source of truth,
	// log byte ledgers conserve). Wired as a final audit probe per store.
	CheckInvariants() error
}

// engineIO is the slice of Store a background engine may drive: submitting
// device traffic through the store's dispatcher (so the elevator, audit
// ledgers, and disk stats all see it) from its own Proc.
type engineIO interface {
	engineSubmit(p *sim.Proc, runs []lbnRun, write bool)
}

// backgroundEngine is implemented by engines that run background work
// (LSM compaction). start is called once from Store.New.
type backgroundEngine interface {
	start(k *sim.Kernel, name string, io engineIO)
}

// newEngine builds the engine Config.Engine selects. Config is validated
// before this runs, so unknown names are unreachable.
func newEngine(cfg Config) StorageEngine {
	switch cfg.Engine {
	case "", EngineExtent:
		return newExtentEngine(cfg)
	case EngineBPTree:
		return newBPTreeEngine(cfg)
	case EngineLSM:
		return newLSMEngine(cfg)
	}
	panic("fs: unknown engine " + cfg.Engine)
}
