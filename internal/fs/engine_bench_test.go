package fs

import (
	"testing"
	"time"

	"dualpar/internal/sim"
)

// benchEngine builds a bare engine (no store, no kernel) with a fully
// allocated 256 MB file — enough extents that the lookup-structure cost
// separates: the extent engine's flat slice holds a handful of merged
// extents, the B+tree holds thousands of 64 KB fragments.
func benchEngine(b *testing.B, kind string) StorageEngine {
	b.Helper()
	cfg := DefaultConfig()
	cfg.Engine = kind
	e := newEngine(cfg)
	e.Ensure("bench.dat", 256<<20)
	return e
}

// BenchmarkEngineReadRuns measures the file-offset → LBN lookup path per
// engine: 64 KB reads striding through the 256 MB file.
func BenchmarkEngineReadRuns(b *testing.B) {
	for _, kind := range Engines() {
		b.Run(kind, func(b *testing.B) {
			e := benchEngine(b, kind)
			b.ReportAllocs()
			b.ResetTimer()
			var runs []lbnRun
			for n := 0; n < b.N; n++ {
				off := int64(n) % (256 << 20 / (64 << 10)) * (64 << 10)
				runs = e.ReadRuns(runs[:0], "bench.dat", off, 64<<10)
				if len(runs) == 0 {
					b.Fatal("no runs")
				}
			}
		})
	}
}

// BenchmarkEngineWriteRuns measures write landing per engine: update in
// place for extent and B+tree, log append (with page remapping) for LSM.
// Writes rotate over a 16 MB window so the LSM page map stays bounded while
// its log still accumulates garbage the way a real overwrite stream does.
func BenchmarkEngineWriteRuns(b *testing.B) {
	for _, kind := range Engines() {
		b.Run(kind, func(b *testing.B) {
			e := benchEngine(b, kind)
			b.ReportAllocs()
			b.ResetTimer()
			var runs []lbnRun
			for n := 0; n < b.N; n++ {
				off := int64(n) % (16 << 20 / (64 << 10)) * (64 << 10)
				runs = e.WriteRuns(runs[:0], "bench.dat", off, 64<<10)
				if len(runs) == 0 {
					b.Fatal("no runs")
				}
			}
		})
	}
}

// BenchmarkEngineStoreSyncWrite drives the full store stack (cache,
// dispatcher, device) per engine: one simulated proc sync-writing 64 KB
// blocks sequentially. This is the macro view the micro benchmarks above
// decompose; for LSM it includes background compaction riding along.
func BenchmarkEngineStoreSyncWrite(b *testing.B) {
	for _, kind := range Engines() {
		b.Run(kind, func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				k := sim.NewKernel(1)
				cfg := DefaultConfig()
				cfg.Engine = kind
				s := newStore(k, cfg)
				k.Spawn("writer", func(p *sim.Proc) {
					for i := int64(0); i < 64; i++ {
						s.Write(p, "a", i*(64<<10), 64<<10, 1)
					}
					s.Sync(p)
				})
				k.RunUntil(time.Minute)
				if s.Device().Stats().BytesWritten == 0 {
					b.Fatal("no bytes reached the device")
				}
			}
		})
	}
}
