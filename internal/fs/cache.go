package fs

import (
	"container/list"

	"dualpar/internal/sim"
)

// pageKey identifies one page of one file.
type pageKey struct {
	file string
	idx  int64
}

// cachePage is a resident page. It sits either on the clean LRU list or on
// the dirty FIFO (in first-dirtied order, which the flusher honors like the
// kernel's per-inode dirty time ordering).
type cachePage struct {
	file  string
	idx   int64
	dirty bool
	el    *list.Element
}

// pageCache tracks residency and dirtiness; it stores no data.
type pageCache struct {
	k          *sim.Kernel
	cfg        Config
	pages      map[pageKey]*cachePage
	clean      *list.List // *cachePage, front = least recently used
	dirty      *list.List // *cachePage, front = oldest dirty
	dirtyBytes int64

	// kick wakes the flusher early; cleaned signals writers/evicters that
	// pages became clean.
	kick    *sim.Signal
	cleaned *sim.Signal
}

func newPageCache(k *sim.Kernel, cfg Config) *pageCache {
	return &pageCache{
		k:       k,
		cfg:     cfg,
		pages:   make(map[pageKey]*cachePage),
		clean:   list.New(),
		dirty:   list.New(),
		kick:    k.NewSignal(),
		cleaned: k.NewSignal(),
	}
}

func (c *pageCache) resident(file string, idx int64) bool {
	_, ok := c.pages[pageKey{file, idx}]
	return ok
}

// touch reports whether the page is resident, refreshing its LRU position.
func (c *pageCache) touch(file string, idx int64) bool {
	pg, ok := c.pages[pageKey{file, idx}]
	if !ok {
		return false
	}
	if !pg.dirty {
		c.clean.MoveToBack(pg.el)
	}
	return true
}

// insertClean makes the page resident and clean, evicting LRU clean pages
// as needed. If the cache is entirely dirty, the caller blocks until the
// flusher makes room.
func (c *pageCache) insertClean(p *sim.Proc, file string, idx int64) {
	key := pageKey{file, idx}
	if pg, ok := c.pages[key]; ok {
		if !pg.dirty {
			c.clean.MoveToBack(pg.el)
		}
		return
	}
	c.makeRoom(p)
	pg := &cachePage{file: file, idx: idx}
	pg.el = c.clean.PushBack(pg)
	c.pages[key] = pg
}

// insertDirty makes the page resident and dirty.
func (c *pageCache) insertDirty(p *sim.Proc, file string, idx int64) {
	key := pageKey{file, idx}
	if pg, ok := c.pages[key]; ok {
		if !pg.dirty {
			c.clean.Remove(pg.el)
			pg.dirty = true
			pg.el = c.dirty.PushBack(pg)
			c.dirtyBytes += int64(c.cfg.PageSize)
		}
		return
	}
	c.makeRoom(p)
	pg := &cachePage{file: file, idx: idx, dirty: true}
	pg.el = c.dirty.PushBack(pg)
	c.pages[key] = pg
	c.dirtyBytes += int64(c.cfg.PageSize)
}

// makeRoom evicts clean LRU pages until one more page fits; if everything
// is dirty it kicks the flusher and waits.
func (c *pageCache) makeRoom(p *sim.Proc) {
	capPages := c.cfg.CacheBytes / int64(c.cfg.PageSize)
	for int64(len(c.pages)) >= capPages {
		if c.clean.Len() > 0 {
			victim := c.clean.Remove(c.clean.Front()).(*cachePage)
			delete(c.pages, pageKey{victim.file, victim.idx})
			continue
		}
		c.kick.Broadcast()
		c.cleaned.Wait(p)
	}
}

// markClean moves a flushed page from the dirty list to the clean LRU.
func (c *pageCache) markClean(pg *cachePage) {
	if !pg.dirty {
		return
	}
	c.dirty.Remove(pg.el)
	pg.dirty = false
	pg.el = c.clean.PushBack(pg)
	c.dirtyBytes -= int64(c.cfg.PageSize)
}
