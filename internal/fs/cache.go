package fs

import (
	"dualpar/internal/sim"
)

// pageKey identifies one page of one file.
type pageKey struct {
	file string
	idx  int64
}

// cachePage is a resident page. It sits either on the clean LRU list or on
// the dirty FIFO (in first-dirtied order, which the flusher honors like the
// kernel's per-inode dirty time ordering). The list links are intrusive —
// a page is its own list node — and evicted pages are recycled through a
// free list, so steady-state cache churn allocates nothing.
type cachePage struct {
	file  string
	idx   int64
	dirty bool

	prev, next *cachePage
}

// pageList is an intrusive doubly-linked list of cachePages. The zero value
// is an empty list.
type pageList struct {
	head, tail *cachePage
	n          int
}

func (l *pageList) Len() int { return l.n }

func (l *pageList) pushBack(pg *cachePage) {
	pg.prev, pg.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = pg
	} else {
		l.head = pg
	}
	l.tail = pg
	l.n++
}

func (l *pageList) remove(pg *cachePage) {
	if pg.prev != nil {
		pg.prev.next = pg.next
	} else {
		l.head = pg.next
	}
	if pg.next != nil {
		pg.next.prev = pg.prev
	} else {
		l.tail = pg.prev
	}
	pg.prev, pg.next = nil, nil
	l.n--
}

func (l *pageList) moveToBack(pg *cachePage) {
	if l.tail == pg {
		return
	}
	l.remove(pg)
	l.pushBack(pg)
}

// pageCache tracks residency and dirtiness; it stores no data.
type pageCache struct {
	k          *sim.Kernel
	cfg        Config
	pages      map[pageKey]*cachePage
	clean      pageList // front = least recently used
	dirty      pageList // front = oldest dirty
	free       *cachePage
	dirtyBytes int64

	// kick wakes the flusher early; cleaned signals writers/evicters that
	// pages became clean.
	kick    *sim.Signal
	cleaned *sim.Signal
}

func newPageCache(k *sim.Kernel, cfg Config) *pageCache {
	return &pageCache{
		k:       k,
		cfg:     cfg,
		pages:   make(map[pageKey]*cachePage),
		kick:    k.NewSignal(),
		cleaned: k.NewSignal(),
	}
}

// newPage takes a page off the free list (or allocates one) and initializes
// it.
func (c *pageCache) newPage(file string, idx int64) *cachePage {
	pg := c.free
	if pg == nil {
		pg = &cachePage{}
	} else {
		c.free = pg.next
		pg.next = nil
	}
	pg.file, pg.idx, pg.dirty = file, idx, false
	return pg
}

// recycle returns an evicted (unlinked) page to the free list.
func (c *pageCache) recycle(pg *cachePage) {
	pg.file = ""
	pg.next = c.free
	c.free = pg
}

func (c *pageCache) resident(file string, idx int64) bool {
	_, ok := c.pages[pageKey{file, idx}]
	return ok
}

// touch reports whether the page is resident, refreshing its LRU position.
func (c *pageCache) touch(file string, idx int64) bool {
	pg, ok := c.pages[pageKey{file, idx}]
	if !ok {
		return false
	}
	if !pg.dirty {
		c.clean.moveToBack(pg)
	}
	return true
}

// insertClean makes the page resident and clean, evicting LRU clean pages
// as needed. If the cache is entirely dirty, the caller blocks until the
// flusher makes room.
func (c *pageCache) insertClean(p *sim.Proc, file string, idx int64) {
	key := pageKey{file, idx}
	if pg, ok := c.pages[key]; ok {
		if !pg.dirty {
			c.clean.moveToBack(pg)
		}
		return
	}
	c.makeRoom(p)
	pg := c.newPage(file, idx)
	c.clean.pushBack(pg)
	c.pages[key] = pg
}

// insertDirty makes the page resident and dirty.
func (c *pageCache) insertDirty(p *sim.Proc, file string, idx int64) {
	key := pageKey{file, idx}
	if pg, ok := c.pages[key]; ok {
		if !pg.dirty {
			c.clean.remove(pg)
			pg.dirty = true
			c.dirty.pushBack(pg)
			c.dirtyBytes += int64(c.cfg.PageSize)
		}
		return
	}
	c.makeRoom(p)
	pg := c.newPage(file, idx)
	pg.dirty = true
	c.dirty.pushBack(pg)
	c.pages[key] = pg
	c.dirtyBytes += int64(c.cfg.PageSize)
}

// makeRoom evicts clean LRU pages until one more page fits; if everything
// is dirty it kicks the flusher and waits.
func (c *pageCache) makeRoom(p *sim.Proc) {
	capPages := c.cfg.CacheBytes / int64(c.cfg.PageSize)
	for int64(len(c.pages)) >= capPages {
		if c.clean.Len() > 0 {
			victim := c.clean.head
			c.clean.remove(victim)
			delete(c.pages, pageKey{victim.file, victim.idx})
			c.recycle(victim)
			continue
		}
		c.kick.Broadcast()
		c.cleaned.Wait(p)
	}
}

// markClean moves a flushed page from the dirty list to the clean LRU.
func (c *pageCache) markClean(pg *cachePage) {
	if !pg.dirty {
		return
	}
	c.dirty.remove(pg)
	pg.dirty = false
	c.clean.pushBack(pg)
	c.dirtyBytes -= int64(c.cfg.PageSize)
}
