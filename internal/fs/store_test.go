package fs

import (
	"testing"
	"time"

	"dualpar/internal/disk"
	"dualpar/internal/ext"
	"dualpar/internal/iosched"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

func newStore(k *sim.Kernel, cfg Config) *Store {
	p := disk.DefaultParams()
	p.Sectors = 1 << 24
	return New(k, "s0", disk.New(p), iosched.NewCFQ(), cfg, 1000)
}

func TestCreateAllocatesContiguously(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, DefaultConfig())
	s.Create("a", 10<<20)
	f := s.eng.(*extentEngine).files["a"]
	if len(f.extents) != 1 {
		t.Fatalf("extents = %d, want 1 contiguous", len(f.extents))
	}
	if f.size < 10<<20 {
		t.Fatalf("size = %d, want >= 10MB", f.size)
	}
}

func TestTwoFilesSeparatedByGap(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	s := newStore(k, cfg)
	s.Create("a", 1<<20)
	s.Create("b", 1<<20)
	ra := s.eng.ReadRuns(nil, "a", 0, 1<<20)
	rb := s.eng.ReadRuns(nil, "b", 0, 1<<20)
	gap := (rb[0].lbn - ra[0].lbn) * sectorSize
	if gap < cfg.FileGapBytes {
		t.Fatalf("inter-file LBN gap = %d bytes, want >= %d", gap, cfg.FileGapBytes)
	}
}

func TestInterleavedGrowthFragments(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.AllocUnitBytes = 1 << 20
	s := newStore(k, cfg)
	// Alternate growth between two files: each must get multiple extents.
	for i := 0; i < 4; i++ {
		s.Create("a", int64(i+1)<<20)
		s.Create("b", int64(i+1)<<20)
	}
	if n := len(s.eng.(*extentEngine).files["a"].extents); n < 2 {
		t.Fatalf("file a extents = %d, want fragmentation under interleaved growth", n)
	}
}

func TestRunsSplitAtExtentBoundaries(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.AllocUnitBytes = 1 << 20
	s := newStore(k, cfg)
	s.Create("a", 1<<20)
	s.Create("b", 1<<20) // forces a's next extent to be discontiguous
	s.Create("a", 2<<20)
	runs := s.eng.ReadRuns(nil, "a", 512<<10, 1<<20) // spans the extent boundary
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2 across fragmented extents", len(runs))
	}
	if runs[0].bytes+runs[1].bytes != 1<<20 {
		t.Fatalf("run bytes = %d+%d, want 1MB total", runs[0].bytes, runs[1].bytes)
	}
}

func TestReadColdThenCachedFaster(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, DefaultConfig())
	s.Create("a", 1<<20)
	var cold, warm time.Duration
	k.Spawn("reader", func(p *sim.Proc) {
		t0 := p.Now()
		s.Read(p, "a", 0, 256<<10, 1)
		cold = p.Now() - t0
		t0 = p.Now()
		s.Read(p, "a", 0, 256<<10, 1)
		warm = p.Now() - t0
	})
	k.RunUntil(time.Minute)
	if cold == 0 || warm == 0 {
		t.Fatalf("cold=%v warm=%v; both must take time", cold, warm)
	}
	if warm*10 >= cold {
		t.Fatalf("warm read %v not much faster than cold %v", warm, cold)
	}
	if s.CacheMissPages() == 0 || s.CacheHitPages() == 0 {
		t.Fatalf("hit/miss counters: %d/%d", s.CacheHitPages(), s.CacheMissPages())
	}
}

func TestSyncWriteTouchesDisk(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.SyncWrites = true
	s := newStore(k, cfg)
	k.Spawn("writer", func(p *sim.Proc) {
		s.Write(p, "a", 0, 64<<10, 1)
	})
	k.RunUntil(time.Minute)
	if s.Device().Stats().BytesWritten == 0 {
		t.Fatalf("sync write did not reach the device")
	}
}

func TestAsyncWriteBuffersThenFlushes(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.SyncWrites = false
	s := newStore(k, cfg)
	var ackedAt time.Duration
	k.Spawn("writer", func(p *sim.Proc) {
		s.Write(p, "a", 0, 64<<10, 1)
		ackedAt = p.Now()
	})
	k.RunUntil(100 * time.Millisecond)
	if s.Device().Stats().BytesWritten != 0 {
		t.Fatalf("async write hit disk before flush interval")
	}
	if s.DirtyBytes() == 0 {
		t.Fatalf("no dirty bytes after async write")
	}
	k.RunUntil(3 * time.Second)
	if s.Device().Stats().BytesWritten == 0 {
		t.Fatalf("flusher never wrote back")
	}
	if s.DirtyBytes() != 0 {
		t.Fatalf("dirty bytes = %d after flush", s.DirtyBytes())
	}
	if ackedAt > 50*time.Millisecond {
		t.Fatalf("async write acked at %v, should be fast", ackedAt)
	}
}

func TestDirtyThrottleBlocksWriter(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.SyncWrites = false
	cfg.CacheBytes = 4 << 20
	cfg.DirtyLimitBytes = 1 << 20
	s := newStore(k, cfg)
	var wrote int64
	k.Spawn("writer", func(p *sim.Proc) {
		for i := int64(0); i < 64; i++ {
			s.Write(p, "a", i*256<<10, 256<<10, 1)
			wrote += 256 << 10
		}
	})
	k.RunUntil(20 * time.Millisecond)
	if wrote >= 64*256<<10 {
		t.Fatalf("writer never throttled: wrote %d quickly", wrote)
	}
	k.RunUntil(2 * time.Minute)
	if wrote != 64*256<<10 {
		t.Fatalf("writer did not finish after flushing: wrote %d", wrote)
	}
}

func TestSyncDrainsDirty(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.SyncWrites = false
	s := newStore(k, cfg)
	k.Spawn("writer", func(p *sim.Proc) {
		s.Write(p, "a", 0, 1<<20, 1)
		s.Sync(p)
		if s.DirtyBytes() != 0 {
			t.Errorf("dirty = %d after Sync", s.DirtyBytes())
		}
	})
	k.RunUntil(time.Minute)
	if s.Device().Stats().BytesWritten == 0 {
		t.Fatalf("Sync did not flush")
	}
}

func TestLargeReadFewDiskRequests(t *testing.T) {
	// A single large contiguous read should reach the disk as a small
	// number of large requests, not per-page requests.
	k := sim.NewKernel(1)
	s := newStore(k, DefaultConfig())
	s.Create("a", 4<<20)
	k.Spawn("reader", func(p *sim.Proc) {
		s.Read(p, "a", 0, 4<<20, 1)
	})
	k.RunUntil(time.Minute)
	if a := s.Device().Stats().Accesses; a > 16 {
		t.Fatalf("disk accesses = %d for one 4MB read, want few large requests", a)
	}
}

func TestReadAheadExtendsFetch(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.ReadAheadBytes = 256 << 10
	s := newStore(k, cfg)
	s.Create("a", 1<<20)
	k.Spawn("reader", func(p *sim.Proc) {
		s.Read(p, "a", 0, 4<<10, 1)
	})
	k.RunUntil(time.Minute)
	got := s.Device().Stats().BytesRead
	if got < 128<<10 {
		t.Fatalf("device read %d bytes, want readahead beyond the 4KB request", got)
	}
}

func TestNoReadAheadByDefault(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, DefaultConfig())
	s.Create("a", 1<<20)
	k.Spawn("reader", func(p *sim.Proc) {
		s.Read(p, "a", 0, 4<<10, 1)
	})
	k.RunUntil(time.Minute)
	if got := s.Device().Stats().BytesRead; got > 8<<10 {
		t.Fatalf("device read %d bytes for a 4KB request with readahead off", got)
	}
}

func TestConcurrentReadersNoDuplicateFetch(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, DefaultConfig())
	s.Create("a", 1<<20)
	for i := 0; i < 4; i++ {
		k.Spawn("reader", func(p *sim.Proc) {
			s.Read(p, "a", 0, 1<<20, 1)
		})
	}
	k.RunUntil(time.Minute)
	if got := s.Device().Stats().BytesRead; got > 1<<20 {
		t.Fatalf("device read %d bytes, want <= 1MB (no duplicate fetches)", got)
	}
}

func TestWriteExtendsFile(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, DefaultConfig())
	k.Spawn("writer", func(p *sim.Proc) {
		s.Write(p, "grow", 5<<20, 1<<20, 1)
	})
	k.RunUntil(time.Minute)
	if sz := s.FileSize("grow"); sz < 6<<20 {
		t.Fatalf("file size = %d, want >= 6MB after write at offset 5MB", sz)
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	bad := []struct {
		name   string
		mutate func(*Config)
	}{
		{"PageSize=0", func(c *Config) { c.PageSize = 0 }},
		{"CacheBytes=0", func(c *Config) { c.CacheBytes = 0 }},
		{"DirtyLimit>Cache", func(c *Config) { c.DirtyLimitBytes = c.CacheBytes + 1 }},
		{"WritebackEvery=0", func(c *Config) { c.WritebackEvery = 0 }},
		{"WritebackBatch=0", func(c *Config) { c.WritebackBatchBytes = 0 }},
		{"AllocUnit=0", func(c *Config) { c.AllocUnitBytes = 0 }},
		{"FileGap<0", func(c *Config) { c.FileGapBytes = -1 }},
		{"ReadAhead<0", func(c *Config) { c.ReadAheadBytes = -1 }},
		{"MemBandwidth=0", func(c *Config) { c.MemBandwidth = 0 }},
		// Misaligned byte budgets must be rejected, not silently truncated
		// (capPages = CacheBytes/PageSize).
		{"CacheBytes misaligned", func(c *Config) { c.CacheBytes += 1 }},
		{"CacheBytes off by a page half", func(c *Config) { c.CacheBytes -= int64(c.PageSize) / 2 }},
		{"DirtyLimit misaligned", func(c *Config) { c.DirtyLimitBytes += 7 }},
		{"ReadAhead misaligned", func(c *Config) { c.ReadAheadBytes = int64(c.PageSize) + 1 }},
		{"unknown engine", func(c *Config) { c.Engine = "btrfs" }},
		{"LSMSegmentBytes<0", func(c *Config) { c.LSMSegmentBytes = -1 }},
		{"LSMSegmentBytes<PageSize", func(c *Config) { c.LSMSegmentBytes = int64(c.PageSize) - 1 }},
		{"LSMCompactFrac>1", func(c *Config) { c.LSMCompactFrac = 1.5 }},
		{"LSMCompactFrac<0", func(c *Config) { c.LSMCompactFrac = -0.1 }},
		{"LSMCompactBps<0", func(c *Config) { c.LSMCompactBps = -1 }},
	}
	for _, tc := range bad {
		c := DefaultConfig()
		tc.mutate(&c)
		if c.Validate() == nil {
			t.Fatalf("case %q passed Validate", tc.name)
		}
	}
	for _, eng := range Engines() {
		c := DefaultConfig()
		c.Engine = eng
		if err := c.Validate(); err != nil {
			t.Fatalf("engine %q rejected: %v", eng, err)
		}
	}
}

func TestEvictionKeepsCacheBounded(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.CacheBytes = 1 << 20 // 256 pages
	cfg.DirtyLimitBytes = 512 << 10
	s := newStore(k, cfg)
	s.Create("a", 8<<20)
	k.Spawn("reader", func(p *sim.Proc) {
		s.Read(p, "a", 0, 8<<20, 1)
	})
	k.RunUntil(time.Minute)
	if got := int64(len(s.cache.pages)) * int64(cfg.PageSize); got > cfg.CacheBytes {
		t.Fatalf("resident = %d bytes, cache bound %d", got, cfg.CacheBytes)
	}
}

func TestReadMultiBatchesAcrossExtents(t *testing.T) {
	// A multi-extent read must enqueue all runs before waiting, so the
	// elevator can sort the whole batch (list-I/O semantics).
	k := sim.NewKernel(1)
	s := newStore(k, DefaultConfig())
	s.Create("a", 8<<20)
	var batched time.Duration
	k.Spawn("reader", func(p *sim.Proc) {
		t0 := p.Now()
		s.ReadMulti(p, "a", []ext.Extent{
			{Off: 6 << 20, Len: 256 << 10},
			{Off: 0, Len: 256 << 10},
			{Off: 3 << 20, Len: 256 << 10},
		}, 1, obs.Ctx{})
		batched = p.Now() - t0
	})
	k.RunUntil(time.Minute)
	// Serial submission pays three positioning delays in issue order; the
	// batch should cost less than three isolated reads of the same ranges.
	k2 := sim.NewKernel(1)
	s2 := newStore(k2, DefaultConfig())
	s2.Create("a", 8<<20)
	var serial time.Duration
	k2.Spawn("reader", func(p *sim.Proc) {
		t0 := p.Now()
		s2.Read(p, "a", 6<<20, 256<<10, 1)
		s2.Read(p, "a", 0, 256<<10, 1)
		s2.Read(p, "a", 3<<20, 256<<10, 1)
		serial = p.Now() - t0
	})
	k2.RunUntil(time.Minute)
	if batched >= serial {
		t.Fatalf("batched %v not faster than serial %v", batched, serial)
	}
}

func TestWriteMultiSyncConservesBytes(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, DefaultConfig())
	extents := []ext.Extent{{Off: 0, Len: 100}, {Off: 4096, Len: 200}, {Off: 1 << 20, Len: 300}}
	k.Spawn("writer", func(p *sim.Proc) {
		s.WriteMulti(p, "w", extents, 1, obs.Ctx{})
	})
	k.RunUntil(time.Minute)
	if s.BytesWritten() != 600 {
		t.Fatalf("store write bytes = %d, want 600", s.BytesWritten())
	}
	// The device rounds to sectors but must cover at least the data.
	if got := s.Device().Stats().BytesWritten; got < 600 {
		t.Fatalf("device write bytes = %d, want >= 600", got)
	}
}

func TestZeroLengthOpsAreNoOps(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, DefaultConfig())
	k.Spawn("p", func(p *sim.Proc) {
		s.Read(p, "a", 0, 0, 1)
		s.Write(p, "a", 0, 0, 1)
		s.ReadMulti(p, "a", nil, 1, obs.Ctx{})
		s.WriteMulti(p, "a", []ext.Extent{{Off: 5, Len: 0}}, 1, obs.Ctx{})
	})
	k.RunUntil(time.Minute)
	if s.BytesRead() != 0 || s.BytesWritten() != 0 {
		t.Fatalf("zero-length ops moved bytes: %d/%d", s.BytesRead(), s.BytesWritten())
	}
	if s.Device().Stats().Accesses != 0 {
		t.Fatalf("zero-length ops touched the device")
	}
}

func TestAsyncWritebackHighWaterKicksEarly(t *testing.T) {
	// Exceeding the dirty limit must trigger writeback before the periodic
	// interval.
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.SyncWrites = false
	cfg.DirtyLimitBytes = 1 << 20
	cfg.WritebackEvery = 10 * time.Second
	s := newStore(k, cfg)
	k.Spawn("writer", func(p *sim.Proc) {
		s.Write(p, "a", 0, 4<<20, 1)
	})
	k.RunUntil(2 * time.Second)
	if s.Device().Stats().BytesWritten == 0 {
		t.Fatalf("high-water mark did not kick the flusher before the interval")
	}
}
