package fs

import (
	"testing"
	"time"

	"dualpar/internal/sim"
)

// forEachEngine runs the conformance test body once per storage engine.
func forEachEngine(t *testing.T, body func(t *testing.T, cfg Config)) {
	for _, eng := range Engines() {
		t.Run(eng, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Engine = eng
			body(t, cfg)
		})
	}
}

func TestEngineConformanceReadWrite(t *testing.T) {
	// Every engine must serve reads and sync writes through the device and
	// leave its layout bookkeeping consistent.
	forEachEngine(t, func(t *testing.T, cfg Config) {
		k := sim.NewKernel(1)
		s := newStore(k, cfg)
		s.Create("a", 4<<20)
		k.Spawn("worker", func(p *sim.Proc) {
			s.Read(p, "a", 0, 1<<20, 1)
			s.Write(p, "a", 512<<10, 1<<20, 1)
			s.Read(p, "a", 512<<10, 1<<20, 1)
		})
		k.RunUntil(time.Minute)
		st := s.Device().Stats()
		if st.BytesRead == 0 || st.BytesWritten == 0 {
			t.Fatalf("device traffic read=%d written=%d, want both nonzero", st.BytesRead, st.BytesWritten)
		}
		if got := s.FileSize("a"); got < 4<<20 {
			t.Fatalf("allocated size %d, want >= 4MB", got)
		}
		if got := s.LogicalSize("a"); got != 4<<20 {
			t.Fatalf("logical size %d, want exactly 4MB", got)
		}
		if err := s.Engine().CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
	})
}

func TestEngineConformanceDirtyThrottle(t *testing.T) {
	// The dirty-limit throttle lives above the engine: writers must block
	// when dirty bytes exceed the limit and finish once the flusher drains,
	// whichever engine decides where writeback lands.
	forEachEngine(t, func(t *testing.T, cfg Config) {
		cfg.SyncWrites = false
		cfg.CacheBytes = 4 << 20
		cfg.DirtyLimitBytes = 1 << 20
		k := sim.NewKernel(1)
		s := newStore(k, cfg)
		var wrote int64
		k.Spawn("writer", func(p *sim.Proc) {
			for i := int64(0); i < 64; i++ {
				s.Write(p, "a", i*256<<10, 256<<10, 1)
				wrote += 256 << 10
			}
		})
		k.RunUntil(20 * time.Millisecond)
		if wrote >= 64*256<<10 {
			t.Fatalf("writer never throttled: wrote %d quickly", wrote)
		}
		k.RunUntil(2 * time.Minute)
		if wrote != 64*256<<10 {
			t.Fatalf("writer did not finish after flushing: wrote %d", wrote)
		}
		if err := s.Engine().CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
	})
}

func TestEngineConformanceEvictionBounded(t *testing.T) {
	// The eviction sweeper must keep residency at or under capacity while a
	// scan twice the cache size streams through, for every layout.
	forEachEngine(t, func(t *testing.T, cfg Config) {
		cfg.CacheBytes = 1 << 20
		cfg.DirtyLimitBytes = 512 << 10
		k := sim.NewKernel(1)
		s := newStore(k, cfg)
		s.Create("a", 8<<20)
		k.Spawn("reader", func(p *sim.Proc) {
			s.Read(p, "a", 0, 8<<20, 1)
		})
		k.RunUntil(time.Minute)
		if got := int64(len(s.cache.pages)) * int64(cfg.PageSize); got > cfg.CacheBytes {
			t.Fatalf("resident = %d bytes, cache bound %d", got, cfg.CacheBytes)
		}
		if err := s.Engine().CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
	})
}

func TestEngineConformanceInvariantsUnderChurn(t *testing.T) {
	// Mixed read/overwrite churn with async writeback: invariants must hold
	// at quiesce for every engine (for LSM this exercises the byte ledger
	// across log appends, supersedes, and compaction).
	forEachEngine(t, func(t *testing.T, cfg Config) {
		cfg.SyncWrites = false
		cfg.LSMSegmentBytes = 256 << 10 // small segments so compaction fires
		k := sim.NewKernel(1)
		s := newStore(k, cfg)
		s.Create("a", 2<<20)
		s.Create("b", 2<<20)
		k.Spawn("churn", func(p *sim.Proc) {
			for round := 0; round < 6; round++ {
				for _, f := range []string{"a", "b"} {
					s.Write(p, f, int64(round%3)*512<<10, 512<<10, 1)
					s.Read(p, f, int64(round%4)*256<<10, 256<<10, 1)
				}
				s.Sync(p)
			}
		})
		k.RunUntil(5 * time.Minute)
		if err := s.Engine().CheckInvariants(); err != nil {
			t.Fatalf("invariants after churn: %v", err)
		}
	})
}

func TestBPTreeFragmentsLayout(t *testing.T) {
	// The B+tree engine deliberately fragments: a file that the extent
	// engine lays out in one run must shatter into many gapped extents,
	// and the tree must grow past a single node (splits exercised).
	cfg := DefaultConfig()
	cfg.Engine = EngineBPTree
	k := sim.NewKernel(1)
	s := newStore(k, cfg)
	s.Create("a", 64<<20)
	e := s.Engine().(*bptreeEngine)
	f := e.files["a"]
	if len(f.shadow) <= bptOrder {
		t.Fatalf("extents = %d, want enough to split a %d-key node", len(f.shadow), bptOrder)
	}
	if f.tree.height < 2 {
		t.Fatalf("tree height = %d, want >= 2 after %d extents", f.tree.height, len(f.shadow))
	}
	for i := 1; i < len(f.shadow); i++ {
		prev, cur := f.shadow[i-1], f.shadow[i]
		if cur.lbn == prev.lbn+prev.bytes/sectorSize {
			t.Fatalf("extents %d and %d contiguous on disk; aged-FS layout must gap them", i-1, i)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestBPTreeLookupMatchesFlatScan(t *testing.T) {
	// Point lookups through the tree must agree with a linear scan of the
	// shadow map at every extent boundary and interior offset.
	cfg := DefaultConfig()
	cfg.Engine = EngineBPTree
	k := sim.NewKernel(1)
	s := newStore(k, cfg)
	s.Create("a", 32<<20)
	e := s.Engine().(*bptreeEngine)
	f := e.files["a"]
	for _, x := range f.shadow {
		for _, off := range []int64{x.fileOff, x.fileOff + x.bytes/2, x.fileOff + x.bytes - 1} {
			runs := e.ReadRuns(nil, "a", off, 1)
			if len(runs) != 1 {
				t.Fatalf("off %d: %d runs, want 1", off, len(runs))
			}
			want := x.lbn + (off-x.fileOff)/sectorSize
			if runs[0].lbn != want {
				t.Fatalf("off %d: lbn %d, flat scan says %d", off, runs[0].lbn, want)
			}
		}
	}
}

func TestLSMWritebackSequential(t *testing.T) {
	// Scattered logical writes must land as one sequential append run at
	// the head of the log.
	cfg := DefaultConfig()
	cfg.Engine = EngineLSM
	k := sim.NewKernel(1)
	s := newStore(k, cfg)
	s.Create("a", 8<<20)
	e := s.Engine().(*lsmEngine)
	var runs []lbnRun
	// Backward-scattered writes: worst case for update-in-place, one
	// contiguous run for the log.
	for _, off := range []int64{6 << 20, 2 << 20, 4 << 20, 0} {
		runs = e.WriteRuns(runs, "a", off, 64<<10)
	}
	if len(runs) != 1 {
		t.Fatalf("scattered writes produced %d log runs, want 1 sequential", len(runs))
	}
	if runs[0].bytes != 4*64<<10 {
		t.Fatalf("log run %d bytes, want %d", runs[0].bytes, 4*64<<10)
	}
	// Reads chase the pages into the log.
	rd := e.ReadRuns(nil, "a", 0, 64<<10)
	if len(rd) != 1 || rd[0].lbn < runs[0].lbn || rd[0].lbn >= runs[0].lbn+runs[0].bytes/sectorSize {
		t.Fatalf("read of overwritten range resolves to %+v, want inside log run %+v", rd, runs[0])
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestLSMCompactionConservesBytes(t *testing.T) {
	// Overwriting the same range repeatedly fills segments with garbage;
	// the compactor must reclaim them, the byte ledger must balance, and
	// its disk traffic must be visible on the device.
	cfg := DefaultConfig()
	cfg.Engine = EngineLSM
	cfg.LSMSegmentBytes = 128 << 10
	cfg.LSMCompactBps = 64 << 20
	k := sim.NewKernel(1)
	s := newStore(k, cfg)
	s.Create("a", 1<<20)
	k.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			s.Write(p, "a", 0, 256<<10, 1) // overwrite the same 64 pages
			p.Sleep(50 * time.Millisecond)
		}
	})
	k.RunUntil(10 * time.Minute)
	e := s.Engine().(*lsmEngine)
	absorbed, compacted, reclaimed, live := e.Stats()
	if absorbed != 20*256<<10 {
		t.Fatalf("absorbed %d bytes, want %d", absorbed, 20*256<<10)
	}
	if reclaimed == 0 {
		t.Fatalf("compactor never reclaimed a segment (absorbed %d, segments of %d)", absorbed, cfg.LSMSegmentBytes)
	}
	if live != 256<<10 {
		t.Fatalf("live %d bytes, want %d (one copy of the working set)", live, 256<<10)
	}
	_ = compacted
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("byte ledger: %v", err)
	}
}

func TestLSMCompactionThrottled(t *testing.T) {
	// The same garbage load compacted at a lower bandwidth cap must spread
	// its device traffic over more time (throttle actually binds).
	run := func(bps float64) time.Duration {
		cfg := DefaultConfig()
		cfg.Engine = EngineLSM
		cfg.LSMSegmentBytes = 128 << 10
		cfg.LSMCompactBps = bps
		k := sim.NewKernel(1)
		s := newStore(k, cfg)
		s.Create("a", 2<<20)
		k.Spawn("writer", func(p *sim.Proc) {
			// Fill a segment, then supersede half of it: the victim keeps
			// live pages, so compaction must actually move (throttled) data.
			for i := int64(0); i < 10; i++ {
				s.Write(p, "a", i*128<<10, 128<<10, 1)
				s.Write(p, "a", i*128<<10, 64<<10, 1)
			}
		})
		e := s.Engine().(*lsmEngine)
		last := time.Duration(0)
		k.Spawn("probe", func(p *sim.Proc) {
			for {
				if _, _, reclaimed, _ := e.Stats(); reclaimed > 0 {
					before := reclaimed
					p.Sleep(500 * time.Millisecond)
					if _, _, after, _ := e.Stats(); after == before {
						last = p.Now()
						return
					}
					continue
				}
				p.Sleep(10 * time.Millisecond)
			}
		})
		k.RunUntil(10 * time.Minute)
		return last
	}
	fast, slow := run(256<<20), run(1<<20)
	if fast == 0 || slow == 0 {
		t.Fatalf("compaction never quiesced: fast=%v slow=%v", fast, slow)
	}
	if slow <= fast {
		t.Fatalf("throttled compaction finished at %v, unthrottled at %v; throttle has no effect", slow, fast)
	}
}

// --- satellite regressions ---

func TestMakeRoomManyDirtiersTinyCache(t *testing.T) {
	// Regression for the all-dirty-cache path in pageCache.makeRoom: with a
	// cache only a few pages big and many concurrent dirtiers (plus readers
	// forcing clean insertions), every blocked writer must eventually be
	// woken by the flusher — no lost wakeups, no livelock — and residency
	// must never exceed capacity.
	cfg := DefaultConfig()
	cfg.SyncWrites = false
	cfg.CacheBytes = 4 << 12 // 4 pages
	cfg.DirtyLimitBytes = 2 << 12
	cfg.WritebackBatchBytes = 1 << 12
	cfg.WritebackEvery = 10 * time.Millisecond
	k := sim.NewKernel(1)
	s := newStore(k, cfg)
	s.Create("a", 1<<20)
	capPages := cfg.CacheBytes / int64(cfg.PageSize)
	done := 0
	const writers, pagesEach = 8, 32
	for w := 0; w < writers; w++ {
		off := int64(w) * pagesEach << 12
		k.Spawn("dirtier", func(p *sim.Proc) {
			for i := int64(0); i < pagesEach; i++ {
				s.Write(p, "a", off+i<<12, 1<<12, 1)
			}
			done++
		})
	}
	k.Spawn("reader", func(p *sim.Proc) {
		for i := int64(0); i < pagesEach; i++ {
			s.Read(p, "a", (200+i)<<12, 1<<12, 2)
		}
	})
	k.Spawn("monitor", func(p *sim.Proc) {
		for {
			if got := int64(len(s.cache.pages)); got > capPages {
				t.Errorf("resident %d pages at %v, cap %d", got, p.Now(), capPages)
				return
			}
			p.Sleep(time.Millisecond)
		}
	})
	k.RunUntil(5 * time.Minute)
	if done != writers {
		t.Fatalf("%d/%d dirtiers finished; writers lost a wakeup in makeRoom", done, writers)
	}
	k.RunUntil(6 * time.Minute)
	if s.DirtyBytes() != 0 {
		t.Fatalf("dirty bytes = %d after quiesce", s.DirtyBytes())
	}
}

func TestReadAheadStopsAtLogicalEOF(t *testing.T) {
	// Regression: readahead used to run to the *allocated* size (the
	// alloc-unit-rounded high-water mark), making pages past EOF resident.
	// With a 10KB file (3 pages of data) and generous readahead, no page
	// beyond index 2 may become resident.
	cfg := DefaultConfig()
	cfg.ReadAheadBytes = 256 << 10
	k := sim.NewKernel(1)
	s := newStore(k, cfg)
	s.Create("a", 10<<10) // logical 10KB; allocated rounds to 8MB
	if s.FileSize("a") <= 10<<10 {
		t.Fatalf("precondition: allocation did not round up (size %d)", s.FileSize("a"))
	}
	k.Spawn("reader", func(p *sim.Proc) {
		s.Read(p, "a", 0, 4<<10, 1)
	})
	k.RunUntil(time.Minute)
	for pg := int64(3); pg < 64; pg++ {
		if s.cache.resident("a", pg) {
			t.Fatalf("phantom page %d resident beyond logical EOF", pg)
		}
	}
	// Pages 1 and 2 hold live bytes and are fair readahead targets.
	if !s.cache.resident("a", 0) {
		t.Fatalf("demanded page not resident")
	}
}

func TestReadAheadStopsAtExtentBoundary(t *testing.T) {
	// Regression: readahead must not cross into a discontiguous extent
	// (readahead does not seek). File a's second extent starts at 1MB and
	// is separated on disk by file b; readahead from just below the
	// boundary must not pull extent-2 pages in.
	cfg := DefaultConfig()
	cfg.AllocUnitBytes = 1 << 20
	cfg.ReadAheadBytes = 256 << 10
	k := sim.NewKernel(1)
	s := newStore(k, cfg)
	s.Create("a", 1<<20)
	s.Create("b", 1<<20) // forces a's next extent to be discontiguous
	s.Create("a", 2<<20)
	if n := len(s.eng.(*extentEngine).files["a"].extents); n != 2 {
		t.Fatalf("precondition: file a has %d extents, want 2", n)
	}
	k.Spawn("reader", func(p *sim.Proc) {
		s.Read(p, "a", 1<<20-8<<10, 4<<10, 1)
	})
	k.RunUntil(time.Minute)
	boundaryPg := int64(1<<20) / int64(cfg.PageSize)
	for pg := boundaryPg; pg < boundaryPg+64; pg++ {
		if s.cache.resident("a", pg) {
			t.Fatalf("readahead crossed the extent boundary: page %d resident", pg)
		}
	}
	if !s.cache.resident("a", boundaryPg-2) {
		t.Fatalf("demanded page not resident")
	}
}
