package fs

import "fmt"

// extentEngine is the contiguous-extent allocator carved out of the
// original Store: a growing file claims AllocUnitBytes of contiguous LBN
// space at a time from a single upward cursor, adjacent allocations merge,
// and a FileGapBytes hole separates different files' regions. Reads and
// writes resolve through a flat per-file extent slice; writes are update
// in place. Behavior is bit-for-bit the pre-engine Store's (pinned by the
// baseline-guard goldens).
type extentEngine struct {
	cfg   Config
	files map[string]*fileMeta
	nexts int64 // next free sector for allocation
}

// extent maps a contiguous file range to contiguous LBNs.
type extent struct {
	fileOff int64 // byte offset in the (server-local) file
	lbn     int64
	bytes   int64
}

type fileMeta struct {
	name    string
	size    int64 // bytes allocated (high-water of writes/creates)
	extents []extent
}

const sectorSize = 512

func newExtentEngine(cfg Config) *extentEngine {
	return &extentEngine{cfg: cfg, files: make(map[string]*fileMeta)}
}

func (e *extentEngine) Kind() string { return EngineExtent }

// file looks a file up, creating it (and leaving the inter-file gap) on
// first touch.
func (e *extentEngine) file(name string) *fileMeta {
	f := e.files[name]
	if f == nil {
		f = &fileMeta{name: name}
		e.files[name] = f
		// Leave a gap before a new file's region.
		e.nexts += e.cfg.FileGapBytes / int64(sectorSize)
	}
	return f
}

func (e *extentEngine) Open(file string) { e.file(file) }

func (e *extentEngine) Ensure(file string, size int64) {
	e.ensureAllocated(e.file(file), size)
}

func (e *extentEngine) AllocatedSize(file string) int64 {
	if f, ok := e.files[file]; ok {
		return f.size
	}
	return 0
}

// ensureAllocated extends f's extents to cover [0, size).
func (e *extentEngine) ensureAllocated(f *fileMeta, size int64) {
	for f.size < size {
		need := size - f.size
		unit := e.cfg.AllocUnitBytes
		if need > unit {
			unit = (need + e.cfg.AllocUnitBytes - 1) / e.cfg.AllocUnitBytes * e.cfg.AllocUnitBytes
		}
		sectors := unit / sectorSize
		// Merge with the previous extent when the allocation is adjacent
		// (no other file claimed space in between).
		if n := len(f.extents); n > 0 {
			last := &f.extents[n-1]
			if last.lbn+last.bytes/sectorSize == e.nexts {
				last.bytes += unit
				f.size += unit
				e.nexts += sectors
				continue
			}
		}
		f.extents = append(f.extents, extent{fileOff: f.size, lbn: e.nexts, bytes: unit})
		f.size += unit
		e.nexts += sectors
	}
}

// appendRuns maps the byte range [off, off+n) of file f to contiguous LBN
// runs, appending them to out.
func (f *fileMeta) appendRuns(out []lbnRun, off, n int64) []lbnRun {
	end := off + n
	for _, e := range f.extents {
		eEnd := e.fileOff + e.bytes
		if eEnd <= off || e.fileOff >= end {
			continue
		}
		lo, hi := off, end
		if lo < e.fileOff {
			lo = e.fileOff
		}
		if hi > eEnd {
			hi = eEnd
		}
		out = append(out, lbnRun{
			lbn:   e.lbn + (lo-e.fileOff)/sectorSize,
			bytes: hi - lo,
		})
	}
	return out
}

func (e *extentEngine) ReadRuns(out []lbnRun, file string, off, n int64) []lbnRun {
	return e.file(file).appendRuns(out, off, n)
}

// WriteRuns: update in place — writes land exactly where reads look.
func (e *extentEngine) WriteRuns(out []lbnRun, file string, off, n int64) []lbnRun {
	return e.ReadRuns(out, file, off, n)
}

// ReadAheadLimit: readahead may run to the end of the extent holding off.
func (e *extentEngine) ReadAheadLimit(file string, off int64) int64 {
	if x, ok := e.locate(file, off); ok {
		return x.fileOff + x.bytes
	}
	return off
}

// locate returns the extent of file containing byte offset off.
func (e *extentEngine) locate(file string, off int64) (extent, bool) {
	f, ok := e.files[file]
	if !ok {
		return extent{}, false
	}
	for _, x := range f.extents {
		if x.fileOff <= off && off < x.fileOff+x.bytes {
			return x, true
		}
	}
	return extent{}, false
}

// CheckInvariants verifies the flat extent maps are self-consistent: each
// file's extents are contiguous in file space, sum to its allocated size,
// and no two extents of any files overlap in LBN space.
func (e *extentEngine) CheckInvariants() error {
	type span struct {
		lo, hi int64
		file   string
	}
	var spans []span
	for name, f := range e.files {
		var covered, next int64
		for _, x := range f.extents {
			if x.fileOff != next {
				return fmt.Errorf("extent engine: file %s extent at %d, want contiguous at %d", name, x.fileOff, next)
			}
			if x.bytes <= 0 || x.bytes%sectorSize != 0 {
				return fmt.Errorf("extent engine: file %s extent bytes %d", name, x.bytes)
			}
			covered += x.bytes
			next = x.fileOff + x.bytes
			spans = append(spans, span{lo: x.lbn, hi: x.lbn + x.bytes/sectorSize, file: name})
		}
		if covered != f.size {
			return fmt.Errorf("extent engine: file %s extents cover %d bytes, size %d", name, covered, f.size)
		}
	}
	// O(n^2) overlap walk is fine: files hold a handful of extents.
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				return fmt.Errorf("extent engine: LBN overlap between %s [%d,%d) and %s [%d,%d)",
					spans[i].file, spans[i].lo, spans[i].hi, spans[j].file, spans[j].lo, spans[j].hi)
			}
		}
	}
	return nil
}
