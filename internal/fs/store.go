// Package fs models a data server's local storage stack: a pluggable
// StorageEngine laying file data out on the disk's LBN space (contiguous
// extents by default; B+tree-indexed fragmented layout and a log-structured
// engine are selectable), a page cache with dirty-page writeback (the paper
// forces a 1-second flush), and an I/O-scheduler dispatcher in front of the
// device.
//
// Only metadata is stored — file contents are never materialized. Workload
// data dependence is modeled at the workload layer as deterministic
// functions of file offsets, so the storage stack tracks extents, residency,
// and time, not bytes.
package fs

import (
	"fmt"
	"sort"
	"time"

	"dualpar/internal/disk"
	"dualpar/internal/ext"
	"dualpar/internal/iosched"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// Config tunes one server's storage stack.
type Config struct {
	PageSize int // bytes; kernel page size

	// CacheBytes is the page-cache capacity. DirtyLimitBytes throttles
	// writers: a write blocks while dirty bytes exceed it (like
	// dirty_ratio).
	CacheBytes      int64
	DirtyLimitBytes int64

	// WritebackEvery is the periodic flush interval (the paper forces 1 s).
	// WritebackBatchBytes bounds one flush submission.
	WritebackEvery      time.Duration
	WritebackBatchBytes int64

	// SyncWrites makes writes durable before acknowledgment (PVFS2's Trove
	// syncs data per operation); the page cache then only serves reads.
	SyncWrites bool

	// AllocUnitBytes is the extent-allocation granularity: a growing file
	// claims this much contiguous LBN space at a time. FileGapBytes leaves
	// a gap between allocations of different files, separating their disk
	// regions as on a real aged file system.
	AllocUnitBytes int64
	FileGapBytes   int64

	// ReadAheadBytes, when positive, extends a missed read run forward by
	// up to this much (kernel readahead analogue). Readahead never crosses
	// the on-disk contiguous region holding the miss (readahead does not
	// seek) and never extends past the file's logical size.
	ReadAheadBytes int64

	// MemBandwidth models page-cache copy cost, bytes/second.
	MemBandwidth float64

	// Engine selects the storage engine laying file bytes out on disk:
	// one of Engines() ("" = EngineExtent, the paper's default).
	Engine string

	// LSM engine knobs (ignored by the other engines). Zero selects the
	// engine's defaults: 4 MiB segments, compaction at 50% garbage,
	// 32 MiB/s compaction bandwidth.
	LSMSegmentBytes int64   // log segment size, page-aligned
	LSMCompactFrac  float64 // garbage fraction triggering compaction, (0,1]
	LSMCompactBps   float64 // compaction disk-bandwidth throttle, bytes/s
}

// DefaultConfig returns a configuration approximating the paper's data
// servers (with scaled cache).
func DefaultConfig() Config {
	return Config{
		PageSize:            4096,
		CacheBytes:          256 << 20,
		DirtyLimitBytes:     64 << 20,
		WritebackEvery:      time.Second,
		WritebackBatchBytes: 8 << 20,
		SyncWrites:          true,
		AllocUnitBytes:      8 << 20,
		FileGapBytes:        16 << 20,
		ReadAheadBytes:      0,
		MemBandwidth:        4e9,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.PageSize <= 0:
		return fmt.Errorf("fs: PageSize %d", c.PageSize)
	case c.CacheBytes < int64(c.PageSize):
		return fmt.Errorf("fs: CacheBytes %d", c.CacheBytes)
	case c.CacheBytes%int64(c.PageSize) != 0:
		// Rejected rather than rounded: capPages = CacheBytes/PageSize would
		// silently truncate, and a config that lies about its cache size is
		// a config bug.
		return fmt.Errorf("fs: CacheBytes %d not a multiple of PageSize %d", c.CacheBytes, c.PageSize)
	case c.DirtyLimitBytes <= 0 || c.DirtyLimitBytes > c.CacheBytes:
		return fmt.Errorf("fs: DirtyLimitBytes %d", c.DirtyLimitBytes)
	case c.DirtyLimitBytes%int64(c.PageSize) != 0:
		return fmt.Errorf("fs: DirtyLimitBytes %d not a multiple of PageSize %d", c.DirtyLimitBytes, c.PageSize)
	case c.WritebackEvery <= 0:
		return fmt.Errorf("fs: WritebackEvery %v", c.WritebackEvery)
	case c.WritebackBatchBytes < int64(c.PageSize):
		return fmt.Errorf("fs: WritebackBatchBytes %d", c.WritebackBatchBytes)
	case c.AllocUnitBytes < int64(c.PageSize):
		return fmt.Errorf("fs: AllocUnitBytes %d", c.AllocUnitBytes)
	case c.FileGapBytes < 0:
		return fmt.Errorf("fs: FileGapBytes %d", c.FileGapBytes)
	case c.ReadAheadBytes < 0:
		return fmt.Errorf("fs: ReadAheadBytes %d", c.ReadAheadBytes)
	case c.ReadAheadBytes%int64(c.PageSize) != 0:
		return fmt.Errorf("fs: ReadAheadBytes %d not a multiple of PageSize %d", c.ReadAheadBytes, c.PageSize)
	case c.MemBandwidth <= 0:
		return fmt.Errorf("fs: MemBandwidth %g", c.MemBandwidth)
	case !validEngine(c.Engine):
		return fmt.Errorf("fs: Engine %q (want one of %v)", c.Engine, Engines())
	case c.LSMSegmentBytes < 0 || (c.LSMSegmentBytes > 0 && c.LSMSegmentBytes < int64(c.PageSize)):
		return fmt.Errorf("fs: LSMSegmentBytes %d", c.LSMSegmentBytes)
	case c.LSMCompactFrac < 0 || c.LSMCompactFrac > 1:
		return fmt.Errorf("fs: LSMCompactFrac %g", c.LSMCompactFrac)
	case c.LSMCompactBps < 0:
		return fmt.Errorf("fs: LSMCompactBps %g", c.LSMCompactBps)
	}
	return nil
}

// Store is one data server's local storage.
type Store struct {
	k      *sim.Kernel
	cfg    Config
	dev    disk.Device
	disp   *iosched.Dispatcher
	eng    StorageEngine
	cache  *pageCache
	wbOrig int // origin id used by the flusher

	// logical is each file's logical size: the high-water mark of Create
	// sizes and write ends, before allocation-unit rounding. Readahead
	// clips against it so pages past EOF never become resident.
	logical map[string]int64

	statReadBytes  int64
	statWriteBytes int64
	statCacheHits  int64
	statCacheMiss  int64

	cPageHit  *obs.Counter
	cPageMiss *obs.Counter

	// Free lists for the per-call batch machinery: block-layer request
	// records and the scratch slices a list-I/O call grows while building
	// its batch. Scratch is checked out per call (concurrent submitters
	// each hold their own across parks) and returned once every request in
	// the batch has completed; requests cycle through Reset. Push/pop
	// happens only between parks, so strict alternation is the lock.
	reqFree     []*iosched.Request
	scratchFree []*multiScratch
}

// multiScratch bundles the slices one ReadMulti/WriteMulti/flushOnce call
// reuses while assembling its request batch.
type multiScratch struct {
	reqs     []*iosched.Request
	missRuns [][2]int64
	runs     []lbnRun
	pages    []*cachePage
}

func (s *Store) getScratch() *multiScratch {
	if n := len(s.scratchFree); n > 0 {
		sc := s.scratchFree[n-1]
		s.scratchFree = s.scratchFree[:n-1]
		return sc
	}
	return &multiScratch{}
}

func (s *Store) putScratch(sc *multiScratch) {
	sc.reqs = sc.reqs[:0]
	sc.missRuns = sc.missRuns[:0]
	sc.runs = sc.runs[:0]
	sc.pages = sc.pages[:0]
	s.scratchFree = append(s.scratchFree, sc)
}

// newReq pops a recycled request record (or allocates the pool's first)
// and fills in the caller's fields.
func (s *Store) newReq(lbn, sectors int64, write bool, origin int, rc obs.Ctx) *iosched.Request {
	var r *iosched.Request
	if n := len(s.reqFree); n > 0 {
		r = s.reqFree[n-1]
		s.reqFree = s.reqFree[:n-1]
	} else {
		r = &iosched.Request{}
	}
	r.LBN, r.Sectors, r.Write, r.Origin, r.Obs = lbn, sectors, write, origin, rc
	return r
}

// releaseReqs recycles a batch whose every request has completed.
func (s *Store) releaseReqs(reqs []*iosched.Request) {
	for _, r := range reqs {
		r.Reset()
		s.reqFree = append(s.reqFree, r)
	}
}

// New creates a store over dev with the given elevator algorithm. name is
// used for the dispatcher Proc. wbOrigin must be an origin id unique to this
// store's flusher.
func New(k *sim.Kernel, name string, dev disk.Device, alg iosched.Algorithm, cfg Config, wbOrigin int) *Store {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Store{
		k:       k,
		cfg:     cfg,
		dev:     dev,
		disp:    iosched.NewDispatcher(k, name+"/dispatch", dev, alg),
		eng:     newEngine(cfg),
		wbOrig:  wbOrigin,
		logical: make(map[string]int64),
	}
	s.cache = newPageCache(k, cfg)
	if !cfg.SyncWrites {
		k.Spawn(name+"/flusher", s.flusherLoop)
	}
	if be, ok := s.eng.(backgroundEngine); ok {
		be.start(k, name+"/engine", s)
	}
	return s
}

// SetObs attaches the observability collector to the store and its
// dispatcher. Page-cache counters aggregate across stores sharing one
// collector.
func (s *Store) SetObs(c *obs.Collector) {
	s.disp.SetObs(c)
	s.cPageHit = c.Metrics().Counter("pagecache.hit")
	s.cPageMiss = c.Metrics().Counter("pagecache.miss")
}

// Device returns the underlying device (for stats and traces).
func (s *Store) Device() disk.Device { return s.dev }

// Engine returns the store's storage engine (for audits and tests).
func (s *Store) Engine() StorageEngine { return s.eng }

// Dispatcher returns the store's block-layer dispatcher.
func (s *Store) Dispatcher() *iosched.Dispatcher { return s.disp }

// BytesRead and BytesWritten report cumulative request volume served by this
// store (cache hits included).
func (s *Store) BytesRead() int64    { return s.statReadBytes }
func (s *Store) BytesWritten() int64 { return s.statWriteBytes }

// CacheHitPages and CacheMissPages report read-path page hit/miss counts.
func (s *Store) CacheHitPages() int64  { return s.statCacheHits }
func (s *Store) CacheMissPages() int64 { return s.statCacheMiss }

// Create allocates layout for a file of the given size. Creating an
// existing file extends it if size is larger.
func (s *Store) Create(name string, size int64) {
	s.eng.Ensure(name, size)
	if size > s.logical[name] {
		s.logical[name] = size
	}
}

// FileSize reports the allocated size of a file (0 if absent).
func (s *Store) FileSize(name string) int64 {
	return s.eng.AllocatedSize(name)
}

// LogicalSize reports the file's logical size: the high-water mark of
// Create sizes and write ends (0 if absent).
func (s *Store) LogicalSize(name string) int64 { return s.logical[name] }

type lbnRun struct {
	lbn   int64
	bytes int64
}

// engineSubmit drives a background engine's disk traffic (LSM compaction)
// through the store's dispatcher at writeback origin, so the elevator,
// disk stats, and audit ledgers all see it. Blocks p until it completes.
func (s *Store) engineSubmit(p *sim.Proc, runs []lbnRun, write bool) {
	sc := s.getScratch()
	reqs := sc.reqs
	for _, lr := range runs {
		reqs = s.appendSplit(reqs, lr, write, s.wbOrig, obs.Ctx{})
	}
	for _, r := range reqs {
		s.disp.Enqueue(r)
	}
	for _, r := range reqs {
		s.disp.Wait(p, r)
	}
	s.releaseReqs(reqs)
	sc.reqs = reqs
	s.putScratch(sc)
}

// Read serves a read of [off, off+n) of file name for the given origin,
// charging p the full service time (cache copies plus any disk I/O).
func (s *Store) Read(p *sim.Proc, name string, off, n int64, origin int) {
	s.ReadMulti(p, name, []ext.Extent{{Off: off, Len: n}}, origin, obs.Ctx{})
}

// ReadMulti serves a list-I/O read: all disk requests for all extents are
// submitted together (so the elevator sees the whole batch) and p blocks
// until the last completes. rc tags the resulting block-layer requests with
// the originating traced request (zero Ctx = untraced).
func (s *Store) ReadMulti(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx) {
	n := ext.Total(extents)
	if n <= 0 {
		return
	}
	s.statReadBytes += n

	ps := int64(s.cfg.PageSize)
	sc := s.getScratch()
	missRuns := sc.missRuns // page index ranges [start, end]
	for _, e := range extents {
		if e.Len <= 0 {
			continue
		}
		s.eng.Ensure(name, e.End()) // reading unwritten space still has layout
		first, last := e.Off/ps, (e.End()-1)/ps
		for pg := first; pg <= last; pg++ {
			if s.cache.touch(name, pg) {
				s.statCacheHits++
				s.cPageHit.Add(1)
				continue
			}
			s.statCacheMiss++
			s.cPageMiss.Add(1)
			// Mark the page resident immediately so overlapping concurrent
			// readers do not duplicate the fetch. (A real kernel would make
			// them wait on the page lock; we let them proceed, a harmless
			// optimism since the benchmarks do not share read data.)
			s.cache.insertClean(p, name, pg)
			if len(missRuns) > 0 && missRuns[len(missRuns)-1][1] == pg-1 {
				missRuns[len(missRuns)-1][1] = pg
			} else {
				missRuns = append(missRuns, [2]int64{pg, pg})
			}
		}
	}
	// Charge memory-copy time for the whole transfer.
	p.Sleep(time.Duration(float64(n) / s.cfg.MemBandwidth * float64(time.Second)))

	if len(missRuns) == 0 {
		sc.missRuns = missRuns
		s.putScratch(sc)
		return
	}
	reqs := sc.reqs
	alloc := s.eng.AllocatedSize(name)
	for _, run := range missRuns {
		startOff := run[0] * ps
		endOff := (run[1] + 1) * ps
		if s.cfg.ReadAheadBytes > 0 {
			// Readahead clips against the file's logical size (pages past
			// EOF must never become resident) and against the contiguous
			// on-disk region holding the miss (readahead does not seek).
			limit := s.logical[name]
			if raLim := s.eng.ReadAheadLimit(name, run[1]*ps); raLim < limit {
				limit = raLim
			}
			extra := s.cfg.ReadAheadBytes
			for pg := run[1] + 1; extra > 0 && pg*ps < limit; pg++ {
				if s.cache.resident(name, pg) {
					break
				}
				s.cache.insertClean(p, name, pg)
				endOff = (pg + 1) * ps
				extra -= ps
			}
		}
		if endOff > alloc {
			endOff = alloc
		}
		sc.runs = s.eng.ReadRuns(sc.runs[:0], name, startOff, endOff-startOff)
		for _, lr := range sc.runs {
			reqs = s.appendSplit(reqs, lr, false, origin, rc)
		}
	}
	for _, r := range reqs {
		s.disp.Enqueue(r)
	}
	for _, r := range reqs {
		s.disp.Wait(p, r)
	}
	s.releaseReqs(reqs)
	sc.reqs, sc.missRuns = reqs, missRuns
	s.putScratch(sc)
}

// Write serves a write of [off, off+n). With SyncWrites the data reaches the
// device before Write returns; otherwise pages are dirtied in the cache and
// the writer is throttled only above the dirty limit.
func (s *Store) Write(p *sim.Proc, name string, off, n int64, origin int) {
	s.WriteMulti(p, name, []ext.Extent{{Off: off, Len: n}}, origin, obs.Ctx{})
}

// WriteMulti serves a list-I/O write; see ReadMulti for batching semantics.
func (s *Store) WriteMulti(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx) {
	n := ext.Total(extents)
	if n <= 0 {
		return
	}
	s.statWriteBytes += n
	p.Sleep(time.Duration(float64(n) / s.cfg.MemBandwidth * float64(time.Second)))

	if s.cfg.SyncWrites {
		sc := s.getScratch()
		reqs := sc.reqs
		for _, e := range extents {
			if e.Len <= 0 {
				continue
			}
			s.eng.Ensure(name, e.End())
			if e.End() > s.logical[name] {
				s.logical[name] = e.End()
			}
			sc.runs = s.eng.WriteRuns(sc.runs[:0], name, e.Off, e.Len)
			for _, lr := range sc.runs {
				reqs = s.appendSplit(reqs, lr, true, origin, rc)
			}
		}
		for _, r := range reqs {
			s.disp.Enqueue(r)
		}
		for _, r := range reqs {
			s.disp.Wait(p, r)
		}
		s.releaseReqs(reqs)
		sc.reqs = reqs
		s.putScratch(sc)
		return
	}

	ps := int64(s.cfg.PageSize)
	for _, e := range extents {
		if e.Len <= 0 {
			continue
		}
		s.eng.Ensure(name, e.End())
		if e.End() > s.logical[name] {
			s.logical[name] = e.End()
		}
		first, last := e.Off/ps, (e.End()-1)/ps
		for pg := first; pg <= last; pg++ {
			s.cache.insertDirty(p, name, pg)
		}
	}
	// Throttle while over the dirty limit.
	for s.cache.dirtyBytes > s.cfg.DirtyLimitBytes {
		s.cache.kick.Broadcast()
		s.cache.cleaned.Wait(p)
	}
}

// Sync flushes all dirty pages and blocks p until done. With SyncWrites it
// is a no-op.
func (s *Store) Sync(p *sim.Proc) {
	for s.cache.dirty.Len() > 0 {
		s.cache.kick.Broadcast()
		s.cache.cleaned.Wait(p)
	}
}

// DirtyBytes reports the current dirty page volume.
func (s *Store) DirtyBytes() int64 { return s.cache.dirtyBytes }

// flusherLoop writes dirty pages back: every WritebackEvery, or immediately
// when kicked (dirty limit exceeded), it drains the dirty list in
// LBN-sorted batches of at most WritebackBatchBytes.
func (s *Store) flusherLoop(p *sim.Proc) {
	for {
		if s.cache.dirty.Len() == 0 {
			s.cache.kick.WaitTimeout(p, s.cfg.WritebackEvery)
			continue
		}
		s.flushOnce(p)
		s.cache.cleaned.Broadcast()
	}
}

// flushOnce writes back the oldest dirty pages, up to one batch.
func (s *Store) flushOnce(p *sim.Proc) {
	ps := int64(s.cfg.PageSize)
	sc := s.getScratch()
	pages := sc.pages
	var bytes int64
	for pg := s.cache.dirty.head; pg != nil && bytes < s.cfg.WritebackBatchBytes; pg = pg.next {
		pages = append(pages, pg)
		bytes += ps
	}
	// Coalesce per-file page runs into write requests, then sort by LBN.
	sort.Slice(pages, func(i, j int) bool {
		if pages[i].file != pages[j].file {
			return pages[i].file < pages[j].file
		}
		return pages[i].idx < pages[j].idx
	})
	reqs := sc.reqs
	i := 0
	for i < len(pages) {
		j := i
		for j+1 < len(pages) && pages[j+1].file == pages[i].file && pages[j+1].idx == pages[j].idx+1 {
			j++
		}
		// WriteRuns commits relocation at data-reaching-disk time: a
		// log-structured engine assigns the pages' log locations here.
		sc.runs = s.eng.WriteRuns(sc.runs[:0], pages[i].file, pages[i].idx*ps, int64(j-i+1)*ps)
		for _, lr := range sc.runs {
			reqs = s.appendSplit(reqs, lr, true, s.wbOrig, obs.Ctx{})
		}
		i = j + 1
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].LBN < reqs[j].LBN })
	for _, r := range reqs {
		s.disp.Enqueue(r)
	}
	for _, r := range reqs {
		s.disp.Wait(p, r)
	}
	for _, pg := range pages {
		s.cache.markClean(pg)
	}
	s.releaseReqs(reqs)
	sc.reqs, sc.pages = reqs, pages
	s.putScratch(sc)
}

// appendSplit turns one contiguous LBN run into block-layer requests,
// splitting at the request size cap (max_sectors) like the kernel does.
// Records come from the store's request pool.
func (s *Store) appendSplit(reqs []*iosched.Request, lr lbnRun, write bool, origin int, rc obs.Ctx) []*iosched.Request {
	lbn := lr.lbn
	sectors := (lr.bytes + sectorSize - 1) / sectorSize
	for sectors > 0 {
		n := sectors
		if n > iosched.MaxMergeSectors {
			n = iosched.MaxMergeSectors
		}
		reqs = append(reqs, s.newReq(lbn, n, write, origin, rc))
		lbn += n
		sectors -= n
	}
	return reqs
}
