package fs

import (
	"fmt"
	"sort"
	"time"

	"dualpar/internal/sim"
)

// lsmCheckEvery is how often the compactor re-examines the log when no
// segment is worth compacting (it is also kicked eagerly by appends).
const lsmCheckEvery = 500 * time.Millisecond

// lsmEngine is a log-structured store. Files keep a contiguous base layout
// (an embedded extent engine) modeling their initial on-disk image; every
// write relocates the touched pages to the head of a segmented append-only
// log, so writeback is strictly sequential no matter how scattered the
// logical write pattern is. Reads chase relocated pages into the log —
// after heavy overwriting a logically sequential scan shatters into
// per-page seeks, the opposite seek profile of the extent engines. A
// background compactor rewrites the garbage-heaviest sealed segment
// (reading its live pages, re-appending them at the head) with its disk
// traffic charged through the store's dispatcher and throttled to
// LSMCompactBps, then recycles the segment.
//
// The engine keeps a strict byte ledger — absorbed (log appends from
// writes), compacted (re-appends by the compactor), reclaimed (recycled
// segment bytes), and per-segment used/live — whose conservation is the
// audit oracle: absorbed + compacted == reclaimed + Σ active used, and
// live bookkeeping must equal a recount of the page map.
type lsmEngine struct {
	cfg   Config
	inner *extentEngine // base layout + allocation cursor
	files map[string]*lsmFile

	segBytes   int64
	compactFrc float64
	compactBps float64

	cur      *lsmSegment
	segs     []*lsmSegment // every live (not yet recycled) segment, log order
	freeSegs []int64       // recycled segment base LBNs, ascending

	absorbed  int64 // bytes appended by writes
	compacted int64 // bytes re-appended by the compactor
	reclaimed int64 // bytes of recycled segments
	live      int64 // bytes of current-version pages in the log

	io   engineIO
	kick *sim.Signal
}

type lsmFile struct {
	name  string
	remap map[int64]lsmLoc // page index -> current log location
}

type lsmLoc struct {
	seg *lsmSegment
	lbn int64
}

type lsmSegment struct {
	base    int64 // first LBN
	used    int64 // bytes appended (never shrinks until recycled)
	live    int64 // bytes still current
	sealed  bool
	recycle bool // returned to the free list; loc pointing here is a bug
}

func newLSMEngine(cfg Config) *lsmEngine {
	ps := int64(cfg.PageSize)
	segBytes := cfg.LSMSegmentBytes
	if segBytes == 0 {
		segBytes = 4 << 20
	}
	segBytes = (segBytes + ps - 1) / ps * ps
	frc := cfg.LSMCompactFrac
	if frc == 0 {
		frc = 0.5
	}
	bps := cfg.LSMCompactBps
	if bps == 0 {
		bps = 32 << 20
	}
	return &lsmEngine{
		cfg:        cfg,
		inner:      newExtentEngine(cfg),
		files:      make(map[string]*lsmFile),
		segBytes:   segBytes,
		compactFrc: frc,
		compactBps: bps,
	}
}

func (e *lsmEngine) Kind() string { return EngineLSM }

func (e *lsmEngine) start(k *sim.Kernel, name string, io engineIO) {
	e.io = io
	e.kick = k.NewSignal()
	k.Spawn(name+"/compact", e.compactLoop)
}

func (e *lsmEngine) file(name string) *lsmFile {
	f := e.files[name]
	if f == nil {
		f = &lsmFile{name: name, remap: make(map[int64]lsmLoc)}
		e.files[name] = f
	}
	return f
}

func (e *lsmEngine) Open(file string)               { e.inner.Open(file) }
func (e *lsmEngine) Ensure(file string, size int64) { e.inner.Ensure(file, size) }
func (e *lsmEngine) AllocatedSize(file string) int64 {
	return e.inner.AllocatedSize(file)
}

// ReadRuns resolves each page to its current location — the log for
// relocated pages, the base layout otherwise — and coalesces adjacent
// locations into runs.
func (e *lsmEngine) ReadRuns(out []lbnRun, file string, off, n int64) []lbnRun {
	f := e.file(file)
	ps := int64(e.cfg.PageSize)
	end := off + n
	for pg := off / ps; pg*ps < end; pg++ {
		lo, hi := pg*ps, (pg+1)*ps
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		var lbn int64
		if loc, ok := f.remap[pg]; ok {
			lbn = loc.lbn + (lo-pg*ps)/sectorSize
		} else {
			x, ok := e.inner.locate(file, lo)
			if !ok {
				continue // unallocated hole: nothing to read
			}
			lbn = x.lbn + (lo-x.fileOff)/sectorSize
		}
		out = appendMergedRun(out, lbnRun{lbn: lbn, bytes: hi - lo})
	}
	return out
}

// WriteRuns relocates the touched pages to the head of the log and returns
// the (sequential) runs the writeback occupies. Log granularity is whole
// pages: sub-page writes are absorbed as a page-sized read-modify-write,
// as a block-based log-structured store would.
func (e *lsmEngine) WriteRuns(out []lbnRun, file string, off, n int64) []lbnRun {
	f := e.file(file)
	ps := int64(e.cfg.PageSize)
	for pg := off / ps; pg <= (off+n-1)/ps; pg++ {
		seg, lbn := e.appendPage()
		if old, ok := f.remap[pg]; ok {
			old.seg.live -= ps
			e.live -= ps
		}
		f.remap[pg] = lsmLoc{seg: seg, lbn: lbn}
		seg.live += ps
		e.live += ps
		e.absorbed += ps
		out = appendMergedRun(out, lbnRun{lbn: lbn, bytes: ps})
	}
	if e.kick != nil && e.pickVictim() != nil {
		e.kick.Broadcast()
	}
	return out
}

// appendPage reserves one page at the log head, rolling to a fresh segment
// (recycled when available, newly carved otherwise) when the head fills.
func (e *lsmEngine) appendPage() (*lsmSegment, int64) {
	ps := int64(e.cfg.PageSize)
	if e.cur == nil || e.cur.used+ps > e.segBytes {
		if e.cur != nil {
			e.cur.sealed = true
		}
		var base int64
		if len(e.freeSegs) > 0 {
			base = e.freeSegs[0]
			e.freeSegs = e.freeSegs[1:]
		} else {
			base = e.inner.nexts
			e.inner.nexts += e.segBytes / sectorSize
		}
		e.cur = &lsmSegment{base: base}
		e.segs = append(e.segs, e.cur)
	}
	lbn := e.cur.base + e.cur.used/sectorSize
	e.cur.used += ps
	return e.cur, lbn
}

// ReadAheadLimit: a relocated page is a page-sized island in the log, so
// readahead stops at its end; base-resident data streams to the end of its
// base extent.
func (e *lsmEngine) ReadAheadLimit(file string, off int64) int64 {
	ps := int64(e.cfg.PageSize)
	pg := off / ps
	if f, ok := e.files[file]; ok {
		if _, relocated := f.remap[pg]; relocated {
			return (pg + 1) * ps
		}
	}
	return e.inner.ReadAheadLimit(file, off)
}

// pickVictim returns the sealed segment worth compacting: the one with the
// most garbage, provided its garbage fraction reaches the threshold.
// Ties break toward the lowest base LBN (deterministic).
func (e *lsmEngine) pickVictim() *lsmSegment {
	var victim *lsmSegment
	var victimGarbage int64
	for _, s := range e.segs {
		if !s.sealed || s.recycle || s == e.cur {
			continue
		}
		garbage := s.used - s.live
		if garbage <= 0 || float64(garbage) < e.compactFrc*float64(s.used) {
			continue
		}
		if garbage > victimGarbage || (garbage == victimGarbage && victim != nil && s.base < victim.base) {
			victim, victimGarbage = s, garbage
		}
	}
	return victim
}

// compactLoop runs in its own Proc: wait for garbage, rewrite one segment,
// throttle to the configured compaction bandwidth.
func (e *lsmEngine) compactLoop(p *sim.Proc) {
	for {
		v := e.pickVictim()
		if v == nil {
			e.kick.WaitTimeout(p, lsmCheckEvery)
			continue
		}
		e.compactOne(p, v)
	}
}

// compactOne reads the victim's live pages, re-appends them at the log
// head, repoints the page map, and recycles the segment. Disk traffic goes
// through the store's dispatcher (visible to the elevator, the disk stats,
// and the audit ledgers) and is throttled to LSMCompactBps.
func (e *lsmEngine) compactOne(p *sim.Proc, v *lsmSegment) {
	ps := int64(e.cfg.PageSize)

	// Collect the victim's live pages in a deterministic order (map walk
	// order must never leak into the simulation timeline).
	type liveEntry struct {
		f   *lsmFile
		pg  int64
		lbn int64
	}
	var entries []liveEntry
	names := make([]string, 0, len(e.files))
	for name := range e.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := e.files[name]
		pgs := make([]int64, 0, len(f.remap))
		for pg, loc := range f.remap {
			if loc.seg == v {
				pgs = append(pgs, pg)
			}
		}
		sort.Slice(pgs, func(i, j int) bool { return pgs[i] < pgs[j] })
		for _, pg := range pgs {
			entries = append(entries, liveEntry{f: f, pg: pg, lbn: f.remap[pg].lbn})
		}
	}

	start := p.Now()
	var moved int64
	if len(entries) > 0 {
		// Read the live pages in LBN order (one sweep over the segment).
		byLBN := append([]liveEntry(nil), entries...)
		sort.Slice(byLBN, func(i, j int) bool { return byLBN[i].lbn < byLBN[j].lbn })
		var reads []lbnRun
		for _, le := range byLBN {
			reads = appendMergedRun(reads, lbnRun{lbn: le.lbn, bytes: ps})
		}
		e.io.engineSubmit(p, reads, false)

		// Re-append them at the head and repoint the map.
		var writes []lbnRun
		for _, le := range byLBN {
			seg, lbn := e.appendPage()
			le.f.remap[le.pg] = lsmLoc{seg: seg, lbn: lbn}
			seg.live += ps
			v.live -= ps
			e.compacted += ps
			writes = appendMergedRun(writes, lbnRun{lbn: lbn, bytes: ps})
		}
		e.io.engineSubmit(p, writes, true)
		moved = 2 * ps * int64(len(entries))
	}

	// Recycle the segment: its remaining bytes are all garbage now.
	e.reclaimed += v.used
	v.recycle = true
	for i, s := range e.segs {
		if s == v {
			e.segs = append(e.segs[:i], e.segs[i+1:]...)
			break
		}
	}
	i := sort.Search(len(e.freeSegs), func(i int) bool { return e.freeSegs[i] >= v.base })
	e.freeSegs = append(e.freeSegs, 0)
	copy(e.freeSegs[i+1:], e.freeSegs[i:])
	e.freeSegs[i] = v.base

	// Throttle: the rewrite may not consume more disk bandwidth than
	// LSMCompactBps; sleep off the difference between the budgeted time
	// for the bytes moved and the time the disk actually took.
	if moved > 0 {
		budget := time.Duration(float64(moved) / e.compactBps * float64(time.Second))
		if spent := p.Now() - start; budget > spent {
			p.Sleep(budget - spent)
		}
	}
}

// CheckInvariants is the byte-conservation oracle: the ledger must balance
// against a full recount of the page map and the segment list.
func (e *lsmEngine) CheckInvariants() error {
	ps := int64(e.cfg.PageSize)
	// Recount live bytes per segment from the page map.
	liveBySeg := make(map[*lsmSegment]int64)
	var totalLive int64
	for name, f := range e.files {
		for pg, loc := range f.remap {
			if loc.seg.recycle {
				return fmt.Errorf("lsm engine: file %s page %d points into recycled segment at LBN %d", name, pg, loc.seg.base)
			}
			if loc.lbn < loc.seg.base || loc.lbn >= loc.seg.base+loc.seg.used/sectorSize {
				return fmt.Errorf("lsm engine: file %s page %d at LBN %d outside its segment [%d,%d)",
					name, pg, loc.lbn, loc.seg.base, loc.seg.base+loc.seg.used/sectorSize)
			}
			liveBySeg[loc.seg] += ps
			totalLive += ps
		}
	}
	if totalLive != e.live {
		return fmt.Errorf("lsm engine: ledger live %d bytes, page map holds %d", e.live, totalLive)
	}
	var totalUsed int64
	for _, s := range e.segs {
		if s.live != liveBySeg[s] {
			return fmt.Errorf("lsm engine: segment at LBN %d claims %d live bytes, page map holds %d", s.base, s.live, liveBySeg[s])
		}
		if s.live < 0 || s.live > s.used || s.used > e.segBytes {
			return fmt.Errorf("lsm engine: segment at LBN %d bounds: live %d used %d cap %d", s.base, s.live, s.used, e.segBytes)
		}
		totalUsed += s.used
	}
	if e.absorbed+e.compacted != e.reclaimed+totalUsed {
		return fmt.Errorf("lsm engine: byte ledger broken: absorbed %d + compacted %d != reclaimed %d + active %d",
			e.absorbed, e.compacted, e.reclaimed, totalUsed)
	}
	return e.inner.CheckInvariants()
}

// Stats exposes the log ledger (for the engines experiment and tests).
func (e *lsmEngine) Stats() (absorbed, compacted, reclaimed, live int64) {
	return e.absorbed, e.compacted, e.reclaimed, e.live
}

// appendMergedRun appends a run, merging it into the previous one when the
// two are contiguous on disk (the prior run must end on a sector boundary
// for the LBN arithmetic to be exact).
func appendMergedRun(out []lbnRun, r lbnRun) []lbnRun {
	if n := len(out); n > 0 {
		last := &out[n-1]
		if last.bytes%sectorSize == 0 && last.lbn+last.bytes/sectorSize == r.lbn {
			last.bytes += r.bytes
			return out
		}
	}
	return append(out, r)
}
