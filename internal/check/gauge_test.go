package check

import (
	"strings"
	"testing"
)

func TestGaugeWithinBoundsIsSilent(t *testing.T) {
	a := New(1, "gauge test")
	g := NewGauge(a, "test.slots", 3)
	for _, d := range []int64{1, 1, 1, -2, 2, -3} {
		g.Add(d)
	}
	if err := a.Err(); err != nil {
		t.Fatalf("in-bounds gauge raised a violation: %v", err)
	}
	if g.Value() != 0 {
		t.Fatalf("value = %d, want 0", g.Value())
	}
	if g.Bound() != 3 {
		t.Fatalf("bound = %d, want 3", g.Bound())
	}
}

func TestGaugeOverBoundViolates(t *testing.T) {
	a := New(1, "gauge test")
	a.SetArtifactDir(t.TempDir())
	g := NewGauge(a, "test.slots", 2)
	g.Add(2)
	if err := a.Err(); err != nil {
		t.Fatalf("reaching the bound must be legal: %v", err)
	}
	g.Add(1)
	err := a.Err()
	if err == nil {
		t.Fatal("exceeding the bound raised no violation")
	}
	if !strings.Contains(err.Error(), "test.slots") || !strings.Contains(err.Error(), "exceeds bound 2") {
		t.Fatalf("violation not keyed/detailed as expected: %v", err)
	}
}

func TestGaugeNegativeViolates(t *testing.T) {
	a := New(1, "gauge test")
	a.SetArtifactDir(t.TempDir())
	g := NewGauge(a, "test.slots", 0) // unbounded above
	g.Add(5)
	g.Add(-6)
	err := a.Err()
	if err == nil {
		t.Fatal("negative gauge raised no violation")
	}
	if !strings.Contains(err.Error(), "went negative") {
		t.Fatalf("violation detail missing: %v", err)
	}
}

func TestGaugeNilLedgerCountsOnly(t *testing.T) {
	g := NewGauge(nil, "test.slots", 1)
	g.Add(5)
	g.Add(-9)
	if g.Value() != -4 {
		t.Fatalf("nil-ledger gauge must still count: %d", g.Value())
	}
}

func TestGaugeSetBoundRechecks(t *testing.T) {
	a := New(1, "gauge test")
	a.SetArtifactDir(t.TempDir())
	g := NewGauge(nil, "test.slots", 0)
	g.Add(4)
	g.SetLedger(a)
	g.SetBound(3)
	if a.Err() == nil {
		t.Fatal("SetBound below the current value must violate immediately")
	}
}
