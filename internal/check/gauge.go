package check

// Gauge is a named non-negative quantity with an optional upper bound,
// verified at every change: admission slots held by an arbiter, in-flight
// requests against a window, bytes resident against a partition quota. It
// is the inline form of an invariant probe — instead of reconstructing the
// quantity at probe points, the subsystem mutates the gauge as part of its
// bookkeeping and every violation is caught at the mutation that caused
// it, with the offending delta in the violation detail.
//
// A Gauge with a nil Ledger still counts (Value stays usable for stats and
// tests) but checks nothing, matching the package's audit-off contract: one
// nil comparison per update, no allocations, no behavioural difference.
type Gauge struct {
	led   Ledger
	key   string
	bound int64 // 0 = unbounded above
	v     int64
}

// NewGauge returns a gauge named key starting at zero. bound, when
// positive, is the largest value the gauge may reach; zero means unbounded.
// led may be nil (count-only mode); attach one later with SetLedger.
func NewGauge(led Ledger, key string, bound int64) *Gauge {
	return &Gauge{led: led, key: key, bound: bound}
}

// SetLedger attaches (or replaces) the ledger violations are reported to.
func (g *Gauge) SetLedger(led Ledger) { g.led = led }

// SetBound replaces the upper bound (0 = unbounded) and immediately
// re-checks the current value against it.
func (g *Gauge) SetBound(bound int64) {
	g.bound = bound
	g.check(0)
}

// Add applies delta and checks the invariants: the gauge never goes
// negative, and never exceeds its bound.
func (g *Gauge) Add(delta int64) {
	g.v += delta
	g.check(delta)
}

func (g *Gauge) check(delta int64) {
	if g.led == nil {
		return
	}
	g.led.Checkf(g.v >= 0, g.key,
		"gauge %s went negative: %d after delta %+d", g.key, g.v, delta)
	g.led.Checkf(g.bound <= 0 || g.v <= g.bound, g.key,
		"gauge %s exceeds bound %d: %d after delta %+d", g.key, g.bound, g.v, delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// Bound returns the configured upper bound (0 = unbounded).
func (g *Gauge) Bound() int64 { return g.bound }
