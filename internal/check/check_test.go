package check

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

func TestCountersAndKeys(t *testing.T) {
	a := New(7, "test")
	a.Count("b", 2)
	a.Count("a", 1)
	a.Count("b", 3)
	if got := a.Counter("b"); got != 5 {
		t.Fatalf("Counter(b) = %d, want 5", got)
	}
	if got := a.Keys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Keys() = %v", got)
	}
}

func TestCheckfPassRecordsNothing(t *testing.T) {
	a := New(1, "test")
	a.Checkf(true, "never", "should not fire")
	if err := a.Err(); err != nil {
		t.Fatalf("Err() = %v after passing check", err)
	}
}

func TestViolationWritesArtifact(t *testing.T) {
	a := New(42, "3 servers, demo config")
	a.SetArtifactDir(t.TempDir())
	a.SetClock(func() time.Duration { return 3 * time.Second })
	a.SetInstantSource(func(max int) []string { return []string{"t=1s cache.miss"} })
	a.Count("bytes", 1024)

	a.Checkf(false, "memcache.used", "used=%d but chunks hold %d", 100, 96)
	a.Checkf(false, "second", "also broken")

	vs := a.Violations()
	if len(vs) != 2 {
		t.Fatalf("violations = %d, want 2", len(vs))
	}
	err := a.Err()
	if err == nil || !strings.Contains(err.Error(), "memcache.used") {
		t.Fatalf("Err() = %v, want keyed first violation", err)
	}
	if vs[0].At != 3*time.Second {
		t.Errorf("violation At = %v, want 3s", vs[0].At)
	}
	// Only the first violation writes the reproducer.
	if vs[0].Artifact == "" || vs[1].Artifact != "" {
		t.Fatalf("artifacts = %q / %q, want only the first set", vs[0].Artifact, vs[1].Artifact)
	}
	buf, rerr := os.ReadFile(vs[0].Artifact)
	if rerr != nil {
		t.Fatalf("reading artifact: %v", rerr)
	}
	var art artifact
	if jerr := json.Unmarshal(buf, &art); jerr != nil {
		t.Fatalf("artifact is not JSON: %v", jerr)
	}
	if art.Seed != 42 || art.Config != "3 servers, demo config" {
		t.Errorf("artifact seed/config = %d/%q", art.Seed, art.Config)
	}
	if art.Counters["bytes"] != 1024 {
		t.Errorf("artifact counters = %v", art.Counters)
	}
	if len(art.Instants) != 1 || art.Instants[0] != "t=1s cache.miss" {
		t.Errorf("artifact instants = %v", art.Instants)
	}
	if art.Violation == nil || art.Violation.Key != "memcache.used" {
		t.Errorf("artifact violation = %+v", art.Violation)
	}
}

func TestProbesRunAtTheRightPoints(t *testing.T) {
	a := New(1, "test")
	a.SetArtifactDir(t.TempDir())
	cycle, final := 0, 0
	a.RegisterProbe("cycle", func() error { cycle++; return nil })
	a.RegisterFinalProbe("final", func() error { final++; return errFinal })
	a.RunProbes()
	if cycle != 1 || final != 0 {
		t.Fatalf("after RunProbes: cycle=%d final=%d", cycle, final)
	}
	a.RunFinalProbes()
	if cycle != 2 || final != 1 {
		t.Fatalf("after RunFinalProbes: cycle=%d final=%d", cycle, final)
	}
	err := a.Err()
	if err == nil || !strings.Contains(err.Error(), "final") {
		t.Fatalf("Err() = %v, want final-probe violation", err)
	}
}

var errFinal = errBox("final ledger mismatch")

type errBox string

func (e errBox) Error() string { return string(e) }
