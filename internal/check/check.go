// Package check implements the simulator's default-off audit subsystem:
// deterministic named counters, inline invariant checks, and registered
// probes that cross-check the stack's byte ledgers at quiescent points.
//
// The package is a leaf — it imports nothing from the simulation — so every
// layer (sim, iosched, memcache, pfs, core) can hold a narrow audit handle
// without import cycles. Audit-off is a nil handle: one pointer comparison
// per instrumentation point, no allocations, and a virtual timeline
// byte-identical to builds without the hooks (the audit bookkeeping itself
// never creates simulation events).
//
// On the first violated invariant the Auditor dumps a reproducer artifact —
// seed, configuration description, counter snapshot, and the most recent
// observability instants — and surfaces a keyed error from Err().
package check

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Ledger is the counting face an instrumented subsystem holds: deterministic
// named counters plus inline condition checks. Subsystems keep a nil Ledger
// when audit is off and guard every use with a nil check, so the audit-off
// hot paths stay allocation-free.
type Ledger interface {
	// Count adds delta to the named counter.
	Count(key string, delta int64)
	// Checkf records a keyed violation when cond is false.
	Checkf(cond bool, key, format string, args ...interface{})
}

// Probe is a deferred invariant, registered once and evaluated at probe
// points. A non-nil error is recorded as a violation under the probe's name.
type Probe func() error

// Violation is one failed invariant. It implements error; the message is
// keyed so tests and CI can match on the oracle that fired.
type Violation struct {
	Key      string        `json:"key"`
	At       time.Duration `json:"at"`
	Detail   string        `json:"detail"`
	Artifact string        `json:"artifact,omitempty"`
}

// Error implements error.
func (v *Violation) Error() string {
	s := fmt.Sprintf("check: %s at %v: %s", v.Key, v.At, v.Detail)
	if v.Artifact != "" {
		s += " (reproducer: " + v.Artifact + ")"
	}
	return s
}

type namedProbe struct {
	name string
	fn   Probe
}

// Auditor collects the audit state of one simulated run. It is driven from
// simulation context only (the kernel's strict one-Proc alternation means no
// locking), accumulates violations instead of panicking, and writes one
// reproducer artifact for the first violation.
type Auditor struct {
	seed       int64
	desc       string
	dir        string
	clock      func() time.Duration
	instants   func(max int) []string
	counters   map[string]int64
	probes     []namedProbe // run at every probe point
	finals     []namedProbe // run only at end of run (quiescent ledgers)
	violations []*Violation
}

// artifactInstants bounds how many trailing obs instants land in the
// reproducer artifact.
const artifactInstants = 64

// New returns an Auditor for a run started from the given seed. desc is a
// human-readable configuration summary stored in the reproducer artifact.
func New(seed int64, desc string) *Auditor {
	return &Auditor{seed: seed, desc: desc, counters: make(map[string]int64)}
}

// SetClock attaches the virtual clock violations are stamped with.
func (a *Auditor) SetClock(fn func() time.Duration) { a.clock = fn }

// SetArtifactDir sets where reproducer artifacts are written (default: the
// OS temp directory).
func (a *Auditor) SetArtifactDir(dir string) { a.dir = dir }

// SetInstantSource attaches a formatter for the most recent observability
// instants; the artifact includes up to max of them.
func (a *Auditor) SetInstantSource(fn func(max int) []string) { a.instants = fn }

// Count implements Ledger.
func (a *Auditor) Count(key string, delta int64) { a.counters[key] += delta }

// Counter returns the named counter's value.
func (a *Auditor) Counter(key string) int64 { return a.counters[key] }

// Checkf implements Ledger.
func (a *Auditor) Checkf(cond bool, key, format string, args ...interface{}) {
	if cond {
		return
	}
	a.Violatef(key, format, args...)
}

// Violatef records a keyed violation unconditionally.
func (a *Auditor) Violatef(key, format string, args ...interface{}) {
	v := &Violation{Key: key, Detail: fmt.Sprintf(format, args...)}
	if a.clock != nil {
		v.At = a.clock()
	}
	if len(a.violations) == 0 {
		v.Artifact = a.writeArtifact(v)
	}
	a.violations = append(a.violations, v)
}

// RegisterProbe adds an invariant evaluated at every probe point (writeback
// cycles and end of run).
func (a *Auditor) RegisterProbe(name string, fn Probe) {
	a.probes = append(a.probes, namedProbe{name, fn})
}

// RegisterFinalProbe adds an invariant evaluated only at end of run, for
// ledgers that are exact only once the simulation is quiescent (e.g. byte
// conservation with requests mid-flight).
func (a *Auditor) RegisterFinalProbe(name string, fn Probe) {
	a.finals = append(a.finals, namedProbe{name, fn})
}

// RunProbes evaluates every per-cycle probe.
func (a *Auditor) RunProbes() {
	for _, pr := range a.probes {
		if err := pr.fn(); err != nil {
			a.Violatef(pr.name, "%v", err)
		}
	}
}

// RunFinalProbes evaluates the per-cycle probes and the end-of-run probes.
func (a *Auditor) RunFinalProbes() {
	a.RunProbes()
	for _, pr := range a.finals {
		if err := pr.fn(); err != nil {
			a.Violatef(pr.name, "%v", err)
		}
	}
}

// Oracles returns how many probes are registered (per-cycle + final) —
// the "N oracles held" figure for status lines.
func (a *Auditor) Oracles() int { return len(a.probes) + len(a.finals) }

// Err returns the first violation (nil when every oracle held).
func (a *Auditor) Err() error {
	if len(a.violations) == 0 {
		return nil
	}
	return a.violations[0]
}

// Violations returns every recorded violation in order.
func (a *Auditor) Violations() []*Violation { return a.violations }

// artifact is the reproducer file layout.
type artifact struct {
	Seed      int64            `json:"seed"`
	Config    string           `json:"config"`
	Violation *Violation       `json:"violation"`
	Counters  map[string]int64 `json:"counters,omitempty"`
	Instants  []string         `json:"instants,omitempty"`
}

// writeArtifact dumps the reproducer for the first violation and returns its
// path (or a note when the dump itself failed — the violation must still
// surface).
func (a *Auditor) writeArtifact(v *Violation) string {
	dir := a.dir
	if dir == "" {
		dir = os.TempDir()
	}
	art := artifact{Seed: a.seed, Config: a.desc, Violation: v, Counters: a.counters}
	if a.instants != nil {
		art.Instants = a.instants(artifactInstants)
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return "unwritable: " + err.Error()
	}
	f, err := os.CreateTemp(dir, "dualpar-audit-*.json")
	if err != nil {
		return "unwritable: " + err.Error()
	}
	_, werr := f.Write(append(buf, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "unwritable: " + werr.Error()
	}
	return f.Name()
}

// Keys returns the counter names, sorted (deterministic artifact diffing
// and test assertions).
func (a *Auditor) Keys() []string {
	keys := make([]string, 0, len(a.counters))
	for k := range a.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
