package mpi

import (
	"testing"
	"time"

	"dualpar/internal/netsim"
	"dualpar/internal/sim"
)

func newWorld(t *testing.T, ranks, perNode int) (*sim.Kernel, *World) {
	t.Helper()
	k := sim.NewKernel(1)
	net := netsim.New(k, netsim.DefaultConfig())
	return k, NewWorld(k, net, BlockPlacement(ranks, perNode, 100))
}

func TestBlockPlacement(t *testing.T) {
	nodes := BlockPlacement(8, 4, 10)
	want := []int{10, 10, 10, 10, 11, 11, 11, 11}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("placement = %v, want %v", nodes, want)
		}
	}
}

func TestBarrierHoldsEarlyRanks(t *testing.T) {
	k, w := newWorld(t, 4, 2)
	var releases []time.Duration
	for r := 0; r < 4; r++ {
		r := r
		k.Spawn("rank", func(p *sim.Proc) {
			p.Sleep(time.Duration(r) * time.Second) // rank 3 arrives last
			w.Barrier(p, r)
			releases = append(releases, p.Now())
		})
	}
	k.Run()
	for _, at := range releases {
		if at < 3*time.Second {
			t.Fatalf("a rank left the barrier at %v, before the last arrival", at)
		}
	}
	if w.Barriers() != 1 {
		t.Fatalf("barriers = %d, want 1", w.Barriers())
	}
}

func TestBarrierRepeats(t *testing.T) {
	k, w := newWorld(t, 3, 3)
	counts := make([]int, 3)
	for r := 0; r < 3; r++ {
		r := r
		k.Spawn("rank", func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				p.Sleep(time.Duration(r+1) * time.Millisecond)
				w.Barrier(p, r)
				counts[r]++
			}
		})
	}
	k.Run()
	for r, c := range counts {
		if c != 5 {
			t.Fatalf("rank %d passed %d barriers, want 5", r, c)
		}
	}
	if w.Barriers() != 5 {
		t.Fatalf("barrier generations = %d, want 5", w.Barriers())
	}
}

func TestBarrierCostGrowsWithRanks(t *testing.T) {
	cost := func(n int) time.Duration {
		k, w := newWorld(t, n, 8)
		var done time.Duration
		for r := 0; r < n; r++ {
			r := r
			k.Spawn("rank", func(p *sim.Proc) {
				w.Barrier(p, r)
				if p.Now() > done {
					done = p.Now()
				}
			})
		}
		k.Run()
		return done
	}
	if c16, c256 := cost(16), cost(256); c256 <= c16 {
		t.Fatalf("barrier cost did not grow: 16 ranks %v vs 256 ranks %v", c16, c256)
	}
}

func TestBcastNonRootPaysTreeCost(t *testing.T) {
	k, w := newWorld(t, 8, 4)
	var rootDone, leafDone time.Duration
	for r := 0; r < 8; r++ {
		r := r
		k.Spawn("rank", func(p *sim.Proc) {
			w.Bcast(p, r, 0, 1<<20)
			if r == 0 {
				rootDone = p.Now()
			}
			if r == 7 {
				leafDone = p.Now()
			}
		})
	}
	k.Run()
	if leafDone <= rootDone {
		t.Fatalf("leaf finished at %v, root at %v; leaf must pay transfer cost", leafDone, rootDone)
	}
	// 3 rounds x (latency + ~8.5ms transfer) ~ 26ms.
	if leafDone < 20*time.Millisecond || leafDone > 100*time.Millisecond {
		t.Fatalf("leaf bcast time %v outside plausible range", leafDone)
	}
}

func TestAllgatherValsExchanges(t *testing.T) {
	k, w := newWorld(t, 4, 2)
	for r := 0; r < 4; r++ {
		r := r
		k.Spawn("rank", func(p *sim.Proc) {
			out := w.AllgatherVals(p, r, r*10, 8)
			for i := 0; i < 4; i++ {
				if out[i].(int) != i*10 {
					t.Errorf("rank %d saw out[%d]=%v", r, i, out[i])
				}
			}
		})
	}
	k.Run()
}

func TestAlltoallvVolumes(t *testing.T) {
	k, w := newWorld(t, 3, 1)
	recvs := make([]int64, 3)
	for r := 0; r < 3; r++ {
		r := r
		k.Spawn("rank", func(p *sim.Proc) {
			send := make([]int64, 3)
			for d := 0; d < 3; d++ {
				send[d] = int64(100*r + d) // distinct volumes
			}
			recvs[r] = w.Alltoallv(p, r, send)
		})
	}
	k.Run()
	// recv[d] = sum over r of (100r + d)
	for d := 0; d < 3; d++ {
		want := int64(100*(0+1+2) + 3*d)
		if recvs[d] != want {
			t.Fatalf("rank %d received %d, want %d", d, recvs[d], want)
		}
	}
}

func TestAlltoallvIntraNodeFree(t *testing.T) {
	// All ranks on one node: no NIC traffic, so time is latency-only.
	k, w := newWorld(t, 4, 4)
	var latest time.Duration
	for r := 0; r < 4; r++ {
		r := r
		k.Spawn("rank", func(p *sim.Proc) {
			send := []int64{1 << 20, 1 << 20, 1 << 20, 1 << 20}
			w.Alltoallv(p, r, send)
			if p.Now() > latest {
				latest = p.Now()
			}
		})
	}
	k.Run()
	if latest > time.Millisecond {
		t.Fatalf("intra-node alltoallv took %v, want latency-only", latest)
	}
}

func TestSendRecvFIFO(t *testing.T) {
	k, w := newWorld(t, 2, 1)
	var got []int64
	k.Spawn("sender", func(p *sim.Proc) {
		w.Send(p, 0, 1, 100)
		w.Send(p, 0, 1, 200)
	})
	k.Spawn("receiver", func(p *sim.Proc) {
		got = append(got, w.Recv(p, 1, 0))
		got = append(got, w.Recv(p, 1, 0))
	})
	k.Run()
	if len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Fatalf("received %v, want [100 200]", got)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	k, w := newWorld(t, 2, 1)
	var recvAt time.Duration
	k.Spawn("receiver", func(p *sim.Proc) {
		w.Recv(p, 1, 0)
		recvAt = p.Now()
	})
	k.Spawn("sender", func(p *sim.Proc) {
		p.Sleep(time.Second)
		w.Send(p, 0, 1, 10)
	})
	k.Run()
	if recvAt < time.Second {
		t.Fatalf("Recv returned at %v before the send", recvAt)
	}
}

func TestMeetGenerationsBounded(t *testing.T) {
	k, w := newWorld(t, 2, 1)
	for r := 0; r < 2; r++ {
		r := r
		k.Spawn("rank", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				w.Barrier(p, r)
			}
		})
	}
	k.Run()
	if n := len(w.rend["barrier"].outs); n > 2 {
		t.Fatalf("rendezvous retained %d generations, want <= 2", n)
	}
}
