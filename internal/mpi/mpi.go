// Package mpi models the MPI runtime pieces the paper's software stack
// needs: a world of ranks placed on compute nodes, barriers, broadcast,
// allgather, and all-to-all-v data exchange (the transport under two-phase
// collective I/O), plus matched point-to-point messages.
//
// Collective operations synchronize all ranks (every rank must call every
// collective in the same order) and charge time with standard cost models:
// latency terms scale with log2(P), bandwidth terms with the bytes crossing
// each node's NIC.
package mpi

import (
	"fmt"
	"math"
	"time"

	"dualpar/internal/netsim"
	"dualpar/internal/sim"
)

// World is a communicator over a set of ranks.
type World struct {
	k     *sim.Kernel
	net   *netsim.Network
	nodes []int // nodes[rank] = network node hosting that rank

	rend map[string]*rendezvous
	p2p  map[[2]int]*sim.Queue[int64]

	barriers int64
}

// NewWorld creates a world with the given rank-to-node placement.
func NewWorld(k *sim.Kernel, net *netsim.Network, nodes []int) *World {
	if len(nodes) == 0 {
		panic("mpi: empty world")
	}
	return &World{
		k:     k,
		net:   net,
		nodes: nodes,
		rend:  make(map[string]*rendezvous),
		p2p:   make(map[[2]int]*sim.Queue[int64]),
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.nodes) }

// Node returns the network node hosting rank r.
func (w *World) Node(r int) int { return w.nodes[r] }

// Net returns the network the world communicates over.
func (w *World) Net() *netsim.Network { return w.net }

// Kernel returns the simulation kernel.
func (w *World) Kernel() *sim.Kernel { return w.k }

// Barriers reports how many barrier generations completed.
func (w *World) Barriers() int64 { return w.barriers }

// rendezvous synchronizes all ranks at a named point and exchanges one value
// per rank. All ranks must reach the same tags in the same order.
type rendezvous struct {
	gen    int
	count  int
	vals   []interface{}
	outs   map[int][]interface{} // completed generations still being read
	signal *sim.Signal
}

// meet blocks until every rank has called meet with the same tag, then
// returns the slice of all ranks' values indexed by rank. A rank can lag
// the completing rank by at most one generation (generation g+1 cannot
// complete before every rank passed g), so only two generations of results
// are retained.
func (w *World) meet(p *sim.Proc, tag string, rank int, val interface{}) []interface{} {
	rd := w.rend[tag]
	if rd == nil {
		rd = &rendezvous{signal: w.k.NewSignal(), outs: make(map[int][]interface{})}
		w.rend[tag] = rd
	}
	if rd.vals == nil {
		rd.vals = make([]interface{}, w.Size())
	}
	gen := rd.gen
	rd.vals[rank] = val
	rd.count++
	if rd.count == w.Size() {
		rd.outs[gen] = rd.vals
		delete(rd.outs, gen-2)
		rd.vals = nil
		rd.count = 0
		rd.gen++
		rd.signal.Broadcast()
		return rd.outs[gen]
	}
	for rd.gen <= gen {
		rd.signal.Wait(p)
	}
	return rd.outs[gen]
}

// logP returns ceil(log2(P)), at least 1.
func (w *World) logP() int {
	p := w.Size()
	if p <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(p))))
}

// latency is the network one-way latency.
func (w *World) latency() time.Duration { return w.net.Config().Latency }

// xfer is the serialization time of b bytes on one NIC.
func (w *World) xfer(b int64) time.Duration {
	return time.Duration(float64(b) / w.net.Config().Bandwidth * float64(time.Second))
}

// Barrier blocks rank until all ranks arrive. Cost: an arrival and a release
// latency plus a small per-rank serialization at the coordinator, growing
// with world size as on a real cluster.
func (w *World) Barrier(p *sim.Proc, rank int) {
	// Arrival message to the coordinator (rank 0's node).
	w.net.Send(p, w.nodes[rank], w.nodes[0], 64)
	w.meet(p, "barrier", rank, nil)
	if rank == 0 {
		w.barriers++
	}
	// Release notification.
	w.net.Delay(p)
}

// Bcast broadcasts bytes from root; a binomial tree costs log2(P) rounds.
func (w *World) Bcast(p *sim.Proc, rank, root int, bytes int64) {
	w.meet(p, "bcast", rank, nil)
	if rank != root {
		p.Sleep(time.Duration(w.logP()) * (w.latency() + w.xfer(bytes)))
	}
}

// Allgather exchanges bytes from every rank to every rank. The cost model
// follows recursive-doubling/Bruck: ceil(log2 P) latency rounds, with every
// rank receiving (P-1)*bytes through its link.
func (w *World) Allgather(p *sim.Proc, rank int, bytes int64) {
	w.meet(p, "allgather", rank, nil)
	p.Sleep(time.Duration(w.logP())*w.latency() + time.Duration(w.Size()-1)*w.xfer(bytes))
}

// AllgatherVals synchronizes all ranks, exchanging an arbitrary value per
// rank (metadata exchange; bytes models its wire size per rank).
func (w *World) AllgatherVals(p *sim.Proc, rank int, val interface{}, bytes int64) []interface{} {
	out := w.meet(p, "allgatherv", rank, val)
	p.Sleep(time.Duration(w.logP())*w.latency() + time.Duration(w.Size()-1)*w.xfer(bytes))
	return out
}

// Alltoallv performs a personalized exchange: send[d] is the number of
// bytes this rank sends to rank d. It returns the bytes this rank receives.
// Cost: P-1 latency rounds — MPICH implements the v-variant as a pairwise
// exchange with no logarithmic optimization, which is why two-phase
// collective I/O gets increasingly expensive at scale (paper §V-C) — plus
// each node's total traffic through its NIC (ranks sharing a node share its
// links).
func (w *World) Alltoallv(p *sim.Proc, rank int, send []int64) (recv int64) {
	if len(send) != w.Size() {
		panic(fmt.Sprintf("mpi: Alltoallv send vector len %d, world %d", len(send), w.Size()))
	}
	all := w.meet(p, "alltoallv", rank, send)
	// Bytes received by this rank.
	var recvB int64
	for src := 0; src < w.Size(); src++ {
		recvB += all[src].([]int64)[rank]
	}
	// Node-level NIC traffic: everything sent or received by ranks on this
	// rank's node that crosses node boundaries. Computed in O(P) per rank:
	// outbound from co-located ranks to other nodes, plus inbound from
	// other nodes to co-located ranks.
	var nodeBytes int64
	myNode := w.nodes[rank]
	for r := 0; r < w.Size(); r++ {
		sv := all[r].([]int64)
		if w.nodes[r] == myNode {
			for d := 0; d < w.Size(); d++ {
				if w.nodes[d] != myNode {
					nodeBytes += sv[d]
				}
			}
		} else {
			for d := 0; d < w.Size(); d++ {
				if w.nodes[d] == myNode {
					nodeBytes += sv[d]
				}
			}
		}
	}
	p.Sleep(time.Duration(w.Size()-1)*w.latency() + w.xfer(nodeBytes))
	return recvB
}

// Send delivers bytes to rank `to` (matched by Recv). The wire time is
// charged to the sender; delivery order per (from,to) pair is FIFO.
func (w *World) Send(p *sim.Proc, from, to int, bytes int64) {
	w.net.Send(p, w.nodes[from], w.nodes[to], bytes)
	q := w.p2pQueue(from, to)
	q.Put(bytes)
}

// Recv blocks until a message from rank `from` arrives and returns its
// size.
func (w *World) Recv(p *sim.Proc, to, from int) int64 {
	return w.p2pQueue(from, to).Get(p)
}

func (w *World) p2pQueue(from, to int) *sim.Queue[int64] {
	key := [2]int{from, to}
	q := w.p2p[key]
	if q == nil {
		q = sim.NewQueue[int64](w.k)
		w.p2p[key] = q
	}
	return q
}

// Placement helpers.

// BlockPlacement places ranks on nodes in contiguous blocks of
// ranksPerNode, using node ids firstNode, firstNode+1, ...
func BlockPlacement(ranks, ranksPerNode, firstNode int) []int {
	if ranksPerNode <= 0 {
		panic("mpi: ranksPerNode must be positive")
	}
	nodes := make([]int, ranks)
	for r := range nodes {
		nodes[r] = firstNode + r/ranksPerNode
	}
	return nodes
}
