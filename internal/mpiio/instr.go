package mpiio

import (
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/sim"
)

// RankStats is the per-rank instrumentation the paper gathers in the ADIO
// functions: cumulative I/O time, compute time (measured as the gap between
// consecutive I/O-related calls), and bytes moved.
type RankStats struct {
	IOTime      time.Duration
	ComputeTime time.Duration
	Bytes       int64
	Calls       int64

	lastReturn time.Duration
	everCalled bool
}

// IORatio is the fraction of a rank's elapsed (compute + I/O) time spent in
// I/O — the paper's I/O intensity metric.
func (rs RankStats) IORatio() float64 {
	total := rs.IOTime + rs.ComputeTime
	if total == 0 {
		return 0
	}
	return float64(rs.IOTime) / float64(total)
}

// ReqRecord is one logged client-side request, used by EMC to compute
// ReqDist (the best-case adjacent-request distance after sorting by file
// offset).
type ReqRecord struct {
	At   time.Duration
	File string
	Ext  ext.Extent
}

// Instr aggregates instrumentation for one program: per-rank stats and the
// request log.
type Instr struct {
	Ranks []RankStats
	log   []ReqRecord
}

// NewInstr creates instrumentation for n ranks.
func NewInstr(n int) *Instr {
	return &Instr{Ranks: make([]RankStats, n)}
}

// begin marks the start of an I/O call: the time since the previous call's
// return is attributed to computation. Call finish on the returned handle at
// call completion with the transferred byte count. The handle is a plain
// value — beginning a call allocates nothing beyond the request log entries.
func (in *Instr) begin(p *sim.Proc, rank int, file string, extents []ext.Extent) ioCall {
	start := p.Now()
	rs := &in.Ranks[rank]
	if rs.everCalled {
		rs.ComputeTime += start - rs.lastReturn
	}
	for _, e := range extents {
		if e.Len > 0 {
			in.log = append(in.log, ReqRecord{At: start, File: file, Ext: e})
		}
	}
	return ioCall{rs: rs, start: start}
}

// ioCall is the in-flight handle returned by begin.
type ioCall struct {
	rs    *RankStats
	start time.Duration
}

// finish closes the call: [start, now) is I/O time.
func (c ioCall) finish(p *sim.Proc, bytes int64) {
	now := p.Now()
	c.rs.IOTime += now - c.start
	c.rs.Bytes += bytes
	c.rs.Calls++
	c.rs.lastReturn = now
	c.rs.everCalled = true
}

// Span accounts one I/O call that happened outside the normal begin/end
// path (DualPar's cache-served calls and suspensions): the gap since the
// previous call's return is compute, [start, end) is I/O.
func (in *Instr) Span(rank int, start, end time.Duration, bytes int64) {
	rs := &in.Ranks[rank]
	if rs.everCalled {
		rs.ComputeTime += start - rs.lastReturn
	}
	rs.IOTime += end - start
	rs.Bytes += bytes
	rs.Calls++
	rs.lastReturn = end
	rs.everCalled = true
}

// AddIOTime attributes d of I/O time to a rank (DualPar charges cache-miss
// stalls and data-driven waits here).
func (in *Instr) AddIOTime(rank int, d time.Duration, bytes int64) {
	in.Ranks[rank].IOTime += d
	in.Ranks[rank].Bytes += bytes
}

// Record appends request records without timing (DualPar logs the requests
// it recorded during pre-execution so ReqDist still reflects demand).
func (in *Instr) Record(now time.Duration, file string, extents []ext.Extent) {
	for _, e := range extents {
		if e.Len > 0 {
			in.log = append(in.log, ReqRecord{At: now, File: file, Ext: e})
		}
	}
}

// DrainLog returns the request log and clears it (EMC samples it per slot).
// The returned slice shares the log's backing array, which is reused by
// subsequent records — consume or copy it before the program runs again.
func (in *Instr) DrainLog() []ReqRecord {
	out := in.log
	in.log = in.log[:0]
	return out
}

// IORatio returns the mean I/O ratio across ranks.
func (in *Instr) IORatio() float64 {
	if len(in.Ranks) == 0 {
		return 0
	}
	var sum float64
	for i := range in.Ranks {
		sum += in.Ranks[i].IORatio()
	}
	return sum / float64(len(in.Ranks))
}

// TotalBytes returns the bytes moved by all ranks.
func (in *Instr) TotalBytes() int64 {
	var t int64
	for i := range in.Ranks {
		t += in.Ranks[i].Bytes
	}
	return t
}
