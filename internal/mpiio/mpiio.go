// Package mpiio models the MPI-IO (ROMIO/ADIO) library over the pfs
// parallel file system: independent contiguous and strided (derived
// datatype) reads and writes, list I/O, and two-phase collective I/O with
// aggregators and data sieving.
//
// Every operation is instrumented the way the paper instruments ADIO
// functions (§IV-B): per-rank I/O time, compute time (the gap between
// consecutive I/O calls), transferred bytes, and a client-side request log
// from which DualPar's EMC computes ReqDist.
package mpiio

import (
	"fmt"
	"time"

	"dualpar/internal/datatype"
	"dualpar/internal/ext"
	"dualpar/internal/mpi"
	"dualpar/internal/obs"
	"dualpar/internal/pfs"
	"dualpar/internal/sim"
)

// Config carries ROMIO-style hints.
type Config struct {
	// CollectiveBufferBytes is cb_buffer_size: an aggregator stages data
	// through a buffer of this size per two-phase cycle.
	CollectiveBufferBytes int64
	// Aggregators is cb_nodes: number of aggregator ranks (0 = one per
	// compute node, ROMIO's default).
	Aggregators int
	// DataSieveHole is the largest hole absorbed when an aggregator turns
	// its needed extents into contiguous accesses (0 disables sieving).
	DataSieveHole int64
	// ListIO makes independent strided operations send one extent-list
	// request per server instead of one request per segment. The paper's
	// "vanilla MPI-IO" baseline has it off: synchronous requests go out one
	// at a time.
	ListIO bool
	// IndependentSieve enables ROMIO-style data sieving on *independent*
	// strided operations: instead of per-segment requests, the covering
	// range is read in SieveBufferBytes chunks (holes up to DataSieveHole
	// absorbed; strided writes read-modify-write). Off in the paper's
	// vanilla baseline.
	IndependentSieve bool
	// SieveBufferBytes bounds one sieving access (ROMIO ind_rd_buffer_size,
	// 4 MB there; 512 KB here to match the scaled workloads).
	SieveBufferBytes int64
}

// DefaultConfig matches paper-era ROMIO defaults.
func DefaultConfig() Config {
	return Config{
		CollectiveBufferBytes: 4 << 20,
		Aggregators:           0,
		DataSieveHole:         64 << 10,
		ListIO:                false,
		IndependentSieve:      false,
		SieveBufferBytes:      512 << 10,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.CollectiveBufferBytes <= 0 {
		return fmt.Errorf("mpiio: CollectiveBufferBytes %d", c.CollectiveBufferBytes)
	}
	if c.Aggregators < 0 {
		return fmt.Errorf("mpiio: Aggregators %d", c.Aggregators)
	}
	if c.DataSieveHole < 0 {
		return fmt.Errorf("mpiio: DataSieveHole %d", c.DataSieveHole)
	}
	if c.IndependentSieve && c.SieveBufferBytes <= 0 {
		return fmt.Errorf("mpiio: SieveBufferBytes %d with IndependentSieve", c.SieveBufferBytes)
	}
	return nil
}

// File is an open MPI file shared by all ranks of a world.
type File struct {
	w       *mpi.World
	fsys    *pfs.FileSystem
	name    string
	cfg     Config
	instr   *Instr
	origins []int // per-rank disk-request origin tags
	clients map[int]*pfs.Client
	track   string // trace-track prefix ("prog0"); "mpiio" if unset
	errSink func(error)
}

// Open creates the shared file handle. origins[r] tags rank r's disk
// requests for the I/O scheduler; instr may be shared across files of one
// program.
func Open(w *mpi.World, fsys *pfs.FileSystem, name string, cfg Config, instr *Instr, origins []int) *File {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(origins) != w.Size() {
		panic(fmt.Sprintf("mpiio: %d origins for %d ranks", len(origins), w.Size()))
	}
	if instr == nil {
		instr = NewInstr(w.Size())
	}
	return &File{
		w:       w,
		fsys:    fsys,
		name:    name,
		cfg:     cfg,
		instr:   instr,
		origins: origins,
		clients: make(map[int]*pfs.Client),
	}
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// SetTrack names the trace-track prefix for this file's operations: rank r's
// requests land on "<prefix>/rank<r>". The default prefix is "mpiio".
func (f *File) SetTrack(prefix string) { f.track = prefix }

// SetErrSink registers a callback for I/O errors (a read or write that
// exhausted every replica of a needed stripe). The simulated library has no
// return path to the workload — like an MPI error handler, the sink observes
// the failure while the operation itself completes with whatever data was
// reachable. Nil (the default) drops errors.
func (f *File) SetErrSink(fn func(error)) { f.errSink = fn }

// ioErr feeds an operation error to the registered sink, if any.
func (f *File) ioErr(err error) {
	if err != nil && f.errSink != nil {
		f.errSink(err)
	}
}

// rankTrack is the trace track of one rank's operations.
func (f *File) rankTrack(rank int) string {
	prefix := f.track
	if prefix == "" {
		prefix = "mpiio"
	}
	return fmt.Sprintf("%s/rank%d", prefix, rank)
}

// startRequest opens a traced end-to-end request for one rank's operation.
// With tracing off it returns the zero Ctx.
func (f *File) startRequest(rank int) obs.Ctx {
	return f.fsys.Obs().StartRequest(f.rankTrack(rank))
}

// endRequest closes the request span opened by startRequest.
func (f *File) endRequest(p *sim.Proc, rc obs.Ctx, start time.Duration, verb string, bytes int64, extents int) {
	if !rc.Traced() {
		return
	}
	f.fsys.Obs().Span(rc.ID, obs.StageRequest, rc.Track, start, p.Now(),
		obs.Str("verb", verb), obs.I64("bytes", bytes), obs.I64("extents", int64(extents)))
}

// Instr returns the instrumentation shared by this file's operations.
func (f *File) Instr() *Instr { return f.instr }

// World returns the communicator.
func (f *File) World() *mpi.World { return f.w }

// FS returns the underlying parallel file system.
func (f *File) FS() *pfs.FileSystem { return f.fsys }

// client returns the pfs client for a rank's node.
func (f *File) client(rank int) *pfs.Client {
	node := f.w.Node(rank)
	cl := f.clients[node]
	if cl == nil {
		cl = f.fsys.Client(node)
		f.clients[node] = cl
	}
	return cl
}

// Preallocate creates layout for size bytes (collectively called by rank 0
// in the harness before timed runs, like pre-created benchmark files).
func (f *File) Preallocate(p *sim.Proc, rank int, size int64) {
	f.client(rank).Create(p, f.name, size)
}

// ReadAt is an independent contiguous read.
func (f *File) ReadAt(p *sim.Proc, rank int, off, n int64) {
	f.independent(p, rank, []ext.Extent{{Off: off, Len: n}}, false)
}

// WriteAt is an independent contiguous write.
func (f *File) WriteAt(p *sim.Proc, rank int, off, n int64) {
	f.independent(p, rank, []ext.Extent{{Off: off, Len: n}}, true)
}

// ReadType is an independent strided read of one datatype instance at base.
func (f *File) ReadType(p *sim.Proc, rank int, dt datatype.Type, base int64) {
	f.independent(p, rank, dt.Extents(base), false)
}

// WriteType is an independent strided write.
func (f *File) WriteType(p *sim.Proc, rank int, dt datatype.Type, base int64) {
	f.independent(p, rank, dt.Extents(base), true)
}

// ReadExtents is an independent read of an explicit extent list.
func (f *File) ReadExtents(p *sim.Proc, rank int, extents []ext.Extent) {
	f.independent(p, rank, extents, false)
}

// WriteExtents is an independent write of an explicit extent list.
func (f *File) WriteExtents(p *sim.Proc, rank int, extents []ext.Extent) {
	f.independent(p, rank, extents, true)
}

func (f *File) independent(p *sim.Proc, rank int, extents []ext.Extent, write bool) {
	n := ext.Total(extents)
	end := f.instr.begin(p, rank, f.name, extents)
	cl := f.client(rank)
	rc := f.startRequest(rank)
	start := p.Now()
	verb := "read"
	if write {
		verb = "write"
	}
	if f.cfg.IndependentSieve && len(extents) > 1 {
		f.sieveIndependent(p, rank, extents, rc, write)
		f.endRequest(p, rc, start, verb+"-sieved", n, len(extents))
		end.finish(p, n)
		return
	}
	if f.cfg.ListIO || len(extents) <= 1 {
		if write {
			f.ioErr(cl.Write(p, f.name, extents, f.origins[rank], rc))
		} else {
			f.ioErr(cl.Read(p, f.name, extents, f.origins[rank], rc))
		}
	} else {
		// Vanilla: synchronous requests issued one at a time (paper §II).
		for _, e := range extents {
			one := []ext.Extent{e}
			if write {
				f.ioErr(cl.Write(p, f.name, one, f.origins[rank], rc))
			} else {
				f.ioErr(cl.Read(p, f.name, one, f.origins[rank], rc))
			}
		}
	}
	f.endRequest(p, rc, start, verb, n, len(extents))
	end.finish(p, n)
}

// sieveIndependent performs ROMIO-style data sieving for one rank's strided
// operation: the covering ranges (holes up to DataSieveHole absorbed) are
// accessed in sieve-buffer-sized pieces; sieved writes read the holes back
// first (read-modify-write).
func (f *File) sieveIndependent(p *sim.Proc, rank int, extents []ext.Extent, rc obs.Ctx, write bool) {
	cl := f.client(rank)
	origin := f.origins[rank]
	sieved := ext.MergeWithHoles(extents, f.cfg.DataSieveHole)
	if write {
		if holes := ext.Holes(extents, sieved); len(holes) > 0 {
			f.ioErr(cl.Read(p, f.name, holes, origin, rc))
		}
	}
	for _, batch := range batchBy(sieved, f.cfg.SieveBufferBytes) {
		if write {
			f.ioErr(cl.Write(p, f.name, batch, origin, rc))
		} else {
			f.ioErr(cl.Read(p, f.name, batch, origin, rc))
		}
	}
}
