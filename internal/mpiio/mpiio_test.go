package mpiio

import (
	"fmt"
	"testing"
	"time"

	"dualpar/internal/datatype"
	"dualpar/internal/disk"
	"dualpar/internal/ext"
	"dualpar/internal/fs"
	"dualpar/internal/iosched"
	"dualpar/internal/mpi"
	"dualpar/internal/netsim"
	"dualpar/internal/pfs"
	"dualpar/internal/sim"
)

// rig is a test cluster: metadata node 0, data servers nodes 1..S, ranks on
// compute nodes 100+.
type rig struct {
	k    *sim.Kernel
	w    *mpi.World
	fsys *pfs.FileSystem
}

func newRig(t *testing.T, servers, ranks, ranksPerNode int) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	net := netsim.New(k, netsim.DefaultConfig())
	var nodes []int
	var stores []*fs.Store
	for i := 0; i < servers; i++ {
		dp := disk.DefaultParams()
		dp.Sectors = 1 << 24
		stores = append(stores, fs.New(k, fmt.Sprintf("s%d", i), disk.New(dp), iosched.NewCFQ(), fs.DefaultConfig(), 10000+i))
		nodes = append(nodes, 1+i)
	}
	fsys := pfs.New(k, net, pfs.DefaultConfig(), 0, nodes, stores)
	w := mpi.NewWorld(k, net, mpi.BlockPlacement(ranks, ranksPerNode, 100))
	return &rig{k: k, w: w, fsys: fsys}
}

func origins(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = 1 + i
	}
	return o
}

func (r *rig) open(name string, cfg Config) *File {
	return Open(r.w, r.fsys, name, cfg, nil, origins(r.w.Size()))
}

// runRanks spawns one proc per rank running fn and runs to completion.
func (r *rig) runRanks(t *testing.T, fn func(p *sim.Proc, rank int)) {
	t.Helper()
	for i := 0; i < r.w.Size(); i++ {
		i := i
		r.k.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) { fn(p, i) })
	}
	r.k.RunUntil(time.Hour)
}

func (r *rig) serverReadBytes() int64 {
	var total int64
	for _, s := range r.fsys.Servers() {
		total += s.Store.BytesRead()
	}
	return total
}

func TestIndependentContigRead(t *testing.T) {
	r := newRig(t, 3, 4, 2)
	f := r.open("f", DefaultConfig())
	r.runRanks(t, func(p *sim.Proc, rank int) {
		if rank == 0 {
			f.Preallocate(p, 0, 4<<20)
		}
		r.w.Barrier(p, rank)
		f.ReadAt(p, rank, int64(rank)<<20, 1<<20)
	})
	if got := r.serverReadBytes(); got != 4<<20 {
		t.Fatalf("servers read %d, want 4MB", got)
	}
	in := f.Instr()
	if in.TotalBytes() != 4<<20 {
		t.Fatalf("instr bytes = %d, want 4MB", in.TotalBytes())
	}
	for rank := range in.Ranks {
		if in.Ranks[rank].IOTime == 0 {
			t.Fatalf("rank %d recorded zero IO time", rank)
		}
	}
}

func TestVanillaStridedIssuesPerSegment(t *testing.T) {
	r := newRig(t, 2, 1, 1)
	cfg := DefaultConfig()
	cfg.ListIO = false
	f := r.open("f", cfg)
	dt := datatype.Vector{Count: 8, BlockLen: 4 << 10, Stride: 192 << 10}
	msgs0 := int64(-1)
	r.runRanks(t, func(p *sim.Proc, rank int) {
		f.Preallocate(p, 0, 4<<20)
		msgs0 = r.w.Net().Messages()
		f.ReadType(p, rank, dt, 0)
	})
	msgs := r.w.Net().Messages() - msgs0
	// 8 segments, each a request+reply round trip = 16 messages.
	if msgs != 16 {
		t.Fatalf("messages = %d, want 16 (one round trip per segment)", msgs)
	}
}

func TestListIOStridedBatchesPerServer(t *testing.T) {
	r := newRig(t, 2, 1, 1)
	cfg := DefaultConfig()
	cfg.ListIO = true
	f := r.open("f", cfg)
	dt := datatype.Vector{Count: 8, BlockLen: 4 << 10, Stride: 192 << 10}
	msgs0 := int64(-1)
	r.runRanks(t, func(p *sim.Proc, rank int) {
		f.Preallocate(p, 0, 4<<20)
		msgs0 = r.w.Net().Messages()
		f.ReadType(p, rank, dt, 0)
	})
	msgs := r.w.Net().Messages() - msgs0
	// At most one round trip per server.
	if msgs > 4 {
		t.Fatalf("messages = %d, want <= 4 with list I/O", msgs)
	}
}

func TestCollectiveReadMovesAllBytes(t *testing.T) {
	r := newRig(t, 3, 8, 4)
	f := r.open("f", DefaultConfig())
	// Interleaved 4KB columns: rank i reads bytes [i*4K + j*32K, +4K).
	dt := func(rank int) datatype.Indexed {
		var disps, lens []int64
		for j := int64(0); j < 16; j++ {
			disps = append(disps, int64(rank)*4<<10+j*32<<10)
			lens = append(lens, 4<<10)
		}
		return datatype.Indexed{Disps: disps, Lens: lens}
	}
	r.runRanks(t, func(p *sim.Proc, rank int) {
		if rank == 0 {
			f.Preallocate(p, 0, 1<<20)
		}
		r.w.Barrier(p, rank)
		f.ReadTypeAll(p, rank, dt(rank), 0)
	})
	// The 8 ranks' interleaved extents tile [0, 512K) fully; sieving may
	// read a bit more but never less.
	if got := r.serverReadBytes(); got < 512<<10 {
		t.Fatalf("servers read %d, want >= 512K", got)
	}
}

func TestCollectiveFewerDiskAccessesThanVanilla(t *testing.T) {
	// The whole point of two-phase I/O: interleaved small extents become a
	// few large contiguous accesses.
	accesses := func(collective bool) int64 {
		r := newRig(t, 2, 8, 8)
		f := r.open("f", DefaultConfig())
		dt := func(rank int) datatype.Indexed {
			var disps, lens []int64
			for j := int64(0); j < 32; j++ {
				disps = append(disps, int64(rank)*2<<10+j*16<<10)
				lens = append(lens, 2<<10)
			}
			return datatype.Indexed{Disps: disps, Lens: lens}
		}
		r.runRanks(t, func(p *sim.Proc, rank int) {
			if rank == 0 {
				f.Preallocate(p, 0, 1<<20)
			}
			r.w.Barrier(p, rank)
			if collective {
				f.ReadTypeAll(p, rank, dt(rank), 0)
			} else {
				f.ReadType(p, rank, dt(rank), 0)
			}
		})
		var acc int64
		for _, s := range r.fsys.Servers() {
			acc += s.Store.Device().Stats().Accesses
		}
		return acc
	}
	vanilla, coll := accesses(false), accesses(true)
	if coll*4 > vanilla {
		t.Fatalf("collective accesses %d vs vanilla %d: want >= 4x reduction", coll, vanilla)
	}
}

func TestCollectiveWriteRMWReadsHoles(t *testing.T) {
	r := newRig(t, 2, 2, 2)
	cfg := DefaultConfig()
	cfg.DataSieveHole = 64 << 10
	f := r.open("f", cfg)
	// Two ranks write 4K blocks separated by 4K holes.
	dt := func(rank int) datatype.Indexed {
		var disps, lens []int64
		for j := int64(0); j < 8; j++ {
			disps = append(disps, int64(rank)*512<<10+j*8<<10)
			lens = append(lens, 4<<10)
		}
		return datatype.Indexed{Disps: disps, Lens: lens}
	}
	r.runRanks(t, func(p *sim.Proc, rank int) {
		if rank == 0 {
			f.Preallocate(p, 0, 1<<20)
		}
		r.w.Barrier(p, rank)
		f.WriteTypeAll(p, rank, dt(rank), 0)
	})
	if got := r.serverReadBytes(); got == 0 {
		t.Fatalf("no hole reads: data-sieving write must read-modify-write")
	}
}

func TestCollectiveCallsSynchronize(t *testing.T) {
	r := newRig(t, 2, 4, 2)
	f := r.open("f", DefaultConfig())
	var finish []time.Duration
	r.runRanks(t, func(p *sim.Proc, rank int) {
		if rank == 0 {
			f.Preallocate(p, 0, 1<<20)
		}
		r.w.Barrier(p, rank)
		p.Sleep(time.Duration(rank) * 100 * time.Millisecond) // skewed arrival
		f.ReadExtentsAll(p, rank, []ext.Extent{{Off: int64(rank) * 64 << 10, Len: 64 << 10}})
		finish = append(finish, p.Now())
	})
	// No rank can finish before the slowest arrives (300ms).
	for _, at := range finish {
		if at < 300*time.Millisecond {
			t.Fatalf("rank finished collective at %v before last arrival", at)
		}
	}
}

func TestComputeTimeMeasuredBetweenCalls(t *testing.T) {
	r := newRig(t, 2, 1, 1)
	f := r.open("f", DefaultConfig())
	r.runRanks(t, func(p *sim.Proc, rank int) {
		f.Preallocate(p, 0, 1<<20)
		f.ReadAt(p, rank, 0, 64<<10)
		p.Sleep(500 * time.Millisecond) // compute
		f.ReadAt(p, rank, 64<<10, 64<<10)
	})
	rs := f.Instr().Ranks[0]
	if rs.ComputeTime < 500*time.Millisecond {
		t.Fatalf("compute time = %v, want >= 500ms", rs.ComputeTime)
	}
	if rs.IOTime <= 0 {
		t.Fatalf("io time = %v", rs.IOTime)
	}
	ratio := rs.IORatio()
	if ratio <= 0 || ratio >= 1 {
		t.Fatalf("io ratio = %g, want in (0,1)", ratio)
	}
}

func TestRequestLogDrain(t *testing.T) {
	r := newRig(t, 2, 1, 1)
	f := r.open("f", DefaultConfig())
	r.runRanks(t, func(p *sim.Proc, rank int) {
		f.Preallocate(p, 0, 1<<20)
		f.ReadAt(p, rank, 0, 4<<10)
		f.ReadAt(p, rank, 8<<10, 4<<10)
	})
	log := f.Instr().DrainLog()
	if len(log) != 2 {
		t.Fatalf("log entries = %d, want 2", len(log))
	}
	if len(f.Instr().DrainLog()) != 0 {
		t.Fatalf("drain did not clear the log")
	}
}

func TestBatchBy(t *testing.T) {
	xs := []ext.Extent{{Off: 0, Len: 10}, {Off: 20, Len: 25}}
	batches := batchBy(xs, 16)
	if len(batches) != 3 {
		t.Fatalf("batches = %v, want 3", batches)
	}
	var total int64
	for _, b := range batches {
		if ext.Total(b) > 16 {
			t.Fatalf("batch exceeds limit: %v", b)
		}
		total += ext.Total(b)
	}
	if total != 35 {
		t.Fatalf("batched total = %d, want 35", total)
	}
}

func TestPartitionDomainsCoverUnion(t *testing.T) {
	r := newRig(t, 3, 8, 2)
	f := r.open("f", DefaultConfig())
	info := f.partition(64<<10, 64<<10+8<<20)
	if len(info.ranks) == 0 {
		t.Fatalf("no aggregators")
	}
	lo := info.domains[0].Off
	hi := info.domains[len(info.domains)-1].End()
	if lo > 64<<10 || hi < 64<<10+8<<20 {
		t.Fatalf("domains [%d,%d) do not cover union", lo, hi)
	}
	unit := r.fsys.Config().StripeUnit
	for _, d := range info.domains[:len(info.domains)-1] {
		if d.Off%unit != 0 {
			t.Fatalf("domain start %d not stripe-aligned", d.Off)
		}
	}
}

func TestIndependentSieveReducesRoundTrips(t *testing.T) {
	// Data sieving turns per-segment round trips into a few covering
	// accesses (plus over-read of the holes).
	run := func(sieve bool) (msgs, served int64) {
		r := newRig(t, 2, 1, 1)
		cfg := DefaultConfig()
		cfg.IndependentSieve = sieve
		f := r.open("f", cfg)
		dt := datatype.Vector{Count: 16, BlockLen: 4 << 10, Stride: 16 << 10}
		var msgs0 int64
		r.runRanks(t, func(p *sim.Proc, rank int) {
			f.Preallocate(p, 0, 4<<20)
			msgs0 = r.w.Net().Messages()
			f.ReadType(p, rank, dt, 0)
		})
		return r.w.Net().Messages() - msgs0, r.serverReadBytes()
	}
	msgsOff, servedOff := run(false)
	msgsOn, servedOn := run(true)
	if msgsOn*4 > msgsOff {
		t.Fatalf("sieving messages %d not << per-segment %d", msgsOn, msgsOff)
	}
	if servedOn <= servedOff {
		t.Fatalf("sieving should over-read holes: %d vs %d", servedOn, servedOff)
	}
}

func TestIndependentSieveWriteRMW(t *testing.T) {
	r := newRig(t, 2, 1, 1)
	cfg := DefaultConfig()
	cfg.IndependentSieve = true
	f := r.open("f", cfg)
	dt := datatype.Vector{Count: 8, BlockLen: 4 << 10, Stride: 16 << 10}
	r.runRanks(t, func(p *sim.Proc, rank int) {
		f.Preallocate(p, 0, 1<<20)
		f.WriteType(p, rank, dt, 0)
	})
	if r.serverReadBytes() == 0 {
		t.Fatalf("sieved strided write must read holes back (RMW)")
	}
}

func TestIndependentSieveRespectsBuffer(t *testing.T) {
	r := newRig(t, 1, 1, 1)
	cfg := DefaultConfig()
	cfg.IndependentSieve = true
	cfg.SieveBufferBytes = 64 << 10
	f := r.open("f", cfg)
	// Dense vector: one 1MB covering range, so ceil(1MB/64KB) accesses.
	dt := datatype.Vector{Count: 256, BlockLen: 2 << 10, Stride: 4 << 10}
	msgs0 := int64(-1)
	r.runRanks(t, func(p *sim.Proc, rank int) {
		f.Preallocate(p, 0, 2<<20)
		msgs0 = r.w.Net().Messages()
		f.ReadType(p, rank, dt, 0)
	})
	msgs := r.w.Net().Messages() - msgs0
	// ~16 sieve chunks, each one round trip to the single server.
	if msgs < 2*10 || msgs > 2*20 {
		t.Fatalf("messages = %d, want about 2x16 (per sieve chunk)", msgs)
	}
}

func TestValidateSieveConfig(t *testing.T) {
	c := DefaultConfig()
	c.IndependentSieve = true
	c.SieveBufferBytes = 0
	if c.Validate() == nil {
		t.Fatalf("zero sieve buffer passed validation")
	}
}

func TestAccessorsAndWritePaths(t *testing.T) {
	r := newRig(t, 2, 2, 2)
	f := r.open("acc", DefaultConfig())
	if f.Name() != "acc" || f.World() != r.w || f.FS() != r.fsys {
		t.Fatalf("accessors wrong")
	}
	r.runRanks(t, func(p *sim.Proc, rank int) {
		f.WriteAt(p, rank, int64(rank)<<20, 256<<10)
		f.WriteExtents(p, rank, []ext.Extent{{Off: int64(rank)*64<<10 + 4<<20, Len: 64 << 10}})
		f.WriteExtentsAll(p, rank, []ext.Extent{{Off: int64(rank)*32<<10 + 8<<20, Len: 32 << 10}})
	})
	var written int64
	for _, s := range r.fsys.Servers() {
		written += s.Store.BytesWritten()
	}
	want := int64(2) * (256<<10 + 64<<10 + 32<<10)
	if written < want {
		t.Fatalf("servers wrote %d, want >= %d", written, want)
	}
}

func TestInstrSpanAndHelpers(t *testing.T) {
	in := NewInstr(2)
	in.Span(0, 100*time.Millisecond, 150*time.Millisecond, 1000)
	in.Span(0, 250*time.Millisecond, 300*time.Millisecond, 1000)
	rs := in.Ranks[0]
	if rs.IOTime != 100*time.Millisecond {
		t.Fatalf("io time = %v", rs.IOTime)
	}
	if rs.ComputeTime != 100*time.Millisecond {
		t.Fatalf("compute time = %v (gap between spans)", rs.ComputeTime)
	}
	if rs.Bytes != 2000 || rs.Calls != 2 {
		t.Fatalf("bytes/calls = %d/%d", rs.Bytes, rs.Calls)
	}
	if got := rs.IORatio(); got != 0.5 {
		t.Fatalf("rank ratio = %g", got)
	}
	if got := in.IORatio(); got != 0.25 { // rank 1 contributes 0
		t.Fatalf("program ratio = %g", got)
	}
	in.AddIOTime(1, time.Second, 5)
	if in.Ranks[1].IOTime != time.Second || in.TotalBytes() != 2005 {
		t.Fatalf("AddIOTime not applied")
	}
	in.Record(time.Second, "f", []ext.Extent{{Off: 0, Len: 10}, {Len: 0}})
	if log := in.DrainLog(); len(log) != 1 || log[0].File != "f" {
		t.Fatalf("Record/DrainLog = %+v", log)
	}
	if (RankStats{}).IORatio() != 0 {
		t.Fatalf("zero stats ratio nonzero")
	}
}

func TestOpenPanicsOnBadArgs(t *testing.T) {
	r := newRig(t, 1, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for mismatched origins")
		}
	}()
	Open(r.w, r.fsys, "x", DefaultConfig(), nil, []int{1}) // 1 origin, 2 ranks
}
