package mpiio

import (
	"dualpar/internal/datatype"
	"dualpar/internal/ext"
	"dualpar/internal/sim"
)

// ReadTypeAll is a collective strided read (two-phase I/O). All ranks must
// call it together, each with its own datatype instance.
func (f *File) ReadTypeAll(p *sim.Proc, rank int, dt datatype.Type, base int64) {
	f.collective(p, rank, dt.Extents(base), false)
}

// WriteTypeAll is a collective strided write.
func (f *File) WriteTypeAll(p *sim.Proc, rank int, dt datatype.Type, base int64) {
	f.collective(p, rank, dt.Extents(base), true)
}

// ReadExtentsAll is a collective read of an explicit extent list.
func (f *File) ReadExtentsAll(p *sim.Proc, rank int, extents []ext.Extent) {
	f.collective(p, rank, extents, false)
}

// WriteExtentsAll is a collective write of an explicit extent list.
func (f *File) WriteExtentsAll(p *sim.Proc, rank int, extents []ext.Extent) {
	f.collective(p, rank, extents, true)
}

// aggInfo describes the file-domain partition of one collective call.
type aggInfo struct {
	ranks   []int        // aggregator ranks
	domains []ext.Extent // domains[i] is aggregator i's file domain
}

// collective implements two-phase I/O: exchange access metadata, partition
// the aggregate range into per-aggregator file domains, move data between
// owners and aggregators with all-to-all, and let aggregators perform large
// contiguous file accesses (with data sieving).
func (f *File) collective(p *sim.Proc, rank int, extents []ext.Extent, write bool) {
	end := f.instr.begin(p, rank, f.name, extents)
	myBytes := ext.Total(extents)

	// Phase 0: metadata exchange — every rank learns every extent list.
	metaBytes := int64(16*len(extents)) + 64
	all := f.w.AllgatherVals(p, rank, extents, metaBytes)
	perRank := make([][]ext.Extent, f.w.Size())
	lo, hi := int64(-1), int64(-1)
	for r := range perRank {
		perRank[r] = all[r].([]ext.Extent)
		for _, e := range perRank[r] {
			if e.Len <= 0 {
				continue
			}
			if lo < 0 || e.Off < lo {
				lo = e.Off
			}
			if e.End() > hi {
				hi = e.End()
			}
		}
	}
	if lo < 0 {
		end.finish(p, 0)
		return
	}
	agg := f.partition(lo, hi)
	myAgg := -1
	for i, r := range agg.ranks {
		if r == rank {
			myAgg = i
		}
	}

	// Only the aggregator materializes (and merges) the union restricted
	// to its own file domain — never the full union per rank, which would
	// cost O(P * totalExtents) per call.
	myNeeded := func() []ext.Extent {
		var needed []ext.Extent
		d := agg.domains[myAgg]
		for r := range perRank {
			needed = append(needed, clipAll(perRank[r], d)...)
		}
		return ext.Merge(needed)
	}
	if write {
		// Phase 1 (write): owners ship data to aggregators.
		send := make([]int64, f.w.Size())
		for i, ar := range agg.ranks {
			send[ar] = overlapTotal(extents, agg.domains[i])
		}
		f.w.Alltoallv(p, rank, send)
		// Phase 2: aggregators write their domains.
		if myAgg >= 0 {
			f.aggregatorIO(p, rank, myNeeded(), true)
		}
		// Collective completion: everyone waits for the aggregators.
		f.w.Barrier(p, rank)
	} else {
		// Phase 1 (read): aggregators read their domains.
		if myAgg >= 0 {
			f.aggregatorIO(p, rank, myNeeded(), false)
		}
		// Phase 2: aggregators distribute to owners. The exchange's
		// rendezvous also makes consumers wait for aggregator reads.
		send := make([]int64, f.w.Size())
		if myAgg >= 0 {
			for r := 0; r < f.w.Size(); r++ {
				send[r] = overlapTotal(perRank[r], agg.domains[myAgg])
			}
		}
		f.w.Alltoallv(p, rank, send)
	}
	end.finish(p, myBytes)
}

// partition splits the accessed span [lo, hi) into stripe-aligned file
// domains, one per aggregator (ROMIO's even partition of [st, end]).
func (f *File) partition(lo, hi int64) aggInfo {
	size := f.w.Size()
	a := f.cfg.Aggregators
	if a <= 0 {
		// One aggregator per distinct compute node.
		seen := make(map[int]bool)
		for r := 0; r < size; r++ {
			seen[f.w.Node(r)] = true
		}
		a = len(seen)
	}
	if a > size {
		a = size
	}
	unit := f.fsys.Config().StripeUnit
	span := hi - lo
	per := (span + int64(a) - 1) / int64(a)
	per = (per + unit - 1) / unit * unit
	info := aggInfo{}
	for i := 0; i < a; i++ {
		dLo := lo + int64(i)*per
		dHi := dLo + per
		if dLo >= hi {
			break
		}
		if dHi > hi {
			dHi = hi
		}
		info.ranks = append(info.ranks, i*size/a)
		info.domains = append(info.domains, ext.Extent{Off: dLo, Len: dHi - dLo})
	}
	return info
}

// aggregatorIO performs the file access for one aggregator's needed
// extents, staging through the collective buffer: each cycle covers at most
// CollectiveBufferBytes of data, sieved into contiguous accesses.
func (f *File) aggregatorIO(p *sim.Proc, rank int, needed []ext.Extent, write bool) {
	if len(needed) == 0 {
		return
	}
	sieved := ext.MergeWithHoles(needed, f.cfg.DataSieveHole)
	holes := ext.Holes(needed, sieved)
	cl := f.client(rank)
	origin := f.origins[rank]
	rc := f.startRequest(rank)
	start := p.Now()
	verb := "agg-read"
	if write {
		verb = "agg-write"
	}
	// Data sieving on writes requires read-modify-write of the holes.
	if write && len(holes) > 0 {
		f.ioErr(cl.Read(p, f.name, holes, origin, rc))
	}
	for _, batch := range batchBy(sieved, f.cfg.CollectiveBufferBytes) {
		if write {
			f.ioErr(cl.Write(p, f.name, batch, origin, rc))
		} else {
			f.ioErr(cl.Read(p, f.name, batch, origin, rc))
		}
	}
	f.endRequest(p, rc, start, verb, ext.Total(needed), len(needed))
}

// batchBy slices extents into consecutive groups of at most limit total
// bytes (single extents larger than limit are split).
func batchBy(xs []ext.Extent, limit int64) [][]ext.Extent {
	if limit <= 0 {
		return [][]ext.Extent{xs}
	}
	var out [][]ext.Extent
	var cur []ext.Extent
	var curBytes int64
	flush := func() {
		if len(cur) > 0 {
			out = append(out, cur)
			cur = nil
			curBytes = 0
		}
	}
	for _, e := range xs {
		for e.Len > 0 {
			room := limit - curBytes
			if room == 0 {
				flush()
				room = limit
			}
			take := e.Len
			if take > room {
				take = room
			}
			cur = append(cur, ext.Extent{Off: e.Off, Len: take})
			curBytes += take
			e.Off += take
			e.Len -= take
		}
	}
	flush()
	return out
}

// clipAll returns the parts of xs inside domain d.
func clipAll(xs []ext.Extent, d ext.Extent) []ext.Extent {
	var out []ext.Extent
	for _, e := range xs {
		if c, ok := e.Clip(d.Off, d.End()); ok {
			out = append(out, c)
		}
	}
	return out
}

// overlapTotal is the byte count of xs ∩ d.
func overlapTotal(xs []ext.Extent, d ext.Extent) int64 {
	var t int64
	for _, e := range xs {
		if c, ok := e.Clip(d.Off, d.End()); ok {
			t += c.Len
		}
	}
	return t
}
