package tenant

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpecDefaults(t *testing.T) {
	cfg, err := ParseSpec("")
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if cfg != DefaultConfig() {
		t.Fatalf("empty spec = %+v, want DefaultConfig", cfg)
	}
}

func TestParseSpecFull(t *testing.T) {
	cfg, err := ParseSpec("tenants:4,arrival=burst:100@500ms,policy=fair,grants=64,cache=64M,jobs=150,ranks=2,hot=0x3,seed=7")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want := Config{
		Tenants:    4,
		Arrival:    Arrival{Kind: ArrivalBurst, Size: 100, Every: 500 * time.Millisecond},
		Policy:     PolicyFair,
		MaxGrants:  64,
		CacheBytes: 64 << 20,
		Jobs:       150,
		Ranks:      2,
		HotTenant:  0,
		HotFactor:  3,
		Seed:       7,
	}
	if cfg != want {
		t.Fatalf("cfg = %+v\nwant  %+v", cfg, want)
	}
}

func TestParseSpecArrivalKinds(t *testing.T) {
	for spec, want := range map[string]Arrival{
		"arrival=poisson:25.5":    {Kind: ArrivalPoisson, Rate: 25.5},
		"arrival=burst:10@1s":     {Kind: ArrivalBurst, Size: 10, Every: time.Second},
		"arrival=closed:8x5":      {Kind: ArrivalClosed, Workers: 8, JobsPerWorker: 5},
		"arrival=closed:8x5:10ms": {Kind: ArrivalClosed, Workers: 8, JobsPerWorker: 5, Think: 10 * time.Millisecond},
	} {
		cfg, err := ParseSpec(spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", spec, err)
			continue
		}
		if cfg.Arrival != want {
			t.Errorf("ParseSpec(%q).Arrival = %+v, want %+v", spec, cfg.Arrival, want)
		}
	}
}

// TestParseSpecErrors pins that every malformed entry is rejected with an
// error naming the offending entry, per the fault.Parse convention.
func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"tenants:0",
		"tenants:x",
		"bogus",
		"arrival=warp:9",
		"arrival=poisson:0",
		"arrival=poisson:-3",
		"arrival=poisson:NaN",
		"arrival=poisson:+Inf",
		"arrival=burst:0@1s",
		"arrival=burst:5@0s",
		"arrival=burst:5",
		"arrival=closed:0x5",
		"arrival=closed:8x0",
		"arrival=closed:8x5:-1s",
		"arrival=closed:85",
		"policy=round-robin",
		"grants=-1",
		"cache=-5",
		"cache=64Q",
		"cache=9999999999G",
		"jobs=0",
		"ranks=0",
		"hot=0",
		"hot=-1x2",
		"hot=0x0",
		"hot=9x2", // out of range for default 1 tenant
		"seed=abc",
		"unknown=1",
	} {
		_, err := ParseSpec(spec)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", spec)
			continue
		}
		// The error must name the offending entry (or the whole spec for
		// cross-entry validation failures like the out-of-range hot tenant).
		if !strings.Contains(err.Error(), `"`) {
			t.Errorf("ParseSpec(%q) error does not quote the entry: %v", spec, err)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"tenants:4,arrival=poisson:25,policy=fair,grants=64,cache=67108864,jobs=150,ranks=2,hot=0x3,seed=7",
		"tenants:1,arrival=poisson:50,policy=fcfs,jobs=100,ranks=1,seed=1",
		"tenants:2,arrival=closed:8x5:10ms,policy=prio,grants=4,ranks=1,seed=3",
	} {
		cfg, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if got := cfg.String(); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
	}
}
