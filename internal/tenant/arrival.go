package tenant

import (
	"math/rand"
	"sort"
	"time"
)

// Job is one generated submission: tenant t's Index-th job, arriving at
// virtual time At (open-loop kinds) or fed to worker Worker's closed loop.
// Class and Mode are drawn from the generator's size and mode mixes; Seed
// is a per-job stream for any further randomness the harness wants.
type Job struct {
	Tenant int
	Index  int
	Worker int           // closed loop only; -1 for open-loop kinds
	At     time.Duration // open-loop arrival; 0 for closed loop
	Class  string        // size class: "s", "m", or "l"
	Mode   string        // execution mode name: "dualpar" or "vanilla"
	Seed   int64
}

// Default job mixes: mostly small I/O-intensive jobs that want data-driven
// mode, a tail of medium and large ones, and a vanilla minority that never
// requests a grant. Cumulative thresholds over one uniform draw each.
const (
	classSmallP  = 0.70
	classMediumP = 0.95 // cumulative; the rest is "l"
	modeDualParP = 0.80 // the rest is "vanilla"
)

// Schedule generates the full deterministic job schedule for cfg: each
// tenant draws from an independent stream seeded from cfg.Seed, and the
// per-tenant schedules are merged by (At, Tenant, Index). Calling it twice
// with the same config yields identical slices.
func Schedule(cfg Config) []Job {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	var all []Job
	for t := 0; t < cfg.Tenants; t++ {
		all = append(all, tenantJobs(cfg, t)...)
	}
	// Merge: already sorted within each tenant; a stable insertion-style
	// sort over the concatenation would be O(n^2), so sort explicitly.
	sortJobs(all)
	return all
}

// jobsFor returns tenant t's job count (open loop) honouring the hot skew.
func jobsFor(cfg Config, t int) int {
	n := cfg.Jobs
	if cfg.HotFactor > 1 && t == cfg.HotTenant {
		n *= cfg.HotFactor
	}
	return n
}

// tenantJobs draws tenant t's schedule from its own stream. Draw order per
// job is fixed (inter-arrival, class, mode, seed) so adding a field never
// perturbs earlier jobs.
func tenantJobs(cfg Config, t int) []Job {
	r := rand.New(rand.NewSource(cfg.Seed + int64(t)*7919))
	var jobs []Job
	emit := func(worker int, at time.Duration) {
		j := Job{
			Tenant: t,
			Index:  len(jobs),
			Worker: worker,
			At:     at,
			Class:  drawClass(r),
			Mode:   drawMode(r),
			Seed:   r.Int63(),
		}
		jobs = append(jobs, j)
	}
	a := cfg.Arrival
	switch a.Kind {
	case ArrivalPoisson:
		// The hot tenant arrives at HotFactor times the rate as well as
		// submitting HotFactor times the jobs: its stream spans the same
		// wall-clock window as the cold tenants' but with proportionally
		// higher intensity — a flood, not a longer trickle.
		rate := a.Rate
		if cfg.HotFactor > 1 && t == cfg.HotTenant {
			rate *= float64(cfg.HotFactor)
		}
		at := time.Duration(0)
		for i := 0; i < jobsFor(cfg, t); i++ {
			at += time.Duration(r.ExpFloat64() / rate * float64(time.Second))
			emit(-1, at)
		}
	case ArrivalBurst:
		for i := 0; i < jobsFor(cfg, t); i++ {
			emit(-1, a.Every*time.Duration(i/a.Size))
		}
	case ArrivalClosed:
		perWorker := a.JobsPerWorker
		if cfg.HotFactor > 1 && t == cfg.HotTenant {
			perWorker *= cfg.HotFactor
		}
		for w := 0; w < a.Workers; w++ {
			for i := 0; i < perWorker; i++ {
				emit(w, 0)
			}
		}
	}
	return jobs
}

func drawClass(r *rand.Rand) string {
	switch u := r.Float64(); {
	case u < classSmallP:
		return "s"
	case u < classMediumP:
		return "m"
	default:
		return "l"
	}
}

func drawMode(r *rand.Rand) string {
	if r.Float64() < modeDualParP {
		return "dualpar"
	}
	return "vanilla"
}

// sortJobs orders by (At, Tenant, Index) — a total order, so the merged
// schedule is unique whatever the sort algorithm.
func sortJobs(jobs []Job) {
	sort.Slice(jobs, func(i, k int) bool {
		a, b := jobs[i], jobs[k]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Index < b.Index
	})
}

// Generator streams the schedule job by job, so a driver can drain part of
// it, hand the rest to another consumer, or interleave with completions.
// Two generators with the same config produce the same stream; draining k
// jobs from one and comparing the remainder against a fresh generator's
// suffix is the package's replay property (see arrival_test.go).
type Generator struct {
	jobs []Job
	next int
}

// NewGenerator pre-computes the schedule for cfg (panics on invalid
// config, like the simulator's other constructors).
func NewGenerator(cfg Config) *Generator {
	return &Generator{jobs: Schedule(cfg)}
}

// Next returns the next job in arrival order; ok is false when drained.
func (g *Generator) Next() (j Job, ok bool) {
	if g.next >= len(g.jobs) {
		return Job{}, false
	}
	j = g.jobs[g.next]
	g.next++
	return j, true
}

// Remaining reports how many jobs have not been drained yet.
func (g *Generator) Remaining() int { return len(g.jobs) - g.next }

// Total reports the full schedule length.
func (g *Generator) Total() int { return len(g.jobs) }
