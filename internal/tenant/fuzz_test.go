package tenant

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseSpec asserts ParseSpec's contract on arbitrary input: it never
// panics, any config it accepts validates cleanly (so NewGenerator and
// NewArbiter cannot panic on a parsed config) with finite numeric fields,
// and the rendered form re-parses to the same config.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"  ",
		"tenants:4",
		"tenants:4,arrival=poisson:25,policy=fair,grants=64,cache=64M,jobs=150,ranks=2,hot=0x3,seed=7",
		"arrival=burst:100@500ms",
		"arrival=closed:8x5:10ms",
		"arrival=closed:8x5",
		"policy=prio,grants=6",
		"policy=fcfs",
		"cache=64K",
		"cache=1G",
		"cache=123",
		"tenants:0",
		"tenants:-1",
		"arrival=poisson:0",
		"arrival=poisson:NaN",
		"arrival=poisson:1e309",
		"arrival=burst:1@-5s",
		"arrival=closed:0x0",
		"hot=0x0",
		"hot=99x2",
		"grants=-1",
		"cache=-1",
		"cache=99999999999999999G",
		"seed=abc",
		"jobs=1,jobs=2,jobs=3",
		",,,",
		"tenants:4,",
		"=",
		"a=b=c",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseSpec(spec)
		if err != nil {
			if cfg != (Config{}) {
				t.Fatalf("ParseSpec(%q) returned both a config and error %v", spec, err)
			}
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseSpec(%q) accepted a config that fails Validate: %v", spec, err)
		}
		if math.IsNaN(cfg.Arrival.Rate) || math.IsInf(cfg.Arrival.Rate, 0) {
			t.Fatalf("ParseSpec(%q) let a non-finite rate through: %+v", spec, cfg.Arrival)
		}
		if strings.TrimSpace(spec) == "" && cfg != DefaultConfig() {
			t.Fatalf("blank spec %q parsed to %+v", spec, cfg)
		}
		back, err := ParseSpec(cfg.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q).String() = %q does not re-parse: %v", spec, cfg.String(), err)
		}
		if back != cfg {
			t.Fatalf("render/re-parse drift: %+v -> %q -> %+v", cfg, cfg.String(), back)
		}
	})
}
