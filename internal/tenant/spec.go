// Package tenant adds the shared-cluster dimension to DualPar: a seeded
// workload generator that launches many small jobs from competing tenants
// onto one cluster, and a cluster-wide arbiter that rations the data-driven
// execution grants the per-app EMC controllers previously handed themselves
// for free. The paper evaluates one application per cluster; this package
// models the datacenter setting its introduction motivates — thousands of
// co-running jobs contending for one parallel file system, where admitting
// every I/O-intensive job to data-driven mode would overrun the global
// cache and the I/O servers that writeback and prefetch share.
//
// Everything is deterministic from Config.Seed: the generator pre-computes
// each tenant's arrival schedule from an independent seeded stream, and the
// arbiter is a pure state machine driven by simulation events.
package tenant

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Policy selects how the arbiter divides data-driven grants among tenants.
type Policy string

const (
	// PolicyFCFS grants to whoever asks first, bounded only by MaxGrants.
	PolicyFCFS Policy = "fcfs"
	// PolicyFair reserves an equal share of MaxGrants per tenant. Shares
	// are work-conserving: idle capacity is lent out freely, and an
	// under-reservation tenant reclaims a lent grant by revocation.
	PolicyFair Policy = "fair"
	// PolicyPrio reserves weighted shares: tenant 0 is the highest
	// priority (weight Tenants), the last tenant the lowest (weight 1).
	// Reservations are work-conserving as under PolicyFair.
	PolicyPrio Policy = "prio"
)

// ArrivalKind names the arrival process driving a tenant's job stream.
type ArrivalKind string

const (
	// ArrivalPoisson is an open loop with exponential inter-arrival times.
	ArrivalPoisson ArrivalKind = "poisson"
	// ArrivalBurst is an open loop releasing Size jobs every Every.
	ArrivalBurst ArrivalKind = "burst"
	// ArrivalClosed is a closed loop: Workers think, submit, and wait.
	ArrivalClosed ArrivalKind = "closed"
)

// Arrival describes one arrival process, applied per tenant.
type Arrival struct {
	Kind ArrivalKind
	// Rate is jobs per second for ArrivalPoisson.
	Rate float64
	// Size and Every shape ArrivalBurst: Size jobs released together at
	// t = 0, Every, 2*Every, ...
	Size  int
	Every time.Duration
	// Workers, JobsPerWorker, and Think shape ArrivalClosed.
	Workers       int
	JobsPerWorker int
	Think         time.Duration
}

// Config describes a multi-tenant run. The zero value is invalid; start
// from DefaultConfig.
type Config struct {
	// Tenants is the number of competing tenants.
	Tenants int
	// Arrival drives every tenant's job stream.
	Arrival Arrival
	// Policy divides grants among tenants.
	Policy Policy
	// MaxGrants bounds simultaneous data-driven grants cluster-wide;
	// 0 = unbounded (every request is granted, as in the untenanted build).
	MaxGrants int
	// CacheBytes, when non-zero, is partitioned across tenants as
	// per-tenant memcache quotas (equal shares, or weighted under
	// PolicyPrio). 0 = no partitioning.
	CacheBytes int64
	// Jobs is the open-loop job count per tenant (ignored by ArrivalClosed,
	// which runs Workers*JobsPerWorker jobs per tenant).
	Jobs int
	// Ranks is the process count of each generated job.
	Ranks int
	// HotTenant/HotFactor skew load: the hot tenant submits HotFactor times
	// the jobs (open loop) or jobs-per-worker (closed loop); under Poisson
	// arrivals its rate also scales by HotFactor, so the hot stream is a
	// flood over the same window rather than a longer trickle. Factor <= 1
	// means no skew.
	HotTenant, HotFactor int
	// Seed feeds every tenant's arrival and mix streams.
	Seed int64
}

// DefaultConfig is a single tenant with unbounded grants and no cache
// partitioning — the configuration whose behaviour is identical to a run
// with tenancy disabled.
func DefaultConfig() Config {
	return Config{
		Tenants: 1,
		Arrival: Arrival{Kind: ArrivalPoisson, Rate: 50},
		Policy:  PolicyFCFS,
		Jobs:    100,
		Ranks:   1,
		Seed:    1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Tenants < 1:
		return fmt.Errorf("tenant: Tenants %d", c.Tenants)
	case c.Policy != PolicyFCFS && c.Policy != PolicyFair && c.Policy != PolicyPrio:
		return fmt.Errorf("tenant: unknown policy %q", c.Policy)
	case c.MaxGrants < 0:
		return fmt.Errorf("tenant: MaxGrants %d", c.MaxGrants)
	case c.CacheBytes < 0:
		return fmt.Errorf("tenant: CacheBytes %d", c.CacheBytes)
	case c.Ranks < 1:
		return fmt.Errorf("tenant: Ranks %d", c.Ranks)
	case c.HotFactor > 1 && (c.HotTenant < 0 || c.HotTenant >= c.Tenants):
		return fmt.Errorf("tenant: HotTenant %d out of range [0,%d)", c.HotTenant, c.Tenants)
	}
	a := c.Arrival
	switch a.Kind {
	case ArrivalPoisson:
		if !(a.Rate > 0) || math.IsInf(a.Rate, 0) { // rejects NaN too
			return fmt.Errorf("tenant: poisson rate %v", a.Rate)
		}
		if c.Jobs < 1 {
			return fmt.Errorf("tenant: Jobs %d", c.Jobs)
		}
	case ArrivalBurst:
		if a.Size < 1 {
			return fmt.Errorf("tenant: burst size %d", a.Size)
		}
		if a.Every <= 0 {
			return fmt.Errorf("tenant: burst interval %v", a.Every)
		}
		if c.Jobs < 1 {
			return fmt.Errorf("tenant: Jobs %d", c.Jobs)
		}
	case ArrivalClosed:
		if a.Workers < 1 {
			return fmt.Errorf("tenant: closed workers %d", a.Workers)
		}
		if a.JobsPerWorker < 1 {
			return fmt.Errorf("tenant: closed jobs/worker %d", a.JobsPerWorker)
		}
		if a.Think < 0 {
			return fmt.Errorf("tenant: closed think %v", a.Think)
		}
	default:
		return fmt.Errorf("tenant: unknown arrival kind %q", a.Kind)
	}
	return nil
}

// ParseSpec builds a Config from a compact spec string, for command-line
// use. Entries are comma-separated; the tenant count is `tenants:<n>` and
// everything else is key=value:
//
//	tenants:4                         four tenants (default 1)
//	arrival=poisson:25                open loop, 25 jobs/s per tenant
//	arrival=burst:100@500ms           100 jobs together every 500ms
//	arrival=closed:8x5:10ms           8 workers x 5 jobs each, 10ms think
//	policy=fair|prio|fcfs             grant policy (default fcfs)
//	grants=64                         max simultaneous data-driven grants
//	cache=64M                         cache pool partitioned across tenants
//	jobs=150                          open-loop jobs per tenant
//	ranks=2                           processes per job
//	hot=0x3                           tenant 0 submits 3x the jobs
//	seed=7                            generator seed
//
// Every rejected spec names the offending entry in the error. The empty
// spec is DefaultConfig.
func ParseSpec(spec string) (Config, error) {
	cfg := DefaultConfig()
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if err := parseEntry(&cfg, entry); err != nil {
			return Config{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("tenant: spec %q: %v", spec, err)
	}
	return cfg, nil
}

func parseEntry(cfg *Config, entry string) error {
	if rest, ok := strings.CutPrefix(entry, "tenants:"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return fmt.Errorf("tenant: %q: bad tenant count", entry)
		}
		cfg.Tenants = n
		return nil
	}
	key, val, ok := strings.Cut(entry, "=")
	if !ok {
		return fmt.Errorf("tenant: %q: want tenants:<n> or key=value", entry)
	}
	switch key {
	case "arrival":
		a, err := parseArrival(val)
		if err != nil {
			return fmt.Errorf("tenant: %q: %v", entry, err)
		}
		cfg.Arrival = a
	case "policy":
		switch Policy(val) {
		case PolicyFCFS, PolicyFair, PolicyPrio:
			cfg.Policy = Policy(val)
		default:
			return fmt.Errorf("tenant: %q: unknown policy %q", entry, val)
		}
	case "grants":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("tenant: %q: bad grant bound", entry)
		}
		cfg.MaxGrants = n
	case "cache":
		b, err := parseBytes(val)
		if err != nil {
			return fmt.Errorf("tenant: %q: %v", entry, err)
		}
		cfg.CacheBytes = b
	case "jobs":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("tenant: %q: bad job count", entry)
		}
		cfg.Jobs = n
	case "ranks":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("tenant: %q: bad rank count", entry)
		}
		cfg.Ranks = n
	case "hot":
		ts, fs, ok := strings.Cut(val, "x")
		if !ok {
			return fmt.Errorf("tenant: %q: want hot=<tenant>x<factor>", entry)
		}
		t, err1 := strconv.Atoi(ts)
		f, err2 := strconv.Atoi(fs)
		if err1 != nil || err2 != nil || t < 0 || f < 1 {
			return fmt.Errorf("tenant: %q: bad hot spec", entry)
		}
		if f == 1 { // factor 1 = no skew; normalize so String round-trips
			t, f = 0, 0
		}
		cfg.HotTenant, cfg.HotFactor = t, f
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("tenant: %q: bad seed: %v", entry, err)
		}
		cfg.Seed = n
	default:
		return fmt.Errorf("tenant: %q: unknown key %q", entry, key)
	}
	return nil
}

func parseArrival(val string) (Arrival, error) {
	kind, rest, _ := strings.Cut(val, ":")
	switch ArrivalKind(kind) {
	case ArrivalPoisson:
		rate, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return Arrival{}, fmt.Errorf("bad poisson rate: %v", err)
		}
		if !(rate > 0) || math.IsInf(rate, 0) {
			return Arrival{}, fmt.Errorf("poisson rate %v out of range", rate)
		}
		return Arrival{Kind: ArrivalPoisson, Rate: rate}, nil
	case ArrivalBurst:
		ss, es, ok := strings.Cut(rest, "@")
		if !ok {
			return Arrival{}, fmt.Errorf("want burst:<size>@<every>")
		}
		size, err := strconv.Atoi(ss)
		if err != nil || size < 1 {
			return Arrival{}, fmt.Errorf("bad burst size %q", ss)
		}
		every, err := time.ParseDuration(es)
		if err != nil || every <= 0 {
			return Arrival{}, fmt.Errorf("bad burst interval %q", es)
		}
		return Arrival{Kind: ArrivalBurst, Size: size, Every: every}, nil
	case ArrivalClosed:
		// workers x jobs [: think]
		body, ts, hasThink := strings.Cut(rest, ":")
		ws, js, ok := strings.Cut(body, "x")
		if !ok {
			return Arrival{}, fmt.Errorf("want closed:<workers>x<jobs>[:<think>]")
		}
		w, err1 := strconv.Atoi(ws)
		j, err2 := strconv.Atoi(js)
		if err1 != nil || err2 != nil || w < 1 || j < 1 {
			return Arrival{}, fmt.Errorf("bad closed shape %q", body)
		}
		a := Arrival{Kind: ArrivalClosed, Workers: w, JobsPerWorker: j}
		if hasThink {
			think, err := time.ParseDuration(ts)
			if err != nil || think < 0 {
				return Arrival{}, fmt.Errorf("bad think time %q", ts)
			}
			a.Think = think
		}
		return a, nil
	default:
		return Arrival{}, fmt.Errorf("unknown arrival kind %q", kind)
	}
}

// parseBytes parses a byte size with an optional K/M/G suffix (powers of
// 1024).
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	if n > math.MaxInt64/mult {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return n * mult, nil
}

// String renders the config in spec-grammar form (round-trips via
// ParseSpec for any valid config).
func (c Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tenants:%d,arrival=%s,policy=%s", c.Tenants, c.Arrival, c.Policy)
	if c.MaxGrants > 0 {
		fmt.Fprintf(&b, ",grants=%d", c.MaxGrants)
	}
	if c.CacheBytes > 0 {
		fmt.Fprintf(&b, ",cache=%d", c.CacheBytes)
	}
	if c.Arrival.Kind != ArrivalClosed {
		fmt.Fprintf(&b, ",jobs=%d", c.Jobs)
	}
	fmt.Fprintf(&b, ",ranks=%d", c.Ranks)
	if c.HotFactor > 1 {
		fmt.Fprintf(&b, ",hot=%dx%d", c.HotTenant, c.HotFactor)
	}
	fmt.Fprintf(&b, ",seed=%d", c.Seed)
	return b.String()
}

// String renders the arrival in spec-grammar form.
func (a Arrival) String() string {
	switch a.Kind {
	case ArrivalPoisson:
		return fmt.Sprintf("poisson:%g", a.Rate)
	case ArrivalBurst:
		return fmt.Sprintf("burst:%d@%s", a.Size, a.Every)
	case ArrivalClosed:
		if a.Think > 0 {
			return fmt.Sprintf("closed:%dx%d:%s", a.Workers, a.JobsPerWorker, a.Think)
		}
		return fmt.Sprintf("closed:%dx%d", a.Workers, a.JobsPerWorker)
	}
	return string(a.Kind)
}
