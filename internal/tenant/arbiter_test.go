package tenant

import (
	"strings"
	"testing"
	"time"

	"dualpar/internal/check"
	"dualpar/internal/obs"
)

func now0() time.Duration { return 0 }

func arbCfg(tenants int, policy Policy, grants int) Config {
	cfg := DefaultConfig()
	cfg.Tenants = tenants
	cfg.Policy = policy
	cfg.MaxGrants = grants
	return cfg
}

// acquire grabs a grant without a revoke callback (irrevocable), the
// simplest shape for bound tests.
func acquire(a *Arbiter, t int) *Grant { return a.TryAcquire(t, nil) }

func TestFCFSGlobalBound(t *testing.T) {
	a := NewArbiter(arbCfg(2, PolicyFCFS, 2), now0)
	g0, g1 := acquire(a, 0), acquire(a, 0)
	if g0 == nil || g1 == nil {
		t.Fatal("grants under the bound denied")
	}
	if acquire(a, 1) != nil {
		t.Fatal("grant over the global bound allowed")
	}
	g0.Release()
	if acquire(a, 1) == nil {
		t.Fatal("grant after release denied")
	}
	if a.Held() != 2 || a.HeldBy(0) != 1 || a.HeldBy(1) != 1 {
		t.Fatalf("held=%d by0=%d by1=%d", a.Held(), a.HeldBy(0), a.HeldBy(1))
	}
	if a.Grants(0) != 2 || a.Denies(1) != 1 || a.Releases(0) != 1 {
		t.Fatalf("stats grants0=%d denies1=%d releases0=%d",
			a.Grants(0), a.Denies(1), a.Releases(0))
	}
}

func TestUnboundedGrants(t *testing.T) {
	a := NewArbiter(arbCfg(1, PolicyFCFS, 0), now0)
	for i := 0; i < 100; i++ {
		if acquire(a, 0) == nil {
			t.Fatal("unbounded arbiter denied a grant")
		}
	}
}

// TestFairSharesAreWorkConserving pins the reservation semantics: a tenant
// may borrow past its share while the pool has room, and an
// under-reservation tenant reclaims a borrowed grant by revocation when
// the pool is full.
func TestFairSharesAreWorkConserving(t *testing.T) {
	a := NewArbiter(arbCfg(2, PolicyFair, 4), now0)
	if a.Cap(0) != 2 || a.Cap(1) != 2 {
		t.Fatalf("fair reservations %d/%d, want 2/2", a.Cap(0), a.Cap(1))
	}
	// Tenant 0 borrows the whole pool: revoke callbacks release their
	// grant, as core's do.
	revoked := -1
	for i := 0; i < 4; i++ {
		i := i
		var g *Grant
		g = a.TryAcquire(0, func() { revoked = i; g.Release() })
		if g == nil {
			t.Fatalf("work-conserving arbiter denied grant %d with the pool free", i)
		}
	}
	// Pool full, tenant 0 over its reservation: its next ask is denied...
	if a.TryAcquire(0, nil) != nil {
		t.Fatal("over-reservation tenant granted from a full pool")
	}
	// ...but under-reservation tenant 1 reclaims a borrowed slot.
	if a.TryAcquire(1, nil) == nil {
		t.Fatal("under-reservation tenant denied while tenant 0 held borrowed grants")
	}
	if revoked != 3 {
		t.Fatalf("revoked grant %d, want the newest (3)", revoked)
	}
	if a.Revokes(0) != 1 || a.HeldBy(0) != 3 || a.HeldBy(1) != 1 {
		t.Fatalf("revokes0=%d by0=%d by1=%d", a.Revokes(0), a.HeldBy(0), a.HeldBy(1))
	}
	// Tenant 1 is now at... still under its reservation of 2; a second ask
	// revokes another of tenant 0's borrowed grants.
	if a.TryAcquire(1, nil) == nil {
		t.Fatal("second reclaim denied")
	}
	// At its reservation, tenant 1 cannot preempt further: tenant 0 holds
	// exactly its share now.
	if a.TryAcquire(1, nil) != nil {
		t.Fatal("tenant 1 preempted tenant 0's reserved share")
	}
	if a.Denies(1) != 1 {
		t.Fatalf("denies1=%d, want 1", a.Denies(1))
	}
}

func TestPrioCapsAreWeighted(t *testing.T) {
	a := NewArbiter(arbCfg(3, PolicyPrio, 6), now0)
	// Weights 3,2,1 over 6 grants = reservations 3,2,1.
	for tn, want := range []int{3, 2, 1} {
		if a.Cap(tn) != want {
			t.Errorf("prio cap[%d] = %d, want %d", tn, a.Cap(tn), want)
		}
	}
}

func TestApportionSumsExactly(t *testing.T) {
	for _, tc := range []struct {
		total   int64
		weights []int64
		want    []int64
	}{
		{6, []int64{3, 2, 1}, []int64{3, 2, 1}},
		{7, []int64{1, 1, 1}, []int64{3, 2, 2}},  // remainder to lower index
		{2, []int64{5, 1, 1}, []int64{2, 0, 0}},  // floor can strand the tail
		{10, []int64{1, 1, 1}, []int64{4, 3, 3}}, // 10/3 with one leftover
	} {
		got := apportion(tc.total, tc.weights)
		var sum int64
		for i, s := range got {
			sum += s
			if s != tc.want[i] {
				t.Errorf("apportion(%d,%v) = %v, want %v", tc.total, tc.weights, got, tc.want)
				break
			}
		}
		if sum != tc.total {
			t.Errorf("apportion(%d,%v) sums to %d", tc.total, tc.weights, sum)
		}
	}
}

func TestQuotaPartitioning(t *testing.T) {
	cfg := arbCfg(3, PolicyFair, 0)
	cfg.CacheBytes = 3 << 20
	a := NewArbiter(cfg, now0)
	for tn := 0; tn < 3; tn++ {
		q := a.Quota(tn)
		if q == nil || q.Limit() != 1<<20 {
			t.Fatalf("tenant %d quota %v, want 1MiB each", tn, q)
		}
	}
	// Priority weights the partitions like the grant reservations.
	cfg.Policy = PolicyPrio
	a = NewArbiter(cfg, now0)
	total := int64(0)
	for tn := 0; tn < 3; tn++ {
		total += a.Quota(tn).Limit()
		if tn > 0 && a.Quota(tn).Limit() >= a.Quota(tn-1).Limit() {
			t.Fatalf("prio partitions not decreasing: %d then %d",
				a.Quota(tn-1).Limit(), a.Quota(tn).Limit())
		}
	}
	if total != cfg.CacheBytes {
		t.Fatalf("partitions sum to %d, want %d", total, cfg.CacheBytes)
	}
	// No partitioning configured -> nil quotas.
	if NewArbiter(arbCfg(2, PolicyFair, 0), now0).Quota(1) != nil {
		t.Fatal("quota without CacheBytes")
	}
}

func TestArbiterAuditOverRelease(t *testing.T) {
	aud := check.New(1, "arbiter test")
	aud.SetArtifactDir(t.TempDir())
	a := NewArbiter(arbCfg(1, PolicyFCFS, 2), now0)
	a.RegisterAudit(aud)
	g := acquire(a, 0)
	g.Release()
	if err := aud.Err(); err != nil {
		t.Fatalf("balanced acquire/release violated: %v", err)
	}
	g.Release()
	err := aud.Err()
	if err == nil {
		t.Fatal("double release raised no violation")
	}
	if !strings.Contains(err.Error(), "tenant") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

// TestArbiterAuditRevokeMustRelease pins the revoke contract: a callback
// that returns without releasing its grant is an audit violation, and the
// claimant is denied rather than over-admitted.
func TestArbiterAuditRevokeMustRelease(t *testing.T) {
	aud := check.New(1, "arbiter test")
	aud.SetArtifactDir(t.TempDir())
	a := NewArbiter(arbCfg(2, PolicyFair, 2), now0)
	a.RegisterAudit(aud)
	a.TryAcquire(0, func() {}) // broken holder: never releases
	a.TryAcquire(0, func() {})
	if a.TryAcquire(1, nil) != nil {
		t.Fatal("claimant granted though the revoke freed nothing")
	}
	if err := aud.Err(); err == nil || !strings.Contains(err.Error(), "revoke") {
		t.Fatalf("broken revoke callback not flagged: %v", err)
	}
}

func TestArbiterLeakProbe(t *testing.T) {
	aud := check.New(1, "arbiter test")
	aud.SetArtifactDir(t.TempDir())
	a := NewArbiter(arbCfg(2, PolicyFCFS, 4), now0)
	a.RegisterAudit(aud)
	aud.RegisterFinalProbe("tenant.grants.leak", a.CheckDrained)
	acquire(a, 1)
	aud.RunProbes() // steady-state probes are clean with a grant held
	if err := aud.Err(); err != nil {
		t.Fatalf("steady-state probes: %v", err)
	}
	aud.RunFinalProbes()
	err := aud.Err()
	if err == nil {
		t.Fatal("leaked grant not caught at exit")
	}
	if !strings.Contains(err.Error(), "leaked") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

func TestArbiterCheckCatchesDrift(t *testing.T) {
	a := NewArbiter(arbCfg(2, PolicyFCFS, 4), now0)
	acquire(a, 0)
	if err := a.Check(); err != nil {
		t.Fatalf("consistent state: %v", err)
	}
	a.perTenant[1] += 2 // simulate a bookkeeping bug
	if err := a.Check(); err == nil {
		t.Fatal("ledger drift not caught")
	}
}

// TestArbiterObs pins the tenant.* observability surface: instants on the
// "tenant" track and registry counters for grant/deny/release/revoke.
func TestArbiterObs(t *testing.T) {
	o := obs.NewCollector()
	a := NewArbiter(arbCfg(2, PolicyFair, 2), now0)
	a.SetObs(o)
	var g0 *Grant
	g0 = a.TryAcquire(0, func() { g0.Release() })
	a.TryAcquire(0, nil)
	a.TryAcquire(0, nil) // denied: pool full, tenant 0 over reservation
	a.TryAcquire(1, nil) // revokes g0, then grants
	m := o.Metrics()
	if m.Counter("tenant.grants").Value() != 3 ||
		m.Counter("tenant.denies").Value() != 1 ||
		m.Counter("tenant.releases").Value() != 1 ||
		m.Counter("tenant.revokes").Value() != 1 {
		t.Fatalf("counters grants=%d denies=%d releases=%d revokes=%d, want 3/1/1/1",
			m.Counter("tenant.grants").Value(),
			m.Counter("tenant.denies").Value(),
			m.Counter("tenant.releases").Value(),
			m.Counter("tenant.revokes").Value())
	}
	names := map[string]bool{}
	for _, in := range o.Instants() {
		names[in.Name] = true
	}
	for _, want := range []string{"tenant.grant", "tenant.deny", "tenant.release", "tenant.revoke"} {
		if !names[want] {
			t.Errorf("missing instant %s (have %v)", want, names)
		}
	}
}
