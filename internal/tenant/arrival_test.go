package tenant

import (
	"math"
	"reflect"
	"testing"
	"time"
)

// TestScheduleReproducible pins the generator's core contract: the same
// config yields the identical schedule, and a different seed yields a
// different one.
func TestScheduleReproducible(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tenants = 3
	cfg.Jobs = 50
	a, b := Schedule(cfg), Schedule(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two schedules from the same config differ")
	}
	cfg.Seed++
	if reflect.DeepEqual(a, Schedule(cfg)) {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// TestPartialDrainSuffix pins the replay property: draining k jobs from one
// generator and regenerating from the same config yields the identical
// suffix after draining the same k — a driver can restart mid-stream and
// continue exactly where it left off.
func TestPartialDrainSuffix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tenants = 2
	cfg.Jobs = 40
	a := NewGenerator(cfg)
	const k = 17
	for i := 0; i < k; i++ {
		if _, ok := a.Next(); !ok {
			t.Fatalf("drained early at %d", i)
		}
	}
	b := NewGenerator(cfg)
	for i := 0; i < k; i++ {
		b.Next()
	}
	if a.Remaining() != b.Remaining() {
		t.Fatalf("remaining %d vs %d after equal drains", a.Remaining(), b.Remaining())
	}
	for {
		ja, oka := a.Next()
		jb, okb := b.Next()
		if oka != okb {
			t.Fatal("streams ended at different points")
		}
		if !oka {
			break
		}
		if ja != jb {
			t.Fatalf("suffix diverged: %+v vs %+v", ja, jb)
		}
	}
}

// TestPoissonMeanConverges is the statistical property: with a fixed seed,
// per-tenant inter-arrival means converge to 1/rate. Gated behind -short
// because it draws a large sample.
func TestPoissonMeanConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	cfg := DefaultConfig()
	cfg.Tenants = 4
	cfg.Jobs = 4000
	cfg.Arrival = Arrival{Kind: ArrivalPoisson, Rate: 200}
	jobs := Schedule(cfg)
	last := make(map[int]time.Duration)
	sum := make(map[int]time.Duration)
	n := make(map[int]int)
	for _, j := range jobs {
		sum[j.Tenant] += j.At - last[j.Tenant]
		last[j.Tenant] = j.At
		n[j.Tenant]++
	}
	want := 1.0 / cfg.Arrival.Rate
	for tn := 0; tn < cfg.Tenants; tn++ {
		mean := sum[tn].Seconds() / float64(n[tn])
		// Standard error is (1/rate)/sqrt(n) ~ 0.008/rate; 5% is >6 sigma,
		// so this cannot flake and still catches rate-off-by-2x bugs.
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("tenant %d mean inter-arrival %.6fs, want %.6fs +-5%%", tn, mean, want)
		}
	}
}

// TestScheduleOrdering pins the merge order: non-decreasing At with
// (tenant, index) tiebreaks, and per-tenant indices strictly increasing.
func TestScheduleOrdering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tenants = 3
	cfg.Jobs = 30
	jobs := Schedule(cfg)
	nextIdx := make(map[int]int)
	for i, j := range jobs {
		if i > 0 {
			p := jobs[i-1]
			if j.At < p.At || (j.At == p.At && (j.Tenant < p.Tenant ||
				(j.Tenant == p.Tenant && j.Index < p.Index))) {
				t.Fatalf("order violated at %d: %+v after %+v", i, j, p)
			}
		}
		if j.Index != nextIdx[j.Tenant] {
			t.Fatalf("tenant %d index %d, want %d", j.Tenant, j.Index, nextIdx[j.Tenant])
		}
		nextIdx[j.Tenant]++
	}
}

func TestBurstArrival(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = 25
	cfg.Arrival = Arrival{Kind: ArrivalBurst, Size: 10, Every: time.Second}
	jobs := Schedule(cfg)
	if len(jobs) != 25 {
		t.Fatalf("got %d jobs, want 25", len(jobs))
	}
	for i, j := range jobs {
		want := time.Second * time.Duration(i/10)
		if j.At != want {
			t.Fatalf("job %d at %v, want %v", i, j.At, want)
		}
	}
}

func TestHotTenantSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tenants = 2
	cfg.Jobs = 10
	cfg.HotTenant, cfg.HotFactor = 0, 3
	counts := make(map[int]int)
	for _, j := range Schedule(cfg) {
		counts[j.Tenant]++
	}
	if counts[0] != 30 || counts[1] != 10 {
		t.Fatalf("job counts %v, want tenant 0: 30, tenant 1: 10", counts)
	}
}

func TestClosedLoopWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Arrival = Arrival{Kind: ArrivalClosed, Workers: 4, JobsPerWorker: 3, Think: time.Millisecond}
	jobs := Schedule(cfg)
	if len(jobs) != 12 {
		t.Fatalf("got %d jobs, want 12", len(jobs))
	}
	perWorker := make(map[int]int)
	for _, j := range jobs {
		if j.Worker < 0 || j.Worker >= 4 {
			t.Fatalf("job worker %d out of range", j.Worker)
		}
		if j.At != 0 {
			t.Fatalf("closed-loop job carries arrival time %v", j.At)
		}
		perWorker[j.Worker]++
	}
	for w, n := range perWorker {
		if n != 3 {
			t.Fatalf("worker %d has %d jobs, want 3", w, n)
		}
	}
}

// TestMixDraws pins that the class/mode mixes roughly match the configured
// proportions on a large fixed-seed sample (deterministic, no flake).
func TestMixDraws(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = 2000
	var small, dualpar int
	jobs := Schedule(cfg)
	for _, j := range jobs {
		if j.Class == "s" {
			small++
		}
		if j.Mode == "dualpar" {
			dualpar++
		}
	}
	if f := float64(small) / float64(len(jobs)); math.Abs(f-classSmallP) > 0.05 {
		t.Errorf("small-class fraction %.3f, want ~%.2f", f, classSmallP)
	}
	if f := float64(dualpar) / float64(len(jobs)); math.Abs(f-modeDualParP) > 0.05 {
		t.Errorf("dualpar fraction %.3f, want ~%.2f", f, modeDualParP)
	}
}
