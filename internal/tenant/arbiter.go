package tenant

import (
	"fmt"
	"time"

	"dualpar/internal/check"
	"dualpar/internal/memcache"
	"dualpar/internal/obs"
)

// Arbiter is the cluster-wide admission controller for data-driven
// execution. The per-app EMC still decides *when* a program would benefit
// from data-driven mode (paper §IV-B: I/O ratio and access-cost
// improvement over sampled slots); the arbiter decides whether the cluster
// can *afford* another grant right now. A grant is held from the moment a
// program switches data-driven until it switches back, ends, or is revoked;
// denials are not queued — the EMC's slot sampling naturally retries on the
// next slot boundary, so the arbiter stays a pure, instantly-answering
// state machine and the simulation schedule is independent of arbiter
// internals.
//
// Policies (Config.Policy) shape per-tenant *reservations* over the global
// MaxGrants bound. The arbiter is work-conserving: a tenant may borrow
// beyond its reservation while the pool has room, but when the pool is
// full an under-reservation tenant reclaims a borrowed grant from the most
// over-reservation holder (its program reverts to conventional mode
// mid-run and finishes without the grant). FCFS reserves nothing, so it
// never revokes. CacheBytes additionally partitions global-cache capacity
// into per-tenant memcache quotas so one tenant's grants cannot evict
// another tenant's cached data.
type Arbiter struct {
	cfg  Config
	now  func() time.Duration
	obs  *obs.Collector
	led  check.Ledger
	held *check.Gauge // total grants held; bound = MaxGrants

	perTenant []int
	caps      []int      // per-tenant reservation; 0 = none (fcfs)
	holds     [][]*Grant // live grants per tenant, oldest first
	quotas    []*memcache.Quota

	statGrants   []int64
	statDenies   []int64
	statReleases []int64
	statRevokes  []int64
}

// Grant is one held admission. Release returns it to the pool; the arbiter
// may instead reclaim it first through the revoke callback registered at
// acquisition, in which case the holder must release it before the
// callback returns.
type Grant struct {
	a        *Arbiter
	tenant   int
	revoke   func()
	released bool
}

// Tenant reports which tenant holds the grant.
func (g *Grant) Tenant() int { return g.tenant }

// Release returns the grant. Releasing twice is an audit violation.
func (g *Grant) Release() { g.a.release(g) }

// NewArbiter builds the arbiter for cfg; now supplies virtual time for
// tenant.* instants (pass the kernel's Now). Panics on invalid config.
func NewArbiter(cfg Config, now func() time.Duration) *Arbiter {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	a := &Arbiter{
		cfg:          cfg,
		now:          now,
		held:         check.NewGauge(nil, "tenant.grants.held", int64(cfg.MaxGrants)),
		perTenant:    make([]int, cfg.Tenants),
		caps:         grantCaps(cfg),
		holds:        make([][]*Grant, cfg.Tenants),
		statGrants:   make([]int64, cfg.Tenants),
		statDenies:   make([]int64, cfg.Tenants),
		statReleases: make([]int64, cfg.Tenants),
		statRevokes:  make([]int64, cfg.Tenants),
	}
	if cfg.CacheBytes > 0 {
		a.quotas = make([]*memcache.Quota, cfg.Tenants)
		for t, share := range apportion(cfg.CacheBytes, policyWeights(cfg)) {
			a.quotas[t] = memcache.NewQuota(fmt.Sprintf("tenant%d", t), share)
		}
	}
	return a
}

// policyWeights returns each tenant's share weight under cfg.Policy:
// priority is a strict ladder (tenant 0 weighs Tenants, the last weighs 1);
// fair and fcfs weigh everyone equally.
func policyWeights(cfg Config) []int64 {
	w := make([]int64, cfg.Tenants)
	for t := range w {
		if cfg.Policy == PolicyPrio {
			w[t] = int64(cfg.Tenants - t)
		} else {
			w[t] = 1
		}
	}
	return w
}

// grantCaps derives per-tenant reservations from the policy. FCFS has none
// (first come, first served against the global bound); fair and prio
// apportion MaxGrants by weight. A reservation is not a ceiling — the
// arbiter is work-conserving and lends idle capacity freely — it is the
// share a tenant can always claim back, by revocation if necessary.
func grantCaps(cfg Config) []int {
	caps := make([]int, cfg.Tenants)
	if cfg.MaxGrants == 0 || cfg.Policy == PolicyFCFS {
		return caps // all uncapped
	}
	shares := apportion(int64(cfg.MaxGrants), policyWeights(cfg))
	for t, s := range shares {
		c := int(s)
		if c < 1 {
			c = 1 // even the lowest priority tenant can make progress
		}
		caps[t] = c
	}
	return caps
}

// apportion divides total across weights by the largest-remainder method:
// exact proportional shares floored, leftover units handed out by largest
// fractional remainder (ties to the lower index). The shares always sum to
// total exactly.
func apportion(total int64, weights []int64) []int64 {
	var wsum int64
	for _, w := range weights {
		wsum += w
	}
	shares := make([]int64, len(weights))
	type frac struct {
		idx int
		rem int64 // numerator of the fractional part, denominator wsum
	}
	fracs := make([]frac, len(weights))
	var given int64
	for i, w := range weights {
		shares[i] = total * w / wsum
		given += shares[i]
		fracs[i] = frac{idx: i, rem: total * w % wsum}
	}
	// Stable selection sort over the handful of tenants: largest remainder
	// first, lower index wins ties.
	for given < total {
		best := -1
		for i := range fracs {
			if fracs[i].rem < 0 {
				continue // already topped up
			}
			if best < 0 || fracs[i].rem > fracs[best].rem {
				best = i
			}
		}
		shares[fracs[best].idx]++
		fracs[best].rem = -1
		given++
	}
	return shares
}

// SetObs attaches the observability collector: grants, denials, and
// releases then emit tenant.* instants on the "tenant" track and maintain
// tenant.* registry metrics.
func (a *Arbiter) SetObs(o *obs.Collector) { a.obs = o }

// RegisterAudit attaches the audit ledger and registers the arbiter's
// invariant probes: the grant gauge (bound MaxGrants, never negative), the
// per-tenant ledger consistency check, and one probe per tenant quota. The
// caller separately registers a final leaked-grant probe once it knows the
// run is supposed to end with all jobs complete.
func (a *Arbiter) RegisterAudit(aud *check.Auditor) {
	a.led = aud
	a.held.SetLedger(aud)
	aud.RegisterProbe("tenant.arbiter", a.Check)
	for _, q := range a.quotas {
		q := q
		aud.RegisterProbe("tenant.quota."+q.Key(), q.Check)
	}
}

// TryAcquire asks for a data-driven grant for tenant t. It answers
// immediately: a non-nil Grant reserves one slot (return it with
// Grant.Release); nil means the pool is exhausted and t could not reclaim
// capacity — the caller stays in conventional mode and may simply ask
// again later. revoke, if non-nil, is invoked (synchronously, from inside
// another tenant's TryAcquire) should the arbiter later reclaim this
// grant; the callback must release the grant before returning. A grant
// acquired with a nil revoke is irrevocable.
func (a *Arbiter) TryAcquire(t int, revoke func()) *Grant {
	if a.cfg.MaxGrants > 0 && a.held.Value() >= int64(a.cfg.MaxGrants) {
		if !a.revokeFor(t) {
			why := "global"
			if a.caps[t] > 0 && a.perTenant[t] >= a.caps[t] {
				why = "cap"
			}
			a.deny(t, why)
			return nil
		}
	}
	g := &Grant{a: a, tenant: t, revoke: revoke}
	a.holds[t] = append(a.holds[t], g)
	a.perTenant[t]++
	a.held.Add(1)
	a.statGrants[t]++
	if a.obs.Enabled() {
		a.obs.Instant("tenant.grant", "tenant", a.now(),
			obs.I64("tenant", int64(t)), obs.I64("held", a.held.Value()))
		m := a.obs.Metrics()
		m.Counter("tenant.grants").Add(1)
		m.Gauge("tenant.held").Set(float64(a.held.Value()))
	}
	return g
}

// revokeFor frees one grant slot for under-reservation tenant t by
// revoking the newest revocable grant of the most over-reservation tenant.
// It reports whether a slot was freed. The victim must hold strictly more
// than its reservation, so a tenant within its share is never preempted
// and two under-reservation tenants cannot ping-pong each other's grants.
func (a *Arbiter) revokeFor(t int) bool {
	if a.caps[t] == 0 || a.perTenant[t] >= a.caps[t] {
		return false // t has no reservation, or has already used it up
	}
	victim, over := -1, 0
	for u := range a.perTenant {
		if o := a.perTenant[u] - a.caps[u]; o > over && a.revocable(u) != nil {
			victim, over = u, o
		}
	}
	if victim < 0 {
		return false
	}
	g := a.revocable(victim)
	a.statRevokes[victim]++
	if a.obs.Enabled() {
		a.obs.Instant("tenant.revoke", "tenant", a.now(),
			obs.I64("victim", int64(victim)), obs.I64("claimant", int64(t)))
		a.obs.Metrics().Counter("tenant.revokes").Add(1)
	}
	g.revoke()
	if a.led != nil {
		a.led.Checkf(g.released, "tenant.revoke",
			"tenant %d's revoke callback returned without releasing the grant", victim)
	}
	return g.released
}

// revocable returns tenant u's newest grant that carries a revoke
// callback, or nil.
func (a *Arbiter) revocable(u int) *Grant {
	hs := a.holds[u]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].revoke != nil {
			return hs[i]
		}
	}
	return nil
}

func (a *Arbiter) deny(t int, why string) {
	a.statDenies[t]++
	if a.obs.Enabled() {
		a.obs.Instant("tenant.deny", "tenant", a.now(),
			obs.I64("tenant", int64(t)), obs.Str("why", why))
		a.obs.Metrics().Counter("tenant.denies").Add(1)
	}
}

// release returns grant g (program left data-driven mode, ended, or is
// being revoked). Releasing twice is an audit violation.
func (a *Arbiter) release(g *Grant) {
	t := g.tenant
	if g.released {
		if a.led != nil {
			a.led.Checkf(false, "tenant.release",
				"tenant %d released the same grant twice", t)
		}
		return
	}
	g.released = true
	hs := a.holds[t]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i] == g {
			a.holds[t] = append(hs[:i], hs[i+1:]...)
			break
		}
	}
	a.perTenant[t]--
	a.held.Add(-1)
	a.statReleases[t]++
	if a.led != nil {
		a.led.Checkf(a.perTenant[t] >= 0, "tenant.release",
			"tenant %d released more grants than it held (%d)", t, a.perTenant[t])
	}
	if a.obs.Enabled() {
		a.obs.Instant("tenant.release", "tenant", a.now(),
			obs.I64("tenant", int64(t)), obs.I64("held", a.held.Value()))
		m := a.obs.Metrics()
		m.Counter("tenant.releases").Add(1)
		m.Gauge("tenant.held").Set(float64(a.held.Value()))
	}
}

// Quota returns tenant t's cache partition, or nil when CacheBytes is 0
// (no partitioning) — the nil is safe to hand straight to
// memcache.Cache.SetQuota.
func (a *Arbiter) Quota(t int) *memcache.Quota {
	if a.quotas == nil {
		return nil
	}
	return a.quotas[t]
}

// Tenants, Held, HeldBy, Cap and the stat accessors expose arbiter state
// for reporting; all are pure reads. Cap is the tenant's reservation, not
// a ceiling — work conservation lets holds exceed it while the pool has
// room.
func (a *Arbiter) Tenants() int         { return a.cfg.Tenants }
func (a *Arbiter) Held() int64          { return a.held.Value() }
func (a *Arbiter) HeldBy(t int) int     { return a.perTenant[t] }
func (a *Arbiter) Cap(t int) int        { return a.caps[t] }
func (a *Arbiter) Grants(t int) int64   { return a.statGrants[t] }
func (a *Arbiter) Denies(t int) int64   { return a.statDenies[t] }
func (a *Arbiter) Releases(t int) int64 { return a.statReleases[t] }
func (a *Arbiter) Revokes(t int) int64  { return a.statRevokes[t] }

// Check is the arbiter's audit probe: the grant ledger must be internally
// consistent (total = sum of per-tenant holds = live handles, nothing
// negative, global bound respected). The gauge checks the bound on every
// mutation already; Check re-verifies from the per-tenant side so a
// miscounted tenant cannot hide inside a correct total. Reservations are
// deliberately not re-checked here — work conservation makes over-
// reservation holding legal.
func (a *Arbiter) Check() error {
	var sum int
	for t, h := range a.perTenant {
		if h < 0 {
			return fmt.Errorf("tenant %d holds %d grants", t, h)
		}
		if len(a.holds[t]) != h {
			return fmt.Errorf("tenant %d ledger says %d grants but %d handles live", t, h, len(a.holds[t]))
		}
		sum += h
	}
	if int64(sum) != a.held.Value() {
		return fmt.Errorf("grant ledger %d != %d across tenants", a.held.Value(), sum)
	}
	if a.cfg.MaxGrants > 0 && sum > a.cfg.MaxGrants {
		return fmt.Errorf("%d grants held over bound %d", sum, a.cfg.MaxGrants)
	}
	return nil
}

// CheckDrained is the end-of-run leak probe: once every job has ended,
// no grants may remain held. Register it as a final probe on runs that are
// supposed to finish all their work.
func (a *Arbiter) CheckDrained() error {
	if a.held.Value() != 0 {
		return fmt.Errorf("%d grants leaked at exit (per tenant: %v)", a.held.Value(), a.perTenant)
	}
	return nil
}
