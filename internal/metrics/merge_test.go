package metrics

import (
	"math/rand"
	"testing"
)

// TestHistogramMergeEqualsCombinedObserve: merging shard histograms must
// reproduce exactly what one histogram observing every value would hold —
// the property the parallel sweep relies on when per-cell statistics are
// folded together.
func TestHistogramMergeEqualsCombinedObserve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shards := make([]*Histogram, 4)
	for i := range shards {
		shards[i] = NewHistogram("shard")
	}
	whole := NewHistogram("whole")
	for i := 0; i < 10000; i++ {
		v := rng.ExpFloat64() * 1e-3 // latency-like spread across buckets
		shards[i%len(shards)].Observe(v)
		whole.Observe(v)
	}
	merged := NewHistogram("merged")
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != whole.Count() {
		t.Errorf("count %d, want %d", merged.Count(), whole.Count())
	}
	if merged.Sum() != whole.Sum() {
		// Same values added in a different order; float sums can differ in
		// the last ulp, but these are all positive and modest — require
		// near-exact agreement.
		if d := merged.Sum() - whole.Sum(); d > 1e-9 || d < -1e-9 {
			t.Errorf("sum %g, want %g", merged.Sum(), whole.Sum())
		}
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Errorf("range [%g, %g], want [%g, %g]", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if got, want := merged.Percentile(p), whole.Percentile(p); got != want {
			t.Errorf("p%.0f = %g, want %g (buckets should match exactly)", p, got, want)
		}
	}
}

// TestHistogramMergeEdgeCases: empty/nil operands and extreme tracking
// when one side is empty.
func TestHistogramMergeEdgeCases(t *testing.T) {
	a := NewHistogram("a")
	a.Merge(nil)              // no-op
	a.Merge(NewHistogram("")) // empty: no-op
	if a.Count() != 0 {
		t.Fatalf("count %d after no-op merges, want 0", a.Count())
	}

	b := NewHistogram("b")
	b.Observe(3)
	a.Merge(b) // into empty: adopts b's extremes
	if a.Count() != 1 || a.Min() != 3 || a.Max() != 3 {
		t.Errorf("after merge into empty: count=%d min=%g max=%g, want 1/3/3", a.Count(), a.Min(), a.Max())
	}

	var nilH *Histogram
	nilH.Merge(b) // nil receiver: no-op, no panic
	if nilH.Count() != 0 {
		t.Error("nil receiver mutated")
	}

	c := NewHistogram("c")
	c.Observe(10)
	c.Merge(b)
	if c.Min() != 3 || c.Max() != 10 || c.Count() != 2 {
		t.Errorf("merge extremes: count=%d min=%g max=%g, want 2/3/10", c.Count(), c.Min(), c.Max())
	}

	// Merging a histogram into itself doubles it consistently.
	d := NewHistogram("d")
	d.Observe(1)
	d.Observe(2)
	d.Merge(d)
	if d.Count() != 4 || d.Sum() != 6 || d.Min() != 1 || d.Max() != 2 {
		t.Errorf("self-merge: count=%d sum=%g min=%g max=%g, want 4/6/1/2", d.Count(), d.Sum(), d.Min(), d.Max())
	}
}
