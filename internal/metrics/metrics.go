// Package metrics collects time series from a running simulation and
// renders them as CSV or quick ASCII charts — the machinery behind the
// reproduction of the paper's throughput and seek-distance plots.
package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"dualpar/internal/sim"
)

// Point is one sample.
type Point struct {
	T time.Duration
	V float64
}

// Series is a named sequence of samples.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Mean returns the average sample value.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Max returns the largest sample value.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Window returns the mean over samples with from <= T < to. Points must be
// in non-decreasing T order (true for every sampler in this package, which
// appends under a monotonic virtual clock); the bounds are located by
// binary search, so long series pay O(log n + window) instead of O(n).
func (s *Series) Window(from, to time.Duration) float64 {
	lo := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= from })
	hi := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= to })
	if lo >= hi {
		return 0
	}
	var sum float64
	for _, p := range s.Points[lo:hi] {
		sum += p.V
	}
	return sum / float64(hi-lo)
}

// Sample polls fn every interval until `until`, recording one point per
// poll. The chain self-terminates, keeping simulations drainable.
func Sample(k *sim.Kernel, name string, every, until time.Duration, fn func() float64) *Series {
	s := &Series{Name: name}
	var tick func()
	tick = func() {
		s.Add(k.Now(), fn())
		if k.Now()+every <= until {
			k.After(every, tick)
		}
	}
	k.After(every, tick)
	return s
}

// RateSampler converts a monotonically growing counter into a rate series
// (e.g. bytes served → MB/s per window). The counter is snapshotted when the
// sampler is armed, so the first window reports a true rate even when the
// sampler is attached to a counter that is already nonzero (mid-run).
func RateSampler(k *sim.Kernel, name string, every, until time.Duration, counter func() int64, scale float64) *Series {
	last := counter()
	return Sample(k, name, every, until, func() float64 {
		cur := counter()
		delta := cur - last
		last = cur
		return float64(delta) / every.Seconds() * scale
	})
}

// WriteCSV emits aligned series as "time_s,<name>,<name>..." rows. Series
// sampled on different grids are matched by nearest preceding sample.
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	// Union of timestamps.
	seen := map[time.Duration]bool{}
	var ts []time.Duration
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.T] {
				seen[p.T] = true
				ts = append(ts, p.T)
			}
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	if _, err := fmt.Fprintf(w, "time_s,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	idx := make([]int, len(series))
	for _, t := range ts {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%.3f", t.Seconds()))
		for i, s := range series {
			for idx[i]+1 < len(s.Points) && s.Points[idx[i]+1].T <= t {
				idx[i]++
			}
			if len(s.Points) == 0 || s.Points[idx[i]].T > t {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%.3f", s.Points[idx[i]].V))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIChart renders a series as a rough terminal chart of the given width
// and height.
func ASCIIChart(s *Series, width, height int) string {
	if len(s.Points) == 0 || width <= 0 || height <= 0 {
		return "(no data)\n"
	}
	maxV := s.Max()
	if maxV == 0 {
		maxV = 1
	}
	minT, maxT := s.Points[0].T, s.Points[len(s.Points)-1].T
	span := maxT - minT
	if span == 0 {
		span = 1
	}
	cols := make([]float64, width)
	counts := make([]int, width)
	for _, p := range s.Points {
		c := int(float64(p.T-minT) / float64(span) * float64(width-1))
		cols[c] += p.V
		counts[c]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (max %.1f)\n", s.Name, maxV)
	for row := height; row >= 1; row-- {
		thresh := maxV * float64(row) / float64(height)
		b.WriteString("|")
		for c := 0; c < width; c++ {
			v := 0.0
			if counts[c] > 0 {
				v = cols[c] / float64(counts[c])
			}
			if counts[c] > 0 && v >= thresh {
				b.WriteString("#")
			} else {
				b.WriteString(" ")
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "+%s\n %-8s%*s\n", strings.Repeat("-", width),
		fmt.Sprintf("%.1fs", minT.Seconds()), width-8, fmt.Sprintf("%.1fs", maxT.Seconds()))
	return b.String()
}

// Table is a simple aligned-text table builder for experiment outputs.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// WriteCSVTable emits the table as RFC-4180 CSV (cells containing commas,
// quotes, or newlines are quoted).
func (t *Table) WriteCSVTable(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSONTable emits the table as {"header":[...],"rows":[[...],...]},
// trailing-newline terminated. Rows is always an array (never null).
func (t *Table) WriteJSONTable(w io.Writer) error {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	header := t.Header
	if header == nil {
		header = []string{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{header, rows})
}
