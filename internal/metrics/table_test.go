package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "22")
	got := tab.String()
	want := "name   value\n-----  -----\nalpha  1    \nb      22   \n"
	if got != want {
		t.Errorf("String():\n%q\nwant:\n%q", got, want)
	}
}

func TestWriteCSVTable(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.AddRow("plain", "1")
	tab.AddRow("with,comma", "2")
	tab.AddRow("with \"quote\"", "3")
	var buf bytes.Buffer
	if err := tab.WriteCSVTable(&buf); err != nil {
		t.Fatal(err)
	}
	want := "name,value\nplain,1\n\"with,comma\",2\n\"with \"\"quote\"\"\",3\n"
	if buf.String() != want {
		t.Errorf("csv:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestWriteJSONTable(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tab.WriteJSONTable(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Header) != 2 || doc.Header[0] != "a" {
		t.Errorf("header = %v", doc.Header)
	}
	if len(doc.Rows) != 1 || doc.Rows[0][1] != "2" {
		t.Errorf("rows = %v", doc.Rows)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("JSON output not newline-terminated")
	}
}

// TestWriteJSONTableEmpty: an empty table must still emit arrays, not null —
// downstream consumers index header/rows unconditionally.
func TestWriteJSONTableEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Table{}).WriteJSONTable(&buf); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(buf.String())
	if got != `{"header":[],"rows":[]}` {
		t.Errorf("empty table = %s", got)
	}
}

// TestCSVDeterminism: two renders of the same table are byte-identical.
func TestCSVDeterminism(t *testing.T) {
	tab := &Table{Header: []string{"x"}}
	tab.AddRow("y")
	var a, b bytes.Buffer
	if err := tab.WriteCSVTable(&a); err != nil {
		t.Fatal(err)
	}
	if err := tab.WriteCSVTable(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("CSV render not deterministic")
	}
}
