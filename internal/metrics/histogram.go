package metrics

import (
	"fmt"
	"math"
)

// Histogram is a log-bucketed distribution of non-negative values (latency
// in seconds, sizes in bytes). Buckets double in width: bucket 0 holds
// values <= histMinValue, bucket i holds (histMinValue*2^(i-1),
// histMinValue*2^i], and the final bucket absorbs everything larger. The
// exact min, max, sum, and count are tracked alongside, so Percentile
// estimates are clamped to the observed range (a single-sample histogram
// reports that sample for every percentile).
type Histogram struct {
	Name string

	counts   [histBuckets + 2]int64
	count    int64
	sum      float64
	min, max float64
}

const (
	// histMinValue is the smallest resolvable value: everything at or below
	// it lands in bucket 0. 1 ns when values are seconds.
	histMinValue = 1e-9
	// histBuckets is the number of doubling buckets after bucket 0;
	// histMinValue * 2^64 ≈ 1.8e10 covers any simulated latency or size.
	histBuckets = 64
)

// NewHistogram creates an empty histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{Name: name}
}

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v <= histMinValue {
		return 0
	}
	b := int(math.Ceil(math.Log2(v / histMinValue)))
	if b < 1 {
		b = 1
	}
	if b > histBuckets+1 {
		b = histBuckets + 1
	}
	return b
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) float64 {
	if i <= 0 {
		return histMinValue
	}
	return histMinValue * math.Pow(2, float64(i))
}

// Observe records one value. Negative values clamp to zero. Safe on a nil
// receiver (disabled instrumentation observes into nothing).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the exact sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean reports the exact mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max report the exact observed extremes (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

func (h *Histogram) Max() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.max
}

// Merge folds other's observations into h, bucket by bucket, preserving
// the exact count, sum, and extremes — merging per-cell histograms after a
// parallel sweep yields the same statistics as observing every value into
// one histogram (buckets are exact; only Percentile interpolation was ever
// approximate). A nil or empty other is a no-op; merging into a nil
// receiver is a no-op (disabled instrumentation).
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Percentile estimates the p-th percentile (p in [0, 100]) by linear
// interpolation within the containing bucket, clamped to the exact observed
// [min, max]. Empty histograms report 0.
func (h *Histogram) Percentile(p float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := p / 100 * float64(h.count)
	var cum int64
	for i := 0; i < len(h.counts); i++ {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lo := 0.0
			if i > 0 {
				lo = bucketUpper(i - 1)
			}
			hi := bucketUpper(i)
			// Position of the target within this bucket's occupants.
			frac := (target - float64(cum)) / float64(c)
			v := lo + frac*(hi-lo)
			return clamp(v, h.min, h.max)
		}
		cum += c
	}
	return h.max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SummaryRow renders the histogram's headline statistics for tables:
// count, mean, p50, p95, p99, max, formatted with the given printf verb
// (e.g. "%.3f").
func (h *Histogram) SummaryRow(verb string) []string {
	f := func(v float64) string { return fmt.Sprintf(verb, v) }
	return []string{
		fmt.Sprintf("%d", h.Count()),
		f(h.Mean()),
		f(h.Percentile(50)),
		f(h.Percentile(95)),
		f(h.Percentile(99)),
		f(h.Max()),
	}
}
