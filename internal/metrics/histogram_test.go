package metrics

import (
	"math"
	"testing"
)

func TestHistogramTableDriven(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		count   int64
		mean    float64
		p50     float64 // exact expected value where determinable
		p50Tol  float64 // relative tolerance (0 = exact)
	}{
		{name: "empty", samples: nil, count: 0, mean: 0, p50: 0},
		{name: "single", samples: []float64{0.125}, count: 1, mean: 0.125, p50: 0.125},
		{name: "single-zero", samples: []float64{0}, count: 1, mean: 0, p50: 0},
		{name: "negative-clamps", samples: []float64{-3}, count: 1, mean: 0, p50: 0},
		{
			// Two identical values: every percentile is that value (clamped
			// to the exact min/max).
			name:    "two-equal",
			samples: []float64{2.0, 2.0},
			count:   2, mean: 2.0, p50: 2.0,
		},
		{
			// A value exactly on a bucket boundary (histMinValue * 2^k) must
			// be counted exactly once and be recoverable within the bucket.
			name:    "bucket-boundary",
			samples: []float64{bucketUpper(20)},
			count:   1, mean: bucketUpper(20), p50: bucketUpper(20),
		},
		{
			name:    "wide-spread",
			samples: []float64{0.001, 0.010, 0.100, 1.000},
			count:   4, mean: 0.27775,
			// p50 falls in the 0.010 sample's bucket; allow one bucket of
			// slack (factor of 2).
			p50: 0.010, p50Tol: 1.0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.name)
			for _, v := range tc.samples {
				h.Observe(v)
			}
			if h.Count() != tc.count {
				t.Fatalf("count = %d, want %d", h.Count(), tc.count)
			}
			if math.Abs(h.Mean()-tc.mean) > 1e-12 {
				t.Fatalf("mean = %g, want %g", h.Mean(), tc.mean)
			}
			got := h.Percentile(50)
			if tc.p50Tol == 0 {
				if got != tc.p50 {
					t.Fatalf("p50 = %g, want %g", got, tc.p50)
				}
			} else if math.Abs(got-tc.p50) > tc.p50Tol*tc.p50 {
				t.Fatalf("p50 = %g, want %g±%g%%", got, tc.p50, tc.p50Tol*100)
			}
		})
	}
}

func TestHistogramPercentileOrdering(t *testing.T) {
	h := NewHistogram("lat")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-3) // 1ms .. 1s uniform
	}
	p50, p95, p99 := h.Percentile(50), h.Percentile(95), h.Percentile(99)
	if !(p50 <= p95 && p95 <= p99 && p99 <= h.Max()) {
		t.Fatalf("percentiles out of order: p50=%g p95=%g p99=%g max=%g", p50, p95, p99, h.Max())
	}
	if p50 < h.Min() || p99 > h.Max() {
		t.Fatalf("percentiles escape observed range [%g, %g]", h.Min(), h.Max())
	}
	// Log-bucketed estimate: within one doubling of the true value.
	if p95 < 0.475 || p95 > 1.9 {
		t.Fatalf("p95 = %g, want ~0.95 within a bucket", p95)
	}
}

func TestHistogramBoundsExact(t *testing.T) {
	h := NewHistogram("x")
	h.Observe(3)
	h.Observe(7)
	if h.Min() != 3 || h.Max() != 7 {
		t.Fatalf("min/max = %g/%g, want 3/7", h.Min(), h.Max())
	}
	if h.Sum() != 10 {
		t.Fatalf("sum = %g, want 10", h.Sum())
	}
	if p := h.Percentile(0); p != 3 {
		t.Fatalf("p0 = %g, want clamped to min 3", p)
	}
	if p := h.Percentile(100); p != 7 {
		t.Fatalf("p100 = %g, want clamped to max 7", p)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must be a no-op")
	}
}
