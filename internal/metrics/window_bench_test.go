package metrics

import (
	"testing"
	"time"

	"dualpar/internal/sim"
)

// buildSeries returns n points on a 1 ms grid.
func buildSeries(n int) *Series {
	s := &Series{Name: "b"}
	for i := 0; i < n; i++ {
		s.Add(time.Duration(i)*time.Millisecond, float64(i))
	}
	return s
}

// BenchmarkSeriesWindow measures a narrow window query against a long
// series — the sort.Search bounds make it O(log n + window) instead of the
// former full scan.
func BenchmarkSeriesWindow(b *testing.B) {
	s := buildSeries(1 << 20)
	from := 500 * time.Second
	to := from + 100*time.Millisecond
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Window(from, to) == 0 {
			b.Fatal("window unexpectedly empty")
		}
	}
}

func TestSeriesWindowEdges(t *testing.T) {
	s := buildSeries(10)
	if got := s.Window(3*time.Millisecond, 6*time.Millisecond); got != 4 {
		t.Fatalf("window mean = %g, want 4", got)
	}
	if got := s.Window(100*time.Millisecond, 200*time.Millisecond); got != 0 {
		t.Fatalf("out-of-range window = %g, want 0", got)
	}
	if got := s.Window(6*time.Millisecond, 3*time.Millisecond); got != 0 {
		t.Fatalf("inverted window = %g, want 0", got)
	}
	if got := (&Series{}).Window(0, time.Second); got != 0 {
		t.Fatalf("empty series window = %g, want 0", got)
	}
}

// TestRateSamplerMidRun arms a sampler against a counter that is already
// nonzero: the first window must report the in-window rate, not the
// cumulative total since zero.
func TestRateSamplerMidRun(t *testing.T) {
	k := sim.NewKernel(1)
	counter := int64(1_000_000) // pre-existing traffic before sampling starts
	k.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(time.Second)
			counter += 100
		}
	})
	s := RateSampler(k, "rate", time.Second, 4*time.Second, func() int64 { return counter }, 1)
	k.Run()
	for _, pt := range s.Points {
		if pt.V > 150 {
			t.Fatalf("sample at %v = %g, want ~100 (pre-existing counter leaked in)", pt.T, pt.V)
		}
	}
}
