package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dualpar/internal/sim"
)

func TestSampleCollectsUntil(t *testing.T) {
	k := sim.NewKernel(1)
	n := 0
	s := Sample(k, "x", time.Second, 5*time.Second, func() float64 {
		n++
		return float64(n)
	})
	k.Run()
	if len(s.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(s.Points))
	}
	if s.Points[0].T != time.Second || s.Points[4].T != 5*time.Second {
		t.Fatalf("sample times wrong: %+v", s.Points)
	}
	if k.Pending() != 0 {
		t.Fatalf("sampler left pending events")
	}
}

func TestSeriesStats(t *testing.T) {
	s := &Series{Name: "v"}
	for i := 1; i <= 4; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	if s.Mean() != 2.5 {
		t.Fatalf("mean = %g", s.Mean())
	}
	if s.Max() != 4 {
		t.Fatalf("max = %g", s.Max())
	}
	if got := s.Window(2*time.Second, 4*time.Second); got != 2.5 {
		t.Fatalf("window = %g, want 2.5", got)
	}
	empty := &Series{}
	if empty.Mean() != 0 || empty.Max() != 0 {
		t.Fatalf("empty series stats nonzero")
	}
}

func TestRateSampler(t *testing.T) {
	k := sim.NewKernel(1)
	var counter int64
	// Increments land off the sampling grid so edge ordering is moot.
	k.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(400 * time.Millisecond)
			counter += 1000
		}
	})
	s := RateSampler(k, "rate", time.Second, 5*time.Second, func() int64 { return counter }, 1)
	k.Run()
	// 2000 units/second.
	if got := s.Mean(); got < 1900 || got > 2100 {
		t.Fatalf("mean rate = %g, want ~2000", got)
	}
}

func TestWriteCSV(t *testing.T) {
	a := &Series{Name: "a"}
	a.Add(time.Second, 1)
	a.Add(2*time.Second, 2)
	b := &Series{Name: "b"}
	b.Add(time.Second, 10)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_s,a,b\n") {
		t.Fatalf("header wrong: %s", out)
	}
	if !strings.Contains(out, "1.000,1.000,10.000") {
		t.Fatalf("row missing: %s", out)
	}
	if !strings.Contains(out, "2.000,2.000,10.000") {
		t.Fatalf("carry-forward missing: %s", out)
	}
}

func TestASCIIChart(t *testing.T) {
	s := &Series{Name: "tp"}
	for i := 0; i < 100; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i%10))
	}
	out := ASCIIChart(s, 40, 5)
	if !strings.Contains(out, "tp (max 9.0)") {
		t.Fatalf("chart header missing:\n%s", out)
	}
	if strings.Count(out, "\n") < 6 {
		t.Fatalf("chart too short:\n%s", out)
	}
	if ASCIIChart(&Series{}, 10, 3) != "(no data)\n" {
		t.Fatalf("empty chart wrong")
	}
}

func TestTable(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "22")
	out := tab.String()
	if !strings.Contains(out, "alpha  1") || !strings.Contains(out, "-----") {
		t.Fatalf("table format:\n%s", out)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSVTable(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "name,value\nalpha,1\nb,22\n" {
		t.Fatalf("csv = %q", buf.String())
	}
}
