package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"dualpar/internal/metrics"
)

// The exporter emits Chrome trace-event JSON (the "JSON Array Format" with
// a traceEvents wrapper), which ui.perfetto.dev and chrome://tracing load
// directly. Tracks map to (pid, tid): the track prefix up to the first '/'
// becomes a named process ("prog0", "server3", "emc"), the full track a
// named thread within it, so every rank and every data server gets its own
// timeline row. Spans become complete ("X") events carrying the RequestID
// in args; instants become thread-scoped "i" events.
//
// Output is deterministic: pids/tids are assigned in first-recorded order,
// args maps marshal with sorted keys (encoding/json), and timestamps derive
// only from virtual time — two runs with the same seed export identical
// bytes.

type metaEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

type spanEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type instantEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s"`
	Args map[string]string `json:"args,omitempty"`
}

// trackTable assigns (pid, tid) pairs to track names in first-seen order.
type trackTable struct {
	pids   map[string]int // process name -> pid
	tids   map[string][2]int
	order  []string // track names in first-seen order
	nextID int
}

func newTrackTable() *trackTable {
	return &trackTable{pids: make(map[string]int), tids: make(map[string][2]int), nextID: 1}
}

// processOf is the track's process grouping: the prefix up to the first '/'.
func processOf(track string) string {
	if i := strings.IndexByte(track, '/'); i >= 0 {
		return track[:i]
	}
	return track
}

func (t *trackTable) id(track string) (pid, tid int) {
	if track == "" {
		track = "untracked"
	}
	if ids, ok := t.tids[track]; ok {
		return ids[0], ids[1]
	}
	proc := processOf(track)
	pid, ok := t.pids[proc]
	if !ok {
		pid = t.nextID
		t.nextID++
		t.pids[proc] = pid
	}
	// tid: count of tracks already in this process.
	tid = 0
	for _, tr := range t.order {
		if processOf(tr) == proc {
			tid++
		}
	}
	t.tids[track] = [2]int{pid, tid}
	t.order = append(t.order, track)
	return pid, tid
}

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func argMap(id RequestID, args []Arg) map[string]string {
	if id == 0 && len(args) == 0 {
		return nil
	}
	m := make(map[string]string, len(args)+1)
	if id != 0 {
		m["req"] = fmt.Sprintf("%d", id)
	}
	for _, a := range args {
		m[a.Key] = a.Val
	}
	return m
}

// WriteTrace emits the collector's spans and instants as Chrome trace-event
// JSON, loadable at ui.perfetto.dev. On a nil collector it writes an empty
// trace.
func (c *Collector) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	// Pass 1: register every track so metadata events come first.
	tracks := newTrackTable()
	for _, s := range c.Spans() {
		tracks.id(s.Track)
	}
	for _, i := range c.Instants() {
		tracks.id(i.Track)
	}
	seenProc := make(map[string]bool)
	for _, track := range tracks.order {
		pid, tid := tracks.id(track)
		proc := processOf(track)
		if !seenProc[proc] {
			seenProc[proc] = true
			if err := emit(metaEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]string{"name": proc}}); err != nil {
				return err
			}
		}
		if err := emit(metaEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: map[string]string{"name": track}}); err != nil {
			return err
		}
	}

	for _, s := range c.Spans() {
		pid, tid := tracks.id(s.Track)
		if err := emit(spanEvent{
			Name: string(s.Stage), Cat: "io", Ph: "X",
			Ts: usec(s.Start), Dur: usec(s.End - s.Start),
			Pid: pid, Tid: tid, Args: argMap(s.ID, s.Args),
		}); err != nil {
			return err
		}
	}
	for _, i := range c.Instants() {
		pid, tid := tracks.id(i.Track)
		if err := emit(instantEvent{
			Name: i.Name, Cat: "ctl", Ph: "i",
			Ts: usec(i.At), Pid: pid, Tid: tid, S: "t",
			Args: argMap(0, i.Args),
		}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// SummaryTable renders the registry: one row per histogram (count, mean,
// p50/p95/p99, max — latencies in milliseconds), then counters and gauges.
func (c *Collector) SummaryTable() *metrics.Table {
	t := &metrics.Table{Header: []string{"metric", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"}}
	reg := c.Metrics()
	for _, name := range reg.HistogramNames() {
		h := reg.Histogram(name)
		ms := func(v float64) string { return fmt.Sprintf("%.3f", v*1e3) }
		t.AddRow(name,
			fmt.Sprintf("%d", h.Count()),
			ms(h.Mean()), ms(h.Percentile(50)), ms(h.Percentile(95)), ms(h.Percentile(99)), ms(h.Max()))
	}
	for _, name := range reg.CounterNames() {
		t.AddRow(name, fmt.Sprintf("%d", reg.Counter(name).Value()), "", "", "", "", "")
	}
	for _, name := range reg.GaugeNames() {
		t.AddRow(name, fmt.Sprintf("%.3f", reg.Gauge(name).Value()), "", "", "", "", "")
	}
	return t
}

// WriteSummary prints the summary table.
func (c *Collector) WriteSummary(w io.Writer) error {
	_, err := io.WriteString(w, c.SummaryTable().String())
	return err
}
