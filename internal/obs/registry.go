package obs

import (
	"sort"

	"dualpar/internal/metrics"
)

// Registry holds named counters, gauges, and latency histograms, created on
// first use. All accessors are safe on a nil *Registry (they return nil
// handles whose methods are no-ops), so instrumented layers can hold
// handles unconditionally and pay one nil check when tracing is off.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*metrics.Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*metrics.Histogram),
	}
}

// Counter is a monotonically increasing integer.
type Counter struct{ v int64 }

// Add increments the counter; a no-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-write-wins float.
type Gauge struct{ v float64 }

// Set stores the value; a no-op on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named log-bucketed
// histogram. Virtual-time latencies are observed in seconds.
func (r *Registry) Histogram(name string) *metrics.Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = metrics.NewHistogram(name)
		r.hists[name] = h
	}
	return h
}

// CounterNames, GaugeNames, and HistogramNames return the registered names
// sorted, for deterministic rendering.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	return sortedKeys(r.counters)
}

func (r *Registry) GaugeNames() []string {
	if r == nil {
		return nil
	}
	return sortedKeys(r.gauges)
}

func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	return sortedKeys(r.hists)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
