package obs_test

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/obs"
	"dualpar/internal/workloads"
)

// traceEvent mirrors the Chrome trace-event fields the tests inspect.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args"`
}

type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// runTraced runs one program under DualPar with a Collector attached and
// returns the pieces the assertions need. A nil collector disables tracing.
func runTraced(t *testing.T, prog workloads.Program, seed int64, col *obs.Collector) (*cluster.Cluster, *core.Runner, *core.ProgramRun) {
	t.Helper()
	ccfg := cluster.DefaultConfig()
	ccfg.Seed = seed
	ccfg.Obs = col
	cl := cluster.New(ccfg)
	dcfg := core.DefaultConfig()
	dcfg.SlotEvery = 100 * time.Millisecond // enough EMC slots in a short run
	runner := core.NewRunner(cl, dcfg)
	pr := runner.Add(prog, core.ModeDualPar, core.AddOptions{RanksPerNode: 8})
	if !runner.Run(time.Hour) {
		t.Fatal("simulation did not finish")
	}
	return cl, runner, pr
}

func export(t *testing.T, col *obs.Collector) ([]byte, traceDoc) {
	t.Helper()
	var buf bytes.Buffer
	if err := col.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return buf.Bytes(), doc
}

// TestTraceAcceptance runs the acceptance workloads and checks the exported
// trace against ground truth the simulator reports independently: one disk
// span per dispatched request, one instant per EMC decision, cycle
// transition, and mode switch.
func TestTraceAcceptance(t *testing.T) {
	cases := []struct {
		name       string
		prog       workloads.Program
		wantCycles bool // workload must exercise the data-driven cycle path
	}{
		{"mpi-io-test", workloads.DefaultMPIIOTest(), false},
		{"noncontig", workloads.DefaultNoncontig(), true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			col := obs.NewCollector()
			cl, runner, pr := runTraced(t, tc.prog, 1, col)
			_, doc := export(t, col)

			phases := map[string]int{}
			names := map[string]int{}
			for _, ev := range doc.TraceEvents {
				phases[ev.Ph]++
				if ev.Ph == "X" || ev.Ph == "i" {
					names[ev.Name]++
				}
			}
			if phases["M"] == 0 || phases["X"] == 0 {
				t.Fatalf("trace lacks metadata or span events: %v", phases)
			}

			var served int64
			for _, st := range cl.Stores {
				served += st.Dispatcher().Served()
			}
			if served == 0 {
				t.Fatal("no disk requests served — workload did nothing")
			}
			if got := names["disk"]; int64(got) != served {
				t.Errorf("disk spans = %d, dispatchers served %d", got, served)
			}
			if got, want := names["emc.decision"], len(runner.EMCDecisions()); got != want {
				t.Errorf("emc.decision instants = %d, decisions logged %d", got, want)
			}
			if want := len(runner.EMCDecisions()); want == 0 {
				t.Error("run produced no EMC decisions; the check above is vacuous")
			}
			if got, want := names["cycle.resume"], int(pr.Cycles()); got != want {
				t.Errorf("cycle.resume instants = %d, cycles completed %d", got, want)
			}
			if got, want := names["mode.switch"], len(pr.ModeSwitches); got != want {
				t.Errorf("mode.switch instants = %d, switches logged %d", got, want)
			}
			if tc.wantCycles {
				if pr.Cycles() == 0 {
					t.Error("workload never completed a data-driven cycle")
				}
				for _, n := range []string{"cycle.fill", "cycle.serve", "rank.suspend", "rank.resume", "cache.hit"} {
					if names[n] == 0 {
						t.Errorf("no %q instants in a cycling run", n)
					}
				}
			}
			checkNesting(t, doc)
		})
	}
}

// checkNesting verifies, from the parsed export alone, that every net,
// server, and disk span carrying a request id falls inside that request's
// span, and that no stage's merged busy time exceeds the request latency.
func checkNesting(t *testing.T, doc traceDoc) {
	t.Helper()
	type iv struct{ lo, hi float64 }
	reqs := map[string]iv{}                  // request id -> request span bounds (µs)
	children := map[string]map[string][]iv{} // request id -> stage -> intervals
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		id := ev.Args["req"]
		if id == "" {
			continue // untraced span (e.g. background flusher disk access)
		}
		span := iv{ev.Ts, ev.Ts + ev.Dur}
		if ev.Name == "request" {
			if _, dup := reqs[id]; dup {
				t.Errorf("request %s has two request spans", id)
			}
			reqs[id] = span
			continue
		}
		if children[id] == nil {
			children[id] = map[string][]iv{}
		}
		children[id][ev.Name] = append(children[id][ev.Name], span)
	}
	if len(reqs) == 0 {
		t.Fatal("no request spans in trace")
	}
	const eps = 1e-3 // µs; ns→µs conversion rounds in float64
	nested := 0
	for id, stages := range children {
		parent, ok := reqs[id]
		if !ok {
			t.Errorf("spans reference request %s but no request span exists", id)
			continue
		}
		for stage, ivs := range stages {
			// Every stage interval must nest inside the request span.
			for _, c := range ivs {
				if c.lo < parent.lo-eps || c.hi > parent.hi+eps {
					t.Errorf("req %s: %s span [%f,%f] outside request [%f,%f]",
						id, stage, c.lo, c.hi, parent.lo, parent.hi)
				}
			}
			// The stage's merged busy time cannot exceed the request latency.
			sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
			var busy, hi float64
			for _, c := range ivs {
				if c.lo > hi {
					busy += c.hi - c.lo
					hi = c.hi
				} else if c.hi > hi {
					busy += c.hi - hi
					hi = c.hi
				}
			}
			if lat := parent.hi - parent.lo; busy > lat+eps {
				t.Errorf("req %s: %s busy %fµs exceeds request latency %fµs", id, stage, busy, lat)
			}
			nested++
		}
	}
	if nested == 0 {
		t.Fatal("no child spans found under any request")
	}
}

// TestTraceDeterminism runs the same seed twice and demands byte-identical
// exports, then a third time with tracing off and demands the identical
// simulated timeline — observability must not perturb the simulation.
func TestTraceDeterminism(t *testing.T) {
	prog := workloads.DefaultNoncontig()

	col1 := obs.NewCollector()
	_, _, pr1 := runTraced(t, prog, 7, col1)
	trace1, _ := export(t, col1)
	var sum1 bytes.Buffer
	if err := col1.WriteSummary(&sum1); err != nil {
		t.Fatal(err)
	}

	col2 := obs.NewCollector()
	_, _, pr2 := runTraced(t, prog, 7, col2)
	trace2, _ := export(t, col2)
	var sum2 bytes.Buffer
	if err := col2.WriteSummary(&sum2); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(trace1, trace2) {
		t.Error("same seed produced different trace bytes")
	}
	if sum1.String() != sum2.String() {
		t.Errorf("same seed produced different summaries:\n%s\nvs\n%s", sum1.String(), sum2.String())
	}
	if pr1.Elapsed() != pr2.Elapsed() {
		t.Errorf("same seed produced different elapsed: %v vs %v", pr1.Elapsed(), pr2.Elapsed())
	}

	_, _, pr3 := runTraced(t, prog, 7, nil)
	if pr3.Elapsed() != pr1.Elapsed() {
		t.Errorf("tracing changed the timeline: traced %v, untraced %v", pr1.Elapsed(), pr3.Elapsed())
	}
}
