// Package obs is the simulation-wide observability layer: request-scoped
// spans, control-plane instant events, and a metrics registry, with Chrome
// trace-event (Perfetto-loadable) and summary-table exporters.
//
// Every I/O request receives a RequestID at the layer that originates it
// (MPI-IO calls, CRM batches, Strategy-2 prefetches); the ID travels down
// the stack inside a Ctx, and each layer records the stage it contributes —
// network serialization, server-side service, block-layer queueing, and disk
// positioning/transfer — as a Span against the originating request. Control
// planes (EMC decisions, cycle state transitions, rank suspend/resume,
// cache hits and misses) emit Instants.
//
// The entire package is nil-safe: a nil *Collector (tracing disabled) makes
// every method a no-op costing one nil check, so the simulation's virtual
// timeline is identical with and without tracing. The Collector performs no
// virtual-time operations and draws no randomness; it only records.
package obs

import (
	"fmt"
	"time"

	"dualpar/internal/metrics"
)

// RequestID identifies one end-to-end I/O request. Zero means untraced.
type RequestID int64

// Ctx carries a request's identity through the stack: the ID and the track
// (timeline row) of the context that originated it, e.g. "prog0/rank3" or
// "prog1/crm/home102". The zero Ctx is the untraced request.
type Ctx struct {
	ID    RequestID
	Track string
}

// Traced reports whether the context belongs to an active trace.
func (c Ctx) Traced() bool { return c.ID != 0 }

// Stage names the slice of the stack a span covers.
type Stage string

const (
	// StageRequest is the end-to-end span, opened where the request is born.
	StageRequest Stage = "request"
	// StageNet covers one network transfer (send through delivery).
	StageNet Stage = "net"
	// StageServer covers one data server's handling of a request: dequeue,
	// request CPU, local store service, response send.
	StageServer Stage = "server"
	// StageDisk covers one block-layer dispatch: the device positioning and
	// transfer time of one access (queue wait is carried as an arg, and the
	// positioning/transfer split as ovh_ns/seek_ns/rot_ns/xfer_ns args).
	StageDisk Stage = "disk"
	// StageCache covers one global-cache operation (get or put) against the
	// distributed memory cache, including its home-node CPU and wire time.
	StageCache Stage = "cache"
	// StageSuspend covers a rank's suspension window inside a data-driven
	// cycle: from joining the cycle until the controller resumes it.
	StageSuspend Stage = "suspend"
)

// Arg is one key/value annotation. Values are pre-formatted strings so that
// export is deterministic and allocation happens only while tracing.
type Arg struct {
	Key, Val string
}

// I64 builds an integer annotation.
func I64(k string, v int64) Arg { return Arg{Key: k, Val: fmt.Sprintf("%d", v)} }

// F64 builds a float annotation with fixed formatting (determinism).
func F64(k string, v float64) Arg { return Arg{Key: k, Val: fmt.Sprintf("%.6g", v)} }

// Str builds a string annotation.
func Str(k, v string) Arg { return Arg{Key: k, Val: v} }

// Span is one completed stage of one request.
type Span struct {
	ID         RequestID
	Stage      Stage
	Track      string
	Start, End time.Duration
	Args       []Arg
}

// Dur is the span's duration.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// Instant is one control-plane event.
type Instant struct {
	Name  string
	Track string
	At    time.Duration
	Args  []Arg
}

// Collector accumulates spans, instants, and metrics for one simulation.
// It is driven from kernel/Proc context only (the kernel's strict
// alternation is the synchronization), so it needs no locking.
type Collector struct {
	lastID   int64
	spans    []Span
	instants []Instant
	reg      *Registry

	// Handle caches for the per-span/per-instant hot path: resolving
	// "lat.<stage>" / "event.<name>" through the registry concatenates a key
	// string on every record, which dominated the span path's allocations.
	latHist map[Stage]*metrics.Histogram
	evCount map[string]*Counter
}

// NewCollector creates an enabled collector.
func NewCollector() *Collector {
	return &Collector{
		reg:     NewRegistry(),
		latHist: make(map[Stage]*metrics.Histogram),
		evCount: make(map[string]*Counter),
	}
}

// Enabled reports whether tracing is on (the collector is non-nil).
func (c *Collector) Enabled() bool { return c != nil }

// StartRequest allocates a fresh request context on the given track.
// On a nil collector it returns the zero (untraced) Ctx.
func (c *Collector) StartRequest(track string) Ctx {
	if c == nil {
		return Ctx{}
	}
	c.lastID++
	return Ctx{ID: RequestID(c.lastID), Track: track}
}

// Span records one completed stage and feeds the stage's latency histogram
// ("lat.<stage>", seconds).
func (c *Collector) Span(id RequestID, stage Stage, track string, start, end time.Duration, args ...Arg) {
	if c == nil {
		return
	}
	c.spans = append(c.spans, Span{ID: id, Stage: stage, Track: track, Start: start, End: end, Args: args})
	h := c.latHist[stage]
	if h == nil {
		h = c.reg.Histogram("lat." + string(stage))
		c.latHist[stage] = h
	}
	h.Observe((end - start).Seconds())
}

// Instant records one control-plane event and bumps its counter
// ("event.<name>").
func (c *Collector) Instant(name, track string, at time.Duration, args ...Arg) {
	if c == nil {
		return
	}
	c.instants = append(c.instants, Instant{Name: name, Track: track, At: at, Args: args})
	cnt := c.evCount[name]
	if cnt == nil {
		cnt = c.reg.Counter("event." + name)
		c.evCount[name] = cnt
	}
	cnt.Add(1)
}

// Metrics returns the registry (nil on a nil collector; the registry's
// handles are themselves nil-safe).
func (c *Collector) Metrics() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Spans returns all recorded spans in recording order.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	return c.spans
}

// Instants returns all recorded instants in recording order.
func (c *Collector) Instants() []Instant {
	if c == nil {
		return nil
	}
	return c.instants
}
