package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dualpar/internal/metrics"
)

// phaseTable builds the aggregate phase-attribution table, one row per phase
// in canonical order plus a total row; shares are of the summed request span.
func (r *Report) phaseTable() *metrics.Table {
	t := &metrics.Table{Header: []string{"phase", "time_ms", "share"}}
	var total float64
	for _, ph := range AllPhases {
		total += r.Phases[ph].Seconds()
	}
	for _, ph := range AllPhases {
		d := r.Phases[ph]
		if d == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = d.Seconds() / total
		}
		t.AddRow(string(ph), fmtDur(d), fmt.Sprintf("%.1f%%", share*100))
	}
	t.AddRow("total", fmtDur(r.TotalSpan), "100.0%")
	return t
}

// verbTable builds the per-verb phase matrix: one row per verb (sorted), one
// column per phase that is nonzero anywhere.
func (r *Report) verbTable() *metrics.Table {
	verbs := make([]string, 0, len(r.ByVerb))
	for v := range r.ByVerb {
		verbs = append(verbs, v)
	}
	sort.Strings(verbs)
	var cols []Phase
	for _, ph := range AllPhases {
		for _, v := range verbs {
			if r.ByVerb[v][ph] > 0 {
				cols = append(cols, ph)
				break
			}
		}
	}
	header := []string{"verb"}
	for _, ph := range cols {
		header = append(header, string(ph)+"_ms")
	}
	t := &metrics.Table{Header: header}
	for _, v := range verbs {
		row := []string{v}
		for _, ph := range cols {
			row = append(row, fmtDur(r.ByVerb[v][ph]))
		}
		t.AddRow(row...)
	}
	return t
}

// serverTable builds the per-server utilization summary.
func (r *Report) serverTable() *metrics.Table {
	t := &metrics.Table{Header: []string{
		"server", "spans", "busy_ms", "ovh_ms", "seek_ms", "rot_ms", "xfer_ms", "idle_ms", "util",
	}}
	for _, s := range r.Servers {
		t.AddRow(s.Name, fmt.Sprintf("%d", s.Spans), fmtDur(s.Busy),
			fmtDur(s.Overhead), fmtDur(s.Seek), fmtDur(s.Rotation),
			fmtDur(s.Transfer), fmtDur(s.Idle), fmt.Sprintf("%.3f", s.Util))
	}
	return t
}

// timelineTable builds the bucketed utilization series for all servers.
func (r *Report) timelineTable() *metrics.Table {
	t := &metrics.Table{Header: []string{
		"server", "bucket_start_ms", "busy_ms", "seek_ms", "rot_ms", "xfer_ms", "idle_ms",
	}}
	for _, s := range r.Servers {
		for _, b := range s.Timeline {
			t.AddRow(s.Name, fmtDur(b.Start), fmtDur(b.Busy), fmtDur(b.Seek),
				fmtDur(b.Rotation), fmtDur(b.Transfer), fmtDur(b.Idle))
		}
	}
	return t
}

// pathTable builds the critical-path segment listing.
func (r *Report) pathTable() *metrics.Table {
	t := &metrics.Table{Header: []string{
		"req", "verb", "dur_ms", "seg", "phase", "track", "start_ms", "len_ms",
	}}
	for _, a := range r.CriticalPaths {
		verb := a.Verb
		if verb == "" {
			verb = "mpi-io"
		}
		for i, seg := range a.Path {
			t.AddRow(fmt.Sprintf("%d", a.ID), verb, fmtDur(a.Dur()),
				fmt.Sprintf("%d", i), string(seg.Phase), seg.Track,
				fmtDur(seg.Start), fmtDur(seg.Dur()))
		}
	}
	return t
}

// utilBar renders a proportional sparkline for one server's busy series.
func utilBar(s ServerUtil) string {
	const levels = " .:-=+*#%@"
	var b strings.Builder
	for _, bk := range s.Timeline {
		width := bk.Busy + bk.Idle
		frac := 0.0
		if width > 0 {
			frac = float64(bk.Busy) / float64(width)
		}
		idx := int(frac * float64(len(levels)-1))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteByte(levels[idx])
	}
	return b.String()
}

// RenderText writes the full human-readable report.
func (r *Report) RenderText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "=== time attribution (%d requests, %s total) ===\n",
		r.Requests, fmtDur(r.TotalSpan)+"ms")
	if r.Conserved() {
		b.WriteString("conservation: exact (residual 0)\n")
	} else {
		fmt.Fprintf(&b, "conservation: VIOLATED (max residual %dns)\n", int64(r.MaxResidual))
	}
	b.WriteString("\n-- phases --\n")
	b.WriteString(r.phaseTable().String())
	if len(r.ByVerb) > 1 {
		b.WriteString("\n-- by verb --\n")
		b.WriteString(r.verbTable().String())
	}
	if len(r.Servers) > 0 {
		fmt.Fprintf(&b, "\n-- servers (imbalance %.3f, bucket %sms) --\n",
			r.Imbalance, fmtDur(r.BucketDur))
		b.WriteString(r.serverTable().String())
		b.WriteString("\nutilization timeline (busy fraction per bucket):\n")
		for _, s := range r.Servers {
			fmt.Fprintf(&b, "  %-16s |%s|\n", s.Name, utilBar(s))
		}
	}
	if len(r.CriticalPaths) > 0 {
		b.WriteString("\n-- critical paths (longest requests) --\n")
		b.WriteString(r.pathTable().String())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderJSON writes the report as one indented JSON document.
func (r *Report) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderCSV writes the report's tables as sectioned CSV ("# name" comment
// lines separate the sections).
func (r *Report) RenderCSV(w io.Writer) error {
	sections := []struct {
		name string
		tab  *metrics.Table
	}{
		{"phases", r.phaseTable()},
		{"by_verb", r.verbTable()},
		{"servers", r.serverTable()},
		{"timeline", r.timelineTable()},
		{"critical_path", r.pathTable()},
	}
	for i, sec := range sections {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# %s\n", sec.name); err != nil {
			return err
		}
		if err := sec.tab.WriteCSVTable(w); err != nil {
			return err
		}
	}
	return nil
}
