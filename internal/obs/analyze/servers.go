package analyze

import (
	"sort"
	"strings"
	"time"

	"dualpar/internal/obs"
)

// processOf maps a track to its owning process group: the component before
// the first '/' ("server0/dispatch" → "server0"), or the whole track.
func processOf(track string) string {
	if i := strings.IndexByte(track, '/'); i >= 0 {
		return track[:i]
	}
	return track
}

// serverUtilization builds per-server busy/idle decompositions and bucketed
// timelines from StageDisk spans. Untraced spans (background flusher
// writebacks) count too: the device was busy regardless of who asked.
func serverUtilization(spans []obs.Span, horizon time.Duration, buckets int) ([]ServerUtil, time.Duration) {
	byServer := make(map[string][]obs.Span)
	var names []string
	for _, s := range spans {
		if s.Stage != obs.StageDisk {
			continue
		}
		name := processOf(s.Track)
		if _, ok := byServer[name]; !ok {
			names = append(names, name)
		}
		byServer[name] = append(byServer[name], s)
	}
	sort.Strings(names)

	var bucketDur time.Duration
	if horizon > 0 && buckets > 0 {
		bucketDur = (horizon + time.Duration(buckets) - 1) / time.Duration(buckets)
	}

	out := make([]ServerUtil, 0, len(names))
	for _, name := range names {
		su := ServerUtil{Name: name}
		var timeline []UtilBucket
		if bucketDur > 0 {
			timeline = make([]UtilBucket, buckets)
			for i := range timeline {
				timeline[i].Start = time.Duration(i) * bucketDur
			}
		}
		for _, s := range byServer[name] {
			su.Spans++
			su.Busy += s.End - s.Start
			for _, iv := range diskIntervals(s) {
				d := iv.hi - iv.lo
				switch iv.phase {
				case PhaseOverhead:
					su.Overhead += d
				case PhaseSeek:
					su.Seek += d
				case PhaseRotation:
					su.Rotation += d
				case PhaseTransfer:
					su.Transfer += d
				}
				spreadBuckets(timeline, bucketDur, iv)
			}
		}
		if horizon > su.Busy {
			su.Idle = horizon - su.Busy
		}
		if horizon > 0 {
			su.Util = float64(su.Busy) / float64(horizon)
		}
		for i := range timeline {
			end := timeline[i].Start + bucketDur
			if end > horizon {
				end = horizon
			}
			if width := end - timeline[i].Start; width > timeline[i].Busy {
				timeline[i].Idle = width - timeline[i].Busy
			}
		}
		su.Timeline = timeline
		out = append(out, su)
	}
	return out, bucketDur
}

// spreadBuckets distributes one phase interval across the bucketed timeline.
func spreadBuckets(timeline []UtilBucket, bucketDur time.Duration, iv interval) {
	if bucketDur <= 0 || len(timeline) == 0 {
		return
	}
	first := int(iv.lo / bucketDur)
	for i := first; i < len(timeline); i++ {
		bLo := time.Duration(i) * bucketDur
		bHi := bLo + bucketDur
		if bLo >= iv.hi {
			break
		}
		lo, hi := iv.lo, iv.hi
		if lo < bLo {
			lo = bLo
		}
		if hi > bHi {
			hi = bHi
		}
		if hi <= lo {
			continue
		}
		d := hi - lo
		timeline[i].Busy += d
		switch iv.phase {
		case PhaseSeek:
			timeline[i].Seek += d
		case PhaseRotation:
			timeline[i].Rotation += d
		case PhaseTransfer:
			timeline[i].Transfer += d
		}
	}
}
