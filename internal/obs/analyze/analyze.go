// Package analyze is the time-attribution engine over obs traces: it
// consumes a finished run's spans (live from an obs.Collector, or parsed
// back from a saved Chrome trace-event JSON file) and explains where each
// request's wall time went.
//
// Three products (DESIGN §13):
//
//   - Phase attribution: every nanosecond of every traced request's span is
//     assigned to exactly one phase — compute, suspend, cache, network,
//     queue, server, overhead, seek, rotation, or transfer — by a
//     deepest-stage-wins sweep over the request's child spans. Because the
//     sweep tiles the request interval, the phases sum to the request span
//     exactly; Report.MaxResidual records the worst deviation (always 0 in
//     integer virtual time) as a conservation check.
//
//   - Per-server utilization timelines: virtual-time-bucketed busy/seek/
//     rotation/transfer/idle series per data server (from StageDisk spans,
//     which include untraced background work like flusher writebacks),
//     plus a load-imbalance index (max/mean busy) and a straggler ranking.
//
//   - Critical-path extraction: the per-request phase segments, merged into
//     a chain of (phase, track) links; the longest requests' chains show
//     which stages actually gated end-to-end time.
//
// All outputs are deterministic: iteration orders are sorted, and inputs
// derive only from virtual time.
package analyze

import (
	"fmt"
	"sort"
	"time"

	"dualpar/internal/obs"
)

// Options tunes an analysis.
type Options struct {
	// Buckets is the number of virtual-time buckets per server utilization
	// timeline (default 20).
	Buckets int
	// TopPaths is how many longest-request critical paths to keep
	// (default 3).
	TopPaths int
}

func (o Options) buckets() int {
	if o.Buckets <= 0 {
		return 20
	}
	return o.Buckets
}

func (o Options) topPaths() int {
	if o.TopPaths <= 0 {
		return 3
	}
	return o.TopPaths
}

// Report is one analysis result.
type Report struct {
	// Requests is the number of traced requests attributed.
	Requests int `json:"requests"`
	// TotalSpan is the summed duration of all request spans.
	TotalSpan time.Duration `json:"total_span_ns"`
	// Phases aggregates attributed time per phase across all requests.
	Phases map[Phase]time.Duration `json:"phases_ns"`
	// ByVerb aggregates per request verb (the request span's "verb" arg;
	// requests without one group under "mpi-io").
	ByVerb map[string]map[Phase]time.Duration `json:"by_verb_ns"`
	// MaxResidual is the conservation check: the largest absolute
	// difference between a request's span and the sum of its phases.
	MaxResidual time.Duration `json:"max_residual_ns"`
	// Servers holds per-data-server utilization, ordered by name.
	Servers []ServerUtil `json:"servers"`
	// Horizon is the analysis end time (latest span end).
	Horizon time.Duration `json:"horizon_ns"`
	// BucketDur is the utilization bucket width.
	BucketDur time.Duration `json:"bucket_ns"`
	// Imbalance is max/mean busy time across servers (1.0 = perfectly
	// balanced, 0 if no server was ever busy).
	Imbalance float64 `json:"imbalance"`
	// Stragglers ranks server names by busy time, busiest first.
	Stragglers []string `json:"stragglers"`
	// CriticalPaths holds the longest requests' gating chains.
	CriticalPaths []RequestAttribution `json:"critical_paths"`
}

// Conserved reports whether phase attribution summed exactly to every
// request's span duration.
func (r *Report) Conserved() bool { return r.MaxResidual == 0 }

// RequestAttribution is one request's phase decomposition and gating chain.
type RequestAttribution struct {
	ID     obs.RequestID           `json:"id"`
	Track  string                  `json:"track"`
	Verb   string                  `json:"verb"`
	Start  time.Duration           `json:"start_ns"`
	End    time.Duration           `json:"end_ns"`
	Phases map[Phase]time.Duration `json:"phases_ns"`
	// Path is the request's timeline tiled into phase segments (merged when
	// adjacent segments share phase and track) — the dependency chain that
	// gated the request end to end.
	Path []PathSegment `json:"path"`
}

// Dur is the request's end-to-end latency.
func (a RequestAttribution) Dur() time.Duration { return a.End - a.Start }

// PathSegment is one link of a request's gating chain.
type PathSegment struct {
	Phase Phase         `json:"phase"`
	Track string        `json:"track"`
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
}

// Dur is the segment's length.
func (s PathSegment) Dur() time.Duration { return s.End - s.Start }

// ServerUtil is one data server's utilization summary and timeline.
type ServerUtil struct {
	Name     string        `json:"name"`
	Spans    int           `json:"spans"`
	Busy     time.Duration `json:"busy_ns"`
	Overhead time.Duration `json:"overhead_ns"`
	Seek     time.Duration `json:"seek_ns"`
	Rotation time.Duration `json:"rotation_ns"`
	Transfer time.Duration `json:"transfer_ns"`
	Idle     time.Duration `json:"idle_ns"`
	// Util is Busy over the analysis horizon.
	Util float64 `json:"util"`
	// Timeline is the bucketed busy decomposition.
	Timeline []UtilBucket `json:"timeline"`
}

// UtilBucket is one virtual-time bucket of a server's utilization series.
type UtilBucket struct {
	Start    time.Duration `json:"start_ns"`
	Busy     time.Duration `json:"busy_ns"`
	Seek     time.Duration `json:"seek_ns"`
	Rotation time.Duration `json:"rotation_ns"`
	Transfer time.Duration `json:"transfer_ns"`
	Idle     time.Duration `json:"idle_ns"`
}

// FromCollector analyzes a finished run's collector.
func FromCollector(c *obs.Collector, opts Options) *Report {
	return Analyze(c.Spans(), opts)
}

// Analyze attributes every traced request's time and builds the utilization
// and critical-path products from the given spans.
func Analyze(spans []obs.Span, opts Options) *Report {
	rep := &Report{
		Phases: make(map[Phase]time.Duration),
		ByVerb: make(map[string]map[Phase]time.Duration),
	}
	for _, s := range spans {
		if s.End > rep.Horizon {
			rep.Horizon = s.End
		}
	}

	attrs := attributeRequests(spans)
	rep.Requests = len(attrs)
	for _, a := range attrs {
		rep.TotalSpan += a.Dur()
		var sum time.Duration
		for ph, d := range a.Phases {
			rep.Phases[ph] += d
			sum += d
		}
		verb := a.Verb
		if verb == "" {
			verb = "mpi-io"
		}
		vb := rep.ByVerb[verb]
		if vb == nil {
			vb = make(map[Phase]time.Duration)
			rep.ByVerb[verb] = vb
		}
		for ph, d := range a.Phases {
			vb[ph] += d
		}
		res := a.Dur() - sum
		if res < 0 {
			res = -res
		}
		if res > rep.MaxResidual {
			rep.MaxResidual = res
		}
	}

	rep.Servers, rep.BucketDur = serverUtilization(spans, rep.Horizon, opts.buckets())
	rep.Imbalance, rep.Stragglers = imbalance(rep.Servers)
	rep.CriticalPaths = topPaths(attrs, opts.topPaths())
	return rep
}

// imbalance computes max/mean busy and the straggler ranking (busy
// descending, name ascending for ties).
func imbalance(servers []ServerUtil) (float64, []string) {
	if len(servers) == 0 {
		return 0, nil
	}
	var sum, max time.Duration
	for _, s := range servers {
		sum += s.Busy
		if s.Busy > max {
			max = s.Busy
		}
	}
	ranked := append([]ServerUtil(nil), servers...)
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Busy != ranked[j].Busy {
			return ranked[i].Busy > ranked[j].Busy
		}
		return ranked[i].Name < ranked[j].Name
	})
	names := make([]string, len(ranked))
	for i, s := range ranked {
		names[i] = s.Name
	}
	if sum == 0 {
		return 0, names
	}
	mean := float64(sum) / float64(len(servers))
	return float64(max) / mean, names
}

// topPaths keeps the k longest requests, longest first (ties broken by
// request id for determinism).
func topPaths(attrs []RequestAttribution, k int) []RequestAttribution {
	ranked := append([]RequestAttribution(nil), attrs...)
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Dur() != ranked[j].Dur() {
			return ranked[i].Dur() > ranked[j].Dur()
		}
		return ranked[i].ID < ranked[j].ID
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}

// RegisterMetrics feeds the report into a metrics registry: one histogram
// per phase ("phase.<name>", per-request seconds), plus analyzer gauges —
// so -stats summaries pick the attribution up.
func (r *Report) RegisterMetrics(reg *obs.Registry, attrs []RequestAttribution) {
	if reg == nil {
		return
	}
	for _, a := range attrs {
		for _, ph := range AllPhases {
			if d, ok := a.Phases[ph]; ok && d > 0 {
				reg.Histogram("phase." + string(ph)).Observe(d.Seconds())
			}
		}
	}
	reg.Gauge("analyze.requests").Set(float64(r.Requests))
	reg.Gauge("analyze.imbalance").Set(r.Imbalance)
	reg.Gauge("analyze.residual_ns").Set(float64(r.MaxResidual))
}

// AttributeAll exposes the per-request attribution (used for metrics
// registration and tests).
func AttributeAll(spans []obs.Span) []RequestAttribution {
	return attributeRequests(spans)
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds()*1e3) // milliseconds
}
