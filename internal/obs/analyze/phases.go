package analyze

import (
	"sort"
	"strconv"
	"time"

	"dualpar/internal/obs"
)

// Phase names one slice of the attribution taxonomy.
type Phase string

const (
	// PhaseCompute is request time not covered by any recorded stage: the
	// rank (or client) is computing, aggregating, or otherwise off the I/O
	// path.
	PhaseCompute Phase = "compute"
	// PhaseSuspend is time a rank spent suspended inside a data-driven
	// cycle waiting for the CRM to fill the cache.
	PhaseSuspend Phase = "suspend"
	// PhaseCache is time spent in global-cache operations (gets and puts,
	// including their home-node CPU and wire time).
	PhaseCache Phase = "cache"
	// PhaseNetwork is wire time of request/response transfers.
	PhaseNetwork Phase = "network"
	// PhaseQueue is queueing delay: waiting in a data server's request
	// queue or in the block layer's elevator.
	PhaseQueue Phase = "queue"
	// PhaseServer is data-server service time not attributable deeper:
	// request CPU, store bookkeeping, response assembly.
	PhaseServer Phase = "server"
	// PhaseOverhead is fixed per-access device cost (command overhead,
	// plus any fault-injection degradation surcharge).
	PhaseOverhead Phase = "overhead"
	// PhaseSeek is head positioning, including streamed forward skips.
	PhaseSeek Phase = "seek"
	// PhaseRotation is rotational latency.
	PhaseRotation Phase = "rotation"
	// PhaseTransfer is media transfer of the requested sectors.
	PhaseTransfer Phase = "transfer"
)

// AllPhases lists the taxonomy in canonical rendering order.
var AllPhases = []Phase{
	PhaseCompute, PhaseSuspend, PhaseCache, PhaseNetwork, PhaseQueue,
	PhaseServer, PhaseOverhead, PhaseSeek, PhaseRotation, PhaseTransfer,
}

// Sweep priorities: when intervals overlap, the deepest stage wins, so each
// elementary segment of a request is attributed exactly once. Disk
// sub-phases sit deepest (they subdivide the device's exclusive service
// window), then block-layer queueing, then server service, server queueing,
// network, cache, and suspension; uncovered gaps fall to compute.
const (
	prioDiskPhase = 70
	prioDiskQueue = 60
	prioServer    = 50
	prioSrvQueue  = 40
	prioNetwork   = 30
	prioCache     = 20
	prioSuspend   = 10
)

// interval is one phase-labeled child interval competing in the sweep.
type interval struct {
	lo, hi time.Duration
	prio   int
	phase  Phase
	track  string
}

// argI64 fetches an integer span argument (ok=false when absent).
func argI64(s obs.Span, key string) (int64, bool) {
	for _, a := range s.Args {
		if a.Key == key {
			v, err := strconv.ParseInt(a.Val, 10, 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// argStr fetches a string span argument.
func argStr(s obs.Span, key string) string {
	for _, a := range s.Args {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// queueDur reads a span's queue wait: queue_ns when present, else the
// truncated legacy queue_us.
func queueDur(s obs.Span) time.Duration {
	if ns, ok := argI64(s, "queue_ns"); ok {
		return time.Duration(ns)
	}
	if us, ok := argI64(s, "queue_us"); ok {
		return time.Duration(us) * time.Microsecond
	}
	return 0
}

// childIntervals expands one child span into its phase intervals.
func childIntervals(s obs.Span, out []interval) []interval {
	switch s.Stage {
	case obs.StageNet:
		out = append(out, interval{s.Start, s.End, prioNetwork, PhaseNetwork, s.Track})
	case obs.StageCache:
		out = append(out, interval{s.Start, s.End, prioCache, PhaseCache, s.Track})
	case obs.StageSuspend:
		out = append(out, interval{s.Start, s.End, prioSuspend, PhaseSuspend, s.Track})
	case obs.StageServer:
		out = append(out, interval{s.Start, s.End, prioServer, PhaseServer, s.Track})
		if q := queueDur(s); q > 0 {
			out = append(out, interval{s.Start - q, s.Start, prioSrvQueue, PhaseQueue, s.Track})
		}
	case obs.StageDisk:
		out = append(out, diskIntervals(s)...)
		if q := queueDur(s); q > 0 {
			out = append(out, interval{s.Start - q, s.Start, prioDiskQueue, PhaseQueue, s.Track})
		}
	}
	return out
}

// diskIntervals lays the device's component breakdown out sequentially over
// the dispatch span: command overhead, then seek, rotation, transfer; any
// unexplained tail (absent with the built-in device models) counts as
// overhead. A span with no breakdown args at all (a foreign trace) falls
// back to transfer for the whole window.
func diskIntervals(s obs.Span) []interval {
	ovh, _ := argI64(s, "ovh_ns")
	seek, _ := argI64(s, "seek_ns")
	rot, _ := argI64(s, "rot_ns")
	xfer, _ := argI64(s, "xfer_ns")
	if ovh+seek+rot+xfer <= 0 {
		return []interval{{s.Start, s.End, prioDiskPhase, PhaseTransfer, s.Track}}
	}
	out := make([]interval, 0, 5)
	at := s.Start
	add := func(ph Phase, d time.Duration) {
		if d <= 0 {
			return
		}
		hi := at + d
		if hi > s.End {
			hi = s.End
		}
		if hi > at {
			out = append(out, interval{at, hi, prioDiskPhase, ph, s.Track})
			at = hi
		}
	}
	add(PhaseOverhead, time.Duration(ovh))
	add(PhaseSeek, time.Duration(seek))
	add(PhaseRotation, time.Duration(rot))
	add(PhaseTransfer, time.Duration(xfer))
	if at < s.End {
		// Unexplained tail — keep conservation exact rather than guessing.
		out = append(out, interval{at, s.End, prioDiskPhase, PhaseOverhead, s.Track})
	}
	return out
}

// attributeRequests runs the sweep for every traced request in the spans.
func attributeRequests(spans []obs.Span) []RequestAttribution {
	type reqData struct {
		span     obs.Span
		hasSpan  bool
		children []obs.Span
	}
	byID := make(map[obs.RequestID]*reqData)
	var ids []obs.RequestID
	get := func(id obs.RequestID) *reqData {
		rd := byID[id]
		if rd == nil {
			rd = &reqData{}
			byID[id] = rd
			ids = append(ids, id)
		}
		return rd
	}
	for _, s := range spans {
		if s.ID == 0 {
			continue // untraced (e.g. background flusher disk work)
		}
		rd := get(s.ID)
		if s.Stage == obs.StageRequest {
			rd.span = s
			rd.hasSpan = true
		} else {
			rd.children = append(rd.children, s)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make([]RequestAttribution, 0, len(ids))
	for _, id := range ids {
		rd := byID[id]
		if !rd.hasSpan {
			continue // orphan children (request span never closed)
		}
		out = append(out, attributeOne(id, rd.span, rd.children))
	}
	return out
}

// attributeOne tiles one request's span into phase segments via the
// deepest-wins sweep and accumulates the phase totals.
func attributeOne(id obs.RequestID, req obs.Span, children []obs.Span) RequestAttribution {
	a := RequestAttribution{
		ID:     id,
		Track:  req.Track,
		Verb:   argStr(req, "verb"),
		Start:  req.Start,
		End:    req.End,
		Phases: make(map[Phase]time.Duration),
	}
	var ivs []interval
	for _, c := range children {
		ivs = childIntervals(c, ivs)
	}
	// Clip to the request window and drop empties.
	clipped := ivs[:0]
	for _, iv := range ivs {
		if iv.lo < req.Start {
			iv.lo = req.Start
		}
		if iv.hi > req.End {
			iv.hi = req.End
		}
		if iv.hi > iv.lo {
			clipped = append(clipped, iv)
		}
	}
	ivs = clipped
	// Deterministic winner order: priority desc, then earliest, then phase
	// and track for full stability.
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].prio != ivs[j].prio {
			return ivs[i].prio > ivs[j].prio
		}
		if ivs[i].lo != ivs[j].lo {
			return ivs[i].lo < ivs[j].lo
		}
		if ivs[i].phase != ivs[j].phase {
			return ivs[i].phase < ivs[j].phase
		}
		return ivs[i].track < ivs[j].track
	})

	// Elementary segment boundaries.
	bounds := make([]time.Duration, 0, 2*len(ivs)+2)
	bounds = append(bounds, req.Start, req.End)
	for _, iv := range ivs {
		bounds = append(bounds, iv.lo, iv.hi)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	bounds = uniq

	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		phase, track := PhaseCompute, req.Track
		for _, iv := range ivs { // first match = highest priority (sorted)
			if iv.lo <= lo && iv.hi >= hi {
				phase, track = iv.phase, iv.track
				break
			}
		}
		a.Phases[phase] += hi - lo
		if n := len(a.Path); n > 0 && a.Path[n-1].Phase == phase && a.Path[n-1].Track == track && a.Path[n-1].End == lo {
			a.Path[n-1].End = hi
		} else {
			a.Path = append(a.Path, PathSegment{Phase: phase, Track: track, Start: lo, End: hi})
		}
	}
	return a
}
