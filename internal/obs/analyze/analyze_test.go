package analyze

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dualpar/internal/obs"
)

func ms(n int64) time.Duration { return time.Duration(n) * time.Millisecond }

// span is a test shorthand for building obs spans.
func span(id int64, stage obs.Stage, track string, lo, hi time.Duration, args ...obs.Arg) obs.Span {
	return obs.Span{ID: obs.RequestID(id), Stage: stage, Track: track, Start: lo, End: hi, Args: args}
}

// TestAttributionSweep checks the deepest-wins tiling on a hand-built
// request: net covers [10,90], server [20,80] (with 5ms queue), disk [40,70]
// with a full breakdown and a 10ms queue; the gaps at the edges are compute.
func TestAttributionSweep(t *testing.T) {
	spans := []obs.Span{
		span(1, obs.StageRequest, "prog0/rank0", ms(0), ms(100), obs.Str("verb", "dd-read")),
		span(1, obs.StageNet, "net", ms(10), ms(90)),
		span(1, obs.StageServer, "server0/worker0", ms(20), ms(80), obs.I64("queue_ns", int64(ms(5)))),
		span(1, obs.StageDisk, "server0/dispatch", ms(40), ms(70),
			obs.I64("queue_ns", int64(ms(10))),
			obs.I64("ovh_ns", int64(ms(2))),
			obs.I64("seek_ns", int64(ms(8))),
			obs.I64("rot_ns", int64(ms(5))),
			obs.I64("xfer_ns", int64(ms(15)))),
	}
	attrs := AttributeAll(spans)
	if len(attrs) != 1 {
		t.Fatalf("attrs = %d, want 1", len(attrs))
	}
	a := attrs[0]
	want := map[Phase]time.Duration{
		PhaseCompute:  ms(20), // [0,10) + [90,100)
		PhaseNetwork:  ms(10), // [10,15) + [85,90)... see below
		PhaseQueue:    ms(15), // server queue [15,20) + disk queue [30,40)
		PhaseServer:   ms(25), // [20,30) + [70,80) minus disk queue overlap
		PhaseOverhead: ms(2),
		PhaseSeek:     ms(8),
		PhaseRotation: ms(5),
		PhaseTransfer: ms(15),
	}
	// Derive the exact expectation: server queue synthesized [15,20] wins
	// over net; disk queue [30,40] wins over server; disk sub-phases tile
	// [40,70]. Remaining server time: [20,30)+[70,80) = 20ms. Net keeps
	// [10,15)+[80,90) = 15ms.
	want[PhaseServer] = ms(20)
	want[PhaseNetwork] = ms(15)
	var sum time.Duration
	for ph, d := range a.Phases {
		sum += d
		if want[ph] != d {
			t.Errorf("phase %s = %v, want %v", ph, d, want[ph])
		}
	}
	if sum != a.Dur() {
		t.Errorf("phases sum %v != request duration %v", sum, a.Dur())
	}
	if a.Verb != "dd-read" {
		t.Errorf("verb = %q", a.Verb)
	}
	// Path must tile [0,100] contiguously.
	if a.Path[0].Start != ms(0) || a.Path[len(a.Path)-1].End != ms(100) {
		t.Errorf("path does not tile the request: %+v", a.Path)
	}
	for i := 1; i < len(a.Path); i++ {
		if a.Path[i].Start != a.Path[i-1].End {
			t.Errorf("path gap between segment %d and %d", i-1, i)
		}
	}
}

// TestDiskFallback: a disk span with no breakdown args counts wholly as
// transfer (foreign-trace compatibility).
func TestDiskFallback(t *testing.T) {
	spans := []obs.Span{
		span(1, obs.StageRequest, "prog0/rank0", ms(0), ms(10)),
		span(1, obs.StageDisk, "server0/dispatch", ms(2), ms(8)),
	}
	a := AttributeAll(spans)[0]
	if a.Phases[PhaseTransfer] != ms(6) {
		t.Errorf("transfer = %v, want 6ms", a.Phases[PhaseTransfer])
	}
	if a.Phases[PhaseCompute] != ms(4) {
		t.Errorf("compute = %v, want 4ms", a.Phases[PhaseCompute])
	}
}

// TestBreakdownOverflow: breakdown args longer than the span clip at the
// span end; a short breakdown leaves the tail as overhead. Conservation
// holds either way.
func TestBreakdownOverflow(t *testing.T) {
	spans := []obs.Span{
		span(1, obs.StageRequest, "prog0/rank0", ms(0), ms(10)),
		// Breakdown claims 20ms inside a 6ms window.
		span(1, obs.StageDisk, "server0/dispatch", ms(2), ms(8),
			obs.I64("ovh_ns", int64(ms(1))), obs.I64("xfer_ns", int64(ms(19)))),
		span(2, obs.StageRequest, "prog0/rank1", ms(0), ms(10)),
		// Breakdown explains only 2 of 6ms; the tail is overhead.
		span(2, obs.StageDisk, "server0/dispatch", ms(2), ms(8),
			obs.I64("xfer_ns", int64(ms(2)))),
	}
	attrs := AttributeAll(spans)
	for _, a := range attrs {
		var sum time.Duration
		for _, d := range a.Phases {
			sum += d
		}
		if sum != a.Dur() {
			t.Errorf("req %d: phases sum %v != duration %v", a.ID, sum, a.Dur())
		}
	}
	if got := attrs[0].Phases[PhaseTransfer]; got != ms(5) {
		t.Errorf("clipped transfer = %v, want 5ms", got)
	}
	if got := attrs[1].Phases[PhaseOverhead]; got != ms(4) {
		t.Errorf("tail overhead = %v, want 4ms", got)
	}
}

// TestSuspendAndCache: suspension and cache phases layer under deeper
// stages but above compute.
func TestSuspendAndCache(t *testing.T) {
	spans := []obs.Span{
		span(1, obs.StageRequest, "prog0/rank0", ms(0), ms(100), obs.Str("verb", "dd-read")),
		span(1, obs.StageSuspend, "prog0/rank0", ms(10), ms(90)),
		span(1, obs.StageCache, "cache", ms(0), ms(10)),
		span(1, obs.StageNet, "net", ms(30), ms(50)),
	}
	a := AttributeAll(spans)[0]
	if a.Phases[PhaseCache] != ms(10) {
		t.Errorf("cache = %v", a.Phases[PhaseCache])
	}
	if a.Phases[PhaseNetwork] != ms(20) {
		t.Errorf("network = %v", a.Phases[PhaseNetwork])
	}
	if a.Phases[PhaseSuspend] != ms(60) {
		t.Errorf("suspend = %v, want 60ms (80 - 20 shadowed by net)", a.Phases[PhaseSuspend])
	}
	if a.Phases[PhaseCompute] != ms(10) {
		t.Errorf("compute = %v, want 10ms", a.Phases[PhaseCompute])
	}
}

// TestServerUtilization checks busy/idle accounting and bucket spreading.
func TestServerUtilization(t *testing.T) {
	spans := []obs.Span{
		span(0, obs.StageDisk, "server0/dispatch", ms(0), ms(40),
			obs.I64("seek_ns", int64(ms(10))), obs.I64("xfer_ns", int64(ms(30)))),
		span(1, obs.StageDisk, "server1/dispatch", ms(60), ms(100)),
		span(1, obs.StageRequest, "prog0/rank0", ms(0), ms(100)),
	}
	servers, bucketDur := serverUtilization(spans, ms(100), 4)
	if len(servers) != 2 {
		t.Fatalf("servers = %d", len(servers))
	}
	if bucketDur != ms(25) {
		t.Errorf("bucketDur = %v", bucketDur)
	}
	s0 := servers[0]
	if s0.Name != "server0" || s0.Busy != ms(40) || s0.Idle != ms(60) {
		t.Errorf("server0 = %+v", s0)
	}
	if s0.Seek != ms(10) || s0.Transfer != ms(30) {
		t.Errorf("server0 breakdown: seek %v xfer %v", s0.Seek, s0.Transfer)
	}
	// Bucket 0 [0,25): 10ms seek + 15ms transfer. Bucket 1 [25,50): 15ms
	// transfer. Buckets 2,3 idle.
	tl := s0.Timeline
	if tl[0].Busy != ms(25) || tl[0].Seek != ms(10) || tl[0].Transfer != ms(15) {
		t.Errorf("bucket0 = %+v", tl[0])
	}
	if tl[1].Busy != ms(15) || tl[1].Idle != ms(10) {
		t.Errorf("bucket1 = %+v", tl[1])
	}
	if tl[3].Busy != 0 || tl[3].Idle != ms(25) {
		t.Errorf("bucket3 = %+v", tl[3])
	}
	// server1: untraced-vs-traced does not matter for utilization.
	if servers[1].Busy != ms(40) {
		t.Errorf("server1 busy = %v", servers[1].Busy)
	}
}

// TestImbalanceAndStragglers checks the ranking and the index.
func TestImbalanceAndStragglers(t *testing.T) {
	servers := []ServerUtil{
		{Name: "server0", Busy: ms(30)},
		{Name: "server1", Busy: ms(90)},
		{Name: "server2", Busy: ms(30)},
	}
	idx, ranked := imbalance(servers)
	if want := 1.8; idx != want { // 90 / mean(50)
		t.Errorf("imbalance = %v, want %v", idx, want)
	}
	if ranked[0] != "server1" || ranked[1] != "server0" || ranked[2] != "server2" {
		t.Errorf("ranking = %v", ranked)
	}
}

// TestRenderersDeterministic renders the same report twice in each format
// and checks byte equality plus basic shape.
func TestRenderersDeterministic(t *testing.T) {
	spans := []obs.Span{
		span(1, obs.StageRequest, "prog0/rank0", ms(0), ms(100), obs.Str("verb", "dd-read")),
		span(1, obs.StageNet, "net", ms(10), ms(90)),
		span(1, obs.StageDisk, "server0/dispatch", ms(40), ms(70),
			obs.I64("xfer_ns", int64(ms(30)))),
		span(2, obs.StageRequest, "prog0/rank1", ms(0), ms(50), obs.Str("verb", "s2-read")),
	}
	rep := Analyze(spans, Options{Buckets: 4, TopPaths: 2})
	if !rep.Conserved() {
		t.Fatalf("synthetic report not conserved: residual %v", rep.MaxResidual)
	}
	render := func(f func(*Report, *bytes.Buffer)) string {
		var a, b bytes.Buffer
		f(rep, &a)
		f(rep, &b)
		if a.String() != b.String() {
			t.Errorf("render not deterministic")
		}
		return a.String()
	}
	text := render(func(r *Report, w *bytes.Buffer) { _ = r.RenderText(w) })
	for _, want := range []string{"time attribution", "conservation: exact", "server0", "critical paths"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
	jsonOut := render(func(r *Report, w *bytes.Buffer) { _ = r.RenderJSON(w) })
	if !strings.Contains(jsonOut, "\"requests\": 2") {
		t.Errorf("json report missing request count:\n%s", jsonOut)
	}
	csvOut := render(func(r *Report, w *bytes.Buffer) { _ = r.RenderCSV(w) })
	for _, want := range []string{"# phases", "# servers", "# critical_path"} {
		if !strings.Contains(csvOut, want) {
			t.Errorf("csv report missing section %q", want)
		}
	}
}

// TestTopPathsTieBreak: equal durations rank by request id.
func TestTopPathsTieBreak(t *testing.T) {
	attrs := []RequestAttribution{
		{ID: 3, Start: ms(0), End: ms(10)},
		{ID: 1, Start: ms(5), End: ms(15)},
		{ID: 2, Start: ms(0), End: ms(20)},
	}
	top := topPaths(attrs, 2)
	if top[0].ID != 2 || top[1].ID != 1 {
		t.Errorf("topPaths order = %d,%d; want 2,1", top[0].ID, top[1].ID)
	}
}
