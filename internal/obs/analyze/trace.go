package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"dualpar/internal/obs"
)

// traceEvent is the subset of the Chrome trace-event schema the analyzer
// needs to invert obs.WriteTrace.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// nsOf recovers exact integer nanoseconds from a µs float. WriteTrace emits
// float64(ns)/1000; every virtual-time ns fits a float64 mantissa after the
// multiply, so rounding restores the original value bit-exactly.
func nsOf(us float64) time.Duration {
	return time.Duration(math.Round(us * 1000))
}

// ParseTrace reads a Chrome trace-event JSON file written by obs.WriteTrace
// and reconstructs the span list (instants are not needed for attribution).
// Track names come from the thread_name metadata events; an "X" event on an
// unnamed (pid,tid) keeps a synthetic "pid<P>/tid<T>" track so foreign traces
// still analyze.
func ParseTrace(r io.Reader) ([]obs.Span, error) {
	var tf traceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("parse trace: %w", err)
	}
	tracks := make(map[[2]int]string)
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			tracks[[2]int{ev.Pid, ev.Tid}] = ev.Args["name"]
		}
	}
	var spans []obs.Span
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		track, ok := tracks[[2]int{ev.Pid, ev.Tid}]
		if !ok {
			track = fmt.Sprintf("pid%d/tid%d", ev.Pid, ev.Tid)
		}
		s := obs.Span{
			Stage: obs.Stage(ev.Name),
			Track: track,
			Start: nsOf(ev.Ts),
		}
		s.End = s.Start + nsOf(ev.Dur)
		keys := make([]string, 0, len(ev.Args))
		for k := range ev.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := ev.Args[k]
			if k == "req" {
				var id int64
				if _, err := fmt.Sscanf(v, "%d", &id); err == nil {
					s.ID = obs.RequestID(id)
					continue
				}
			}
			s.Args = append(s.Args, obs.Str(k, v))
		}
		spans = append(spans, s)
	}
	return spans, nil
}
