package analyze_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/obs"
	"dualpar/internal/obs/analyze"
	"dualpar/internal/workloads"
)

// runMode executes one workload under the given mode with a collector
// attached and returns the collector.
func runMode(t *testing.T, prog workloads.Program, mode core.Mode, seed int64) *obs.Collector {
	t.Helper()
	col := obs.NewCollector()
	ccfg := cluster.DefaultConfig()
	ccfg.Seed = seed
	ccfg.Obs = col
	cl := cluster.New(ccfg)
	dcfg := core.DefaultConfig()
	dcfg.SlotEvery = 100 * time.Millisecond
	runner := core.NewRunner(cl, dcfg)
	runner.Add(prog, mode, core.AddOptions{RanksPerNode: 8})
	if !runner.Run(time.Hour) {
		t.Fatal("simulation did not finish")
	}
	return col
}

// TestConservationAllModes is the attribution invariant: under every
// execution mode, every traced request's phase durations sum exactly to its
// span — no simulated nanosecond is lost or double-counted.
func TestConservationAllModes(t *testing.T) {
	modes := []struct {
		name string
		mode core.Mode
	}{
		{"vanilla", core.ModeVanilla},
		{"collective", core.ModeCollective},
		{"strategy2", core.ModeStrategy2},
		{"dualpar", core.ModeDualPar},
		{"datadriven", core.ModeDataDriven},
	}
	for _, tc := range modes {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			col := runMode(t, workloads.DefaultNoncontig(), tc.mode, 11)
			rep := analyze.FromCollector(col, analyze.Options{})
			if rep.Requests == 0 {
				t.Fatal("no requests attributed")
			}
			if !rep.Conserved() {
				t.Fatalf("attribution not conserved: max residual %v over %d requests",
					rep.MaxResidual, rep.Requests)
			}
			// Per-request re-check, independent of the report's bookkeeping.
			for _, a := range analyze.AttributeAll(col.Spans()) {
				var sum time.Duration
				for _, d := range a.Phases {
					sum += d
				}
				if sum != a.Dur() {
					t.Errorf("req %d (%s): phases sum %v != span %v", a.ID, a.Verb, sum, a.Dur())
				}
			}
			if len(rep.Servers) == 0 {
				t.Error("no server utilization extracted")
			}
			if len(rep.CriticalPaths) == 0 {
				t.Error("no critical paths extracted")
			}
			for _, cp := range rep.CriticalPaths {
				if len(cp.Path) == 0 {
					t.Errorf("req %d: empty critical path", cp.ID)
				}
			}
		})
	}
}

// TestTraceRoundTrip saves a real run's trace and parses it back: the
// analyzer must produce the identical report from the file as from the live
// collector (exact virtual-time recovery from the µs floats).
func TestTraceRoundTrip(t *testing.T) {
	col := runMode(t, workloads.DefaultNoncontig(), core.ModeDualPar, 7)
	var buf bytes.Buffer
	if err := col.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := analyze.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live := analyze.FromCollector(col, analyze.Options{})
	fromFile := analyze.Analyze(parsed, analyze.Options{})
	if live.Requests != fromFile.Requests {
		t.Fatalf("requests: live %d, parsed %d", live.Requests, fromFile.Requests)
	}
	if !reflect.DeepEqual(live.Phases, fromFile.Phases) {
		t.Errorf("phase totals diverge:\nlive:   %v\nparsed: %v", live.Phases, fromFile.Phases)
	}
	if !fromFile.Conserved() {
		t.Errorf("parsed report not conserved: residual %v", fromFile.MaxResidual)
	}
	var a, b bytes.Buffer
	if err := live.RenderText(&a); err != nil {
		t.Fatal(err)
	}
	if err := fromFile.RenderText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("text reports diverge between live and parsed trace")
	}
}
