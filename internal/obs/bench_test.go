package obs

import (
	"testing"
	"time"
)

// Micro-benchmarks of the disabled-collector fast path. Every
// instrumentation site in the simulator is either a nil-safe method call or
// an Enabled()/Traced() guard; with tracing off those must cost a nil check
// and nothing else — zero allocs/op is gated in CI. The Enabled variants
// document what tracing costs when it is on (allocations expected: span
// storage and formatted args).

// BenchmarkObsDisabledSpan mirrors a guarded recording site (iosched,
// memcache): with a nil collector the guard short-circuits before any arg
// is formatted.
func BenchmarkObsDisabledSpan(b *testing.B) {
	b.ReportAllocs()
	var c *Collector
	start := time.Duration(0)
	for i := 0; i < b.N; i++ {
		if c.Enabled() {
			c.Span(1, StageDisk, "server0/dispatch", start, start+time.Millisecond,
				I64("lbn", int64(i)), I64("sectors", 8))
		}
	}
}

// BenchmarkObsDisabledRequest mirrors the request-origination pattern
// (core.rankRequest): StartRequest behind an Enabled() guard, a Traced()
// check on the zero Ctx, and the guarded span close.
func BenchmarkObsDisabledRequest(b *testing.B) {
	b.ReportAllocs()
	var c *Collector
	for i := 0; i < b.N; i++ {
		var rc Ctx
		if c.Enabled() {
			rc = c.StartRequest("prog0/rank0")
		}
		if rc.Traced() {
			c.Span(rc.ID, StageRequest, rc.Track, 0, time.Millisecond,
				Str("verb", "dd-read"))
		}
	}
}

// BenchmarkObsDisabledInstant mirrors an unguarded nil-safe instant call
// with no args (control-plane sites like cycle transitions pass literals).
func BenchmarkObsDisabledInstant(b *testing.B) {
	b.ReportAllocs()
	var c *Collector
	for i := 0; i < b.N; i++ {
		c.Instant("cycle.fill", "prog0/ctrl", time.Duration(i))
	}
}

// BenchmarkObsEnabledSpan is the enabled counterpart (not part of the
// zero-alloc gate): per-span cost with two formatted args.
func BenchmarkObsEnabledSpan(b *testing.B) {
	b.ReportAllocs()
	c := NewCollector()
	start := time.Duration(0)
	for i := 0; i < b.N; i++ {
		c.Span(1, StageDisk, "server0/dispatch", start, start+time.Millisecond,
			I64("lbn", int64(i)), I64("sectors", 8))
	}
}
