package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilCollectorSafe exercises every entry point on a nil collector.
func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	ctx := c.StartRequest("prog0/rank0")
	if ctx.Traced() {
		t.Fatalf("nil collector issued a traced ctx: %+v", ctx)
	}
	c.Span(ctx.ID, StageRequest, ctx.Track, 0, time.Second)
	c.Instant("emc.decision", "emc", time.Second)
	if c.Spans() != nil || c.Instants() != nil {
		t.Fatal("nil collector returned recorded events")
	}
	reg := c.Metrics()
	reg.Counter("x").Add(1)
	reg.Gauge("y").Set(2)
	reg.Histogram("z").Observe(3)
	if got := reg.Counter("x").Value(); got != 0 {
		t.Fatalf("nil registry counter = %d", got)
	}
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace on nil collector: %v", err)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("nil-collector trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 0 {
		t.Fatalf("nil-collector trace has %d events", len(parsed.TraceEvents))
	}
	if err := c.WriteSummary(&buf); err != nil {
		t.Fatalf("WriteSummary on nil collector: %v", err)
	}
}

func TestStartRequestAllocatesSequentialIDs(t *testing.T) {
	c := NewCollector()
	a := c.StartRequest("prog0/rank0")
	b := c.StartRequest("prog0/rank1")
	if a.ID != 1 || b.ID != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", a.ID, b.ID)
	}
	if !a.Traced() {
		t.Fatal("allocated ctx not traced")
	}
	if a.Track != "prog0/rank0" {
		t.Fatalf("track = %q", a.Track)
	}
}

func TestSpanFeedsLatencyHistogram(t *testing.T) {
	c := NewCollector()
	ctx := c.StartRequest("prog0/rank0")
	c.Span(ctx.ID, StageRequest, ctx.Track, 10*time.Millisecond, 30*time.Millisecond)
	c.Span(ctx.ID, StageDisk, "server0/disk", 12*time.Millisecond, 20*time.Millisecond)
	h := c.Metrics().Histogram("lat.request")
	if h.Count() != 1 {
		t.Fatalf("lat.request count = %d, want 1", h.Count())
	}
	if got, want := h.Max(), 0.020; got != want {
		t.Fatalf("lat.request max = %g, want %g", got, want)
	}
	if c.Metrics().Histogram("lat.disk").Count() != 1 {
		t.Fatal("lat.disk not observed")
	}
}

func TestInstantBumpsEventCounter(t *testing.T) {
	c := NewCollector()
	c.Instant("emc.decision", "emc", time.Second, Str("verb", "read"))
	c.Instant("emc.decision", "emc", 2*time.Second, Str("verb", "write"))
	if got := c.Metrics().Counter("event.emc.decision").Value(); got != 2 {
		t.Fatalf("event.emc.decision = %d, want 2", got)
	}
}

// traceDoc mirrors the exported structure for test-side parsing.
type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s"`
	Args map[string]string `json:"args"`
}

func TestWriteTraceStructure(t *testing.T) {
	c := NewCollector()
	ctx := c.StartRequest("prog0/rank0")
	c.Span(ctx.ID, StageRequest, ctx.Track, time.Millisecond, 5*time.Millisecond, I64("bytes", 65536))
	c.Span(ctx.ID, StageNet, "server0/worker0", 2*time.Millisecond, 3*time.Millisecond)
	c.Instant("cycle.resume", "prog0/ctrl", 4*time.Millisecond, I64("cycle", 1))

	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, buf.String())
	}

	var meta, spans, instants []traceEvent
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta = append(meta, ev)
		case "X":
			spans = append(spans, ev)
		case "i":
			instants = append(instants, ev)
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// 3 tracks in 2 processes -> 2 process_name + 3 thread_name events.
	if len(meta) != 5 {
		t.Fatalf("meta events = %d, want 5", len(meta))
	}
	if len(spans) != 2 || len(instants) != 1 {
		t.Fatalf("spans=%d instants=%d, want 2 and 1", len(spans), len(instants))
	}

	req := spans[0]
	if req.Name != "request" || req.Ts != 1000 || req.Dur != 4000 {
		t.Fatalf("request span = %+v, want ts=1000 dur=4000", req)
	}
	if req.Args["req"] != "1" || req.Args["bytes"] != "65536" {
		t.Fatalf("request args = %v", req.Args)
	}
	net := spans[1]
	if net.Pid == req.Pid {
		t.Fatal("prog0 and server0 tracks share a pid")
	}
	if instants[0].S != "t" {
		t.Fatalf("instant scope = %q, want t", instants[0].S)
	}
	// Metadata first: the named-track rows must exist before events use them.
	names := map[string]bool{}
	for _, m := range meta {
		if m.Name == "thread_name" {
			names[m.Args["name"]] = true
		}
	}
	for _, want := range []string{"prog0/rank0", "server0/worker0", "prog0/ctrl"} {
		if !names[want] {
			t.Fatalf("missing thread_name for %q (have %v)", want, names)
		}
	}
}

func TestWriteTraceDeterministic(t *testing.T) {
	build := func() *Collector {
		c := NewCollector()
		for i := 0; i < 5; i++ {
			ctx := c.StartRequest("prog0/rank0")
			base := time.Duration(i) * time.Millisecond
			c.Span(ctx.ID, StageRequest, ctx.Track, base, base+time.Millisecond,
				I64("bytes", int64(i*4096)), Str("verb", "read"))
			c.Instant("cache.miss", "cache", base, I64("page", int64(i)))
		}
		return c
	}
	var a, b bytes.Buffer
	if err := build().WriteTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical collectors exported different bytes")
	}
}

func TestSummaryTable(t *testing.T) {
	c := NewCollector()
	ctx := c.StartRequest("prog0/rank0")
	c.Span(ctx.ID, StageRequest, ctx.Track, 0, 10*time.Millisecond)
	c.Instant("emc.decision", "emc", time.Second)
	c.Metrics().Gauge("queue.depth").Set(3)

	tbl := c.SummaryTable()
	if len(tbl.Rows) != 3 {
		t.Fatalf("summary rows = %d, want 3 (hist + counter + gauge)", len(tbl.Rows))
	}
	out := tbl.String()
	for _, want := range []string{"lat.request", "event.emc.decision", "queue.depth", "10.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
