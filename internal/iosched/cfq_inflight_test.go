package iosched

import (
	"testing"
	"time"
)

// TestCFQPipelinedStreamKeepsSlice: an origin that keeps a request in flight
// while submitting the next one (pipelined synchronous I/O) must not have the
// device's service time mistaken for think time. Before per-queue in-flight
// accounting, Add sampled the completion-to-arrival gap whenever the queue
// was empty — including while a request was being serviced — so a perfectly
// prompt pipelined origin accumulated think ≈ service time, anticipation was
// abandoned mid-stream, and another origin's far-away request was interleaved
// into the sequential stream.
func TestCFQPipelinedStreamKeepsSlice(t *testing.T) {
	c := NewCFQ()
	c.IdleWindow = 2 * time.Millisecond

	const svc = 5 * time.Millisecond // device service time per request
	now := time.Duration(0)

	// Drive the algorithm the way the serial dispatcher does: at most one
	// request in flight, completion svc after dispatch.
	dispatch := func() *Request {
		r, _ := c.Next(now, 0)
		return r
	}
	complete := func(r *Request) {
		now += svc
		c.NotifyComplete(r, now)
	}

	// Origin 1 first so it owns the first slice; origin 2's far-away request
	// stays pending the whole time.
	c.Add(&Request{LBN: 0, Sectors: 8, Origin: 1}, now)
	c.Add(&Request{LBN: 1 << 22, Sectors: 8, Origin: 2}, now)

	// Each pair: dispatch a, b arrives while a is in flight (4 ms into its
	// 5 ms service), then a 500 µs think gap before the next pair — far
	// inside the idle window, so the slice must never leave origin 1.
	const pairs = 8
	for i := 0; i < pairs; i++ {
		a := dispatch()
		if a == nil || a.Origin != 1 {
			t.Fatalf("pair %d: slice left origin 1 early: dispatched %+v", i, a)
		}
		c.Add(&Request{LBN: int64(2*i+1) * 64, Sectors: 8, Origin: 1}, now+4*time.Millisecond)
		complete(a)
		b := dispatch()
		if b == nil || b.Origin != 1 {
			t.Fatalf("pair %d: slice left origin 1 early: dispatched %+v", i, b)
		}
		complete(b)
		if r, idleBy := c.Next(now, 0); r != nil {
			t.Fatalf("pair %d: anticipation abandoned, origin %d interleaved (think poisoned by in-flight arrival)", i, r.Origin)
		} else if idleBy <= now {
			t.Fatalf("pair %d: idle window not armed after last completion", i)
		}
		if i < pairs-1 {
			now += 500 * time.Microsecond
			c.Add(&Request{LBN: int64(2*i+2) * 64, Sectors: 8, Origin: 1}, now)
		}
	}

	// Stream over: only after the idle window expires does origin 2 run.
	now += c.IdleWindow
	r, _ := c.Next(now, 0)
	if r == nil || r.Origin != 2 {
		t.Fatalf("origin 2 not served after stream ended: got %+v", r)
	}
	c.NotifyComplete(r, now+svc)
}
