// Package iosched models kernel block-layer I/O schedulers: NOOP, Deadline,
// and CFQ (the paper's default). A Dispatcher owns one disk.Device and runs
// the dispatch loop as a simulation Proc; submitters enqueue Requests and
// block until completion.
//
// The property the paper's motivation depends on is reproduced faithfully:
// the scheduler can only reorder requests that are *outstanding at the same
// time*. Synchronous request streams with one request in flight per process
// give the elevator nothing to work with (Fig 1c); large pre-sorted batches
// let it stream in one direction (Fig 1d).
package iosched

import (
	"fmt"
	"time"

	"dualpar/internal/check"
	"dualpar/internal/disk"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// MaxMergeSectors bounds how large adjacent requests may grow by merging,
// mirroring the kernel's max_sectors_kb (512 KB here).
const MaxMergeSectors = 1024

// A Request is one block-layer request. Create it with the exported fields
// set; the Dispatcher fills in bookkeeping (the embedded completion signal
// needs no initialization).
type Request struct {
	LBN     int64
	Sectors int64
	Write   bool
	// Origin identifies the submitting context (process/program); CFQ
	// maintains one queue per origin.
	Origin int
	// Obs carries the originating request's trace identity (zero = untraced).
	Obs obs.Ctx

	arrival  time.Duration
	done     sim.Signal
	finished bool
	absorbed []*Request // requests merged into this one
}

// End returns the first LBN after the request.
func (r *Request) End() int64 { return r.LBN + r.Sectors }

// Reset prepares a completed request for reuse, so submitters can pool
// Request records instead of allocating one per block run. The completion
// signal keeps its waiter-list capacity; everything else returns to the
// zero state. Resetting a request that has not finished (still queued,
// dispatched, or absorbed into a pending merge) would leave a live alias
// and is a caller bug.
func (r *Request) Reset() {
	if !r.finished {
		panic("iosched: Reset of unfinished request")
	}
	done := r.done
	*r = Request{done: done}
}

// Algorithm is an elevator policy. Implementations are driven by a single
// Dispatcher Proc and need no locking.
type Algorithm interface {
	Name() string
	// Add inserts a request (possibly merging it into a pending one).
	Add(r *Request, now time.Duration)
	// Next picks the request to dispatch given the current time and the
	// LBN following the last dispatched request. If it returns nil with
	// idleUntil > 0 the dispatcher should wait until idleUntil (or a new
	// arrival) and ask again — this is CFQ anticipation. nil with zero
	// idleUntil means nothing is pending.
	Next(now time.Duration, head int64) (r *Request, idleUntil time.Duration)
	// Pending reports queued (not yet dispatched) requests.
	Pending() int
	// NotifyComplete informs the policy a dispatched request finished.
	NotifyComplete(r *Request, now time.Duration)
}

// Device is the subset of disk.Device the dispatcher needs.
type Device interface {
	Access(p *sim.Proc, lbn, sectors int64, write bool) time.Duration
	Sectors() int64
}

// Dispatcher owns a device and serves requests through an Algorithm.
type Dispatcher struct {
	k       *sim.Kernel
	dev     Device
	alg     Algorithm
	arrival *sim.Signal
	lastEnd int64
	served  int64
	busy    bool
	track   string
	obs     *obs.Collector
	bd      disk.BreakdownReporter // non-nil when dev reports breakdowns

	// Audit state (nil audit = off). auditPending mirrors the elevator's
	// queued-request count from the outside; auditBytes sums sectors
	// dispatched to the device.
	audit        check.Ledger
	auditPending int64
	auditBytes   int64
}

// NewDispatcher creates a dispatcher and starts its dispatch Proc. name also
// serves as the dispatcher's trace track.
func NewDispatcher(k *sim.Kernel, name string, dev Device, alg Algorithm) *Dispatcher {
	d := &Dispatcher{k: k, dev: dev, alg: alg, arrival: k.NewSignal(), track: name}
	d.bd, _ = dev.(disk.BreakdownReporter)
	k.Spawn(name, d.loop)
	return d
}

// SetObs attaches the observability collector: every dispatched request then
// records a StageDisk span on the dispatcher's track.
func (d *Dispatcher) SetObs(c *obs.Collector) { d.obs = c }

// SetAudit attaches the audit ledger. Every Enqueue then asserts the
// elevator's pending count moved by exactly 0 (merge) or 1 (insert), and the
// dispatch loop keeps an external mirror of the pending count (which must
// never go negative) plus a byte ledger of everything sent to the device.
func (d *Dispatcher) SetAudit(l check.Ledger) { d.audit = l }

// AuditDispatchedBytes reports the bytes dispatched to the device since the
// audit ledger was attached (sectors x 512).
func (d *Dispatcher) AuditDispatchedBytes() int64 { return d.auditBytes }

// Algorithm returns the elevator policy in use.
func (d *Dispatcher) Algorithm() Algorithm { return d.alg }

// Served reports the number of requests dispatched to the device.
func (d *Dispatcher) Served() int64 { return d.served }

// Enqueue adds a request without blocking. The request's completion can be
// awaited with Wait.
func (d *Dispatcher) Enqueue(r *Request) {
	if r.Sectors <= 0 {
		panic(fmt.Sprintf("iosched: empty request %+v", r))
	}
	r.arrival = d.k.Now()
	if d.obs.Enabled() {
		// Queue-entry instant: the analyzer reconstructs block-layer queueing
		// as [arrival, dispatch) from this plus the span's queue_ns arg.
		args := []obs.Arg{obs.I64("lbn", r.LBN), obs.I64("sectors", r.Sectors),
			obs.I64("origin", int64(r.Origin))}
		if r.Obs.Traced() {
			args = append(args, obs.I64("req", int64(r.Obs.ID)))
		}
		d.obs.Instant("disk.enqueue", d.track, r.arrival, args...)
	}
	if d.audit != nil {
		before := d.alg.Pending()
		d.alg.Add(r, d.k.Now())
		delta := d.alg.Pending() - before
		d.audit.Checkf(delta == 0 || delta == 1, "iosched.pending.delta",
			"%s: Add moved Pending by %d (LBN %d origin %d), want 0 or 1",
			d.track, delta, r.LBN, r.Origin)
		d.auditPending += int64(delta)
	} else {
		d.alg.Add(r, d.k.Now())
	}
	d.arrival.Broadcast()
}

// Submit enqueues r and blocks p until it completes.
func (d *Dispatcher) Submit(p *sim.Proc, r *Request) {
	d.Enqueue(r)
	d.Wait(p, r)
}

// Wait blocks p until r (previously enqueued) completes.
func (d *Dispatcher) Wait(p *sim.Proc, r *Request) {
	for !r.finished {
		r.done.Wait(p)
	}
}

// Done reports whether r has completed.
func (d *Dispatcher) Done(r *Request) bool { return r.finished }

func (d *Dispatcher) loop(p *sim.Proc) {
	for {
		r, idleUntil := d.alg.Next(p.Now(), d.lastEnd)
		if r == nil {
			if idleUntil > p.Now() {
				// Anticipation: wait for a same-origin arrival or the idle
				// window to expire.
				d.arrival.WaitTimeout(p, idleUntil-p.Now())
			} else {
				d.arrival.Wait(p)
			}
			continue
		}
		d.busy = true
		start := p.Now()
		if d.audit != nil {
			// Count before Access: the device updates its stats before any
			// sleep, so the two ledgers agree at every yield point.
			d.auditBytes += r.Sectors * 512
		}
		d.dev.Access(p, r.LBN, r.Sectors, r.Write)
		d.busy = false
		if d.obs.Enabled() {
			rw := "read"
			if r.Write {
				rw = "write"
			}
			var bd disk.Breakdown
			if d.bd != nil {
				bd = d.bd.LastBreakdown()
			}
			d.obs.Span(r.Obs.ID, obs.StageDisk, d.track, start, p.Now(),
				obs.I64("lbn", r.LBN), obs.I64("sectors", r.Sectors), obs.Str("rw", rw),
				obs.I64("queue_us", int64((start-r.arrival)/time.Microsecond)),
				obs.I64("queue_ns", int64(start-r.arrival)),
				obs.I64("ovh_ns", int64(bd.Overhead)), obs.I64("seek_ns", int64(bd.Seek)),
				obs.I64("rot_ns", int64(bd.Rotation)), obs.I64("xfer_ns", int64(bd.Transfer)),
				obs.I64("origin", int64(r.Origin)))
		}
		d.lastEnd = r.End()
		d.served++
		d.alg.NotifyComplete(r, p.Now())
		if d.audit != nil {
			// One dispatch retires exactly one pending entry: absorbed merges
			// never entered the mirror (their Add deltas were 0).
			d.auditPending--
			d.audit.Checkf(d.auditPending >= 0, "iosched.pending.negative",
				"%s: pending mirror went negative after dispatch of LBN %d", d.track, r.LBN)
			d.audit.Checkf(d.auditPending == int64(d.alg.Pending()), "iosched.pending.mirror",
				"%s: pending mirror %d != elevator Pending %d", d.track, d.auditPending, d.alg.Pending())
		}
		d.complete(r)
	}
}

func (d *Dispatcher) complete(r *Request) {
	r.finished = true
	r.done.Broadcast()
	for _, a := range r.absorbed {
		a.finished = true
		a.done.Broadcast()
	}
	r.absorbed = nil
}
