package iosched

import "time"

// CFQ models the Completely Fair Queueing elevator, the paper's kernel
// default. Each origin (process) gets its own LBN-sorted queue; queues are
// served round-robin in time slices; when the active queue drains, CFQ
// *anticipates* — idles up to IdleWindow waiting for the next request from
// the same origin (if that origin's think time is short) before switching.
//
// The consequence the paper builds on: CFQ never merges service across
// origins, so interleaved synchronous streams from many processes produce
// back-and-forth head movement no matter how much locality exists across the
// streams, while a single origin submitting a large sorted batch is served
// in one sweep.
type CFQ struct {
	SliceDuration time.Duration
	IdleWindow    time.Duration

	queues map[int]*cfqQueue
	order  []int // round-robin rotation of origins
	active int   // origin owning the current slice; -1 if none
	slice  time.Duration
	idleBy time.Duration
	count  int
}

type cfqQueue struct {
	origin       int
	q            sortedQueue
	lastComplete time.Duration
	everServed   bool
	inflight     int           // dispatched to the device, not yet completed
	think        time.Duration // EWMA of completion-to-next-arrival gap
}

// NewCFQ returns a CFQ elevator with kernel-default tunables (slice_sync
// 100 ms, slice_idle 8 ms).
func NewCFQ() *CFQ {
	return &CFQ{
		SliceDuration: 100 * time.Millisecond,
		IdleWindow:    8 * time.Millisecond,
		queues:        make(map[int]*cfqQueue),
		active:        -1,
	}
}

// Name implements Algorithm.
func (c *CFQ) Name() string { return "cfq" }

// Add implements Algorithm.
func (c *CFQ) Add(r *Request, now time.Duration) {
	q := c.queues[r.Origin]
	if q == nil {
		q = &cfqQueue{origin: r.Origin}
		c.queues[r.Origin] = q
		c.order = append(c.order, r.Origin)
	}
	// Think time is the gap between a completion and the origin's *next*
	// submission. With a request still in flight that gap has not started,
	// so sampling here would fold the device's service time into the EWMA
	// and make a perfectly synchronous pipelined origin look seeky.
	if q.q.len() == 0 && q.inflight == 0 && q.everServed {
		sample := now - q.lastComplete
		q.think = (q.think*7 + sample) / 8
	}
	if !q.q.insert(r) {
		c.count++
	}
}

// Next implements Algorithm.
func (c *CFQ) Next(now time.Duration, head int64) (*Request, time.Duration) {
	if c.count == 0 && c.active == -1 {
		return nil, 0
	}
	if c.active != -1 {
		q := c.queues[c.active]
		expired := now-c.slice >= c.SliceDuration
		switch {
		case q.q.len() > 0 && !expired:
			return c.take(q, head), 0
		case q.q.len() == 0 && !expired && q.think <= c.IdleWindow && now < c.idleBy:
			// Anticipate the origin's next request.
			return nil, c.idleBy
		default:
			c.deactivate()
		}
	}
	// Select the next origin with pending work, in rotation order.
	for i, origin := range c.order {
		q := c.queues[origin]
		if q.q.len() == 0 {
			continue
		}
		// Rotate so this origin is at the front (it will move to the back
		// when deactivated).
		rot := append([]int(nil), c.order[i:]...)
		c.order = append(rot, c.order[:i]...)
		c.active = origin
		c.slice = now
		return c.take(q, head), 0
	}
	return nil, 0
}

func (c *CFQ) take(q *cfqQueue, head int64) *Request {
	r := q.q.nextFrom(head)
	c.count--
	q.inflight++
	return r
}

func (c *CFQ) deactivate() {
	if c.active == -1 {
		return
	}
	// Move the active origin to the back of the rotation.
	for i, origin := range c.order {
		if origin == c.active {
			c.order = append(c.order[:i], c.order[i+1:]...)
			c.order = append(c.order, origin)
			break
		}
	}
	c.active = -1
	// The idle deadline belongs to the slice that just ended; a later slice
	// must not anticipate (or give up) against it.
	c.idleBy = 0
}

// Pending implements Algorithm.
func (c *CFQ) Pending() int { return c.count }

// NotifyComplete implements Algorithm.
func (c *CFQ) NotifyComplete(r *Request, now time.Duration) {
	q := c.queues[r.Origin]
	if q == nil {
		return
	}
	q.lastComplete = now
	q.everServed = true
	if q.inflight > 0 {
		q.inflight--
	}
	// Arm the idle window only once the current slice's last request has
	// completed; with requests still in flight the origin has not gone
	// quiet, and the window would start (and possibly expire) too early.
	if r.Origin == c.active && q.q.len() == 0 && q.inflight == 0 {
		c.idleBy = now + c.IdleWindow
	}
}
