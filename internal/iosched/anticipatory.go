package iosched

import "time"

// Anticipatory models the Linux anticipatory scheduler (the paper's ref
// [17], Iyer & Druschel's framework against deceptive idleness): a one-way
// elevator that, after serving a synchronous read, deliberately keeps the
// disk idle for a short window if the just-served process is expected to
// issue a nearby request — even while other requests are pending.
//
// Unlike CFQ there are no per-process queues or time slices: anticipation
// is per-request, keyed on the last served origin's think time and seek
// proximity history.
type Anticipatory struct {
	IdleWindow  time.Duration
	WriteExpire time.Duration

	sorted   sortedQueue
	fifoW    []*Request
	deadline map[*Request]time.Duration

	lastOrigin   int
	lastEnd      int64
	lastComplete time.Duration
	haveLast     bool
	origins      map[int]*originStats
}

type originStats struct {
	think    time.Duration // EWMA completion-to-next-request gap
	seekDist int64         // EWMA distance from last served position
	samples  int
}

// NewAnticipatory returns an anticipatory elevator with kernel-like
// tunables (antic_expire ~6 ms).
func NewAnticipatory() *Anticipatory {
	return &Anticipatory{
		IdleWindow:  6 * time.Millisecond,
		WriteExpire: 5 * time.Second,
		deadline:    make(map[*Request]time.Duration),
		origins:     make(map[int]*originStats),
	}
}

// Name implements Algorithm.
func (a *Anticipatory) Name() string { return "anticipatory" }

// Add implements Algorithm.
func (a *Anticipatory) Add(r *Request, now time.Duration) {
	// Track the submitting origin's think time before merging.
	st := a.origins[r.Origin]
	if st == nil {
		st = &originStats{}
		a.origins[r.Origin] = st
	}
	if a.haveLast && r.Origin == a.lastOrigin {
		gap := now - a.lastComplete
		st.think = (st.think*3 + gap) / 4
		d := r.LBN - a.lastEnd
		if d < 0 {
			d = -d
		}
		st.seekDist = (st.seekDist*3 + d) / 4
		st.samples++
	}
	if a.sorted.insert(r) {
		return
	}
	if r.Write {
		a.fifoW = append(a.fifoW, r)
		a.deadline[r] = now + a.WriteExpire
	}
}

// anticipating reports whether the scheduler should hold the disk idle for
// the last origin: short think time and historically near requests.
func (a *Anticipatory) anticipating(now time.Duration) bool {
	if !a.haveLast {
		return false
	}
	st := a.origins[a.lastOrigin]
	if st == nil || st.samples < 2 {
		return true // optimistic at first, like the kernel
	}
	const nearSectors = 4096 // ~2 MB: beyond this, waiting cannot pay off
	return st.think <= a.IdleWindow && st.seekDist <= nearSectors
}

// Next implements Algorithm.
func (a *Anticipatory) Next(now time.Duration, head int64) (*Request, time.Duration) {
	if a.sorted.len() == 0 {
		return nil, 0
	}
	// Expired writes preempt anticipation.
	if len(a.fifoW) > 0 && a.deadline[a.fifoW[0]] <= now {
		r := a.fifoW[0]
		a.take(r)
		return r, 0
	}
	best := a.sorted.peekFrom(head)
	// If the best candidate is from another origin and the last origin is
	// worth waiting for, idle.
	if best.Origin != a.lastOrigin && a.anticipating(now) && now < a.lastComplete+a.IdleWindow {
		return nil, a.lastComplete + a.IdleWindow
	}
	a.take(best)
	return best, 0
}

func (a *Anticipatory) take(r *Request) {
	a.sorted.remove(r)
	delete(a.deadline, r)
	a.fifoW = removeReq(a.fifoW, r)
}

// Pending implements Algorithm.
func (a *Anticipatory) Pending() int { return a.sorted.len() }

// NotifyComplete implements Algorithm.
func (a *Anticipatory) NotifyComplete(r *Request, now time.Duration) {
	a.lastOrigin = r.Origin
	a.lastEnd = r.End()
	a.lastComplete = now
	a.haveLast = true
}
