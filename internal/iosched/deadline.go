package iosched

import "time"

// Deadline models the kernel deadline elevator: requests are served in
// ascending LBN batches, but each request also sits in a FIFO with an
// expiry (reads 500 ms, writes 5 s); when the FIFO head expires the
// elevator jumps to it, bounding starvation.
type Deadline struct {
	ReadExpire  time.Duration
	WriteExpire time.Duration
	BatchSize   int

	sorted   sortedQueue
	fifoR    []*Request
	fifoW    []*Request
	inBatch  int
	deadline map[*Request]time.Duration
}

// NewDeadline returns a deadline elevator with kernel-default tunables.
func NewDeadline() *Deadline {
	return &Deadline{
		ReadExpire:  500 * time.Millisecond,
		WriteExpire: 5 * time.Second,
		BatchSize:   16,
		deadline:    make(map[*Request]time.Duration),
	}
}

// Name implements Algorithm.
func (d *Deadline) Name() string { return "deadline" }

// Add implements Algorithm.
func (d *Deadline) Add(r *Request, now time.Duration) {
	if d.sorted.insert(r) {
		return // merged into an existing request
	}
	if r.Write {
		d.fifoW = append(d.fifoW, r)
		d.deadline[r] = now + d.WriteExpire
	} else {
		d.fifoR = append(d.fifoR, r)
		d.deadline[r] = now + d.ReadExpire
	}
}

// Next implements Algorithm.
func (d *Deadline) Next(now time.Duration, head int64) (*Request, time.Duration) {
	if d.sorted.len() == 0 {
		return nil, 0
	}
	// Expired FIFO head preempts the batch.
	if d.inBatch >= d.BatchSize {
		d.inBatch = 0
	}
	if r := d.expired(now); r != nil {
		d.take(r)
		d.inBatch = 1
		return r, 0
	}
	r := d.sorted.peekFrom(head)
	d.take(r)
	d.inBatch++
	return r, 0
}

func (d *Deadline) expired(now time.Duration) *Request {
	if len(d.fifoR) > 0 && d.deadline[d.fifoR[0]] <= now {
		return d.fifoR[0]
	}
	if len(d.fifoW) > 0 && d.deadline[d.fifoW[0]] <= now {
		return d.fifoW[0]
	}
	return nil
}

// take removes r from all structures.
func (d *Deadline) take(r *Request) {
	d.sorted.remove(r)
	delete(d.deadline, r)
	d.fifoR = removeReq(d.fifoR, r)
	d.fifoW = removeReq(d.fifoW, r)
}

func removeReq(s []*Request, r *Request) []*Request {
	for i, x := range s {
		if x == r {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = nil
			return s[:len(s)-1]
		}
	}
	return s
}

// Pending implements Algorithm.
func (d *Deadline) Pending() int { return d.sorted.len() }

// NotifyComplete implements Algorithm.
func (d *Deadline) NotifyComplete(r *Request, now time.Duration) {}
