package iosched

import (
	"testing"
	"time"

	"dualpar/internal/disk"
	"dualpar/internal/sim"
)

func TestAnticipatorySortsBatch(t *testing.T) {
	reqs := []*Request{
		{LBN: 9000, Sectors: 8, Origin: 1},
		{LBN: 1000, Sectors: 8, Origin: 2},
		{LBN: 5000, Sectors: 8, Origin: 3},
	}
	got := serviceOrder(t, NewAnticipatory(), reqs, []time.Duration{0, 0, 0})
	want := []int64{1000, 5000, 9000}
	for i := range want {
		if got[i].LBN != want[i] {
			t.Fatalf("order %+v, want ascending %v", got, want)
		}
	}
}

func TestAnticipatoryWaitsForNearbyRequest(t *testing.T) {
	// Origin 1 issues a sequential synchronous stream; origin 2 has a
	// far-away request pending. Once origin 1's think time and proximity
	// are established, the scheduler idles for origin 1 instead of seeking
	// to origin 2.
	k := sim.NewKernel(1)
	dp := disk.DefaultParams()
	dp.Sectors = 1 << 24
	dp.RandomRotation = false
	d := disk.New(dp)
	tr := d.EnableTrace()
	disp := NewDispatcher(k, "disp", d, NewAnticipatory())
	k.After(0, func() { disp.Enqueue(&Request{LBN: 1 << 23, Sectors: 8, Origin: 2}) })
	k.Spawn("stream", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			disp.Submit(p, &Request{LBN: int64(i) * 8, Sectors: 8, Origin: 1})
			p.Sleep(time.Millisecond) // think time well under the window
		}
	})
	k.RunUntil(time.Hour)
	entries := tr.Entries()
	if len(entries) != 9 {
		t.Fatalf("served %d, want 9", len(entries))
	}
	// After warmup (2 samples), the stream must be uninterrupted: find the
	// far request's service position; it must be near the start (before
	// anticipation kicks in) or at the very end.
	farPos := -1
	for i, e := range entries {
		if e.LBN == 1<<23 {
			farPos = i
		}
	}
	if farPos > 3 && farPos != len(entries)-1 {
		t.Fatalf("far request served mid-stream at %d: %+v", farPos, entries)
	}
}

func TestAnticipatoryGivesUpOnSeekyOrigin(t *testing.T) {
	// Origin 1's requests are far apart (seeky): anticipation must not
	// hold the disk for it once history shows waiting cannot pay off.
	k := sim.NewKernel(1)
	dp := disk.DefaultParams()
	dp.Sectors = 1 << 24
	dp.RandomRotation = false
	d := disk.New(dp)
	tr := d.EnableTrace()
	disp := NewDispatcher(k, "disp", d, NewAnticipatory())
	done := make([]time.Duration, 0, 12)
	k.Spawn("seeky", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			disp.Submit(p, &Request{LBN: int64(i%2)*(1<<23) + int64(i)*100000, Sectors: 8, Origin: 1})
			p.Sleep(time.Millisecond)
			done = append(done, p.Now())
		}
	})
	k.Spawn("other", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			disp.Submit(p, &Request{LBN: 4096 + int64(i)*8, Sectors: 8, Origin: 2})
			p.Sleep(time.Millisecond)
		}
	})
	k.RunUntil(time.Hour)
	if tr.Len() != 12 {
		t.Fatalf("served %d, want 12", tr.Len())
	}
	// The run must complete without the ~6ms idle being inserted after
	// every one of origin 1's requests; a loose bound on total time
	// catches pathological anticipation.
	last := tr.Entries()[tr.Len()-1].At
	if last > 200*time.Millisecond {
		t.Fatalf("run took %v; anticipation is stalling on a seeky origin", last)
	}
}

func TestAnticipatoryWriteExpiry(t *testing.T) {
	// A pending write must eventually be served even while reads keep the
	// elevator busy elsewhere.
	k := sim.NewKernel(1)
	dp := disk.DefaultParams()
	dp.Sectors = 1 << 24
	d := disk.New(dp)
	tr := d.EnableTrace()
	alg := NewAnticipatory()
	alg.WriteExpire = 100 * time.Millisecond
	disp := NewDispatcher(k, "disp", d, alg)
	k.After(0, func() { disp.Enqueue(&Request{LBN: 1 << 23, Sectors: 8, Write: true, Origin: 9}) })
	for i := 0; i < 100; i++ {
		i := i
		k.After(time.Duration(i)*3*time.Millisecond, func() {
			disp.Enqueue(&Request{LBN: int64(i) * 512, Sectors: 8, Origin: 1})
		})
	}
	k.RunUntil(time.Hour)
	servedAt := time.Duration(-1)
	for _, e := range tr.Entries() {
		if e.Write {
			servedAt = e.At
		}
	}
	if servedAt < 0 || servedAt > 250*time.Millisecond {
		t.Fatalf("expired write served at %v, want bounded by expiry", servedAt)
	}
}

func TestAnticipatoryName(t *testing.T) {
	if NewAnticipatory().Name() != "anticipatory" {
		t.Fatalf("name = %q", NewAnticipatory().Name())
	}
}
