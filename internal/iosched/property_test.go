package iosched

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dualpar/internal/disk"
	"dualpar/internal/sim"
)

// completionProperty drives a random request stream through an algorithm
// and checks conservation: every submitted request completes exactly once,
// and the device moves exactly the submitted bytes.
func completionProperty(t *testing.T, mk func() Algorithm) {
	t.Helper()
	f := func(seed int64, n uint8) bool {
		count := 1 + int(n)%48
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel(seed)
		dp := disk.DefaultParams()
		dp.Sectors = 1 << 24
		dp.Seed = seed
		d := disk.New(dp)
		disp := NewDispatcher(k, "disp", d, mk())
		completed := 0
		var wantBytes int64
		for i := 0; i < count; i++ {
			r := &Request{
				LBN:     rng.Int63n(1 << 20),
				Sectors: 1 + rng.Int63n(64),
				Write:   rng.Intn(2) == 0,
				Origin:  rng.Intn(5),
			}
			wantBytes += r.Sectors * 512
			at := time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
			k.After(at, func() { disp.Enqueue(r) })
			req := r
			k.Spawn("waiter", func(p *sim.Proc) {
				p.Sleep(at)
				disp.Wait(p, req)
				completed++
			})
		}
		k.RunUntil(time.Hour)
		st := d.Stats()
		return completed == count && st.BytesRead+st.BytesWritten == wantBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNOOPCompletesEverything(t *testing.T) {
	completionProperty(t, func() Algorithm { return NewNOOP() })
}

func TestDeadlineCompletesEverything(t *testing.T) {
	completionProperty(t, func() Algorithm { return NewDeadline() })
}

func TestCFQCompletesEverything(t *testing.T) {
	completionProperty(t, func() Algorithm { return NewCFQ() })
}

func TestAnticipatoryCompletesEverything(t *testing.T) {
	completionProperty(t, func() Algorithm { return NewAnticipatory() })
}

// Overlapping submissions from many concurrent procs must also all finish
// (exercises merge-completion and wakeup paths together).
func TestConcurrentSubmittersAllComplete(t *testing.T) {
	for _, mk := range []func() Algorithm{
		func() Algorithm { return NewNOOP() },
		func() Algorithm { return NewDeadline() },
		func() Algorithm { return NewCFQ() },
		func() Algorithm { return NewAnticipatory() },
	} {
		k := sim.NewKernel(11)
		dp := disk.DefaultParams()
		dp.Sectors = 1 << 24
		d := disk.New(dp)
		disp := NewDispatcher(k, "disp", d, mk())
		done := 0
		for o := 0; o < 8; o++ {
			o := o
			k.Spawn("submitter", func(p *sim.Proc) {
				for i := 0; i < 20; i++ {
					disp.Submit(p, &Request{
						LBN:     int64(o)*100000 + int64(i)*8,
						Sectors: 8,
						Origin:  o,
					})
					done++
				}
			})
		}
		k.RunUntil(time.Hour)
		if done != 160 {
			t.Fatalf("%T: %d of 160 submissions completed", mk(), done)
		}
	}
}
