package iosched

import (
	"testing"
	"time"

	"dualpar/internal/disk"
	"dualpar/internal/sim"
)

func newTestDisk() *disk.Disk {
	p := disk.DefaultParams()
	p.Sectors = 1 << 24
	return disk.New(p)
}

// submitAll enqueues all requests at the given times and runs to completion,
// returning the service order (by trace).
func serviceOrder(t *testing.T, alg Algorithm, reqs []*Request, at []time.Duration) []disk.Entry {
	t.Helper()
	k := sim.NewKernel(1)
	d := newTestDisk()
	tr := d.EnableTrace()
	disp := NewDispatcher(k, "disp", d, alg)
	for i, r := range reqs {
		r := r
		k.After(at[i], func() { disp.Enqueue(r) })
	}
	k.RunUntil(time.Hour)
	return tr.Entries()
}

func TestNOOPServesFIFO(t *testing.T) {
	reqs := []*Request{
		{LBN: 3000, Sectors: 8, Origin: 1},
		{LBN: 1000, Sectors: 8, Origin: 2},
		{LBN: 2000, Sectors: 8, Origin: 3},
	}
	got := serviceOrder(t, NewNOOP(), reqs, []time.Duration{0, 0, 0})
	want := []int64{3000, 1000, 2000}
	for i := range want {
		if got[i].LBN != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestNOOPBackMerge(t *testing.T) {
	reqs := []*Request{
		{LBN: 0, Sectors: 8, Origin: 1},
		{LBN: 8, Sectors: 8, Origin: 1},
		{LBN: 16, Sectors: 8, Origin: 1},
	}
	got := serviceOrder(t, NewNOOP(), reqs, []time.Duration{0, 0, 0})
	if len(got) != 1 || got[0].Sectors != 24 {
		t.Fatalf("merged dispatches = %v, want single 24-sector request", got)
	}
}

func TestDeadlineSortsBatch(t *testing.T) {
	reqs := []*Request{
		{LBN: 9000, Sectors: 8, Origin: 1},
		{LBN: 1000, Sectors: 8, Origin: 2},
		{LBN: 5000, Sectors: 8, Origin: 3},
	}
	got := serviceOrder(t, NewDeadline(), reqs, []time.Duration{0, 0, 0})
	want := []int64{1000, 5000, 9000}
	for i := range want {
		if got[i].LBN != want[i] {
			t.Fatalf("order %+v, want ascending %v", got, want)
		}
	}
}

func TestDeadlineExpiryPreemptsElevator(t *testing.T) {
	// One far-away read sits while a stream of ascending reads keeps the
	// elevator busy; after ReadExpire it must be served.
	k := sim.NewKernel(1)
	d := newTestDisk()
	tr := d.EnableTrace()
	alg := NewDeadline()
	disp := NewDispatcher(k, "disp", d, alg)
	k.After(0, func() { disp.Enqueue(&Request{LBN: 1 << 23, Sectors: 8, Origin: 9}) })
	for i := 0; i < 200; i++ {
		i := i
		k.After(time.Duration(i)*4*time.Millisecond, func() {
			disp.Enqueue(&Request{LBN: int64(i) * 1024, Sectors: 8, Origin: 1})
		})
	}
	k.RunUntil(time.Hour)
	servedAt := time.Duration(-1)
	for _, e := range tr.Entries() {
		if e.LBN == 1<<23 {
			servedAt = e.At
		}
	}
	if servedAt < 0 {
		t.Fatalf("expired request never served")
	}
	if servedAt > 700*time.Millisecond {
		t.Fatalf("expired request served at %v, deadline should bound it near 500ms", servedAt)
	}
}

func TestCFQSingleOriginElevator(t *testing.T) {
	// A single origin's batch is served in ascending order regardless of
	// arrival order.
	reqs := []*Request{
		{LBN: 9000, Sectors: 8, Origin: 1},
		{LBN: 1000, Sectors: 8, Origin: 1},
		{LBN: 5000, Sectors: 8, Origin: 1},
	}
	got := serviceOrder(t, NewCFQ(), reqs, []time.Duration{0, 0, 0})
	want := []int64{1000, 5000, 9000}
	for i := range want {
		if got[i].LBN != want[i] {
			t.Fatalf("order %+v, want ascending %v", got, want)
		}
	}
}

func TestCFQDoesNotSortAcrossOrigins(t *testing.T) {
	// Two origins with interleaved LBNs: CFQ serves per-origin, so the
	// global order is NOT fully ascending even though a global elevator
	// would make it so. This is the paper's Fig 1(c) behaviour.
	var reqs []*Request
	var at []time.Duration
	for i := 0; i < 8; i++ {
		reqs = append(reqs, &Request{LBN: int64(i) * 2000, Sectors: 8, Origin: i % 2})
		at = append(at, 0)
	}
	got := serviceOrder(t, NewCFQ(), reqs, at)
	ascending := true
	for i := 1; i < len(got); i++ {
		if got[i].LBN < got[i-1].LBN {
			ascending = false
		}
	}
	if ascending {
		t.Fatalf("CFQ produced a globally sorted order; per-origin queueing should prevent that: %+v", got)
	}
}

func TestCFQAnticipationKeepsOrigin(t *testing.T) {
	// Origin 1 issues a synchronous sequential stream (next request arrives
	// 1ms after the previous completes — inside the 8ms idle window).
	// Origin 2 has a pending far-away request. CFQ should idle for origin 1
	// and serve its whole stream before switching.
	k := sim.NewKernel(1)
	d := newTestDisk()
	tr := d.EnableTrace()
	disp := NewDispatcher(k, "disp", d, NewCFQ())
	k.After(0, func() { disp.Enqueue(&Request{LBN: 1 << 23, Sectors: 8, Origin: 2}) })
	k.Spawn("stream", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			r := &Request{LBN: int64(i) * 8, Sectors: 8, Origin: 1}
			disp.Submit(p, r)
			p.Sleep(time.Millisecond)
		}
	})
	k.RunUntil(time.Hour)
	entries := tr.Entries()
	if len(entries) != 6 {
		t.Fatalf("served %d requests, want 6", len(entries))
	}
	// All five origin-1 requests must be served before origin 2's.
	// Origin 1 wins the first dispatch only if its request is first; the
	// enqueue order makes origin 2 first. So check instead: after the first
	// origin-1 service, the stream is not interrupted.
	first1 := -1
	for i, e := range entries {
		if e.LBN < 1<<23 {
			first1 = i
			break
		}
	}
	for i := first1; i < first1+4; i++ {
		if entries[i].LBN >= 1<<23 {
			t.Fatalf("origin-1 stream interrupted at %d: %+v", i, entries)
		}
	}
}

func TestCFQIdleExpirySwitchesOrigin(t *testing.T) {
	// Origin 1 issues one request and never returns; origin 2 pending.
	// After the idle window, CFQ must switch to origin 2.
	k := sim.NewKernel(1)
	d := newTestDisk()
	tr := d.EnableTrace()
	disp := NewDispatcher(k, "disp", d, NewCFQ())
	k.After(0, func() { disp.Enqueue(&Request{LBN: 0, Sectors: 8, Origin: 1}) })
	k.After(time.Millisecond, func() { disp.Enqueue(&Request{LBN: 1 << 22, Sectors: 8, Origin: 2}) })
	k.RunUntil(time.Hour)
	if tr.Len() != 2 {
		t.Fatalf("served %d, want 2", tr.Len())
	}
	last := tr.Entries()[1]
	if last.LBN != 1<<22 {
		t.Fatalf("second served LBN %d, want origin 2's", last.LBN)
	}
	// Service of origin 2 should happen shortly after idle expiry (~8ms),
	// not immediately and not after the 100ms slice.
	if last.At < 8*time.Millisecond || last.At > 60*time.Millisecond {
		t.Fatalf("origin 2 served at %v, want after ~8ms idle expiry", last.At)
	}
}

func TestCFQLargeSortedBatchOneSweep(t *testing.T) {
	// A single origin submitting a large pre-sorted batch is served in one
	// monotone sweep: Fig 1(d).
	var reqs []*Request
	var at []time.Duration
	for i := 0; i < 64; i++ {
		reqs = append(reqs, &Request{LBN: int64(i) * 4096, Sectors: 32, Origin: 1})
		at = append(at, 0)
	}
	got := serviceOrder(t, NewCFQ(), reqs, at)
	if m := disk.Monotonicity(got); m < 0.99 {
		t.Fatalf("monotonicity = %g, want ~1 for sorted single-origin batch", m)
	}
}

func TestSubmitBlocksUntilComplete(t *testing.T) {
	k := sim.NewKernel(1)
	d := newTestDisk()
	disp := NewDispatcher(k, "disp", d, NewNOOP())
	var doneAt time.Duration
	k.Spawn("client", func(p *sim.Proc) {
		disp.Submit(p, &Request{LBN: 1 << 20, Sectors: 8, Origin: 1})
		doneAt = p.Now()
	})
	k.RunUntil(time.Minute)
	if doneAt <= 0 {
		t.Fatalf("Submit returned at %v, want after positive service time", doneAt)
	}
}

func TestMergedRequestCompletesAbsorbed(t *testing.T) {
	k := sim.NewKernel(1)
	d := newTestDisk()
	disp := NewDispatcher(k, "disp", d, NewDeadline())
	done := 0
	wg := k.NewWaitGroup()
	wg.Add(2)
	// Submit two adjacent requests at the same instant from two procs; one
	// should merge into the other, and both submitters must unblock.
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("client", func(p *sim.Proc) {
			disp.Submit(p, &Request{LBN: int64(i) * 8, Sectors: 8, Origin: 1})
			done++
			wg.Done()
		})
	}
	k.RunUntil(time.Minute)
	if done != 2 {
		t.Fatalf("done = %d, want 2 (absorbed request must complete)", done)
	}
	if disp.Served() != 1 {
		t.Fatalf("served = %d, want 1 merged dispatch", disp.Served())
	}
}

func TestEnqueueEmptyRequestPanics(t *testing.T) {
	k := sim.NewKernel(1)
	disp := NewDispatcher(k, "disp", newTestDisk(), NewNOOP())
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	disp.Enqueue(&Request{LBN: 0, Sectors: 0})
}

func TestSortedQueueMergeBounded(t *testing.T) {
	var q sortedQueue
	a := &Request{LBN: 0, Sectors: MaxMergeSectors}
	if q.insert(a) {
		t.Fatalf("first insert merged")
	}
	b := &Request{LBN: MaxMergeSectors, Sectors: 8}
	if q.insert(b) {
		t.Fatalf("merge exceeded MaxMergeSectors")
	}
	if q.len() != 2 {
		t.Fatalf("len = %d, want 2", q.len())
	}
}

func TestSortedQueueFrontMerge(t *testing.T) {
	var q sortedQueue
	q.insert(&Request{LBN: 8, Sectors: 8})
	if !q.insert(&Request{LBN: 0, Sectors: 8}) {
		t.Fatalf("front merge failed")
	}
	r := q.nextFrom(0)
	if r.LBN != 0 || r.Sectors != 16 {
		t.Fatalf("merged request = %+v", r)
	}
}

func TestSortedQueueWrapAround(t *testing.T) {
	var q sortedQueue
	q.insert(&Request{LBN: 100, Sectors: 8})
	q.insert(&Request{LBN: 200, Sectors: 8})
	r := q.nextFrom(500) // beyond all: wrap to lowest
	if r.LBN != 100 {
		t.Fatalf("wrap pick = %d, want 100", r.LBN)
	}
}

func TestSortedQueueNoMergeAcrossDirection(t *testing.T) {
	var q sortedQueue
	q.insert(&Request{LBN: 0, Sectors: 8, Write: false})
	if q.insert(&Request{LBN: 8, Sectors: 8, Write: true}) {
		t.Fatalf("read and write merged")
	}
}
