package iosched

import "time"

// NOOP dispatches in arrival (FIFO) order, with back-merging of requests
// that arrive contiguously, like the kernel's noop elevator.
type NOOP struct {
	fifo []*Request
}

// NewNOOP returns a NOOP elevator.
func NewNOOP() *NOOP { return &NOOP{} }

// Name implements Algorithm.
func (n *NOOP) Name() string { return "noop" }

// Add implements Algorithm.
func (n *NOOP) Add(r *Request, now time.Duration) {
	if len(n.fifo) > 0 {
		last := n.fifo[len(n.fifo)-1]
		if last.Write == r.Write && last.End() == r.LBN && last.Sectors+r.Sectors <= MaxMergeSectors {
			last.Sectors += r.Sectors
			last.absorbed = append(last.absorbed, r)
			return
		}
	}
	n.fifo = append(n.fifo, r)
}

// Next implements Algorithm.
func (n *NOOP) Next(now time.Duration, head int64) (*Request, time.Duration) {
	if len(n.fifo) == 0 {
		return nil, 0
	}
	r := n.fifo[0]
	copy(n.fifo, n.fifo[1:])
	n.fifo[len(n.fifo)-1] = nil
	n.fifo = n.fifo[:len(n.fifo)-1]
	return r, 0
}

// Pending implements Algorithm.
func (n *NOOP) Pending() int { return len(n.fifo) }

// NotifyComplete implements Algorithm.
func (n *NOOP) NotifyComplete(r *Request, now time.Duration) {}
