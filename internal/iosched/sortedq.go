package iosched

import "sort"

// sortedQueue keeps pending requests in ascending LBN order and performs
// front/back merging of adjacent same-direction requests.
type sortedQueue struct {
	reqs []*Request
}

func (q *sortedQueue) len() int { return len(q.reqs) }

// insert adds r, merging with an adjacent pending request when possible.
// It reports whether r was absorbed into an existing request.
func (q *sortedQueue) insert(r *Request) bool {
	i := sort.Search(len(q.reqs), func(i int) bool { return q.reqs[i].LBN >= r.LBN })
	// Back merge: predecessor ends exactly where r starts.
	if i > 0 {
		prev := q.reqs[i-1]
		if prev.Write == r.Write && prev.End() == r.LBN && prev.Sectors+r.Sectors <= MaxMergeSectors {
			prev.Sectors += r.Sectors
			prev.absorbed = append(prev.absorbed, r)
			prev.absorbed = append(prev.absorbed, r.absorbed...)
			r.absorbed = nil
			return true
		}
	}
	// Front merge: r ends exactly where successor starts.
	if i < len(q.reqs) {
		next := q.reqs[i]
		if next.Write == r.Write && r.End() == next.LBN && next.Sectors+r.Sectors <= MaxMergeSectors {
			next.LBN = r.LBN
			next.Sectors += r.Sectors
			next.absorbed = append(next.absorbed, r)
			next.absorbed = append(next.absorbed, r.absorbed...)
			r.absorbed = nil
			return true
		}
	}
	q.reqs = append(q.reqs, nil)
	copy(q.reqs[i+1:], q.reqs[i:])
	q.reqs[i] = r
	return false
}

// nextFrom removes and returns the first request at or after head; if none,
// it wraps to the lowest LBN (C-SCAN order).
func (q *sortedQueue) nextFrom(head int64) *Request {
	if len(q.reqs) == 0 {
		return nil
	}
	i := sort.Search(len(q.reqs), func(i int) bool { return q.reqs[i].LBN >= head })
	if i == len(q.reqs) {
		i = 0
	}
	return q.removeAt(i)
}

// peekFrom returns (without removing) what nextFrom would pick.
func (q *sortedQueue) peekFrom(head int64) *Request {
	if len(q.reqs) == 0 {
		return nil
	}
	i := sort.Search(len(q.reqs), func(i int) bool { return q.reqs[i].LBN >= head })
	if i == len(q.reqs) {
		i = 0
	}
	return q.reqs[i]
}

func (q *sortedQueue) removeAt(i int) *Request {
	r := q.reqs[i]
	copy(q.reqs[i:], q.reqs[i+1:])
	q.reqs[len(q.reqs)-1] = nil
	q.reqs = q.reqs[:len(q.reqs)-1]
	return r
}

// remove deletes a specific request (identity comparison); it reports
// whether it was found.
func (q *sortedQueue) remove(r *Request) bool {
	for i, x := range q.reqs {
		if x == r {
			q.removeAt(i)
			return true
		}
	}
	return false
}
