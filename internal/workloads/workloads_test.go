package workloads

import (
	"testing"

	"dualpar/internal/ext"
)

// drain runs a generator to completion, returning all ops.
func drain(t *testing.T, g RankGen, limit int) []Op {
	t.Helper()
	var ops []Op
	for i := 0; i < limit; i++ {
		op := g.Next(TrueEnv{})
		if op.Kind == OpDone {
			return ops
		}
		ops = append(ops, op)
	}
	t.Fatalf("generator did not finish within %d ops", limit)
	return nil
}

// ioBytes sums the I/O volume of ops of the given kind.
func ioBytes(ops []Op, kind OpKind) int64 {
	var t int64
	for _, op := range ops {
		if op.Kind == kind {
			t += op.Bytes()
		}
	}
	return t
}

// coverage merges all extents of a kind across ranks of a program.
func coverage(t *testing.T, prog Program, kind OpKind, limit int) []ext.Extent {
	t.Helper()
	var all []ext.Extent
	for r := 0; r < prog.Ranks(); r++ {
		for _, op := range drain(t, prog.NewRank(r), limit) {
			if op.Kind == kind {
				all = append(all, op.Extents...)
			}
		}
	}
	return ext.Merge(all)
}

func TestDemoCoversFileExactly(t *testing.T) {
	d := DefaultDemo()
	d.FileBytes = 8 << 20
	cov := coverage(t, d, OpRead, 100000)
	if len(cov) != 1 || cov[0] != (ext.Extent{Off: 0, Len: 8 << 20}) {
		t.Fatalf("coverage = %v, want the whole 8MB file once", cov)
	}
}

func TestDemoSegmentInterleaving(t *testing.T) {
	d := DefaultDemo()
	g := d.NewRank(3)
	op := g.Next(TrueEnv{})
	if op.Kind != OpRead || len(op.Extents) != 16 {
		t.Fatalf("first op = %+v, want 16-segment read", op)
	}
	// Segment k of call 0 for rank 3: index k*8+3.
	if op.Extents[0].Off != 3*d.SegBytes {
		t.Fatalf("first segment at %d, want %d", op.Extents[0].Off, 3*d.SegBytes)
	}
	if op.Extents[1].Off != (8+3)*d.SegBytes {
		t.Fatalf("second segment at %d, want %d", op.Extents[1].Off, (8+3)*d.SegBytes)
	}
}

func TestDemoComputeEmitted(t *testing.T) {
	d := DefaultDemo()
	d.ComputePerCall = 1000
	g := d.NewRank(0)
	if op := g.Next(TrueEnv{}); op.Kind != OpCompute {
		t.Fatalf("first op = %+v, want compute", op)
	}
	if op := g.Next(TrueEnv{}); op.Kind != OpRead {
		t.Fatalf("second op = %+v, want read", op)
	}
}

func TestMPIIOTestSequentialAcrossRanks(t *testing.T) {
	m := DefaultMPIIOTest()
	m.FileBytes = 16 << 20
	cov := coverage(t, m, OpRead, 100000)
	if len(cov) != 1 || cov[0].Len != 16<<20 {
		t.Fatalf("coverage = %v, want whole file", cov)
	}
	// Rank r call j reads segment r + P*j.
	g := m.NewRank(2)
	op := g.Next(TrueEnv{})
	if op.Kind != OpRead || op.Extents[0].Off != 2*m.ReqBytes {
		t.Fatalf("rank 2 first op = %+v", op)
	}
	if op := g.Next(TrueEnv{}); op.Kind != OpBarrier {
		t.Fatalf("expected barrier after call, got %+v", op)
	}
	op = g.Next(TrueEnv{})
	if op.Extents[0].Off != (2+64)*m.ReqBytes {
		t.Fatalf("rank 2 second read at %d", op.Extents[0].Off)
	}
}

func TestMPIIOTestWriteMode(t *testing.T) {
	m := DefaultMPIIOTest()
	m.Write = true
	m.FileBytes = 4 << 20
	ops := drain(t, m.NewRank(0), 10000)
	if ioBytes(ops, OpWrite) == 0 || ioBytes(ops, OpRead) != 0 {
		t.Fatalf("write mode emitted reads")
	}
	if m.Files()[0].Precreate {
		t.Fatalf("write-mode file should not be precreated")
	}
}

func TestHPIORegionsContiguousWithSpacing(t *testing.T) {
	h := DefaultHPIO()
	h.Procs = 4
	h.RegionCount = 64
	g := h.NewRank(1)
	ops := drain(t, g, 1000)
	if len(ops) != 16 {
		t.Fatalf("rank ops = %d, want 16 regions", len(ops))
	}
	stride := h.RegionBytes + h.RegionSpacing
	if ops[0].Extents[0].Off != 16*stride {
		t.Fatalf("rank 1 first region at %d, want %d", ops[0].Extents[0].Off, 16*stride)
	}
	gap := ops[1].Extents[0].Off - ops[0].Extents[0].End()
	if gap != h.RegionSpacing {
		t.Fatalf("inter-region gap = %d, want %d", gap, h.RegionSpacing)
	}
}

func TestIORScopesDisjoint(t *testing.T) {
	i := DefaultIOR()
	i.Procs = 8
	i.FileBytes = 8 << 20
	cov := coverage(t, i, OpRead, 100000)
	if len(cov) != 1 || cov[0].Len != 8<<20 {
		t.Fatalf("coverage = %v", cov)
	}
	g := i.NewRank(3)
	op := g.Next(TrueEnv{})
	if op.Extents[0].Off != 3<<20 {
		t.Fatalf("rank 3 starts at %d, want its own scope", op.Extents[0].Off)
	}
}

func TestNoncontigColumnAccess(t *testing.T) {
	n := DefaultNoncontig()
	n.Procs = 4
	n.ElmtCount = 256 // 1 KB cells
	n.FileBytes = 4 << 20
	n.BytesPerCall = 64 << 10
	g := n.NewRank(2)
	op := g.Next(TrueEnv{})
	if op.Kind != OpRead {
		t.Fatalf("op = %+v", op)
	}
	cell := n.CellBytes()
	row := n.RowBytes()
	if op.Extents[0].Off != 2*cell {
		t.Fatalf("first cell at %d, want column 2 offset %d", op.Extents[0].Off, 2*cell)
	}
	if len(op.Extents) < 2 || op.Extents[1].Off != row+2*cell {
		t.Fatalf("second cell = %v, want next row same column", op.Extents)
	}
	cov := coverage(t, n, OpRead, 100000)
	if total := ext.Total(cov); total != n.Rows()*row {
		t.Fatalf("coverage total = %d, want %d", total, n.Rows()*row)
	}
}

func TestBTIOBlockShrinksWithProcs(t *testing.T) {
	for _, tc := range []struct {
		procs int
		block int64
	}{{16, 64}, {64, 16}, {256, 4}} {
		b := DefaultBTIO()
		b.Procs = tc.procs
		if got := b.BlockBytes(); got != tc.block {
			t.Fatalf("P=%d block = %d, want %d", tc.procs, got, tc.block)
		}
	}
}

func TestBTIOStepsCoverFile(t *testing.T) {
	b := DefaultBTIO()
	b.Procs = 8
	b.TotalBytes = 1 << 20
	b.Steps = 2
	cov := coverage(t, b, OpWrite, 100000)
	want := b.StepBytes() * int64(b.Steps)
	if len(cov) != 1 || cov[0].Len != want {
		t.Fatalf("coverage = %v, want contiguous %d", cov, want)
	}
}

func TestBTIOBarrierPerStep(t *testing.T) {
	b := DefaultBTIO()
	b.Procs = 4
	b.TotalBytes = 64 << 10
	b.Steps = 2
	ops := drain(t, b.NewRank(0), 1000)
	barriers := 0
	for _, op := range ops {
		if op.Kind == OpBarrier {
			barriers++
		}
	}
	if barriers != 2 {
		t.Fatalf("barriers = %d, want one per step", barriers)
	}
}

func TestS3asimQueriesPartitioned(t *testing.T) {
	s := DefaultS3asim()
	s.Procs = 4
	s.Queries = 8
	var writes int
	for r := 0; r < s.Procs; r++ {
		ops := drain(t, s.NewRank(r), 10000)
		for _, op := range ops {
			if op.Kind == OpWrite {
				writes++
			}
		}
	}
	if writes != s.Queries {
		t.Fatalf("result writes = %d, want one per query", writes)
	}
}

func TestS3asimResultsPackedWithoutOverlap(t *testing.T) {
	s := DefaultS3asim()
	s.Procs = 4
	s.Queries = 8
	var results []ext.Extent
	for r := 0; r < s.Procs; r++ {
		for _, op := range drain(t, s.NewRank(r), 10000) {
			if op.Kind == OpWrite {
				results = append(results, op.Extents...)
			}
		}
	}
	merged := ext.Merge(results)
	if ext.Total(merged) != ext.Total(results) {
		t.Fatalf("result writes overlap: %v", results)
	}
	if len(merged) != 1 || merged[0].Off != 0 {
		t.Fatalf("results not packed from 0: %v", merged)
	}
}

func TestS3asimVariableResultSizes(t *testing.T) {
	s := DefaultS3asim()
	sizes := map[int64]bool{}
	for q := 0; q < 16; q++ {
		sz := s.resultBytes(q)
		if sz < s.MinResult || sz >= s.MaxResult {
			t.Fatalf("result size %d outside [%d,%d)", sz, s.MinResult, s.MaxResult)
		}
		sizes[sz] = true
	}
	if len(sizes) < 4 {
		t.Fatalf("result sizes not variable: %v", sizes)
	}
}

func TestDependentReaderChainsOffsets(t *testing.T) {
	d := DefaultDependentReader()
	g := d.NewRank(0)
	ops := drain(t, g, 1000)
	if len(ops) != d.CallsPerRank {
		t.Fatalf("calls = %d, want %d", len(ops), d.CallsPerRank)
	}
	// Re-running with the same env gives the same chain (determinism).
	g2 := d.NewRank(0)
	ops2 := drain(t, g2, 1000)
	for i := range ops {
		if ops[i].Extents[0] != ops2[i].Extents[0] {
			t.Fatalf("chain not deterministic at %d", i)
		}
	}
}

type zeroEnv struct{}

func (zeroEnv) Value(string, int64) int64 { return 0 }

func TestDependentReaderDivergesUnderZeroEnv(t *testing.T) {
	d := DefaultDependentReader()
	real := drain(t, d.NewRank(0), 1000)
	g := d.NewRank(0)
	var ghost []Op
	for i := 0; i < d.CallsPerRank; i++ {
		ghost = append(ghost, g.Next(zeroEnv{}))
	}
	// First read matches (offset decided before any data), later ones
	// diverge.
	if real[0].Extents[0] != ghost[0].Extents[0] {
		t.Fatalf("first reads differ")
	}
	diverged := false
	for i := 1; i < len(real); i++ {
		if real[i].Extents[0] != ghost[i].Extents[0] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatalf("zero env did not change the chain")
	}
	// Ghost offsets are still distinct call to call (fills the cache with
	// garbage rather than re-reading one block).
	seen := map[int64]bool{}
	for _, op := range ghost[:8] {
		seen[op.Extents[0].Off] = true
	}
	if len(seen) < 4 {
		t.Fatalf("ghost offsets not distinct: %v", seen)
	}
}

func TestCloneIndependence(t *testing.T) {
	progs := []Program{
		DefaultDemo(), DefaultMPIIOTest(), DefaultHPIO(), DefaultIOR(),
		DefaultNoncontig(), DefaultBTIO(), DefaultS3asim(), DefaultDependentReader(),
	}
	for _, prog := range progs {
		g := prog.NewRank(0)
		// Advance a few ops, clone, and check both produce identical tails.
		for i := 0; i < 3; i++ {
			g.Next(TrueEnv{})
		}
		c := g.Clone()
		for i := 0; i < 10; i++ {
			a := g.Next(TrueEnv{})
			b := c.Next(TrueEnv{})
			if a.Kind != b.Kind || a.Bytes() != b.Bytes() {
				t.Fatalf("%s: clone diverged at op %d: %+v vs %+v", prog.Name(), i, a, b)
			}
			if len(a.Extents) > 0 && a.Extents[0] != b.Extents[0] {
				t.Fatalf("%s: clone extents diverged: %v vs %v", prog.Name(), a.Extents, b.Extents)
			}
		}
		// Clone advancing must not disturb the original's subsequent ops.
		c2 := g.Clone()
		for i := 0; i < 5; i++ {
			c2.Next(TrueEnv{})
		}
		a := g.Next(TrueEnv{})
		g2 := prog.NewRank(0)
		for i := 0; i < 13; i++ { // g consumed 3 + 10 ops so far
			g2.Next(TrueEnv{})
		}
		b := g2.Next(TrueEnv{})
		if a.Kind != b.Kind {
			t.Fatalf("%s: original disturbed by clone", prog.Name())
		}
	}
}

func TestContentDeterministicAndSpread(t *testing.T) {
	if Content("f", 0) != Content("f", 0) {
		t.Fatalf("content not deterministic")
	}
	if Content("f", 0) == Content("f", 8) || Content("f", 0) == Content("g", 0) {
		t.Fatalf("content collisions on trivial inputs")
	}
	if Content("f", 123) < 0 {
		t.Fatalf("content negative")
	}
}

func TestAllProgramsFinish(t *testing.T) {
	progs := []Program{
		DefaultDemo(), DefaultMPIIOTest(), DefaultHPIO(), DefaultIOR(),
		DefaultNoncontig(), DefaultBTIO(), DefaultS3asim(), DefaultDependentReader(),
	}
	for _, prog := range progs {
		for _, r := range []int{0, prog.Ranks() - 1} {
			g := prog.NewRank(r)
			n := 0
			for ; n < 2_000_000; n++ {
				if g.Next(TrueEnv{}).Kind == OpDone {
					break
				}
			}
			if n == 2_000_000 {
				t.Fatalf("%s rank %d did not finish", prog.Name(), r)
			}
			// OpDone must be sticky.
			if g.Next(TrueEnv{}).Kind != OpDone {
				t.Fatalf("%s: OpDone not sticky", prog.Name())
			}
		}
	}
}

func TestProgramMetadata(t *testing.T) {
	cases := []struct {
		prog      Program
		name      string
		precreate bool
	}{
		{DefaultDemo(), "demo", true},
		{DefaultMPIIOTest(), "mpi-io-test", true},
		{DefaultHPIO(), "hpio", true},
		{DefaultIOR(), "ior-mpi-io", true},
		{DefaultNoncontig(), "noncontig", true},
		{DefaultBTIO(), "btio", false}, // write phase: created by writing
		{DefaultDependentReader(), "dependent-reader", true},
	}
	for _, c := range cases {
		if c.prog.Name() != c.name {
			t.Fatalf("name = %q, want %q", c.prog.Name(), c.name)
		}
		files := c.prog.Files()
		if len(files) == 0 {
			t.Fatalf("%s: no files", c.name)
		}
		if files[0].Precreate != c.precreate {
			t.Fatalf("%s: precreate = %v, want %v", c.name, files[0].Precreate, c.precreate)
		}
		if c.prog.Ranks() <= 0 {
			t.Fatalf("%s: ranks = %d", c.name, c.prog.Ranks())
		}
	}
	s := DefaultS3asim()
	if s.Name() != "s3asim" || len(s.Files()) != 2 {
		t.Fatalf("s3asim metadata wrong")
	}
}

func TestEmptyFileNamePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic for empty file name", name)
			}
		}()
		fn()
	}
	d := DefaultDemo()
	d.FileName = ""
	mustPanic("demo", func() { d.NewRank(0) })
	m := DefaultMPIIOTest()
	m.FileName = ""
	mustPanic("mpiiotest", func() { m.NewRank(0) })
	h := DefaultHPIO()
	h.FileName = ""
	mustPanic("hpio", func() { h.NewRank(0) })
	i := DefaultIOR()
	i.FileName = ""
	mustPanic("ior", func() { i.NewRank(0) })
	n := DefaultNoncontig()
	n.FileName = ""
	mustPanic("noncontig", func() { n.NewRank(0) })
	b := DefaultBTIO()
	b.FileName = ""
	mustPanic("btio", func() { b.NewRank(0) })
	dr := DefaultDependentReader()
	dr.FileName = ""
	mustPanic("depreader", func() { dr.NewRank(0) })
	s := DefaultS3asim()
	s.DBName = ""
	mustPanic("s3asim", func() { s.NewRank(0) })
}

func TestBTIOReadPhase(t *testing.T) {
	b := DefaultBTIO()
	b.Read = true
	b.Procs = 4
	b.TotalBytes = 256 << 10
	b.Steps = 1
	if !b.Files()[0].Precreate {
		t.Fatalf("read phase should precreate")
	}
	ops := drain(t, b.NewRank(0), 1000)
	if ioBytes(ops, OpRead) == 0 || ioBytes(ops, OpWrite) != 0 {
		t.Fatalf("read phase emitted writes")
	}
}

func TestCheckpointTilesEachStep(t *testing.T) {
	c := DefaultCheckpoint()
	c.Procs = 4
	c.Checkpoints = 2
	cov := coverage(t, c, OpWrite, 1000)
	want := c.TotalBytes()
	if len(cov) != 1 || cov[0] != (ext.Extent{Off: 0, Len: want}) {
		t.Fatalf("coverage = %v, want contiguous %d bytes", cov, want)
	}
	// Blocks are unaligned to 4K pages and 64K stripes by construction.
	g := c.NewRank(1)
	var op Op
	for op = g.Next(TrueEnv{}); op.Kind != OpWrite; op = g.Next(TrueEnv{}) {
	}
	if op.Extents[0].Off%4096 == 0 {
		t.Fatalf("rank 1 block at %d is page-aligned; 47KB blocks must not be", op.Extents[0].Off)
	}
}

func TestCheckpointBarriersBetweenSteps(t *testing.T) {
	c := DefaultCheckpoint()
	c.Procs = 4
	c.Checkpoints = 3
	ops := drain(t, c.NewRank(0), 100)
	barriers := 0
	for _, op := range ops {
		if op.Kind == OpBarrier {
			barriers++
		}
	}
	if barriers != 3 {
		t.Fatalf("barriers = %d, want one per checkpoint", barriers)
	}
}
