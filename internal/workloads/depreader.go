package workloads

import (
	"time"

	"dualpar/internal/ext"
)

// DependentReader is the adversarial program of Table III: every read's
// offset is derived from the data returned by the previous read, so
// pre-execution cannot predict future requests — a ghost sees zeros for
// unserved reads and produces distinct wrong offsets, so everything DualPar
// prefetches for it is mis-prefetched.
type DependentReader struct {
	Procs        int
	FileBytes    int64
	ReqBytes     int64
	CallsPerRank int
	ComputePerOp time.Duration
	FileName     string
}

// DefaultDependentReader uses Table III's shape at simulation scale.
func DefaultDependentReader() DependentReader {
	return DependentReader{
		Procs:        16,
		FileBytes:    64 << 20,
		ReqBytes:     64 << 10,
		CallsPerRank: 64,
		FileName:     "depreader.dat",
	}
}

// Name implements Program.
func (d DependentReader) Name() string { return "dependent-reader" }

// Ranks implements Program.
func (d DependentReader) Ranks() int { return d.Procs }

// Files implements Program.
func (d DependentReader) Files() []FileSpec {
	return []FileSpec{{Name: d.FileName, Size: d.FileBytes, Precreate: true}}
}

// NewRank implements Program.
func (d DependentReader) NewRank(r int) RankGen {
	if d.FileName == "" {
		panic("workloads: DependentReader.FileName empty")
	}
	// Each rank starts its chain at a distinct offset.
	start := alignDown(int64(r)*(d.FileBytes/int64(d.Procs)), d.ReqBytes)
	return &depGen{d: d, rank: r, prev: -1, start: start}
}

type depGen struct {
	d       DependentReader
	rank    int
	prev    int64 // offset of the previous read; -1 before the first
	start   int64
	call    int
	pending bool
}

func (g *depGen) Next(env Env) Op {
	d := g.d
	if g.call >= d.CallsPerRank {
		return Op{Kind: OpDone}
	}
	if d.ComputePerOp > 0 && !g.pending {
		g.pending = true
		return Op{Kind: OpCompute, Dur: d.ComputePerOp}
	}
	g.pending = false
	g.call++
	// This read's offset depends on the first word of the *previous*
	// read's data: only a process that actually received that data can
	// follow the chain. A ghost whose recorded reads were never served
	// sees value 0 and derives wrong (but call-distinct) offsets.
	var off int64
	if g.prev < 0 {
		off = g.start
	} else {
		v := env.Value(d.FileName, g.prev)
		seed := v ^ int64(g.call)<<32 ^ int64(g.rank)<<16
		off = alignDown(Content("depreader-chain", seed)%(d.FileBytes-d.ReqBytes), d.ReqBytes)
	}
	g.prev = off
	return Op{Kind: OpRead, File: d.FileName, Extents: []ext.Extent{{Off: off, Len: d.ReqBytes}}}
}

func (g *depGen) Clone() RankGen {
	cp := *g
	return &cp
}
