package workloads

import (
	"strings"
	"testing"
	"time"
)

const sampleTrace = `
# two ranks, mixed ops
0,compute,1000
0,read,data.bin,0,4096
0,barrier
0,write,out.bin,0,1024
1,compute,2000
1,read,data.bin,8192,4096
1,barrier
`

func TestParseTraceBasics(t *testing.T) {
	rep, err := ParseTrace("t", strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks() != 2 {
		t.Fatalf("ranks = %d, want 2", rep.Ranks())
	}
	g := rep.NewRank(0)
	ops := drain(t, g, 100)
	if len(ops) != 4 {
		t.Fatalf("rank 0 ops = %d, want 4", len(ops))
	}
	if ops[0].Kind != OpCompute || ops[0].Dur != time.Millisecond {
		t.Fatalf("op 0 = %+v", ops[0])
	}
	if ops[1].Kind != OpRead || ops[1].Extents[0].Off != 0 || ops[1].Extents[0].Len != 4096 {
		t.Fatalf("op 1 = %+v", ops[1])
	}
	if ops[2].Kind != OpBarrier {
		t.Fatalf("op 2 = %+v", ops[2])
	}
	if ops[3].Kind != OpWrite || ops[3].File != "out.bin" {
		t.Fatalf("op 3 = %+v", ops[3])
	}
}

func TestParseTraceFileSpecs(t *testing.T) {
	rep, err := ParseTrace("t", strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	files := rep.Files()
	if len(files) != 2 {
		t.Fatalf("files = %+v", files)
	}
	// data.bin is read up to offset 12288 -> precreated at that size.
	if files[0].Name != "data.bin" || !files[0].Precreate || files[0].Size != 12288 {
		t.Fatalf("data.bin spec = %+v", files[0])
	}
	if files[1].Name != "out.bin" || files[1].Precreate {
		t.Fatalf("out.bin spec = %+v", files[1])
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"x,read,f,0,1",            // bad rank
		"0,frobnicate",            // unknown verb
		"0,compute",               // missing duration
		"0,compute,xyz",           // bad duration
		"0,read,f,0",              // missing length
		"0,read,f,-1,10",          // negative offset
		"0,read,f,0,0",            // zero length
		"",                        // empty trace
		"0,barrier\n1,read,f,0,1", // mismatched barrier counts
	}
	for i, c := range cases {
		if _, err := ParseTrace("t", strings.NewReader(c)); err == nil {
			t.Fatalf("case %d (%q): parsed", i, c)
		}
	}
}

func TestReplayCloneIndependent(t *testing.T) {
	rep, err := ParseTrace("t", strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	g := rep.NewRank(0)
	g.Next(TrueEnv{})
	c := g.Clone()
	a := g.Next(TrueEnv{})
	b := c.Next(TrueEnv{})
	if a.Kind != b.Kind {
		t.Fatalf("clone diverged: %v vs %v", a.Kind, b.Kind)
	}
	c.Next(TrueEnv{})
	// Original must be unaffected by the clone's progress.
	if op := g.Next(TrueEnv{}); op.Kind != OpBarrier {
		t.Fatalf("original disturbed: %+v", op)
	}
}

func TestReplayDoneSticky(t *testing.T) {
	rep, err := ParseTrace("t", strings.NewReader("0,compute,10"))
	if err != nil {
		t.Fatal(err)
	}
	g := rep.NewRank(0)
	g.Next(TrueEnv{})
	if g.Next(TrueEnv{}).Kind != OpDone || g.Next(TrueEnv{}).Kind != OpDone {
		t.Fatalf("OpDone not sticky")
	}
}
