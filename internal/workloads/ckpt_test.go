package workloads

import (
	"testing"
	"time"

	"dualpar/internal/ext"
)

func TestEpochCheckpointN1RegionsDisjointAndCover(t *testing.T) {
	c := EpochCheckpoint{Procs: 4, BlockBytes: 47 << 10, Epochs: 3, Shared: true, BaseName: "ckpt.dat"}
	cov := coverage(t, c, OpWrite, 1000)
	want := ext.Extent{Off: 0, Len: c.TotalBytes()}
	if len(cov) != 1 || cov[0] != want {
		t.Fatalf("coverage = %v, want %v (epoch regions tile the file exactly)", cov, want)
	}
}

func TestEpochCheckpointNNPerRankFiles(t *testing.T) {
	c := EpochCheckpoint{Procs: 3, BlockBytes: 1 << 10, Epochs: 2, BaseName: "ckpt.dat"}
	files := c.Files()
	if len(files) != 3 {
		t.Fatalf("N-N Files() = %d specs, want one per rank", len(files))
	}
	for r := 0; r < c.Procs; r++ {
		ops := drain(t, c.NewRank(r), 1000)
		for _, op := range ops {
			if op.Kind == OpWrite && op.File != c.rankFile(r) {
				t.Fatalf("rank %d wrote %q, want its private file %q", r, op.File, c.rankFile(r))
			}
		}
		if got := ioBytes(ops, OpWrite); got != c.BlockBytes*int64(c.Epochs) {
			t.Fatalf("rank %d wrote %d bytes, want %d", r, got, c.BlockBytes*int64(c.Epochs))
		}
	}
}

func TestEpochCheckpointOpSequence(t *testing.T) {
	c := EpochCheckpoint{Procs: 2, BlockBytes: 100, Epochs: 2, Interval: time.Millisecond, Shared: true, BaseName: "f"}
	ops := drain(t, c.NewRank(1), 100)
	wantKinds := []OpKind{
		OpCompute, OpWrite, OpSeal, OpBarrier,
		OpCompute, OpWrite, OpSeal, OpBarrier,
	}
	if len(ops) != len(wantKinds) {
		t.Fatalf("got %d ops, want %d", len(ops), len(wantKinds))
	}
	epoch := 0
	for i, op := range ops {
		if op.Kind != wantKinds[i] {
			t.Fatalf("op %d kind = %v, want %v", i, op.Kind, wantKinds[i])
		}
		switch op.Kind {
		case OpWrite:
			epoch++
			if op.Epoch != epoch {
				t.Errorf("write %d tagged epoch %d, want %d", i, op.Epoch, epoch)
			}
		case OpSeal:
			if op.Epoch != epoch {
				t.Errorf("seal %d tagged epoch %d, want %d", i, op.Epoch, epoch)
			}
		case OpCompute, OpBarrier:
			if op.Epoch != 0 {
				t.Errorf("op %d (%v) carries epoch %d, want 0", i, op.Kind, op.Epoch)
			}
		}
	}
	// Zero interval skips the compute op entirely.
	c.Interval = 0
	ops = drain(t, c.NewRank(0), 100)
	if ops[0].Kind != OpWrite {
		t.Fatalf("zero-interval first op = %v, want OpWrite", ops[0].Kind)
	}
}

func TestRestartReadsCommittedEpochBlock(t *testing.T) {
	for _, shared := range []bool{true, false} {
		c := EpochCheckpoint{Procs: 4, BlockBytes: 47 << 10, Epochs: 5, Shared: shared, BaseName: "ckpt.dat"}
		r := Restart{Ckpt: c, Epoch: 3}
		if r.Ranks() != c.Procs {
			t.Fatalf("restart ranks = %d, want %d", r.Ranks(), c.Procs)
		}
		for rank := 0; rank < c.Procs; rank++ {
			ops := drain(t, r.NewRank(rank), 10)
			if len(ops) != 1 || ops[0].Kind != OpRead {
				t.Fatalf("shared=%v rank %d restart ops = %+v, want one read", shared, rank, ops)
			}
			wantFile, wantExt := c.extent(rank, 3)
			if ops[0].File != wantFile || len(ops[0].Extents) != 1 || ops[0].Extents[0] != wantExt {
				t.Fatalf("shared=%v rank %d read %q %v, want %q %v",
					shared, rank, ops[0].File, ops[0].Extents, wantFile, wantExt)
			}
			if ops[0].Epoch != 3 {
				t.Fatalf("restart read tagged epoch %d, want 3", ops[0].Epoch)
			}
		}
	}
}

func TestRestartRejectsBadEpoch(t *testing.T) {
	c := EpochCheckpoint{Procs: 2, BlockBytes: 100, Epochs: 3, BaseName: "f"}
	for _, epoch := range []int{0, -1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Restart accepted epoch %d outside [1,3]", epoch)
				}
			}()
			Restart{Ckpt: c, Epoch: epoch}.NewRank(0)
		}()
	}
}

func TestEpochCheckpointCloneIndependent(t *testing.T) {
	c := EpochCheckpoint{Procs: 2, BlockBytes: 100, Epochs: 3, Shared: true, BaseName: "f"}
	g := c.NewRank(0)
	g.Next(TrueEnv{}) // write (no interval)
	clone := g.Clone()
	a, b := drain(t, g, 100), drain(t, clone, 100)
	if len(a) != len(b) {
		t.Fatalf("clone diverged: %d vs %d remaining ops", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Epoch != b[i].Epoch {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
