package workloads

import (
	"strings"
	"testing"
)

// FuzzParseTrace checks that arbitrary input never panics the trace parser
// and that accepted traces satisfy the replay invariants.
func FuzzParseTrace(f *testing.F) {
	f.Add(sampleTrace)
	f.Add("0,compute,100\n0,read,f,0,10\n")
	f.Add("0,barrier\n1,barrier\n")
	f.Add("#comment only\n")
	f.Add("0,write,out,5,5\n0,write,out,0,5\n")
	f.Add("3,read,deep,1000000,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		rep, err := ParseTrace("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		if rep.Ranks() <= 0 {
			t.Fatalf("accepted trace with %d ranks", rep.Ranks())
		}
		// Every generator must terminate (traces are finite) and only emit
		// well-formed ops.
		for r := 0; r < rep.Ranks(); r++ {
			g := rep.NewRank(r)
			for i := 0; ; i++ {
				if i > 1_000_000 {
					t.Fatalf("rank %d did not finish", r)
				}
				op := g.Next(TrueEnv{})
				if op.Kind == OpDone {
					break
				}
				for _, e := range op.Extents {
					if e.Off < 0 || e.Len <= 0 {
						t.Fatalf("malformed extent %+v accepted", e)
					}
				}
				if op.Dur < 0 {
					t.Fatalf("negative compute accepted")
				}
			}
		}
		// Precreated file sizes must cover every read.
		sizes := make(map[string]int64)
		for _, fs := range rep.Files() {
			if fs.Precreate {
				sizes[fs.Name] = fs.Size
			}
		}
		for r := 0; r < rep.Ranks(); r++ {
			g := rep.NewRank(r)
			for {
				op := g.Next(TrueEnv{})
				if op.Kind == OpDone {
					break
				}
				if op.Kind == OpRead {
					for _, e := range op.Extents {
						if sz, ok := sizes[op.File]; ok && e.End() > sz {
							t.Fatalf("read %v beyond precreated size %d of %s", e, sz, op.File)
						}
					}
				}
			}
		}
	})
}
