package workloads

import (
	"fmt"
	"time"

	"dualpar/internal/ext"
)

// EpochCheckpoint is the crash-survivable checkpoint workload family: a
// barrier-synchronized loop of compute → checkpoint-write → seal → barrier,
// with every write tagged by a 1-based epoch so the host-side burst log and
// the restart phase can reason about durability per epoch. Unlike the plain
// Checkpoint program it never overwrites: each epoch writes its own region
// (N-1) or its own per-rank file slice (N-N), so the last committed epoch is
// always intact on the PFS regardless of where a crash lands.
//
// The two classic patterns are selectable with Shared:
//
//   - N-N (Shared=false): each rank owns a private file "<base>.r<rank>" and
//     appends one block per epoch — the pattern file-per-process
//     checkpointing libraries produce.
//   - N-1 (Shared=true): all ranks interleave unaligned blocks into one
//     shared file, PLFS-style, with each epoch occupying its own
//     Procs×BlockBytes region.
type EpochCheckpoint struct {
	Procs      int
	BlockBytes int64 // per-rank block per epoch (unaligned on purpose)
	Epochs     int
	Interval   time.Duration // solver time between checkpoints
	Shared     bool          // N-1 shared file when true, N-N per-rank files otherwise
	BaseName   string        // shared-file name (N-1) or per-rank prefix (N-N)
}

// DefaultEpochCheckpoint mirrors DefaultCheckpoint's unaligned 47 KB blocks.
func DefaultEpochCheckpoint(shared bool) EpochCheckpoint {
	return EpochCheckpoint{
		Procs:      64,
		BlockBytes: 47 << 10,
		Epochs:     8,
		Interval:   100 * time.Millisecond,
		Shared:     shared,
		BaseName:   "ckpt.dat",
	}
}

// Name implements Program.
func (c EpochCheckpoint) Name() string {
	if c.Shared {
		return "ckpt-n1"
	}
	return "ckpt-nn"
}

// Ranks implements Program.
func (c EpochCheckpoint) Ranks() int { return c.Procs }

// TotalBytes is the volume written across all epochs.
func (c EpochCheckpoint) TotalBytes() int64 {
	return int64(c.Procs) * c.BlockBytes * int64(c.Epochs)
}

// rankFile names rank r's private checkpoint file (N-N pattern).
func (c EpochCheckpoint) rankFile(r int) string {
	return fmt.Sprintf("%s.r%d", c.BaseName, r)
}

// extent returns the region rank r writes for epoch e (1-based), and the
// file holding it. Epoch regions never overlap, so no epoch's data is ever
// overwritten by a later one.
func (c EpochCheckpoint) extent(r, e int) (string, ext.Extent) {
	if c.Shared {
		epochBase := int64(e-1) * int64(c.Procs) * c.BlockBytes
		return c.BaseName, ext.Extent{Off: epochBase + int64(r)*c.BlockBytes, Len: c.BlockBytes}
	}
	return c.rankFile(r), ext.Extent{Off: int64(e-1) * c.BlockBytes, Len: c.BlockBytes}
}

// Files implements Program.
func (c EpochCheckpoint) Files() []FileSpec {
	if c.Shared {
		return []FileSpec{{Name: c.BaseName, Size: 0}}
	}
	specs := make([]FileSpec, c.Procs)
	for r := 0; r < c.Procs; r++ {
		specs[r] = FileSpec{Name: c.rankFile(r), Size: 0}
	}
	return specs
}

// NewRank implements Program.
func (c EpochCheckpoint) NewRank(r int) RankGen {
	if c.BaseName == "" {
		panic("workloads: EpochCheckpoint.BaseName empty")
	}
	return &epochCkptGen{c: c, rank: r}
}

type epochCkptGen struct {
	c     EpochCheckpoint
	rank  int
	epoch int // epochs completed (the in-progress epoch is epoch+1)
	state int // 0 compute, 1 write, 2 seal, 3 barrier
}

func (g *epochCkptGen) Next(env Env) Op {
	c := g.c
	if g.epoch >= c.Epochs {
		return Op{Kind: OpDone}
	}
	e := g.epoch + 1
	switch g.state {
	case 0:
		g.state = 1
		if c.Interval > 0 {
			return Op{Kind: OpCompute, Dur: c.Interval}
		}
		fallthrough
	case 1:
		g.state = 2
		file, x := c.extent(g.rank, e)
		return Op{Kind: OpWrite, File: file, Extents: []ext.Extent{x}, Epoch: e}
	case 2:
		g.state = 3
		return Op{Kind: OpSeal, Epoch: e}
	default:
		g.state = 0
		g.epoch++
		return Op{Kind: OpBarrier}
	}
}

func (g *epochCkptGen) Clone() RankGen {
	cp := *g
	return &cp
}

// Restart is the recovery-phase reader: every rank of the crashed
// EpochCheckpoint job reads back its own block of the recovered epoch. The
// harness constructs it from the original spec plus the last committed epoch
// reported after crash recovery, and the integrity oracle then verifies the
// read bytes carry the version stamps the epoch's writes produced.
type Restart struct {
	Ckpt  EpochCheckpoint
	Epoch int // 1-based committed epoch to read back
}

// Name implements Program.
func (r Restart) Name() string { return r.Ckpt.Name() + "-restart" }

// Ranks implements Program.
func (r Restart) Ranks() int { return r.Ckpt.Procs }

// Files implements Program. The checkpoint files already exist; nothing is
// pre-created.
func (r Restart) Files() []FileSpec { return nil }

// NewRank implements Program.
func (r Restart) NewRank(rank int) RankGen {
	if r.Epoch < 1 || r.Epoch > r.Ckpt.Epochs {
		panic(fmt.Sprintf("workloads: Restart epoch %d outside [1,%d]", r.Epoch, r.Ckpt.Epochs))
	}
	return &restartGen{r: r, rank: rank}
}

type restartGen struct {
	r    Restart
	rank int
	done bool
}

func (g *restartGen) Next(env Env) Op {
	if g.done {
		return Op{Kind: OpDone}
	}
	g.done = true
	file, x := g.r.Ckpt.extent(g.rank, g.r.Epoch)
	return Op{Kind: OpRead, File: file, Extents: []ext.Extent{x}, Epoch: g.r.Epoch}
}

func (g *restartGen) Clone() RankGen {
	cp := *g
	return &cp
}
