package workloads

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Replay plays back an I/O trace: a per-rank schedule of compute intervals
// and read/write extents, e.g. parsed from a CSV produced by a real
// application's instrumentation. It lets downstream users evaluate DualPar
// against their own workloads without writing a generator.
type Replay struct {
	TraceName string
	Procs     int
	ops       map[int][]Op // per-rank schedules
	files     []FileSpec
}

// ReplayOp is one parsed trace record.
type ReplayOp struct {
	Rank int
	Op   Op
}

// ParseTrace reads a CSV trace with records of the form
//
//	rank,compute,<microseconds>
//	rank,read,<file>,<offset>,<length>
//	rank,write,<file>,<offset>,<length>
//	rank,barrier
//
// Blank lines and lines starting with '#' are ignored. Ranks are dense from
// 0; every referenced read file is pre-created with a size covering the
// largest read offset.
func ParseTrace(name string, r io.Reader) (*Replay, error) {
	rep := &Replay{TraceName: name, ops: make(map[int][]Op)}
	readHi := make(map[string]int64)
	writeOnly := make(map[string]bool)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace %s line %d: too few fields", name, lineNo)
		}
		rank, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil || rank < 0 {
			return nil, fmt.Errorf("trace %s line %d: bad rank %q", name, lineNo, fields[0])
		}
		if rank+1 > rep.Procs {
			rep.Procs = rank + 1
		}
		verb := strings.TrimSpace(fields[1])
		switch verb {
		case "compute":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace %s line %d: compute needs microseconds", name, lineNo)
			}
			us, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
			if err != nil || us < 0 {
				return nil, fmt.Errorf("trace %s line %d: bad duration %q", name, lineNo, fields[2])
			}
			rep.ops[rank] = append(rep.ops[rank], Op{Kind: OpCompute, Dur: time.Duration(us) * time.Microsecond})
		case "barrier":
			rep.ops[rank] = append(rep.ops[rank], Op{Kind: OpBarrier})
		case "read", "write":
			if len(fields) != 5 {
				return nil, fmt.Errorf("trace %s line %d: %s needs file,offset,length", name, lineNo, verb)
			}
			file := strings.TrimSpace(fields[2])
			off, err1 := strconv.ParseInt(strings.TrimSpace(fields[3]), 10, 64)
			length, err2 := strconv.ParseInt(strings.TrimSpace(fields[4]), 10, 64)
			if err1 != nil || err2 != nil || off < 0 || length <= 0 {
				return nil, fmt.Errorf("trace %s line %d: bad extent", name, lineNo)
			}
			kind := OpRead
			if verb == "write" {
				kind = OpWrite
				if _, seen := readHi[file]; !seen {
					writeOnly[file] = true
				}
			} else {
				if off+length > readHi[file] {
					readHi[file] = off + length
				}
				delete(writeOnly, file)
			}
			rep.ops[rank] = append(rep.ops[rank], Op{
				Kind: kind, File: file,
				Extents: []extent2{{Off: off, Len: length}},
			})
		default:
			return nil, fmt.Errorf("trace %s line %d: unknown verb %q", name, lineNo, verb)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rep.Procs == 0 {
		return nil, fmt.Errorf("trace %s: no records", name)
	}
	// Barrier counts must match across ranks, or replay deadlocks.
	barriers := -1
	for rank := 0; rank < rep.Procs; rank++ {
		n := 0
		for _, op := range rep.ops[rank] {
			if op.Kind == OpBarrier {
				n++
			}
		}
		if barriers == -1 {
			barriers = n
		} else if n != barriers {
			return nil, fmt.Errorf("trace %s: rank %d has %d barriers, rank 0 has %d", name, rank, n, barriers)
		}
	}
	files := make([]string, 0, len(readHi)+len(writeOnly))
	for f := range readHi {
		files = append(files, f)
	}
	for f := range writeOnly {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		rep.files = append(rep.files, FileSpec{Name: f, Size: readHi[f], Precreate: readHi[f] > 0})
	}
	return rep, nil
}

// extent2 avoids importing ext twice in doc examples; it is ext.Extent.
type extent2 = extentAlias

// Name implements Program.
func (r *Replay) Name() string { return "replay:" + r.TraceName }

// Ranks implements Program.
func (r *Replay) Ranks() int { return r.Procs }

// Files implements Program.
func (r *Replay) Files() []FileSpec { return r.files }

// NewRank implements Program.
func (r *Replay) NewRank(rank int) RankGen {
	return &replayGen{ops: r.ops[rank]}
}

type replayGen struct {
	ops []Op
	pos int
}

func (g *replayGen) Next(env Env) Op {
	if g.pos >= len(g.ops) {
		return Op{Kind: OpDone}
	}
	op := g.ops[g.pos]
	g.pos++
	return op
}

func (g *replayGen) Clone() RankGen {
	cp := *g
	return &cp
}
