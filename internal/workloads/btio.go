package workloads

import (
	"time"

	"dualpar/internal/ext"
)

// BTIO models the NAS BT-IO benchmark (§V-A): the solver alternates compute
// steps with writes of the solution array. Each rank's footprint in a step
// is a fine-grained interleaving whose block size shrinks as process count
// grows — the paper reports 4-byte requests at 256 processes; we use
// BlockScale/P (BlockScale default 1024, giving 64 B at 16 procs, 16 B at
// 64, 4 B at 256).
type BTIO struct {
	Procs       int
	TotalBytes  int64 // volume written over all steps
	Steps       int
	BlockScale  int64 // per-rank block = BlockScale / Procs bytes
	StepCompute time.Duration
	Read        bool // read the array back instead of writing (btio read phase)
	FileName    string
}

// DefaultBTIO matches the paper's class-C run shape with scaled volume.
func DefaultBTIO() BTIO {
	return BTIO{
		Procs:       64,
		TotalBytes:  8 << 20,
		Steps:       4,
		BlockScale:  1024,
		StepCompute: 50 * time.Millisecond,
		FileName:    "btio.dat",
	}
}

// Name implements Program.
func (b BTIO) Name() string { return "btio" }

// Ranks implements Program.
func (b BTIO) Ranks() int { return b.Procs }

// BlockBytes is the per-rank interleave block.
func (b BTIO) BlockBytes() int64 {
	bl := b.BlockScale / int64(b.Procs)
	if bl < 4 {
		bl = 4
	}
	return bl
}

// StepBytes is the volume written per step across all ranks.
func (b BTIO) StepBytes() int64 {
	step := b.TotalBytes / int64(b.Steps)
	// Round to a whole number of interleave rounds.
	round := b.BlockBytes() * int64(b.Procs)
	if step < round {
		step = round
	}
	return step / round * round
}

// Files implements Program.
func (b BTIO) Files() []FileSpec {
	return []FileSpec{{
		Name:      b.FileName,
		Size:      b.StepBytes() * int64(b.Steps),
		Precreate: b.Read,
	}}
}

// NewRank implements Program.
func (b BTIO) NewRank(r int) RankGen {
	if b.FileName == "" {
		panic("workloads: BTIO.FileName empty")
	}
	return &btioGen{b: b, rank: r}
}

type btioGen struct {
	b     BTIO
	rank  int
	step  int
	state int // 0: compute, 1: io, 2: barrier
}

func (g *btioGen) Next(env Env) Op {
	b := g.b
	if g.step >= b.Steps {
		return Op{Kind: OpDone}
	}
	switch g.state {
	case 0:
		g.state = 1
		if b.StepCompute > 0 {
			return Op{Kind: OpCompute, Dur: b.StepCompute}
		}
		fallthrough
	case 1:
		g.state = 2
		bl := b.BlockBytes()
		round := bl * int64(b.Procs)
		rounds := b.StepBytes() / round
		base := int64(g.step)*b.StepBytes() + int64(g.rank)*bl
		extents := make([]ext.Extent, 0, rounds)
		for i := int64(0); i < rounds; i++ {
			extents = append(extents, ext.Extent{Off: base + i*round, Len: bl})
		}
		kind := OpWrite
		if b.Read {
			kind = OpRead
		}
		return Op{Kind: kind, File: b.FileName, Extents: extents}
	default:
		g.state = 0
		g.step++
		return Op{Kind: OpBarrier}
	}
}

func (g *btioGen) Clone() RankGen {
	cp := *g
	return &cp
}
