package workloads

import (
	"fmt"
	"time"

	"dualpar/internal/ext"
)

// S3asim models the sequence-similarity search simulator (§V-A): a sequence
// database split into Fragments; each query scans portions of every
// fragment, computes, and appends a variable-size result. Query-to-worker
// assignment is deterministic round-robin (the original uses a dynamic
// master/worker protocol; round-robin preserves the I/O pattern — fragment
// scans plus variable-size result writes — without a side channel, which
// keeps rank generators pure and cloneable).
type S3asim struct {
	Procs         int
	Queries       int
	Fragments     int
	FragmentBytes int64
	// ScanFraction is the portion of each fragment one query scans.
	ScanFraction float64
	// MinResult/MaxResult bound the per-query result size written.
	MinResult, MaxResult int64
	ComputePerQuery      time.Duration
	DBName, OutName      string
}

// DefaultS3asim matches §V-A shape: 16 database fragments, variable query
// results (sizes scaled).
func DefaultS3asim() S3asim {
	return S3asim{
		Procs:           64,
		Queries:         16,
		Fragments:       16,
		FragmentBytes:   4 << 20,
		ScanFraction:    0.25,
		MinResult:       4 << 10,
		MaxResult:       256 << 10,
		ComputePerQuery: 20 * time.Millisecond,
		DBName:          "s3asim-db.dat",
		OutName:         "s3asim-out.dat",
	}
}

// Name implements Program.
func (s S3asim) Name() string { return "s3asim" }

// Ranks implements Program.
func (s S3asim) Ranks() int { return s.Procs }

// Files implements Program.
func (s S3asim) Files() []FileSpec {
	return []FileSpec{
		{Name: s.DBName, Size: int64(s.Fragments) * s.FragmentBytes, Precreate: true},
		{Name: s.OutName, Size: 0},
	}
}

// resultBytes is the deterministic result size of one query.
func (s S3asim) resultBytes(q int) int64 {
	span := s.MaxResult - s.MinResult
	if span <= 0 {
		return s.MinResult
	}
	return s.MinResult + Content("s3asim-result", int64(q))%span
}

// outOffset is where query q's result lands: results are packed per query
// in query order (each query's slot sized by its own result).
func (s S3asim) outOffset(q int) int64 {
	var off int64
	for i := 0; i < q; i++ {
		off += s.resultBytes(i)
	}
	return off
}

// NewRank implements Program.
func (s S3asim) NewRank(r int) RankGen {
	if s.DBName == "" || s.OutName == "" {
		panic("workloads: S3asim file names empty")
	}
	return &s3asimGen{s: s, rank: r}
}

type s3asimGen struct {
	s     S3asim
	rank  int
	q     int // next query index to consider
	phase int // 0: scan fragment frag, 1: compute, 2: write result
	frag  int
}

func (g *s3asimGen) Next(env Env) Op {
	s := g.s
	for {
		// Advance to this rank's next query.
		for g.q < s.Queries && g.q%s.Procs != g.rank {
			g.q++
		}
		if g.q >= s.Queries {
			return Op{Kind: OpDone}
		}
		switch g.phase {
		case 0:
			if g.frag < s.Fragments {
				frag := g.frag
				g.frag++
				scan := int64(float64(s.FragmentBytes) * s.ScanFraction)
				if scan <= 0 {
					continue
				}
				// Each query scans a different window of the fragment.
				maxStart := s.FragmentBytes - scan
				start := int64(0)
				if maxStart > 0 {
					start = Content("s3asim-scan", int64(g.q*s.Fragments+frag)) % maxStart
					start = alignDown(start, 4<<10)
				}
				off := int64(frag)*s.FragmentBytes + start
				return Op{Kind: OpRead, File: s.DBName, Extents: []ext.Extent{{Off: off, Len: scan}}}
			}
			g.phase = 1
		case 1:
			g.phase = 2
			if s.ComputePerQuery > 0 {
				return Op{Kind: OpCompute, Dur: s.ComputePerQuery}
			}
		default:
			q := g.q
			g.q++
			g.frag = 0
			g.phase = 0
			return Op{
				Kind:    OpWrite,
				File:    s.OutName,
				Extents: []ext.Extent{{Off: s.outOffset(q), Len: s.resultBytes(q)}},
			}
		}
	}
}

func (g *s3asimGen) Clone() RankGen {
	cp := *g
	return &cp
}

func (g *s3asimGen) String() string {
	return fmt.Sprintf("s3asim[rank=%d q=%d phase=%d]", g.rank, g.q, g.phase)
}
