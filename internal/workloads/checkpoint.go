package workloads

import (
	"time"

	"dualpar/internal/ext"
)

// Checkpoint models N-1 checkpointing (the pattern PLFS, the paper's ref
// [13], was built for): at each barrier-synchronized checkpoint, every rank
// writes its state as interleaved, deliberately unaligned blocks of a
// single shared file. The unaligned block size (47 KB by default, PLFS's
// canonical example) defeats stripe alignment, which is exactly where
// request reordering and merging pay off.
type Checkpoint struct {
	Procs       int
	BlockBytes  int64 // per-rank block per checkpoint (unaligned on purpose)
	Checkpoints int
	Compute     time.Duration // solver time between checkpoints
	FileName    string
}

// DefaultCheckpoint uses PLFS's famously unaligned 47 KB blocks.
func DefaultCheckpoint() Checkpoint {
	return Checkpoint{
		Procs:       64,
		BlockBytes:  47 << 10,
		Checkpoints: 8,
		Compute:     100 * time.Millisecond,
		FileName:    "checkpoint.dat",
	}
}

// Name implements Program.
func (c Checkpoint) Name() string { return "checkpoint" }

// Ranks implements Program.
func (c Checkpoint) Ranks() int { return c.Procs }

// TotalBytes is the volume written across all checkpoints.
func (c Checkpoint) TotalBytes() int64 {
	return int64(c.Procs) * c.BlockBytes * int64(c.Checkpoints)
}

// Files implements Program.
func (c Checkpoint) Files() []FileSpec {
	return []FileSpec{{Name: c.FileName, Size: 0}}
}

// NewRank implements Program.
func (c Checkpoint) NewRank(r int) RankGen {
	if c.FileName == "" {
		panic("workloads: Checkpoint.FileName empty")
	}
	return &checkpointGen{c: c, rank: r}
}

type checkpointGen struct {
	c     Checkpoint
	rank  int
	step  int
	state int // 0 compute, 1 write, 2 barrier
}

func (g *checkpointGen) Next(env Env) Op {
	c := g.c
	if g.step >= c.Checkpoints {
		return Op{Kind: OpDone}
	}
	switch g.state {
	case 0:
		g.state = 1
		if c.Compute > 0 {
			return Op{Kind: OpCompute, Dur: c.Compute}
		}
		fallthrough
	case 1:
		g.state = 2
		// Checkpoint s, rank r writes [stepBase + r*Block, +Block): the
		// ranks' blocks tile the file contiguously but unaligned to any
		// stripe or page boundary.
		stepBase := int64(g.step) * int64(c.Procs) * c.BlockBytes
		off := stepBase + int64(g.rank)*c.BlockBytes
		return Op{
			Kind: OpWrite, File: c.FileName,
			Extents: []ext.Extent{{Off: off, Len: c.BlockBytes}},
		}
	default:
		g.state = 0
		g.step++
		return Op{Kind: OpBarrier}
	}
}

func (g *checkpointGen) Clone() RankGen {
	cp := *g
	return &cp
}
