package workloads

import (
	"fmt"
	"time"

	"dualpar/internal/ext"
)

// Demo is the paper's motivating synthetic program (§II): N processes read
// a file from beginning to end; in each MPI-IO call a process reads
// SegsPerCall noncontiguous segments via a Vector datatype — rank r's k-th
// segment of call j sits at segment index (j*SegsPerCall+k)*N + r. The
// compute time between calls tunes the I/O ratio.
type Demo struct {
	Procs          int
	FileBytes      int64
	SegBytes       int64
	SegsPerCall    int
	ComputePerCall time.Duration
	Write          bool
	FileName       string
}

// DefaultDemo matches §II: 8 processes, 16 segments per call, 4 KB
// segments.
func DefaultDemo() Demo {
	return Demo{
		Procs:       8,
		FileBytes:   64 << 20,
		SegBytes:    4 << 10,
		SegsPerCall: 16,
		FileName:    "demo.dat",
	}
}

// Name implements Program.
func (d Demo) Name() string { return "demo" }

// Ranks implements Program.
func (d Demo) Ranks() int { return d.Procs }

// Files implements Program.
func (d Demo) Files() []FileSpec {
	return []FileSpec{{Name: d.FileName, Size: d.FileBytes, Precreate: !d.Write}}
}

// Calls returns the number of I/O calls each rank performs.
func (d Demo) Calls() int {
	perCallBytes := int64(d.Procs) * d.SegBytes * int64(d.SegsPerCall)
	return int(d.FileBytes / perCallBytes)
}

// NewRank implements Program.
func (d Demo) NewRank(r int) RankGen {
	if d.FileName == "" {
		panic("workloads: Demo.FileName empty")
	}
	return &demoGen{d: d, rank: r, calls: d.Calls()}
}

type demoGen struct {
	d       Demo
	rank    int
	calls   int
	call    int
	pending bool // compute emitted, I/O next
}

func (g *demoGen) Next(env Env) Op {
	if g.call >= g.calls {
		return Op{Kind: OpDone}
	}
	if g.d.ComputePerCall > 0 && !g.pending {
		g.pending = true
		return Op{Kind: OpCompute, Dur: g.d.ComputePerCall}
	}
	g.pending = false
	j := int64(g.call)
	g.call++
	n := int64(g.d.Procs)
	segs := int64(g.d.SegsPerCall)
	extents := make([]ext.Extent, 0, segs)
	for k := int64(0); k < segs; k++ {
		segIdx := (j*segs+k)*n + int64(g.rank)
		extents = append(extents, ext.Extent{Off: segIdx * g.d.SegBytes, Len: g.d.SegBytes})
	}
	kind := OpRead
	if g.d.Write {
		kind = OpWrite
	}
	return Op{Kind: kind, File: g.d.FileName, Extents: extents}
}

func (g *demoGen) Clone() RankGen {
	cp := *g
	return &cp
}

// String aids debugging.
func (g *demoGen) String() string {
	return fmt.Sprintf("demo[rank=%d call=%d/%d]", g.rank, g.call, g.calls)
}
