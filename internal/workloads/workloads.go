// Package workloads implements the paper's benchmark programs — demo (§II),
// mpi-io-test, hpio, ior-mpi-io, noncontig, S3asim, BTIO (§V-A), and the
// data-dependent reader of Table III — as deterministic per-rank operation
// generators.
//
// A rank is a state machine emitting Compute/Read/Write/Barrier operations.
// Generators are cloneable: DualPar's ghost pre-execution clones a rank's
// generator at its suspension point and runs it forward, the simulation
// analogue of the paper's fork-based pre-execution (computation retained, no
// source changes). Data-dependent access is expressed through Env: a
// generator may derive its next offsets from the *content* of previously
// read bytes, and a ghost that has not actually fetched those bytes sees
// zeros — reproducing the paper's mis-prefetch pathology.
package workloads

import (
	"hash/fnv"
	"time"

	"dualpar/internal/ext"
)

// OpKind classifies a rank operation.
type OpKind int

// Operation kinds.
const (
	OpDone OpKind = iota
	OpCompute
	OpRead
	OpWrite
	OpBarrier
	// OpSeal marks the rank's checkpoint epoch durable: on the direct write
	// path the preceding synchronous writes already reached the PFS, so the
	// seal is pure bookkeeping; on the burst-buffer path it seals the
	// epoch's log records, committing them to survive a client crash.
	OpSeal
)

// Op is one step of a rank's execution.
type Op struct {
	Kind    OpKind
	Dur     time.Duration // OpCompute
	File    string        // OpRead/OpWrite
	Extents []ext.Extent  // OpRead/OpWrite
	// Epoch tags OpWrite/OpSeal with a 1-based checkpoint epoch; 0 means
	// the op is not checkpoint data (and is never routed to a burst log).
	Epoch int
}

// Bytes returns the I/O volume of the op.
func (o Op) Bytes() int64 { return ext.Total(o.Extents) }

// Env exposes file content to a generator. During normal execution Value
// returns the true stored content; during ghost pre-execution it returns 0
// for data whose read was recorded but not served.
type Env interface {
	Value(file string, off int64) int64
}

// TrueEnv is the normal-execution environment: all previously read data is
// available.
type TrueEnv struct{}

// Value implements Env with the true file content.
func (TrueEnv) Value(file string, off int64) int64 { return Content(file, off) }

// Content is the deterministic content function: the 8-byte word at a file
// offset. The storage stack stores no data, so programs and the simulation
// agree on content through this function.
func Content(file string, off int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(file))
	var buf [8]byte
	v := uint64(off)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// FileSpec names a file a program uses and the size to pre-create it with
// (0 = created by writing).
type FileSpec struct {
	Name      string
	Size      int64
	Precreate bool
}

// RankGen generates one rank's operation stream.
type RankGen interface {
	// Next returns the next operation (OpDone at the end, repeatedly).
	Next(env Env) Op
	// Clone returns an independent generator at the current position.
	Clone() RankGen
}

// Program describes one MPI application.
type Program interface {
	Name() string
	Ranks() int
	// Files lists the files the program touches, for harness pre-creation.
	Files() []FileSpec
	// NewRank returns rank r's generator (from its initial state).
	NewRank(r int) RankGen
}

// extentAlias shortens composite literals in generator code.
type extentAlias = ext.Extent

// alignDown rounds v down to a multiple of unit (unit > 0).
func alignDown(v, unit int64) int64 { return v / unit * unit }
