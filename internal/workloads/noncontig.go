package workloads

import (
	"time"

	"dualpar/internal/ext"
)

// Noncontig models Argonne's noncontig benchmark (§V-A): the file is a 2-D
// array of Cols columns; rank r reads column r with a vector-derived type
// (ElmtCount 4-byte ints per cell, so the column width is ElmtCount*4).
// Each call moves a fixed amount of data across all processes (4 MB in the
// paper's collective runs).
type Noncontig struct {
	Procs        int
	ElmtCount    int64
	FileBytes    int64
	BytesPerCall int64 // total across all ranks per call
	Write        bool
	ComputePerOp time.Duration
	FileName     string
}

// DefaultNoncontig matches §V-A: 64 columns, 4 MB per collective call.
func DefaultNoncontig() Noncontig {
	return Noncontig{
		Procs:        64,
		ElmtCount:    512, // 2 KB cells
		FileBytes:    256 << 20,
		BytesPerCall: 4 << 20,
		FileName:     "noncontig.dat",
	}
}

// Name implements Program.
func (n Noncontig) Name() string { return "noncontig" }

// Ranks implements Program.
func (n Noncontig) Ranks() int { return n.Procs }

// CellBytes is the width of one column cell.
func (n Noncontig) CellBytes() int64 { return n.ElmtCount * 4 }

// RowBytes is the width of one full row (all columns).
func (n Noncontig) RowBytes() int64 { return n.CellBytes() * int64(n.Procs) }

// Rows is the number of rows in the array.
func (n Noncontig) Rows() int64 { return n.FileBytes / n.RowBytes() }

// RowsPerCall is how many rows one call covers.
func (n Noncontig) RowsPerCall() int64 {
	per := n.BytesPerCall / n.RowBytes()
	if per < 1 {
		per = 1
	}
	return per
}

// Files implements Program.
func (n Noncontig) Files() []FileSpec {
	return []FileSpec{{Name: n.FileName, Size: n.Rows() * n.RowBytes(), Precreate: !n.Write}}
}

// NewRank implements Program.
func (n Noncontig) NewRank(r int) RankGen {
	if n.FileName == "" {
		panic("workloads: Noncontig.FileName empty")
	}
	return &noncontigGen{n: n, rank: r}
}

type noncontigGen struct {
	n       Noncontig
	rank    int
	row     int64
	pending bool
}

func (g *noncontigGen) Next(env Env) Op {
	n := g.n
	if g.row >= n.Rows() {
		return Op{Kind: OpDone}
	}
	if n.ComputePerOp > 0 && !g.pending {
		g.pending = true
		return Op{Kind: OpCompute, Dur: n.ComputePerOp}
	}
	g.pending = false
	rows := n.RowsPerCall()
	if g.row+rows > n.Rows() {
		rows = n.Rows() - g.row
	}
	cell := n.CellBytes()
	extents := make([]ext.Extent, 0, rows)
	for i := int64(0); i < rows; i++ {
		off := (g.row+i)*n.RowBytes() + int64(g.rank)*cell
		extents = append(extents, ext.Extent{Off: off, Len: cell})
	}
	g.row += rows
	kind := OpRead
	if n.Write {
		kind = OpWrite
	}
	return Op{Kind: kind, File: n.FileName, Extents: extents}
}

func (g *noncontigGen) Clone() RankGen {
	cp := *g
	return &cp
}
