package workloads

import (
	"time"

	"dualpar/internal/ext"
)

// IOR models ior-mpi-io from the ASCI Purple suite (§V-A): each process
// owns 1/P of the file and streams through its own scope with fixed-size
// sequential requests. All processes sit at the same relative offset of
// their scopes, so the pattern presented to the storage system is scattered
// (the paper calls it random).
type IOR struct {
	Procs        int
	FileBytes    int64
	ReqBytes     int64
	Write        bool
	ComputePerOp time.Duration
	FileName     string
}

// DefaultIOR matches §V-A: 64 processes, 32 KB requests (16 GB file
// scaled).
func DefaultIOR() IOR {
	return IOR{
		Procs:     64,
		FileBytes: 256 << 20,
		ReqBytes:  32 << 10,
		FileName:  "ior.dat",
	}
}

// Name implements Program.
func (i IOR) Name() string { return "ior-mpi-io" }

// Ranks implements Program.
func (i IOR) Ranks() int { return i.Procs }

// Files implements Program.
func (i IOR) Files() []FileSpec {
	return []FileSpec{{Name: i.FileName, Size: i.FileBytes, Precreate: !i.Write}}
}

// Scope is each process's contiguous region size.
func (i IOR) Scope() int64 { return i.FileBytes / int64(i.Procs) }

// NewRank implements Program.
func (i IOR) NewRank(r int) RankGen {
	if i.FileName == "" {
		panic("workloads: IOR.FileName empty")
	}
	return &iorGen{i: i, base: int64(r) * i.Scope(), calls: i.Scope() / i.ReqBytes}
}

type iorGen struct {
	i       IOR
	base    int64
	calls   int64
	j       int64
	pending bool
}

func (g *iorGen) Next(env Env) Op {
	if g.j >= g.calls {
		return Op{Kind: OpDone}
	}
	if g.i.ComputePerOp > 0 && !g.pending {
		g.pending = true
		return Op{Kind: OpCompute, Dur: g.i.ComputePerOp}
	}
	g.pending = false
	off := g.base + g.j*g.i.ReqBytes
	g.j++
	kind := OpRead
	if g.i.Write {
		kind = OpWrite
	}
	return Op{Kind: kind, File: g.i.FileName, Extents: []ext.Extent{{Off: off, Len: g.i.ReqBytes}}}
}

func (g *iorGen) Clone() RankGen {
	cp := *g
	return &cp
}
