package workloads

import (
	"time"

	"dualpar/internal/ext"
)

// MPIIOTest models mpi-io-test from the PVFS2 software package: process i
// accesses the (i + P*j)-th segment at call j, so the program presents a
// fully sequential pattern to the storage system. A barrier is called
// frequently (every call by default), which the paper identifies as the
// reason requests cannot pile up at the disk scheduler.
type MPIIOTest struct {
	Procs        int
	FileBytes    int64
	ReqBytes     int64
	Write        bool
	BarrierEvery int // calls between barriers; 0 disables
	ComputePerOp time.Duration
	FileName     string
}

// DefaultMPIIOTest matches §V: 64 processes, 16 KB requests (file size
// scaled).
func DefaultMPIIOTest() MPIIOTest {
	return MPIIOTest{
		Procs:        64,
		FileBytes:    256 << 20,
		ReqBytes:     16 << 10,
		BarrierEvery: 1,
		FileName:     "mpi-io-test.dat",
	}
}

// Name implements Program.
func (m MPIIOTest) Name() string { return "mpi-io-test" }

// Ranks implements Program.
func (m MPIIOTest) Ranks() int { return m.Procs }

// Files implements Program.
func (m MPIIOTest) Files() []FileSpec {
	return []FileSpec{{Name: m.FileName, Size: m.FileBytes, Precreate: !m.Write}}
}

// Calls returns the per-rank call count.
func (m MPIIOTest) Calls() int {
	return int(m.FileBytes / (int64(m.Procs) * m.ReqBytes))
}

// NewRank implements Program.
func (m MPIIOTest) NewRank(r int) RankGen {
	if m.FileName == "" {
		panic("workloads: MPIIOTest.FileName empty")
	}
	return &mpiioTestGen{m: m, rank: r, calls: m.Calls()}
}

type mpiioTestGen struct {
	m     MPIIOTest
	rank  int
	calls int
	call  int
	state int // 0: compute (optional), 1: io, 2: barrier (optional)
}

func (g *mpiioTestGen) Next(env Env) Op {
	for {
		if g.call >= g.calls {
			return Op{Kind: OpDone}
		}
		switch g.state {
		case 0:
			g.state = 1
			if g.m.ComputePerOp > 0 {
				return Op{Kind: OpCompute, Dur: g.m.ComputePerOp}
			}
		case 1:
			g.state = 2
			seg := int64(g.rank) + int64(g.m.Procs)*int64(g.call)
			kind := OpRead
			if g.m.Write {
				kind = OpWrite
			}
			return Op{
				Kind:    kind,
				File:    g.m.FileName,
				Extents: []ext.Extent{{Off: seg * g.m.ReqBytes, Len: g.m.ReqBytes}},
			}
		default:
			barrier := g.m.BarrierEvery > 0 && (g.call+1)%g.m.BarrierEvery == 0
			g.call++
			g.state = 0
			if barrier {
				return Op{Kind: OpBarrier}
			}
		}
	}
}

func (g *mpiioTestGen) Clone() RankGen {
	cp := *g
	return &cp
}
