package workloads

import (
	"time"

	"dualpar/internal/ext"
)

// HPIO models the Northwestern/Sandia hpio benchmark configured as in §V-A:
// contiguous-ish data access shaped by region count, region spacing, and
// region size. Regions are partitioned blockwise across processes; each call
// accesses one region (regions of one rank are contiguous up to the
// inter-region spacing).
type HPIO struct {
	Procs         int
	RegionCount   int64 // total regions across all ranks
	RegionBytes   int64
	RegionSpacing int64
	Write         bool
	ComputePerOp  time.Duration
	FileName      string
}

// DefaultHPIO matches §V-A: region size 32 KB, spacing 1 KB (region count
// scaled).
func DefaultHPIO() HPIO {
	return HPIO{
		Procs:         64,
		RegionCount:   4096,
		RegionBytes:   32 << 10,
		RegionSpacing: 1 << 10,
		FileName:      "hpio.dat",
	}
}

// Name implements Program.
func (h HPIO) Name() string { return "hpio" }

// Ranks implements Program.
func (h HPIO) Ranks() int { return h.Procs }

// stride is the file-space footprint of one region.
func (h HPIO) stride() int64 { return h.RegionBytes + h.RegionSpacing }

// TotalBytes is the transferred volume.
func (h HPIO) TotalBytes() int64 { return h.RegionCount * h.RegionBytes }

// Files implements Program.
func (h HPIO) Files() []FileSpec {
	return []FileSpec{{Name: h.FileName, Size: h.RegionCount * h.stride(), Precreate: !h.Write}}
}

// NewRank implements Program.
func (h HPIO) NewRank(r int) RankGen {
	if h.FileName == "" {
		panic("workloads: HPIO.FileName empty")
	}
	per := h.RegionCount / int64(h.Procs)
	return &hpioGen{h: h, first: int64(r) * per, count: per}
}

type hpioGen struct {
	h       HPIO
	first   int64 // first region index of this rank
	count   int64
	i       int64
	pending bool
}

func (g *hpioGen) Next(env Env) Op {
	if g.i >= g.count {
		return Op{Kind: OpDone}
	}
	if g.h.ComputePerOp > 0 && !g.pending {
		g.pending = true
		return Op{Kind: OpCompute, Dur: g.h.ComputePerOp}
	}
	g.pending = false
	region := g.first + g.i
	g.i++
	kind := OpRead
	if g.h.Write {
		kind = OpWrite
	}
	return Op{
		Kind:    kind,
		File:    g.h.FileName,
		Extents: []ext.Extent{{Off: region * g.h.stride(), Len: g.h.RegionBytes}},
	}
}

func (g *hpioGen) Clone() RankGen {
	cp := *g
	return &cp
}
