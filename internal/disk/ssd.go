package disk

import (
	"fmt"
	"time"

	"dualpar/internal/sim"
)

// SSD models a flash device: no mechanical positioning, a fixed per-command
// latency, and a transfer rate. It exists for the forward-looking ablation
// the paper's premise invites: DualPar's benefit comes from turning random
// disk access into sequential access, so on an SSD — where the two cost the
// same — the data-driven mode's advantage should collapse to its batching
// side effects.
type SSDParams struct {
	SectorSize   int
	Sectors      int64
	ReadLatency  time.Duration // per-command access latency
	WriteLatency time.Duration
	TransferRate float64 // bytes/second
	Seed         int64
}

// DefaultSSDParams approximates a SATA-era MLC SSD.
func DefaultSSDParams() SSDParams {
	return SSDParams{
		SectorSize:   512,
		Sectors:      1 << 29, // 256 GB
		ReadLatency:  80 * time.Microsecond,
		WriteLatency: 200 * time.Microsecond,
		TransferRate: 250e6,
	}
}

// Validate reports parameter errors.
func (p SSDParams) Validate() error {
	switch {
	case p.SectorSize <= 0:
		return fmt.Errorf("ssd: SectorSize %d", p.SectorSize)
	case p.Sectors <= 0:
		return fmt.Errorf("ssd: Sectors %d", p.Sectors)
	case p.ReadLatency < 0 || p.WriteLatency < 0:
		return fmt.Errorf("ssd: negative latency")
	case p.TransferRate <= 0:
		return fmt.Errorf("ssd: TransferRate %g", p.TransferRate)
	}
	return nil
}

// SSD implements Device.
type SSD struct {
	params SSDParams
	stats  Stats
	trace  *Trace
	head   int64 // tracked only so seek statistics remain comparable
	lastBD Breakdown
}

// NewSSD creates an SSD device.
func NewSSD(params SSDParams) *SSD {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &SSD{params: params}
}

// EnableTrace turns on access logging.
func (d *SSD) EnableTrace() *Trace {
	d.trace = &Trace{sectorSize: d.params.SectorSize}
	return d.trace
}

// Sectors implements Device.
func (d *SSD) Sectors() int64 { return d.params.Sectors }

// Stats implements Device.
func (d *SSD) Stats() Stats { return d.stats }

// Trace implements Device.
func (d *SSD) Trace() *Trace { return d.trace }

// LastBreakdown implements BreakdownReporter. Flash has no mechanical
// positioning, so the split is per-command latency (Overhead) plus Transfer.
func (d *SSD) LastBreakdown() Breakdown { return d.lastBD }

// Access implements Device: position-independent service time.
func (d *SSD) Access(p *sim.Proc, lbn, sectors int64, write bool) time.Duration {
	if lbn < 0 || sectors <= 0 || lbn+sectors > d.params.Sectors {
		panic(fmt.Sprintf("ssd: access [%d,%d) outside device of %d sectors", lbn, lbn+sectors, d.params.Sectors))
	}
	lat := d.params.ReadLatency
	if write {
		lat = d.params.WriteLatency
	}
	bytes := sectors * int64(d.params.SectorSize)
	t := lat + time.Duration(float64(bytes)/d.params.TransferRate*float64(time.Second))
	d.lastBD = Breakdown{Overhead: lat, Transfer: t - lat}

	dist := lbn - d.head
	if dist < 0 {
		dist = -dist
	}
	d.stats.Accesses++
	d.stats.SeekSectors += dist
	if dist == 0 {
		d.stats.SequentialRun++
	} else {
		d.stats.Seeks++
	}
	if write {
		d.stats.BytesWritten += bytes
	} else {
		d.stats.BytesRead += bytes
	}
	d.stats.BusyTime += t
	d.stats.TransferTime += d.lastBD.Transfer
	d.head = lbn + sectors
	if d.trace != nil {
		d.trace.add(Entry{At: p.Now(), LBN: lbn, Sectors: sectors, Write: write})
	}
	p.Sleep(t)
	return t
}
