package disk

import (
	"testing"
	"time"

	"dualpar/internal/sim"
)

func TestSSDPositionIndependent(t *testing.T) {
	d := NewSSD(DefaultSSDParams())
	k := sim.NewKernel(1)
	var seq, rnd time.Duration
	k.Spawn("d", func(p *sim.Proc) {
		seq = d.Access(p, 0, 64, false)
		seq += d.Access(p, 64, 64, false)
		rnd = d.Access(p, 1<<27, 64, false)
		rnd += d.Access(p, 5, 64, false)
	})
	k.Run()
	if seq != rnd {
		t.Fatalf("sequential %v != random %v on SSD", seq, rnd)
	}
}

func TestSSDWriteSlowerThanRead(t *testing.T) {
	d := NewSSD(DefaultSSDParams())
	k := sim.NewKernel(1)
	var r, w time.Duration
	k.Spawn("d", func(p *sim.Proc) {
		r = d.Access(p, 0, 8, false)
		w = d.Access(p, 1<<20, 8, true)
	})
	k.Run()
	if w <= r {
		t.Fatalf("write %v not slower than read %v", w, r)
	}
}

func TestSSDStatsAndTrace(t *testing.T) {
	d := NewSSD(DefaultSSDParams())
	tr := d.EnableTrace()
	k := sim.NewKernel(1)
	k.Spawn("d", func(p *sim.Proc) {
		d.Access(p, 0, 16, false)
		d.Access(p, 1000, 16, true)
	})
	k.Run()
	s := d.Stats()
	if s.Accesses != 2 || s.BytesRead != 16*512 || s.BytesWritten != 16*512 {
		t.Fatalf("stats = %+v", s)
	}
	if tr.Len() != 2 {
		t.Fatalf("trace len = %d", tr.Len())
	}
}

func TestSSDBoundsPanic(t *testing.T) {
	d := NewSSD(DefaultSSDParams())
	k := sim.NewKernel(1)
	k.Spawn("d", func(p *sim.Proc) {
		d.Access(p, d.Sectors(), 1, false)
	})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	k.Run()
}

func TestSSDParamsValidate(t *testing.T) {
	bad := []func(*SSDParams){
		func(p *SSDParams) { p.SectorSize = 0 },
		func(p *SSDParams) { p.Sectors = 0 },
		func(p *SSDParams) { p.ReadLatency = -1 },
		func(p *SSDParams) { p.TransferRate = 0 },
	}
	for i, m := range bad {
		p := DefaultSSDParams()
		m(&p)
		if p.Validate() == nil {
			t.Fatalf("case %d passed", i)
		}
	}
}
