package disk

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Entry is one access in a blktrace-style log: the completion order and disk
// addresses actually seen by the device, the observable the paper plots in
// Figures 1(c,d) and 6.
type Entry struct {
	At      time.Duration
	LBN     int64
	Sectors int64
	Write   bool
}

// Trace is an append-only access log.
type Trace struct {
	sectorSize int
	entries    []Entry
}

func (t *Trace) add(e Entry) {
	if t.entries == nil {
		// Traces routinely collect tens of thousands of entries per run;
		// start big so steady logging re-grows rarely.
		t.entries = make([]Entry, 0, 4096)
	}
	t.entries = append(t.entries, e)
}

// Entries returns the full log.
func (t *Trace) Entries() []Entry { return t.entries }

// Len reports the number of logged accesses.
func (t *Trace) Len() int { return len(t.entries) }

// Window returns a copy of the entries with from <= At < to, the way the
// paper samples an execution period (e.g. 5.2 s to 5.4 s). Entries are
// logged in completion order under a monotonic clock, so the bounds are
// found by binary search: O(log n + window) on long traces.
func (t *Trace) Window(from, to time.Duration) []Entry {
	lo := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].At >= from })
	hi := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].At >= to })
	if lo >= hi {
		return nil
	}
	return append([]Entry(nil), t.entries[lo:hi]...)
}

// Reset discards all entries.
func (t *Trace) Reset() { t.entries = t.entries[:0] }

// WriteCSV emits "time_s,lbn,sectors,rw" rows for external plotting.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_s,lbn,sectors,rw"); err != nil {
		return err
	}
	for _, e := range t.entries {
		rw := "R"
		if e.Write {
			rw = "W"
		}
		if _, err := fmt.Fprintf(w, "%.6f,%d,%d,%s\n", e.At.Seconds(), e.LBN, e.Sectors, rw); err != nil {
			return err
		}
	}
	return nil
}

// Monotonicity summarizes head movement direction over a window: the
// fraction of consecutive access pairs that move forward. The paper's
// "mostly in one direction" observation (Fig 1d) corresponds to values near
// 1; back-and-forth movement (Fig 1c) to values near 0.5.
func Monotonicity(entries []Entry) float64 {
	if len(entries) < 2 {
		return 1
	}
	fwd := 0
	for i := 1; i < len(entries); i++ {
		if entries[i].LBN >= entries[i-1].LBN {
			fwd++
		}
	}
	return float64(fwd) / float64(len(entries)-1)
}

// MeanSeek returns the mean absolute inter-access LBN distance over a
// window.
func MeanSeek(entries []Entry) float64 {
	if len(entries) < 2 {
		return 0
	}
	var total int64
	for i := 1; i < len(entries); i++ {
		d := entries[i].LBN - (entries[i-1].LBN + entries[i-1].Sectors)
		if d < 0 {
			d = -d
		}
		total += d
	}
	return float64(total) / float64(len(entries)-1)
}
