// Package disk models rotating storage devices at the level the paper's
// argument depends on: head position, seek time as a function of seek
// distance, rotational latency, and sustained media transfer rate. A disk
// keeps a blktrace-style access log (optional) and running seek-distance
// statistics, which DualPar's per-server locality daemon samples (SeekDist in
// the paper, §IV-B).
package disk

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dualpar/internal/sim"
)

// Params describes a disk's geometry and timing. ZeroValue is invalid; use
// DefaultParams as a base.
type Params struct {
	SectorSize int   // bytes per sector (LBN unit)
	Sectors    int64 // device capacity in sectors

	SeekMin time.Duration // track-to-track seek
	SeekMax time.Duration // full-stroke seek
	RPM     int           // spindle speed

	// TransferRate is the sustained media rate in bytes/second once the
	// head is positioned.
	TransferRate float64

	// SeqWindow is the maximum forward gap, in sectors, that is still
	// served by streaming over the gap instead of seeking: the head reads
	// past unwanted sectors at media rate. Typical real-disk firmware
	// behaves this way for short forward skips.
	SeqWindow int64

	// CommandOverhead is the fixed per-request controller/command cost.
	CommandOverhead time.Duration

	// RandomRotation samples the rotational latency uniformly from
	// [0, one revolution) per access instead of charging the expected half
	// revolution. Real positioning variance is what desynchronizes
	// lockstepped clients; deterministic via Seed.
	RandomRotation bool
	// Seed drives the rotational-latency samples.
	Seed int64
}

// DefaultParams approximates one 7200-RPM SATA drive of the paper's era
// (HP MM0500FAMYT class).
func DefaultParams() Params {
	return Params{
		SectorSize:      512,
		Sectors:         1 << 30, // 512 GB
		SeekMin:         500 * time.Microsecond,
		SeekMax:         9 * time.Millisecond,
		RPM:             7200,
		TransferRate:    90e6,
		SeqWindow:       512, // 256 KB forward skip
		CommandOverhead: 100 * time.Microsecond,
		RandomRotation:  true,
		Seed:            1,
	}
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	switch {
	case p.SectorSize <= 0:
		return fmt.Errorf("disk: SectorSize %d", p.SectorSize)
	case p.Sectors <= 0:
		return fmt.Errorf("disk: Sectors %d", p.Sectors)
	case p.SeekMin < 0 || p.SeekMax < p.SeekMin:
		return fmt.Errorf("disk: seek range [%v,%v]", p.SeekMin, p.SeekMax)
	case p.RPM <= 0:
		return fmt.Errorf("disk: RPM %d", p.RPM)
	case p.TransferRate <= 0:
		return fmt.Errorf("disk: TransferRate %g", p.TransferRate)
	case p.SeqWindow < 0:
		return fmt.Errorf("disk: SeqWindow %d", p.SeqWindow)
	case p.CommandOverhead < 0:
		return fmt.Errorf("disk: CommandOverhead %v", p.CommandOverhead)
	}
	return nil
}

// Breakdown decomposes one access's service time into its cost-model
// components. Streamed forward skips (SeqWindow) count as Seek: the head is
// positioning over unwanted sectors, even though it moves at media rate.
// The components sum exactly to the charged service time.
type Breakdown struct {
	Overhead time.Duration // command/controller cost (plus degradation surcharge)
	Seek     time.Duration // head movement, including streamed skips
	Rotation time.Duration // rotational latency
	Transfer time.Duration // media transfer of the requested sectors
}

// Total is the sum of the components — the access's service time.
func (b Breakdown) Total() time.Duration {
	return b.Overhead + b.Seek + b.Rotation + b.Transfer
}

// BreakdownReporter is implemented by devices that can report the component
// breakdown of their most recent access. The dispatcher that owns the device
// reads it immediately after Access returns (devices are single-owner, so
// there is no race).
type BreakdownReporter interface {
	LastBreakdown() Breakdown
}

// A Device serves sector-addressed accesses, charging virtual time to the
// calling Proc.
type Device interface {
	// Access reads or writes sectors [lbn, lbn+sectors) and returns the
	// service time, which has already been charged to p.
	Access(p *sim.Proc, lbn, sectors int64, write bool) time.Duration
	// Sectors reports the device capacity.
	Sectors() int64
	// Stats returns cumulative counters.
	Stats() Stats
	// Trace returns the access log, or nil if tracing is disabled.
	Trace() *Trace
}

// Stats holds cumulative device counters. Sampling daemons take deltas
// between snapshots.
type Stats struct {
	Accesses      int64
	Seeks         int64 // accesses that required head repositioning
	SeekSectors   int64 // total absolute seek distance, in sectors
	BytesRead     int64
	BytesWritten  int64
	BusyTime      time.Duration
	SequentialRun int64 // accesses served without repositioning

	// Positioning vs. payload attribution: SeekTime accumulates the
	// Seek+Rotation breakdown components, TransferTime the media-transfer
	// component (command overhead is in BusyTime only). The engines
	// experiment reports these per storage engine.
	SeekTime     time.Duration
	TransferTime time.Duration
}

// AvgSeekDistance returns the mean seek distance in sectors over all
// accesses (zero-distance sequential accesses included), the statistic the
// paper's locality daemon reports.
func (s Stats) AvgSeekDistance() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.SeekSectors) / float64(s.Accesses)
}

// Sub returns s - t, for window deltas.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Accesses:      s.Accesses - t.Accesses,
		Seeks:         s.Seeks - t.Seeks,
		SeekSectors:   s.SeekSectors - t.SeekSectors,
		BytesRead:     s.BytesRead - t.BytesRead,
		BytesWritten:  s.BytesWritten - t.BytesWritten,
		BusyTime:      s.BusyTime - t.BusyTime,
		SequentialRun: s.SequentialRun - t.SequentialRun,
		SeekTime:      s.SeekTime - t.SeekTime,
		TransferTime:  s.TransferTime - t.TransferTime,
	}
}

// Disk is a single rotating drive. It is not safe for concurrent access;
// exactly one dispatcher Proc must own it (the I/O scheduler's dispatch
// loop), which is how a real block device queue behaves.
type Disk struct {
	params Params
	head   int64 // LBN the head is positioned after
	stats  Stats
	trace  *Trace
	rng    *rand.Rand
	lastBD Breakdown
}

// New creates a disk. It panics if params are invalid (a configuration bug).
func New(params Params) *Disk {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &Disk{params: params, head: 0, rng: rand.New(rand.NewSource(params.Seed))}
}

// EnableTrace turns on blktrace-style logging into a fresh Trace.
func (d *Disk) EnableTrace() *Trace {
	d.trace = &Trace{sectorSize: d.params.SectorSize}
	return d.trace
}

// Params returns the disk's parameters.
func (d *Disk) Params() Params { return d.params }

// Sectors implements Device.
func (d *Disk) Sectors() int64 { return d.params.Sectors }

// Stats implements Device.
func (d *Disk) Stats() Stats { return d.stats }

// Trace implements Device.
func (d *Disk) Trace() *Trace { return d.trace }

// Head returns the current head position (LBN).
func (d *Disk) Head() int64 { return d.head }

// ServiceTime computes the *expected* time to serve an access given the
// current head position (rotational latency at its mean, half a
// revolution). Access charges the sampled time when RandomRotation is on.
func (d *Disk) ServiceTime(lbn, sectors int64) time.Duration {
	return serviceBreakdown(d.params, d.head, lbn, sectors, halfRotation(d.params.RPM)).Total()
}

// LastBreakdown implements BreakdownReporter.
func (d *Disk) LastBreakdown() Breakdown { return d.lastBD }

// sampledBreakdown draws the rotational latency if RandomRotation is on.
func (d *Disk) sampledBreakdown(lbn, sectors int64) Breakdown {
	rot := halfRotation(d.params.RPM)
	if d.params.RandomRotation {
		rot = time.Duration(d.rng.Int63n(int64(2 * rot)))
	}
	return serviceBreakdown(d.params, d.head, lbn, sectors, rot)
}

// Access implements Device.
func (d *Disk) Access(p *sim.Proc, lbn, sectors int64, write bool) time.Duration {
	if lbn < 0 || sectors <= 0 || lbn+sectors > d.params.Sectors {
		panic(fmt.Sprintf("disk: access [%d,%d) outside device of %d sectors", lbn, lbn+sectors, d.params.Sectors))
	}
	d.lastBD = d.sampledBreakdown(lbn, sectors)
	t := d.lastBD.Total()
	dist := lbn - d.head
	if dist < 0 {
		dist = -dist
	}
	d.stats.Accesses++
	d.stats.SeekSectors += dist
	if dist == 0 {
		d.stats.SequentialRun++
	} else {
		d.stats.Seeks++
	}
	bytes := sectors * int64(d.params.SectorSize)
	if write {
		d.stats.BytesWritten += bytes
	} else {
		d.stats.BytesRead += bytes
	}
	d.stats.BusyTime += t
	d.stats.SeekTime += d.lastBD.Seek + d.lastBD.Rotation
	d.stats.TransferTime += d.lastBD.Transfer
	d.head = lbn + sectors
	if d.trace != nil {
		d.trace.add(Entry{At: p.Now(), LBN: lbn, Sectors: sectors, Write: write})
	}
	p.Sleep(t)
	return t
}

// serviceBreakdown decomposes one access from head into its components,
// with the given rotational latency for non-streamed moves. The total is
// identical to the historical overhead + positioning + transfer sum.
func serviceBreakdown(params Params, head, lbn, sectors int64, rot time.Duration) Breakdown {
	bd := Breakdown{
		Overhead: params.CommandOverhead,
		Transfer: transferTime(params, sectors),
	}
	dist := lbn - head
	switch {
	case dist == 0:
	case dist > 0 && dist <= params.SeqWindow:
		// Stream over the short forward gap at media rate.
		bd.Seek = time.Duration(float64(dist*int64(params.SectorSize)) / params.TransferRate * float64(time.Second))
	default:
		if dist < 0 {
			dist = -dist
		}
		frac := math.Sqrt(float64(dist) / float64(params.Sectors))
		bd.Seek = params.SeekMin + time.Duration(frac*float64(params.SeekMax-params.SeekMin))
		bd.Rotation = rot
	}
	return bd
}

// halfRotation is the expected rotational latency: half a revolution.
func halfRotation(rpm int) time.Duration {
	return time.Duration(float64(time.Minute) / float64(rpm) / 2)
}

// transferTime is the media transfer time for sectors sectors.
func transferTime(params Params, sectors int64) time.Duration {
	bytes := float64(sectors * int64(params.SectorSize))
	return time.Duration(bytes / params.TransferRate * float64(time.Second))
}
