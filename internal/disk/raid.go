package disk

import (
	"fmt"
	"time"

	"dualpar/internal/sim"
)

// RAID0 stripes a logical LBN space across member disks in fixed-size
// chunks, serving the per-member portions of an access in parallel (the
// access completes when the slowest member does). The paper's data servers
// each have a two-drive hardware RAID.
type RAID0 struct {
	members      []*Disk
	chunkSectors int64
	sectors      int64
	stats        Stats
	trace        *Trace
	lastBD       Breakdown
}

// NewRAID0 builds a RAID0 over members with the given chunk size in sectors.
func NewRAID0(members []*Disk, chunkSectors int64) *RAID0 {
	if len(members) == 0 {
		panic("disk: RAID0 needs at least one member")
	}
	if chunkSectors <= 0 {
		panic("disk: RAID0 chunk must be positive")
	}
	min := members[0].Sectors()
	for _, m := range members {
		if m.Sectors() < min {
			min = m.Sectors()
		}
	}
	return &RAID0{
		members:      members,
		chunkSectors: chunkSectors,
		sectors:      min * int64(len(members)),
	}
}

// EnableTrace turns on logical-address tracing (addresses are in the RAID's
// logical LBN space, matching what blktrace reports for an md/hardware RAID
// block device).
func (r *RAID0) EnableTrace() *Trace {
	r.trace = &Trace{sectorSize: r.members[0].Params().SectorSize}
	return r.trace
}

// Sectors implements Device.
func (r *RAID0) Sectors() int64 { return r.sectors }

// Stats implements Device.
func (r *RAID0) Stats() Stats {
	// Aggregate member counters but preserve RAID-level access count.
	agg := r.stats
	for _, m := range r.members {
		s := m.Stats()
		agg.Seeks += s.Seeks
		agg.SeekSectors += s.SeekSectors
		agg.BytesRead += s.BytesRead
		agg.BytesWritten += s.BytesWritten
		agg.SeekTime += s.SeekTime
		agg.TransferTime += s.TransferTime
	}
	return agg
}

// Trace implements Device.
func (r *RAID0) Trace() *Trace { return r.trace }

// Access implements Device: the logical range is split into per-member runs
// and the service time is the maximum of the member times, as the members
// operate concurrently.
func (r *RAID0) Access(p *sim.Proc, lbn, sectors int64, write bool) time.Duration {
	if lbn < 0 || sectors <= 0 || lbn+sectors > r.sectors {
		panic(fmt.Sprintf("disk: RAID0 access [%d,%d) outside %d sectors", lbn, lbn+sectors, r.sectors))
	}
	n := int64(len(r.members))
	var worst time.Duration
	// Walk the logical range chunk by chunk, accumulating a contiguous run
	// per member, then charge each member its run in one operation.
	type run struct {
		lbn, sectors int64
		active       bool
	}
	runs := make([]run, n)
	var worstBD Breakdown
	flush := func(i int64) {
		if !runs[i].active {
			return
		}
		t := r.members[i].serve(runs[i].lbn, runs[i].sectors, write)
		if t > worst {
			worst = t
			worstBD = r.members[i].LastBreakdown()
		}
		runs[i].active = false
	}
	for off := lbn; off < lbn+sectors; {
		chunk := off / r.chunkSectors
		member := chunk % n
		mlbn := (chunk/n)*r.chunkSectors + off%r.chunkSectors
		span := r.chunkSectors - off%r.chunkSectors
		if rem := lbn + sectors - off; span > rem {
			span = rem
		}
		ru := &runs[member]
		if ru.active && ru.lbn+ru.sectors == mlbn {
			ru.sectors += span
		} else {
			flush(member)
			*ru = run{lbn: mlbn, sectors: span, active: true}
		}
		off += span
	}
	for i := int64(0); i < n; i++ {
		flush(i)
	}
	r.stats.Accesses++
	r.stats.BusyTime += worst
	// The access completes when the slowest member does, so the gating
	// member's component split is the access's breakdown.
	r.lastBD = worstBD
	if r.trace != nil {
		r.trace.add(Entry{At: p.Now(), LBN: lbn, Sectors: sectors, Write: write})
	}
	p.Sleep(worst)
	return worst
}

// LastBreakdown implements BreakdownReporter: the breakdown of the member
// run that gated the most recent access.
func (r *RAID0) LastBreakdown() Breakdown { return r.lastBD }

// serve performs a member access without a Proc (time is accounted by the
// RAID wrapper). It mirrors Disk.Access's bookkeeping.
func (d *Disk) serve(lbn, sectors int64, write bool) time.Duration {
	d.lastBD = serviceBreakdown(d.params, d.head, lbn, sectors, halfRotation(d.params.RPM))
	t := d.lastBD.Total()
	dist := lbn - d.head
	if dist < 0 {
		dist = -dist
	}
	d.stats.Accesses++
	d.stats.SeekSectors += dist
	if dist == 0 {
		d.stats.SequentialRun++
	} else {
		d.stats.Seeks++
	}
	bytes := sectors * int64(d.params.SectorSize)
	if write {
		d.stats.BytesWritten += bytes
	} else {
		d.stats.BytesRead += bytes
	}
	d.stats.BusyTime += t
	d.stats.SeekTime += d.lastBD.Seek + d.lastBD.Rotation
	d.stats.TransferTime += d.lastBD.Transfer
	d.head = lbn + sectors
	return t
}
