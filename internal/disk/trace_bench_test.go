package disk

import (
	"testing"
	"time"
)

func buildTrace(n int) *Trace {
	tr := &Trace{sectorSize: 512}
	for i := 0; i < n; i++ {
		tr.add(Entry{At: time.Duration(i) * 10 * time.Microsecond, LBN: int64(i) * 8, Sectors: 8})
	}
	return tr
}

// BenchmarkTraceWindow measures the paper-style narrow window query (a few
// hundred ms out of a long run) against a long blktrace log; the
// sort.Search bounds avoid scanning the whole log.
func BenchmarkTraceWindow(b *testing.B) {
	tr := buildTrace(1 << 20)
	from := 5200 * time.Millisecond
	to := 5400 * time.Millisecond
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(tr.Window(from, to)) == 0 {
			b.Fatal("window unexpectedly empty")
		}
	}
}

func TestTraceWindowEdges(t *testing.T) {
	tr := buildTrace(100)
	w := tr.Window(100*time.Microsecond, 150*time.Microsecond)
	if len(w) != 5 {
		t.Fatalf("window len = %d, want 5", len(w))
	}
	if w[0].At != 100*time.Microsecond {
		t.Fatalf("window start = %v", w[0].At)
	}
	if got := tr.Window(time.Hour, 2*time.Hour); got != nil {
		t.Fatalf("out-of-range window = %v, want nil", got)
	}
	if got := tr.Window(150*time.Microsecond, 100*time.Microsecond); got != nil {
		t.Fatalf("inverted window = %v, want nil", got)
	}
	if got := (&Trace{}).Window(0, time.Second); got != nil {
		t.Fatalf("empty trace window = %v, want nil", got)
	}
}
