package disk

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"dualpar/internal/sim"
)

func testParams() Params {
	p := DefaultParams()
	p.Sectors = 1 << 24 // 8 GB, keeps seek fractions meaningful
	return p
}

// runAccesses serves the accesses on one disk in order and returns the total
// busy time.
func runAccesses(t *testing.T, d *Disk, acc [][2]int64) time.Duration {
	t.Helper()
	k := sim.NewKernel(1)
	var total time.Duration
	k.Spawn("dispatcher", func(p *sim.Proc) {
		for _, a := range acc {
			total += d.Access(p, a[0], a[1], false)
		}
	})
	k.Run()
	return total
}

func TestSequentialFasterThanRandom(t *testing.T) {
	const n = 64
	const sz = 32 // 16 KB
	seq := make([][2]int64, n)
	rnd := make([][2]int64, n)
	for i := 0; i < n; i++ {
		seq[i] = [2]int64{int64(i) * sz, sz}
		// Scatter randoms across the device, alternating halves to force
		// long seeks.
		pos := int64(i%2)*(1<<23) + int64(i)*100000
		rnd[i] = [2]int64{pos, sz}
	}
	tSeq := runAccesses(t, New(testParams()), seq)
	tRnd := runAccesses(t, New(testParams()), rnd)
	if ratio := float64(tRnd) / float64(tSeq); ratio < 10 {
		t.Fatalf("random/sequential time ratio = %.1f, want >= 10 (order-of-magnitude gap)", ratio)
	}
}

func TestSequentialAccessNoSeek(t *testing.T) {
	d := New(testParams())
	runAccesses(t, d, [][2]int64{{0, 64}, {64, 64}, {128, 64}})
	s := d.Stats()
	if s.Seeks != 0 {
		t.Fatalf("seeks = %d, want 0 for back-to-back sequential accesses", s.Seeks)
	}
	if s.SequentialRun != 3 {
		t.Fatalf("sequential runs = %d, want 3", s.SequentialRun)
	}
}

func TestSeekDistanceAccounting(t *testing.T) {
	d := New(testParams())
	runAccesses(t, d, [][2]int64{{0, 10}, {1000000, 10}})
	s := d.Stats()
	// Second access seeks from LBN 10 to 1000000.
	want := int64(1000000 - 10)
	if s.SeekSectors != want {
		t.Fatalf("seek sectors = %d, want %d", s.SeekSectors, want)
	}
	if got := s.AvgSeekDistance(); got != float64(want)/2 {
		t.Fatalf("avg seek = %g, want %g", got, float64(want)/2)
	}
}

func TestShortForwardGapStreamsOverIt(t *testing.T) {
	p := testParams()
	d := New(p)
	k := sim.NewKernel(1)
	var tGap, tFar time.Duration
	k.Spawn("d", func(pr *sim.Proc) {
		d.Access(pr, 0, 64, false)
		tGap = d.ServiceTime(64+p.SeqWindow/2, 64) // short forward skip
		tFar = d.ServiceTime(1<<23, 64)            // long seek
	})
	k.Run()
	if tGap >= tFar {
		t.Fatalf("short-gap service %v not cheaper than far seek %v", tGap, tFar)
	}
	if tGap >= halfRotation(p.RPM) {
		t.Fatalf("short-gap service %v should avoid rotational latency %v", tGap, halfRotation(p.RPM))
	}
}

func TestLargerTransfersAmortizeOverhead(t *testing.T) {
	p := testParams()
	d := New(p)
	small := d.ServiceTime(1<<23, 8)
	big := d.ServiceTime(1<<23, 8*64)
	if float64(big) > float64(small)*4 {
		t.Fatalf("64x larger transfer took %v vs %v: positioning should dominate small transfers", big, small)
	}
}

func TestAccessOutOfRangePanics(t *testing.T) {
	d := New(testParams())
	k := sim.NewKernel(1)
	k.Spawn("d", func(p *sim.Proc) {
		d.Access(p, d.Sectors()-1, 2, false)
	})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for out-of-range access")
		}
	}()
	k.Run()
}

func TestStatsReadWriteBytes(t *testing.T) {
	d := New(testParams())
	k := sim.NewKernel(1)
	k.Spawn("d", func(p *sim.Proc) {
		d.Access(p, 0, 16, false)
		d.Access(p, 1<<20, 32, true)
	})
	k.Run()
	s := d.Stats()
	if s.BytesRead != 16*512 || s.BytesWritten != 32*512 {
		t.Fatalf("bytes = %d read / %d written, want %d / %d", s.BytesRead, s.BytesWritten, 16*512, 32*512)
	}
}

func TestStatsSub(t *testing.T) {
	d := New(testParams())
	k := sim.NewKernel(1)
	var before Stats
	k.Spawn("d", func(p *sim.Proc) {
		d.Access(p, 0, 16, false)
		before = d.Stats()
		d.Access(p, 1<<20, 16, false)
	})
	k.Run()
	delta := d.Stats().Sub(before)
	if delta.Accesses != 1 || delta.Seeks != 1 {
		t.Fatalf("delta = %+v, want 1 access, 1 seek", delta)
	}
}

func TestTraceRecordsAccesses(t *testing.T) {
	d := New(testParams())
	tr := d.EnableTrace()
	k := sim.NewKernel(1)
	k.Spawn("d", func(p *sim.Proc) {
		d.Access(p, 100, 8, false)
		d.Access(p, 200, 8, true)
	})
	k.Run()
	if tr.Len() != 2 {
		t.Fatalf("trace len = %d, want 2", tr.Len())
	}
	e := tr.Entries()
	if e[0].LBN != 100 || e[1].LBN != 200 || !e[1].Write {
		t.Fatalf("trace entries wrong: %+v", e)
	}
	if e[0].At != 0 {
		t.Fatalf("first entry logged at %v, want 0 (arrival at dispatch)", e[0].At)
	}
}

func TestTraceWindow(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 10; i++ {
		tr.add(Entry{At: time.Duration(i) * time.Second, LBN: int64(i)})
	}
	w := tr.Window(3*time.Second, 6*time.Second)
	if len(w) != 3 || w[0].LBN != 3 || w[2].LBN != 5 {
		t.Fatalf("window = %+v", w)
	}
}

func TestTraceCSV(t *testing.T) {
	tr := &Trace{}
	tr.add(Entry{At: time.Second, LBN: 42, Sectors: 8, Write: true})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "time_s,lbn,sectors,rw") || !strings.Contains(out, "1.000000,42,8,W") {
		t.Fatalf("csv output:\n%s", out)
	}
}

func TestMonotonicity(t *testing.T) {
	up := []Entry{{LBN: 1}, {LBN: 2}, {LBN: 3}, {LBN: 4}}
	if m := Monotonicity(up); m != 1 {
		t.Fatalf("ascending monotonicity = %g, want 1", m)
	}
	zigzag := []Entry{{LBN: 1}, {LBN: 100}, {LBN: 2}, {LBN: 101}, {LBN: 3}}
	if m := Monotonicity(zigzag); m > 0.6 {
		t.Fatalf("zigzag monotonicity = %g, want <= 0.6", m)
	}
	if m := Monotonicity(nil); m != 1 {
		t.Fatalf("empty monotonicity = %g, want 1", m)
	}
}

func TestMeanSeek(t *testing.T) {
	entries := []Entry{{LBN: 0, Sectors: 10}, {LBN: 10, Sectors: 10}, {LBN: 120, Sectors: 10}}
	// gaps: 0 then 100 -> mean 50
	if m := MeanSeek(entries); m != 50 {
		t.Fatalf("mean seek = %g, want 50", m)
	}
}

func TestServiceTimeMonotoneInDistance(t *testing.T) {
	p := testParams()
	f := func(a, b uint32) bool {
		d := New(p)
		// Position head at middle.
		d.head = p.Sectors / 2
		da := int64(a) % (p.Sectors / 2)
		db := int64(b) % (p.Sectors / 2)
		if da > db {
			da, db = db, da
		}
		// Skip the streaming window where cost is transfer-based.
		if da <= p.SeqWindow {
			return true
		}
		ta := d.ServiceTime(d.head+da, 8)
		tb := d.ServiceTime(d.head+db, 8)
		return ta <= tb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.SectorSize = 0 },
		func(p *Params) { p.Sectors = 0 },
		func(p *Params) { p.SeekMax = p.SeekMin - 1 },
		func(p *Params) { p.RPM = 0 },
		func(p *Params) { p.TransferRate = 0 },
		func(p *Params) { p.SeqWindow = -1 },
		func(p *Params) { p.CommandOverhead = -1 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Fatalf("case %d: invalid params passed Validate", i)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestRAID0StripesAcrossMembers(t *testing.T) {
	p := testParams()
	m0, m1 := New(p), New(p)
	r := NewRAID0([]*Disk{m0, m1}, 128) // 64 KB chunks
	k := sim.NewKernel(1)
	k.Spawn("d", func(pr *sim.Proc) {
		r.Access(pr, 0, 512, false) // 256 KB spanning 4 chunks
	})
	k.Run()
	if m0.Stats().BytesRead != 128*2*512 || m1.Stats().BytesRead != 128*2*512 {
		t.Fatalf("member reads %d/%d, want even split", m0.Stats().BytesRead, m1.Stats().BytesRead)
	}
}

func TestRAID0ParallelSpeedup(t *testing.T) {
	p := testParams()
	single := New(p)
	r := NewRAID0([]*Disk{New(p), New(p)}, 128)
	k := sim.NewKernel(1)
	var tSingle, tRaid time.Duration
	k.Spawn("d", func(pr *sim.Proc) {
		tSingle = single.Access(pr, 0, 4096, false)
		tRaid = r.Access(pr, 0, 4096, false)
	})
	k.Run()
	if tRaid >= tSingle {
		t.Fatalf("RAID0 access %v not faster than single disk %v", tRaid, tSingle)
	}
}

func TestRAID0CapacityAndBounds(t *testing.T) {
	p := testParams()
	r := NewRAID0([]*Disk{New(p), New(p)}, 128)
	if r.Sectors() != 2*p.Sectors {
		t.Fatalf("capacity = %d, want %d", r.Sectors(), 2*p.Sectors)
	}
	k := sim.NewKernel(1)
	k.Spawn("d", func(pr *sim.Proc) {
		r.Access(pr, r.Sectors()-1, 2, false)
	})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for out-of-range RAID access")
		}
	}()
	k.Run()
}

func TestRAID0MergesMemberRuns(t *testing.T) {
	// A logical sequential scan should produce sequential member accesses
	// (one per member per Access call), not one access per chunk.
	p := testParams()
	m0, m1 := New(p), New(p)
	r := NewRAID0([]*Disk{m0, m1}, 128)
	k := sim.NewKernel(1)
	k.Spawn("d", func(pr *sim.Proc) {
		r.Access(pr, 0, 128*6, false) // 6 chunks: 3 per member
	})
	k.Run()
	if a := m0.Stats().Accesses; a != 1 {
		t.Fatalf("member 0 accesses = %d, want 1 (coalesced run)", a)
	}
	if s := m0.Stats().Seeks + m1.Stats().Seeks; s != 0 {
		t.Fatalf("member seeks = %d, want 0", s)
	}
}
