package memcache

import (
	"testing"
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/sim"
)

// Edge cases of the eviction machinery: sweeper re-arm after the cache
// empties, capacity enforcement with no clean victim, and the
// deterministic lastRef tiebreak.

// TestSweeperRearmsAfterEmpty: the idle-eviction chain stops when the
// cache empties (so simulations terminate) and must re-arm when data
// arrives again — a chunk inserted after the quiet period still gets
// evicted on idle.
func TestSweeperRearmsAfterEmpty(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	c := newCache(k, cfg)
	e := ext.Extent{Off: 0, Len: cfg.ChunkBytes}
	k.Spawn("p", func(p *sim.Proc) {
		c.PutClean(p, 100, "f1", []ext.Extent{e})
		// Wait well past EvictAfter: the first generation is swept out and
		// the sweep chain dies with the cache empty.
		p.Sleep(3 * cfg.EvictAfter)
		if c.UsedBytes() != 0 {
			t.Errorf("first generation not evicted: used=%d", c.UsedBytes())
		}
		if ev := c.Evictions(); ev != 1 {
			t.Errorf("evictions=%d after first idle sweep, want 1", ev)
		}
		// Second generation: the sweeper must have re-armed on this put.
		c.PutClean(p, 100, "f2", []ext.Extent{e})
		p.Sleep(3 * cfg.EvictAfter)
		if c.UsedBytes() != 0 {
			t.Errorf("second generation not evicted: sweeper did not re-arm")
		}
	})
	k.Run()
	if c.Evictions() != 2 {
		t.Fatalf("evictions=%d, want 2", c.Evictions())
	}
}

// TestSweeperSkipsAllDirtyCache: a cache holding only dirty chunks has
// nothing to sweep; arming a timer anyway would keep an otherwise-finished
// simulation alive for an extra EvictAfter/2.
func TestSweeperSkipsAllDirtyCache(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	c := newCache(k, cfg)
	var endOfPut time.Duration
	k.Spawn("p", func(p *sim.Proc) {
		c.PutDirty(p, 100, "f", []ext.Extent{{Off: 0, Len: cfg.ChunkBytes}})
		endOfPut = p.Now()
	})
	k.Run() // would hang in sweeper re-arm cycles if dirty chunks armed it
	if k.Now() != endOfPut {
		t.Errorf("kernel ran to %v after the put finished at %v: sweeper armed with only dirty data", k.Now(), endOfPut)
	}
	if c.Evictions() != 0 {
		t.Errorf("evictions=%d, want 0 (dirty data is not evictable)", c.Evictions())
	}
}

// TestMarkCleanRearmsSweeper: if every chunk is dirty when a put runs, the
// sweeper is (correctly) not armed — but then MarkClean must re-arm it, or
// the cleaned chunks are never evicted and `used` grows without bound.
func TestMarkCleanRearmsSweeper(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	c := newCache(k, cfg)
	k.Spawn("p", func(p *sim.Proc) {
		c.PutDirty(p, 100, "f", []ext.Extent{{Off: 0, Len: cfg.ChunkBytes}})
		// Writeback completes: the only chunk goes clean. No put follows.
		c.MarkClean("f")
		p.Sleep(3 * cfg.EvictAfter)
		if c.UsedBytes() != 0 {
			t.Errorf("cleaned chunk never evicted: used=%d (sweeper not re-armed)", c.UsedBytes())
		}
		if ev := c.Evictions(); ev != 1 {
			t.Errorf("evictions=%d, want 1", ev)
		}
	})
	k.Run()
}

// TestCapacityAllDirtyNoVictim: when every cached byte is dirty,
// enforceCapacity must give up (writeback will drain) rather than spin or
// evict unwritten data.
func TestCapacityAllDirtyNoVictim(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.CapacityBytes = cfg.ChunkBytes // room for one chunk
	c := newCache(k, cfg)
	k.Spawn("p", func(p *sim.Proc) {
		c.PutDirty(p, 100, "f", []ext.Extent{{Off: 0, Len: 2 * cfg.ChunkBytes}})
	})
	k.Run()
	if c.UsedBytes() != 2*cfg.ChunkBytes {
		t.Errorf("used=%d, want %d (dirty data must survive over-capacity)", c.UsedBytes(), 2*cfg.ChunkBytes)
	}
	if c.Evictions() != 0 {
		t.Errorf("evictions=%d, want 0", c.Evictions())
	}
	// Once the data is clean, the next insert enforces the cap again.
	c.MarkClean("f")
	k.Spawn("p2", func(p *sim.Proc) {
		c.PutClean(p, 100, "g", []ext.Extent{{Off: 0, Len: cfg.ChunkBytes}})
	})
	k.Run()
	if c.UsedBytes() > cfg.CapacityBytes {
		t.Errorf("used=%d exceeds capacity %d after dirty data drained", c.UsedBytes(), cfg.CapacityBytes)
	}
}

// TestCapacityTiebreakDeterministic: chunks inserted at the same virtual
// instant share lastRef; the victim must then be chosen by key order
// (file, then chunk index), not map iteration order.
func TestCapacityTiebreakDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CapacityBytes = 4 * cfg.ChunkBytes
	cfg.OpCPU = 0 // puts cost no virtual time, so every lastRef ties
	one := ext.Extent{Off: 0, Len: cfg.ChunkBytes}
	for trial := 0; trial < 5; trial++ {
		k := sim.NewKernel(1)
		c := newCache(k, cfg)
		k.Spawn("p", func(p *sim.Proc) {
			// Four single-chunk files at one instant fill the cache exactly.
			for _, f := range []string{"d", "b", "c", "a"} {
				c.PutClean(p, 100, f, []ext.Extent{one})
			}
			// A fifth forces one eviction among four equal lastRefs.
			c.PutClean(p, 100, "e", []ext.Extent{one})
			if ev := c.Evictions(); ev != 1 {
				t.Fatalf("trial %d: evictions=%d at the over-capacity put, want 1", trial, ev)
			}
			if miss := c.Get(p, 100, "a", one); len(miss) == 0 {
				t.Fatalf("trial %d: %q survived, but it is the canonical victim", trial, "a")
			}
			for _, f := range []string{"b", "c", "d", "e"} {
				if miss := c.Get(p, 100, f, one); len(miss) != 0 {
					t.Errorf("trial %d: %q evicted, want only %q gone", trial, f, "a")
				}
			}
		})
		k.Run() // idle sweeps after the assertions may evict more; that's fine
	}
}

// TestLessKeyOrdering pins the tiebreak comparator itself.
func TestLessKeyOrdering(t *testing.T) {
	cases := []struct {
		a, b chunkKey
		want bool
	}{
		{chunkKey{"a", 0}, chunkKey{"b", 0}, true},
		{chunkKey{"b", 0}, chunkKey{"a", 9}, false},
		{chunkKey{"a", 1}, chunkKey{"a", 2}, true},
		{chunkKey{"a", 2}, chunkKey{"a", 2}, false},
	}
	for _, tc := range cases {
		if got := lessKey(tc.a, tc.b); got != tc.want {
			t.Errorf("lessKey(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestHomeBytesAccumulation covers the sorted-slice accumulator that
// replaced the per-op map on the Get/put hot path.
func TestHomeBytesAccumulation(t *testing.T) {
	var hb homeBytes
	for _, in := range []struct {
		node  int
		bytes int64
	}{{5, 10}, {2, 1}, {5, 7}, {9, 3}, {2, 2}, {0, 4}} {
		hb = hb.add(in.node, in.bytes)
	}
	want := homeBytes{{0, 4}, {2, 3}, {5, 17}, {9, 3}}
	if len(hb) != len(want) {
		t.Fatalf("len=%d, want %d (%v)", len(hb), len(want), hb)
	}
	for i := range want {
		if hb[i] != want[i] {
			t.Errorf("slot %d = %+v, want %+v", i, hb[i], want[i])
		}
	}
}
