package memcache

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/netsim"
	"dualpar/internal/sim"
)

// TestGetAfterPutAlwaysHits: any Get fully covered by prior PutClean calls
// must be a hit, and uncovered ranges must be reported missing — for
// arbitrary extent sets.
func TestGetAfterPutAlwaysHits(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel(seed)
		net := netsim.New(k, netsim.DefaultConfig())
		c := New(k, net, DefaultConfig(), []int{100, 101, 102})
		count := 1 + int(n)%12
		var put []ext.Extent
		for i := 0; i < count; i++ {
			put = append(put, ext.Extent{
				Off: rng.Int63n(4 << 20),
				Len: 1 + rng.Int63n(256<<10),
			})
		}
		ok := true
		k.Spawn("p", func(p *sim.Proc) {
			c.PutClean(p, 100, "f", put)
			// Every put extent must now be fully resident.
			for _, e := range put {
				if miss := c.Get(p, 101, "f", e); len(miss) != 0 {
					ok = false
				}
			}
			// A range strictly outside all puts must miss entirely.
			var hi int64
			for _, e := range put {
				if e.End() > hi {
					hi = e.End()
				}
			}
			probe := ext.Extent{Off: hi + 128<<10, Len: 4 << 10}
			miss := c.Get(p, 100, "f", probe)
			if ext.Total(miss) != probe.Len {
				ok = false
			}
		})
		k.RunUntil(time.Minute)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDirtyNeverLost: PutDirty extents always reappear (merged) from
// DirtyExtents until MarkClean, regardless of interleaved clean puts.
func TestDirtyNeverLost(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel(seed)
		net := netsim.New(k, netsim.DefaultConfig())
		c := New(k, net, DefaultConfig(), []int{100})
		count := 1 + int(n)%10
		var dirty []ext.Extent
		ok := true
		k.Spawn("p", func(p *sim.Proc) {
			for i := 0; i < count; i++ {
				e := ext.Extent{Off: rng.Int63n(2 << 20), Len: 1 + rng.Int63n(64<<10)}
				dirty = append(dirty, e)
				c.PutDirty(p, 100, "f", []ext.Extent{e})
				// Interleave unrelated clean data.
				c.PutClean(p, 100, "g", []ext.Extent{{Off: rng.Int63n(1 << 20), Len: 4 << 10}})
			}
			want := ext.Merge(dirty)
			got := c.DirtyExtents("f")
			if ext.Total(got) != ext.Total(want) {
				ok = false
			}
			c.MarkClean("f")
			if len(c.DirtyExtents("f")) != 0 {
				ok = false
			}
			// Data stays valid after MarkClean.
			for _, e := range want {
				if miss := c.Get(p, 100, "f", e); len(miss) != 0 {
					ok = false
				}
			}
		})
		k.RunUntil(time.Minute)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
