package memcache

import (
	"testing"
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/netsim"
	"dualpar/internal/sim"
)

func newCache(k *sim.Kernel, cfg Config, nodes ...int) *Cache {
	net := netsim.New(k, netsim.DefaultConfig())
	if len(nodes) == 0 {
		nodes = []int{100, 101}
	}
	return New(k, net, cfg, nodes)
}

func TestGetMissThenHit(t *testing.T) {
	k := sim.NewKernel(1)
	c := newCache(k, DefaultConfig())
	k.Spawn("p", func(p *sim.Proc) {
		e := ext.Extent{Off: 0, Len: 64 << 10}
		miss := c.Get(p, 100, "f", e)
		if len(miss) != 1 || miss[0] != e {
			t.Errorf("cold miss = %v, want %v", miss, e)
		}
		c.PutClean(p, 100, "f", []ext.Extent{e})
		if miss := c.Get(p, 100, "f", e); len(miss) != 0 {
			t.Errorf("post-put miss = %v, want none", miss)
		}
	})
	k.Run()
	if c.Gets() != 2 || c.Hits() != 1 {
		t.Fatalf("gets=%d hits=%d, want 2/1", c.Gets(), c.Hits())
	}
}

func TestPartialChunkCountsAsMiss(t *testing.T) {
	k := sim.NewKernel(1)
	c := newCache(k, DefaultConfig())
	k.Spawn("p", func(p *sim.Proc) {
		c.PutClean(p, 100, "f", []ext.Extent{{Off: 0, Len: 4 << 10}})
		miss := c.Get(p, 100, "f", ext.Extent{Off: 0, Len: 8 << 10})
		if len(miss) != 1 || miss[0].Len != 8<<10 {
			t.Errorf("partial hit should report whole piece missing, got %v", miss)
		}
	})
	k.Run()
}

// TestPartialHitChargesNoTransfer pins the billing side of the partial-hit
// path: a chunk that is only partly valid reports the whole piece missing
// and charges neither the home-node op cost nor a wire transfer — the audit
// ledger counts those bytes as missed, not hit.
func TestPartialHitChargesNoTransfer(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	c := newCache(k, cfg, 100, 101) // chunk 1 homes on node 101
	k.Spawn("p", func(p *sim.Proc) {
		chunk1 := ext.Extent{Off: cfg.ChunkBytes, Len: cfg.ChunkBytes}
		// Only the first 4K of the remote chunk is valid.
		c.PutClean(p, 101, "f", []ext.Extent{{Off: cfg.ChunkBytes, Len: 4 << 10}})
		t0 := p.Now()
		miss := c.Get(p, 100, "f", chunk1)
		if p.Now() != t0 {
			t.Errorf("partial hit charged %v of op/transfer time, want none", p.Now()-t0)
		}
		if len(miss) != 1 || miss[0] != chunk1 {
			t.Errorf("miss = %v, want whole piece %v", miss, chunk1)
		}
		// Once fully valid, the same Get pays the remote transfer.
		c.PutClean(p, 101, "f", []ext.Extent{chunk1})
		t0 = p.Now()
		if miss := c.Get(p, 100, "f", chunk1); len(miss) != 0 {
			t.Errorf("full chunk still missing: %v", miss)
		}
		if p.Now() == t0 {
			t.Errorf("remote full hit charged nothing")
		}
	})
	k.Run()
}

// TestPartialHitMixedBatch: a Get spanning a fully-valid local chunk and a
// partially-valid remote chunk pays exactly one local op (for the hit) and
// nothing for the partial chunk.
func TestPartialHitMixedBatch(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	c := newCache(k, cfg, 100, 101)
	k.Spawn("p", func(p *sim.Proc) {
		c.PutClean(p, 100, "f", []ext.Extent{{Off: 0, Len: cfg.ChunkBytes}}) // chunk 0, local to 100
		c.PutClean(p, 101, "f", []ext.Extent{{Off: cfg.ChunkBytes, Len: 1 << 10}})
		t0 := p.Now()
		miss := c.Get(p, 100, "f", ext.Extent{Off: 0, Len: 2 * cfg.ChunkBytes})
		if got := p.Now() - t0; got != cfg.OpCPU {
			t.Errorf("mixed batch charged %v, want one local op %v", got, cfg.OpCPU)
		}
		want := ext.Extent{Off: cfg.ChunkBytes, Len: cfg.ChunkBytes}
		if len(miss) != 1 || miss[0] != want {
			t.Errorf("miss = %v, want %v", miss, want)
		}
	})
	k.Run()
}

// TestMissRefreshesLastRef pins that a lookup touching a partially-valid
// chunk refreshes its lastRef even though it reports a miss: the chunk is
// still hot, so the idle sweeper must not reclaim it until a full EvictAfter
// has passed since the lookup.
func TestMissRefreshesLastRef(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	c := newCache(k, cfg)
	e := ext.Extent{Off: 0, Len: 4 << 10}
	k.Spawn("p", func(p *sim.Proc) {
		c.PutClean(p, 100, "f", []ext.Extent{e})
		p.Sleep(cfg.EvictAfter * 6 / 10)
		// Partial-chunk lookup: a miss, but it must touch lastRef.
		if miss := c.Get(p, 100, "f", ext.Extent{Off: 0, Len: cfg.ChunkBytes}); len(miss) == 0 {
			t.Fatalf("partial chunk reported as hit")
		}
		p.Sleep(cfg.EvictAfter * 6 / 10)
		// 1.2×EvictAfter after the put, but only 0.6× after the touch.
		if c.UsedBytes() != 4<<10 {
			t.Errorf("chunk evicted %v after a touching miss: used=%d", cfg.EvictAfter*6/10, c.UsedBytes())
		}
		p.Sleep(cfg.EvictAfter)
		if c.UsedBytes() != 0 {
			t.Errorf("chunk survived a full idle EvictAfter: used=%d", c.UsedBytes())
		}
	})
	k.Run()
}

func TestGetSpanningChunks(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	c := newCache(k, cfg)
	k.Spawn("p", func(p *sim.Proc) {
		// Cache only the first chunk; ask across two chunks.
		c.PutClean(p, 100, "f", []ext.Extent{{Off: 0, Len: cfg.ChunkBytes}})
		miss := c.Get(p, 100, "f", ext.Extent{Off: 0, Len: 2 * cfg.ChunkBytes})
		if total := ext.Total(miss); total != cfg.ChunkBytes {
			t.Errorf("miss total = %d, want one chunk", total)
		}
		if len(miss) != 1 || miss[0].Off != cfg.ChunkBytes {
			t.Errorf("miss = %v, want second chunk", miss)
		}
	})
	k.Run()
}

func TestRemoteGetCostsNetwork(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	c := newCache(k, cfg, 100, 101)
	var local, remote time.Duration
	k.Spawn("p", func(p *sim.Proc) {
		// Chunk 0 homes on node 100, chunk 1 on node 101.
		c.PutClean(p, 100, "f", []ext.Extent{{Off: 0, Len: cfg.ChunkBytes}})
		c.PutClean(p, 101, "f", []ext.Extent{{Off: cfg.ChunkBytes, Len: cfg.ChunkBytes}})
		t0 := p.Now()
		c.Get(p, 100, "f", ext.Extent{Off: 0, Len: cfg.ChunkBytes}) // local
		local = p.Now() - t0
		t0 = p.Now()
		c.Get(p, 100, "f", ext.Extent{Off: cfg.ChunkBytes, Len: cfg.ChunkBytes}) // remote
		remote = p.Now() - t0
	})
	k.Run()
	if remote <= local {
		t.Fatalf("remote get %v not slower than local %v", remote, local)
	}
}

func TestRoundRobinHomes(t *testing.T) {
	k := sim.NewKernel(1)
	c := newCache(k, DefaultConfig(), 100, 101, 102)
	if c.Home(0) != 100 || c.Home(1) != 101 || c.Home(2) != 102 || c.Home(3) != 100 {
		t.Fatalf("homes = %d %d %d %d", c.Home(0), c.Home(1), c.Home(2), c.Home(3))
	}
}

func TestDirtyLifecycle(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	c := newCache(k, cfg)
	k.Spawn("p", func(p *sim.Proc) {
		c.PutDirty(p, 100, "f", []ext.Extent{{Off: 0, Len: 4 << 10}, {Off: 4 << 10, Len: 4 << 10}})
		c.PutDirty(p, 100, "g", []ext.Extent{{Off: 0, Len: 1 << 10}})
	})
	k.Run()
	if got := c.DirtyBytes(); got != 9<<10 {
		t.Fatalf("dirty bytes = %d, want 9K", got)
	}
	files := c.DirtyFiles()
	if len(files) != 2 {
		t.Fatalf("dirty files = %v", files)
	}
	de := c.DirtyExtents("f")
	if len(de) != 1 || de[0] != (ext.Extent{Off: 0, Len: 8 << 10}) {
		t.Fatalf("dirty extents = %v, want merged 8K", de)
	}
	c.MarkClean("f")
	if got := c.DirtyBytes(); got != 1<<10 {
		t.Fatalf("dirty bytes after clean = %d, want 1K", got)
	}
}

func TestIdleEviction(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.EvictAfter = 2 * time.Second
	c := newCache(k, cfg)
	k.Spawn("p", func(p *sim.Proc) {
		c.PutClean(p, 100, "f", []ext.Extent{{Off: 0, Len: 64 << 10}})
	})
	k.RunUntil(10 * time.Second)
	if c.UsedBytes() != 0 {
		t.Fatalf("idle chunk not evicted: used = %d", c.UsedBytes())
	}
	if c.Evictions() == 0 {
		t.Fatalf("no evictions counted")
	}
}

func TestDirtyChunksSurviveEviction(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.EvictAfter = 2 * time.Second
	c := newCache(k, cfg)
	k.Spawn("p", func(p *sim.Proc) {
		c.PutDirty(p, 100, "f", []ext.Extent{{Off: 0, Len: 4 << 10}})
	})
	k.RunUntil(10 * time.Second)
	if c.DirtyBytes() != 4<<10 {
		t.Fatalf("dirty chunk evicted")
	}
}

func TestCapacityEvictsLRU(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.CapacityBytes = 128 << 10 // 2 chunks
	c := newCache(k, cfg)
	k.Spawn("p", func(p *sim.Proc) {
		c.PutClean(p, 100, "f", []ext.Extent{{Off: 0, Len: 64 << 10}})
		p.Sleep(time.Millisecond)
		c.PutClean(p, 100, "f", []ext.Extent{{Off: 64 << 10, Len: 64 << 10}})
		p.Sleep(time.Millisecond)
		c.Get(p, 100, "f", ext.Extent{Off: 0, Len: 64 << 10}) // refresh chunk 0
		p.Sleep(time.Millisecond)
		c.PutClean(p, 100, "f", []ext.Extent{{Off: 128 << 10, Len: 64 << 10}})
		// Chunk 1 (LRU) must be gone; chunk 0 must remain.
		if miss := c.Get(p, 100, "f", ext.Extent{Off: 0, Len: 64 << 10}); len(miss) != 0 {
			t.Errorf("recently used chunk evicted")
		}
		if miss := c.Get(p, 100, "f", ext.Extent{Off: 64 << 10, Len: 64 << 10}); len(miss) == 0 {
			t.Errorf("LRU chunk not evicted")
		}
	})
	k.Run()
	if c.UsedBytes() > cfg.CapacityBytes {
		t.Fatalf("used %d over capacity %d", c.UsedBytes(), cfg.CapacityBytes)
	}
}

func TestDropFile(t *testing.T) {
	k := sim.NewKernel(1)
	c := newCache(k, DefaultConfig())
	k.Spawn("p", func(p *sim.Proc) {
		c.PutClean(p, 100, "f", []ext.Extent{{Off: 0, Len: 64 << 10}})
		c.PutClean(p, 100, "g", []ext.Extent{{Off: 0, Len: 64 << 10}})
		c.DropFile("f")
		if miss := c.Get(p, 100, "f", ext.Extent{Off: 0, Len: 64 << 10}); len(miss) == 0 {
			t.Errorf("dropped file still cached")
		}
		if miss := c.Get(p, 100, "g", ext.Extent{Off: 0, Len: 64 << 10}); len(miss) != 0 {
			t.Errorf("unrelated file dropped")
		}
		if c.UsedBytes() != 64<<10 {
			t.Errorf("used = %d, want 64K", c.UsedBytes())
		}
	})
	k.Run()
}

func TestValidateConfig(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.ChunkBytes = 0 },
		func(c *Config) { c.EvictAfter = 0 },
		func(c *Config) { c.CapacityBytes = -1 },
		func(c *Config) { c.OpCPU = -1 },
	}
	for i, m := range bad {
		c := DefaultConfig()
		m(&c)
		if c.Validate() == nil {
			t.Fatalf("case %d passed", i)
		}
	}
}
