package memcache

import (
	"fmt"

	"dualpar/internal/ext"
)

// Quota is one tenant's partition of the cluster's global-cache capacity.
// Every cache a tenant's jobs create registers against the tenant's quota;
// the quota then bounds the *sum* of their resident bytes, and eviction
// under quota pressure is isolated to the tenant's own caches — one
// tenant's working set can never push another tenant's data out.
//
// Enforcement mirrors the per-cache capacity rule: while the partition is
// over its limit, the least recently referenced fully-clean chunk across
// the member caches is evicted (ties broken by chunk key, then member
// registration order — deterministic whatever the map iteration order). Dirty
// data is never dropped, so a partition whose every chunk holds dirty bytes
// may transiently exceed its limit until writeback drains it; Check treats
// exactly that state as legal and everything else over-limit as a
// violation.
//
// A nil *Quota (the default — Cache.SetQuota never called) takes none of
// these paths: untenanted runs are byte-identical to builds without the
// type.
type Quota struct {
	key    string
	limit  int64 // 0 = unbounded (registration/accounting only)
	used   int64
	caches []*Cache

	statEvictions int64
}

// NewQuota returns a partition named key (used in violation messages)
// holding at most limit valid bytes across its member caches; limit 0
// means unbounded.
func NewQuota(key string, limit int64) *Quota {
	if limit < 0 {
		panic(fmt.Sprintf("memcache: quota %s limit %d", key, limit))
	}
	return &Quota{key: key, limit: limit}
}

// Key returns the partition's name.
func (q *Quota) Key() string { return q.key }

// Limit returns the partition's byte limit (0 = unbounded).
func (q *Quota) Limit() int64 { return q.limit }

// Used returns the valid bytes resident across the member caches.
func (q *Quota) Used() int64 { return q.used }

// Evictions reports chunks evicted by quota pressure (distinct from the
// members' own idle and capacity evictions, which the members count).
func (q *Quota) Evictions() int64 { return q.statEvictions }

// SetQuota registers the cache as a member of the partition. Call once,
// before the cache holds data; a nil quota is a no-op (untenanted).
func (c *Cache) SetQuota(q *Quota) {
	if q == nil {
		return
	}
	if c.quota != nil {
		panic("memcache: cache already has a quota")
	}
	if c.used != 0 {
		panic("memcache: SetQuota on a non-empty cache")
	}
	c.quota = q
	q.caches = append(q.caches, c)
}

// adjustUsed moves the cache's used ledger by delta, mirroring the change
// into the cache's partition quota when one is attached.
func (c *Cache) adjustUsed(delta int64) {
	c.used += delta
	if c.quota != nil {
		c.quota.used += delta
	}
}

// enforce evicts the least recently referenced fully-clean chunk across
// the member caches while the partition is over its limit. Chunks holding
// any dirty bytes are skipped (writeback will drain them); when only those
// remain the partition legally exceeds its limit until it drains.
func (q *Quota) enforce() {
	if q == nil || q.limit == 0 {
		return
	}
	for q.used > q.limit {
		var victim *chunk
		var owner *Cache
		for _, c := range q.caches {
			for _, ch := range c.chunks {
				if len(ch.dirty) > 0 {
					continue
				}
				if victim == nil || ch.lastRef < victim.lastRef ||
					(ch.lastRef == victim.lastRef && lessKey(ch.key, victim.key)) {
					victim = ch
					owner = c
				}
			}
		}
		if victim == nil {
			return // everything dirty; writeback will drain
		}
		owner.adjustUsed(-ext.Total(victim.valid))
		owner.statEvictions++
		delete(owner.chunks, victim.key)
		q.statEvictions++
	}
}

// Check is the partition's audit probe: the quota ledger must equal the sum
// of the member caches' used bytes, and the partition may exceed its limit
// only while every resident chunk holds dirty bytes (the one state
// enforcement legally cannot clear).
func (q *Quota) Check() error {
	var used int64
	for _, c := range q.caches {
		used += c.used
	}
	if used != q.used {
		return fmt.Errorf("quota %s: ledger %d != %d bytes across %d member caches",
			q.key, q.used, used, len(q.caches))
	}
	if q.limit == 0 || q.used <= q.limit {
		return nil
	}
	for _, c := range q.caches {
		for _, ch := range c.chunks {
			if len(ch.dirty) == 0 {
				return fmt.Errorf("quota %s: %d used over limit %d with evictable clean chunk %s/%d",
					q.key, q.used, q.limit, ch.key.file, ch.key.idx)
			}
		}
	}
	return nil // over limit, but every chunk is pinned by dirty data
}
