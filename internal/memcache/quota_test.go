package memcache

import (
	"testing"

	"dualpar/internal/ext"
	"dualpar/internal/sim"
)

const chunkB = 64 << 10

// run executes fn in a fresh proc and drains the kernel.
func run(t *testing.T, k *sim.Kernel, fn func(p *sim.Proc)) {
	t.Helper()
	k.Spawn("p", fn)
	k.Run()
}

func TestQuotaAccountsAcrossMembers(t *testing.T) {
	k := sim.NewKernel(1)
	q := NewQuota("t0", 0) // unbounded: pure accounting
	a := newCache(k, DefaultConfig())
	b := newCache(k, DefaultConfig())
	a.SetQuota(q)
	b.SetQuota(q)
	run(t, k, func(p *sim.Proc) {
		a.PutClean(p, 100, "fa", []ext.Extent{{Off: 0, Len: chunkB}})
		b.PutClean(p, 100, "fb", []ext.Extent{{Off: 0, Len: 2 * chunkB}})
		if q.Used() != 3*chunkB {
			t.Errorf("quota used = %d, want %d", q.Used(), 3*chunkB)
		}
		b.DropFile("fb")
		if q.Used() != chunkB {
			t.Errorf("after drop, quota used = %d, want %d", q.Used(), chunkB)
		}
		if err := q.Check(); err != nil {
			t.Errorf("Check: %v", err)
		}
	})
}

func TestQuotaEvictsAcrossMembersLRU(t *testing.T) {
	k := sim.NewKernel(1)
	q := NewQuota("t0", 2*chunkB)
	a := newCache(k, DefaultConfig())
	b := newCache(k, DefaultConfig())
	a.SetQuota(q)
	b.SetQuota(q)
	run(t, k, func(p *sim.Proc) {
		a.PutClean(p, 100, "fa", []ext.Extent{{Off: 0, Len: chunkB}})
		p.Sleep(1)
		b.PutClean(p, 100, "fb", []ext.Extent{{Off: 0, Len: chunkB}})
		p.Sleep(1)
		// Third chunk pushes the partition over; the LRU victim is fa's
		// chunk, which lives in the *other* cache than the one inserting.
		b.PutClean(p, 100, "fb", []ext.Extent{{Off: chunkB, Len: chunkB}})
		if q.Used() != 2*chunkB {
			t.Errorf("quota used = %d, want %d", q.Used(), 2*chunkB)
		}
		if a.UsedBytes() != 0 {
			t.Errorf("expected fa evicted from member a, used = %d", a.UsedBytes())
		}
		if q.Evictions() != 1 {
			t.Errorf("quota evictions = %d, want 1", q.Evictions())
		}
		if err := q.Check(); err != nil {
			t.Errorf("Check: %v", err)
		}
	})
}

// TestQuotaIsolation pins eviction isolation: pressure in one tenant's
// partition never evicts another tenant's data, even on a shared node set.
func TestQuotaIsolation(t *testing.T) {
	k := sim.NewKernel(1)
	q0 := NewQuota("t0", chunkB)
	q1 := NewQuota("t1", 4*chunkB)
	a := newCache(k, DefaultConfig())
	b := newCache(k, DefaultConfig())
	a.SetQuota(q0)
	b.SetQuota(q1)
	run(t, k, func(p *sim.Proc) {
		b.PutClean(p, 100, "victim?", []ext.Extent{{Off: 0, Len: chunkB}})
		p.Sleep(1)
		// Tenant 0 blows through its own partition repeatedly.
		for i := int64(0); i < 4; i++ {
			a.PutClean(p, 100, "fa", []ext.Extent{{Off: i * chunkB, Len: chunkB}})
		}
		if q0.Used() != chunkB {
			t.Errorf("tenant 0 used = %d, want %d", q0.Used(), chunkB)
		}
		if q1.Used() != chunkB || b.UsedBytes() != chunkB {
			t.Errorf("tenant 1 lost data to tenant 0's pressure: quota=%d cache=%d",
				q1.Used(), b.UsedBytes())
		}
	})
}

// TestQuotaAllDirtyEscape pins the writeback escape hatch: dirty chunks are
// never evicted, so an all-dirty partition legally exceeds its limit and
// Check stays clean; once MarkClean runs, the next put enforces the limit.
func TestQuotaAllDirtyEscape(t *testing.T) {
	k := sim.NewKernel(1)
	q := NewQuota("t0", chunkB)
	a := newCache(k, DefaultConfig())
	a.SetQuota(q)
	run(t, k, func(p *sim.Proc) {
		a.PutDirty(p, 100, "fa", []ext.Extent{{Off: 0, Len: 2 * chunkB}})
		if q.Used() != 2*chunkB {
			t.Errorf("dirty data evicted: used = %d, want %d", q.Used(), 2*chunkB)
		}
		if err := q.Check(); err != nil {
			t.Errorf("all-dirty over-limit must be legal: %v", err)
		}
		a.MarkClean("fa")
		p.Sleep(1)
		a.PutClean(p, 100, "fb", []ext.Extent{{Off: 0, Len: chunkB}})
		if q.Used() != chunkB {
			t.Errorf("post-clean enforcement: used = %d, want %d", q.Used(), chunkB)
		}
		if err := q.Check(); err != nil {
			t.Errorf("Check: %v", err)
		}
	})
}

func TestQuotaCheckCatchesLedgerDrift(t *testing.T) {
	k := sim.NewKernel(1)
	q := NewQuota("t0", 0)
	a := newCache(k, DefaultConfig())
	a.SetQuota(q)
	run(t, k, func(p *sim.Proc) {
		a.PutClean(p, 100, "fa", []ext.Extent{{Off: 0, Len: chunkB}})
	})
	q.used += 7 // simulate a bookkeeping bug
	if err := q.Check(); err == nil {
		t.Fatal("Check missed a ledger/member mismatch")
	}
}

func TestSetQuotaMisuse(t *testing.T) {
	k := sim.NewKernel(1)
	a := newCache(k, DefaultConfig())
	a.SetQuota(nil) // no-op, must not panic
	q := NewQuota("t0", 0)
	a.SetQuota(q)
	defer func() {
		if recover() == nil {
			t.Fatal("double SetQuota did not panic")
		}
	}()
	a.SetQuota(NewQuota("t1", 0))
}
