// Package memcache models the distributed in-memory key-value cache DualPar
// builds its global I/O cache on (paper §IV-D): files are partitioned into
// fixed-size chunks (the PVFS2 stripe unit, 64 KB, so one chunk maps to one
// data server); each chunk is indexed by (file name, chunk address) and is
// homed on a compute node chosen round-robin; a chunk unreferenced for a
// configurable period is evicted.
//
// Like the rest of the stack, no data bytes are stored — the cache tracks
// which byte ranges of each chunk are valid and/or dirty, and charges
// network time for remote gets and puts.
package memcache

import (
	"fmt"
	"sort"
	"time"

	"dualpar/internal/check"
	"dualpar/internal/ext"
	"dualpar/internal/netsim"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// Config tunes the cache.
type Config struct {
	// ChunkBytes is the partition unit; DualPar sets it to the PVFS2
	// stripe unit so a chunk touches exactly one data server.
	ChunkBytes int64
	// EvictAfter is how long an unreferenced chunk survives.
	EvictAfter time.Duration
	// CapacityBytes bounds the total valid bytes; 0 means unbounded (the
	// CRM's per-process quotas are then the only limit).
	CapacityBytes int64
	// OpCPU is the per-operation processing cost at the home node.
	OpCPU time.Duration
}

// DefaultConfig matches the paper's prototype (64 KB chunks).
func DefaultConfig() Config {
	return Config{
		ChunkBytes: 64 << 10,
		EvictAfter: 30 * time.Second,
		OpCPU:      20 * time.Microsecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.ChunkBytes <= 0:
		return fmt.Errorf("memcache: ChunkBytes %d", c.ChunkBytes)
	case c.EvictAfter <= 0:
		return fmt.Errorf("memcache: EvictAfter %v", c.EvictAfter)
	case c.CapacityBytes < 0:
		return fmt.Errorf("memcache: CapacityBytes %d", c.CapacityBytes)
	case c.OpCPU < 0:
		return fmt.Errorf("memcache: OpCPU %v", c.OpCPU)
	}
	return nil
}

type chunkKey struct {
	file string
	idx  int64
}

type chunk struct {
	key     chunkKey
	valid   []ext.Extent // chunk-relative byte ranges present
	dirty   []ext.Extent // subset of valid awaiting writeback
	lastRef time.Duration
}

// Cache is the global cache spanning a program's compute nodes.
type Cache struct {
	k        *sim.Kernel
	net      *netsim.Network
	cfg      Config
	nodes    []int
	chunks   map[chunkKey]*chunk
	used     int64
	quota    *Quota // nil = untenanted (no partition accounting)
	sweeping bool   // an idle-eviction sweep is scheduled

	statGets, statHits int64
	statEvictions      int64

	obs   *obs.Collector
	audit check.Ledger // nil = audit off
}

// New creates a cache whose chunks are homed round-robin on nodes. An
// idle-eviction sweep runs while the cache is non-empty.
func New(k *sim.Kernel, net *netsim.Network, cfg Config, nodes []int) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(nodes) == 0 {
		panic("memcache: no nodes")
	}
	return &Cache{
		k:      k,
		net:    net,
		cfg:    cfg,
		nodes:  append([]int(nil), nodes...),
		chunks: make(map[chunkKey]*chunk),
	}
}

// armSweeper schedules the next idle-eviction sweep if one is not pending.
// The sweep chain stops when the cache empties, so a simulation with no
// other pending work terminates.
func (c *Cache) armSweeper() {
	if c.sweeping {
		return
	}
	evictable := false
	for _, ch := range c.chunks {
		if len(ch.dirty) == 0 {
			evictable = true
			break
		}
	}
	if !evictable {
		return
	}
	c.sweeping = true
	c.k.After(c.cfg.EvictAfter/2, func() {
		c.sweeping = false
		c.evictIdle()
		c.armSweeper()
	})
}

// SetObs attaches the observability collector: every Get then emits a
// cache.hit or cache.miss instant on the "cache" track.
func (c *Cache) SetObs(o *obs.Collector) { c.obs = o }

// SetAudit attaches the audit ledger: every Get then asserts its requested
// bytes split exactly into hit bytes plus missing bytes.
func (c *Cache) SetAudit(l check.Ledger) { c.audit = l }

// CheckUsed verifies the cache's used-bytes ledger against the chunk table:
// used must equal the sum of valid bytes over all chunks, and every dirty
// range must lie inside its chunk's valid set. It is registered as a
// per-cycle audit probe; the walk is pure bookkeeping (no simulation events).
func (c *Cache) CheckUsed() error {
	var total int64
	for key, ch := range c.chunks {
		total += ext.Total(ch.valid)
		for _, d := range ch.dirty {
			covered := false
			for _, v := range ch.valid {
				if cl, ok := v.Clip(d.Off, d.End()); ok && cl == d {
					covered = true
					break
				}
			}
			if !covered {
				return fmt.Errorf("chunk %s/%d: dirty %+v not covered by valid %v",
					key.file, key.idx, d, ch.valid)
			}
		}
	}
	if total != c.used {
		return fmt.Errorf("used ledger %d != %d valid bytes across %d chunks",
			c.used, total, len(c.chunks))
	}
	return nil
}

// Home returns the node that stores the given chunk.
func (c *Cache) Home(idx int64) int {
	return c.nodes[int(idx)%len(c.nodes)]
}

// UsedBytes reports the total valid bytes cached.
func (c *Cache) UsedBytes() int64 { return c.used }

// Gets and Hits report lookup counters (a hit is a fully satisfied Get).
func (c *Cache) Gets() int64 { return c.statGets }
func (c *Cache) Hits() int64 { return c.statHits }

// Evictions reports evicted chunk count.
func (c *Cache) Evictions() int64 { return c.statEvictions }

// visitChunks splits a file extent into (chunk index, chunk-relative
// extent) pieces, calling fn for each in order. The visitor form keeps the
// per-operation chunk walk allocation-free.
func (c *Cache) visitChunks(e ext.Extent, fn func(idx int64, rel ext.Extent)) {
	cb := c.cfg.ChunkBytes
	for e.Len > 0 {
		room := cb - e.Off%cb
		if room > e.Len {
			room = e.Len
		}
		fn(e.Off/cb, ext.Extent{Off: e.Off % cb, Len: room})
		e.Off += room
		e.Len -= room
	}
}

// Get checks whether [e] of file is fully cached. Lookups are batched the
// way a memcached multi-get is: one operation and (for remote homes) one
// network transfer per home node involved, carrying all that home's hit
// bytes. It returns the missing file-space extents; a fully-satisfied Get
// counts as a hit.
func (c *Cache) Get(p *sim.Proc, fromNode int, file string, extents ...ext.Extent) (miss []ext.Extent) {
	return c.GetTraced(p, fromNode, obs.Ctx{}, file, extents...)
}

// GetTraced is Get carrying the originating request's trace identity: a
// traced context additionally records a StageCache span on the "cache"
// track covering the lookup (home-node CPU plus wire time for remote hits).
func (c *Cache) GetTraced(p *sim.Proc, fromNode int, rc obs.Ctx, file string, extents ...ext.Extent) (miss []ext.Extent) {
	start := p.Now()
	c.statGets++
	now := p.Now()
	var auditMiss int64
	var perHome homeBytes // hit bytes by home node
	for _, e := range extents {
		c.visitChunks(e, func(idx int64, rel ext.Extent) {
			key := chunkKey{file, idx}
			ch := c.chunks[key]
			var hitB int64
			if ch != nil {
				ch.lastRef = now
				// Covered portion of rel.
				for _, v := range ch.valid {
					if cl, ok := v.Clip(rel.Off, rel.End()); ok {
						hitB += cl.Len
					}
				}
			}
			base := idx * c.cfg.ChunkBytes
			if ch == nil || hitB < rel.Len {
				// Report the whole piece as missing (partial chunk hits are
				// refetched with the miss, as DualPar's CRM refills chunks
				// wholesale).
				miss = append(miss, ext.Extent{Off: base + rel.Off, Len: rel.Len})
				auditMiss += rel.Len
				return
			}
			perHome = perHome.add(c.Home(idx), hitB)
		})
	}
	if c.audit != nil {
		var hit int64
		for _, h := range perHome {
			hit += h.bytes
		}
		c.audit.Checkf(hit+auditMiss == ext.Total(extents), "memcache.get.conserve",
			"Get(%s): %d hit + %d miss != %d requested bytes",
			file, hit, auditMiss, ext.Total(extents))
	}
	c.chargeTransfers(p, fromNode, perHome, false)
	miss = ext.Merge(miss)
	if len(miss) == 0 {
		c.statHits++
		if c.obs.Enabled() {
			c.obs.Instant("cache.hit", "cache", p.Now(),
				obs.Str("file", file), obs.I64("bytes", ext.Total(extents)))
		}
	} else if c.obs.Enabled() {
		c.obs.Instant("cache.miss", "cache", p.Now(),
			obs.Str("file", file), obs.I64("missing", ext.Total(miss)))
	}
	if rc.Traced() {
		result := "hit"
		if len(miss) > 0 {
			result = "miss"
		}
		c.obs.Span(rc.ID, obs.StageCache, "cache", start, p.Now(),
			obs.Str("op", "get"), obs.Str("result", result),
			obs.I64("bytes", ext.Total(extents)), obs.I64("missing", ext.Total(miss)))
	}
	return miss
}

// homeBytes accumulates per-home-node byte counts for one batched
// operation. The fan-out of a single Get/put is a handful of nodes, so a
// slice kept sorted by insertion beats a map plus a key sort on the hot
// path — and node order stays deterministic for free. It must be local to
// one call: Procs yield inside chargeTransfers, so a shared scratch buffer
// would be clobbered by a concurrent simulated operation.
type homeBytes []homeAcc

type homeAcc struct {
	node  int
	bytes int64
}

// add accumulates b bytes against node, keeping the slice sorted by node.
func (hb homeBytes) add(node int, b int64) homeBytes {
	i := len(hb)
	for i > 0 && hb[i-1].node >= node {
		if hb[i-1].node == node {
			hb[i-1].bytes += b
			return hb
		}
		i--
	}
	hb = append(hb, homeAcc{})
	copy(hb[i+1:], hb[i:])
	hb[i] = homeAcc{node: node, bytes: b}
	return hb
}

// chargeTransfers pays one memcached operation per involved home node and
// one wire transfer per remote home, in node order (deterministic).
func (c *Cache) chargeTransfers(p *sim.Proc, fromNode int, perHome homeBytes, toHome bool) {
	for _, h := range perHome {
		p.Sleep(c.cfg.OpCPU)
		if h.node == fromNode {
			continue
		}
		if toHome {
			c.net.Send(p, fromNode, h.node, h.bytes+64)
		} else {
			c.net.Send(p, h.node, fromNode, h.bytes+64)
		}
	}
}

// PutClean marks file extents valid (prefetched data arriving at its home
// nodes). The caller is the CRM proc running on homeNode; extents homed
// elsewhere cost a network transfer.
func (c *Cache) PutClean(p *sim.Proc, fromNode int, file string, extents []ext.Extent) {
	c.put(p, fromNode, obs.Ctx{}, file, extents, false)
}

// PutCleanTraced is PutClean carrying the originating request's trace
// identity; a traced context records a StageCache span for the insertion.
func (c *Cache) PutCleanTraced(p *sim.Proc, fromNode int, rc obs.Ctx, file string, extents []ext.Extent) {
	c.put(p, fromNode, rc, file, extents, false)
}

// PutDirty buffers written extents in the cache (data-driven writes) until
// writeback drains them.
func (c *Cache) PutDirty(p *sim.Proc, fromNode int, file string, extents []ext.Extent) {
	c.put(p, fromNode, obs.Ctx{}, file, extents, true)
}

// PutDirtyTraced is PutDirty carrying the originating request's trace
// identity; a traced context records a StageCache span for the insertion.
func (c *Cache) PutDirtyTraced(p *sim.Proc, fromNode int, rc obs.Ctx, file string, extents []ext.Extent) {
	c.put(p, fromNode, rc, file, extents, true)
}

func (c *Cache) put(p *sim.Proc, fromNode int, rc obs.Ctx, file string, extents []ext.Extent, dirty bool) {
	start := p.Now()
	now := p.Now()
	var perHome homeBytes // bytes shipped to each home node
	for _, e := range extents {
		c.visitChunks(e, func(idx int64, rel ext.Extent) {
			key := chunkKey{file, idx}
			ch := c.chunks[key]
			if ch == nil {
				ch = &chunk{key: key}
				c.chunks[key] = ch
			}
			before := ext.Total(ch.valid)
			ch.valid = ext.Insert(ch.valid, rel)
			c.adjustUsed(ext.Total(ch.valid) - before)
			if dirty {
				ch.dirty = ext.Insert(ch.dirty, rel)
			}
			ch.lastRef = now
			perHome = perHome.add(c.Home(idx), rel.Len)
		})
	}
	c.chargeTransfers(p, fromNode, perHome, true)
	if rc.Traced() {
		op := "put-clean"
		if dirty {
			op = "put-dirty"
		}
		c.obs.Span(rc.ID, obs.StageCache, "cache", start, p.Now(),
			obs.Str("op", op), obs.I64("bytes", ext.Total(extents)))
	}
	c.enforceCapacity()
	c.quota.enforce()
	c.armSweeper()
}

// DirtyExtents returns the merged dirty file-space extents of a file.
func (c *Cache) DirtyExtents(file string) []ext.Extent {
	var out []ext.Extent
	for key, ch := range c.chunks {
		if key.file != file {
			continue
		}
		base := key.idx * c.cfg.ChunkBytes
		for _, d := range ch.dirty {
			out = append(out, ext.Extent{Off: base + d.Off, Len: d.Len})
		}
	}
	return ext.Merge(out)
}

// DirtyFiles lists files with dirty data, sorted for determinism.
func (c *Cache) DirtyFiles() []string {
	seen := make(map[string]bool)
	var out []string
	for key, ch := range c.chunks {
		if len(ch.dirty) > 0 && !seen[key.file] {
			seen[key.file] = true
			out = append(out, key.file)
		}
	}
	sort.Strings(out)
	return out
}

// MarkClean clears dirty state after writeback (the data stays valid).
func (c *Cache) MarkClean(file string) {
	for key, ch := range c.chunks {
		if key.file == file {
			ch.dirty = nil
		}
	}
	// The chunks just became evictable. If every chunk was dirty when the
	// last put ran, no sweep is pending — without re-arming here the cleaned
	// chunks would sit in the cache forever.
	c.armSweeper()
}

// DirtyBytes reports total dirty bytes across files.
func (c *Cache) DirtyBytes() int64 {
	var t int64
	for _, ch := range c.chunks {
		t += ext.Total(ch.dirty)
	}
	return t
}

// DropFile removes all chunks of a file (used when a program exits the
// data-driven mode and its cache is reclaimed).
func (c *Cache) DropFile(file string) {
	for key, ch := range c.chunks {
		if key.file == file {
			c.adjustUsed(-ext.Total(ch.valid))
			delete(c.chunks, key)
		}
	}
}

// evictIdle removes clean chunks unreferenced for EvictAfter.
func (c *Cache) evictIdle() {
	cutoff := c.k.Now() - c.cfg.EvictAfter
	for key, ch := range c.chunks {
		if len(ch.dirty) == 0 && ch.lastRef < cutoff {
			c.adjustUsed(-ext.Total(ch.valid))
			delete(c.chunks, key)
			c.statEvictions++
		}
	}
}

// enforceCapacity evicts the least recently referenced clean chunks while
// over capacity.
func (c *Cache) enforceCapacity() {
	if c.cfg.CapacityBytes == 0 {
		return
	}
	for c.used > c.cfg.CapacityBytes {
		var victim *chunk
		for _, ch := range c.chunks {
			if len(ch.dirty) > 0 {
				continue
			}
			if victim == nil || ch.lastRef < victim.lastRef ||
				(ch.lastRef == victim.lastRef && lessKey(ch.key, victim.key)) {
				victim = ch
			}
		}
		if victim == nil {
			return // everything dirty; CRM writeback will drain
		}
		c.adjustUsed(-ext.Total(victim.valid))
		delete(c.chunks, victim.key)
		c.statEvictions++
	}
}

// lessKey gives a deterministic tiebreak for equal reference times.
func lessKey(a, b chunkKey) bool {
	if a.file != b.file {
		return a.file < b.file
	}
	return a.idx < b.idx
}
