package memcache

import (
	"os"
	"strings"
	"testing"

	"dualpar/internal/check"
	"dualpar/internal/ext"
	"dualpar/internal/sim"
)

// TestCheckUsedCatchesCorruptLedger corrupts the cache's used-bytes counter
// directly (white-box) and verifies the registered audit probe fires with a
// keyed violation and a reproducer artifact — the end-to-end path a real
// accounting bug would take.
func TestCheckUsedCatchesCorruptLedger(t *testing.T) {
	k := sim.NewKernel(1)
	c := newCache(k, DefaultConfig())
	a := check.New(1, "memcache white-box")
	a.SetArtifactDir(t.TempDir())
	a.SetClock(k.Now)
	c.SetAudit(a)
	a.RegisterProbe("memcache.used.prog0", c.CheckUsed)

	k.Spawn("p", func(p *sim.Proc) {
		c.PutClean(p, 100, "f", []ext.Extent{{Off: 0, Len: 64 << 10}})
	})
	k.Run()

	a.RunProbes()
	if err := a.Err(); err != nil {
		t.Fatalf("probe fired on a healthy cache: %v", err)
	}

	c.used += 17 // the deliberate accounting bug
	a.RunProbes()
	err := a.Err()
	if err == nil {
		t.Fatalf("corrupted used ledger not caught")
	}
	if !strings.Contains(err.Error(), "memcache.used.prog0") {
		t.Fatalf("violation not keyed to the probe: %v", err)
	}
	art := a.Violations()[0].Artifact
	if art == "" {
		t.Fatalf("no reproducer artifact written")
	}
	buf, rerr := os.ReadFile(art)
	if rerr != nil {
		t.Fatalf("reading artifact: %v", rerr)
	}
	if !strings.Contains(string(buf), "memcache.used.prog0") {
		t.Fatalf("artifact does not record the violation: %s", buf)
	}
}

// TestGetConservationOracle verifies the inline Get check accepts the
// hit/miss split on mixed batches (the oracle holding, not firing).
func TestGetConservationOracle(t *testing.T) {
	k := sim.NewKernel(1)
	c := newCache(k, DefaultConfig())
	a := check.New(1, "memcache get")
	a.SetArtifactDir(t.TempDir())
	c.SetAudit(a)
	k.Spawn("p", func(p *sim.Proc) {
		c.PutClean(p, 100, "f", []ext.Extent{{Off: 0, Len: 64 << 10}})
		c.Get(p, 100, "f", ext.Extent{Off: 0, Len: 128 << 10})    // half hit
		c.Get(p, 100, "f", ext.Extent{Off: 256 << 10, Len: 4096}) // full miss
		c.Get(p, 100, "f", ext.Extent{Off: 0, Len: 64 << 10})     // full hit
	})
	k.Run()
	if err := a.Err(); err != nil {
		t.Fatalf("conservation oracle fired on correct splits: %v", err)
	}
}
