package fault_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/fault"
	"dualpar/internal/obs"
	"dualpar/internal/pfs"
	"dualpar/internal/workloads"
)

// crashProg is a write-heavy workload sized to straddle the crash windows
// below: checkpoints land both before the crash and after the recovery.
func crashProg() workloads.Checkpoint {
	c := workloads.DefaultCheckpoint()
	c.Procs = 8
	c.Compute = 100 * time.Millisecond
	c.Checkpoints = 10
	return c
}

// runCrash executes the workload on a 3-server cluster with the given
// replica count and crash schedule, integrity tracking on and both retry
// watchdogs armed.
func runCrash(t *testing.T, sch *fault.Schedule, replicas int, mode core.Mode) (*obs.Collector, *cluster.Cluster, *core.ProgramRun) {
	t.Helper()
	col := obs.NewCollector()
	ccfg := cluster.DefaultConfig()
	ccfg.DataServers = 3
	d := ccfg.Disk
	d.Sectors = 1 << 25
	ccfg.Disk = d
	ccfg.Seed = 1
	ccfg.Obs = col
	ccfg.Faults = sch
	ccfg.PFS.Replicas = replicas
	ccfg.PFS.DetectDelay = 50 * time.Millisecond
	ccfg.PFS.RequestTimeout = 100 * time.Millisecond
	ccfg.PFS.MaxRetries = 4
	ccfg.PFS.RetryBackoff = 10 * time.Millisecond
	cl := cluster.New(ccfg)
	cl.FS.EnableIntegrity()
	dcfg := core.DefaultConfig()
	dcfg.CRMTimeout = 2 * time.Second
	dcfg.CRMMaxRetries = 3
	dcfg.CRMBackoff = 20 * time.Millisecond
	r := core.NewRunner(cl, dcfg)
	pr := r.Add(crashProg(), mode, core.AddOptions{RanksPerNode: 4})
	if !r.Run(time.Hour) {
		t.Fatal("run did not finish: crash handling hung the simulation")
	}
	return col, cl, pr
}

// recoveringCrash kills server 1 mid-run and brings it back before the
// workload ends.
func recoveringCrash() *fault.Schedule {
	return &fault.Schedule{Windows: []fault.Window{
		{Kind: fault.ServerCrash, Target: 1, Start: 300 * time.Millisecond, End: 800 * time.Millisecond},
	}}
}

// TestCrashReplicatedCompletesAndRebuilds: with two replicas, a mid-run
// crash-stop must not cost completion or data — the view transition shows
// up in the trace, writes complete at quorum, the recovered server
// rebuilds what it missed, and every acknowledged byte survives.
func TestCrashReplicatedCompletesAndRebuilds(t *testing.T) {
	col, cl, pr := runCrash(t, recoveringCrash(), 2, core.ModeVanilla)
	if err := pr.Err(); err != nil {
		t.Fatalf("replicated run surfaced an I/O error: %v", err)
	}
	names := map[string]int{}
	for _, in := range col.Instants() {
		names[in.Name]++
	}
	if names["pfs.view"] < 2 {
		t.Errorf("pfs.view instants = %d, want >= 2 (down + up)", names["pfs.view"])
	}
	if names["rebuild.begin"] == 0 || names["rebuild.end"] == 0 {
		t.Errorf("rebuild instants begin=%d end=%d: recovered server never rebuilt",
			names["rebuild.begin"], names["rebuild.end"])
	}
	if names["rebuild.lost"] != 0 {
		t.Errorf("rebuild.lost = %d: a two-replica rebuild found no source", names["rebuild.lost"])
	}
	for i := 0; i < 3; i++ {
		if cl.FS.Rebuilding(i) {
			t.Errorf("server %d still rebuilding after the run drained", i)
		}
	}
	// Every byte the tracker saw acknowledged must be present on the
	// recovered server too (the rebuild's whole point). Verified end to end
	// by the harness oracle; here assert the trace told the story.
}

// TestCrashUnreplicatedReportsDataLoss: the same crash without replication
// must be detected and reported as data loss through the typed error — not
// silently absorbed, and not a hang.
func TestCrashUnreplicatedReportsDataLoss(t *testing.T) {
	_, _, pr := runCrash(t, &fault.Schedule{Windows: []fault.Window{
		{Kind: fault.ServerCrash, Target: 1, Start: 300 * time.Millisecond},
	}}, 1, core.ModeVanilla)
	err := pr.Err()
	if err == nil {
		t.Fatal("unreplicated run with a permanent crash reported no error")
	}
	if !errors.Is(err, pfs.ErrRetriesExhausted) {
		t.Fatalf("error %v does not wrap pfs.ErrRetriesExhausted", err)
	}
	var re *pfs.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("error %v carries no *pfs.RetryError", err)
	}
	if re.Server != 1 {
		t.Fatalf("RetryError names server %d, want 1", re.Server)
	}
}

// TestCrashCRMSurfacesError: when the failed I/O happens inside a CRM
// writeback (data-driven mode), the typed error must surface through the
// program run instead of stalling the collective phase.
func TestCrashCRMSurfacesError(t *testing.T) {
	_, _, pr := runCrash(t, &fault.Schedule{Windows: []fault.Window{
		{Kind: fault.ServerCrash, Target: 1, Start: 200 * time.Millisecond},
	}}, 1, core.ModeDataDriven)
	if err := pr.Err(); !errors.Is(err, pfs.ErrRetriesExhausted) {
		t.Fatalf("CRM path error = %v, want wrap of pfs.ErrRetriesExhausted", err)
	}
}

// TestReplicasOneEmptyScheduleByteIdentical: Replicas=1 explicitly set,
// plus an empty fault schedule, must stay byte-identical to the seed
// configuration (no fault layer, no Replicas field) — the replication
// machinery is provably inert when off.
func TestReplicasOneEmptyScheduleByteIdentical(t *testing.T) {
	trace := func(replicas int, sch *fault.Schedule) []byte {
		col := obs.NewCollector()
		ccfg := cluster.DefaultConfig()
		ccfg.DataServers = 3
		d := ccfg.Disk
		d.Sectors = 1 << 25
		ccfg.Disk = d
		ccfg.Seed = 1
		ccfg.Obs = col
		ccfg.Faults = sch
		ccfg.PFS.Replicas = replicas
		cl := cluster.New(ccfg)
		r := core.NewRunner(cl, core.DefaultConfig())
		r.Add(crashProg(), core.ModeVanilla, core.AddOptions{RanksPerNode: 4})
		if !r.Run(time.Hour) {
			t.Fatal("run did not finish")
		}
		var buf bytes.Buffer
		if err := col.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seedRun := trace(0, nil)
	replicasOne := trace(1, &fault.Schedule{})
	if !bytes.Equal(seedRun, replicasOne) {
		t.Fatal("Replicas=1 + empty schedule perturbed the trace relative to the seed configuration")
	}
}
