package fault

import (
	"math"
	"strings"
	"testing"
)

// FuzzParse asserts Parse's contract on arbitrary input: it never panics,
// and any schedule it accepts validates cleanly (so NewInjector cannot
// panic on a parsed schedule) with only finite numeric fields.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"  ",
		"disk:1*10",
		"disk:1*10@5s-30s; stall:2@1s-2s, drop:102:0.2@0s-10s;link:3*4",
		"slow:4*2.5@100ms",
		"crash:2@5s",
		"crash:2@5s-20s",
		"crash:client3@500ms",
		"crash:client3@1s-2s",
		"crash:client@1s",
		"crash:clientX@1s",
		"drop:5:0.95",
		"disk:1*",
		"disk:1*2@5s@30s",
		"drop:5:-0.2",
		"disk:1*NaN",
		"drop:5:+Inf",
		"disk:1*2@1s--2s",
		"stall:2*3@1s-2s",
		"crash:2:0.5@1s",
		"melt:1*2",
		"disk:-1*2",
		"disk:1*1e309",
		";;;,,,",
		"disk:1*10@",
		"@5s",
		"crash:9999999999999999999@1s",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		sch, err := Parse(spec)
		if err != nil {
			if sch != nil {
				t.Fatalf("Parse(%q) returned both a schedule and error %v", spec, err)
			}
			return
		}
		if err := sch.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted a schedule that fails Validate: %v", spec, err)
		}
		for _, w := range sch.Windows {
			for name, v := range map[string]float64{"factor": w.Factor, "prob": w.Prob} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("Parse(%q) let a non-finite %s through: %+v", spec, name, w)
				}
			}
			if w.End > 0 && w.End <= w.Start {
				t.Fatalf("Parse(%q) accepted inverted window %+v", spec, w)
			}
		}
		if !sch.Empty() && strings.TrimSpace(spec) == "" {
			t.Fatalf("blank spec %q parsed to windows %+v", spec, sch.Windows)
		}
	})
}
