package fault

import (
	"time"

	"dualpar/internal/disk"
	"dualpar/internal/sim"
)

// Device wraps a disk.Device and inflates its service time during active
// DiskSlow windows: the wrapped access is charged normally, then the
// degradation surcharge (factor-1 times the healthy service time) is slept
// on top. Stats and traces delegate to the wrapped device, so locality
// daemons observe the real access pattern — only time degrades.
type Device struct {
	inner     disk.Device
	inj       *Injector
	server    int
	lastExtra time.Duration // degradation surcharge of the latest access
}

// WrapDevice wraps dev for the given data-server index. With a nil
// injector the wrapper is a transparent pass-through.
func WrapDevice(dev disk.Device, inj *Injector, server int) *Device {
	return &Device{inner: dev, inj: inj, server: server}
}

// Access implements disk.Device.
func (d *Device) Access(p *sim.Proc, lbn, sectors int64, write bool) time.Duration {
	t := d.inner.Access(p, lbn, sectors, write)
	d.lastExtra = 0
	if f := d.inj.DiskFactor(d.server, p.Now()); f > 1 {
		extra := time.Duration(float64(t) * (f - 1))
		p.Sleep(extra)
		t += extra
		d.lastExtra = extra
	}
	return t
}

// LastBreakdown implements disk.BreakdownReporter: the wrapped device's
// breakdown with the degradation surcharge folded into Overhead, so the
// components still sum to the time the dispatcher observed.
func (d *Device) LastBreakdown() disk.Breakdown {
	br, ok := d.inner.(disk.BreakdownReporter)
	if !ok {
		return disk.Breakdown{}
	}
	bd := br.LastBreakdown()
	bd.Overhead += d.lastExtra
	return bd
}

// Sectors implements disk.Device.
func (d *Device) Sectors() int64 { return d.inner.Sectors() }

// Stats implements disk.Device.
func (d *Device) Stats() disk.Stats { return d.inner.Stats() }

// Trace implements disk.Device.
func (d *Device) Trace() *disk.Trace { return d.inner.Trace() }

// Inner returns the wrapped device.
func (d *Device) Inner() disk.Device { return d.inner }
