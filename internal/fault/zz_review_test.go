package fault_test

import (
	"testing"
	"time"

	"dualpar/internal/core"
	"dualpar/internal/fault"
	"dualpar/internal/harness"
)

// Review probe: replicas=3 (quorum 2 < replicas), crash that recovers.
// A write acked at quorum before the detector marks the crashed replica
// down should still be rebuilt after recovery.
func TestReviewQuorumGapR3(t *testing.T) {
	sch := &fault.Schedule{Windows: []fault.Window{
		{Kind: fault.ServerCrash, Target: 1, Start: 300 * time.Millisecond, End: 800 * time.Millisecond},
	}}
	_, cl, pr := runCrash(t, sch, 3, core.ModeVanilla)
	if err := pr.Err(); err != nil {
		t.Fatalf("replicated run surfaced an I/O error: %v", err)
	}
	if err := harness.VerifyIntegrity(cl); err != nil {
		t.Fatalf("integrity oracle failed: %v", err)
	}
}
