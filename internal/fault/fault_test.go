package fault

import (
	"strings"
	"testing"
	"time"

	"dualpar/internal/sim"
)

func TestParse(t *testing.T) {
	sch, err := Parse("disk:1*10@5s-30s; stall:2@1s-2s, drop:102:0.2@0s-10s;link:3*4")
	if err != nil {
		t.Fatal(err)
	}
	want := []Window{
		{Kind: DiskSlow, Target: 1, Factor: 10, Start: 5 * time.Second, End: 30 * time.Second},
		{Kind: ServerStall, Target: 2, Factor: 1, Start: time.Second, End: 2 * time.Second},
		{Kind: LinkDrop, Target: 102, Factor: 1, Prob: 0.2, End: 10 * time.Second},
		{Kind: LinkSlow, Target: 3, Factor: 4},
	}
	checkParse(t, sch, want)
}

func TestParseCrash(t *testing.T) {
	sch, err := Parse("crash:2@5s; crash:4@1s-20s")
	if err != nil {
		t.Fatal(err)
	}
	want := []Window{
		{Kind: ServerCrash, Target: 2, Factor: 1, Start: 5 * time.Second},
		{Kind: ServerCrash, Target: 4, Factor: 1, Start: time.Second, End: 20 * time.Second},
	}
	checkParse(t, sch, want)
}

func TestParseClientCrash(t *testing.T) {
	sch, err := Parse("crash:client3@500ms; crash:client0@2s")
	if err != nil {
		t.Fatal(err)
	}
	want := []Window{
		{Kind: ClientCrash, Target: 3, Factor: 1, Start: 500 * time.Millisecond},
		{Kind: ClientCrash, Target: 0, Factor: 1, Start: 2 * time.Second},
	}
	checkParse(t, sch, want)
}

func checkParse(t *testing.T, sch *Schedule, want []Window) {
	t.Helper()
	if len(sch.Windows) != len(want) {
		t.Fatalf("parsed %d windows, want %d", len(sch.Windows), len(want))
	}
	for i, w := range want {
		if sch.Windows[i] != w {
			t.Errorf("window %d = %+v, want %+v", i, sch.Windows[i], w)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	sch, err := Parse("  ")
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Empty() {
		t.Fatalf("blank spec parsed to %+v", sch)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"melt:1*2",             // unknown kind
		"disk:1*0.5",           // factor < 1
		"drop:5",               // drop without probability
		"drop:5:1.5",           // probability out of range
		"stall:2",              // stall without an end
		"disk:1*10@30s-5s",     // end before start
		"disk:x*2",             // bad target
		"disk:1*2@later-5s",    // bad duration
		"slow:1:0.5",           // stray field on a non-drop kind
		"disk:1*",              // empty factor
		"disk:1*2@5s@30s",      // duplicate '@'
		"drop:5:-0.2",          // negative probability
		"disk:1*NaN",           // non-finite factor
		"disk:1*+Inf",          // non-finite factor
		"drop:5:NaN",           // non-finite probability
		"disk:1*2@1s--2s",      // negative end
		"stall:2*3@1s-2s",      // factor on a kind that takes none
		"crash:2*3@1s",         // factor on a kind that takes none
		"crash:2:0.5@1s",       // stray field on crash
		"crash:client3@1s-2s",  // client crash takes no recovery window
		"crash:client@1s",      // client crash without a rank
		"crash:clientX@1s",     // bad client rank
		"crash:client-1@1s",    // negative client rank
		"crash:client3*2@1s",   // factor on a kind that takes none
		"crash:client3:0.5@1s", // stray field on client crash
	} {
		_, err := Parse(spec)
		if err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", spec)
			continue
		}
		// Every rejection names the offending entry.
		if !strings.Contains(err.Error(), strings.SplitN(spec, ";", 2)[0]) {
			t.Errorf("Parse(%q) error %q does not name the entry", spec, err)
		}
	}
}

func TestParseErrorNamesOffendingEntry(t *testing.T) {
	_, err := Parse("disk:1*10@5s-30s; drop:5:-0.2")
	if err == nil {
		t.Fatal("negative probability accepted")
	}
	if !strings.Contains(err.Error(), "drop:5:-0.2") {
		t.Fatalf("error %q does not name the bad entry", err)
	}
}

func TestCrashedQueries(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k, &Schedule{Windows: []Window{
		{Kind: ServerCrash, Target: 1, Start: 5 * time.Second, End: 10 * time.Second},
		{Kind: ServerCrash, Target: 2, Start: 3 * time.Second}, // permanent
	}}, 7, nil)
	if inj.Crashed(1, 4*time.Second) {
		t.Error("server 1 crashed before its window")
	}
	if !inj.Crashed(1, 7*time.Second) {
		t.Error("server 1 alive inside its crash window")
	}
	if inj.Crashed(1, 10*time.Second) {
		t.Error("server 1 still crashed after recovery")
	}
	if !inj.Crashed(2, time.Hour) {
		t.Error("permanent crash recovered")
	}
	if inj.Crashed(0, 7*time.Second) {
		t.Error("healthy server reported crashed")
	}
	// Overlap semantics: service intervals straddling the crash are lost.
	for _, tc := range []struct {
		from, to time.Duration
		want     bool
	}{
		{0, 4 * time.Second, false},                 // entirely before
		{11 * time.Second, 12 * time.Second, false}, // entirely after
		{4 * time.Second, 6 * time.Second, true},    // straddles the start
		{9 * time.Second, 11 * time.Second, true},   // straddles the end
		{0, time.Hour, true},                        // spans the window
	} {
		if got := inj.CrashedDuring(1, tc.from, tc.to); got != tc.want {
			t.Errorf("CrashedDuring(1, %v, %v) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
	if !inj.HasCrashWindows() {
		t.Error("HasCrashWindows false with crash windows present")
	}
	healthy := NewInjector(sim.NewKernel(1), &Schedule{Windows: []Window{
		{Kind: DiskSlow, Target: 1, Factor: 2},
	}}, 7, nil)
	if healthy.HasCrashWindows() {
		t.Error("HasCrashWindows true without crash windows")
	}
}

func TestServerStateNotifications(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k, &Schedule{Windows: []Window{
		{Kind: ServerCrash, Target: 1, Start: 5 * time.Second, End: 10 * time.Second},
		{Kind: ServerCrash, Target: 2, Start: 3 * time.Second},
	}}, 7, nil)
	type ev struct {
		server int
		up     bool
		at     time.Duration
	}
	var got []ev
	inj.OnServerState(func(server int, up bool, at time.Duration) {
		got = append(got, ev{server, up, at})
	})
	k.RunUntil(time.Hour)
	want := []ev{
		{2, false, 3 * time.Second},
		{1, false, 5 * time.Second},
		{1, true, 10 * time.Second},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d transitions %+v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestClientCrashNotifications(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k, &Schedule{Windows: []Window{
		{Kind: ClientCrash, Target: 3, Start: 5 * time.Second},
		{Kind: ClientCrash, Target: 1, Start: 2 * time.Second},
	}}, 7, nil)
	if !inj.HasClientCrashWindows() {
		t.Error("HasClientCrashWindows false with client-crash windows present")
	}
	if inj.HasCrashWindows() {
		t.Error("client crashes must not count as server crash windows")
	}
	type ev struct {
		rank int
		at   time.Duration
	}
	var got []ev
	inj.OnClientState(func(rank int, at time.Duration) {
		got = append(got, ev{rank, at})
	})
	var serverTransitions int
	inj.OnServerState(func(int, bool, time.Duration) { serverTransitions++ })
	k.RunUntil(time.Hour)
	want := []ev{{1, 2 * time.Second}, {3, 5 * time.Second}}
	if len(got) != len(want) {
		t.Fatalf("got %d transitions %+v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if serverTransitions != 0 {
		t.Errorf("client crashes fired %d server transitions", serverTransitions)
	}
	server := NewInjector(sim.NewKernel(1), &Schedule{Windows: []Window{
		{Kind: ServerCrash, Target: 1, Start: time.Second},
	}}, 7, nil)
	if server.HasClientCrashWindows() {
		t.Error("HasClientCrashWindows true with only server crashes")
	}
	var nilInj *Injector
	if nilInj.HasClientCrashWindows() {
		t.Error("nil injector has client-crash windows")
	}
	nilInj.OnClientState(func(int, time.Duration) {}) // must not panic
}

func TestRecoveryNotSignaledWhileStillCrashed(t *testing.T) {
	// Two overlapping crash windows: the first ends while the second still
	// covers the server, so no recovery fires until the second ends.
	k := sim.NewKernel(1)
	inj := NewInjector(k, &Schedule{Windows: []Window{
		{Kind: ServerCrash, Target: 1, Start: 2 * time.Second, End: 6 * time.Second},
		{Kind: ServerCrash, Target: 1, Start: 4 * time.Second, End: 9 * time.Second},
	}}, 7, nil)
	var ups []time.Duration
	inj.OnServerState(func(server int, up bool, at time.Duration) {
		if up {
			ups = append(ups, at)
		}
	})
	k.RunUntil(time.Hour)
	if len(ups) != 1 || ups[0] != 9*time.Second {
		t.Fatalf("recovery transitions %v, want exactly [9s]", ups)
	}
}

func TestNodeCrashed(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k, &Schedule{Windows: []Window{
		{Kind: ServerCrash, Target: 1, Start: 5 * time.Second},
	}}, 7, nil)
	inj.BindServerNodes([]int{10, 11, 12})
	if inj.NodeCrashed(11, 4*time.Second) {
		t.Error("node crashed before the window")
	}
	if !inj.NodeCrashed(11, 6*time.Second) {
		t.Error("node of crashed server not reported")
	}
	if inj.NodeCrashed(10, 6*time.Second) || inj.NodeCrashed(99, 6*time.Second) {
		t.Error("unrelated node reported crashed")
	}
	unbound := NewInjector(sim.NewKernel(1), &Schedule{Windows: []Window{
		{Kind: ServerCrash, Target: 1},
	}}, 7, nil)
	if unbound.NodeCrashed(11, time.Second) {
		t.Error("unbound injector reported a crashed node")
	}
}

func TestWindowActive(t *testing.T) {
	w := Window{Kind: DiskSlow, Target: 0, Factor: 2, Start: 5 * time.Second, End: 10 * time.Second}
	for _, tc := range []struct {
		at   time.Duration
		want bool
	}{
		{0, false}, {5 * time.Second, true}, {9 * time.Second, true},
		{10 * time.Second, false}, {time.Hour, false},
	} {
		if got := w.active(tc.at); got != tc.want {
			t.Errorf("active(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	open := Window{Kind: DiskSlow, Factor: 2, Start: time.Second}
	if !open.active(time.Hour) {
		t.Error("open-ended window inactive")
	}
}

func TestFactorsMultiplyAndTarget(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k, &Schedule{Windows: []Window{
		{Kind: DiskSlow, Target: 1, Factor: 10},
		{Kind: DiskSlow, Target: 1, Factor: 2, Start: 0, End: 5 * time.Second},
		{Kind: ServerSlow, Target: 1, Factor: 3},
	}}, 7, nil)
	if f := inj.DiskFactor(1, time.Second); f != 20 {
		t.Errorf("overlapping DiskFactor = %g, want 20", f)
	}
	if f := inj.DiskFactor(1, 6*time.Second); f != 10 {
		t.Errorf("DiskFactor after inner window = %g, want 10", f)
	}
	if f := inj.DiskFactor(0, time.Second); f != 1 {
		t.Errorf("healthy server DiskFactor = %g, want 1", f)
	}
	if f := inj.ServerFactor(1, time.Second); f != 3 {
		t.Errorf("ServerFactor = %g, want 3", f)
	}
	if f := inj.DiskFactor(1, time.Second); f != 20 {
		t.Errorf("ServerSlow window leaked into DiskFactor: %g", f)
	}
}

func TestLinkFactorEitherEndpoint(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k, &Schedule{Windows: []Window{
		{Kind: LinkSlow, Target: 3, Factor: 4},
	}}, 7, nil)
	if f := inj.LinkFactor(3, 100, 0); f != 4 {
		t.Errorf("LinkFactor(from=target) = %g, want 4", f)
	}
	if f := inj.LinkFactor(100, 3, 0); f != 4 {
		t.Errorf("LinkFactor(to=target) = %g, want 4", f)
	}
	if f := inj.LinkFactor(100, 101, 0); f != 1 {
		t.Errorf("LinkFactor(unrelated) = %g, want 1", f)
	}
}

func TestStallUntil(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k, &Schedule{Windows: []Window{
		{Kind: ServerStall, Target: 2, Start: time.Second, End: 2 * time.Second},
		{Kind: ServerStall, Target: 2, Start: time.Second, End: 3 * time.Second},
	}}, 7, nil)
	if u := inj.StallUntil(2, 1500*time.Millisecond); u != 3*time.Second {
		t.Errorf("StallUntil = %v, want 3s (latest overlapping end)", u)
	}
	if u := inj.StallUntil(2, 4*time.Second); u != 0 {
		t.Errorf("StallUntil after windows = %v, want 0", u)
	}
	if u := inj.StallUntil(0, 1500*time.Millisecond); u != 0 {
		t.Errorf("StallUntil on healthy server = %v, want 0", u)
	}
}

func TestDropDeterministicPerSeed(t *testing.T) {
	sch := &Schedule{Windows: []Window{
		{Kind: LinkDrop, Target: 5, Prob: 0.5, End: time.Minute},
	}}
	draw := func(seed int64) []bool {
		inj := NewInjector(sim.NewKernel(1), sch, seed, nil)
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Drop(5, 100, time.Duration(i)*time.Second/100)
		}
		return out
	}
	a, b := draw(42), draw(42)
	var dropped int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds", i)
		}
		if a[i] {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(a) {
		t.Fatalf("p=0.5 produced %d/%d drops", dropped, len(a))
	}
	// Outside the window no randomness is drawn and nothing drops.
	inj := NewInjector(sim.NewKernel(1), sch, 42, nil)
	if inj.Drop(5, 100, 2*time.Minute) {
		t.Error("drop outside the window")
	}
	// Unrelated endpoints never drop.
	if inj.Drop(7, 100, time.Second) {
		t.Error("drop on an unrelated link")
	}
}

func TestNilInjectorIsHealthy(t *testing.T) {
	var inj *Injector
	if f := inj.DiskFactor(0, 0); f != 1 {
		t.Errorf("nil DiskFactor = %g", f)
	}
	if f := inj.ServerFactor(0, 0); f != 1 {
		t.Errorf("nil ServerFactor = %g", f)
	}
	if f := inj.LinkFactor(0, 1, 0); f != 1 {
		t.Errorf("nil LinkFactor = %g", f)
	}
	if u := inj.StallUntil(0, 0); u != 0 {
		t.Errorf("nil StallUntil = %v", u)
	}
	if inj.Drop(0, 1, 0) {
		t.Error("nil injector dropped a message")
	}
	if inj.Enabled() {
		t.Error("nil injector reports enabled")
	}
	if inj.Crashed(0, 0) || inj.CrashedDuring(0, 0, time.Hour) || inj.NodeCrashed(0, 0) {
		t.Error("nil injector reported a crash")
	}
	if inj.HasCrashWindows() {
		t.Error("nil injector has crash windows")
	}
	inj.OnServerState(func(int, bool, time.Duration) {}) // must not panic
	inj.BindServerNodes([]int{1, 2})                     // must not panic
}

func TestEmptyScheduleAddsNoEvents(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k, &Schedule{}, 42, nil)
	if k.Pending() != 0 {
		t.Fatalf("empty schedule left %d kernel events pending", k.Pending())
	}
	if inj.Enabled() {
		t.Error("empty-schedule injector reports enabled")
	}
	if inj.rng != nil {
		t.Error("empty-schedule injector created a random source")
	}
}

func TestInvalidSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInjector accepted an invalid schedule")
		}
	}()
	NewInjector(sim.NewKernel(1), &Schedule{Windows: []Window{
		{Kind: DiskSlow, Target: 0, Factor: 0.5},
	}}, 1, nil)
}
