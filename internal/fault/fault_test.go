package fault

import (
	"testing"
	"time"

	"dualpar/internal/sim"
)

func TestParse(t *testing.T) {
	sch, err := Parse("disk:1*10@5s-30s; stall:2@1s-2s, drop:102:0.2@0s-10s;link:3*4")
	if err != nil {
		t.Fatal(err)
	}
	want := []Window{
		{Kind: DiskSlow, Target: 1, Factor: 10, Start: 5 * time.Second, End: 30 * time.Second},
		{Kind: ServerStall, Target: 2, Factor: 1, Start: time.Second, End: 2 * time.Second},
		{Kind: LinkDrop, Target: 102, Factor: 1, Prob: 0.2, End: 10 * time.Second},
		{Kind: LinkSlow, Target: 3, Factor: 4},
	}
	if len(sch.Windows) != len(want) {
		t.Fatalf("parsed %d windows, want %d", len(sch.Windows), len(want))
	}
	for i, w := range want {
		if sch.Windows[i] != w {
			t.Errorf("window %d = %+v, want %+v", i, sch.Windows[i], w)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	sch, err := Parse("  ")
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Empty() {
		t.Fatalf("blank spec parsed to %+v", sch)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"melt:1*2",          // unknown kind
		"disk:1*0.5",        // factor < 1
		"drop:5",            // drop without probability
		"drop:5:1.5",        // probability out of range
		"stall:2",           // stall without an end
		"disk:1*10@30s-5s",  // end before start
		"disk:x*2",          // bad target
		"disk:1*2@later-5s", // bad duration
		"slow:1:0.5",        // stray field on a non-drop kind
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", spec)
		}
	}
}

func TestWindowActive(t *testing.T) {
	w := Window{Kind: DiskSlow, Target: 0, Factor: 2, Start: 5 * time.Second, End: 10 * time.Second}
	for _, tc := range []struct {
		at   time.Duration
		want bool
	}{
		{0, false}, {5 * time.Second, true}, {9 * time.Second, true},
		{10 * time.Second, false}, {time.Hour, false},
	} {
		if got := w.active(tc.at); got != tc.want {
			t.Errorf("active(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	open := Window{Kind: DiskSlow, Factor: 2, Start: time.Second}
	if !open.active(time.Hour) {
		t.Error("open-ended window inactive")
	}
}

func TestFactorsMultiplyAndTarget(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k, &Schedule{Windows: []Window{
		{Kind: DiskSlow, Target: 1, Factor: 10},
		{Kind: DiskSlow, Target: 1, Factor: 2, Start: 0, End: 5 * time.Second},
		{Kind: ServerSlow, Target: 1, Factor: 3},
	}}, 7, nil)
	if f := inj.DiskFactor(1, time.Second); f != 20 {
		t.Errorf("overlapping DiskFactor = %g, want 20", f)
	}
	if f := inj.DiskFactor(1, 6*time.Second); f != 10 {
		t.Errorf("DiskFactor after inner window = %g, want 10", f)
	}
	if f := inj.DiskFactor(0, time.Second); f != 1 {
		t.Errorf("healthy server DiskFactor = %g, want 1", f)
	}
	if f := inj.ServerFactor(1, time.Second); f != 3 {
		t.Errorf("ServerFactor = %g, want 3", f)
	}
	if f := inj.DiskFactor(1, time.Second); f != 20 {
		t.Errorf("ServerSlow window leaked into DiskFactor: %g", f)
	}
}

func TestLinkFactorEitherEndpoint(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k, &Schedule{Windows: []Window{
		{Kind: LinkSlow, Target: 3, Factor: 4},
	}}, 7, nil)
	if f := inj.LinkFactor(3, 100, 0); f != 4 {
		t.Errorf("LinkFactor(from=target) = %g, want 4", f)
	}
	if f := inj.LinkFactor(100, 3, 0); f != 4 {
		t.Errorf("LinkFactor(to=target) = %g, want 4", f)
	}
	if f := inj.LinkFactor(100, 101, 0); f != 1 {
		t.Errorf("LinkFactor(unrelated) = %g, want 1", f)
	}
}

func TestStallUntil(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k, &Schedule{Windows: []Window{
		{Kind: ServerStall, Target: 2, Start: time.Second, End: 2 * time.Second},
		{Kind: ServerStall, Target: 2, Start: time.Second, End: 3 * time.Second},
	}}, 7, nil)
	if u := inj.StallUntil(2, 1500*time.Millisecond); u != 3*time.Second {
		t.Errorf("StallUntil = %v, want 3s (latest overlapping end)", u)
	}
	if u := inj.StallUntil(2, 4*time.Second); u != 0 {
		t.Errorf("StallUntil after windows = %v, want 0", u)
	}
	if u := inj.StallUntil(0, 1500*time.Millisecond); u != 0 {
		t.Errorf("StallUntil on healthy server = %v, want 0", u)
	}
}

func TestDropDeterministicPerSeed(t *testing.T) {
	sch := &Schedule{Windows: []Window{
		{Kind: LinkDrop, Target: 5, Prob: 0.5, End: time.Minute},
	}}
	draw := func(seed int64) []bool {
		inj := NewInjector(sim.NewKernel(1), sch, seed, nil)
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Drop(5, 100, time.Duration(i)*time.Second/100)
		}
		return out
	}
	a, b := draw(42), draw(42)
	var dropped int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds", i)
		}
		if a[i] {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(a) {
		t.Fatalf("p=0.5 produced %d/%d drops", dropped, len(a))
	}
	// Outside the window no randomness is drawn and nothing drops.
	inj := NewInjector(sim.NewKernel(1), sch, 42, nil)
	if inj.Drop(5, 100, 2*time.Minute) {
		t.Error("drop outside the window")
	}
	// Unrelated endpoints never drop.
	if inj.Drop(7, 100, time.Second) {
		t.Error("drop on an unrelated link")
	}
}

func TestNilInjectorIsHealthy(t *testing.T) {
	var inj *Injector
	if f := inj.DiskFactor(0, 0); f != 1 {
		t.Errorf("nil DiskFactor = %g", f)
	}
	if f := inj.ServerFactor(0, 0); f != 1 {
		t.Errorf("nil ServerFactor = %g", f)
	}
	if f := inj.LinkFactor(0, 1, 0); f != 1 {
		t.Errorf("nil LinkFactor = %g", f)
	}
	if u := inj.StallUntil(0, 0); u != 0 {
		t.Errorf("nil StallUntil = %v", u)
	}
	if inj.Drop(0, 1, 0) {
		t.Error("nil injector dropped a message")
	}
	if inj.Enabled() {
		t.Error("nil injector reports enabled")
	}
}

func TestEmptyScheduleAddsNoEvents(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k, &Schedule{}, 42, nil)
	if k.Pending() != 0 {
		t.Fatalf("empty schedule left %d kernel events pending", k.Pending())
	}
	if inj.Enabled() {
		t.Error("empty-schedule injector reports enabled")
	}
	if inj.rng != nil {
		t.Error("empty-schedule injector created a random source")
	}
}

func TestInvalidSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInjector accepted an invalid schedule")
		}
	}()
	NewInjector(sim.NewKernel(1), &Schedule{Windows: []Window{
		{Kind: DiskSlow, Target: 0, Factor: 0.5},
	}}, 1, nil)
}
