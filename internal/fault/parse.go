package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds a Schedule from a compact spec string, for command-line use.
// Entries are separated by ';' (or ','); each is
//
//	kind:target[*factor][:prob][@start[-end]]
//
// where kind is disk|link|slow|stall|drop|crash, target is a data-server
// index (disk/slow/stall/crash) or network node id (link/drop), factor is
// the slowdown multiplier (disk/link/slow only), prob is the drop
// probability (drop only), and start/end are Go durations in virtual time
// (omitted end = open window; stall requires an end, and a crash without an
// end never recovers). Examples:
//
//	disk:1*10            server 1's disk 10x slower for the whole run
//	disk:1*10@5s-30s     the same, between t=5s and t=30s
//	stall:2@1s-2s        server 2 freezes for one second
//	drop:102:0.2@0s-10s  20% message loss at node 102 for 10 seconds
//	link:3*4             node 3's links serialize 4x slower
//	crash:2@5s           server 2 crash-stops at t=5s, forever
//	crash:2@5s-20s       the same, but it recovers at t=20s
//	crash:client3@5s     compute client rank 3 crash-stops at t=5s
//
// A crash target with a "client" prefix selects a compute client (MPI
// rank) instead of a data server; client crashes take no recovery window —
// restart is a recovery-phase action driven by the harness.
//
// Every rejected spec names the offending entry in the error.
func Parse(spec string) (*Schedule, error) {
	sch := &Schedule{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return sch, nil
	}
	for _, entry := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		w, err := parseWindow(entry)
		if err != nil {
			return nil, err
		}
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("fault: %q: %v", entry, err)
		}
		sch.Windows = append(sch.Windows, w)
	}
	return sch, nil
}

func parseWindow(entry string) (Window, error) {
	var w Window
	body := entry
	if n := strings.Count(entry, "@"); n > 1 {
		return w, fmt.Errorf("fault: %q: duplicate '@'", entry)
	}
	if at := strings.IndexByte(entry, '@'); at >= 0 {
		body = entry[:at]
		var err error
		w.Start, w.End, err = parseSpan(entry[at+1:])
		if err != nil {
			return w, fmt.Errorf("fault: %q: %v", entry, err)
		}
	}
	fields := strings.Split(body, ":")
	if len(fields) < 2 {
		return w, fmt.Errorf("fault: %q: want kind:target[...]", entry)
	}
	takesFactor := false
	switch fields[0] {
	case "disk":
		w.Kind = DiskSlow
		takesFactor = true
	case "link":
		w.Kind = LinkSlow
		takesFactor = true
	case "slow":
		w.Kind = ServerSlow
		takesFactor = true
	case "stall":
		w.Kind = ServerStall
	case "drop":
		w.Kind = LinkDrop
	case "crash":
		w.Kind = ServerCrash
	default:
		return w, fmt.Errorf("fault: %q: unknown kind %q", entry, fields[0])
	}
	tgt := fields[1]
	if w.Kind == ServerCrash && strings.HasPrefix(tgt, "client") {
		w.Kind = ClientCrash
		tgt = tgt[len("client"):]
		if tgt == "" {
			return w, fmt.Errorf("fault: %q: client crash wants crash:client<rank>", entry)
		}
	}
	w.Factor = 1
	if star := strings.IndexByte(tgt, '*'); star >= 0 {
		if !takesFactor {
			return w, fmt.Errorf("fault: %q: %s takes no factor", entry, fields[0])
		}
		fs := tgt[star+1:]
		if fs == "" {
			return w, fmt.Errorf("fault: %q: empty factor", entry)
		}
		f, err := strconv.ParseFloat(fs, 64)
		if err != nil {
			return w, fmt.Errorf("fault: %q: bad factor: %v", entry, err)
		}
		w.Factor = f
		tgt = tgt[:star]
	}
	n, err := strconv.Atoi(tgt)
	if err != nil {
		return w, fmt.Errorf("fault: %q: bad target: %v", entry, err)
	}
	w.Target = n
	if w.Kind == LinkDrop {
		if len(fields) != 3 {
			return w, fmt.Errorf("fault: %q: drop wants drop:node:prob", entry)
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return w, fmt.Errorf("fault: %q: bad probability: %v", entry, err)
		}
		w.Prob = p
	} else if len(fields) != 2 {
		return w, fmt.Errorf("fault: %q: unexpected field %q", entry, fields[2])
	}
	return w, nil
}

// parseSpan parses "start[-end]" as Go durations. A negative end (e.g. the
// "1s--2s" typo) is rejected rather than silently meaning "open window".
func parseSpan(s string) (start, end time.Duration, err error) {
	parts := strings.SplitN(s, "-", 2)
	start, err = time.ParseDuration(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad start: %v", err)
	}
	if len(parts) == 2 {
		end, err = time.ParseDuration(parts[1])
		if err != nil {
			return 0, 0, fmt.Errorf("bad end: %v", err)
		}
		if end < 0 {
			return 0, 0, fmt.Errorf("negative end %v", end)
		}
	}
	return start, end, nil
}
