package fault_test

import (
	"bytes"
	"testing"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/fault"
	"dualpar/internal/obs"
	"dualpar/internal/workloads"
)

// smallProg is a quick I/O-bound workload.
func smallProg() workloads.Program {
	m := workloads.DefaultMPIIOTest()
	m.Procs = 8
	m.FileBytes = 4 << 20
	return m
}

// run executes the workload on a faulted 3-server cluster and returns the
// exported trace plus the collector and cluster for inspection. retry arms
// both the PFS client watchdog and the CRM batch watchdog.
func run(t *testing.T, sch *fault.Schedule, retry bool) ([]byte, *obs.Collector, *cluster.Cluster) {
	t.Helper()
	col := obs.NewCollector()
	ccfg := cluster.DefaultConfig()
	ccfg.DataServers = 3
	d := ccfg.Disk
	d.Sectors = 1 << 25
	ccfg.Disk = d
	ccfg.Seed = 1
	ccfg.Obs = col
	ccfg.Faults = sch
	if retry {
		ccfg.PFS.RequestTimeout = 100 * time.Millisecond
		ccfg.PFS.MaxRetries = 4
		ccfg.PFS.RetryBackoff = 10 * time.Millisecond
	}
	cl := cluster.New(ccfg)
	dcfg := core.DefaultConfig()
	if retry {
		dcfg.CRMTimeout = 2 * time.Second
		dcfg.CRMMaxRetries = 3
		dcfg.CRMBackoff = 20 * time.Millisecond
	}
	r := core.NewRunner(cl, dcfg)
	r.Add(smallProg(), core.ModeDualPar, core.AddOptions{RanksPerNode: 4})
	if !r.Run(time.Hour) {
		t.Fatal("run did not finish (deadlock or starvation under faults)")
	}
	var buf bytes.Buffer
	if err := col.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), col, cl
}

// TestEmptyScheduleByteIdentical: an empty fault schedule must leave the
// run byte-identical to one with the fault layer absent — no kernel
// events, no randomness, no timing perturbation.
func TestEmptyScheduleByteIdentical(t *testing.T) {
	absent, _, _ := run(t, nil, false)
	empty, _, _ := run(t, &fault.Schedule{}, false)
	if !bytes.Equal(absent, empty) {
		t.Fatal("empty fault schedule perturbed the trace relative to no fault layer")
	}
}

// degradedSchedule: data server 1 has a 10x-slower disk for the whole run,
// freezes entirely for part of the first second, and compute node 101
// loses 30% of its messages early on.
func degradedSchedule() *fault.Schedule {
	return &fault.Schedule{Windows: []fault.Window{
		{Kind: fault.DiskSlow, Target: 1, Factor: 10},
		{Kind: fault.ServerStall, Target: 1, Start: 100 * time.Millisecond, End: 1200 * time.Millisecond},
		{Kind: fault.LinkDrop, Target: 101, Prob: 0.3, End: 2 * time.Second},
	}}
}

// TestFaultedRunsAreReproducible: the schedule and the cluster seed fully
// determine the run — two identical configurations export byte-identical
// traces, and the faults demonstrably perturb the timeline.
func TestFaultedRunsAreReproducible(t *testing.T) {
	a, _, _ := run(t, degradedSchedule(), true)
	b, _, _ := run(t, degradedSchedule(), true)
	if !bytes.Equal(a, b) {
		t.Fatal("identical fault schedule and seed produced different traces")
	}
	healthy, _, _ := run(t, nil, false)
	if bytes.Equal(a, healthy) {
		t.Fatal("degraded run exported the same trace as a healthy run")
	}
}

// TestDegradedServerCompletesWithRetries: with one data server 10x
// degraded and stalling, the run completes (no deadlock), the client
// watchdog fires visibly, and the fault windows and drops appear as trace
// instants.
func TestDegradedServerCompletesWithRetries(t *testing.T) {
	_, col, cl := run(t, degradedSchedule(), true)
	names := map[string]int{}
	for _, in := range col.Instants() {
		names[in.Name]++
	}
	if names["fault.begin"] != 3 {
		t.Errorf("fault.begin instants = %d, want 3 (one per window)", names["fault.begin"])
	}
	if names["fault.end"] != 2 {
		t.Errorf("fault.end instants = %d, want 2 (open window has none)", names["fault.end"])
	}
	if names["retry"] == 0 {
		t.Error("no retry instants: the watchdog never fired against a stalled server")
	}
	if cl.FS.Retries() == 0 {
		t.Error("FileSystem.Retries() = 0 under a 1.1s stall with a 100ms timeout")
	}
	if cl.Net.Drops() == 0 {
		t.Error("no messages dropped under a 30% loss window")
	}
	if names["fault.drop"] == 0 {
		t.Error("no fault.drop instants despite dropped messages")
	}
}
