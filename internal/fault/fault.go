// Package fault is a deterministic fault-injection subsystem for the
// simulated testbed. A Schedule is a set of degradation windows in virtual
// time — slow disks, slow or lossy links, stalled or slowed data servers —
// and an Injector answers point queries against that schedule from the
// layers it degrades (disk wrapper, netsim, pfs servers).
//
// Determinism: every decision is a pure function of the schedule, the
// injector's seeded random source, and virtual time. The same schedule and
// seed yield byte-identical runs; an empty schedule schedules no events,
// draws no randomness, and leaves the simulation timeline byte-identical to
// a run without the fault layer. A nil *Injector is fully usable and
// reports "healthy" for every query, so call sites need no nil checks.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// Kind selects what a Window degrades.
type Kind int

const (
	// DiskSlow inflates the disk service time on one data server by Factor
	// (seek, rotation, and transfer alike — a dying or remapping drive).
	DiskSlow Kind = iota
	// LinkSlow inflates the serialization time of messages to or from one
	// network node by Factor (a congested or renegotiated-down link).
	LinkSlow
	// LinkDrop drops messages to or from one node with probability Prob;
	// a dropped message costs the sender a retransmit timeout.
	LinkDrop
	// ServerStall freezes one data server's request service for the whole
	// window (requests queue; none are served until the window ends).
	ServerStall
	// ServerSlow inflates one data server's per-request CPU cost by Factor.
	ServerSlow
	// ServerCrash is a crash-stop failure of one data server: for the whole
	// window the server answers nothing (requests sent to it vanish). A
	// window with an end models recovery — the server comes back with its
	// pre-crash durable state but without its in-flight request queue; a
	// window without an end is a permanent failure.
	ServerCrash
	// ClientCrash is a crash-stop failure of one compute client (Target is
	// an MPI rank index): the whole job aborts at the window start, losing
	// every checkpoint epoch not yet sealed in the host-side burst log.
	// There is no recovery window — restart is a recovery-phase action
	// (replay sealed-but-undrained log records, re-read the last committed
	// epoch), driven by the harness after the crashed run ends.
	ClientCrash
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case DiskSlow:
		return "disk"
	case LinkSlow:
		return "link"
	case LinkDrop:
		return "drop"
	case ServerStall:
		return "stall"
	case ServerSlow:
		return "slow"
	case ServerCrash:
		return "crash"
	case ClientCrash:
		return "client-crash"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Window is one degradation interval. Target is a data-server index for
// DiskSlow/ServerStall/ServerSlow and a network node id for
// LinkSlow/LinkDrop. End <= 0 means the window never closes.
type Window struct {
	Kind   Kind
	Target int
	Start  time.Duration
	End    time.Duration
	// Factor is the slowdown multiplier for DiskSlow/LinkSlow/ServerSlow
	// (must be >= 1; 1 is a no-op).
	Factor float64
	// Prob is the per-message drop probability for LinkDrop, in (0, 0.95].
	// The cap keeps every seeded run terminating quickly in practice; the
	// transport additionally bounds retransmits per message.
	Prob float64
}

// active reports whether the window covers virtual time now.
func (w Window) active(now time.Duration) bool {
	return now >= w.Start && (w.End <= 0 || now < w.End)
}

// Validate reports window errors.
func (w Window) Validate() error {
	switch {
	case w.Target < 0:
		return fmt.Errorf("fault: %v target %d", w.Kind, w.Target)
	case w.Start < 0:
		return fmt.Errorf("fault: %v start %v", w.Kind, w.Start)
	case w.End > 0 && w.End <= w.Start:
		return fmt.Errorf("fault: %v window [%v,%v]", w.Kind, w.Start, w.End)
	}
	switch w.Kind {
	case DiskSlow, LinkSlow, ServerSlow:
		if math.IsNaN(w.Factor) || math.IsInf(w.Factor, 0) {
			return fmt.Errorf("fault: %v factor %g is not finite", w.Kind, w.Factor)
		}
		if w.Factor < 1 {
			return fmt.Errorf("fault: %v factor %g < 1", w.Kind, w.Factor)
		}
	case LinkDrop:
		if math.IsNaN(w.Prob) || math.IsInf(w.Prob, 0) {
			return fmt.Errorf("fault: drop probability %g is not finite", w.Prob)
		}
		if w.Prob <= 0 || w.Prob > 0.95 {
			return fmt.Errorf("fault: drop probability %g outside (0,0.95]", w.Prob)
		}
	case ServerStall:
		if w.End <= 0 {
			return fmt.Errorf("fault: stall window must have an end")
		}
	case ServerCrash:
		// No factor or probability; an open window is a permanent failure.
	case ClientCrash:
		if w.End > 0 {
			return fmt.Errorf("fault: client crash takes no recovery window (restart is a recovery-phase action)")
		}
	default:
		return fmt.Errorf("fault: unknown kind %d", int(w.Kind))
	}
	return nil
}

// Schedule is a fault plan: zero or more windows, possibly overlapping.
// Overlapping slowdown factors multiply.
type Schedule struct {
	Windows []Window
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool { return s == nil || len(s.Windows) == 0 }

// Validate reports schedule errors.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for _, w := range s.Windows {
		if err := w.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Injector answers fault queries against one schedule. It is bound to a
// kernel so window transitions appear as fault.begin/fault.end instants in
// the trace, and owns a seeded random source for drop decisions.
type Injector struct {
	windows []Window
	rng     *rand.Rand
	obs     *obs.Collector
	// onServer receives crash/recovery transitions for data servers, in
	// schedule order at the window boundary events. Registered before the
	// kernel runs; never mutated afterwards.
	onServer []func(server int, up bool, at time.Duration)
	// serverNodes maps data-server index -> network node id, so the
	// transport can refuse delivery to crashed servers (NodeCrashed).
	serverNodes map[int]int
	// onClient receives compute-client crash transitions (rank, at), in
	// schedule order at the window start event. Registered before the
	// kernel runs; never mutated afterwards.
	onClient []func(rank int, at time.Duration)
}

// NewInjector creates an injector for sch on kernel k. It panics on an
// invalid schedule (a configuration bug). An empty schedule adds no kernel
// events and the injector never draws randomness, keeping the run
// byte-identical to one without the fault layer.
func NewInjector(k *sim.Kernel, sch *Schedule, seed int64, c *obs.Collector) *Injector {
	if err := sch.Validate(); err != nil {
		panic(err)
	}
	inj := &Injector{obs: c}
	if sch.Empty() {
		return inj
	}
	inj.windows = append(inj.windows, sch.Windows...)
	inj.rng = rand.New(rand.NewSource(seed))
	for i, w := range inj.windows {
		i, w := i, w
		k.After(w.Start, func() {
			inj.obs.Instant("fault.begin", "fault", k.Now(),
				obs.I64("window", int64(i)), obs.Str("kind", w.Kind.String()),
				obs.I64("target", int64(w.Target)),
				obs.F64("factor", w.Factor), obs.F64("prob", w.Prob))
			if w.Kind == ServerCrash {
				inj.notifyServer(w.Target, false, k.Now())
			}
			if w.Kind == ClientCrash {
				inj.notifyClient(w.Target, k.Now())
			}
		})
		if w.End > 0 {
			k.After(w.End, func() {
				inj.obs.Instant("fault.end", "fault", k.Now(),
					obs.I64("window", int64(i)), obs.Str("kind", w.Kind.String()),
					obs.I64("target", int64(w.Target)))
				if w.Kind == ServerCrash && !inj.Crashed(w.Target, k.Now()) {
					inj.notifyServer(w.Target, true, k.Now())
				}
			})
		}
	}
	return inj
}

// OnServerState registers a listener for data-server crash (up=false) and
// recovery (up=true) transitions. Listeners run at the window boundary in
// schedule order. Register before the kernel starts running.
func (inj *Injector) OnServerState(fn func(server int, up bool, at time.Duration)) {
	if inj == nil {
		return
	}
	inj.onServer = append(inj.onServer, fn)
}

func (inj *Injector) notifyServer(server int, up bool, at time.Duration) {
	for _, fn := range inj.onServer {
		fn(server, up, at)
	}
}

// OnClientState registers a listener for compute-client crash transitions.
// Listeners run at the window start in schedule order. Register before the
// kernel starts running. There is no recovery transition: a client crash
// aborts the job, and restart is a harness-driven recovery phase.
func (inj *Injector) OnClientState(fn func(rank int, at time.Duration)) {
	if inj == nil {
		return
	}
	inj.onClient = append(inj.onClient, fn)
}

func (inj *Injector) notifyClient(rank int, at time.Duration) {
	for _, fn := range inj.onClient {
		fn(rank, at)
	}
}

// HasClientCrashWindows reports whether the schedule crashes any compute
// client. HasCrashWindows stays server-only on purpose: client crashes must
// not flip the PFS onto its crash-aware code path.
func (inj *Injector) HasClientCrashWindows() bool {
	if inj == nil {
		return false
	}
	for _, w := range inj.windows {
		if w.Kind == ClientCrash {
			return true
		}
	}
	return false
}

// Crashed reports whether a data server is crash-stopped at now.
func (inj *Injector) Crashed(server int, now time.Duration) bool {
	if inj == nil {
		return false
	}
	for _, w := range inj.windows {
		if w.Kind == ServerCrash && w.Target == server && w.active(now) {
			return true
		}
	}
	return false
}

// CrashedDuring reports whether any crash window on a data server overlaps
// the closed interval [from, to]. The PFS server uses this to drop requests
// whose service straddled a crash: even if the server is back up at
// completion time, the in-flight queue died with it.
func (inj *Injector) CrashedDuring(server int, from, to time.Duration) bool {
	if inj == nil {
		return false
	}
	for _, w := range inj.windows {
		if w.Kind == ServerCrash && w.Target == server &&
			w.Start <= to && (w.End <= 0 || w.End > from) {
			return true
		}
	}
	return false
}

// HasCrashWindows reports whether the schedule contains any crash windows
// (including ones not yet begun). Layers use it to decide whether crash
// bookkeeping is needed at all, keeping crash-free runs on the exact legacy
// code path.
func (inj *Injector) HasCrashWindows() bool {
	if inj == nil {
		return false
	}
	for _, w := range inj.windows {
		if w.Kind == ServerCrash {
			return true
		}
	}
	return false
}

// BindServerNodes tells the injector which network node hosts each data
// server (index i of nodes is server i), enabling NodeCrashed queries from
// the transport.
func (inj *Injector) BindServerNodes(nodes []int) {
	if inj == nil {
		return
	}
	inj.serverNodes = make(map[int]int, len(nodes))
	for srv, node := range nodes {
		inj.serverNodes[srv] = node
	}
}

// NodeCrashed reports whether the network node is a crashed data server at
// now. Nodes that host no data server are never crashed.
func (inj *Injector) NodeCrashed(node int, now time.Duration) bool {
	if inj == nil || inj.serverNodes == nil {
		return false
	}
	for srv, n := range inj.serverNodes {
		if n == node && inj.Crashed(srv, now) {
			return true
		}
	}
	return false
}

// factor multiplies the factors of active windows of the given kind/target.
func (inj *Injector) factor(kind Kind, target int, now time.Duration) float64 {
	if inj == nil {
		return 1
	}
	f := 1.0
	for _, w := range inj.windows {
		if w.Kind == kind && w.Target == target && w.active(now) {
			f *= w.Factor
		}
	}
	return f
}

// DiskFactor returns the active disk-service slowdown for a data server
// (1 = healthy).
func (inj *Injector) DiskFactor(server int, now time.Duration) float64 {
	return inj.factor(DiskSlow, server, now)
}

// ServerFactor returns the active request-CPU slowdown for a data server.
func (inj *Injector) ServerFactor(server int, now time.Duration) float64 {
	return inj.factor(ServerSlow, server, now)
}

// LinkFactor returns the active serialization slowdown for a message
// between two nodes (windows on either endpoint apply).
func (inj *Injector) LinkFactor(from, to int, now time.Duration) float64 {
	if inj == nil {
		return 1
	}
	f := 1.0
	for _, w := range inj.windows {
		if w.Kind == LinkSlow && (w.Target == from || w.Target == to) && w.active(now) {
			f *= w.Factor
		}
	}
	return f
}

// StallUntil returns the end of the latest active stall window covering a
// data server at now, or 0 when the server is serving normally.
func (inj *Injector) StallUntil(server int, now time.Duration) time.Duration {
	if inj == nil {
		return 0
	}
	var until time.Duration
	for _, w := range inj.windows {
		if w.Kind == ServerStall && w.Target == server && w.active(now) && w.End > until {
			until = w.End
		}
	}
	return until
}

// Drop decides whether a message between two nodes is lost at now. It
// draws randomness only when an active drop window covers an endpoint, so
// drop-free schedules consume nothing from the source.
func (inj *Injector) Drop(from, to int, now time.Duration) bool {
	if inj == nil {
		return false
	}
	for _, w := range inj.windows {
		if w.Kind == LinkDrop && (w.Target == from || w.Target == to) && w.active(now) {
			if inj.rng.Float64() < w.Prob {
				return true
			}
		}
	}
	return false
}

// Enabled reports whether the injector carries any windows.
func (inj *Injector) Enabled() bool { return inj != nil && len(inj.windows) > 0 }
