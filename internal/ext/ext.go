// Package ext provides byte-extent math shared by the datatype, file
// system, MPI-IO, and DualPar layers: sorting, coalescing, and hole-filling
// of (offset, length) ranges. DualPar's CRM (paper §IV-D) is built on these
// operations: requests from all processes are sorted by file offset,
// adjacent requests merged, and small holes absorbed to form large
// contiguous requests.
package ext

import (
	"cmp"
	"slices"
)

// Extent is a half-open byte range [Off, Off+Len) within a file.
type Extent struct {
	Off int64
	Len int64
}

// End returns the first byte after the extent.
func (e Extent) End() int64 { return e.Off + e.Len }

// Overlaps reports whether e and o share any byte.
func (e Extent) Overlaps(o Extent) bool {
	return e.Off < o.End() && o.Off < e.End()
}

// Contains reports whether e covers [off, off+n).
func (e Extent) Contains(off, n int64) bool {
	return off >= e.Off && off+n <= e.End()
}

// Clip returns the intersection of e with [lo, hi).
func (e Extent) Clip(lo, hi int64) (Extent, bool) {
	o, n := e.Off, e.End()
	if o < lo {
		o = lo
	}
	if n > hi {
		n = hi
	}
	if o >= n {
		return Extent{}, false
	}
	return Extent{Off: o, Len: n - o}, true
}

// Sort orders extents by offset (stable for equal offsets). The generic
// sort moves Extent values directly — no reflection-based swapper — which
// matters because every CRM cycle funnels its request lists through here.
func Sort(xs []Extent) {
	slices.SortStableFunc(xs, func(a, b Extent) int { return cmp.Compare(a.Off, b.Off) })
}

// Total returns the summed length.
func Total(xs []Extent) int64 {
	var t int64
	for _, e := range xs {
		t += e.Len
	}
	return t
}

// Merge sorts a copy of xs and coalesces overlapping or exactly adjacent
// extents. Zero-length extents are dropped.
func Merge(xs []Extent) []Extent {
	return MergeWithHoles(xs, 0)
}

// MergeWithHoles sorts a copy of xs and coalesces extents whose gap is at
// most maxHole bytes, absorbing the hole into the result (the paper fills
// small unrequested holes to form larger requests; for writes the holes are
// first read back, which the caller accounts for with Holes). Zero-length
// extents are dropped.
func MergeWithHoles(xs []Extent, maxHole int64) []Extent {
	cp := make([]Extent, 0, len(xs))
	for _, e := range xs {
		if e.Len > 0 {
			cp = append(cp, e)
		}
	}
	if len(cp) == 0 {
		return nil
	}
	Sort(cp)
	out := cp[:1]
	for _, e := range cp[1:] {
		last := &out[len(out)-1]
		if e.Off <= last.End()+maxHole {
			if e.End() > last.End() {
				last.Len = e.End() - last.Off
			}
		} else {
			out = append(out, e)
		}
	}
	// out aliases cp, which this call owns — returning it directly is safe
	// and saves re-copying the result on a very hot path.
	return out
}

// Insert adds e to xs, which must be in the canonical form Merge produces
// (sorted by offset, disjoint, no zero gaps), and returns the updated list,
// still canonical. It is equivalent to Merge(append(xs, e)) but coalesces in
// place — no copy, no sort — so per-extent accumulators (cache chunk maps,
// ghost recorders) can grow sorted sets without re-merging them each time.
func Insert(xs []Extent, e Extent) []Extent {
	if e.Len <= 0 {
		return xs
	}
	// First extent that could touch e: End >= e.Off.
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid].End() < e.Off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	// Extents [i, j) overlap or touch e and coalesce with it.
	j := i
	for j < len(xs) && xs[j].Off <= e.End() {
		j++
	}
	if i == j {
		xs = append(xs, Extent{})
		copy(xs[i+1:], xs[i:])
		xs[i] = e
		return xs
	}
	off := min(xs[i].Off, e.Off)
	end := max(xs[j-1].End(), e.End())
	xs[i] = Extent{Off: off, Len: end - off}
	if j > i+1 {
		xs = append(xs[:i+1], xs[j:]...)
	}
	return xs
}

// Holes returns the gaps within merged that are not covered by any extent
// of xs. merged must come from MergeWithHoles(xs, ...) (i.e., cover xs).
func Holes(xs, merged []Extent) []Extent {
	covered := Merge(xs)
	var holes []Extent
	i := 0
	for _, m := range merged {
		pos := m.Off
		for i < len(covered) && covered[i].End() <= m.Off {
			i++
		}
		j := i
		for j < len(covered) && covered[j].Off < m.End() {
			c := covered[j]
			if c.Off > pos {
				holes = append(holes, Extent{Off: pos, Len: c.Off - pos})
			}
			if c.End() > pos {
				pos = c.End()
			}
			j++
		}
		if pos < m.End() {
			holes = append(holes, Extent{Off: pos, Len: m.End() - pos})
		}
	}
	return holes
}

// AlignTo expands each extent outward to unit boundaries and re-merges the
// result (DualPar aligns cache fills to the 64 KB stripe chunk).
func AlignTo(xs []Extent, unit int64) []Extent {
	if unit <= 1 {
		return Merge(xs)
	}
	cp := make([]Extent, 0, len(xs))
	for _, e := range xs {
		if e.Len <= 0 {
			continue
		}
		lo := e.Off / unit * unit
		hi := (e.End() + unit - 1) / unit * unit
		cp = append(cp, Extent{Off: lo, Len: hi - lo})
	}
	return Merge(cp)
}

// SplitAt chops extents at multiples of unit, yielding pieces that each lie
// within a single unit-sized block (used for chunk-granular caching).
func SplitAt(xs []Extent, unit int64) []Extent {
	var out []Extent
	VisitSplit(xs, unit, func(e Extent) { out = append(out, e) })
	return out
}

// VisitSplit is SplitAt without the materialized result: it calls fn for
// each unit-aligned piece in order. Hot paths that stripe extents across
// servers use it to avoid allocating the intermediate piece list.
func VisitSplit(xs []Extent, unit int64, fn func(Extent)) {
	if unit <= 0 {
		panic("ext: non-positive unit")
	}
	for _, e := range xs {
		for e.Len > 0 {
			room := unit - e.Off%unit
			if room > e.Len {
				room = e.Len
			}
			fn(Extent{Off: e.Off, Len: room})
			e.Off += room
			e.Len -= room
		}
	}
}
