package ext

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMergeAdjacent(t *testing.T) {
	got := Merge([]Extent{{0, 10}, {10, 10}, {25, 5}})
	want := []Extent{{0, 20}, {25, 5}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Merge = %v, want %v", got, want)
	}
}

func TestMergeOverlapping(t *testing.T) {
	got := Merge([]Extent{{0, 10}, {5, 10}})
	if len(got) != 1 || got[0] != (Extent{0, 15}) {
		t.Fatalf("Merge = %v", got)
	}
}

func TestMergeUnsortedInput(t *testing.T) {
	got := Merge([]Extent{{30, 5}, {0, 10}, {10, 5}})
	if len(got) != 2 || got[0] != (Extent{0, 15}) || got[1] != (Extent{30, 5}) {
		t.Fatalf("Merge = %v", got)
	}
}

func TestMergeDropsEmpty(t *testing.T) {
	got := Merge([]Extent{{5, 0}, {10, 5}})
	if len(got) != 1 || got[0] != (Extent{10, 5}) {
		t.Fatalf("Merge = %v", got)
	}
	if Merge(nil) != nil {
		t.Fatalf("Merge(nil) != nil")
	}
}

func TestMergeWithHolesAbsorbsSmallGaps(t *testing.T) {
	xs := []Extent{{0, 10}, {14, 10}, {100, 10}}
	got := MergeWithHoles(xs, 4)
	if len(got) != 2 || got[0] != (Extent{0, 24}) || got[1] != (Extent{100, 10}) {
		t.Fatalf("MergeWithHoles = %v", got)
	}
}

func TestMergeWithHolesRespectsThreshold(t *testing.T) {
	xs := []Extent{{0, 10}, {15, 10}}
	got := MergeWithHoles(xs, 4) // gap of 5 > 4
	if len(got) != 2 {
		t.Fatalf("gap above threshold merged: %v", got)
	}
}

func TestHoles(t *testing.T) {
	xs := []Extent{{0, 10}, {14, 6}, {30, 10}}
	merged := MergeWithHoles(xs, 100)
	holes := Holes(xs, merged)
	want := []Extent{{10, 4}, {20, 10}}
	if len(holes) != 2 || holes[0] != want[0] || holes[1] != want[1] {
		t.Fatalf("Holes = %v, want %v", holes, want)
	}
}

func TestHolesNoneWhenContiguous(t *testing.T) {
	xs := []Extent{{0, 10}, {10, 10}}
	if h := Holes(xs, Merge(xs)); len(h) != 0 {
		t.Fatalf("Holes = %v, want none", h)
	}
}

func TestAlignTo(t *testing.T) {
	got := AlignTo([]Extent{{5, 10}, {70, 5}}, 64)
	// [5,15) -> [0,64); [70,75) -> [64,128) ; adjacent -> merged
	if len(got) != 1 || got[0] != (Extent{0, 128}) {
		t.Fatalf("AlignTo = %v", got)
	}
}

func TestAlignToUnitOneIsMerge(t *testing.T) {
	got := AlignTo([]Extent{{3, 4}}, 1)
	if len(got) != 1 || got[0] != (Extent{3, 4}) {
		t.Fatalf("AlignTo(1) = %v", got)
	}
}

func TestSplitAt(t *testing.T) {
	got := SplitAt([]Extent{{10, 120}}, 64)
	want := []Extent{{10, 54}, {64, 64}, {128, 2}}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("SplitAt = %v, want %v", got, want)
	}
}

func TestClip(t *testing.T) {
	e := Extent{10, 20}
	if c, ok := e.Clip(15, 25); !ok || c != (Extent{15, 10}) {
		t.Fatalf("Clip = %v,%v", c, ok)
	}
	if _, ok := e.Clip(40, 50); ok {
		t.Fatalf("Clip outside returned ok")
	}
}

func TestOverlapsContains(t *testing.T) {
	a, b := Extent{0, 10}, Extent{9, 5}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatalf("expected overlap")
	}
	c := Extent{10, 5}
	if a.Overlaps(c) {
		t.Fatalf("adjacent extents reported overlapping")
	}
	if !a.Contains(2, 5) || a.Contains(8, 5) {
		t.Fatalf("Contains wrong")
	}
}

// Property: Merge output is sorted, non-overlapping, non-adjacent, and
// preserves coverage.
func TestMergeProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]Extent, int(n)%32)
		for i := range xs {
			xs[i] = Extent{Off: r.Int63n(1000), Len: r.Int63n(100)}
		}
		m := Merge(xs)
		for i := 1; i < len(m); i++ {
			if m[i].Off <= m[i-1].End() {
				return false // overlap or adjacency survived
			}
		}
		// Every input byte is covered.
		for _, e := range xs {
			for _, b := range []int64{e.Off, e.End() - 1} {
				if e.Len == 0 {
					continue
				}
				found := false
				for _, me := range m {
					if b >= me.Off && b < me.End() {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MergeWithHoles(xs, h) total = Total(Merge(xs)) + Total(Holes).
func TestInsertCases(t *testing.T) {
	cases := []struct {
		xs   []Extent
		e    Extent
		want []Extent
	}{
		{nil, Extent{5, 5}, []Extent{{5, 5}}},
		{[]Extent{{0, 5}}, Extent{10, 5}, []Extent{{0, 5}, {10, 5}}},                           // after, disjoint
		{[]Extent{{10, 5}}, Extent{0, 5}, []Extent{{0, 5}, {10, 5}}},                           // before, disjoint
		{[]Extent{{0, 5}}, Extent{5, 5}, []Extent{{0, 10}}},                                    // adjacent right
		{[]Extent{{5, 5}}, Extent{0, 5}, []Extent{{0, 10}}},                                    // adjacent left
		{[]Extent{{0, 5}, {10, 5}}, Extent{4, 7}, []Extent{{0, 15}}},                           // bridges two
		{[]Extent{{0, 5}, {10, 5}, {20, 5}}, Extent{2, 1}, []Extent{{0, 5}, {10, 5}, {20, 5}}}, // contained
		{[]Extent{{0, 5}, {10, 5}, {20, 5}}, Extent{6, 20}, []Extent{{0, 5}, {6, 20}}},         // swallows tail
		{[]Extent{{10, 5}}, Extent{12, 1}, []Extent{{10, 5}}},                                  // fully inside
		{[]Extent{{10, 5}}, Extent{3, 0}, []Extent{{10, 5}}},                                   // zero length no-op
	}
	for _, c := range cases {
		got := Insert(append([]Extent(nil), c.xs...), c.e)
		if len(got) != len(c.want) {
			t.Fatalf("Insert(%v, %v) = %v, want %v", c.xs, c.e, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Insert(%v, %v) = %v, want %v", c.xs, c.e, got, c.want)
			}
		}
	}
}

// Property: folding Insert over any extent sequence yields exactly
// Merge of the whole sequence — the canonical forms are identical.
func TestInsertEquivalentToMerge(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]Extent, int(n)%48)
		var folded []Extent
		for i := range xs {
			xs[i] = Extent{Off: r.Int63n(300), Len: r.Int63n(40)}
			folded = Insert(folded, xs[i])
		}
		want := Merge(xs)
		if len(folded) != len(want) {
			return false
		}
		for i := range want {
			if folded[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHolesAccounting(t *testing.T) {
	f := func(seed int64, n uint8, hole uint16) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]Extent, 1+int(n)%16)
		for i := range xs {
			xs[i] = Extent{Off: r.Int63n(4096), Len: 1 + r.Int63n(256)}
		}
		maxHole := int64(hole % 512)
		merged := MergeWithHoles(xs, maxHole)
		holes := Holes(xs, merged)
		return Total(merged) == Total(Merge(xs))+Total(holes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SplitAt preserves total bytes and every piece stays within one
// unit block.
func TestSplitAtProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]Extent, int(n)%16)
		for i := range xs {
			xs[i] = Extent{Off: r.Int63n(1 << 20), Len: 1 + r.Int63n(1<<18)}
		}
		unit := int64(64 << 10)
		pieces := SplitAt(xs, unit)
		if Total(pieces) != Total(xs) {
			return false
		}
		for _, p := range pieces {
			if p.Off/unit != (p.End()-1)/unit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
