package ext

import "testing"

// FuzzMergeWithHoles checks the extent algebra's invariants under arbitrary
// inputs: merged output is sorted and disjoint, covers the input, and hole
// accounting balances exactly.
func FuzzMergeWithHoles(f *testing.F) {
	f.Add(int64(0), int64(10), int64(12), int64(4), int64(2))
	f.Add(int64(100), int64(1), int64(50), int64(100), int64(0))
	f.Add(int64(5), int64(0), int64(5), int64(5), int64(64))
	f.Fuzz(func(t *testing.T, aOff, aLen, bOff, bLen, hole int64) {
		clamp := func(v int64) int64 {
			if v < 0 {
				v = -v
			}
			return v % (1 << 40)
		}
		xs := []Extent{
			{Off: clamp(aOff), Len: clamp(aLen)},
			{Off: clamp(bOff), Len: clamp(bLen)},
		}
		maxHole := clamp(hole)
		merged := MergeWithHoles(xs, maxHole)
		for i := 1; i < len(merged); i++ {
			if merged[i].Off <= merged[i-1].End()+maxHole {
				t.Fatalf("gap <= maxHole survived: %v (hole %d)", merged, maxHole)
			}
		}
		// Coverage: every input byte range must lie inside some output.
		for _, e := range xs {
			if e.Len == 0 {
				continue
			}
			covered := false
			for _, m := range merged {
				if m.Contains(e.Off, e.Len) {
					covered = true
				}
			}
			if !covered {
				t.Fatalf("input %v not covered by %v", e, merged)
			}
		}
		// Accounting: merged = covered + holes.
		holes := Holes(xs, merged)
		if Total(merged) != Total(Merge(xs))+Total(holes) {
			t.Fatalf("accounting broken: merged %d != covered %d + holes %d",
				Total(merged), Total(Merge(xs)), Total(holes))
		}
		// Chunk splitting conserves bytes.
		if pieces := SplitAt(merged, 64<<10); Total(pieces) != Total(merged) {
			t.Fatalf("SplitAt lost bytes")
		}
	})
}
