package ext

import "testing"

// eq compares extent slices element-wise.
func eq(a, b []Extent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// clampOff bounds fuzz-supplied offsets/lengths to non-negative values small
// enough that End() cannot overflow.
func clampOff(v int64) int64 {
	if v < 0 {
		v = -v
	}
	return v % (1 << 40)
}

// FuzzMergeWithHoles checks the extent algebra's invariants under arbitrary
// inputs: merged output is sorted and disjoint, covers the input, and hole
// accounting balances exactly.
func FuzzMergeWithHoles(f *testing.F) {
	f.Add(int64(0), int64(10), int64(12), int64(4), int64(2))
	f.Add(int64(100), int64(1), int64(50), int64(100), int64(0))
	f.Add(int64(5), int64(0), int64(5), int64(5), int64(64))
	f.Fuzz(func(t *testing.T, aOff, aLen, bOff, bLen, hole int64) {
		clamp := func(v int64) int64 {
			if v < 0 {
				v = -v
			}
			return v % (1 << 40)
		}
		xs := []Extent{
			{Off: clamp(aOff), Len: clamp(aLen)},
			{Off: clamp(bOff), Len: clamp(bLen)},
		}
		maxHole := clamp(hole)
		merged := MergeWithHoles(xs, maxHole)
		for i := 1; i < len(merged); i++ {
			if merged[i].Off <= merged[i-1].End()+maxHole {
				t.Fatalf("gap <= maxHole survived: %v (hole %d)", merged, maxHole)
			}
		}
		// Coverage: every input byte range must lie inside some output.
		for _, e := range xs {
			if e.Len == 0 {
				continue
			}
			covered := false
			for _, m := range merged {
				if m.Contains(e.Off, e.Len) {
					covered = true
				}
			}
			if !covered {
				t.Fatalf("input %v not covered by %v", e, merged)
			}
		}
		// Accounting: merged = covered + holes.
		holes := Holes(xs, merged)
		if Total(merged) != Total(Merge(xs))+Total(holes) {
			t.Fatalf("accounting broken: merged %d != covered %d + holes %d",
				Total(merged), Total(Merge(xs)), Total(holes))
		}
		// Chunk splitting conserves bytes.
		if pieces := SplitAt(merged, 64<<10); Total(pieces) != Total(merged) {
			t.Fatalf("SplitAt lost bytes")
		}
	})
}

// FuzzHolesReconstruct pins the contract Holes documents but never checks:
// for merged = MergeWithHoles(xs, h), the covered input plus the holes must
// reconstruct merged exactly, and the holes must be disjoint from the input.
func FuzzHolesReconstruct(f *testing.F) {
	f.Add(int64(0), int64(10), int64(12), int64(4), int64(30), int64(5), int64(8))
	f.Add(int64(100), int64(1), int64(50), int64(100), int64(0), int64(0), int64(0))
	f.Add(int64(5), int64(0), int64(5), int64(5), int64(7), int64(9), int64(64))
	f.Fuzz(func(t *testing.T, aOff, aLen, bOff, bLen, cOff, cLen, hole int64) {
		xs := []Extent{
			{Off: clampOff(aOff), Len: clampOff(aLen)},
			{Off: clampOff(bOff), Len: clampOff(bLen)},
			{Off: clampOff(cOff), Len: clampOff(cLen)},
		}
		merged := MergeWithHoles(xs, clampOff(hole))
		covered := Merge(xs)
		holes := Holes(xs, merged)
		// Exact reconstruction: covered ∪ holes == merged.
		if got := Merge(append(append([]Extent(nil), covered...), holes...)); !eq(got, merged) {
			t.Fatalf("covered %v + holes %v reconstruct %v, want %v", covered, holes, got, merged)
		}
		// Holes never overlap input data.
		for _, h := range holes {
			for _, c := range covered {
				if h.Overlaps(c) {
					t.Fatalf("hole %v overlaps covered %v", h, c)
				}
			}
		}
	})
}

// FuzzAlignSplitRoundTrip checks the chunk-granularity transforms:
// AlignTo yields unit-aligned extents covering the input with bounded
// expansion, and SplitAt is a pure partition — merging the pieces restores
// the merged input exactly and every piece stays inside one unit block.
func FuzzAlignSplitRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(10), int64(100), int64(28), int64(16))
	f.Add(int64(7), int64(93), int64(64), int64(64), int64(64))
	f.Add(int64(1), int64(1), int64(2), int64(2), int64(1))
	f.Fuzz(func(t *testing.T, aOff, aLen, bOff, bLen, unit int64) {
		xs := []Extent{
			{Off: clampOff(aOff), Len: clampOff(aLen)},
			{Off: clampOff(bOff), Len: clampOff(bLen)},
		}
		u := clampOff(unit)%(1<<20) + 1
		aligned := AlignTo(xs, u)
		merged := Merge(xs)
		for _, a := range aligned {
			if u > 1 && (a.Off%u != 0 || a.End()%u != 0) {
				t.Fatalf("AlignTo(%v, %d) produced unaligned %v", xs, u, a)
			}
		}
		for _, m := range merged {
			covered := false
			for _, a := range aligned {
				if a.Contains(m.Off, m.Len) {
					covered = true
				}
			}
			if !covered {
				t.Fatalf("aligned %v does not cover %v", aligned, m)
			}
		}
		// Expansion bound: at most unit-1 bytes added on each side of each
		// merged extent.
		if Total(aligned) > Total(merged)+int64(len(merged))*2*(u-1) {
			t.Fatalf("AlignTo expanded %d bytes to %d with unit %d", Total(merged), Total(aligned), u)
		}
		// SplitAt round-trips through Merge and respects block boundaries.
		pieces := SplitAt(merged, u)
		if got := Merge(pieces); !eq(got, merged) {
			t.Fatalf("Merge(SplitAt(%v, %d)) = %v, want %v", merged, u, got, merged)
		}
		for _, p := range pieces {
			if p.Off/u != (p.End()-1)/u {
				t.Fatalf("piece %v spans a %d-byte boundary", p, u)
			}
		}
	})
}
