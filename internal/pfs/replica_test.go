package pfs

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dualpar/internal/disk"
	"dualpar/internal/ext"
	"dualpar/internal/fs"
	"dualpar/internal/iosched"
	"dualpar/internal/netsim"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

func TestReplicaOffsetsDistinct(t *testing.T) {
	cases := []struct{ n, replicas, rack int }{
		{9, 2, 3}, {9, 3, 3}, {9, 9, 3}, {3, 2, 3}, {3, 3, 3},
		{4, 2, 4}, {5, 3, 0}, {7, 3, 7},
	}
	for _, c := range cases {
		offs := replicaOffsets(c.n, c.replicas, c.rack)
		if len(offs) != max(c.replicas, 1) {
			t.Fatalf("n=%d r=%d rack=%d: %d offsets", c.n, c.replicas, c.rack, len(offs))
		}
		seen := map[int]bool{}
		for _, off := range offs {
			if off < 0 || off >= c.n {
				t.Fatalf("n=%d r=%d rack=%d: offset %d out of range", c.n, c.replicas, c.rack, off)
			}
			if seen[off] {
				t.Fatalf("n=%d r=%d rack=%d: offset %d repeated in %v — two ranks on one server", c.n, c.replicas, c.rack, off, offs)
			}
			seen[off] = true
		}
		if offs[0] != 0 {
			t.Fatalf("rank 0 offset = %d, want 0 (primary placement must not move)", offs[0])
		}
	}
}

func TestReplicaOffsetsRackStride(t *testing.T) {
	// With 9 servers and rack size 3, ranks land one rack apart.
	offs := replicaOffsets(9, 3, 3)
	want := []int{0, 3, 6}
	for i, off := range offs {
		if off != want[i] {
			t.Fatalf("offsets = %v, want %v", offs, want)
		}
	}
}

func TestReplicaFileRoundTrip(t *testing.T) {
	for _, name := range []string{"a.dat", "dir#r/b", "x#r2.old"} {
		for rank := 0; rank < 4; rank++ {
			base, r := replicaBase(replicaFile(name, rank))
			if base != name || r != rank {
				t.Fatalf("replicaBase(replicaFile(%q, %d)) = %q, %d", name, rank, base, r)
			}
		}
	}
	if got := replicaFile("f", 0); got != "f" {
		t.Fatalf("rank 0 must keep the plain name, got %q", got)
	}
}

func TestWriteQuorumDefaults(t *testing.T) {
	quorum := func(replicas, cfgQuorum int) int {
		cfg := DefaultConfig()
		cfg.Replicas = replicas
		cfg.WriteQuorum = cfgQuorum
		fsys := &FileSystem{cfg: cfg}
		return fsys.writeQuorum()
	}
	cases := []struct{ replicas, cfgQuorum, want int }{
		{1, 0, 1}, {2, 0, 2}, {3, 0, 2}, {4, 0, 3}, {5, 0, 3},
		{3, 1, 1}, {3, 3, 3},
		{3, 7, 2}, // over-large configured quorum falls back to majority
	}
	for _, c := range cases {
		if got := quorum(c.replicas, c.cfgQuorum); got != c.want {
			t.Fatalf("writeQuorum(replicas=%d, cfg=%d) = %d, want %d",
				c.replicas, c.cfgQuorum, got, c.want)
		}
	}
}

func TestRetryErrorWrapsSentinel(t *testing.T) {
	err := fmt.Errorf("crm: %w", &RetryError{Op: "write", File: "f.dat", Server: 3})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatal("RetryError does not unwrap to ErrRetriesExhausted through wrapping")
	}
	var re *RetryError
	if !errors.As(err, &re) || re.Server != 3 || re.Op != "write" {
		t.Fatalf("errors.As lost the typed fields: %+v", re)
	}
}

func TestOverlaySegsMaxWins(t *testing.T) {
	var segs []VersionSeg
	segs = overlaySegs(segs, ext.Extent{Off: 0, Len: 100}, 5, false)
	// A stale lower version must not regress stamped bytes.
	segs = overlaySegs(segs, ext.Extent{Off: 20, Len: 30}, 3, false)
	if len(segs) != 1 || segs[0].Ver != 5 || segs[0].Ext != (ext.Extent{Off: 0, Len: 100}) {
		t.Fatalf("lower version regressed stamps: %+v", segs)
	}
	// A newer version splits the range.
	segs = overlaySegs(segs, ext.Extent{Off: 40, Len: 10}, 9, false)
	want := []VersionSeg{
		{Ext: ext.Extent{Off: 0, Len: 40}, Ver: 5},
		{Ext: ext.Extent{Off: 40, Len: 10}, Ver: 9},
		{Ext: ext.Extent{Off: 50, Len: 50}, Ver: 5},
	}
	if len(segs) != len(want) {
		t.Fatalf("segs = %+v, want %+v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segs[%d] = %+v, want %+v", i, segs[i], want[i])
		}
	}
	// force overwrites regardless of ordering (the corruption path).
	segs = overlaySegs(segs, ext.Extent{Off: 0, Len: 100}, -1, true)
	if len(segs) != 1 || segs[0].Ver != -1 {
		t.Fatalf("force overlay did not overwrite: %+v", segs)
	}
}

func TestOverlaySegsGapFill(t *testing.T) {
	segs := overlaySegs(nil, ext.Extent{Off: 100, Len: 50}, 2, false)
	segs = overlaySegs(segs, ext.Extent{Off: 0, Len: 200}, 1, false)
	want := []VersionSeg{
		{Ext: ext.Extent{Off: 0, Len: 100}, Ver: 1},
		{Ext: ext.Extent{Off: 100, Len: 50}, Ver: 2},
		{Ext: ext.Extent{Off: 150, Len: 50}, Ver: 1},
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segs = %+v, want %+v", segs, want)
		}
	}
}

func TestCoalesceSegsMergesEqualRuns(t *testing.T) {
	segs := coalesceSegs([]VersionSeg{
		{Ext: ext.Extent{Off: 0, Len: 10}, Ver: 4},
		{Ext: ext.Extent{Off: 10, Len: 10}, Ver: 4},
		{Ext: ext.Extent{Off: 20, Len: 10}, Ver: 5},
		{Ext: ext.Extent{Off: 40, Len: 10}, Ver: 5}, // gap: must not merge
	})
	if len(segs) != 3 || segs[0].Ext.Len != 20 {
		t.Fatalf("coalesce = %+v", segs)
	}
}

// testReplicatedFS is testFS with a replica count.
func testReplicatedFS(nservers, replicas int) (*sim.Kernel, *FileSystem) {
	k := sim.NewKernel(1)
	net := netsim.New(k, netsim.DefaultConfig())
	var nodes []int
	var stores []*fs.Store
	for i := 0; i < nservers; i++ {
		p := disk.DefaultParams()
		p.Sectors = 1 << 24
		st := fs.New(k, fmt.Sprintf("s%d", i), disk.New(p), iosched.NewCFQ(), fs.DefaultConfig(), 10000+i)
		nodes = append(nodes, 1+i)
		stores = append(stores, st)
	}
	cfg := DefaultConfig()
	cfg.Replicas = replicas
	return k, New(k, net, cfg, 0, nodes, stores)
}

func TestReplicatedWriteStampsEveryReplica(t *testing.T) {
	k, fsys := testReplicatedFS(3, 2)
	tr := fsys.EnableIntegrity()
	cl := fsys.Client(100)
	unit := fsys.cfg.StripeUnit
	k.Spawn("writer", func(p *sim.Proc) {
		cl.Create(p, "f", 3*unit)
		if err := cl.Write(p, "f", []ext.Extent{{Off: 0, Len: 3 * unit}}, 1, obs.Ctx{}); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	k.RunUntil(time.Minute)
	// Every stripe's bytes must carry the same stamp on both its replicas.
	for primary := 0; primary < 3; primary++ {
		pSrv := fsys.replicaServer(primary, 0).Index
		rSrv := fsys.replicaServer(primary, 1).Index
		local := ext.Extent{Off: 0, Len: unit}
		p0 := tr.query(pSrv, "f", local)
		p1 := tr.query(rSrv, replicaFile("f", 1), local)
		if len(p0) != 1 || p0[0].Ver == 0 {
			t.Fatalf("primary %d (server %d) not stamped: %+v", primary, pSrv, p0)
		}
		if len(p1) != 1 || p1[0].Ver != p0[0].Ver {
			t.Fatalf("replica of primary %d (server %d) = %+v, want ver %d", primary, rSrv, p1, p0[0].Ver)
		}
	}
	exp := tr.Expected("f")
	if len(exp) != 1 || exp[0].Ext != (ext.Extent{Off: 0, Len: 3 * unit}) || exp[0].Ver == 0 {
		t.Fatalf("expected content = %+v", exp)
	}
}

func TestReadVersionsRoundTrip(t *testing.T) {
	k, fsys := testReplicatedFS(3, 2)
	fsys.EnableIntegrity()
	cl := fsys.Client(100)
	unit := fsys.cfg.StripeUnit
	var got []VersionSeg
	k.Spawn("rw", func(p *sim.Proc) {
		cl.Create(p, "f", 4*unit)
		if err := cl.Write(p, "f", []ext.Extent{{Off: unit / 2, Len: 2 * unit}}, 1, obs.Ctx{}); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		var err error
		got, err = cl.ReadVersions(p, "f", []ext.Extent{{Off: unit / 2, Len: 2 * unit}}, 1)
		if err != nil {
			t.Errorf("read versions: %v", err)
		}
	})
	k.RunUntil(time.Minute)
	var total int64
	for _, s := range got {
		if s.Ver == 0 {
			t.Fatalf("unwritten gap in read-back of a fully written range: %+v", got)
		}
		total += s.Ext.Len
	}
	if total != 2*unit {
		t.Fatalf("read back %d bytes of stamps, want %d", total, 2*unit)
	}
}

func TestReplicasExceedServersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Replicas > servers must panic at construction")
		}
	}()
	testReplicatedFS(2, 3)
}
