package pfs

import (
	"errors"
	"fmt"
)

// ErrRetriesExhausted is the sentinel for a request the client gave up on:
// the retry watchdog fired MaxRetries times and the failure detector marks
// the target server — and every replica of its stripes — down. Callers
// match it with errors.Is and surface it as data loss / unavailability
// rather than stalling.
var ErrRetriesExhausted = errors.New("pfs: retries exhausted")

// RetryError carries which operation on which server exhausted its
// retries. It wraps ErrRetriesExhausted.
type RetryError struct {
	Op     string // "read" or "write"
	File   string
	Server int // primary data server of the affected stripes
}

// Error implements error.
func (e *RetryError) Error() string {
	return fmt.Sprintf("pfs: %s %q: server %d and all replicas down: %v",
		e.Op, e.File, e.Server, ErrRetriesExhausted)
}

// Unwrap lets errors.Is(err, ErrRetriesExhausted) match.
func (e *RetryError) Unwrap() error { return ErrRetriesExhausted }
