package pfs

import (
	"fmt"
	"sort"

	"dualpar/internal/ext"
)

// VerifyDurable is the audit coherence oracle: it checks that every byte of
// the given logical extents — typically the merged ranges a CRM writeback
// cycle just flushed — is durably stored with a version at least as new as
// the one the writers recorded. Two failure shapes surface:
//
//   - an expected-version gap (version 0): the write was marked clean in the
//     cache but never recorded against the file system — a dropped writeback;
//   - a stale or missing replica stamp: no replica of a stripe holds an
//     applied version >= the expected one — the durable state lags the
//     acknowledged write.
//
// The applied comparison is >= rather than ==: a racing writer's stamp can
// land on a replica before that writer's own recordExpected runs, so newer
// durable data is coherent, older is not. The walk is pure bookkeeping over
// the integrity tracker — no simulation events, so auditing does not perturb
// the timeline. It requires EnableIntegrity; with no tracker it reports
// nothing.
func (fsys *FileSystem) VerifyDurable(name string, extents []ext.Extent) error {
	t := fsys.tracker
	if t == nil {
		return nil
	}
	n := int64(fsys.NumServers())
	unit := fsys.cfg.StripeUnit
	for _, piece := range ext.SplitAt(ext.Merge(extents), unit) {
		stripe := piece.Off / unit
		primary := int(stripe % n)
		localBase := (stripe/n)*unit + piece.Off%unit
		for _, exp := range segsOver(t.Expected(name), piece) {
			if exp.Ver <= 0 {
				return fmt.Errorf("%s [%d,%d): %d bytes marked clean but never recorded as written",
					name, exp.Ext.Off, exp.Ext.End(), exp.Ext.Len)
			}
			// Best applied version per byte across the stripe's replicas,
			// in the servers' local coordinates.
			local := ext.Extent{Off: localBase + (exp.Ext.Off - piece.Off), Len: exp.Ext.Len}
			var best []VersionSeg
			for rank := 0; rank < fsys.replicas(); rank++ {
				srv := fsys.replicaServer(primary, rank)
				for _, s := range t.query(srv.Index, replicaFile(name, rank), local) {
					if s.Ver > 0 {
						best = overlaySegs(best, s.Ext, s.Ver, false)
					}
				}
			}
			cur := local.Off
			for _, b := range best {
				if b.Ext.Off > cur {
					break
				}
				if b.Ver < exp.Ver {
					return fmt.Errorf("%s [%d,%d): durable version %d older than expected %d on primary %d",
						name, exp.Ext.Off, exp.Ext.End(), b.Ver, exp.Ver, primary)
				}
				cur = b.Ext.End()
			}
			if cur < local.End() {
				return fmt.Errorf("%s [%d,%d): %d durable bytes missing on primary %d (expected version %d)",
					name, exp.Ext.Off, exp.Ext.End(), local.End()-cur, primary, exp.Ver)
			}
		}
	}
	return nil
}

// segsOver returns the slices of a sorted seg list overlapping e, with
// uncovered gaps reported as version 0 (the same contract as Tracker.query,
// for an arbitrary seg list).
func segsOver(segs []VersionSeg, e ext.Extent) []VersionSeg {
	var out []VersionSeg
	cur := e.Off
	// The list is sorted and non-overlapping: binary-search the first
	// overlapping seg and stop at the first one past the extent.
	i := sort.Search(len(segs), func(i int) bool { return segs[i].Ext.End() > e.Off })
	for ; i < len(segs); i++ {
		s := segs[i]
		if s.Ext.Off >= e.End() {
			break
		}
		off := max(s.Ext.Off, e.Off)
		end := min(s.Ext.End(), e.End())
		if off > cur {
			out = append(out, VersionSeg{Ext: ext.Extent{Off: cur, Len: off - cur}})
		}
		out = append(out, VersionSeg{Ext: ext.Extent{Off: off, Len: end - off}, Ver: s.Ver})
		cur = end
	}
	if cur < e.End() {
		out = append(out, VersionSeg{Ext: ext.Extent{Off: cur, Len: e.End() - cur}})
	}
	return out
}
