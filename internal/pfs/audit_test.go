package pfs

import (
	"strings"
	"testing"

	"dualpar/internal/ext"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// TestVerifyDurableLegacyPath pins the coherence oracle on the unreplicated
// path: legacy writes now get version stamps when the tracker is on, so a
// completed write verifies and untouched ranges fail as never-written.
func TestVerifyDurableLegacyPath(t *testing.T) {
	k, fsys := testFS(3)
	fsys.EnableIntegrity()
	unit := fsys.cfg.StripeUnit
	w := []ext.Extent{{Off: 0, Len: 4 * unit}}
	k.Spawn("client", func(p *sim.Proc) {
		cl := fsys.Client(100)
		cl.Create(p, "a.dat", 8*unit)
		cl.Write(p, "a.dat", w, 1, obs.Ctx{})
	})
	k.Run()

	if err := fsys.VerifyDurable("a.dat", w); err != nil {
		t.Fatalf("completed write fails coherence: %v", err)
	}
	err := fsys.VerifyDurable("a.dat", []ext.Extent{{Off: 5 * unit, Len: unit}})
	if err == nil || !strings.Contains(err.Error(), "never recorded") {
		t.Fatalf("unwritten range: err = %v, want never-recorded", err)
	}
}

// TestVerifyDurableCatchesDroppedApply models a writeback the servers never
// applied (expected recorded, durable state stale) and a corrupted replica.
func TestVerifyDurableCatchesDroppedApply(t *testing.T) {
	k, fsys := testFS(3)
	tr := fsys.EnableIntegrity()
	unit := fsys.cfg.StripeUnit
	w := []ext.Extent{{Off: 0, Len: unit}}
	k.Spawn("client", func(p *sim.Proc) {
		cl := fsys.Client(100)
		cl.Create(p, "b.dat", 8*unit)
		cl.Write(p, "b.dat", w, 1, obs.Ctx{})
	})
	k.Run()

	// The write landed; now record a newer expected version with no matching
	// apply — the shape of a dropped writeback.
	tr.recordExpected("b.dat", w, 1<<40)
	err := fsys.VerifyDurable("b.dat", w)
	if err == nil || !strings.Contains(err.Error(), "older than expected") {
		t.Fatalf("stale durable state: err = %v, want older-than-expected", err)
	}

	// Corruption on the only replica voids its stamp entirely.
	k2, fsys2 := testFS(3)
	tr2 := fsys2.EnableIntegrity()
	k2.Spawn("client", func(p *sim.Proc) {
		cl := fsys2.Client(100)
		cl.Create(p, "c.dat", 8*unit)
		cl.Write(p, "c.dat", w, 1, obs.Ctx{})
	})
	k2.Run()
	tr2.Corrupt(0, "c.dat", ext.Extent{Off: 0, Len: unit})
	err = fsys2.VerifyDurable("c.dat", w)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("corrupted replica: err = %v, want durable-bytes-missing", err)
	}
}

// TestVerifyDurableReplicated exercises the oracle across a replicated
// write: every stripe must be durable on at least one replica at the
// expected version.
func TestVerifyDurableReplicated(t *testing.T) {
	k, fsys := testFS(4)
	fsys.cfg.Replicas = 2
	fsys.offsets = replicaOffsets(4, 2, fsys.cfg.RackSize)
	fsys.EnableIntegrity()
	unit := fsys.cfg.StripeUnit
	w := []ext.Extent{{Off: 0, Len: 8 * unit}}
	k.Spawn("client", func(p *sim.Proc) {
		cl := fsys.Client(100)
		cl.Create(p, "r.dat", 16*unit)
		cl.Write(p, "r.dat", w, 1, obs.Ctx{})
	})
	k.Run()
	if err := fsys.VerifyDurable("r.dat", w); err != nil {
		t.Fatalf("replicated write fails coherence: %v", err)
	}
}
