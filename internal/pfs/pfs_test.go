package pfs

import (
	"fmt"
	"testing"
	"time"

	"dualpar/internal/disk"
	"dualpar/internal/ext"
	"dualpar/internal/fs"
	"dualpar/internal/iosched"
	"dualpar/internal/netsim"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// testFS builds a kernel + network + file system with nservers data servers
// on nodes 1..nservers, metadata on node 0, clients on nodes 100+.
func testFS(nservers int) (*sim.Kernel, *FileSystem) {
	k := sim.NewKernel(1)
	net := netsim.New(k, netsim.DefaultConfig())
	var nodes []int
	var stores []*fs.Store
	for i := 0; i < nservers; i++ {
		p := disk.DefaultParams()
		p.Sectors = 1 << 24
		st := fs.New(k, fmt.Sprintf("s%d", i), disk.New(p), iosched.NewCFQ(), fs.DefaultConfig(), 10000+i)
		nodes = append(nodes, 1+i)
		stores = append(stores, st)
	}
	return k, New(k, net, DefaultConfig(), 0, nodes, stores)
}

func TestSplitRoundRobinStriping(t *testing.T) {
	_, fsys := testFS(3)
	unit := fsys.cfg.StripeUnit
	per := fsys.split([]ext.Extent{{Off: 0, Len: 6 * unit}})
	for i := 0; i < 3; i++ {
		if got := ext.Total(per[i]); got != 2*unit {
			t.Fatalf("server %d got %d bytes, want %d", i, got, 2*unit)
		}
		// Each server's chunks must be compacted contiguously.
		if len(per[i]) != 1 {
			t.Fatalf("server %d extents = %v, want single compacted run", i, per[i])
		}
	}
}

func TestSplitUnalignedExtent(t *testing.T) {
	_, fsys := testFS(2)
	unit := fsys.cfg.StripeUnit
	// Extent straddles the first stripe boundary, unaligned on both ends.
	per := fsys.split([]ext.Extent{{Off: unit / 2, Len: unit}})
	if ext.Total(per[0])+ext.Total(per[1]) != unit {
		t.Fatalf("split lost bytes: %v %v", per[0], per[1])
	}
	if per[0][0].Off != unit/2 || per[0][0].Len != unit/2 {
		t.Fatalf("server 0 local extent = %v", per[0])
	}
	if per[1][0].Off != 0 || per[1][0].Len != unit/2 {
		t.Fatalf("server 1 local extent = %v", per[1])
	}
}

func TestLocalOffset(t *testing.T) {
	_, fsys := testFS(3)
	unit := fsys.cfg.StripeUnit
	cases := []struct {
		off    int64
		server int
		local  int64
	}{
		{0, 0, 0},
		{unit, 1, 0},
		{2 * unit, 2, 0},
		{3 * unit, 0, unit},
		{3*unit + 5, 0, unit + 5},
	}
	for _, c := range cases {
		s, l := fsys.LocalOffset(c.off)
		if s != c.server || l != c.local {
			t.Fatalf("LocalOffset(%d) = %d,%d; want %d,%d", c.off, s, l, c.server, c.local)
		}
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	k, fsys := testFS(3)
	cl := fsys.Client(100)
	var opened int64
	k.Spawn("client", func(p *sim.Proc) {
		cl.Create(p, "f", 10<<20)
		opened = cl.Open(p, "f")
	})
	k.RunUntil(time.Minute)
	if opened != 10<<20 {
		t.Fatalf("Open size = %d, want 10MB", opened)
	}
}

func TestReadTouchesAllServers(t *testing.T) {
	k, fsys := testFS(3)
	cl := fsys.Client(100)
	k.Spawn("client", func(p *sim.Proc) {
		cl.Create(p, "f", 3<<20)
		cl.Read(p, "f", []ext.Extent{{Off: 0, Len: 3 << 20}}, 1, obs.Ctx{})
	})
	k.RunUntil(time.Minute)
	for i, srv := range fsys.Servers() {
		if srv.Store.BytesRead() != 1<<20 {
			t.Fatalf("server %d read %d bytes, want 1MB", i, srv.Store.BytesRead())
		}
	}
}

func TestWriteReachesDisks(t *testing.T) {
	k, fsys := testFS(2)
	cl := fsys.Client(100)
	var done time.Duration
	k.Spawn("client", func(p *sim.Proc) {
		cl.Write(p, "f", []ext.Extent{{Off: 0, Len: 1 << 20}}, 1, obs.Ctx{})
		done = p.Now()
	})
	k.RunUntil(time.Minute)
	var total int64
	for _, srv := range fsys.Servers() {
		total += srv.Store.Device().Stats().BytesWritten
	}
	if total < 1<<20 {
		t.Fatalf("disks saw %d write bytes, want >= 1MB (sync writes)", total)
	}
	if done == 0 {
		t.Fatalf("write never completed")
	}
	if got := fsys.Meta().sizes["f"]; got != 1<<20 {
		t.Fatalf("metadata size = %d, want 1MB", got)
	}
}

func TestParallelismSpeedsUpLargeRead(t *testing.T) {
	run := func(n int) time.Duration {
		k, fsys := testFS(n)
		cl := fsys.Client(100)
		var took time.Duration
		k.Spawn("client", func(p *sim.Proc) {
			cl.Create(p, "f", 64<<20)
			t0 := p.Now()
			cl.Read(p, "f", []ext.Extent{{Off: 0, Len: 64 << 20}}, 1, obs.Ctx{})
			took = p.Now() - t0
		})
		k.RunUntil(10 * time.Minute)
		return took
	}
	t1 := run(1)
	t4 := run(4)
	if t4 <= 0 || t1 <= 0 {
		t.Fatalf("reads did not complete: %v %v", t1, t4)
	}
	// With a GigE client downlink the network caps the gain; just require a
	// clear speedup from striping.
	if float64(t1)/float64(t4) < 1.5 {
		t.Fatalf("4-server read %v not much faster than 1-server %v", t4, t1)
	}
}

func TestConcurrentClientsShareServers(t *testing.T) {
	k, fsys := testFS(2)
	var finished int
	for i := 0; i < 4; i++ {
		i := i
		cl := fsys.Client(100 + i)
		k.Spawn("client", func(p *sim.Proc) {
			name := fmt.Sprintf("f%d", i)
			cl.Create(p, name, 1<<20)
			cl.Read(p, name, []ext.Extent{{Off: 0, Len: 1 << 20}}, i, obs.Ctx{})
			finished++
		})
	}
	k.RunUntil(10 * time.Minute)
	if finished != 4 {
		t.Fatalf("finished = %d, want 4", finished)
	}
}

func TestListIOSingleRequestPerServer(t *testing.T) {
	// A strided extent list within one client call becomes one server
	// request per data server (list I/O), not one per extent.
	k, fsys := testFS(2)
	cl := fsys.Client(100)
	var extents []ext.Extent
	for i := 0; i < 16; i++ {
		// 192 KB stride = 3 stripe units: alternates between the 2 servers.
		extents = append(extents, ext.Extent{Off: int64(i) * 192 << 10, Len: 4 << 10})
	}
	msgsBefore := int64(-1)
	k.Spawn("client", func(p *sim.Proc) {
		cl.Create(p, "f", 8<<20)
		msgsBefore = fsysNet(fsys).Messages()
		cl.Read(p, "f", extents, 1, obs.Ctx{})
	})
	k.RunUntil(time.Minute)
	msgs := fsysNet(fsys).Messages() - msgsBefore
	// 2 requests + 2 replies.
	if msgs != 4 {
		t.Fatalf("messages = %d, want 4 (one round trip per server)", msgs)
	}
}

func fsysNet(fsys *FileSystem) *netsim.Network { return fsys.net }

func TestValidateConfig(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.StripeUnit = 0 },
		func(c *Config) { c.WorkersPerServer = 0 },
		func(c *Config) { c.RequestCPU = -1 },
		func(c *Config) { c.HeaderBytes = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Fatalf("case %d passed", i)
		}
	}
}
