package pfs

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// TestSplitConservesBytes: striping must neither lose nor duplicate bytes,
// for arbitrary extent lists.
func TestSplitConservesBytes(t *testing.T) {
	_, fsys := testFS(3)
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := 1 + int(n)%16
		var extents []ext.Extent
		for i := 0; i < count; i++ {
			extents = append(extents, ext.Extent{
				Off: rng.Int63n(16 << 20),
				Len: 1 + rng.Int63n(256<<10),
			})
		}
		per := fsys.split(extents)
		var total int64
		for _, lst := range per {
			total += ext.Total(lst)
		}
		return total == ext.Total(extents)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSplitMatchesLocalOffset: every byte of a split extent must land on
// the server LocalOffset predicts.
func TestSplitMatchesLocalOffset(t *testing.T) {
	_, fsys := testFS(4)
	unit := fsys.cfg.StripeUnit
	f := func(off uint32) bool {
		o := int64(off) % (32 << 20)
		per := fsys.split([]ext.Extent{{Off: o, Len: 1}})
		srv, local := fsys.LocalOffset(o)
		for i, lst := range per {
			if len(lst) == 0 {
				continue
			}
			if i != srv || lst[0].Off != local {
				return false
			}
		}
		_ = unit
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestColdReadServesExactBytes: with a cold cache, a random read reaches
// the stores for exactly the requested volume (page rounding happens below
// the store API, so the store-level counters match the request exactly).
func TestColdReadServesExactBytes(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		k, fsys := testFS(3)
		cl := fsys.Client(100)
		rng := rand.New(rand.NewSource(seed))
		count := 1 + int(n)%8
		var extents []ext.Extent
		cursor := int64(0)
		for i := 0; i < count; i++ {
			cursor += rng.Int63n(1 << 20)
			l := 1 + rng.Int63n(128<<10)
			extents = append(extents, ext.Extent{Off: cursor, Len: l})
			cursor += l // disjoint extents: no double-count ambiguity
		}
		want := ext.Total(extents)
		ok := false
		k.Spawn("client", func(p *sim.Proc) {
			cl.Create(p, "f", cursor+1)
			cl.Read(p, "f", extents, 1, obs.Ctx{})
			var got int64
			for _, srv := range fsys.Servers() {
				got += srv.Store.BytesRead()
			}
			ok = got == want
		})
		k.RunUntil(time.Hour)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteServesExactBytes: same conservation for writes.
func TestWriteServesExactBytes(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		k, fsys := testFS(2)
		cl := fsys.Client(100)
		rng := rand.New(rand.NewSource(seed))
		count := 1 + int(n)%8
		var extents []ext.Extent
		cursor := int64(0)
		for i := 0; i < count; i++ {
			cursor += rng.Int63n(1 << 20)
			l := 1 + rng.Int63n(64<<10)
			extents = append(extents, ext.Extent{Off: cursor, Len: l})
			cursor += l
		}
		want := ext.Total(extents)
		ok := false
		k.Spawn("client", func(p *sim.Proc) {
			cl.Write(p, "f", extents, 1, obs.Ctx{})
			var got int64
			for _, srv := range fsys.Servers() {
				got += srv.Store.BytesWritten()
			}
			ok = got == want
		})
		k.RunUntil(time.Hour)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
