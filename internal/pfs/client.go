package pfs

import (
	"fmt"

	"dualpar/internal/ext"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// Client is a node-local handle to the file system. PVFS2 keeps no
// client-side data cache, so every call reaches the servers.
type Client struct {
	fsys *FileSystem
	Node int
}

// Client returns a client bound to the given network node.
func (fsys *FileSystem) Client(node int) *Client {
	return &Client{fsys: fsys, Node: node}
}

// Create registers the file with the metadata server and pre-allocates
// layout for size bytes on the data servers.
func (c *Client) Create(p *sim.Proc, name string, size int64) {
	fsys := c.fsys
	fsys.net.Send(p, c.Node, fsys.meta.Node, fsys.cfg.HeaderBytes)
	p.Sleep(fsys.cfg.MetaOpCPU)
	if size > fsys.meta.sizes[name] {
		fsys.meta.sizes[name] = size
	}
	// The metadata server instructs each data server to reserve layout;
	// modeled as a metadata-time operation (no data movement).
	per := fsys.split([]ext.Extent{{Off: 0, Len: size}})
	for i, srv := range fsys.servers {
		if len(per[i]) > 0 {
			srv.Store.Create(name, per[i][len(per[i])-1].End())
		}
	}
	fsys.net.Send(p, fsys.meta.Node, c.Node, fsys.cfg.HeaderBytes)
}

// Open contacts the metadata server and returns the file size it records.
func (c *Client) Open(p *sim.Proc, name string) int64 {
	fsys := c.fsys
	fsys.net.Send(p, c.Node, fsys.meta.Node, fsys.cfg.HeaderBytes)
	p.Sleep(fsys.cfg.MetaOpCPU)
	size := fsys.meta.sizes[name]
	fsys.net.Send(p, fsys.meta.Node, c.Node, fsys.cfg.HeaderBytes)
	return size
}

// Read performs a list-I/O read of the given file-global extents, blocking
// p until all data has arrived. origin tags the disk requests for the I/O
// scheduler (CFQ queues by origin); rc carries the originating traced
// request (zero Ctx = untraced).
func (c *Client) Read(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx) {
	c.transfer(p, name, extents, origin, rc, false)
}

// Write performs a list-I/O write; see Read.
func (c *Client) Write(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx) {
	c.transfer(p, name, extents, origin, rc, true)
	fsys := c.fsys
	if n := ext.Total(extents); n > 0 {
		hi := int64(0)
		for _, e := range extents {
			if e.End() > hi {
				hi = e.End()
			}
		}
		if hi > fsys.meta.sizes[name] {
			fsys.meta.sizes[name] = hi
		}
	}
}

// issued is one outstanding server request with what a retry needs to
// reissue it.
type issued struct {
	srv      *Server
	msg      int64
	attempts []*serverReq // all reissues share the first request's done signal
}

func (is *issued) finished() bool {
	for _, a := range is.attempts {
		if a.fin {
			return true
		}
	}
	return false
}

func (c *Client) transfer(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx, write bool) {
	fsys := c.fsys
	per := fsys.split(extents)
	var reqs []*issued
	for i, lst := range per {
		if len(lst) == 0 {
			continue
		}
		srv := fsys.servers[i]
		req := &serverReq{
			file:    name,
			extents: lst,
			write:   write,
			origin:  origin,
			client:  c.Node,
			done:    fsys.k.NewSignal(),
			rc:      rc,
		}
		msg := fsys.cfg.HeaderBytes + fsys.cfg.ExtentDescBytes*int64(len(lst))
		if write {
			msg += ext.Total(lst) // write payload travels with the request
		}
		fsys.net.SendTraced(p, c.Node, srv.Node, msg, rc)
		req.enq = p.Now()
		srv.queue.Put(req)
		reqs = append(reqs, &issued{srv: srv, msg: msg, attempts: []*serverReq{req}})
	}
	for _, is := range reqs {
		c.await(p, is)
	}
}

// await blocks until one attempt of the request finishes. With
// RequestTimeout armed, an unanswered request is reissued after the
// timeout with bounded exponential backoff; the abandoned original keeps
// running server-side (duplicate service costs time, as real retries do)
// and whichever attempt finishes first releases the client.
func (c *Client) await(p *sim.Proc, is *issued) {
	fsys := c.fsys
	done := is.attempts[0].done
	if fsys.cfg.RequestTimeout <= 0 {
		for !is.finished() {
			done.Wait(p)
		}
		return
	}
	timeout := fsys.cfg.RequestTimeout
	backoff := fsys.cfg.RetryBackoff
	for retry := 0; ; retry++ {
		deadline := p.Now() + timeout
		for !is.finished() && p.Now() < deadline {
			done.WaitTimeout(p, deadline-p.Now())
		}
		if is.finished() {
			return
		}
		if retry >= fsys.cfg.MaxRetries {
			// Out of retries: the server is degraded, not gone. Wait it out
			// rather than fail — the simulation has no error path to lose
			// data into.
			for !is.finished() {
				done.Wait(p)
			}
			return
		}
		fsys.retries++
		first := is.attempts[0]
		fsys.obs.Instant("retry", fmt.Sprintf("client%d", c.Node), p.Now(),
			obs.I64("server", int64(is.srv.Index)), obs.I64("attempt", int64(retry+1)),
			obs.Str("file", first.file))
		if backoff > 0 {
			p.Sleep(backoff)
			backoff *= 2
		}
		dup := &serverReq{
			file:    first.file,
			extents: first.extents,
			write:   first.write,
			origin:  first.origin,
			client:  first.client,
			done:    done,
			rc:      first.rc,
		}
		fsys.net.SendTraced(p, c.Node, is.srv.Node, is.msg, first.rc)
		dup.enq = p.Now()
		is.srv.queue.Put(dup)
		is.attempts = append(is.attempts, dup)
		timeout *= 2
	}
}
