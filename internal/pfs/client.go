package pfs

import (
	"fmt"
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// Client is a node-local handle to the file system. PVFS2 keeps no
// client-side data cache, so every call reaches the servers.
type Client struct {
	fsys *FileSystem
	Node int
}

// Client returns a client bound to the given network node.
func (fsys *FileSystem) Client(node int) *Client {
	return &Client{fsys: fsys, Node: node}
}

// Create registers the file with the metadata server and pre-allocates
// layout for size bytes on the data servers (every replica rank).
func (c *Client) Create(p *sim.Proc, name string, size int64) {
	fsys := c.fsys
	fsys.net.Send(p, c.Node, fsys.meta.Node, fsys.cfg.HeaderBytes)
	p.Sleep(fsys.cfg.MetaOpCPU)
	if size > fsys.meta.sizes[name] {
		fsys.meta.sizes[name] = size
	}
	// The metadata server instructs each data server to reserve layout;
	// modeled as a metadata-time operation (no data movement).
	per := fsys.split([]ext.Extent{{Off: 0, Len: size}})
	for i := range fsys.servers {
		if len(per[i]) == 0 {
			continue
		}
		end := per[i][len(per[i])-1].End()
		for rank := 0; rank < fsys.replicas(); rank++ {
			fsys.replicaServer(i, rank).Store.Create(replicaFile(name, rank), end)
		}
	}
	fsys.net.Send(p, fsys.meta.Node, c.Node, fsys.cfg.HeaderBytes)
}

// Open contacts the metadata server and returns the file size it records.
func (c *Client) Open(p *sim.Proc, name string) int64 {
	fsys := c.fsys
	fsys.net.Send(p, c.Node, fsys.meta.Node, fsys.cfg.HeaderBytes)
	p.Sleep(fsys.cfg.MetaOpCPU)
	size := fsys.meta.sizes[name]
	fsys.net.Send(p, fsys.meta.Node, c.Node, fsys.cfg.HeaderBytes)
	return size
}

// Read performs a list-I/O read of the given file-global extents, blocking
// p until all data has arrived. origin tags the disk requests for the I/O
// scheduler (CFQ queues by origin); rc carries the originating traced
// request (zero Ctx = untraced). With replication, the read is served by
// the preferred live replica and fails over to the next one when the
// per-request watchdog fires or the failure detector declares the target
// dead; it returns an error wrapping ErrRetriesExhausted only when every
// replica of some needed stripe is down.
func (c *Client) Read(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx) error {
	_, err := c.transfer(p, name, extents, origin, rc, false)
	return err
}

// Write performs a list-I/O write; see Read. With replication the write
// fans out to every live replica and completes at the write quorum;
// replicas that missed it are noted for the online rebuild.
func (c *Client) Write(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx) error {
	if _, err := c.transfer(p, name, extents, origin, rc, true); err != nil {
		return err
	}
	fsys := c.fsys
	if n := ext.Total(extents); n > 0 {
		hi := int64(0)
		for _, e := range extents {
			if e.End() > hi {
				hi = e.End()
			}
		}
		if hi > fsys.meta.sizes[name] {
			fsys.meta.sizes[name] = hi
		}
	}
	return nil
}

// issued is one outstanding server request with what a retry needs to
// reissue it.
type issued struct {
	srv      *Server
	rank     int
	msg      int64
	attempts []*serverReq // all reissues share the group's done signal
}

func (is *issued) finished() bool {
	for _, a := range is.attempts {
		if a.fin {
			return true
		}
	}
	return false
}

// xferGroup is the per-primary-server unit of a replicated transfer: the
// local extent list, one done signal shared by every replica attempt, and
// the per-replica outstanding requests.
type xferGroup struct {
	primary int
	file    string
	lst     []ext.Extent
	msg     int64
	done    sim.Signal // shared by every replica attempt (see issueTo)
	reps    []*issued
	ver     int64
}

func (g *xferGroup) winner() *issued {
	for _, is := range g.reps {
		if is.finished() {
			return is
		}
	}
	return nil
}

func (c *Client) transfer(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx, write bool) ([]*xferGroup, error) {
	fsys := c.fsys
	if fsys.replicas() == 1 && !fsys.crashAware() {
		c.legacyTransfer(p, name, extents, origin, rc, write)
		return nil, nil
	}
	if write {
		return nil, c.writeReplicated(p, name, extents, origin, rc)
	}
	return c.readFailover(p, name, extents, origin, rc)
}

// legacyTransfer is the pre-replication path, preserved verbatim: with
// Replicas <= 1 and no crash windows the event timeline stays
// byte-identical to earlier builds.
//
// It runs on pooled transfer records: requests, retry records, and the
// per-server extent lists come from the FileSystem free lists and go back
// once every request has finished. A request that was reissued may have a
// duplicate attempt still being served; it (and the extent buffer its
// attempts reference) is left to the garbage collector rather than risk a
// live reference — the common no-retry op recycles everything.
func (c *Client) legacyTransfer(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx, write bool) {
	fsys := c.fsys
	per := fsys.getSplitBuf()
	fsys.splitInto(per, extents)
	var reqsArr [32]*issued // escapes only past NumServers() > 32
	reqs := reqsArr[:0]
	// With the integrity tracker enabled, legacy writes get version stamps
	// too, so the audit coherence oracle covers the single-replica path. The
	// stamping itself adds no simulation events.
	var ver int64
	if write && fsys.tracker != nil {
		fsys.verCounter++
		ver = fsys.verCounter
	}
	for i, lst := range per {
		if len(lst) == 0 {
			continue
		}
		srv := fsys.servers[i]
		req := fsys.getServerReq()
		req.file = name
		req.extents = lst
		req.write = write
		req.origin = origin
		req.client = c.Node
		req.rc = rc
		req.ver = ver
		req.done = &req.sig
		msg := fsys.cfg.HeaderBytes + fsys.cfg.ExtentDescBytes*int64(len(lst))
		if write {
			msg += ext.Total(lst) // write payload travels with the request
		}
		fsys.net.SendTraced(p, c.Node, srv.Node, msg, rc)
		req.enq = p.Now()
		srv.queue.Put(req)
		is := fsys.getIssued()
		is.srv, is.msg = srv, msg
		is.attempts = append(is.attempts, req)
		reqs = append(reqs, is)
	}
	for _, is := range reqs {
		c.await(p, is)
	}
	if ver != 0 {
		fsys.tracker.recordExpected(name, extents, ver)
	}
	allDead := true
	for _, is := range reqs {
		if len(is.attempts) == 1 {
			fsys.putServerReq(is.attempts[0])
		} else {
			// An abandoned duplicate may still be in a server queue or
			// worker, referencing the request and its extent list.
			allDead = false
		}
		fsys.putIssued(is)
	}
	if allDead {
		fsys.putSplitBuf(per)
	}
}

// await blocks until one attempt of the request finishes. With
// RequestTimeout armed, an unanswered request is reissued after the
// timeout with bounded exponential backoff; the abandoned original keeps
// running server-side (duplicate service costs time, as real retries do)
// and whichever attempt finishes first releases the client.
func (c *Client) await(p *sim.Proc, is *issued) {
	fsys := c.fsys
	done := is.attempts[0].done
	if fsys.cfg.RequestTimeout <= 0 {
		for !is.finished() {
			done.Wait(p)
		}
		return
	}
	timeout := fsys.cfg.RequestTimeout
	backoff := fsys.cfg.RetryBackoff
	for retry := 0; ; retry++ {
		deadline := p.Now() + timeout
		for !is.finished() && p.Now() < deadline {
			done.WaitTimeout(p, deadline-p.Now())
		}
		if is.finished() {
			return
		}
		if retry >= fsys.cfg.MaxRetries {
			// Out of retries: the server is degraded, not gone. Wait it out
			// rather than fail — the simulation has no error path to lose
			// data into.
			for !is.finished() {
				done.Wait(p)
			}
			return
		}
		fsys.retries++
		first := is.attempts[0]
		fsys.obs.Instant("retry", fmt.Sprintf("client%d", c.Node), p.Now(),
			obs.I64("server", int64(is.srv.Index)), obs.I64("attempt", int64(retry+1)),
			obs.Str("file", first.file))
		if backoff > 0 {
			p.Sleep(backoff)
			backoff *= 2
		}
		dup := &serverReq{
			file:    first.file,
			extents: first.extents,
			write:   first.write,
			origin:  first.origin,
			client:  first.client,
			done:    done,
			rc:      first.rc,
		}
		fsys.net.SendTraced(p, c.Node, is.srv.Node, is.msg, first.rc)
		dup.enq = p.Now()
		is.srv.queue.Put(dup)
		is.attempts = append(is.attempts, dup)
		timeout *= 2
	}
}

// issueTo sends one replica attempt of the group to the given rank's
// server. The message may vanish en route to a crashed server; the
// attempt is still recorded (the client cannot know) and the watchdog or
// view change recovers.
func (c *Client) issueTo(p *sim.Proc, g *xferGroup, rank int, write bool, origin int, rc obs.Ctx) *issued {
	fsys := c.fsys
	srv := fsys.replicaServer(g.primary, rank)
	req := &serverReq{
		file:    replicaFile(g.file, rank),
		extents: g.lst,
		write:   write,
		origin:  origin,
		client:  c.Node,
		done:    &g.done,
		rc:      rc,
		ver:     g.ver,
	}
	is := &issued{srv: srv, rank: rank, msg: g.msg, attempts: []*serverReq{req}}
	if fsys.net.SendLossy(p, c.Node, srv.Node, g.msg, rc) {
		req.enq = p.Now()
		srv.queue.Put(req)
	}
	g.reps = append(g.reps, is)
	return is
}

// reissue duplicates an unanswered attempt to the same server (write
// retries and single-replica read retries).
func (c *Client) reissue(p *sim.Proc, g *xferGroup, is *issued, rc obs.Ctx) {
	fsys := c.fsys
	first := is.attempts[0]
	dup := &serverReq{
		file:    first.file,
		extents: first.extents,
		write:   first.write,
		origin:  first.origin,
		client:  first.client,
		done:    &g.done,
		rc:      first.rc,
		ver:     first.ver,
	}
	if fsys.net.SendLossy(p, c.Node, is.srv.Node, is.msg, first.rc) {
		dup.enq = p.Now()
		is.srv.queue.Put(dup)
	}
	is.attempts = append(is.attempts, dup)
}

// waitStep blocks until the group's done signal fires, a watchdog
// deadline passes (deadline > 0), or — on crash-aware runs — a poll tick
// elapses so the waiter re-reads the failure detector's view.
func (c *Client) waitStep(p *sim.Proc, g *xferGroup, deadline time.Duration) {
	fsys := c.fsys
	switch {
	case deadline > 0:
		w := deadline - p.Now()
		if fsys.crashAware() && w > pollEvery {
			w = pollEvery
		}
		if w > 0 {
			g.done.WaitTimeout(p, w)
		}
	case fsys.crashAware():
		g.done.WaitTimeout(p, pollEvery)
	default:
		g.done.Wait(p)
	}
}

// writeReplicated fans a write out to every live replica of each stripe
// group and blocks until the write quorum acknowledges. Replicas that are
// down — at issue time or before acking — are recorded in the rebuild
// ledger. It fails with ErrRetriesExhausted only when no replica of some
// stripe group can take the write.
func (c *Client) writeReplicated(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx) error {
	fsys := c.fsys
	per := fsys.split(extents)
	var ver int64
	if fsys.tracker != nil {
		fsys.verCounter++
		ver = fsys.verCounter
	}
	var groups []*xferGroup
	for i, lst := range per {
		if len(lst) == 0 {
			continue
		}
		g := &xferGroup{
			primary: i,
			file:    name,
			lst:     lst,
			msg:     fsys.cfg.HeaderBytes + fsys.cfg.ExtentDescBytes*int64(len(lst)) + ext.Total(lst),
			ver:     ver,
		}
		for rank := 0; rank < fsys.replicas(); rank++ {
			srv := fsys.replicaServer(i, rank)
			if fsys.down[srv.Index] {
				// Known-dead replica: skip the wire, note it for rebuild.
				fsys.ledger.add(srv.Index, replicaFile(name, rank), lst)
				continue
			}
			c.issueTo(p, g, rank, true, origin, rc)
		}
		groups = append(groups, g)
	}
	for _, g := range groups {
		if err := c.awaitQuorum(p, g, rc); err != nil {
			return err
		}
	}
	if fsys.tracker != nil {
		fsys.tracker.recordExpected(name, extents, ver)
	}
	return nil
}

// awaitQuorum blocks until enough replicas of one stripe group ack the
// write: the configured quorum, shrunk to the number of issued replicas
// still live (so a crash detected mid-wait unblocks the writer).
func (c *Client) awaitQuorum(p *sim.Proc, g *xferGroup, rc obs.Ctx) error {
	fsys := c.fsys
	timeout := fsys.cfg.RequestTimeout
	backoff := fsys.cfg.RetryBackoff
	retry := 0
	var deadline time.Duration
	if timeout > 0 {
		deadline = p.Now() + timeout
	}
	for {
		acks, possible := 0, 0
		for _, is := range g.reps {
			switch {
			case is.finished():
				acks++
				possible++
			case !fsys.down[is.srv.Index]:
				possible++
			}
		}
		if possible == 0 {
			return &RetryError{Op: "write", File: g.file, Server: g.primary}
		}
		need := fsys.writeQuorum()
		if possible < need {
			need = possible
		}
		if acks >= need {
			// Quorum met. Anything unacked on a dead server missed the
			// write; note it so the rebuild re-copies from a peer.
			for _, is := range g.reps {
				if !is.finished() && fsys.down[is.srv.Index] {
					fsys.ledger.add(is.srv.Index, replicaFile(g.file, is.rank), g.lst)
				}
			}
			return nil
		}
		if deadline > 0 && p.Now() >= deadline {
			if retry >= fsys.cfg.MaxRetries {
				deadline = 0 // watchdog exhausted; wait on acks and the view
				continue
			}
			retry++
			for _, is := range g.reps {
				if is.finished() || fsys.down[is.srv.Index] {
					continue
				}
				fsys.retries++
				fsys.obs.Instant("retry", fmt.Sprintf("client%d", c.Node), p.Now(),
					obs.I64("server", int64(is.srv.Index)), obs.I64("attempt", int64(retry)),
					obs.Str("file", g.file))
				c.reissue(p, g, is, rc)
			}
			if backoff > 0 {
				p.Sleep(backoff)
				backoff *= 2
			}
			timeout *= 2
			deadline = p.Now() + timeout
			continue
		}
		c.waitStep(p, g, deadline)
	}
}

// readFailover issues each stripe group's read to its preferred live
// replica and fails over to the next replica when the watchdog fires or
// the view declares the target dead.
func (c *Client) readFailover(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx) ([]*xferGroup, error) {
	fsys := c.fsys
	per := fsys.split(extents)
	var groups []*xferGroup
	for i, lst := range per {
		if len(lst) == 0 {
			continue
		}
		g := &xferGroup{
			primary: i,
			file:    name,
			lst:     lst,
			msg:     fsys.cfg.HeaderBytes + fsys.cfg.ExtentDescBytes*int64(len(lst)),
		}
		c.issueTo(p, g, fsys.preferredRank(i), false, origin, rc)
		groups = append(groups, g)
	}
	for _, g := range groups {
		if err := c.awaitRead(p, g, origin, rc); err != nil {
			return nil, err
		}
	}
	return groups, nil
}

func (c *Client) awaitRead(p *sim.Proc, g *xferGroup, origin int, rc obs.Ctx) error {
	fsys := c.fsys
	timeout := fsys.cfg.RequestTimeout
	backoff := fsys.cfg.RetryBackoff
	retry := 0
	var deadline time.Duration
	if timeout > 0 {
		deadline = p.Now() + timeout
	}
	for {
		if g.winner() != nil {
			return nil
		}
		if fsys.allReplicasDown(g.primary) {
			return &RetryError{Op: "read", File: g.file, Server: g.primary}
		}
		cur := g.reps[len(g.reps)-1]
		if fsys.down[cur.srv.Index] {
			// The failure detector declared the current target dead: fail
			// over to the next live replica immediately. View-triggered
			// failover does not consume the retry budget.
			next, ok := fsys.nextRank(g.primary, cur.rank)
			if !ok {
				continue // allReplicasDown catches it next iteration
			}
			fsys.failovers++
			fsys.obs.Instant("failover", fmt.Sprintf("client%d", c.Node), p.Now(),
				obs.I64("from", int64(cur.srv.Index)),
				obs.I64("to", int64(fsys.replicaServer(g.primary, next).Index)),
				obs.Str("file", g.file))
			c.issueTo(p, g, next, false, origin, rc)
			if timeout > 0 {
				deadline = p.Now() + timeout
			}
			continue
		}
		if deadline > 0 && p.Now() >= deadline {
			if retry >= fsys.cfg.MaxRetries {
				deadline = 0
				continue
			}
			retry++
			fsys.retries++
			next, ok := fsys.nextRank(g.primary, cur.rank)
			if !ok {
				continue
			}
			nsrv := fsys.replicaServer(g.primary, next)
			fsys.obs.Instant("retry", fmt.Sprintf("client%d", c.Node), p.Now(),
				obs.I64("server", int64(nsrv.Index)), obs.I64("attempt", int64(retry)),
				obs.Str("file", g.file))
			if nsrv.Index != cur.srv.Index {
				fsys.failovers++
			}
			if backoff > 0 {
				p.Sleep(backoff)
				backoff *= 2
			}
			c.issueTo(p, g, next, false, origin, rc)
			timeout *= 2
			deadline = p.Now() + timeout
			continue
		}
		c.waitStep(p, g, deadline)
	}
}

// ReadVersions is the integrity oracle's read: it performs a full
// failover read of the extents (paying the same simulated cost as Read)
// and returns the version stamps the serving replicas hold for every
// byte, in global coordinates. Requires EnableIntegrity.
func (c *Client) ReadVersions(p *sim.Proc, name string, extents []ext.Extent, origin int) ([]VersionSeg, error) {
	fsys := c.fsys
	if fsys.tracker == nil {
		return nil, fmt.Errorf("pfs: ReadVersions without EnableIntegrity")
	}
	groups, err := c.readFailover(p, name, extents, origin, obs.Ctx{})
	if err != nil {
		return nil, err
	}
	winners := make(map[int]*issued, len(groups))
	for _, g := range groups {
		winners[g.primary] = g.winner()
	}
	// Re-walk the split piece by piece so each local range maps back to
	// its global offset (split() merges adjacent local pieces, which would
	// lose the correspondence).
	unit := fsys.cfg.StripeUnit
	n := int64(fsys.NumServers())
	var out []VersionSeg
	for _, piece := range ext.SplitAt(extents, unit) {
		stripe := piece.Off / unit
		primary := int(stripe % n)
		local := (stripe/n)*unit + piece.Off%unit
		win := winners[primary]
		if win == nil {
			continue
		}
		served := replicaFile(name, win.rank)
		for _, s := range fsys.tracker.query(win.srv.Index, served, ext.Extent{Off: local, Len: piece.Len}) {
			out = append(out, VersionSeg{
				Ext: ext.Extent{Off: piece.Off + (s.Ext.Off - local), Len: s.Ext.Len},
				Ver: s.Ver,
			})
		}
	}
	return out, nil
}
