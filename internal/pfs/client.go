package pfs

import (
	"dualpar/internal/ext"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// Client is a node-local handle to the file system. PVFS2 keeps no
// client-side data cache, so every call reaches the servers.
type Client struct {
	fsys *FileSystem
	Node int
}

// Client returns a client bound to the given network node.
func (fsys *FileSystem) Client(node int) *Client {
	return &Client{fsys: fsys, Node: node}
}

// Create registers the file with the metadata server and pre-allocates
// layout for size bytes on the data servers.
func (c *Client) Create(p *sim.Proc, name string, size int64) {
	fsys := c.fsys
	fsys.net.Send(p, c.Node, fsys.meta.Node, fsys.cfg.HeaderBytes)
	p.Sleep(fsys.cfg.MetaOpCPU)
	if size > fsys.meta.sizes[name] {
		fsys.meta.sizes[name] = size
	}
	// The metadata server instructs each data server to reserve layout;
	// modeled as a metadata-time operation (no data movement).
	per := fsys.split([]ext.Extent{{Off: 0, Len: size}})
	for i, srv := range fsys.servers {
		if len(per[i]) > 0 {
			srv.Store.Create(name, per[i][len(per[i])-1].End())
		}
	}
	fsys.net.Send(p, fsys.meta.Node, c.Node, fsys.cfg.HeaderBytes)
}

// Open contacts the metadata server and returns the file size it records.
func (c *Client) Open(p *sim.Proc, name string) int64 {
	fsys := c.fsys
	fsys.net.Send(p, c.Node, fsys.meta.Node, fsys.cfg.HeaderBytes)
	p.Sleep(fsys.cfg.MetaOpCPU)
	size := fsys.meta.sizes[name]
	fsys.net.Send(p, fsys.meta.Node, c.Node, fsys.cfg.HeaderBytes)
	return size
}

// Read performs a list-I/O read of the given file-global extents, blocking
// p until all data has arrived. origin tags the disk requests for the I/O
// scheduler (CFQ queues by origin); rc carries the originating traced
// request (zero Ctx = untraced).
func (c *Client) Read(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx) {
	c.transfer(p, name, extents, origin, rc, false)
}

// Write performs a list-I/O write; see Read.
func (c *Client) Write(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx) {
	c.transfer(p, name, extents, origin, rc, true)
	fsys := c.fsys
	if n := ext.Total(extents); n > 0 {
		hi := int64(0)
		for _, e := range extents {
			if e.End() > hi {
				hi = e.End()
			}
		}
		if hi > fsys.meta.sizes[name] {
			fsys.meta.sizes[name] = hi
		}
	}
}

func (c *Client) transfer(p *sim.Proc, name string, extents []ext.Extent, origin int, rc obs.Ctx, write bool) {
	fsys := c.fsys
	per := fsys.split(extents)
	var reqs []*serverReq
	for i, lst := range per {
		if len(lst) == 0 {
			continue
		}
		srv := fsys.servers[i]
		req := &serverReq{
			file:    name,
			extents: lst,
			write:   write,
			origin:  origin,
			client:  c.Node,
			done:    fsys.k.NewSignal(),
			rc:      rc,
		}
		msg := fsys.cfg.HeaderBytes + fsys.cfg.ExtentDescBytes*int64(len(lst))
		if write {
			msg += ext.Total(lst) // write payload travels with the request
		}
		fsys.net.SendTraced(p, c.Node, srv.Node, msg, rc)
		req.enq = p.Now()
		srv.queue.Put(req)
		reqs = append(reqs, req)
	}
	for _, req := range reqs {
		for !req.fin {
			req.done.Wait(p)
		}
	}
}
