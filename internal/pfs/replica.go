package pfs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// Replication, failover, and online rebuild (DESIGN §10).
//
// Replica rank r of the stripes whose primary is server i lives on server
// (i + offsets[r]) mod n, where offsets[r] defaults to r*RackSize — one
// rack apart per rank, so a whole-rack failure cannot take out every copy.
// Replica data reuses the primary's local stripe layout under a rank-
// namespaced file name ("name#r1", "name#r2", …): the placement map is a
// bijection per rank, so namespaced local offsets never collide.

// pollEvery is how often quorum waiters and failover readers re-examine
// the failure detector's view while blocked. Only crash-aware runs poll;
// crash-free schedules keep the legacy pure-signal waits.
const pollEvery = 50 * time.Millisecond

// replicaOffsets computes the per-rank server offsets: rank r prefers
// r*rack mod n, falling forward to the next unused offset so every rank
// maps to a distinct server (requires replicas <= n, checked in New).
func replicaOffsets(n, replicas, rack int) []int {
	if replicas < 1 {
		replicas = 1
	}
	if rack <= 0 {
		rack = 3
	}
	offs := []int{0}
	used := map[int]bool{0: true}
	for r := 1; r < replicas; r++ {
		off := (r * rack) % n
		for used[off] {
			off = (off + 1) % n
		}
		offs = append(offs, off)
		used[off] = true
	}
	return offs
}

// replicas reports the effective replica count (Config 0 and 1 both mean
// unreplicated).
func (fsys *FileSystem) replicas() int {
	if fsys.cfg.Replicas > 1 {
		return fsys.cfg.Replicas
	}
	return 1
}

// writeQuorum reports how many replica acks complete a write.
func (fsys *FileSystem) writeQuorum() int {
	r := fsys.replicas()
	if q := fsys.cfg.WriteQuorum; q > 0 && q <= r {
		return q
	}
	return r/2 + 1
}

func (fsys *FileSystem) detectDelay() time.Duration { return fsys.cfg.DetectDelay }

func (fsys *FileSystem) rebuildBandwidth() int64 {
	if fsys.cfg.RebuildBandwidth > 0 {
		return fsys.cfg.RebuildBandwidth
	}
	return 32 << 20
}

func (fsys *FileSystem) rebuildChunk() int64 {
	if fsys.cfg.RebuildChunkBytes > 0 {
		return fsys.cfg.RebuildChunkBytes
	}
	return 1 << 20
}

// crashAware reports whether the schedule can kill servers, i.e. whether
// views can change mid-run. Crash-free runs never poll and never consult
// the view, preserving the legacy event timeline exactly.
func (fsys *FileSystem) crashAware() bool { return fsys.faults.HasCrashWindows() }

// replicaServer returns the data server holding replica rank r of the
// stripes whose primary is server primary.
func (fsys *FileSystem) replicaServer(primary, rank int) *Server {
	return fsys.servers[(primary+fsys.offsets[rank])%len(fsys.servers)]
}

// replicaFile namespaces a logical file per replica rank.
func replicaFile(name string, rank int) string {
	if rank == 0 {
		return name
	}
	return name + "#r" + strconv.Itoa(rank)
}

// replicaBase splits a possibly rank-namespaced store file back into the
// logical name and replica rank.
func replicaBase(file string) (string, int) {
	i := strings.LastIndex(file, "#r")
	if i < 0 {
		return file, 0
	}
	rank, err := strconv.Atoi(file[i+2:])
	if err != nil || rank <= 0 {
		return file, 0
	}
	return file[:i], rank
}

// setDown records a failure-detector view transition and wakes every
// blocked quorum waiter and failover reader so they recompute. A recovery
// additionally starts the online rebuild.
func (fsys *FileSystem) setDown(server int, down bool) {
	if fsys.down[server] == down {
		return
	}
	fsys.down[server] = down
	state := "up"
	if down {
		state = "down"
	}
	fsys.obs.Instant("pfs.view", "pfs", fsys.k.Now(),
		obs.I64("server", int64(server)), obs.Str("state", state))
	if !down {
		fsys.startRebuild(server)
	}
	fsys.viewSig.Broadcast()
}

// nextRank returns the first live rank after cur in cyclic rank order
// (possibly cur itself when every other replica is down but cur is live).
// ok is false when every replica of the primary's stripes is down.
func (fsys *FileSystem) nextRank(primary, cur int) (rank int, ok bool) {
	r := fsys.replicas()
	for i := 1; i <= r; i++ {
		cand := (cur + i) % r
		if !fsys.down[fsys.replicaServer(primary, cand).Index] {
			return cand, true
		}
	}
	return 0, false
}

// preferredRank picks where a read goes first: the lowest rank whose
// server is live and not rebuilding, else the lowest live rank, else 0.
func (fsys *FileSystem) preferredRank(primary int) int {
	r := fsys.replicas()
	for rank := 0; rank < r; rank++ {
		s := fsys.replicaServer(primary, rank).Index
		if !fsys.down[s] && !fsys.rebuilding[s] {
			return rank
		}
	}
	for rank := 0; rank < r; rank++ {
		if !fsys.down[fsys.replicaServer(primary, rank).Index] {
			return rank
		}
	}
	return 0
}

// allReplicasDown reports whether every replica of the primary's stripes
// is down in the current view.
func (fsys *FileSystem) allReplicasDown(primary int) bool {
	for rank := 0; rank < fsys.replicas(); rank++ {
		if !fsys.down[fsys.replicaServer(primary, rank).Index] {
			return false
		}
	}
	return true
}

// rebuildLedger accumulates, per server, the replica-file extents that
// missed writes while the server was crashed. Entries are added by the
// worker (requests voided mid-crash) and by quorum completion (replicas
// that never acked); duplicates are harmless — rebuild re-copies from a
// peer whose state is at least as new.
type rebuildLedger struct {
	perServer []map[string][]ext.Extent
}

func newRebuildLedger(n int) *rebuildLedger {
	l := &rebuildLedger{perServer: make([]map[string][]ext.Extent, n)}
	for i := range l.perServer {
		l.perServer[i] = make(map[string][]ext.Extent)
	}
	return l
}

func (l *rebuildLedger) add(server int, file string, extents []ext.Extent) {
	m := l.perServer[server]
	xs := m[file]
	for _, x := range extents {
		xs = ext.Insert(xs, x)
	}
	m[file] = xs
}

// dirtyFile is one rebuild work item.
type dirtyFile struct {
	file    string
	extents []ext.Extent
}

// take drains and returns the server's dirty set in deterministic order.
func (l *rebuildLedger) take(server int) []dirtyFile {
	m := l.perServer[server]
	if len(m) == 0 {
		return nil
	}
	l.perServer[server] = make(map[string][]ext.Extent)
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]dirtyFile, 0, len(names))
	for _, name := range names {
		out = append(out, dirtyFile{file: name, extents: m[name]})
	}
	return out
}

// Rebuilding reports whether a server's online rebuild is in progress.
func (fsys *FileSystem) Rebuilding(server int) bool {
	return server >= 0 && server < len(fsys.rebuilding) && fsys.rebuilding[server]
}

// startRebuild launches the online rebuild for a freshly recovered server:
// every stripe range it missed while down is re-copied from a live peer
// replica at a throttled background rate. Reads prefer other replicas
// until the rebuild finishes.
func (fsys *FileSystem) startRebuild(server int) {
	dirty := fsys.ledger.take(server)
	if len(dirty) == 0 {
		return
	}
	fsys.rebuilding[server] = true
	fsys.k.Spawn(fmt.Sprintf("pfs/rebuild/server%d", server), func(p *sim.Proc) {
		fsys.rebuildLoop(p, server, dirty)
	})
}

func (fsys *FileSystem) rebuildLoop(p *sim.Proc, server int, dirty []dirtyFile) {
	srv := fsys.servers[server]
	n := len(fsys.servers)
	var total int64
	for _, df := range dirty {
		total += ext.Total(df.extents)
	}
	fsys.obs.Instant("rebuild.begin", "pfs", p.Now(),
		obs.I64("server", int64(server)), obs.I64("files", int64(len(dirty))),
		obs.I64("bytes", total))
	bw := fsys.rebuildBandwidth()
	chunk := fsys.rebuildChunk()
	var copied int64
	for _, df := range dirty {
		base, rank := replicaBase(df.file)
		primary := (server - fsys.offsets[rank]%n + n) % n
		for _, e := range df.extents {
			for off := e.Off; off < e.End(); off += chunk {
				if fsys.faults.Crashed(server, p.Now()) {
					// Crashed again mid-rebuild: put the remainder back and
					// let the next recovery restart it.
					fsys.requeueRebuild(server, df, dirty, off, e)
					fsys.rebuilding[server] = false
					fsys.viewSig.Broadcast()
					return
				}
				piece := ext.Extent{Off: off, Len: min(chunk, e.End()-off)}
				src := fsys.rebuildSource(primary, rank, p.Now())
				if src < 0 {
					fsys.obs.Instant("rebuild.lost", "pfs", p.Now(),
						obs.I64("server", int64(server)), obs.Str("file", df.file),
						obs.I64("bytes", piece.Len))
					continue
				}
				peer := fsys.servers[src]
				srcRank := fsys.rankOn(primary, src)
				srcFile := replicaFile(base, srcRank)
				lst := []ext.Extent{piece}
				peer.Store.ReadMulti(p, srcFile, lst, serverOriginBase+peer.Index, obs.Ctx{})
				fsys.net.Send(p, peer.Node, srv.Node, fsys.cfg.HeaderBytes+piece.Len)
				srv.Store.WriteMulti(p, df.file, lst, serverOriginBase+srv.Index, obs.Ctx{})
				if fsys.auditRebuild != nil {
					fsys.auditRebuild[peer.Index] += piece.Len
					fsys.auditRebuild[srv.Index] += piece.Len
				}
				fsys.tracker.copyApplied(peer.Index, srcFile, srv.Index, df.file, piece)
				copied += piece.Len
				// Background throttle: cap the copy rate so rebuild traffic
				// cannot starve foreground I/O.
				p.Sleep(time.Duration(float64(piece.Len) / float64(bw) * float64(time.Second)))
			}
		}
	}
	fsys.rebuilding[server] = false
	fsys.obs.Instant("rebuild.end", "pfs", p.Now(),
		obs.I64("server", int64(server)), obs.I64("bytes", copied))
	fsys.viewSig.Broadcast()
}

// rebuildSource picks the live peer replica to copy from: any rank whose
// server is actually up (ground truth — the rebuilder is a server, not a
// client) and not itself mid-rebuild, else any up rank.
func (fsys *FileSystem) rebuildSource(primary, excludeRank int, now time.Duration) int {
	var fallback = -1
	for r := 0; r < fsys.replicas(); r++ {
		if r == excludeRank {
			continue
		}
		s := fsys.replicaServer(primary, r).Index
		if fsys.faults.Crashed(s, now) {
			continue
		}
		if !fsys.rebuilding[s] {
			return s
		}
		if fallback < 0 {
			fallback = s
		}
	}
	return fallback
}

// rankOn reports which replica rank of primary's stripes server holds.
func (fsys *FileSystem) rankOn(primary, server int) int {
	n := len(fsys.servers)
	for r, off := range fsys.offsets {
		if (primary+off)%n == server {
			return r
		}
	}
	return 0
}

// requeueRebuild returns unfinished work to the ledger after a mid-rebuild
// crash: the rest of the current extent, the current file's remaining
// extents, and every later file.
func (fsys *FileSystem) requeueRebuild(server int, cur dirtyFile, all []dirtyFile, off int64, e ext.Extent) {
	if off < e.End() {
		fsys.ledger.add(server, cur.file, []ext.Extent{{Off: off, Len: e.End() - off}})
	}
	seenCur := false
	for _, df := range all {
		if df.file == cur.file {
			seenCur = true
			past := false
			for _, x := range df.extents {
				if x == e {
					past = true
					continue
				}
				if past {
					fsys.ledger.add(server, df.file, []ext.Extent{x})
				}
			}
			continue
		}
		if seenCur {
			fsys.ledger.add(server, df.file, df.extents)
		}
	}
}
