// Package pfs models a PVFS2-like parallel file system: files are striped
// in fixed-size units (64 KB default) across data servers; a metadata
// server handles open/create; clients issue read/write requests carrying
// extent lists (list I/O, paper ref [6]) directly to the data servers.
// Like PVFS2, there is no client-side data cache.
package pfs

import (
	"fmt"
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/fault"
	"dualpar/internal/fs"
	"dualpar/internal/netsim"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// Config tunes the file system.
type Config struct {
	// StripeUnit is the striping unit in bytes (PVFS2 default 64 KB).
	StripeUnit int64
	// WorkersPerServer bounds the number of concurrently served requests
	// per data server.
	WorkersPerServer int
	// RequestCPU is the per-request server processing cost.
	RequestCPU time.Duration
	// HeaderBytes is the fixed size of a request/response header;
	// ExtentDescBytes is the per-extent encoding cost in a list request.
	HeaderBytes     int64
	ExtentDescBytes int64
	// MetaOpCPU is the metadata server's per-operation cost.
	MetaOpCPU time.Duration
	// RequestJitter is the relative half-width of the uniform jitter on
	// RequestCPU (0.5 means [0.5x, 1.5x]). OS and service-time noise is
	// what desynchronizes otherwise lockstepped clients.
	RequestJitter float64
	// ClientDiskOrigins tags disk requests with the requesting client's
	// origin instead of the server's own identity. PVFS2 performs server
	// I/O from the pvfs2-server process, so the kernel elevator sees one
	// origin per server (the default, false); the true setting is an
	// ablation that exposes CFQ's per-process queueing to client identity.
	ClientDiskOrigins bool
	// RequestTimeout, when positive, arms a per-server-request watchdog in
	// the client: a request not answered within the timeout is reissued to
	// the server (the original is abandoned, not cancelled — exactly like a
	// client retry against a stalled server). The timeout doubles per
	// retry. Zero (the default) disables timeouts entirely, keeping the
	// event timeline identical to builds without the fault layer.
	RequestTimeout time.Duration
	// MaxRetries bounds reissues per request; after the last retry the
	// client waits indefinitely (progress over liveness guessing).
	MaxRetries int
	// RetryBackoff is slept before the first reissue and doubles with each
	// subsequent one (bounded exponential backoff).
	RetryBackoff time.Duration
}

// DefaultConfig matches the paper's PVFS2 2.8.2 setup.
func DefaultConfig() Config {
	return Config{
		StripeUnit:       64 << 10,
		WorkersPerServer: 16,
		RequestCPU:       50 * time.Microsecond,
		HeaderBytes:      256,
		ExtentDescBytes:  16,
		MetaOpCPU:        100 * time.Microsecond,
		RequestJitter:    0.5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.StripeUnit <= 0:
		return fmt.Errorf("pfs: StripeUnit %d", c.StripeUnit)
	case c.WorkersPerServer <= 0:
		return fmt.Errorf("pfs: WorkersPerServer %d", c.WorkersPerServer)
	case c.RequestCPU < 0 || c.MetaOpCPU < 0:
		return fmt.Errorf("pfs: negative CPU cost")
	case c.HeaderBytes < 0 || c.ExtentDescBytes < 0:
		return fmt.Errorf("pfs: negative encoding size")
	case c.RequestJitter < 0 || c.RequestJitter > 1:
		return fmt.Errorf("pfs: RequestJitter %g", c.RequestJitter)
	case c.RequestTimeout < 0:
		return fmt.Errorf("pfs: RequestTimeout %v", c.RequestTimeout)
	case c.MaxRetries < 0:
		return fmt.Errorf("pfs: MaxRetries %d", c.MaxRetries)
	case c.RetryBackoff < 0:
		return fmt.Errorf("pfs: RetryBackoff %v", c.RetryBackoff)
	}
	return nil
}

// FileSystem ties the metadata server and data servers together.
type FileSystem struct {
	k       *sim.Kernel
	net     *netsim.Network
	cfg     Config
	servers []*Server
	meta    *MetaServer
	obs     *obs.Collector
	faults  *fault.Injector
	retries int64
}

// Server is one data server.
type Server struct {
	fsys  *FileSystem
	Index int // position in the stripe rotation
	Node  int // network node id
	Store *fs.Store
	queue *sim.Queue[*serverReq]
}

// MetaServer handles open/create and hosts DualPar's EMC daemon (the core
// package attaches it).
type MetaServer struct {
	Node  int
	sizes map[string]int64
}

type serverReq struct {
	file    string
	extents []ext.Extent // server-local byte space
	write   bool
	origin  int
	client  int // requesting network node
	done    *sim.Signal
	fin     bool
	rc      obs.Ctx       // originating traced request
	enq     time.Duration // enqueue time (queue-wait annotation)
}

// New assembles a file system from per-server stores. serverNodes[i] is the
// network node of data server i.
func New(k *sim.Kernel, net *netsim.Network, cfg Config, metaNode int, serverNodes []int, stores []*fs.Store) *FileSystem {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(serverNodes) == 0 || len(serverNodes) != len(stores) {
		panic("pfs: servers and stores mismatch")
	}
	fsys := &FileSystem{
		k:    k,
		net:  net,
		cfg:  cfg,
		meta: &MetaServer{Node: metaNode, sizes: make(map[string]int64)},
	}
	for i, node := range serverNodes {
		srv := &Server{
			fsys:  fsys,
			Index: i,
			Node:  node,
			Store: stores[i],
			queue: sim.NewQueue[*serverReq](k),
		}
		fsys.servers = append(fsys.servers, srv)
		for w := 0; w < cfg.WorkersPerServer; w++ {
			track := fmt.Sprintf("server%d/worker%d", i, w)
			k.Spawn("pfs/"+track, func(p *sim.Proc) { srv.workerLoop(p, track) })
		}
	}
	return fsys
}

// Config returns the file system configuration.
func (fsys *FileSystem) Config() Config { return fsys.cfg }

// SetObs attaches the observability collector: traced requests then record
// per-worker StageServer spans.
func (fsys *FileSystem) SetObs(c *obs.Collector) { fsys.obs = c }

// SetFaults attaches a fault injector; data servers then honor the
// schedule's stall and CPU-slowdown windows. A nil injector is a no-op.
func (fsys *FileSystem) SetFaults(inj *fault.Injector) { fsys.faults = inj }

// Retries reports how many client request reissues the timeout watchdog
// performed.
func (fsys *FileSystem) Retries() int64 { return fsys.retries }

// FileSize reports the size currently recorded at the metadata server (the
// high-water mark of creates and completed writes; 0 for unknown files).
// Unlike Client.Open this is a zero-cost peek for co-located control
// planes such as CRM, which conceptually runs beside the metadata server.
func (fsys *FileSystem) FileSize(name string) int64 { return fsys.meta.sizes[name] }

// Obs returns the attached collector (nil when tracing is off).
func (fsys *FileSystem) Obs() *obs.Collector { return fsys.obs }

// Servers returns the data servers.
func (fsys *FileSystem) Servers() []*Server { return fsys.servers }

// Meta returns the metadata server.
func (fsys *FileSystem) Meta() *MetaServer { return fsys.meta }

// NumServers reports the stripe width.
func (fsys *FileSystem) NumServers() int { return len(fsys.servers) }

// serverOriginBase keeps server-process origins clear of client origins.
const serverOriginBase = 1 << 21

// DiskOrigin is the origin tag this server's disk requests carry for a
// request from the given client origin.
func (srv *Server) DiskOrigin(clientOrigin int) int {
	if srv.fsys.cfg.ClientDiskOrigins {
		return clientOrigin
	}
	return serverOriginBase + srv.Index
}

func (srv *Server) workerLoop(p *sim.Proc, track string) {
	fsys := srv.fsys
	for {
		req := srv.queue.Get(p)
		start := p.Now()
		// An active stall window freezes service: the request sits in the
		// worker until the window closes (the queue keeps filling behind it).
		if until := fsys.faults.StallUntil(srv.Index, p.Now()); until > p.Now() {
			p.Sleep(until - p.Now())
		}
		cpu := fsys.cfg.RequestCPU
		if j := fsys.cfg.RequestJitter; j > 0 && cpu > 0 {
			f := 1 + (fsys.k.Rand().Float64()*2-1)*j
			cpu = time.Duration(float64(cpu) * f)
		}
		if f := fsys.faults.ServerFactor(srv.Index, p.Now()); f > 1 {
			cpu = time.Duration(float64(cpu) * f)
		}
		p.Sleep(cpu)
		origin := srv.DiskOrigin(req.origin)
		if req.write {
			srv.Store.WriteMulti(p, req.file, req.extents, origin, req.rc)
			// Small acknowledgment back to the client.
			fsys.net.Send(p, srv.Node, req.client, fsys.cfg.HeaderBytes)
		} else {
			srv.Store.ReadMulti(p, req.file, req.extents, origin, req.rc)
			fsys.net.Send(p, srv.Node, req.client, fsys.cfg.HeaderBytes+ext.Total(req.extents))
		}
		if req.rc.Traced() {
			rw := "read"
			if req.write {
				rw = "write"
			}
			fsys.obs.Span(req.rc.ID, obs.StageServer, track, start, p.Now(),
				obs.Str("rw", rw), obs.I64("bytes", ext.Total(req.extents)),
				obs.I64("extents", int64(len(req.extents))),
				obs.I64("queue_us", int64((start-req.enq)/time.Microsecond)))
		}
		req.fin = true
		req.done.Broadcast()
	}
}

// split maps file-global extents to per-server local extent lists.
func (fsys *FileSystem) split(extents []ext.Extent) [][]ext.Extent {
	n := int64(fsys.NumServers())
	unit := fsys.cfg.StripeUnit
	out := make([][]ext.Extent, n)
	for _, piece := range ext.SplitAt(extents, unit) {
		stripe := piece.Off / unit
		srv := stripe % n
		local := (stripe/n)*unit + piece.Off%unit
		lst := out[srv]
		if len(lst) > 0 && lst[len(lst)-1].End() == local {
			lst[len(lst)-1].Len += piece.Len
			out[srv] = lst
		} else {
			out[srv] = append(lst, ext.Extent{Off: local, Len: piece.Len})
		}
	}
	return out
}

// LocalOffset translates a file-global offset to (server index, local
// offset) — exposed for layout-aware tooling and tests.
func (fsys *FileSystem) LocalOffset(off int64) (server int, local int64) {
	unit := fsys.cfg.StripeUnit
	stripe := off / unit
	n := int64(fsys.NumServers())
	return int(stripe % n), (stripe/n)*unit + off%unit
}
