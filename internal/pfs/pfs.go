// Package pfs models a PVFS2-like parallel file system: files are striped
// in fixed-size units (64 KB default) across data servers; a metadata
// server handles open/create; clients issue read/write requests carrying
// extent lists (list I/O, paper ref [6]) directly to the data servers.
// Like PVFS2, there is no client-side data cache.
package pfs

import (
	"fmt"
	"time"

	"dualpar/internal/check"
	"dualpar/internal/ext"
	"dualpar/internal/fault"
	"dualpar/internal/fs"
	"dualpar/internal/netsim"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// Config tunes the file system.
type Config struct {
	// StripeUnit is the striping unit in bytes (PVFS2 default 64 KB).
	StripeUnit int64
	// WorkersPerServer bounds the number of concurrently served requests
	// per data server.
	WorkersPerServer int
	// RequestCPU is the per-request server processing cost.
	RequestCPU time.Duration
	// HeaderBytes is the fixed size of a request/response header;
	// ExtentDescBytes is the per-extent encoding cost in a list request.
	HeaderBytes     int64
	ExtentDescBytes int64
	// MetaOpCPU is the metadata server's per-operation cost.
	MetaOpCPU time.Duration
	// RequestJitter is the relative half-width of the uniform jitter on
	// RequestCPU (0.5 means [0.5x, 1.5x]). OS and service-time noise is
	// what desynchronizes otherwise lockstepped clients.
	RequestJitter float64
	// ClientDiskOrigins tags disk requests with the requesting client's
	// origin instead of the server's own identity. PVFS2 performs server
	// I/O from the pvfs2-server process, so the kernel elevator sees one
	// origin per server (the default, false); the true setting is an
	// ablation that exposes CFQ's per-process queueing to client identity.
	ClientDiskOrigins bool
	// RequestTimeout, when positive, arms a per-server-request watchdog in
	// the client: a request not answered within the timeout is reissued to
	// the server (the original is abandoned, not cancelled — exactly like a
	// client retry against a stalled server). The timeout doubles per
	// retry. Zero (the default) disables timeouts entirely, keeping the
	// event timeline identical to builds without the fault layer.
	RequestTimeout time.Duration
	// MaxRetries bounds reissues per request; after the last retry the
	// client waits indefinitely (progress over liveness guessing).
	MaxRetries int
	// RetryBackoff is slept before the first reissue and doubles with each
	// subsequent one (bounded exponential backoff).
	RetryBackoff time.Duration
	// Replicas is the number of copies of every stripe (rack-aware chained
	// placement; see DESIGN §10). 0 or 1 keeps today's unreplicated layout
	// and its byte-identical event timeline.
	Replicas int
	// WriteQuorum is how many replica acknowledgments complete a write.
	// 0 means majority: Replicas/2 + 1. A crashed replica detected down is
	// excluded from the quorum denominator so writes keep completing.
	WriteQuorum int
	// RackSize is the number of servers per rack; replica ranks are placed
	// RackSize servers apart so one rack failure cannot take out every copy
	// of a stripe. 0 means the paper cluster's 3-per-rack.
	RackSize int
	// DetectDelay is how long after a crash (or recovery) the cluster-wide
	// failure detector updates the client view. It models heartbeat lag:
	// requests issued inside the window are lost and recovered by the
	// watchdog, not the view.
	DetectDelay time.Duration
	// RebuildBandwidth throttles the online rebuild's background copy rate
	// in bytes/second (0 = 32 MiB/s). RebuildChunkBytes is the copy
	// granularity (0 = 1 MiB).
	RebuildBandwidth  int64
	RebuildChunkBytes int64
}

// DefaultConfig matches the paper's PVFS2 2.8.2 setup.
func DefaultConfig() Config {
	return Config{
		StripeUnit:       64 << 10,
		WorkersPerServer: 16,
		RequestCPU:       50 * time.Microsecond,
		HeaderBytes:      256,
		ExtentDescBytes:  16,
		MetaOpCPU:        100 * time.Microsecond,
		RequestJitter:    0.5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.StripeUnit <= 0:
		return fmt.Errorf("pfs: StripeUnit %d", c.StripeUnit)
	case c.WorkersPerServer <= 0:
		return fmt.Errorf("pfs: WorkersPerServer %d", c.WorkersPerServer)
	case c.RequestCPU < 0 || c.MetaOpCPU < 0:
		return fmt.Errorf("pfs: negative CPU cost")
	case c.HeaderBytes < 0 || c.ExtentDescBytes < 0:
		return fmt.Errorf("pfs: negative encoding size")
	case c.RequestJitter < 0 || c.RequestJitter > 1:
		return fmt.Errorf("pfs: RequestJitter %g", c.RequestJitter)
	case c.RequestTimeout < 0:
		return fmt.Errorf("pfs: RequestTimeout %v", c.RequestTimeout)
	case c.MaxRetries < 0:
		return fmt.Errorf("pfs: MaxRetries %d", c.MaxRetries)
	case c.RetryBackoff < 0:
		return fmt.Errorf("pfs: RetryBackoff %v", c.RetryBackoff)
	case c.Replicas < 0:
		return fmt.Errorf("pfs: Replicas %d", c.Replicas)
	case c.WriteQuorum < 0 || (c.Replicas > 1 && c.WriteQuorum > c.Replicas):
		return fmt.Errorf("pfs: WriteQuorum %d with %d replicas", c.WriteQuorum, c.Replicas)
	case c.RackSize < 0:
		return fmt.Errorf("pfs: RackSize %d", c.RackSize)
	case c.DetectDelay < 0:
		return fmt.Errorf("pfs: DetectDelay %v", c.DetectDelay)
	case c.RebuildBandwidth < 0:
		return fmt.Errorf("pfs: RebuildBandwidth %d", c.RebuildBandwidth)
	case c.RebuildChunkBytes < 0:
		return fmt.Errorf("pfs: RebuildChunkBytes %d", c.RebuildChunkBytes)
	}
	return nil
}

// FileSystem ties the metadata server and data servers together.
type FileSystem struct {
	k       *sim.Kernel
	net     *netsim.Network
	cfg     Config
	servers []*Server
	meta    *MetaServer
	obs     *obs.Collector
	faults  *fault.Injector
	retries int64

	// Replication and crash-tolerance state (see replica.go). offsets maps
	// replica rank -> server-index offset; down and rebuilding are the
	// failure detector's view of each server; viewSig broadcasts on every
	// view change so quorum waiters and failover readers recompute.
	offsets    []int
	down       []bool
	rebuilding []bool
	viewSig    *sim.Signal
	ledger     *rebuildLedger
	tracker    *Tracker
	verCounter int64
	failovers  int64

	// Audit byte ledgers (nil = audit off): logical bytes each server's
	// store served for client requests, and bytes its store moved for
	// replica rebuild copies. Their sum must equal the store's own logical
	// counters at end of run.
	audit        check.Ledger
	auditServed  []int64
	auditRebuild []int64

	// Free lists for the per-operation transfer records. A steady-state
	// client op on the legacy path then allocates nothing: requests, retry
	// records, and the per-server extent lists all cycle through these.
	// Push/pop happens only between parks, so strict alternation is the
	// lock. Recycling is conservative: a request that might still be
	// referenced by an in-flight duplicate attempt is simply dropped to the
	// garbage collector (see legacyTransfer).
	reqFree   []*serverReq
	issFree   []*issued
	splitFree [][][]ext.Extent
}

// getServerReq pops a recycled request (or allocates the pool's first).
// The embedded completion signal keeps its waiter-list capacity across
// reuses, so re-arming a wait on it allocates nothing either.
func (fsys *FileSystem) getServerReq() *serverReq {
	if n := len(fsys.reqFree); n > 0 {
		r := fsys.reqFree[n-1]
		fsys.reqFree = fsys.reqFree[:n-1]
		return r
	}
	return &serverReq{}
}

// putServerReq recycles a finished request. The caller must guarantee no
// other reference survives (no duplicate attempt in flight, completion
// signal drained).
func (fsys *FileSystem) putServerReq(r *serverReq) {
	sig := r.sig // keep the waiter list's backing array
	*r = serverReq{sig: sig}
	fsys.reqFree = append(fsys.reqFree, r)
}

// getIssued / putIssued recycle retry records; the attempts slice keeps its
// capacity across reuses.
func (fsys *FileSystem) getIssued() *issued {
	if n := len(fsys.issFree); n > 0 {
		is := fsys.issFree[n-1]
		fsys.issFree = fsys.issFree[:n-1]
		return is
	}
	return &issued{}
}

func (fsys *FileSystem) putIssued(is *issued) {
	attempts := is.attempts[:0]
	*is = issued{attempts: attempts}
	fsys.issFree = append(fsys.issFree, is)
}

// getSplitBuf checks out a per-server extent-list buffer for splitInto.
// Concurrent transfers each hold their own buffer until their requests are
// dead, then return it with putSplitBuf; the per-server sub-slices keep
// their capacity across reuses.
func (fsys *FileSystem) getSplitBuf() [][]ext.Extent {
	if n := len(fsys.splitFree); n > 0 {
		b := fsys.splitFree[n-1]
		fsys.splitFree = fsys.splitFree[:n-1]
		return b
	}
	return make([][]ext.Extent, fsys.NumServers())
}

func (fsys *FileSystem) putSplitBuf(b [][]ext.Extent) {
	for i := range b {
		b[i] = b[i][:0]
	}
	fsys.splitFree = append(fsys.splitFree, b)
}

// Server is one data server.
type Server struct {
	fsys  *FileSystem
	Index int // position in the stripe rotation
	Node  int // network node id
	Store *fs.Store
	queue *sim.Queue[*serverReq]
}

// MetaServer handles open/create and hosts DualPar's EMC daemon (the core
// package attaches it).
type MetaServer struct {
	Node  int
	sizes map[string]int64
}

type serverReq struct {
	file    string
	extents []ext.Extent // server-local byte space
	write   bool
	origin  int
	client  int         // requesting network node
	done    *sim.Signal // completion signal; replica attempts share the group's
	sig     sim.Signal  // backing storage for done on the single-attempt path
	fin     bool
	rc      obs.Ctx       // originating traced request
	enq     time.Duration // enqueue time (queue-wait annotation)
	ver     int64         // integrity-tracker write version (0 = untracked)
}

// New assembles a file system from per-server stores. serverNodes[i] is the
// network node of data server i.
func New(k *sim.Kernel, net *netsim.Network, cfg Config, metaNode int, serverNodes []int, stores []*fs.Store) *FileSystem {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(serverNodes) == 0 || len(serverNodes) != len(stores) {
		panic("pfs: servers and stores mismatch")
	}
	if cfg.Replicas > len(serverNodes) {
		panic(fmt.Sprintf("pfs: %d replicas on %d servers", cfg.Replicas, len(serverNodes)))
	}
	fsys := &FileSystem{
		k:          k,
		net:        net,
		cfg:        cfg,
		meta:       &MetaServer{Node: metaNode, sizes: make(map[string]int64)},
		offsets:    replicaOffsets(len(serverNodes), cfg.Replicas, cfg.RackSize),
		down:       make([]bool, len(serverNodes)),
		rebuilding: make([]bool, len(serverNodes)),
		viewSig:    k.NewSignal(),
		ledger:     newRebuildLedger(len(serverNodes)),
	}
	for i, node := range serverNodes {
		srv := &Server{
			fsys:  fsys,
			Index: i,
			Node:  node,
			Store: stores[i],
			queue: sim.NewQueue[*serverReq](k),
		}
		fsys.servers = append(fsys.servers, srv)
		for w := 0; w < cfg.WorkersPerServer; w++ {
			track := fmt.Sprintf("server%d/worker%d", i, w)
			k.Spawn("pfs/"+track, func(p *sim.Proc) { srv.workerLoop(p, track) })
		}
	}
	return fsys
}

// Config returns the file system configuration.
func (fsys *FileSystem) Config() Config { return fsys.cfg }

// SetObs attaches the observability collector: traced requests then record
// per-worker StageServer spans.
func (fsys *FileSystem) SetObs(c *obs.Collector) { fsys.obs = c }

// SetAudit attaches the audit ledger and starts per-server byte accounting:
// logical bytes served to clients and logical bytes moved by rebuild copies,
// which together must match each store's own counters once the run drains.
func (fsys *FileSystem) SetAudit(l check.Ledger) {
	fsys.audit = l
	fsys.auditServed = make([]int64, len(fsys.servers))
	fsys.auditRebuild = make([]int64, len(fsys.servers))
}

// AuditServedBytes reports the logical bytes server i's store served for
// client requests since SetAudit (counted whether or not the ack survived a
// crash window — the store moved the bytes either way).
func (fsys *FileSystem) AuditServedBytes(i int) int64 { return fsys.auditServed[i] }

// AuditRebuildBytes reports the logical bytes server i's store read or wrote
// for replica rebuild copies since SetAudit.
func (fsys *FileSystem) AuditRebuildBytes(i int) int64 { return fsys.auditRebuild[i] }

// SetFaults attaches a fault injector; data servers then honor the
// schedule's stall and CPU-slowdown windows. A nil injector is a no-op.
// Crash windows additionally arm the failure detector: DetectDelay after
// each crash or recovery the client view updates, and a recovery kicks off
// the online rebuild.
func (fsys *FileSystem) SetFaults(inj *fault.Injector) {
	fsys.faults = inj
	if inj.HasCrashWindows() {
		inj.OnServerState(func(server int, up bool, at time.Duration) {
			if server < 0 || server >= len(fsys.servers) {
				return
			}
			fsys.k.After(fsys.detectDelay(), func() { fsys.setDown(server, !up) })
		})
	}
}

// Retries reports how many client request reissues the timeout watchdog
// performed.
func (fsys *FileSystem) Retries() int64 { return fsys.retries }

// Failovers reports how many read reissues went to a different replica
// than the previous attempt.
func (fsys *FileSystem) Failovers() int64 { return fsys.failovers }

// Alive reports the failure detector's view of a data server: false from
// DetectDelay after a crash until DetectDelay after its recovery. EMC uses
// it to drop dead servers from the seek medians, CRM to route around them.
func (fsys *FileSystem) Alive(server int) bool {
	return server >= 0 && server < len(fsys.down) && !fsys.down[server]
}

// FileSize reports the size currently recorded at the metadata server (the
// high-water mark of creates and completed writes; 0 for unknown files).
// Unlike Client.Open this is a zero-cost peek for co-located control
// planes such as CRM, which conceptually runs beside the metadata server.
func (fsys *FileSystem) FileSize(name string) int64 { return fsys.meta.sizes[name] }

// Obs returns the attached collector (nil when tracing is off).
func (fsys *FileSystem) Obs() *obs.Collector { return fsys.obs }

// Servers returns the data servers.
func (fsys *FileSystem) Servers() []*Server { return fsys.servers }

// Meta returns the metadata server.
func (fsys *FileSystem) Meta() *MetaServer { return fsys.meta }

// NumServers reports the stripe width.
func (fsys *FileSystem) NumServers() int { return len(fsys.servers) }

// serverOriginBase keeps server-process origins clear of client origins.
const serverOriginBase = 1 << 21

// DiskOrigin is the origin tag this server's disk requests carry for a
// request from the given client origin.
func (srv *Server) DiskOrigin(clientOrigin int) int {
	if srv.fsys.cfg.ClientDiskOrigins {
		return clientOrigin
	}
	return serverOriginBase + srv.Index
}

func (srv *Server) workerLoop(p *sim.Proc, track string) {
	fsys := srv.fsys
	for {
		req := srv.queue.Get(p)
		start := p.Now()
		// A crash-stop window voids the in-flight queue: anything enqueued
		// before or during the crash is dropped unanswered, and missed
		// writes are noted for the online rebuild.
		if fsys.faults.CrashedDuring(srv.Index, req.enq, p.Now()) {
			srv.dropCrashed(req, p.Now())
			continue
		}
		// An active stall window freezes service: the request sits in the
		// worker until the window closes (the queue keeps filling behind it).
		if until := fsys.faults.StallUntil(srv.Index, p.Now()); until > p.Now() {
			p.Sleep(until - p.Now())
		}
		cpu := fsys.cfg.RequestCPU
		if j := fsys.cfg.RequestJitter; j > 0 && cpu > 0 {
			f := 1 + (fsys.k.Rand().Float64()*2-1)*j
			cpu = time.Duration(float64(cpu) * f)
		}
		if f := fsys.faults.ServerFactor(srv.Index, p.Now()); f > 1 {
			cpu = time.Duration(float64(cpu) * f)
		}
		p.Sleep(cpu)
		origin := srv.DiskOrigin(req.origin)
		if req.write {
			srv.Store.WriteMulti(p, req.file, req.extents, origin, req.rc)
		} else {
			srv.Store.ReadMulti(p, req.file, req.extents, origin, req.rc)
		}
		if fsys.auditServed != nil {
			// Counted right after the store call, before the post-service
			// crash check: a dropped ack does not undo the bytes the store
			// already moved (and already counted on its side).
			fsys.auditServed[srv.Index] += ext.Total(req.extents)
		}
		// A crash that struck mid-service died holding the answer: the
		// write may have reached the platter but no ack leaves the box, so
		// the replica is treated as having missed it (rebuild re-copies).
		if fsys.faults.CrashedDuring(srv.Index, start, p.Now()) {
			srv.dropCrashed(req, p.Now())
			continue
		}
		if req.write {
			fsys.tracker.apply(srv.Index, req.file, req.extents, req.ver)
			// Small acknowledgment back to the client.
			fsys.net.Send(p, srv.Node, req.client, fsys.cfg.HeaderBytes)
		} else {
			fsys.net.Send(p, srv.Node, req.client, fsys.cfg.HeaderBytes+ext.Total(req.extents))
		}
		if req.rc.Traced() {
			rw := "read"
			if req.write {
				rw = "write"
			}
			fsys.obs.Span(req.rc.ID, obs.StageServer, track, start, p.Now(),
				obs.Str("rw", rw), obs.I64("bytes", ext.Total(req.extents)),
				obs.I64("extents", int64(len(req.extents))),
				obs.I64("queue_us", int64((start-req.enq)/time.Microsecond)),
				obs.I64("queue_ns", int64(start-req.enq)))
		}
		req.fin = true
		req.done.Broadcast()
	}
}

// dropCrashed voids a request lost to a crash-stop window: no ack is sent
// (the client's watchdog recovers), and a voided write is noted in the
// rebuild ledger so the recovering replica re-copies it from a peer.
func (srv *Server) dropCrashed(req *serverReq, now time.Duration) {
	fsys := srv.fsys
	if req.write {
		fsys.ledger.add(srv.Index, req.file, req.extents)
	}
	rw := "read"
	if req.write {
		rw = "write"
	}
	fsys.obs.Instant("pfs.lost", fmt.Sprintf("server%d", srv.Index), now,
		obs.Str("rw", rw), obs.Str("file", req.file),
		obs.I64("bytes", ext.Total(req.extents)))
}

// split maps file-global extents to per-server local extent lists.
func (fsys *FileSystem) split(extents []ext.Extent) [][]ext.Extent {
	out := make([][]ext.Extent, fsys.NumServers())
	fsys.splitInto(out, extents)
	return out
}

// splitInto is split appending into a caller-provided buffer (len =
// NumServers, every sub-slice empty), so the hot path can reuse checked-out
// buffers instead of allocating per operation.
func (fsys *FileSystem) splitInto(out [][]ext.Extent, extents []ext.Extent) {
	n := int64(fsys.NumServers())
	unit := fsys.cfg.StripeUnit
	ext.VisitSplit(extents, unit, func(piece ext.Extent) {
		stripe := piece.Off / unit
		srv := stripe % n
		local := (stripe/n)*unit + piece.Off%unit
		lst := out[srv]
		if len(lst) > 0 && lst[len(lst)-1].End() == local {
			lst[len(lst)-1].Len += piece.Len
			out[srv] = lst
		} else {
			out[srv] = append(lst, ext.Extent{Off: local, Len: piece.Len})
		}
	})
}

// LocalOffset translates a file-global offset to (server index, local
// offset) — exposed for layout-aware tooling and tests.
func (fsys *FileSystem) LocalOffset(off int64) (server int, local int64) {
	unit := fsys.cfg.StripeUnit
	stripe := off / unit
	n := int64(fsys.NumServers())
	return int(stripe % n), (stripe/n)*unit + off%unit
}
