package pfs

import (
	"sort"

	"dualpar/internal/ext"
)

// The integrity tracker is the simulator's stand-in for checksumming real
// data: the simulation moves no bytes, so instead every completed logical
// write gets a monotonically increasing version stamp, recorded both as
// the "expected" content of the logical file (in global coordinates) and
// as the "applied" content of each replica that served it (in server-local
// coordinates). Replicas apply stamps with max-wins semantics, so
// re-ordered duplicates from retries converge. A replica that missed a
// write (crashed) keeps the stale stamp until the online rebuild copies a
// peer's — exactly the window a real checksum oracle would flag.

// VersionSeg is one byte range and the write version stamped on it
// (0 = never written; negative = deliberately corrupted).
type VersionSeg struct {
	Ext ext.Extent
	Ver int64
}

// Tracker holds version stamps while integrity checking is enabled.
type Tracker struct {
	expected map[string][]VersionSeg         // logical file -> global segs
	applied  map[int]map[string][]VersionSeg // server -> replica file -> local segs
}

// EnableIntegrity arms the end-to-end data-integrity oracle and returns
// the tracker. Tracking is pure bookkeeping: it adds no simulation events,
// so enabling it does not perturb the timeline.
func (fsys *FileSystem) EnableIntegrity() *Tracker {
	if fsys.tracker == nil {
		fsys.tracker = &Tracker{
			expected: make(map[string][]VersionSeg),
			applied:  make(map[int]map[string][]VersionSeg),
		}
	}
	return fsys.tracker
}

// Tracker returns the integrity tracker (nil when not enabled).
func (fsys *FileSystem) Tracker() *Tracker { return fsys.tracker }

// Files lists every logical file with expected content, sorted.
func (t *Tracker) Files() []string {
	names := make([]string, 0, len(t.expected))
	for name := range t.expected {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Expected returns the logical file's expected version segs (global
// coordinates, sorted, non-overlapping).
func (t *Tracker) Expected(name string) []VersionSeg { return t.expected[name] }

// recordExpected stamps a completed logical write.
func (t *Tracker) recordExpected(name string, extents []ext.Extent, ver int64) {
	if t == nil {
		return
	}
	segs := t.expected[name]
	for _, e := range extents {
		segs = overlaySegs(segs, e, ver, false)
	}
	t.expected[name] = segs
}

// apply stamps a write as applied by one replica (max-wins).
func (t *Tracker) apply(server int, file string, extents []ext.Extent, ver int64) {
	if t == nil || ver == 0 {
		return
	}
	m := t.applied[server]
	if m == nil {
		m = make(map[string][]VersionSeg)
		t.applied[server] = m
	}
	segs := m[file]
	for _, e := range extents {
		segs = overlaySegs(segs, e, ver, false)
	}
	m[file] = segs
}

// query returns the version segs a replica holds over one local extent,
// with unwritten gaps reported as version 0.
func (t *Tracker) query(server int, file string, e ext.Extent) []VersionSeg {
	var out []VersionSeg
	cur := e.Off
	if t != nil {
		for _, s := range t.applied[server][file] {
			if s.Ext.End() <= e.Off || s.Ext.Off >= e.End() {
				continue
			}
			off := max(s.Ext.Off, e.Off)
			end := min(s.Ext.End(), e.End())
			if off > cur {
				out = append(out, VersionSeg{Ext: ext.Extent{Off: cur, Len: off - cur}})
			}
			out = append(out, VersionSeg{Ext: ext.Extent{Off: off, Len: end - off}, Ver: s.Ver})
			cur = end
		}
	}
	if cur < e.End() {
		out = append(out, VersionSeg{Ext: ext.Extent{Off: cur, Len: e.End() - cur}})
	}
	return out
}

// copyApplied copies a peer's stamps onto a rebuilt range (max-wins, so a
// write applied after recovery is never regressed by the copy).
func (t *Tracker) copyApplied(fromServer int, fromFile string, toServer int, toFile string, e ext.Extent) {
	if t == nil {
		return
	}
	for _, s := range t.query(fromServer, fromFile, e) {
		if s.Ver == 0 {
			continue
		}
		m := t.applied[toServer]
		if m == nil {
			m = make(map[string][]VersionSeg)
			t.applied[toServer] = m
		}
		m[toFile] = overlaySegs(m[toFile], s.Ext, s.Ver, false)
	}
}

// Corrupt force-stamps a replica's local range with version -1 — the
// simulator's bit flip. A later read served by this replica returns the
// corrupted stamp and fails the oracle; max-wins copy semantics keep the
// corruption from ever propagating to peers.
func (t *Tracker) Corrupt(server int, file string, e ext.Extent) {
	if t == nil {
		return
	}
	m := t.applied[server]
	if m == nil {
		m = make(map[string][]VersionSeg)
		t.applied[server] = m
	}
	m[file] = overlaySegs(m[file], e, -1, true)
}

// overlaySegs overlays [e.Off, e.End()) with ver onto a sorted,
// non-overlapping seg list. force overwrites unconditionally; otherwise
// the higher version wins per byte.
func overlaySegs(segs []VersionSeg, e ext.Extent, ver int64, force bool) []VersionSeg {
	if e.Len <= 0 {
		return segs
	}
	var before, inside, after []VersionSeg
	for _, s := range segs {
		if s.Ext.Off < e.Off {
			l := min(s.Ext.End(), e.Off) - s.Ext.Off
			before = append(before, VersionSeg{Ext: ext.Extent{Off: s.Ext.Off, Len: l}, Ver: s.Ver})
		}
		if s.Ext.End() > e.End() {
			off := max(s.Ext.Off, e.End())
			after = append(after, VersionSeg{Ext: ext.Extent{Off: off, Len: s.Ext.End() - off}, Ver: s.Ver})
		}
		off := max(s.Ext.Off, e.Off)
		end := min(s.Ext.End(), e.End())
		if end > off {
			v := s.Ver
			if force || ver > v {
				v = ver
			}
			inside = append(inside, VersionSeg{Ext: ext.Extent{Off: off, Len: end - off}, Ver: v})
		}
	}
	filled := before
	cur := e.Off
	for _, s := range inside {
		if s.Ext.Off > cur {
			filled = append(filled, VersionSeg{Ext: ext.Extent{Off: cur, Len: s.Ext.Off - cur}, Ver: ver})
		}
		filled = append(filled, s)
		cur = s.Ext.End()
	}
	if cur < e.End() {
		filled = append(filled, VersionSeg{Ext: ext.Extent{Off: cur, Len: e.End() - cur}, Ver: ver})
	}
	filled = append(filled, after...)
	return coalesceSegs(filled)
}

// coalesceSegs merges adjacent segs with equal versions.
func coalesceSegs(segs []VersionSeg) []VersionSeg {
	out := segs[:0]
	for _, s := range segs {
		if n := len(out); n > 0 && out[n-1].Ver == s.Ver && out[n-1].Ext.End() == s.Ext.Off {
			out[n-1].Ext.Len += s.Ext.Len
			continue
		}
		out = append(out, s)
	}
	return out
}
