package pfs

import (
	"container/heap"
	"sort"

	"dualpar/internal/ext"
)

// The integrity tracker is the simulator's stand-in for checksumming real
// data: the simulation moves no bytes, so instead every completed logical
// write gets a monotonically increasing version stamp, recorded both as
// the "expected" content of the logical file (in global coordinates) and
// as the "applied" content of each replica that served it (in server-local
// coordinates). Replicas apply stamps with max-wins semantics, so
// re-ordered duplicates from retries converge. A replica that missed a
// write (crashed) keeps the stale stamp until the online rebuild copies a
// peer's — exactly the window a real checksum oracle would flag.

// VersionSeg is one byte range and the write version stamped on it
// (0 = never written; negative = deliberately corrupted).
type VersionSeg struct {
	Ext ext.Extent
	Ver int64
}

// segList holds the stamps for one range space (a logical file or one
// replica's local file). Stamping appends to a pending buffer in O(1);
// the canonical sorted list is rebuilt lazily on first read. Max-wins
// per byte is commutative, so deferring the fold preserves semantics —
// and keeps an audited run from going quadratic in the write count
// (every write used to rebuild the whole list).
type segList struct {
	segs    []VersionSeg // sorted, non-overlapping, coalesced
	pending []VersionSeg // stamps not yet folded in
}

func (l *segList) add(e ext.Extent, ver int64) {
	if e.Len > 0 {
		l.pending = append(l.pending, VersionSeg{Ext: e, Ver: ver})
	}
}

// compacted folds pending stamps into the canonical list and returns it.
func (l *segList) compacted() []VersionSeg {
	if len(l.pending) > 0 {
		all := make([]VersionSeg, 0, len(l.segs)+len(l.pending))
		all = append(all, l.segs...)
		all = append(all, l.pending...)
		l.segs = mergeMaxWins(all)
		l.pending = l.pending[:0]
	}
	return l.segs
}

// overlayForce stamps a range unconditionally (the corruption path, which
// must beat max-wins). Pending stamps are folded first so ordering against
// earlier writes is preserved; later writes max-win over the forced stamp
// exactly as they did before.
func (l *segList) overlayForce(e ext.Extent, ver int64) {
	l.segs = overlaySegs(l.compacted(), e, ver, true)
}

// Tracker holds version stamps while integrity checking is enabled.
type Tracker struct {
	expected map[string]*segList         // logical file -> global segs
	applied  map[int]map[string]*segList // server -> replica file -> local segs
}

// EnableIntegrity arms the end-to-end data-integrity oracle and returns
// the tracker. Tracking is pure bookkeeping: it adds no simulation events,
// so enabling it does not perturb the timeline.
func (fsys *FileSystem) EnableIntegrity() *Tracker {
	if fsys.tracker == nil {
		fsys.tracker = &Tracker{
			expected: make(map[string]*segList),
			applied:  make(map[int]map[string]*segList),
		}
	}
	return fsys.tracker
}

// Tracker returns the integrity tracker (nil when not enabled).
func (fsys *FileSystem) Tracker() *Tracker { return fsys.tracker }

func (t *Tracker) expectedList(name string) *segList {
	l := t.expected[name]
	if l == nil {
		l = &segList{}
		t.expected[name] = l
	}
	return l
}

func (t *Tracker) appliedList(server int, file string) *segList {
	m := t.applied[server]
	if m == nil {
		m = make(map[string]*segList)
		t.applied[server] = m
	}
	l := m[file]
	if l == nil {
		l = &segList{}
		m[file] = l
	}
	return l
}

// Files lists every logical file with expected content, sorted.
func (t *Tracker) Files() []string {
	names := make([]string, 0, len(t.expected))
	for name := range t.expected {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Expected returns the logical file's expected version segs (global
// coordinates, sorted, non-overlapping).
func (t *Tracker) Expected(name string) []VersionSeg {
	if l := t.expected[name]; l != nil {
		return l.compacted()
	}
	return nil
}

// recordExpected stamps a completed logical write.
func (t *Tracker) recordExpected(name string, extents []ext.Extent, ver int64) {
	if t == nil {
		return
	}
	l := t.expectedList(name)
	for _, e := range extents {
		l.add(e, ver)
	}
}

// apply stamps a write as applied by one replica (max-wins).
func (t *Tracker) apply(server int, file string, extents []ext.Extent, ver int64) {
	if t == nil || ver == 0 {
		return
	}
	l := t.appliedList(server, file)
	for _, e := range extents {
		l.add(e, ver)
	}
}

// query returns the version segs a replica holds over one local extent,
// with unwritten gaps reported as version 0.
func (t *Tracker) query(server int, file string, e ext.Extent) []VersionSeg {
	var segs []VersionSeg
	if t != nil {
		if m := t.applied[server]; m != nil {
			if l := m[file]; l != nil {
				segs = l.compacted()
			}
		}
	}
	return segsOver(segs, e)
}

// copyApplied copies a peer's stamps onto a rebuilt range (max-wins, so a
// write applied after recovery is never regressed by the copy).
func (t *Tracker) copyApplied(fromServer int, fromFile string, toServer int, toFile string, e ext.Extent) {
	if t == nil {
		return
	}
	var dst *segList
	for _, s := range t.query(fromServer, fromFile, e) {
		if s.Ver == 0 {
			continue
		}
		if dst == nil {
			dst = t.appliedList(toServer, toFile)
		}
		dst.add(s.Ext, s.Ver)
	}
}

// Corrupt force-stamps a replica's local range with version -1 — the
// simulator's bit flip. A later read served by this replica returns the
// corrupted stamp and fails the oracle; max-wins copy semantics keep the
// corruption from ever propagating to peers.
func (t *Tracker) Corrupt(server int, file string, e ext.Extent) {
	if t == nil {
		return
	}
	t.appliedList(server, file).overlayForce(e, -1)
}

// segEvent is one boundary in the mergeMaxWins sweep.
type segEvent struct {
	off   int64
	ver   int64
	start bool
}

// verHeap is a max-heap of active versions for the sweep.
type verHeap []int64

func (h verHeap) Len() int           { return len(h) }
func (h verHeap) Less(i, j int) bool { return h[i] > h[j] }
func (h verHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *verHeap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *verHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeMaxWins canonicalises an arbitrary (unsorted, overlapping) stamp
// list into sorted, non-overlapping, coalesced segs, keeping the highest
// version per byte. Boundary sweep with a lazily-pruned max-heap of active
// versions: O(n log n) in the stamp count.
func mergeMaxWins(stamps []VersionSeg) []VersionSeg {
	evs := make([]segEvent, 0, 2*len(stamps))
	for _, s := range stamps {
		if s.Ext.Len <= 0 {
			continue
		}
		evs = append(evs,
			segEvent{off: s.Ext.Off, ver: s.Ver, start: true},
			segEvent{off: s.Ext.End(), ver: s.Ver})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].off < evs[j].off })

	var (
		out    []VersionSeg
		active verHeap
		dead   = make(map[int64]int)
	)
	emit := func(off, end int64) {
		for active.Len() > 0 && dead[active[0]] > 0 {
			dead[active[0]]--
			heap.Pop(&active)
		}
		if end <= off || active.Len() == 0 {
			return
		}
		v := active[0]
		if n := len(out); n > 0 && out[n-1].Ver == v && out[n-1].Ext.End() == off {
			out[n-1].Ext.Len += end - off
			return
		}
		out = append(out, VersionSeg{Ext: ext.Extent{Off: off, Len: end - off}, Ver: v})
	}
	var prev int64
	for i := 0; i < len(evs); {
		off := evs[i].off
		emit(prev, off)
		for ; i < len(evs) && evs[i].off == off; i++ {
			if evs[i].start {
				heap.Push(&active, evs[i].ver)
			} else {
				dead[evs[i].ver]++
			}
		}
		prev = off
	}
	return out
}

// overlaySegs overlays [e.Off, e.End()) with ver onto a sorted,
// non-overlapping seg list. force overwrites unconditionally; otherwise
// the higher version wins per byte. Used only on the rare forced path —
// the bulk stamping goes through segList.add + mergeMaxWins.
func overlaySegs(segs []VersionSeg, e ext.Extent, ver int64, force bool) []VersionSeg {
	if e.Len <= 0 {
		return segs
	}
	var before, inside, after []VersionSeg
	for _, s := range segs {
		if s.Ext.Off < e.Off {
			l := min(s.Ext.End(), e.Off) - s.Ext.Off
			before = append(before, VersionSeg{Ext: ext.Extent{Off: s.Ext.Off, Len: l}, Ver: s.Ver})
		}
		if s.Ext.End() > e.End() {
			off := max(s.Ext.Off, e.End())
			after = append(after, VersionSeg{Ext: ext.Extent{Off: off, Len: s.Ext.End() - off}, Ver: s.Ver})
		}
		off := max(s.Ext.Off, e.Off)
		end := min(s.Ext.End(), e.End())
		if end > off {
			v := s.Ver
			if force || ver > v {
				v = ver
			}
			inside = append(inside, VersionSeg{Ext: ext.Extent{Off: off, Len: end - off}, Ver: v})
		}
	}
	filled := before
	cur := e.Off
	for _, s := range inside {
		if s.Ext.Off > cur {
			filled = append(filled, VersionSeg{Ext: ext.Extent{Off: cur, Len: s.Ext.Off - cur}, Ver: ver})
		}
		filled = append(filled, s)
		cur = s.Ext.End()
	}
	if cur < e.End() {
		filled = append(filled, VersionSeg{Ext: ext.Extent{Off: cur, Len: e.End() - cur}, Ver: ver})
	}
	filled = append(filled, after...)
	return coalesceSegs(filled)
}

// coalesceSegs merges adjacent segs with equal versions.
func coalesceSegs(segs []VersionSeg) []VersionSeg {
	out := segs[:0]
	for _, s := range segs {
		if n := len(out); n > 0 && out[n-1].Ver == s.Ver && out[n-1].Ext.End() == s.Ext.Off {
			out[n-1].Ext.Len += s.Ext.Len
			continue
		}
		out = append(out, s)
	}
	return out
}
