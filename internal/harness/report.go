package harness

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"dualpar/internal/cluster"
	"dualpar/internal/obs"
	"dualpar/internal/obs/analyze"
)

// reportRuns arms run-level time attribution on every experiment run. Set
// once by SetReport before the suite starts (the worker pool reads it
// concurrently).
var reportRuns bool

// SetReport makes every subsequent experiment run attach a collector and
// analyze where its simulated time went; DrainReports returns the
// accumulated attributions. Off by default: tracing every cell of a sweep
// costs memory proportional to its span count.
func SetReport(v bool) { reportRuns = v }

// RunReport pairs one run's deterministic identity with its attribution.
type RunReport struct {
	Key    string
	Report *analyze.Report
}

var (
	reportMu   sync.Mutex
	reportSink map[string]*analyze.Report
)

// reportKey names a run by the spec the harness can see — cluster seed plus
// each program's identity, mode, placement, and start — and a fingerprint of
// the recorded timeline itself. The spec alone is not unique (sweeps rerun
// the same program with different workload internals or core configs), so
// the span hash does the disambiguation: runs with equal keys recorded
// byte-identical timelines and therefore interchangeable reports, keeping
// DrainReports independent of which concurrent cell stored last.
func reportKey(cl *cluster.Cluster, specs []runSpec, col *obs.Collector) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", cl.Config().Seed)
	for _, sp := range specs {
		fmt.Fprintf(&b, "|%s/%s/r%d/off%d/at%s",
			sp.prog.Name(), sp.mode, sp.prog.Ranks(), sp.nodeOff, sp.startAt)
	}
	h := fnv.New64a()
	for _, s := range col.Spans() {
		fmt.Fprintf(h, "%d/%s/%s/%d/%d;", s.ID, s.Stage, s.Track, s.Start, s.End)
	}
	fmt.Fprintf(&b, "#%016x", h.Sum64())
	return b.String()
}

// recordReport analyzes one finished run's collector into the sink.
func recordReport(key string, col *obs.Collector) {
	rep := analyze.FromCollector(col, analyze.Options{})
	reportMu.Lock()
	defer reportMu.Unlock()
	if reportSink == nil {
		reportSink = make(map[string]*analyze.Report)
	}
	reportSink[key] = rep
}

// DrainReports returns all accumulated run reports sorted by key and clears
// the sink. The order — and therefore any rendering of it — is independent
// of sweep parallelism.
func DrainReports() []RunReport {
	reportMu.Lock()
	defer reportMu.Unlock()
	out := make([]RunReport, 0, len(reportSink))
	for k, r := range reportSink {
		out = append(out, RunReport{Key: k, Report: r})
	}
	reportSink = nil
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
