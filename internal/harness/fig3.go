package harness

import (
	"fmt"
	"time"

	"dualpar/internal/core"
	"dualpar/internal/metrics"
	"dualpar/internal/workloads"
)

// fig3Sizes returns the scaled data volumes for the single-application
// comparison (paper: mpi-io-test 2 GB / 16 KB, noncontig vector columns,
// ior-mpi-io 16 GB / 32 KB; all with 64 processes).
func fig3Sizes(quick bool) (mpiio, noncontig, ior int64) {
	if quick {
		return 16 << 20, 16 << 20, 16 << 20
	}
	return 128 << 20, 96 << 20, 128 << 20
}

// fig3Program builds one of the three workloads in read or write mode.
func fig3Program(name string, write bool, quick bool) workloads.Program {
	szM, szN, szI := fig3Sizes(quick)
	switch name {
	case "mpi-io-test":
		m := workloads.DefaultMPIIOTest()
		m.FileBytes = szM
		m.Write = write
		return m
	case "noncontig":
		n := workloads.DefaultNoncontig()
		n.FileBytes = szN
		n.Write = write
		return n
	case "ior-mpi-io":
		i := workloads.DefaultIOR()
		i.FileBytes = szI
		i.Write = write
		return i
	}
	panic("unknown fig3 program " + name)
}

// Fig3 regenerates Figure 3: system I/O throughput of a single program
// under vanilla MPI-IO, collective I/O, and DualPar, for reads (a) and
// writes (b).
func Fig3(o Opts) *Result {
	o = o.forSweep()
	res := &Result{
		ID:    "fig3",
		Title: "Fig 3: single-application system I/O throughput (MB/s)",
		Table: &metrics.Table{Header: []string{"program", "rw", "vanilla", "collective", "dualpar"}},
	}
	res.note("paper (read MB/s): mpi-io-test 115/117/263, noncontig 155/248/390, ior-mpi-io ~170/~150/~390")
	res.note("paper (write): DualPar +35%% over vanilla on ior-mpi-io; roughly 2x on mpi-io-test")
	res.note("files scaled from 2-16 GB to 96-128 MB; shapes, not absolutes, are the target")
	rws := []struct {
		label string
		write bool
	}{{"read", false}, {"write", true}}
	names := []string{"mpi-io-test", "noncontig", "ior-mpi-io"}
	cells := make([]Cell, 0, len(rws)*len(names)*len(threeSchemes))
	vals := make([][]string, len(rws)*len(names))
	for i := range vals {
		vals[i] = make([]string, len(threeSchemes))
	}
	for ri, rw := range rws {
		for ni, name := range names {
			row := vals[ri*len(names)+ni]
			for si, sch := range threeSchemes {
				cells = append(cells, Cell{
					Key: fmt.Sprintf("fig3/%s/%s/%s", rw.label, name, sch.label),
					Run: func() {
						prog := fig3Program(name, rw.write, o.Quick)
						ms, _ := execute(o.seed(), false, 4*time.Hour, core.DefaultConfig(),
							[]runSpec{{prog: prog, mode: sch.mode}})
						row[si] = mb(ms[0].throughputMBs())
						o.logf("fig3 %s %s %s: %.1f MB/s (%.2fs)", name, rw.label, sch.label,
							ms[0].throughputMBs(), ms[0].elapsed.Seconds())
					},
				})
			}
		}
	}
	runSweep(o, cells)
	for ri, rw := range rws {
		for ni, name := range names {
			res.Table.AddRow(append([]string{name, rw.label}, vals[ri*len(names)+ni]...)...)
		}
	}
	return res
}
