package harness

import (
	"fmt"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/fs"
	"dualpar/internal/metrics"
	"dualpar/internal/workloads"
)

// enginesProg scales the §II demo for the engine sweep. Write mode keeps
// the identical access pattern with the direction flipped, so the same
// cell grid exposes each engine's read-seek profile and write-landing
// policy (update-in-place vs. sequential log append).
func enginesProg(quick, write bool) workloads.Demo {
	d := workloads.DefaultDemo()
	calls := int64(48)
	if quick {
		calls = 12
	}
	d.FileBytes = calls * int64(d.Procs) * int64(d.SegsPerCall) * d.SegBytes
	d.Write = write
	d.FileName = "engines.dat"
	return d
}

// Engines sweeps storage engine × scheme × workload direction: the same
// demo program runs on the contiguous-extent default, the B+tree-indexed
// fragmented layout (aged FS), and the log-structured engine, under
// vanilla and DualPar execution (plus collective in the full suite). The
// question it answers is the one the paper leaves open: DualPar's win
// comes from reordering reads around seeks — does it survive on backends
// whose seek profile is different (aged/fragmented) or whose writes are
// sequential by construction (LSM)? Alongside throughput, each cell
// reports the disks' positioning-vs-payload split (seek+rotation time vs
// media transfer time), which is the mechanism, not just the outcome.
func Engines(o Opts) *Result {
	res := &Result{
		ID:    "engines",
		Title: "Storage-engine sweep: extent vs B+tree (aged) vs LSM, demo workload",
		Table: &metrics.Table{Header: []string{
			"engine", "workload", "scheme", "MB/s", "seek_s", "transfer_s", "seek_frac"}},
	}
	o = o.forSweep()

	schemes := threeSchemes
	if o.Quick {
		schemes = schemes[:1:1]
		schemes = append(schemes, threeSchemes[2]) // vanilla + dualpar
	}
	dirs := []struct {
		label string
		write bool
	}{{"read", false}, {"write", true}}
	engines := fs.Engines()
	res.note("seek_s aggregates disk positioning time (seek + rotation) across data servers; transfer_s is media transfer; seek_frac = seek/(seek+transfer)")
	res.note("LSM cells run background compaction charged to the disks at the default throttled rate")

	type cellOut struct {
		mbs        float64
		seek, xfer time.Duration
	}
	idx := func(ei, di, si int) int { return (ei*len(dirs)+di)*len(schemes) + si }
	outs := make([]cellOut, len(engines)*len(dirs)*len(schemes))
	var cells []Cell
	for ei, eng := range engines {
		for di, dir := range dirs {
			prog := enginesProg(o.Quick, dir.write)
			for si, sch := range schemes {
				eng, slot := eng, &outs[idx(ei, di, si)]
				dir, sch := dir, sch
				cells = append(cells, Cell{
					Key: fmt.Sprintf("engines/%s/%s/%s", eng, dir.label, sch.label),
					Run: func() {
						o.logf("engines: %s %s %s", eng, dir.label, sch.label)
						cfg := baseConfig()
						cfg.FS.Engine = eng
						cfg.Seed = o.seed()
						ms, cl := executeOn(cluster.New(cfg), time.Hour, core.DefaultConfig(),
							[]runSpec{{prog: prog, mode: sch.mode}})
						slot.mbs = ms[0].throughputMBs()
						st := cl.ServerStats()
						slot.seek, slot.xfer = st.SeekTime, st.TransferTime
					},
				})
			}
		}
	}
	runSweep(o, cells)
	for ei, eng := range engines {
		for di, dir := range dirs {
			for si, sch := range schemes {
				out := outs[idx(ei, di, si)]
				frac := "-"
				if tot := out.seek + out.xfer; tot > 0 {
					frac = fmt.Sprintf("%.2f", float64(out.seek)/float64(tot))
				}
				res.Table.AddRow(eng, dir.label, sch.label,
					mb(out.mbs), secs(out.seek), secs(out.xfer), frac)
			}
		}
	}
	return res
}
