package harness

import (
	"fmt"
	"time"

	"dualpar/internal/core"
	"dualpar/internal/metrics"
	"dualpar/internal/workloads"
)

// Fig7 regenerates Figure 7: mpi-io-test runs alone, hpio joins mid-run;
// with DualPar the EMC detects the interference-induced efficiency drop and
// switches both programs to data-driven mode, raising throughput and
// cutting seek distances. The result carries throughput and seek-distance
// time series for vanilla and DualPar runs plus the mode-switch log.
func Fig7(o Opts) *Result {
	res := &Result{
		ID:    "fig7",
		Title: "Fig 7: varying workload — hpio joins a running mpi-io-test",
		Table: &metrics.Table{Header: []string{"scheme", "before_join_MB/s", "after_join_MB/s", "after_seek_sectors", "switched"}},
	}
	res.note("paper: alone ~178 MB/s in both; after hpio joins, vanilla drops from interference while DualPar recovers +46%% and seeks shrink")
	o = o.forSweep()

	size := int64(192 << 20)
	hpioRegions := int64(3072)
	if o.Quick {
		size = 32 << 20
		hpioRegions = 512
	}
	schemes := []struct {
		label string
		mode  core.Mode
	}{{"vanilla", core.ModeVanilla}, {"dualpar", core.ModeDualPar}}
	type out struct {
		tp, seek *metrics.Series
		row      []string
	}
	outs := make([]out, len(schemes))
	cells := make([]Cell, len(schemes))
	for ci, sch := range schemes {
		cells[ci] = Cell{Key: "fig7/" + sch.label, Run: func() {
			m := workloads.DefaultMPIIOTest()
			m.FileBytes = size
			m.FileName = "fig7-mpiio.dat"
			m.BarrierEvery = 8 // mpi-io-test syncs, but not so often that the scaled run stops being I/O bound
			h := workloads.DefaultHPIO()
			h.RegionCount = hpioRegions
			h.FileName = "fig7-hpio.dat"

			// Estimate the join time as ~40% of the solo run; the paper joins
			// at the 50th second of a ~150 s run. The EMC slot scales with the
			// run so the scaled-down experiment samples as often, relatively,
			// as the paper's 1 s slot did in its ~150 s run.
			soloEstimate := estimateSolo(o, m)
			joinAt := soloEstimate * 2 / 5
			cl := paperCluster(o.seed(), false)
			ddCfg := core.DefaultConfig()
			// Slots must be long enough that the seek/request statistics carry
			// a meaningful sample count (the paper's 1 s slot on a ~150 s run).
			ddCfg.SlotEvery = soloEstimate / 8
			if ddCfg.SlotEvery < 100*time.Millisecond {
				ddCfg.SlotEvery = 100 * time.Millisecond
			}
			if ddCfg.SlotEvery > time.Second {
				ddCfg.SlotEvery = time.Second
			}
			r := core.NewRunner(cl, ddCfg)
			p1 := r.Add(m, sch.mode, core.AddOptions{RanksPerNode: 8})
			p2 := r.Add(h, sch.mode, core.AddOptions{RanksPerNode: 8, StartAt: joinAt})

			// Throughput and seek-distance series sampled during the run.
			window := soloEstimate / 40
			if window < 50*time.Millisecond {
				window = 50 * time.Millisecond
			}
			until := soloEstimate * 4
			var lastBytes int64
			tp := metrics.Sample(cl.K, "throughput-"+sch.label, window, until, func() float64 {
				s := cl.ServerStats()
				cur := s.BytesRead + s.BytesWritten
				d := cur - lastBytes
				lastBytes = cur
				return float64(d) / (1 << 20) / window.Seconds()
			})
			var lastSeek, lastAcc int64
			seek := metrics.Sample(cl.K, "seekdist-"+sch.label, window, until, func() float64 {
				s := cl.ServerStats()
				dSeek, dAcc := s.SeekSectors-lastSeek, s.Accesses-lastAcc
				lastSeek, lastAcc = s.SeekSectors, s.Accesses
				if dAcc == 0 {
					return 0
				}
				return float64(dSeek) / float64(dAcc)
			})
			r.Run(12 * time.Hour)

			end1 := p1.EndedAt
			before := tp.Window(0, joinAt)
			after := tp.Window(joinAt, end1)
			seekAfter := seek.Window(joinAt, end1)
			switched := len(p1.ModeSwitches)+len(p2.ModeSwitches) > 0
			outs[ci] = out{tp: tp, seek: seek, row: []string{sch.label, mb(before), mb(after),
				fmt.Sprintf("%.0f", seekAfter), fmt.Sprintf("%v", switched)}}
			o.logf("fig7 %s: before=%.1f after=%.1f MB/s, seek=%.0f, switches p1=%d p2=%d (join at %.1fs)",
				sch.label, before, after, seekAfter, len(p1.ModeSwitches), len(p2.ModeSwitches), joinAt.Seconds())
		}}
	}
	runSweep(o, cells)
	for _, out := range outs {
		res.Series = append(res.Series, out.tp, out.seek)
		res.Table.AddRow(out.row...)
	}
	return res
}

// estimateSolo measures the mpi-io-test running alone under vanilla; Fig 7
// uses it to place the hpio join and to size sampling windows.
func estimateSolo(o Opts, m workloads.MPIIOTest) time.Duration {
	ms, _ := execute(o.seed(), false, 12*time.Hour, core.DefaultConfig(),
		[]runSpec{{prog: m, mode: core.ModeVanilla}})
	return ms[0].elapsed
}

// Fig8 regenerates Figure 8: BTIO throughput as the per-process cache quota
// grows from 0 (DualPar disabled) to 1 MB.
func Fig8(o Opts) *Result {
	res := &Result{
		ID:    "fig8",
		Title: "Fig 8: BTIO system throughput (MB/s) vs per-process cache size",
		Table: &metrics.Table{Header: []string{"cache_kb", "throughput_MBs"}},
	}
	res.note("paper: 0 KB equals vanilla (~2.7 MB/s); 64 KB is ~43x better; returns diminish beyond a few hundred KB")
	o = o.forSweep()
	b := workloads.DefaultBTIO()
	b.TotalBytes = 8 << 20
	b.Steps = 2
	b.StepCompute = 10 * time.Millisecond
	sizes := []int64{0, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}
	if o.Quick {
		b.TotalBytes = 2 << 20
		sizes = []int64{0, 64 << 10, 1 << 20}
	}
	vals := make([]string, len(sizes))
	cells := make([]Cell, len(sizes))
	for i, cacheB := range sizes {
		cells[i] = Cell{
			Key: fmt.Sprintf("fig8/cache=%dKB", cacheB>>10),
			Run: func() {
				cfg := core.DefaultConfig()
				mode := core.ModeDataDriven
				if cacheB == 0 {
					mode = core.ModeVanilla // zero quota disables DualPar entirely
				} else {
					cfg.CacheQuotaBytes = cacheB
				}
				ms, _ := execute(o.seed(), false, 12*time.Hour, cfg,
					[]runSpec{{prog: b, mode: mode}})
				vals[i] = mb(ms[0].throughputMBs())
				o.logf("fig8 cache=%dKB: %.2f MB/s", cacheB>>10, ms[0].throughputMBs())
			},
		}
	}
	runSweep(o, cells)
	for i, cacheB := range sizes {
		res.Table.AddRow(fmt.Sprintf("%d", cacheB>>10), vals[i])
	}
	return res
}

// Table3 regenerates Table III: the dependent reader whose future requests
// cannot be predicted; DualPar's data-driven mode (initially on) is turned
// off by the mis-prefetch guard, so only a bounded one-time overhead
// remains.
func Table3(o Opts) *Result {
	res := &Result{
		ID:    "table3",
		Title: "Table III: execution time (s) of an unpredictable program, with/without DualPar",
		Table: &metrics.Table{Header: []string{"cache_mb", "no_dualpar_s", "dualpar_s", "overhead_%"}},
	}
	res.note("paper: worst case +7.2%% at 4 MB cache; the mis-prefetch guard makes it a one-time cost")
	// The paper reads 2 GB with data-dependent addresses; the wasted
	// prefetching is a fixed few-cycle cost, so the baseline volume must be
	// kept at paper scale for the overhead percentage to be comparable.
	o = o.forSweep()
	d := workloads.DefaultDependentReader()
	d.Procs = 16
	d.FileBytes = 2 << 30
	d.CallsPerRank = 2048
	if o.Quick {
		d.Procs = 8
		d.CallsPerRank = 512 // keep the baseline volume large relative to the fixed few-cycle waste
	}
	caches := []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20}
	if o.Quick {
		caches = []int64{1 << 20, 4 << 20}
	}
	// Cell 0 is the vanilla baseline; the per-cache overheads against it are
	// computed at assembly, after every cell has finished.
	var base time.Duration
	elapsed := make([]time.Duration, len(caches))
	cells := []Cell{{
		Key: "table3/base",
		Run: func() {
			ms, _ := execute(o.seed(), false, 12*time.Hour, core.DefaultConfig(),
				[]runSpec{{prog: d, mode: core.ModeVanilla}})
			base = ms[0].elapsed
		},
	}}
	for i, cacheB := range caches {
		cells = append(cells, Cell{
			Key: fmt.Sprintf("table3/cache=%dMB", cacheB>>20),
			Run: func() {
				cfg := core.DefaultConfig()
				cfg.CacheQuotaBytes = cacheB
				cfg.SlotEvery = 250 * time.Millisecond
				ms, _ := execute(o.seed(), false, 12*time.Hour, cfg,
					[]runSpec{{prog: d, mode: core.ModeDataDriven}})
				elapsed[i] = ms[0].elapsed
			},
		})
	}
	runSweep(o, cells)
	for i, cacheB := range caches {
		overhead := (elapsed[i].Seconds() - base.Seconds()) / base.Seconds() * 100
		res.Table.AddRow(fmt.Sprintf("%d", cacheB>>20), secs(base), secs(elapsed[i]),
			fmt.Sprintf("%.1f", overhead))
		o.logf("table3 cache=%dMB: base=%.2fs dualpar=%.2fs (%.1f%%)",
			cacheB>>20, base.Seconds(), elapsed[i].Seconds(), overhead)
	}
	return res
}

// All runs every experiment in paper order. Under Opts.Parallel != 1 the
// experiments themselves run concurrently (each also parallelizes its own
// cells); the returned slice is always in paper order with tables
// byte-identical to a serial run.
func All(o Opts) []*Result {
	o = o.forSweep()
	drivers := []struct {
		name string
		fn   func(Opts) *Result
	}{
		{"fig1a", Fig1a}, {"fig1b", Fig1b}, {"fig1cd", Fig1cd},
		{"fig3", Fig3}, {"fig4", Fig4}, {"fig5", Fig5},
		{"table2", Table2}, {"fig6", Fig6}, {"fig7", Fig7}, {"fig8", Fig8}, {"table3", Table3},
	}
	out := make([]*Result, len(drivers))
	cells := make([]Cell, len(drivers))
	for i, d := range drivers {
		cells[i] = Cell{Key: "all/" + d.name, Run: func() { out[i] = d.fn(o) }}
	}
	runSweep(o, cells)
	return out
}
