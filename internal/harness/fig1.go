package harness

import (
	"fmt"
	"time"

	"dualpar/internal/core"
	"dualpar/internal/metrics"
	"dualpar/internal/workloads"
)

// fig1Demo returns the §II demo program: 8 processes, 16 segments per call.
func fig1Demo(segBytes int64, computePerCall time.Duration, quick bool) workloads.Demo {
	d := workloads.DefaultDemo()
	d.SegBytes = segBytes
	d.ComputePerCall = computePerCall
	calls := int64(64)
	if quick {
		calls = 16
	}
	d.FileBytes = calls * int64(d.Procs) * int64(d.SegsPerCall) * segBytes
	return d
}

// fig1Strategies are the three §II strategies.
var fig1Strategies = []struct {
	label string
	mode  core.Mode
}{
	{"strategy1", core.ModeVanilla},
	{"strategy2", core.ModeStrategy2},
	{"strategy3", core.ModeDataDriven},
}

// demoComputeFor calibrates the per-call compute time that yields the target
// I/O ratio in the vanilla system: first measure pure-I/O time per call,
// then set compute = ioPerCall*(1-ratio)/ratio (the paper's definition of
// I/O ratio is relative to the vanilla run).
func demoComputeFor(seed int64, segBytes int64, ratio float64, quick bool) time.Duration {
	probe := fig1Demo(segBytes, 0, quick)
	ms, _ := execute(seed, false, time.Hour, core.DefaultConfig(),
		[]runSpec{{prog: probe, mode: core.ModeVanilla}})
	calls := probe.Calls()
	ioPerCall := ms[0].elapsed / time.Duration(calls)
	if ratio >= 1 {
		return 0
	}
	return time.Duration(float64(ioPerCall) * (1 - ratio) / ratio)
}

// Fig1a regenerates Figure 1(a): demo execution time under the three
// strategies as the I/O ratio sweeps from ~20% to 100% (4 KB segments).
func Fig1a(o Opts) *Result {
	res := &Result{
		ID:    "fig1a",
		Title: "Fig 1a: demo execution time (s) vs I/O ratio, 4 KB segments",
		Table: &metrics.Table{Header: []string{"io_ratio", "strategy1", "strategy2", "strategy3"}},
	}
	res.note("paper: strategy2 wins at low I/O ratio; crossover near 70%%; at ~100%% strategy3 is ~36%% faster")
	o = o.forSweep()
	ratios := []float64{0.19, 0.31, 0.43, 0.72, 0.86, 1.0}
	if o.Quick {
		ratios = []float64{0.31, 0.86, 1.0}
	}
	// One cell per ratio: the calibration probe is shared by the three
	// strategy runs inside the cell, exactly as the serial loop ordered them.
	rows := make([][]string, len(ratios))
	cells := make([]Cell, len(ratios))
	for i, ratio := range ratios {
		cells[i] = Cell{
			Key: fmt.Sprintf("fig1a/ratio=%.2f", ratio),
			Run: func() {
				compute := demoComputeFor(o.seed(), 4<<10, ratio, o.Quick)
				row := []string{fmt.Sprintf("%.0f%%", ratio*100)}
				for _, st := range fig1Strategies {
					prog := fig1Demo(4<<10, compute, o.Quick)
					ms, _ := execute(o.seed(), false, time.Hour, core.DefaultConfig(),
						[]runSpec{{prog: prog, mode: st.mode}})
					row = append(row, secs(ms[0].elapsed))
					o.logf("fig1a ratio=%.2f %s: %.2fs", ratio, st.label, ms[0].elapsed.Seconds())
				}
				rows[i] = row
			},
		}
	}
	runSweep(o, cells)
	for _, row := range rows {
		res.Table.AddRow(row...)
	}
	return res
}

// Fig1b regenerates Figure 1(b): demo execution time vs segment size at a
// fixed ~90% I/O ratio.
func Fig1b(o Opts) *Result {
	res := &Result{
		ID:    "fig1b",
		Title: "Fig 1b: demo execution time (s) vs segment size, I/O ratio 90%",
		Table: &metrics.Table{Header: []string{"segment", "strategy1", "strategy2", "strategy3"}},
	}
	res.note("paper: at 4 KB strategy2 reaches 64%% of strategy3's throughput; advantage fades beyond 32 KB")
	o = o.forSweep()
	sizes := []int64{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	if o.Quick {
		sizes = []int64{4 << 10, 32 << 10, 128 << 10}
	}
	rows := make([][]string, len(sizes))
	cells := make([]Cell, len(sizes))
	for i, seg := range sizes {
		cells[i] = Cell{
			Key: fmt.Sprintf("fig1b/seg=%dKB", seg>>10),
			Run: func() {
				compute := demoComputeFor(o.seed(), seg, 0.9, o.Quick)
				row := []string{fmt.Sprintf("%dKB", seg>>10)}
				for _, st := range fig1Strategies {
					prog := fig1Demo(seg, compute, o.Quick)
					ms, _ := execute(o.seed(), false, time.Hour, core.DefaultConfig(),
						[]runSpec{{prog: prog, mode: st.mode}})
					row = append(row, secs(ms[0].elapsed))
					o.logf("fig1b seg=%dKB %s: %.2fs", seg>>10, st.label, ms[0].elapsed.Seconds())
				}
				rows[i] = row
			},
		}
	}
	runSweep(o, cells)
	for _, row := range rows {
		res.Table.AddRow(row...)
	}
	return res
}

// Fig1cd regenerates Figures 1(c,d): the disk addresses (LBNs) served on
// data server 1 during a sampled window under strategy 2 vs strategy 3.
// The series' monotonicity summarizes "back-and-forth" vs "one direction".
func Fig1cd(o Opts) *Result {
	res := &Result{
		ID:    "fig1cd",
		Title: "Fig 1c/d: disk access order on data server 1, strategy 2 vs 3",
		Table: &metrics.Table{Header: []string{"strategy", "accesses", "monotonicity", "mean_seek_sectors"}},
	}
	res.note("paper: strategy 2 shows short sequences growing in opposite directions; strategy 3 moves mostly one way")
	o = o.forSweep()
	// The calibration probe is shared by both strategies, so it runs before
	// the sweep — same order the serial loop used.
	compute := demoComputeFor(o.seed(), 4<<10, 0.9, o.Quick)
	strategies := []struct {
		label string
		mode  core.Mode
	}{{"strategy2", core.ModeStrategy2}, {"strategy3", core.ModeDataDriven}}
	type cdOut struct {
		series *metrics.Series
		row    []string
	}
	outs := make([]cdOut, len(strategies))
	cells := make([]Cell, len(strategies))
	for i, st := range strategies {
		cells[i] = Cell{
			Key: "fig1cd/" + st.label,
			Run: func() {
				prog := fig1Demo(4<<10, compute, o.Quick)
				ms, cl := execute(o.seed(), true, time.Hour, core.DefaultConfig(),
					[]runSpec{{prog: prog, mode: st.mode}})
				tr := cl.Stores[0].Device().Trace()
				// Sample a window in the middle of the run, like the paper's
				// 5.2-5.4 s sample.
				from := ms[0].elapsed / 3
				to := from + ms[0].elapsed/3
				entries := tr.Window(from, to)
				if len(entries) < 2 {
					entries = tr.Entries()
				}
				s := &metrics.Series{Name: "lbn-" + st.label}
				for _, e := range entries {
					s.Add(e.At, float64(e.LBN))
				}
				outs[i] = cdOut{series: s, row: []string{st.label,
					fmt.Sprintf("%d", len(entries)),
					fmt.Sprintf("%.2f", diskMonotonicity(entries)),
					fmt.Sprintf("%.0f", diskMeanSeek(entries))}}
				o.logf("fig1cd %s: %d accesses, monotonicity %.2f", st.label, len(entries), diskMonotonicity(entries))
			},
		}
	}
	runSweep(o, cells)
	for _, out := range outs {
		res.Series = append(res.Series, out.series)
		res.Table.AddRow(out.row...)
	}
	return res
}
