package harness

import (
	"fmt"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/disk"
	"dualpar/internal/iosched"
	"dualpar/internal/metrics"
	"dualpar/internal/mpiio"
	"dualpar/internal/pfs"
	"dualpar/internal/workloads"
)

// AblateScheduler compares the kernel disk schedulers under vanilla and
// DualPar execution: DualPar's benefit must not depend on CFQ specifically,
// since the reordering happens above the block layer.
func AblateScheduler(o Opts) *Result {
	res := &Result{
		ID:    "ablate-sched",
		Title: "Ablation: I/O scheduler choice (mpi-io-test read, MB/s)",
		Table: &metrics.Table{Header: []string{"scheduler", "vanilla", "dualpar"}},
	}
	size := int64(64 << 20)
	if o.Quick {
		size = 16 << 20
	}
	for _, sched := range []struct {
		name string
		mk   func() iosched.Algorithm
	}{
		{"cfq", func() iosched.Algorithm { return iosched.NewCFQ() }},
		{"deadline", func() iosched.Algorithm { return iosched.NewDeadline() }},
		{"noop", func() iosched.Algorithm { return iosched.NewNOOP() }},
	} {
		row := []string{sched.name}
		for _, mode := range []core.Mode{core.ModeVanilla, core.ModeDataDriven} {
			ccfg := baseConfig()
			ccfg.Seed = o.seed()
			ccfg.NewScheduler = sched.mk
			cl := cluster.New(ccfg)
			r := core.NewRunner(cl, core.DefaultConfig())
			m := workloads.DefaultMPIIOTest()
			m.FileBytes = size
			pr := r.Add(m, mode, core.AddOptions{RanksPerNode: 8})
			r.Run(time.Hour)
			row = append(row, mb(float64(pr.Instr().TotalBytes())/(1<<20)/pr.Elapsed().Seconds()))
		}
		res.Table.AddRow(row...)
		o.logf("ablate-sched %s: %v", sched.name, row)
	}
	return res
}

// AblateTImprovement sweeps the T_improvement threshold through the Fig 7
// interference scenario, checking the paper's claim that performance is not
// sensitive to the threshold: any value inside the wide gap between the
// healthy-stream improvement (~4) and the interference improvement (>15)
// behaves identically.
func AblateTImprovement(o Opts) *Result {
	res := &Result{
		ID:    "ablate-t",
		Title: "Ablation: T_improvement sensitivity (Fig 7 scenario)",
		Table: &metrics.Table{Header: []string{"T", "switched", "finish_s"}},
	}
	res.note("paper: \"system performance is not sensitive to this threshold\" (default 3 there, 8 here)")
	size := int64(96 << 20)
	regions := int64(1536)
	if o.Quick {
		size = 48 << 20
		regions = 768
	}
	for _, tval := range []float64{2, 5, 8, 12, 16, 64} {
		m := workloads.DefaultMPIIOTest()
		m.FileBytes = size
		m.FileName = "ablt-mpiio.dat"
		m.BarrierEvery = 8
		h := workloads.DefaultHPIO()
		h.RegionCount = regions
		h.FileName = "ablt-hpio.dat"
		cl := paperCluster(o.seed(), false)
		cfg := core.DefaultConfig()
		cfg.TImprovement = tval
		cfg.SlotEvery = 100 * time.Millisecond
		r := core.NewRunner(cl, cfg)
		p1 := r.Add(m, core.ModeDualPar, core.AddOptions{RanksPerNode: 8})
		p2 := r.Add(h, core.ModeDualPar, core.AddOptions{RanksPerNode: 8, StartAt: 300 * time.Millisecond})
		r.Run(time.Hour)
		switched := len(p1.ModeSwitches)+len(p2.ModeSwitches) > 0
		finish := p1.EndedAt
		if p2.EndedAt > finish {
			finish = p2.EndedAt
		}
		res.Table.AddRow(fmt.Sprintf("%.0f", tval), fmt.Sprintf("%v", switched), secs(finish))
		o.logf("ablate-t T=%.0f switched=%v finish=%.2fs", tval, switched, finish.Seconds())
	}
	return res
}

// AblateHoleThreshold sweeps CRM's hole-filling threshold on hpio, whose
// inter-region spacing leaves genuine unrequested holes in the batch:
// absorbing them builds larger requests (paper §IV-D) at the cost of
// fetching unwanted bytes; a zero threshold leaves the batch fragmented.
// The global cache's chunk alignment also absorbs sub-chunk holes, so the
// effect shows in the disk access count more than in bytes.
func AblateHoleThreshold(o Opts) *Result {
	res := &Result{
		ID:    "ablate-hole",
		Title: "Ablation: CRM hole-filling threshold (hpio, 4KB regions / 4KB gaps)",
		Table: &metrics.Table{Header: []string{"hole_kb", "elapsed_s", "disk_accesses", "read_MB"}},
	}
	h := workloads.DefaultHPIO()
	h.RegionBytes = 4 << 10
	h.RegionSpacing = 4 << 10
	h.RegionCount = 8192
	if o.Quick {
		h.RegionCount = 2048
	}
	for _, hole := range []int64{0, 4 << 10, 32 << 10, 256 << 10} {
		cl := paperCluster(o.seed(), false)
		cfg := core.DefaultConfig()
		cfg.HoleBytes = hole
		// Sub-chunk caching isolates the hole-filling effect from chunk
		// alignment.
		cfg.Memcache.ChunkBytes = 4 << 10
		r := core.NewRunner(cl, cfg)
		pr := r.Add(h, core.ModeDataDriven, core.AddOptions{RanksPerNode: 8})
		r.Run(time.Hour)
		st := cl.ServerStats()
		res.Table.AddRow(fmt.Sprintf("%d", hole>>10), secs(pr.Elapsed()),
			fmt.Sprintf("%d", st.Accesses), fmt.Sprintf("%.1f", float64(st.BytesRead)/(1<<20)))
		o.logf("ablate-hole %dKB: %.3fs, %d accesses, %.1fMB", hole>>10, pr.Elapsed().Seconds(), st.Accesses, float64(st.BytesRead)/(1<<20))
	}
	return res
}

// AblateChunkSize sweeps the global cache's chunk size around the PVFS2
// stripe unit (the paper pins it to 64 KB so one chunk maps to one server).
func AblateChunkSize(o Opts) *Result {
	res := &Result{
		ID:    "ablate-chunk",
		Title: "Ablation: global-cache chunk size (mpi-io-test read)",
		Table: &metrics.Table{Header: []string{"chunk_kb", "throughput_MBs"}},
	}
	m := workloads.DefaultMPIIOTest()
	m.FileBytes = 64 << 20
	if o.Quick {
		m.FileBytes = 16 << 20
	}
	for _, chunk := range []int64{16 << 10, 64 << 10, 256 << 10} {
		cfg := core.DefaultConfig()
		cfg.Memcache.ChunkBytes = chunk
		ms, _ := execute(o.seed(), false, time.Hour, cfg,
			[]runSpec{{prog: m, mode: core.ModeDataDriven}})
		res.Table.AddRow(fmt.Sprintf("%d", chunk>>10), mb(ms[0].throughputMBs()))
		o.logf("ablate-chunk %dKB: %.1f MB/s", chunk>>10, ms[0].throughputMBs())
	}
	return res
}

// AblateDiskOrigins contrasts the realistic server-process disk origin with
// per-client origins: with per-client origins CFQ anticipates each client's
// next synchronous request and vanilla throughput collapses, which is why
// the substrate models PVFS2's single server process as the origin.
func AblateDiskOrigins(o Opts) *Result {
	res := &Result{
		ID:    "ablate-origins",
		Title: "Ablation: CFQ origin attribution (mpi-io-test vanilla read)",
		Table: &metrics.Table{Header: []string{"origin", "throughput_MBs"}},
	}
	m := workloads.DefaultMPIIOTest()
	m.FileBytes = 32 << 20
	if o.Quick {
		m.FileBytes = 8 << 20
	}
	for _, client := range []bool{false, true} {
		ccfg := baseConfig()
		ccfg.Seed = o.seed()
		pcfg := pfs.DefaultConfig()
		pcfg.ClientDiskOrigins = client
		ccfg.PFS = pcfg
		cl := cluster.New(ccfg)
		r := core.NewRunner(cl, core.DefaultConfig())
		pr := r.Add(m, core.ModeVanilla, core.AddOptions{RanksPerNode: 8})
		r.Run(time.Hour)
		label := "server-process"
		if client {
			label = "per-client"
		}
		res.Table.AddRow(label, mb(float64(pr.Instr().TotalBytes())/(1<<20)/pr.Elapsed().Seconds()))
		o.logf("ablate-origins %s: %.1f MB/s", label, float64(pr.Instr().TotalBytes())/(1<<20)/pr.Elapsed().Seconds())
	}
	return res
}

// AblateCollectiveBuffer sweeps ROMIO's cb_buffer_size on noncontig.
func AblateCollectiveBuffer(o Opts) *Result {
	res := &Result{
		ID:    "ablate-cb",
		Title: "Ablation: collective buffer size (noncontig read)",
		Table: &metrics.Table{Header: []string{"cb_mb", "throughput_MBs"}},
	}
	n := workloads.DefaultNoncontig()
	n.FileBytes = 64 << 20
	if o.Quick {
		n.FileBytes = 16 << 20
	}
	for _, cb := range []int64{1 << 20, 4 << 20, 16 << 20} {
		mcfg := mpiio.DefaultConfig()
		mcfg.CollectiveBufferBytes = cb
		ms, _ := execute(o.seed(), false, time.Hour, core.DefaultConfig(),
			[]runSpec{{prog: n, mode: core.ModeCollective, mpiio: mcfg}})
		res.Table.AddRow(fmt.Sprintf("%d", cb>>20), mb(ms[0].throughputMBs()))
		o.logf("ablate-cb %dMB: %.1f MB/s", cb>>20, ms[0].throughputMBs())
	}
	return res
}

// AblateSSD replays the Fig 3 mpi-io-test comparison on flash storage: with
// no positioning cost, the disk-efficiency gap DualPar exploits disappears
// and the data-driven mode's advantage collapses toward its batching side
// effects — quantifying how disk-era the paper's premise is.
func AblateSSD(o Opts) *Result {
	res := &Result{
		ID:    "ablate-ssd",
		Title: "Ablation: rotating disks vs SSD (mpi-io-test read, MB/s)",
		Table: &metrics.Table{Header: []string{"storage", "vanilla", "dualpar", "speedup"}},
	}
	res.note("DualPar's win comes from seek elimination; on an SSD the two request orders cost the same")
	size := int64(64 << 20)
	if o.Quick {
		size = 16 << 20
	}
	for _, storage := range []string{"disk", "ssd"} {
		vals := make([]float64, 0, 2)
		for _, mode := range []core.Mode{core.ModeVanilla, core.ModeDataDriven} {
			ccfg := baseConfig()
			ccfg.Seed = o.seed()
			if storage == "ssd" {
				sp := disk.DefaultSSDParams()
				ccfg.SSD = &sp
			}
			cl := cluster.New(ccfg)
			r := core.NewRunner(cl, core.DefaultConfig())
			m := workloads.DefaultMPIIOTest()
			m.FileBytes = size
			pr := r.Add(m, mode, core.AddOptions{RanksPerNode: 8})
			r.Run(time.Hour)
			vals = append(vals, float64(pr.Instr().TotalBytes())/(1<<20)/pr.Elapsed().Seconds())
		}
		res.Table.AddRow(storage, mb(vals[0]), mb(vals[1]), fmt.Sprintf("%.2fx", vals[1]/vals[0]))
		o.logf("ablate-ssd %s: vanilla %.1f dualpar %.1f", storage, vals[0], vals[1])
	}
	return res
}

// Ablations runs every ablation.
func Ablations(o Opts) []*Result {
	return []*Result{
		AblateScheduler(o), AblateTImprovement(o), AblateHoleThreshold(o),
		AblateChunkSize(o), AblateDiskOrigins(o), AblateCollectiveBuffer(o),
		AblateSSD(o), AblateWritePath(o), AblateStrategy2Window(o),
		AblateServers(o), AblatePipeline(o),
	}
}

// AblateWritePath contrasts PVFS2's per-operation data sync (Trove-style,
// the default substrate model) with buffered server writeback (dirty pages
// flushed every second, as the paper forces) on the mpi-io-test write
// workload.
func AblateWritePath(o Opts) *Result {
	res := &Result{
		ID:    "ablate-writepath",
		Title: "Ablation: server write path (mpi-io-test write, MB/s)",
		Table: &metrics.Table{Header: []string{"write_path", "vanilla", "dualpar"}},
	}
	res.note("sync per op models PVFS2 Trove; buffered models a 1s-flush page cache")
	size := int64(48 << 20)
	if o.Quick {
		size = 16 << 20
	}
	for _, sync := range []bool{true, false} {
		row := []string{"sync-per-op"}
		if !sync {
			row = []string{"buffered-1s"}
		}
		for _, mode := range []core.Mode{core.ModeVanilla, core.ModeDataDriven} {
			ccfg := baseConfig()
			ccfg.Seed = o.seed()
			fcfg := ccfg.FS
			fcfg.SyncWrites = sync
			ccfg.FS = fcfg
			cl := cluster.New(ccfg)
			r := core.NewRunner(cl, core.DefaultConfig())
			m := workloads.DefaultMPIIOTest()
			m.FileBytes = size
			m.Write = true
			pr := r.Add(m, mode, core.AddOptions{RanksPerNode: 8})
			if !r.Run(time.Hour) {
				o.logf("ablate-writepath: run did not finish")
			}
			row = append(row, mb(float64(pr.Instr().TotalBytes())/(1<<20)/pr.Elapsed().Seconds()))
		}
		res.Table.AddRow(row...)
		o.logf("ablate-writepath %s: %v", row[0], row[1:])
	}
	return res
}

// AblateStrategy2Window sweeps how far ahead the Strategy-2 prefetcher may
// run: too small and it cannot hide I/O, too large only wastes memory.
func AblateStrategy2Window(o Opts) *Result {
	res := &Result{
		ID:    "ablate-s2window",
		Title: "Ablation: Strategy-2 prefetch window (demo, 10ms compute/call)",
		Table: &metrics.Table{Header: []string{"window_kb", "elapsed_s"}},
	}
	d := workloads.DefaultDemo()
	d.FileBytes = 32 << 20
	d.ComputePerCall = 10 * time.Millisecond
	if o.Quick {
		d.FileBytes = 16 << 20
	}
	// Per-rank window = value / procs; at 4 KB per rank the prefetcher can
	// keep only one request in flight and hiding collapses.
	for _, window := range []int64{32 << 10, 256 << 10, 4 << 20, 32 << 20} {
		cfg := core.DefaultConfig()
		cfg.Strategy2WindowBytes = window
		ms, _ := execute(o.seed(), false, time.Hour, cfg,
			[]runSpec{{prog: d, mode: core.ModeStrategy2}})
		res.Table.AddRow(fmt.Sprintf("%d", window>>10), secs(ms[0].elapsed))
		o.logf("ablate-s2window %dKB: %.2fs", window>>10, ms[0].elapsed.Seconds())
	}
	return res
}

// AblateServers sweeps the data-server count: DualPar's benefit holds as
// the stripe width grows, and both schemes gain from added spindles until
// the client-side network bounds them.
func AblateServers(o Opts) *Result {
	res := &Result{
		ID:    "ablate-servers",
		Title: "Ablation: data-server count (mpi-io-test read, MB/s)",
		Table: &metrics.Table{Header: []string{"servers", "vanilla", "dualpar", "speedup"}},
	}
	size := int64(64 << 20)
	if o.Quick {
		size = 16 << 20
	}
	for _, servers := range []int{3, 6, 9, 18} {
		vals := make([]float64, 0, 2)
		for _, mode := range []core.Mode{core.ModeVanilla, core.ModeDataDriven} {
			ccfg := baseConfig()
			ccfg.Seed = o.seed()
			ccfg.DataServers = servers
			cl := cluster.New(ccfg)
			r := core.NewRunner(cl, core.DefaultConfig())
			m := workloads.DefaultMPIIOTest()
			m.FileBytes = size
			pr := r.Add(m, mode, core.AddOptions{RanksPerNode: 8})
			r.Run(time.Hour)
			vals = append(vals, float64(pr.Instr().TotalBytes())/(1<<20)/pr.Elapsed().Seconds())
		}
		res.Table.AddRow(fmt.Sprintf("%d", servers), mb(vals[0]), mb(vals[1]),
			fmt.Sprintf("%.2fx", vals[1]/vals[0]))
		o.logf("ablate-servers %d: vanilla %.1f dualpar %.1f", servers, vals[0], vals[1])
	}
	return res
}

// AblatePipeline evaluates the pipelined-cycles extension (beyond the
// paper): ghosts record PipelineDepth x quota and the overflow wave is
// prefetched while ranks consume, adding Strategy 2's overlap to
// Strategy 3's ordering. Measured on the demo at a mid I/O ratio, where
// plain data-driven execution loses time to its unoverlapped cycles.
func AblatePipeline(o Opts) *Result {
	res := &Result{
		ID:    "ablate-pipeline",
		Title: "Ablation (extension): pipelined data-driven cycles (demo, ~70% I/O ratio)",
		Table: &metrics.Table{Header: []string{"scheme", "elapsed_s"}},
	}
	d := workloads.DefaultDemo()
	d.FileBytes = 32 << 20
	if o.Quick {
		d.FileBytes = 16 << 20
	}
	// Calibrate ~70% I/O ratio against the vanilla run.
	probe, _ := execute(o.seed(), false, time.Hour, core.DefaultConfig(),
		[]runSpec{{prog: d, mode: core.ModeVanilla}})
	calls := d.Calls()
	ioPerCall := probe[0].elapsed / time.Duration(calls)
	d.ComputePerCall = time.Duration(float64(ioPerCall) * 0.3 / 0.7)

	rows := []struct {
		label string
		mode  core.Mode
		depth int
	}{
		{"vanilla", core.ModeVanilla, 1},
		{"strategy2", core.ModeStrategy2, 1},
		{"data-driven (paper)", core.ModeDataDriven, 1},
		{"data-driven pipelined x2", core.ModeDataDriven, 2},
		{"data-driven pipelined x4", core.ModeDataDriven, 4},
	}
	for _, row := range rows {
		cfg := core.DefaultConfig()
		cfg.PipelineDepth = row.depth
		ms, _ := execute(o.seed(), false, time.Hour, cfg,
			[]runSpec{{prog: d, mode: row.mode}})
		res.Table.AddRow(row.label, secs(ms[0].elapsed))
		o.logf("ablate-pipeline %s: %.2fs", row.label, ms[0].elapsed.Seconds())
	}
	return res
}
