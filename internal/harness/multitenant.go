package harness

import (
	"fmt"
	"math"
	"sort"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/metrics"
	"dualpar/internal/sim"
	"dualpar/internal/tenant"
	"dualpar/internal/workloads"
)

// The multitenant experiment shares one cluster among competing tenants: a
// seeded workload generator (internal/tenant) launches hundreds of small
// jobs at Poisson, bursty, or closed-loop arrival times, and the
// cluster-wide arbiter rations data-driven grants among the tenants under a
// pluggable policy. The reproduction target is datacenter-shaped: fcfs lets
// a hot tenant monopolize the grants (its flood re-claims every freed grant
// at submission, before a waiting cold job's next slot retry), so the cold
// tenants' tail slowdown converges to the hot tenant's; fair/prio give each
// tenant a reservation it can reclaim by revocation, so cold tenants keep
// data-driven access through the flood at a small cost to the hot one.
// Stretch is a job's co-run elapsed time over the same class+mode job run
// alone on an idle cluster; Jain's index is computed over the per-tenant
// mean stretches.

// tenantDemo maps a generated job onto a concrete program: a small 2-rank
// interleaved-access Demo whose size class sets the file length. Ranks
// interleave 4 KB segments, so vanilla execution issues strided reads while
// a granted data-driven run fetches the file as one sorted batch — the
// grant is worth something, which is what the arbiter polices.
func tenantDemo(j tenant.Job, ranks int, quick bool) workloads.Demo {
	d := workloads.DefaultDemo()
	d.Procs = ranks
	d.SegBytes = 4 << 10
	d.SegsPerCall = 4
	d.FileName = fmt.Sprintf("t%dj%d.dat", j.Tenant, j.Index)
	var fb int64
	switch j.Class {
	case "s":
		fb = 96 << 10
	case "m":
		fb = 192 << 10
	default:
		fb = 384 << 10
	}
	if !quick {
		fb *= 2
	}
	d.FileBytes = fb
	return d
}

// jobMode maps the generator's mode name onto an execution mode. Data-driven
// jobs are pinned (ModeDataDriven): they request a grant at submission and,
// when denied, run conventionally while the EMC retries every slot.
func jobMode(name string) core.Mode {
	if name == "dualpar" {
		return core.ModeDataDriven
	}
	return core.ModeVanilla
}

// mixJob is one generated job's measured outcome.
type mixJob struct {
	job      tenant.Job
	elapsed  time.Duration
	bytes    int64
	started  time.Duration
	ended    time.Duration
	finished bool
}

// mixOut is one shared-cluster run's full outcome.
type mixOut struct {
	jobs     []mixJob
	cl       *cluster.Cluster
	finished bool
	grants   int64
	denies   int64
	revokes  int64
}

// runTenantMix executes the full generated schedule for tc on one shared
// tenanted cluster. Open-loop kinds (poisson, burst) are driven by a single
// arrival proc submitting each job at its scheduled time; the closed-loop
// kind spawns one proc per (tenant, worker) that blocks on each job's
// completion (OnDone) and sleeps the think time before submitting the next.
// Everything runs in simulation context, so the run is deterministic per
// seed regardless of host parallelism.
func runTenantMix(seed int64, tc tenant.Config, quick bool) *mixOut {
	cfg := baseConfig()
	cfg.Seed = seed
	cfg.Tenancy = &tc
	cl := cluster.New(cfg)
	ddCfg := core.DefaultConfig()
	// Tiny jobs live for seconds; a sub-second slot gives a denied job
	// several grant retries within its lifetime.
	ddCfg.SlotEvery = 250 * time.Millisecond
	if auditRuns {
		ddCfg.Audit = true
	}
	r := core.NewRunner(cl, ddCfg)
	sched := tenant.Schedule(tc)
	runs := make([]*core.ProgramRun, len(sched))
	nodes := cfg.ComputeNodes
	addJob := func(p *sim.Proc, i int, onDone func()) {
		j := sched[i]
		runs[i] = r.Add(tenantDemo(j, tc.Ranks, quick), jobMode(j.Mode), core.AddOptions{
			RanksPerNode:   tc.Ranks, // each job owns one compute node
			FirstNodeIndex: i % nodes,
			StartAt:        p.Now(),
			Tenant:         j.Tenant,
			OnDone:         onDone,
		})
	}
	if tc.Arrival.Kind == tenant.ArrivalClosed {
		// Group schedule indices per (tenant, worker) preserving order.
		byWorker := make(map[[2]int][]int)
		for i, j := range sched {
			k := [2]int{j.Tenant, j.Worker}
			byWorker[k] = append(byWorker[k], i)
		}
		for t := 0; t < tc.Tenants; t++ {
			for w := 0; w < tc.Arrival.Workers; w++ {
				idxs := byWorker[[2]int{t, w}]
				cl.K.Spawn(fmt.Sprintf("tenant%d/worker%d", t, w), func(p *sim.Proc) {
					for _, i := range idxs {
						sig := cl.K.NewSignal()
						done := false
						addJob(p, i, func() { done = true; sig.Broadcast() })
						for !done {
							sig.Wait(p)
						}
						if tc.Arrival.Think > 0 {
							p.Sleep(tc.Arrival.Think)
						}
					}
				})
			}
		}
	} else {
		cl.K.Spawn("tenant/arrivals", func(p *sim.Proc) {
			for i := range sched {
				if at := sched[i].At; at > p.Now() {
					p.Sleep(at - p.Now())
				}
				addJob(p, i, nil)
			}
		})
	}
	finished := r.Run(30 * time.Minute)
	if err := r.AuditErr(); err != nil {
		panic(err)
	}
	out := &mixOut{cl: cl, finished: finished}
	for i, pr := range runs {
		if pr == nil {
			continue // arrival driver ran out of budget before submitting
		}
		out.jobs = append(out.jobs, mixJob{
			job:      sched[i],
			elapsed:  pr.Elapsed(),
			bytes:    pr.Instr().TotalBytes(),
			started:  pr.StartedAt,
			ended:    pr.EndedAt,
			finished: pr.Done,
		})
	}
	arb := cl.Arbiter()
	for t := 0; t < arb.Tenants(); t++ {
		out.grants += arb.Grants(t)
		out.denies += arb.Denies(t)
		out.revokes += arb.Revokes(t)
	}
	return out
}

// soloKey indexes the stretch baselines by (class, mode).
type soloKey struct{ class, mode string }

// soloBaselines measures each (class, mode) job template once, alone on an
// idle untenanted cluster — the stretch denominators. Computed once per
// experiment and shared read-only by all sweep cells.
func soloBaselines(seed int64, ranks int, quick bool) map[soloKey]time.Duration {
	base := make(map[soloKey]time.Duration)
	ddCfg := core.DefaultConfig()
	ddCfg.SlotEvery = 250 * time.Millisecond
	for _, class := range []string{"s", "m", "l"} {
		for _, mode := range []string{"dualpar", "vanilla"} {
			j := tenant.Job{Class: class, Mode: mode}
			d := tenantDemo(j, ranks, quick)
			d.FileName = "solo.dat"
			ms, _ := executeOn(paperCluster(seed, false), time.Hour, ddCfg,
				[]runSpec{{prog: d, mode: jobMode(mode)}})
			base[soloKey{class, mode}] = ms[0].elapsed
		}
	}
	return base
}

// mixStats aggregates one cell's outcome into the reported metrics.
type mixStats struct {
	jobs        int
	unfinished  int
	peak        int // max simultaneously running jobs
	aggMBs      float64
	meanStretch float64
	worstP99    float64 // worst tenant's p99 stretch
	jain        float64 // Jain's fairness index over per-tenant mean stretch
	perTenant   []float64
}

// summarize computes per-tenant stretch distributions, the fairness
// metrics, the aggregate throughput, and the peak job concurrency.
func summarize(out *mixOut, base map[soloKey]time.Duration, tenants int) mixStats {
	st := mixStats{jobs: len(out.jobs)}
	perTenant := make([][]float64, tenants)
	var bytes int64
	var first, last time.Duration
	first = time.Duration(math.MaxInt64)
	type edge struct {
		at    time.Duration
		delta int
	}
	var edges []edge
	var sum float64
	var n int
	for _, mj := range out.jobs {
		if !mj.finished {
			st.unfinished++
			continue
		}
		bytes += mj.bytes
		if mj.started < first {
			first = mj.started
		}
		if mj.ended > last {
			last = mj.ended
		}
		edges = append(edges, edge{mj.started, +1}, edge{mj.ended, -1})
		solo := base[soloKey{mj.job.Class, mj.job.Mode}]
		if solo <= 0 {
			continue
		}
		x := float64(mj.elapsed) / float64(solo)
		perTenant[mj.job.Tenant] = append(perTenant[mj.job.Tenant], x)
		sum += x
		n++
	}
	if n > 0 {
		st.meanStretch = sum / float64(n)
	}
	if last > first {
		st.aggMBs = float64(bytes) / (1 << 20) / (last - first).Seconds()
	}
	// Peak concurrency: sweep the start/end edges; ends sort before starts
	// at the same instant, so back-to-back jobs do not count as overlapping.
	sort.Slice(edges, func(i, k int) bool {
		if edges[i].at != edges[k].at {
			return edges[i].at < edges[k].at
		}
		return edges[i].delta < edges[k].delta
	})
	cur := 0
	for _, e := range edges {
		cur += e.delta
		if cur > st.peak {
			st.peak = cur
		}
	}
	// Per-tenant p99 stretch and Jain's index over the per-tenant means.
	var sumX, sumX2 float64
	var nt int
	for t := 0; t < tenants; t++ {
		xs := perTenant[t]
		if len(xs) == 0 {
			st.perTenant = append(st.perTenant, 0)
			continue
		}
		p99 := pctl(xs, 99)
		st.perTenant = append(st.perTenant, p99)
		if p99 > st.worstP99 {
			st.worstP99 = p99
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		sumX += mean
		sumX2 += mean * mean
		nt++
	}
	if nt > 0 && sumX2 > 0 {
		st.jain = sumX * sumX / (float64(nt) * sumX2)
	}
	return st
}

// pctl returns the p-th percentile of xs (nearest-rank) without mutating it.
func pctl(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(math.Ceil(p/100*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// multitenantSpecs returns the sweep's tenancy specs (the experiment's cells
// are written in the -tenants spec grammar, exercising the parser on the
// same path users take). The first three cells differ only in policy — the
// fcfs-vs-fair fairness comparison the experiment exists for.
func multitenantSpecs(quick bool) []string {
	if quick {
		return []string{
			"tenants:4,arrival=burst:125@50ms,policy=fcfs,grants=48,cache=64M,jobs=125,ranks=2,hot=0x3",
			"tenants:4,arrival=burst:125@50ms,policy=fair,grants=48,cache=64M,jobs=125,ranks=2,hot=0x3",
			"tenants:4,arrival=burst:125@50ms,policy=prio,grants=48,cache=64M,jobs=125,ranks=2,hot=0x3",
			"tenants:4,arrival=poisson:12,policy=fcfs,grants=12,cache=64M,jobs=40,ranks=2,hot=0x6",
			"tenants:4,arrival=poisson:12,policy=fair,grants=12,cache=64M,jobs=40,ranks=2,hot=0x6",
			"tenants:4,arrival=poisson:12,policy=prio,grants=12,cache=64M,jobs=40,ranks=2,hot=0x6",
			"tenants:4,arrival=poisson:300,policy=fair,grants=48,cache=64M,jobs=40,ranks=2",
			"tenants:2,arrival=burst:60@50ms,policy=fair,grants=48,cache=64M,jobs=60,ranks=2",
			"tenants:8,arrival=burst:30@50ms,policy=fair,grants=48,cache=64M,jobs=30,ranks=2",
			"tenants:4,arrival=closed:4x4:5ms,policy=fair,grants=48,ranks=2",
		}
	}
	return []string{
		"tenants:4,arrival=burst:250@50ms,policy=fcfs,grants=64,cache=96M,jobs=250,ranks=2,hot=0x3",
		"tenants:4,arrival=burst:250@50ms,policy=fair,grants=64,cache=96M,jobs=250,ranks=2,hot=0x3",
		"tenants:4,arrival=burst:250@50ms,policy=prio,grants=64,cache=96M,jobs=250,ranks=2,hot=0x3",
		"tenants:4,arrival=poisson:12,policy=fcfs,grants=12,cache=64M,jobs=60,ranks=2,hot=0x6",
		"tenants:4,arrival=poisson:12,policy=fair,grants=12,cache=64M,jobs=60,ranks=2,hot=0x6",
		"tenants:4,arrival=poisson:12,policy=prio,grants=12,cache=64M,jobs=60,ranks=2,hot=0x6",
		"tenants:4,arrival=poisson:150,policy=fair,grants=64,cache=96M,jobs=80,ranks=2",
		"tenants:4,arrival=poisson:300,policy=fair,grants=64,cache=96M,jobs=80,ranks=2",
		"tenants:4,arrival=poisson:600,policy=fair,grants=64,cache=96M,jobs=80,ranks=2",
		"tenants:2,arrival=burst:120@50ms,policy=fair,grants=64,cache=96M,jobs=120,ranks=2",
		"tenants:8,arrival=burst:60@50ms,policy=fair,grants=64,cache=96M,jobs=60,ranks=2",
		"tenants:4,arrival=closed:8x6:5ms,policy=fair,grants=64,ranks=2",
	}
}

// Multitenant sweeps the shared-cluster datacenter mode over arrival
// process x policy x tenant count. Each cell generates its schedule from
// the seeded tenant generator, runs every job on one tenanted cluster, and
// reports aggregate throughput, per-tenant tail slowdown (p99 stretch vs a
// solo run of the same job), Jain's fairness index, and the peak number of
// simultaneously running jobs.
func Multitenant(o Opts) *Result {
	res := &Result{
		ID:    "multitenant",
		Title: "Multi-tenant shared cluster: arrival x policy x tenants under the grant arbiter",
		Table: &metrics.Table{Header: []string{
			"policy", "arrival", "tenants", "jobs", "peak", "agg_mbs",
			"mean_str", "worst_p99", "jain", "granted", "denied", "revoked"}},
	}
	specs := multitenantSpecs(o.Quick)
	base := soloBaselines(o.seed(), 2, o.Quick)
	res.note("stretch = co-run elapsed / solo elapsed for the same (class, mode) job; worst_p99 is the worst tenant's p99 stretch; jain is Jain's index over per-tenant mean stretch")
	res.note("solo baselines (ms): s/dd=%s s/van=%s m/dd=%s m/van=%s l/dd=%s l/van=%s",
		msec(base[soloKey{"s", "dualpar"}]), msec(base[soloKey{"s", "vanilla"}]),
		msec(base[soloKey{"m", "dualpar"}]), msec(base[soloKey{"m", "vanilla"}]),
		msec(base[soloKey{"l", "dualpar"}]), msec(base[soloKey{"l", "vanilla"}]))

	o = o.forSweep()
	type cellOut struct {
		row   []string
		notes []string
	}
	outs := make([]cellOut, len(specs))
	var cells []Cell
	for ci, spec := range specs {
		slot := &outs[ci]
		spec := spec
		cells = append(cells, Cell{
			Key: "multitenant/" + spec,
			Run: func() {
				tc, err := tenant.ParseSpec(spec)
				if err != nil {
					panic(err)
				}
				tc.Seed = o.seed()
				o.logf("multitenant: %s", spec)
				out := runTenantMix(o.seed(), tc, o.Quick)
				st := summarize(out, base, tc.Tenants)
				if st.unfinished > 0 {
					slot.notes = append(slot.notes, fmt.Sprintf(
						"%s: %d of %d jobs did not finish in budget", spec, st.unfinished, st.jobs))
				}
				slot.row = []string{
					string(tc.Policy), tc.Arrival.String(), fmt.Sprintf("%d", tc.Tenants),
					fmt.Sprintf("%d", st.jobs), fmt.Sprintf("%d", st.peak), mb(st.aggMBs),
					fmt.Sprintf("%.2f", st.meanStretch), fmt.Sprintf("%.2f", st.worstP99),
					fmt.Sprintf("%.3f", st.jain),
					fmt.Sprintf("%d", out.grants), fmt.Sprintf("%d", out.denies),
					fmt.Sprintf("%d", out.revokes),
				}
			},
		})
	}
	runSweep(o, cells)
	for _, out := range outs {
		res.Notes = append(res.Notes, out.notes...)
		res.Table.AddRow(out.row...)
	}
	return res
}
