package harness

import (
	"errors"
	"fmt"
	"time"

	"dualpar/internal/burst"
	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/fault"
	"dualpar/internal/metrics"
	"dualpar/internal/sim"
	"dualpar/internal/workloads"
)

// driveKernel runs the shared kernel in bounded steps until *done flips or
// budget of virtual time elapses. The kernel hosts forever-looping daemons
// (store flushers), so it can never be run dry; bounded steps let a
// post-run orchestration proc make progress against them. Reports whether
// done flipped in time.
func driveKernel(cl *cluster.Cluster, done *bool, budget time.Duration) bool {
	deadline := cl.K.Now() + budget
	for !*done && cl.K.Now() < deadline {
		step := cl.K.Now() + time.Second
		if step > deadline {
			step = deadline
		}
		cl.K.RunUntil(step)
	}
	return *done
}

// ckptProg is the checkpoint workload the experiment sweeps: N-1 epoch
// checkpointing, every rank writing its block per epoch and sealing it.
func ckptProg(quick bool) workloads.EpochCheckpoint {
	c := workloads.DefaultEpochCheckpoint(true)
	if quick {
		c.Procs = 16
		c.Epochs = 4
	}
	return c
}

// clientCrashAt builds a schedule that crash-stops the job at the given
// time (rank 0's node failing aborts every rank — the job is gone, only
// what it committed survives).
func clientCrashAt(at time.Duration) *fault.Schedule {
	return &fault.Schedule{Windows: []fault.Window{
		{Kind: fault.ClientCrash, Target: 0, Start: at},
	}}
}

// ckptRun is one checkpoint cell's full lifecycle: the (possibly crashed)
// checkpoint run, burst-log recovery and drain, and the restart read of
// the last committed epoch.
type ckptRun struct {
	cl    *cluster.Cluster
	ddCfg core.Config
	prog  workloads.EpochCheckpoint

	main      measured
	crashed   bool
	committed int

	stats       burst.Stats   // zero value on the direct path
	recovery    time.Duration // main-run end -> tier replayed and drained
	recoveryErr error

	restart    measured
	restartErr error // wraps burst.ErrNoCommittedEpoch when nothing committed
}

// runCheckpoint executes one checkpoint cell end to end. bcfg == nil is
// the direct path (writes go straight to the PFS); otherwise every
// epoch-tagged write absorbs into the node-local burst log. audit arms the
// invariant oracles regardless of the suite-wide flag (the crash-matrix
// tests always want byte conservation checked).
func runCheckpoint(seed int64, prog workloads.EpochCheckpoint, replicas int, bcfg *burst.Config, sch *fault.Schedule, audit bool) *ckptRun {
	cfg := baseConfig()
	cfg.Seed = seed
	cfg.Faults = sch
	cfg.PFS.Replicas = replicas
	cfg.PFS.DetectDelay = 100 * time.Millisecond
	cfg.PFS.RequestTimeout = 250 * time.Millisecond
	cfg.PFS.MaxRetries = 4
	cfg.PFS.RetryBackoff = 20 * time.Millisecond
	cfg.Burst = bcfg
	ddCfg := core.DefaultConfig()
	ddCfg.CRMTimeout = 2 * time.Second
	ddCfg.CRMMaxRetries = 3
	ddCfg.CRMBackoff = 50 * time.Millisecond
	if audit {
		ddCfg.Audit = true
	}
	cl := cluster.New(cfg)
	cl.FS.EnableIntegrity()
	ms, _ := executeOn(cl, 2*time.Minute, ddCfg, []runSpec{{prog: prog, mode: core.ModeVanilla}})
	// The conservation ledgers arm once per cluster lifetime (re-arming
	// resets the PFS side but not the stores'), so the restart runner must
	// not build a second auditor; the oracles cover the checkpoint run and
	// the recovery, and the restart's reads are checked by the integrity
	// oracle instead.
	ddCfg.Audit = false
	cr := &ckptRun{
		cl: cl, ddCfg: ddCfg, prog: prog,
		main:      ms[0],
		crashed:   ms[0].run.Crashed(),
		committed: ms[0].run.CommittedEpoch(),
	}
	cr.runRecovery()
	cr.runRestart(10 * time.Minute)
	return cr
}

// runRecovery replays a crashed tier's sealed-but-undrained records and
// waits for the burst logs to drain completely, measuring the virtual time
// it takes. A no-op on the direct path.
func (cr *ckptRun) runRecovery() {
	tier := cr.cl.Burst()
	if tier == nil {
		return
	}
	start := cr.cl.K.Now()
	var end time.Duration
	done := false
	cr.cl.K.Spawn("harness/ckpt-recover", func(p *sim.Proc) {
		defer func() { done = true }()
		if cr.crashed {
			if err := tier.Recover(p); err != nil {
				cr.recoveryErr = err
				return
			}
		}
		cr.recoveryErr = tier.WaitDrained(p)
		end = p.Now()
	})
	if !driveKernel(cr.cl, &done, 30*time.Minute) {
		cr.recoveryErr = fmt.Errorf("harness: burst recovery did not complete (drain wedged)")
	}
	if cr.recoveryErr == nil {
		cr.recovery = end - start
	}
	cr.stats = tier.Stats()
}

// runRestart reads the last committed epoch back with a fresh job on the
// same cluster (the simulated machines rebooted; the storage state is
// whatever the crash left durable). When no epoch committed, the typed
// burst.ErrNoCommittedEpoch surfaces instead of a bogus read.
func (cr *ckptRun) runRestart(budget time.Duration) {
	if cr.committed == 0 {
		cr.restartErr = fmt.Errorf("harness: restart: %w", burst.ErrNoCommittedEpoch)
		return
	}
	r := core.NewRunner(cr.cl, cr.ddCfg)
	pr := r.Add(workloads.Restart{Ckpt: cr.prog, Epoch: cr.committed}, core.ModeVanilla, core.AddOptions{
		RanksPerNode: 8,
		StartAt:      cr.cl.K.Now(),
	})
	finished := r.Run(cr.cl.K.Now() + budget)
	if err := r.AuditErr(); err != nil {
		panic(err)
	}
	var io time.Duration
	for rnk := range pr.Instr().Ranks {
		io += pr.Instr().Ranks[rnk].IOTime
	}
	cr.restart = measured{
		elapsed: pr.Elapsed(), bytes: pr.Instr().TotalBytes(),
		ioTime: io, finished: pr.Done, run: pr,
	}
	switch {
	case !finished:
		cr.restartErr = fmt.Errorf("harness: restart did not finish within its budget")
	default:
		cr.restartErr = pr.Err()
	}
}

// msec formats a duration cell in milliseconds.
func msec(d time.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()*1e3) }

// Checkpoint sweeps the checkpoint/restart lifecycle across the write path
// (direct-to-PFS vs node-local burst log), a client-crash schedule, and
// the replica count. The reproduction target: the burst path absorbs
// checkpoints at log speed (rank-visible write time shrinks, drain lag
// moves the PFS traffic into the background) while crash recovery still
// restores exactly the last committed epoch — sealed-but-undrained records
// replay, unsealed ones are discarded — and the restart read passes the
// integrity oracle on both paths.
func Checkpoint(o Opts) *Result {
	res := &Result{
		ID:    "checkpoint",
		Title: "Checkpoint/restart under client crashes: direct vs burst-buffer write log",
		Table: &metrics.Table{Header: []string{
			"path", "crash", "replicas", "committed", "lost",
			"write_s", "stall_ms", "drain_ms", "recover_ms", "restart_s", "oracle"}},
	}
	prog := ckptProg(o.Quick)
	period := prog.Interval
	scenarios := []struct {
		label string
		sch   *fault.Schedule
	}{
		{"none", &fault.Schedule{}},
		// Mid-run: the job dies about halfway through its epochs.
		{"mid", clientCrashAt(period*time.Duration(prog.Epochs)/2 + period/2)},
		// Late: the job dies with most epochs committed.
		{"late", clientCrashAt(period*time.Duration(prog.Epochs) - period/4)},
	}
	paths := []struct {
		label string
		bcfg  *burst.Config
	}{
		{"direct", nil},
		{"burst", func() *burst.Config { c := burst.DefaultConfig(); return &c }()},
	}
	replicaCounts := []int{1, 2}
	if o.Quick {
		replicaCounts = []int{2}
	}
	res.note("%d ranks x %d epochs x %s blocks, %s compute per epoch; crash times are wall-clock, so the epoch they land in shifts with the write path's speed",
		prog.Procs, prog.Epochs, fmt.Sprintf("%dKB", prog.BlockBytes>>10), period)
	res.note("write_s is rank-visible checkpoint write time; drain_ms is mean seal->PFS-durable lag; recover_ms covers replay of sealed records plus the drain tail; 'no-epoch' marks the typed nothing-committed restart error")

	o = o.forSweep()
	type cellOut struct {
		row   []string
		notes []string
	}
	outs := make([]cellOut, len(paths)*len(scenarios)*len(replicaCounts))
	var cells []Cell
	for pi, path := range paths {
		for si, sc := range scenarios {
			for ri, reps := range replicaCounts {
				slot := &outs[(pi*len(scenarios)+si)*len(replicaCounts)+ri]
				cells = append(cells, Cell{
					Key: fmt.Sprintf("checkpoint/path=%s/crash=%s/replicas=%d", path.label, sc.label, reps),
					Run: func() {
						o.logf("checkpoint: path=%s crash=%s replicas=%d", path.label, sc.label, reps)
						cr := runCheckpoint(o.seed(), prog, reps, path.bcfg, sc.sch, false)
						stall, drain, recover := "-", "-", "-"
						if path.bcfg != nil {
							stall = msec(cr.stats.Stall)
							if cr.stats.DrainOps > 0 {
								drain = msec(cr.stats.DrainLag / time.Duration(cr.stats.DrainOps))
							}
							recover = msec(cr.recovery)
							if cr.recoveryErr != nil {
								recover = "ERR"
								slot.notes = append(slot.notes, fmt.Sprintf(
									"path=%s crash=%s replicas=%d recovery: %v", path.label, sc.label, reps, cr.recoveryErr))
							}
						}
						restart := secs(cr.restart.elapsed)
						switch {
						case errors.Is(cr.restartErr, burst.ErrNoCommittedEpoch):
							restart = "no-epoch"
						case cr.restartErr != nil:
							restart = "ERR"
							slot.notes = append(slot.notes, fmt.Sprintf(
								"path=%s crash=%s replicas=%d restart: %v", path.label, sc.label, reps, cr.restartErr))
						}
						oracle := "ok"
						if err := VerifyIntegrity(cr.cl); err != nil {
							oracle = "FAIL: " + err.Error()
						}
						slot.row = []string{path.label, sc.label, fmt.Sprintf("%d", reps),
							fmt.Sprintf("%d", cr.committed), fmt.Sprintf("%d", prog.Epochs-cr.committed),
							secs(cr.main.ioTime), stall, drain, recover, restart, oracle}
					},
				})
			}
		}
	}
	runSweep(o, cells)
	for _, out := range outs {
		res.Notes = append(res.Notes, out.notes...)
		res.Table.AddRow(out.row...)
	}
	return res
}
