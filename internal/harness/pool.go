package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
)

// The sweep engine: experiments are sweeps over independent cells (one
// simulated cluster per cell, seeded identically to the serial path), so the
// cells can run concurrently across GOMAXPROCS workers. Determinism is
// preserved structurally rather than by luck: every cell writes only into
// its own pre-assigned slot, and the experiment assembles rows, series, and
// notes from the slots in canonical order after the sweep — so the emitted
// tables are byte-identical whatever the interleaving. Only the progress
// log (stderr) may interleave differently under parallelism.

// Cell is one independent unit of a sweep: a keyed closure that runs a
// self-contained simulation and stores its outcome in storage owned by the
// cell (typically a slot in a results slice sized before the sweep).
type Cell struct {
	// Key names the cell in errors and panics, e.g. "fig3/read/dualpar".
	Key string
	// Run executes the cell. It must not touch shared mutable state other
	// than its own slot; a panic is captured and surfaced as a *CellError.
	Run func()
}

// CellError reports a cell whose Run panicked. The sweep completes the
// remaining cells before returning it (cells are independent), and when
// several cells fail the error for the canonically-first cell is returned,
// so the reported failure does not depend on scheduling.
type CellError struct {
	// Key is the failing cell's key.
	Key string
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the panicking goroutine's stack.
	Stack []byte
}

func (e *CellError) Error() string {
	return fmt.Sprintf("sweep cell %q panicked: %v", e.Key, e.Value)
}

// RunCells executes cells on up to workers concurrent goroutines and waits
// for them all. workers <= 0 means GOMAXPROCS; workers == 1 runs every cell
// inline on the calling goroutine in slice order — the serial code path.
// Cells are dispatched in slice order; once ctx is canceled no further cell
// starts (in-flight cells finish) and ctx.Err() is returned. A panicking
// cell becomes a *CellError; it does not cancel the remaining cells.
func RunCells(ctx context.Context, workers int, cells []Cell) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	errs := make([]*CellError, len(cells))
	runCell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &CellError{Key: cells[i].Key, Value: r, Stack: debug.Stack()}
			}
		}()
		cells[i].Run()
	}
	canceled := false
	if workers <= 1 {
		for i := range cells {
			if ctx.Err() != nil {
				canceled = true
				break
			}
			runCell(i)
		}
	} else {
		var (
			mu   sync.Mutex
			next int
			wg   sync.WaitGroup
		)
		// Workers pull the next undispatched cell index under a lock, so
		// dispatch order is canonical even though completion order is not.
		claim := func() int {
			mu.Lock()
			defer mu.Unlock()
			if next >= len(cells) || ctx.Err() != nil {
				return -1
			}
			i := next
			next++
			return i
		}
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := claim()
					if i < 0 {
						return
					}
					runCell(i)
				}
			}()
		}
		wg.Wait()
		canceled = ctx.Err() != nil
	}
	// Deterministic error selection: the first failing cell in canonical
	// order wins, regardless of which worker hit it first.
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	if canceled {
		return ctx.Err()
	}
	return nil
}

// runSweep is the experiments' entry into the pool: it executes cells with
// the Opts' parallelism and re-raises a cell failure as a panic, matching
// the serial path's fail-fast behavior inside a driver.
func runSweep(o Opts, cells []Cell) {
	if err := RunCells(o.Ctx, o.parallel(), cells); err != nil {
		panic(err)
	}
}

// syncWriter serializes writes from concurrent sweep cells onto one
// underlying writer, so -parallel logging is whole-line atomic and safe for
// non-thread-safe sinks (bytes.Buffer in tests).
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(b)
}

// forSweep returns a copy of o whose log writer is safe to share between
// concurrent cells. It is idempotent, so nested sweeps (All over
// experiments over cells) layer a single lock.
func (o Opts) forSweep() Opts {
	if o.Log == nil {
		return o
	}
	if _, ok := o.Log.(*syncWriter); !ok {
		o.Log = &syncWriter{w: o.Log}
	}
	return o
}
