package harness

import (
	"fmt"
	"time"

	"dualpar/internal/core"
	"dualpar/internal/fault"
	"dualpar/internal/metrics"
	"dualpar/internal/workloads"
)

// stragglerProg is the sweep workload: the §II demo (interleaved small
// synchronous reads, pure I/O) — the access pattern where request
// reordering matters most, so a straggling server stresses both the disk
// path and EMC's seek-distance signal.
func stragglerProg(quick bool) workloads.Demo {
	d := workloads.DefaultDemo()
	calls := int64(48)
	if quick {
		calls = 12
	}
	d.FileBytes = calls * int64(d.Procs) * int64(d.SegsPerCall) * d.SegBytes
	return d
}

// Straggler sweeps the severity of a single degraded data server — its
// disk served at 1x (healthy), 2x, 5x, and 10x slower — and measures the
// end-to-end slowdown it inflicts on a vanilla run versus a DualPar
// (data-driven) run. Both runs carry the client and CRM retry watchdogs.
// The reproduction target: DualPar's batched, sorted list I/O keeps the
// healthy servers streaming and bounds the straggler's blast radius, so
// its slowdown curve stays well below vanilla's; and the run completes at
// every severity (liveness under degradation, not just performance).
func Straggler(o Opts) *Result {
	res := &Result{
		ID:    "straggler",
		Title: "Straggler tolerance: one data server degraded, demo workload",
		Table: &metrics.Table{Header: []string{
			"severity", "vanilla_s", "vanilla_slowdown", "dualpar_s", "dualpar_slowdown"}},
	}
	o = o.forSweep()
	severities := []float64{1, 2, 5, 10}
	if o.Quick {
		severities = []float64{1, 10}
	}
	prog := stragglerProg(o.Quick)
	res.note("one server's disk degraded for the whole run; fault layer + retry watchdogs on in every cell (severity 1 = healthy baseline)")

	// One cell per (severity, mode); DNF notes are collected per cell and
	// appended in canonical order after the sweep.
	type cellOut struct {
		elapsed time.Duration
		note    string
	}
	modes := []struct {
		label string
		mode  core.Mode
	}{{"vanilla", core.ModeVanilla}, {"dualpar", core.ModeDataDriven}}
	outs := make([]cellOut, len(severities)*len(modes))
	var cells []Cell
	for si, sev := range severities {
		for mi, m := range modes {
			slot := &outs[si*len(modes)+mi]
			cells = append(cells, Cell{
				Key: fmt.Sprintf("straggler/%gx/%s", sev, m.label),
				Run: func() {
					o.logf("straggler: severity %gx %s", sev, m.label)
					sch := &fault.Schedule{}
					if sev > 1 {
						sch.Windows = []fault.Window{
							{Kind: fault.DiskSlow, Target: 1, Factor: sev},
						}
					}
					ms, _ := executeFaults(o.seed(), time.Hour, core.DefaultConfig(), sch,
						[]runSpec{{prog: prog, mode: m.mode}})
					if !ms[0].finished {
						slot.note = fmt.Sprintf("severity %gx/%v DID NOT FINISH within the time budget", sev, m.mode)
						return
					}
					slot.elapsed = ms[0].elapsed
				},
			})
		}
	}
	runSweep(o, cells)
	for _, out := range outs {
		if out.note != "" {
			res.note("%s", out.note)
		}
	}
	var vanBase, ddBase time.Duration
	for si, sev := range severities {
		van := outs[si*len(modes)].elapsed
		dd := outs[si*len(modes)+1].elapsed
		if sev == 1 {
			vanBase, ddBase = van, dd
		}
		slow := func(t, base time.Duration) string {
			if base <= 0 || t <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.2fx", float64(t)/float64(base))
		}
		res.Table.AddRow(fmt.Sprintf("%gx", sev),
			secs(van), slow(van, vanBase), secs(dd), slow(dd, ddBase))
	}
	return res
}
