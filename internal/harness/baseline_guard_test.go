package harness

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestBaselineUnchangedWithoutBurst is the byte-identical guard for the
// burst-buffer tier: a configuration with no burst spec and no
// epoch-checkpoint workload must render exactly as it did at the commit
// before the tier landed (the golden was recorded at that HEAD). The
// availability experiment is the pinned probe because it exercises the
// code nearest the new write path — crash faults, replication, the
// integrity oracle, and the plain Checkpoint workload — without touching
// any burst feature. Verified serial, at -parallel 4, and with the audit
// oracles armed (PR 5's audit-changes-no-numbers contract). ~seconds of
// simulation, so skipped under -short like the other golden sweeps.
func TestBaselineUnchangedWithoutBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the availability sweep four times; skipped with -short")
	}
	path := filepath.Join("testdata", "availability_quick.golden")
	got := renderResult(Availability(Opts{Quick: true, Parallel: 1, Log: io.Discard}))
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/harness -run BaselineUnchanged -update)", err)
	}
	if got != string(want) {
		t.Fatalf("serial output drifted from the pre-burst baseline %s:\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got)
	}
	for _, v := range []struct {
		name string
		run  func() string
	}{
		{"parallel4", func() string {
			return renderResult(Availability(Opts{Quick: true, Parallel: 4, Log: io.Discard}))
		}},
		{"audit", func() string {
			SetAudit(true)
			defer SetAudit(false)
			return renderResult(Availability(Opts{Quick: true, Parallel: 1, Log: io.Discard}))
		}},
		{"audit-parallel4", func() string {
			SetAudit(true)
			defer SetAudit(false)
			return renderResult(Availability(Opts{Quick: true, Parallel: 4, Log: io.Discard}))
		}},
	} {
		if out := v.run(); out != string(want) {
			t.Errorf("%s output drifted from the pre-burst baseline:\n--- want ---\n%s\n--- got ---\n%s",
				v.name, want, out)
		}
	}
}

// TestMultitenantDeterminismGolden is the same four-variant byte-identity
// guard for the multi-tenant sweep: the quick table must render exactly as
// the checked-in golden, serially, at -parallel 4, and with the audit
// oracles armed in both shapes. The cells inside the sweep spawn their own
// arrival and worker procs and the arbiter revokes grants mid-run, so this
// is the test that pins "revocation order is simulation state, not host
// scheduling".
func TestMultitenantDeterminismGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the multitenant sweep four times; skipped with -short")
	}
	path := filepath.Join("testdata", "multitenant_quick.golden")
	got := renderResult(Multitenant(Opts{Quick: true, Parallel: 1, Log: io.Discard}))
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/harness -run MultitenantDeterminism -update)", err)
	}
	if got != string(want) {
		t.Fatalf("serial output drifted from %s:\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got)
	}
	for _, v := range []struct {
		name string
		run  func() string
	}{
		{"parallel4", func() string {
			return renderResult(Multitenant(Opts{Quick: true, Parallel: 4, Log: io.Discard}))
		}},
		{"audit", func() string {
			SetAudit(true)
			defer SetAudit(false)
			return renderResult(Multitenant(Opts{Quick: true, Parallel: 1, Log: io.Discard}))
		}},
		{"audit-parallel4", func() string {
			SetAudit(true)
			defer SetAudit(false)
			return renderResult(Multitenant(Opts{Quick: true, Parallel: 4, Log: io.Discard}))
		}},
	} {
		if out := v.run(); out != string(want) {
			t.Errorf("%s output drifted from the golden:\n--- want ---\n%s\n--- got ---\n%s",
				v.name, want, out)
		}
	}
}
