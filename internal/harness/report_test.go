package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fig1aReports runs the quick fig1a sweep with run-level attribution armed
// and renders the drained reports the way cmd/experiments prints them.
func fig1aReports(t *testing.T, parallel int) string {
	t.Helper()
	SetReport(true)
	defer SetReport(false)
	Fig1a(Opts{Quick: true, Seed: 1, Parallel: parallel, Log: io.Discard})
	var b strings.Builder
	reports := DrainReports()
	if len(reports) == 0 {
		t.Fatal("no reports drained")
	}
	for _, rr := range reports {
		if !rr.Report.Conserved() {
			t.Errorf("run %s: attribution not conserved (residual %v)", rr.Key, rr.Report.MaxResidual)
		}
		fmt.Fprintf(&b, "== report: %s ==\n", rr.Key)
		if err := rr.Report.RenderText(&b); err != nil {
			t.Fatal(err)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestReportGoldenAndParallel pins the quick fig1a attribution reports to a
// golden file and demands byte-identical rendering from a four-worker sweep:
// the report pipeline inherits the sweep engine's determinism contract.
func TestReportGoldenAndParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig1a quick sweep twice with tracing on; skipped with -short")
	}
	serial := fig1aReports(t, 1)
	par := fig1aReports(t, 4)
	if serial != par {
		t.Errorf("parallel(4) reports differ from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
	path := filepath.Join("testdata", "fig1a_report_quick.golden")
	if *update {
		if err := os.WriteFile(path, []byte(serial), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/harness -run ReportGolden -update)", err)
	}
	if serial != string(want) {
		t.Errorf("reports drifted from %s:\n--- want ---\n%s\n--- got ---\n%s\n(if intended, rerun with -update)",
			path, want, serial)
	}
}
