package harness

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"dualpar/internal/core"
	"dualpar/internal/workloads"
)

// cell parses a table cell as float.
func cell(t *testing.T, res *Result, row, col int) float64 {
	t.Helper()
	if row >= len(res.Table.Rows) || col >= len(res.Table.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d) in\n%s", res.ID, row, col, res.Table.String())
	}
	s := strings.TrimSuffix(res.Table.Rows[row][col], "%")
	s = strings.TrimSuffix(s, "KB")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", res.ID, row, col, res.Table.Rows[row][col])
	}
	return v
}

func quick() Opts { return Opts{Quick: true} }

func TestFig1aShapes(t *testing.T) {
	res := Fig1a(quick())
	// Quick ratios: 31%, 86%, 100%. Columns: 1=s1, 2=s2, 3=s3.
	// At low I/O ratio strategy 2 beats strategy 3.
	if !(cell(t, res, 0, 2) < cell(t, res, 0, 3)) {
		t.Errorf("at 31%% ratio, strategy2 should beat strategy3:\n%s", res.Table.String())
	}
	// At ~100% I/O ratio strategy 3 wins outright.
	last := len(res.Table.Rows) - 1
	if !(cell(t, res, last, 3) < cell(t, res, last, 2)) || !(cell(t, res, last, 3) < cell(t, res, last, 1)) {
		t.Errorf("at 100%% ratio, strategy3 should win:\n%s", res.Table.String())
	}
}

func TestFig1bSmallSegmentsFavorStrategy3(t *testing.T) {
	res := Fig1b(quick())
	// 4KB row: strategy3 well below strategy1.
	if !(cell(t, res, 0, 3) < cell(t, res, 0, 1)*0.7) {
		t.Errorf("at 4KB segments strategy3 should clearly beat strategy1:\n%s", res.Table.String())
	}
	// 128KB row: the three schemes converge (within 2x).
	lo, hi := cell(t, res, 2, 1), cell(t, res, 2, 1)
	for c := 2; c <= 3; c++ {
		v := cell(t, res, 2, c)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 2.2*lo {
		t.Errorf("at 128KB segments schemes should converge:\n%s", res.Table.String())
	}
}

func TestFig1cdOrdering(t *testing.T) {
	res := Fig1cd(quick())
	// Strategy 3's service order must be more monotone than strategy 2's.
	m2, m3 := cell(t, res, 0, 2), cell(t, res, 1, 2)
	if m3 < m2 {
		t.Errorf("strategy3 monotonicity %.2f < strategy2 %.2f:\n%s", m3, m2, res.Table.String())
	}
	if len(res.Series) != 2 {
		t.Errorf("expected 2 LBN series, got %d", len(res.Series))
	}
}

func TestFig3Shapes(t *testing.T) {
	res := Fig3(quick())
	// Rows: mpi-io-test read, noncontig read, ior read, then writes.
	// Columns: 2=vanilla, 3=collective, 4=dualpar.
	for row := 0; row < 6; row++ {
		van, dp := cell(t, res, row, 2), cell(t, res, row, 4)
		if dp <= van {
			t.Errorf("row %d: dualpar %.1f not above vanilla %.1f:\n%s", row, dp, van, res.Table.String())
		}
	}
	// noncontig read: vanilla << collective << dualpar.
	if !(cell(t, res, 1, 2) < cell(t, res, 1, 3) && cell(t, res, 1, 3) < cell(t, res, 1, 4)) {
		t.Errorf("noncontig ordering wrong:\n%s", res.Table.String())
	}
	// ior-mpi-io read: collective loses its edge (<= vanilla * 1.1).
	if cell(t, res, 2, 3) > cell(t, res, 2, 2)*1.1 {
		t.Errorf("ior collective should not beat vanilla:\n%s", res.Table.String())
	}
}

func TestFig4DualParBeatsVanillaAndScales(t *testing.T) {
	res := Fig4(quick())
	for row := range res.Table.Rows {
		van, coll, dp := cell(t, res, row, 2), cell(t, res, row, 3), cell(t, res, row, 4)
		if dp < 10*van {
			t.Errorf("row %d: dualpar %.1f not >> vanilla %.2f:\n%s", row, dp, van, res.Table.String())
		}
		if coll < 10*van {
			t.Errorf("row %d: collective %.1f not >> vanilla %.2f:\n%s", row, coll, van, res.Table.String())
		}
	}
	// DualPar's advantage over collective grows with procs.
	r0 := cell(t, res, 0, 4) / cell(t, res, 0, 3)
	r1 := cell(t, res, 1, 4) / cell(t, res, 1, 3)
	if r1 < r0*0.95 {
		t.Errorf("dualpar/collective ratio should not shrink with procs: %.2f -> %.2f", r0, r1)
	}
}

func TestTable2ConcurrentInstances(t *testing.T) {
	res := Table2(quick())
	for row, rw := range []string{"read", "write"} {
		van, dp := cell(t, res, row, 1), cell(t, res, row, 3)
		if dp < van*1.4 {
			t.Errorf("%s: dualpar %.1f not well above vanilla %.1f:\n%s", rw, dp, van, res.Table.String())
		}
	}
}

func TestFig6SeekReduction(t *testing.T) {
	res := Fig6(quick())
	van, dp := cell(t, res, 0, 3), cell(t, res, 1, 3)
	if dp >= van {
		t.Errorf("dualpar mean seek %.0f not below vanilla %.0f:\n%s", dp, van, res.Table.String())
	}
}

func TestFig8CacheSweep(t *testing.T) {
	res := Fig8(quick())
	zero, small := cell(t, res, 0, 1), cell(t, res, 1, 1)
	if small < zero*5 {
		t.Errorf("64KB cache should be dramatically better than none:\n%s", res.Table.String())
	}
	last := cell(t, res, len(res.Table.Rows)-1, 1)
	if last < small*0.8 {
		t.Errorf("larger caches should not regress far below 64KB:\n%s", res.Table.String())
	}
}

func TestTable3BoundedOverhead(t *testing.T) {
	res := Table3(quick())
	for row := range res.Table.Rows {
		if over := cell(t, res, row, 3); over > 60 {
			t.Errorf("row %d: overhead %.1f%% unbounded:\n%s", row, over, res.Table.String())
		}
	}
}

func TestFig7OpportunisticSwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 needs a longer run for EMC slots")
	}
	res := Fig7(Opts{}) // full size: quick runs are too short for slots
	// DualPar must switch and end up with smaller seeks than vanilla after
	// the join.
	if res.Table.Rows[1][4] != "true" {
		t.Errorf("dualpar run never switched modes:\n%s", res.Table.String())
	}
	vanSeek, dpSeek := cell(t, res, 0, 3), cell(t, res, 1, 3)
	if dpSeek >= vanSeek {
		t.Errorf("dualpar seek %.0f not below vanilla %.0f:\n%s", dpSeek, vanSeek, res.Table.String())
	}
	vanAfter, dpAfter := cell(t, res, 0, 2), cell(t, res, 1, 2)
	if dpAfter <= vanAfter {
		t.Errorf("dualpar after-join throughput %.1f not above vanilla %.1f:\n%s", dpAfter, vanAfter, res.Table.String())
	}
}

func TestFig5Runs(t *testing.T) {
	res := Fig5(quick())
	if len(res.Table.Rows) == 0 {
		t.Fatalf("no rows")
	}
	for row := range res.Table.Rows {
		for col := 1; col <= 3; col++ {
			if cell(t, res, row, col) <= 0 {
				t.Errorf("non-positive I/O time at (%d,%d):\n%s", row, col, res.Table.String())
			}
		}
	}
}

func TestResultsDeterministic(t *testing.T) {
	a := Table2(Opts{Quick: true, Seed: 3})
	b := Table2(Opts{Quick: true, Seed: 3})
	for i := range a.Table.Rows {
		for j := range a.Table.Rows[i] {
			if a.Table.Rows[i][j] != b.Table.Rows[i][j] {
				t.Fatalf("nondeterministic result at (%d,%d): %s vs %s", i, j, a.Table.Rows[i][j], b.Table.Rows[i][j])
			}
		}
	}
}

func TestExecuteMultipleProgramsFinish(t *testing.T) {
	m := workloads.DefaultMPIIOTest()
	m.FileBytes = 8 << 20
	m.FileName = "x.dat"
	h := workloads.DefaultHPIO()
	h.RegionCount = 256
	h.FileName = "y.dat"
	ms, _ := execute(1, false, time.Hour, core.DefaultConfig(), []runSpec{
		{prog: m, mode: core.ModeVanilla},
		{prog: h, mode: core.ModeVanilla, startAt: 100 * time.Millisecond},
	})
	for i, m := range ms {
		if !m.finished {
			t.Fatalf("program %d did not finish", i)
		}
	}
}

func TestAblateSchedulerDualParWinsEverywhere(t *testing.T) {
	res := AblateScheduler(quick())
	for row := range res.Table.Rows {
		van, dp := cell(t, res, row, 1), cell(t, res, row, 2)
		if dp <= van {
			t.Errorf("%s: dualpar %.1f not above vanilla %.1f", res.Table.Rows[row][0], dp, van)
		}
	}
}

func TestAblateSSDCollapsesAdvantage(t *testing.T) {
	res := AblateSSD(quick())
	diskSpeedup := cell(t, res, 0, 2) / cell(t, res, 0, 1)
	ssdSpeedup := cell(t, res, 1, 2) / cell(t, res, 1, 1)
	if ssdSpeedup >= diskSpeedup {
		t.Errorf("SSD speedup %.2f not below disk speedup %.2f:\n%s", ssdSpeedup, diskSpeedup, res.Table.String())
	}
}

func TestAblateDiskOriginsServerWins(t *testing.T) {
	res := AblateDiskOrigins(quick())
	server, client := cell(t, res, 0, 1), cell(t, res, 1, 1)
	if server <= client {
		t.Errorf("server-process origin %.1f not above per-client %.1f", server, client)
	}
}

func TestAblateHoleFillingReducesAccesses(t *testing.T) {
	res := AblateHoleThreshold(quick())
	noHole := cell(t, res, 0, 2)
	withHole := cell(t, res, 2, 2)
	if withHole >= noHole {
		t.Errorf("hole filling did not reduce disk accesses: %v vs %v:\n%s", withHole, noHole, res.Table.String())
	}
}

func TestAblateTSwitchBand(t *testing.T) {
	res := AblateTImprovement(quick())
	// Low T values must switch; a huge T must not.
	if res.Table.Rows[1][1] != "true" {
		t.Errorf("T=5 did not switch:\n%s", res.Table.String())
	}
	if res.Table.Rows[len(res.Table.Rows)-1][1] != "false" {
		t.Errorf("T=64 switched:\n%s", res.Table.String())
	}
}

func TestAblateWritePathRuns(t *testing.T) {
	res := AblateWritePath(quick())
	if len(res.Table.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	for row := range res.Table.Rows {
		if cell(t, res, row, 1) <= 0 || cell(t, res, row, 2) <= 0 {
			t.Errorf("non-positive throughput in row %d:\n%s", row, res.Table.String())
		}
	}
}

func TestAblateStrategy2WindowMonotonicEnough(t *testing.T) {
	res := AblateStrategy2Window(quick())
	small := cell(t, res, 0, 1)
	large := cell(t, res, 2, 1)
	if large >= small {
		t.Errorf("bigger window %v not faster than tiny window %v:\n%s", large, small, res.Table.String())
	}
}

func TestAblateServersSpeedupHolds(t *testing.T) {
	res := AblateServers(quick())
	for row := range res.Table.Rows {
		van, dp := cell(t, res, row, 1), cell(t, res, row, 2)
		if dp < van*1.3 {
			t.Errorf("%s servers: dualpar %.1f not well above vanilla %.1f",
				res.Table.Rows[row][0], dp, van)
		}
	}
	// More spindles must help both schemes overall (3 -> 18 servers).
	if cell(t, res, 3, 2) <= cell(t, res, 0, 2) {
		t.Errorf("dualpar did not gain from 6x servers:\n%s", res.Table.String())
	}
}

func TestAblatePipelineImproves(t *testing.T) {
	res := AblatePipeline(quick())
	paper := cell(t, res, 2, 1)
	x4 := cell(t, res, 4, 1)
	if x4 >= paper {
		t.Errorf("pipelined x4 (%.2fs) not faster than the paper's cycle (%.2fs):\n%s",
			x4, paper, res.Table.String())
	}
}

func TestStragglerToleranceShapes(t *testing.T) {
	res := Straggler(quick())
	if len(res.Table.Rows) != 2 {
		t.Fatalf("quick sweep rows = %d, want 2:\n%s", len(res.Table.Rows), res.Table.String())
	}
	// Every cell must have completed (liveness under a 10x-degraded server).
	for row := range res.Table.Rows {
		if cell(t, res, row, 1) <= 0 || cell(t, res, row, 3) <= 0 {
			t.Fatalf("a degraded run did not finish:\n%s", res.Table.String())
		}
	}
	// DualPar's batched list I/O must bound the straggler's blast radius:
	// its relative slowdown at 10x stays below vanilla's.
	vanSlow := cell(t, res, 1, 1) / cell(t, res, 0, 1)
	ddSlow := cell(t, res, 1, 3) / cell(t, res, 0, 3)
	if ddSlow >= vanSlow {
		t.Errorf("dualpar slowdown %.2fx not below vanilla %.2fx under a 10x straggler:\n%s",
			ddSlow, vanSlow, res.Table.String())
	}
}
