package harness

import (
	"context"
	"fmt"
	"io"
	"testing"
)

// BenchmarkSweepDispatch measures the pool's per-cell overhead: 256 trivial
// cells through the claim/recover machinery, serial vs worker counts. The
// work per cell is negligible, so this isolates what the engine itself
// costs on top of the cells.
func BenchmarkSweepDispatch(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			out := make([]int, 256)
			cells := make([]Cell, len(out))
			for i := range cells {
				cells[i] = Cell{Key: fmt.Sprintf("cell%d", i), Run: func() { out[i] = i }}
			}
			for n := 0; n < b.N; n++ {
				if err := RunCells(context.Background(), workers, cells); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchOpts silences experiment logging and pins the parallelism.
func benchOpts(workers int) Opts {
	return Opts{Quick: true, Log: io.Discard, Parallel: workers}
}

// BenchmarkSweepFig3Serial / Parallel run a real experiment sweep (Fig 3,
// quick workloads: 2 access patterns x 3 schemes plus two collective
// variants) end to end. On a multi-core machine the parallel variant's
// wall-clock should approach serial divided by min(GOMAXPROCS, cells);
// simulated results are byte-identical either way.
func BenchmarkSweepFig3Serial(b *testing.B) {
	benchSweepFig3(b, 1)
}

func BenchmarkSweepFig3Parallel(b *testing.B) {
	benchSweepFig3(b, 0) // 0 = GOMAXPROCS workers
}

func benchSweepFig3(b *testing.B, workers int) {
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		res := Fig3(benchOpts(workers))
		if len(res.Table.Rows) == 0 {
			b.Fatal("Fig3 produced no rows")
		}
	}
}
