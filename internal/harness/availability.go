package harness

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/ext"
	"dualpar/internal/fault"
	"dualpar/internal/metrics"
	"dualpar/internal/pfs"
	"dualpar/internal/sim"
	"dualpar/internal/workloads"
)

// verifyOrigin tags the oracle's re-read requests, away from program and
// flusher origins.
const verifyOrigin = 1 << 21

// VerifyIntegrity is the end-to-end data-integrity oracle: after a run it
// re-reads every logical byte the tracker saw written (through the same
// failover read path the workload used, paying full simulated cost) and
// compares the version stamps the serving replicas hold against the
// expected content. It returns nil only when every byte reads back exactly
// as written; a stale replica, a lost stripe, or a deliberate corruption
// all surface as a non-nil error naming the first bad range. The cluster
// must have had EnableIntegrity armed before the run.
func VerifyIntegrity(cl *cluster.Cluster) error {
	tr := cl.FS.Tracker()
	if tr == nil {
		return fmt.Errorf("harness: VerifyIntegrity without EnableIntegrity")
	}
	client := cl.FS.Client(cluster.ComputeNodeBase)
	var verr error
	done := false
	cl.K.Spawn("harness/verify", func(p *sim.Proc) {
		defer func() { done = true }()
		for _, name := range tr.Files() {
			expected := tr.Expected(name)
			var extents []ext.Extent
			for _, s := range expected {
				if s.Ver > 0 {
					extents = append(extents, s.Ext)
				}
			}
			if len(extents) == 0 {
				continue
			}
			got, err := client.ReadVersions(p, name, ext.Merge(extents), verifyOrigin)
			if err != nil {
				verr = fmt.Errorf("verify %q: %w", name, err)
				return
			}
			if msg := diffSegs(expected, got); msg != "" {
				verr = fmt.Errorf("verify %q: %s", name, msg)
				return
			}
		}
	})
	// The verifier shares the kernel with forever-looping daemons (store
	// flushers), so drive it in bounded steps rather than running the kernel
	// dry.
	if !driveKernel(cl, &done, 30*time.Minute) {
		return fmt.Errorf("harness: integrity verification did not complete (reads wedged)")
	}
	return verr
}

// diffSegs compares the expected version stamps against what a re-read
// returned, byte for byte. Both lists are sorted and the read covers every
// expected byte; "" means they match.
func diffSegs(expected, got []VersionSeg) string {
	i := 0
	for _, g := range got {
		off := g.Ext.Off
		for off < g.Ext.End() {
			for i < len(expected) && expected[i].Ext.End() <= off {
				i++
			}
			if i >= len(expected) || off < expected[i].Ext.Off {
				off = g.Ext.End() // bytes we never stamped; nothing to check
				continue
			}
			e := expected[i]
			end := min(g.Ext.End(), e.Ext.End())
			if g.Ver != e.Ver {
				return fmt.Sprintf("bytes [%d,%d): wrote v%d, read back v%d",
					off, end, e.Ver, g.Ver)
			}
			off = end
		}
	}
	return ""
}

// VersionSeg re-exports the oracle's segment type for test assertions.
type VersionSeg = pfs.VersionSeg

// availProg is the availability write workload: N-1 checkpointing — every
// byte written exactly once at a known offset, so the oracle's expected
// content is rich and any lost write is visible.
func availProg(quick bool) workloads.Checkpoint {
	c := workloads.DefaultCheckpoint()
	c.Procs = 16
	c.Compute = 150 * time.Millisecond
	c.Checkpoints = 16
	if quick {
		c.Checkpoints = 8
	}
	return c
}

// availReader runs alongside the checkpoint: interleaved reads of a
// pre-created file, paced to still be reading when the crash lands, so the
// failover read path (not just quorum writes) is exercised.
func availReader(quick bool) workloads.Demo {
	d := workloads.DefaultDemo()
	d.ComputePerCall = 30 * time.Millisecond
	calls := int64(48)
	if quick {
		calls = 24
	}
	d.FileBytes = calls * int64(d.Procs) * int64(d.SegsPerCall) * d.SegBytes
	return d
}

// executeAvail runs specs on a cluster with replication, crash-fault
// watchdogs, and the integrity tracker armed.
func executeAvail(seed int64, maxTime time.Duration, replicas int, sch *fault.Schedule, specs []runSpec) ([]measured, *cluster.Cluster) {
	cfg := baseConfig()
	cfg.Seed = seed
	cfg.Faults = sch
	cfg.PFS.Replicas = replicas
	cfg.PFS.DetectDelay = 100 * time.Millisecond
	cfg.PFS.RequestTimeout = 250 * time.Millisecond
	cfg.PFS.MaxRetries = 4
	cfg.PFS.RetryBackoff = 20 * time.Millisecond
	ddCfg := core.DefaultConfig()
	ddCfg.CRMTimeout = 2 * time.Second
	ddCfg.CRMMaxRetries = 3
	ddCfg.CRMBackoff = 50 * time.Millisecond
	cl := cluster.New(cfg)
	cl.FS.EnableIntegrity()
	return executeOn(cl, maxTime, ddCfg, specs)
}

// Availability sweeps crash-stop server failures against the replica
// count: a single crash that recovers mid-run (exercising failover and the
// online rebuild) and two permanent crashes on non-replica-pair servers.
// The reproduction target: with Replicas >= 2 every cell completes and the
// integrity oracle passes end to end; unreplicated runs detect and report
// the data loss (a typed error, surfaced through the program run) instead
// of hanging.
func Availability(o Opts) *Result {
	res := &Result{
		ID:    "availability",
		Title: "Availability under crash-stop failures: replicas vs crashes, checkpoint workload",
		Table: &metrics.Table{Header: []string{
			"crashes", "replicas", "completed", "elapsed_s", "io_error", "failovers", "oracle"}},
	}
	scenarios := []struct {
		label string
		sch   *fault.Schedule
	}{
		{"none", &fault.Schedule{}},
		// Server 2 crashes mid-run and recovers: reads fail over, quorum
		// writes continue, and the rebuild re-copies what it missed.
		{"1 (recovers)", &fault.Schedule{Windows: []fault.Window{
			{Kind: fault.ServerCrash, Target: 2, Start: 400 * time.Millisecond, End: 1100 * time.Millisecond},
		}}},
		// Servers 2 and 4 crash for good. With the default rack-stride
		// placement they hold no stripe's replicas jointly, so two data
		// copies still suffice.
		{"2 (permanent)", &fault.Schedule{Windows: []fault.Window{
			{Kind: fault.ServerCrash, Target: 2, Start: 400 * time.Millisecond},
			{Kind: fault.ServerCrash, Target: 4, Start: 700 * time.Millisecond},
		}}},
	}
	replicaCounts := []int{1, 2, 3}
	if o.Quick {
		scenarios = scenarios[1:] // crash cells only; "none" adds no signal
		replicaCounts = []int{1, 2}
	}
	writer := availProg(o.Quick)
	reader := availReader(o.Quick)
	res.note("checkpoint writer + concurrent reader in every cell; the oracle re-reads all written bytes after the run; crash targets chosen off the replica stride so R=2 covers both scenarios")

	o = o.forSweep()
	type cellOut struct {
		row   []string
		notes []string
	}
	outs := make([]cellOut, len(scenarios)*len(replicaCounts))
	var cells []Cell
	for si, sc := range scenarios {
		for ri, reps := range replicaCounts {
			slot := &outs[si*len(replicaCounts)+ri]
			cells = append(cells, Cell{
				Key: fmt.Sprintf("availability/crashes=%s/replicas=%d", sc.label, reps),
				Run: func() {
					o.logf("availability: crashes=%s replicas=%d", sc.label, reps)
					ms, cl := executeAvail(o.seed(), time.Hour, reps, sc.sch, []runSpec{
						{prog: writer, mode: core.ModeVanilla},
						{prog: reader, mode: core.ModeVanilla, nodeOff: 2},
					})
					completed := "yes"
					last := ms[0].elapsed
					for _, m := range ms {
						if !m.finished {
							completed = "NO"
							slot.notes = append(slot.notes,
								fmt.Sprintf("crashes=%s replicas=%d DID NOT FINISH within the time budget", sc.label, reps))
						}
						if m.elapsed > last {
							last = m.elapsed
						}
					}
					ioErr := "-"
					var lost []string
					for i, name := range []string{"writer", "reader"} {
						if err := ms[i].run.Err(); err != nil {
							if errorsIsRetries(err) {
								lost = append(lost, name)
							} else {
								lost = append(lost, name+": "+err.Error())
							}
						}
					}
					if len(lost) > 0 {
						ioErr = "data loss: " + strings.Join(lost, "+")
					}
					oracle := "ok"
					if err := VerifyIntegrity(cl); err != nil {
						oracle = "FAIL: " + err.Error()
					}
					slot.row = []string{sc.label, fmt.Sprintf("%d", reps), completed,
						secs(last), ioErr, fmt.Sprintf("%d", cl.FS.Failovers()), oracle}
				},
			})
		}
	}
	runSweep(o, cells)
	for _, out := range outs {
		res.Notes = append(res.Notes, out.notes...)
		res.Table.AddRow(out.row...)
	}
	return res
}

// errorsIsRetries reports whether err wraps the typed retries-exhausted
// error (all replicas of some stripe down).
func errorsIsRetries(err error) bool {
	return errors.Is(err, pfs.ErrRetriesExhausted)
}
