package harness

import (
	"errors"
	"testing"
	"time"

	"dualpar/internal/burst"
	"dualpar/internal/fault"
	"dualpar/internal/workloads"
)

// matrixProg is the crash-matrix workload: tiny rank count, big blocks, and
// a long compute interval, so each lifecycle phase (compute, absorb, seal,
// drain) occupies a wide, well-separated window and a wall-clock crash time
// lands in the intended phase with generous margin.
func matrixProg() workloads.EpochCheckpoint {
	return workloads.EpochCheckpoint{
		Procs:      2,
		BlockBytes: 1 << 20,
		Epochs:     3,
		Interval:   300 * time.Millisecond,
		Shared:     true,
		BaseName:   "ckpt.dat",
	}
}

// slowDrain absorbs a 1 MB block in 125 ms and drains it in 500 ms, so
// sealed records linger in the log long enough to crash mid-drain.
func slowDrain() *burst.Config {
	return &burst.Config{
		CapacityBytes: 16 << 20,
		AbsorbBps:     8 << 20,
		DrainBps:      2 << 20,
		SealLatency:   100 * time.Microsecond,
	}
}

// fastDrain drains sealed records essentially as soon as they seal, so a
// crash landing in the next epoch's compute finds the log fully drained.
func fastDrain() *burst.Config {
	c := slowDrain()
	c.DrainBps = 400 << 20
	return c
}

// TestCheckpointCrashMatrix is the acceptance matrix: a client crash at
// every lifecycle point — mid-epoch, post-seal pre-drain, mid-drain,
// post-drain — on both write paths must recover exactly the last committed
// epoch, with the restart read passing the integrity oracle and byte
// conservation (audit armed) holding throughout.
//
// Timeline (burst path, per the configs above; direct writes finish in a
// few tens of ms so its epochs run slightly ahead): epoch e computes for
// 300 ms, then the two ranks absorb 1 MB each back to back (250 ms), seal,
// and barrier. Epoch 1 is committed ~550 ms, epoch 2 ~1110 ms, epoch 3
// ~1665 ms. With slowDrain the two epoch-1 records drain over
// [~550, ~1550] ms, so epoch-2 records are always sealed-but-undrained
// when a crash lands before ~1550 ms.
func TestCheckpointCrashMatrix(t *testing.T) {
	prog := matrixProg()
	block := prog.BlockBytes
	cases := []struct {
		name    string
		bcfg    *burst.Config
		crashAt time.Duration
		// wantCommitted is exact: recovery must restore this epoch, no more,
		// no less.
		wantCommitted int
		// Burst-path stats expectations, in bytes (-1 = don't check).
		wantDrained, wantReplayed, wantDiscarded int64
	}{
		// Crash during epoch 1's compute: nothing sealed anywhere, restart
		// has nothing to recover and must say so with the typed error.
		{"direct/no-epoch", nil, 150 * time.Millisecond, 0, -1, -1, -1},
		{"burst/no-epoch", slowDrain(), 150 * time.Millisecond, 0, 0, 0, 0},

		// Mid-epoch: crash lands inside epoch 2's write window (direct: the
		// synchronous writes; burst: the absorb), so epoch 2 never seals.
		{"direct/mid-epoch", nil, 450 * time.Millisecond, 1, -1, -1, -1},
		// Burst: seals are per-rank, and rank 0 seals its epoch-2 record as
		// soon as its absorb finishes (~985 ms) — before the barrier — so at
		// the crash that record is sealed and replays, while rank 1's is
		// still unsealed and is discarded. The epoch stays uncommitted (rank
		// 1 never sealed it) and the replayed block clobbers nothing: epoch
		// regions never overlap. Of epoch 1, one record drained in-flight
		// and one replays.
		{"burst/mid-epoch", slowDrain(), 1000 * time.Millisecond, 1, 1 << 20, 2 << 20, 1 << 20},

		// Post-seal pre-drain: crash in epoch 3's compute, after epoch 2
		// sealed but while the drainer is still working through epoch 1 —
		// epoch 2's bytes are sealed-but-undrained and must replay.
		{"direct/post-seal", nil, 950 * time.Millisecond, 2, -1, -1, -1},
		{"burst/post-seal-pre-drain", slowDrain(), 1200 * time.Millisecond, 2, 2 << 20, 2 << 20, 0},

		// Mid-drain: crash inside epoch 3's absorb — the in-flight epoch-1
		// drain completes, sealed epoch-2 records replay, unsealed epoch-3
		// records are discarded.
		{"burst/mid-drain", slowDrain(), 1500 * time.Millisecond, 2, 2 << 20, 2 << 20, 2 << 20},

		// Post-drain: with a fast drain every sealed record is durable
		// moments after its seal; a crash in epoch 3's compute leaves an
		// empty log and recovery replays nothing.
		{"burst/post-drain", fastDrain(), 1200 * time.Millisecond, 2, 4 << 20, 0, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cr := runCheckpoint(1, prog, 2, tc.bcfg, clientCrashAt(tc.crashAt), true)
			if !cr.crashed {
				t.Fatalf("program did not crash (crash at %v scheduled)", tc.crashAt)
			}
			if cr.committed != tc.wantCommitted {
				t.Fatalf("committed epoch = %d, want %d", cr.committed, tc.wantCommitted)
			}
			if tc.bcfg != nil {
				if cr.recoveryErr != nil {
					t.Fatalf("recovery: %v", cr.recoveryErr)
				}
				s := cr.stats
				if s.Resident != 0 {
					t.Errorf("log not empty after recovery+drain: %d resident bytes", s.Resident)
				}
				if tc.wantDrained >= 0 && s.Drained != tc.wantDrained {
					t.Errorf("Drained = %d, want %d (stats %+v)", s.Drained, tc.wantDrained, s)
				}
				if tc.wantReplayed >= 0 && s.Replayed != tc.wantReplayed {
					t.Errorf("Replayed = %d, want %d (stats %+v)", s.Replayed, tc.wantReplayed, s)
				}
				if tc.wantDiscarded >= 0 && s.Discarded != tc.wantDiscarded {
					t.Errorf("Discarded = %d, want %d (stats %+v)", s.Discarded, tc.wantDiscarded, s)
				}
				if got := s.Drained + s.Replayed + s.Discarded + s.Resident; got != s.Absorbed {
					t.Errorf("conservation: absorbed %d != drained %d + replayed %d + discarded %d + resident %d",
						s.Absorbed, s.Drained, s.Replayed, s.Discarded, s.Resident)
				}
			}
			if tc.wantCommitted == 0 {
				if !errors.Is(cr.restartErr, burst.ErrNoCommittedEpoch) {
					t.Fatalf("restart error = %v, want the typed %v", cr.restartErr, burst.ErrNoCommittedEpoch)
				}
			} else {
				if cr.restartErr != nil {
					t.Fatalf("restart: %v", cr.restartErr)
				}
				if !cr.restart.finished {
					t.Fatalf("restart did not finish")
				}
				if want := int64(prog.Procs) * block; cr.restart.bytes != want {
					t.Errorf("restart read %d bytes, want %d (one block per rank of epoch %d)",
						cr.restart.bytes, want, cr.committed)
				}
			}
			if err := VerifyIntegrity(cr.cl); err != nil {
				t.Errorf("integrity oracle: %v", err)
			}
		})
	}
}

// TestCheckpointNoCrashBothPaths is the clean-lifecycle sanity cell: no
// crash, all epochs commit, the burst log drains to empty, and the restart
// reads the final epoch on both paths.
func TestCheckpointNoCrashBothPaths(t *testing.T) {
	prog := matrixProg()
	for _, tc := range []struct {
		name string
		bcfg *burst.Config
	}{
		{"direct", nil},
		{"burst", slowDrain()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cr := runCheckpoint(1, prog, 2, tc.bcfg, &fault.Schedule{}, true)
			if cr.crashed {
				t.Fatalf("program crashed with an empty schedule")
			}
			if cr.committed != prog.Epochs {
				t.Fatalf("committed = %d, want all %d epochs", cr.committed, prog.Epochs)
			}
			if tc.bcfg != nil {
				if cr.recoveryErr != nil {
					t.Fatalf("drain wait: %v", cr.recoveryErr)
				}
				s := cr.stats
				if s.Drained != s.Absorbed || s.Replayed != 0 || s.Discarded != 0 || s.Resident != 0 {
					t.Errorf("clean run should drain everything: stats %+v", s)
				}
			}
			if cr.restartErr != nil {
				t.Fatalf("restart: %v", cr.restartErr)
			}
			if err := VerifyIntegrity(cr.cl); err != nil {
				t.Errorf("integrity oracle: %v", err)
			}
		})
	}
}

// TestCheckpointDrainErrorSurfacesEpoch pins the error-chain contract at
// the harness level: when the drain's PFS writes run out of retries (all
// replicas of a stripe down), the tier error names the originating epoch
// and wraps the typed pfs retry error.
func TestCheckpointDrainErrorSurfacesEpoch(t *testing.T) {
	prog := matrixProg()
	// Unreplicated PFS; both data servers in rank 0's stripes crash for
	// good early, so background drains start failing once retries exhaust.
	sch := &fault.Schedule{}
	for s := 0; s < 9; s++ {
		sch.Windows = append(sch.Windows, fault.Window{
			Kind: fault.ServerCrash, Target: s, Start: 600 * time.Millisecond,
		})
	}
	cr := runCheckpoint(1, prog, 1, slowDrain(), sch, false)
	tier := cr.cl.Burst()
	err := tier.Err()
	if err == nil {
		t.Fatalf("all servers down mid-drain, tier.Err() = nil")
	}
	var ee *burst.EpochError
	if !errors.As(err, &ee) {
		t.Fatalf("tier error %v does not carry an EpochError", err)
	}
	if ee.Epoch < 1 || ee.Epoch > prog.Epochs {
		t.Errorf("EpochError names epoch %d, outside [1,%d]", ee.Epoch, prog.Epochs)
	}
	if !errorsIsRetries(err) {
		t.Errorf("tier error %v does not wrap pfs.ErrRetriesExhausted", err)
	}
}
