package harness

import (
	"strings"
	"testing"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/ext"
	"dualpar/internal/fault"
)

// oracleRun executes a small replicated checkpoint run with integrity
// tracking armed and returns the cluster for verification.
func oracleRun(t *testing.T) *cluster.Cluster {
	t.Helper()
	prog := availProg(true)
	prog.Procs = 8
	prog.Checkpoints = 4
	ms, cl := executeAvail(1, time.Hour, 2, &fault.Schedule{},
		[]runSpec{{prog: prog, mode: core.ModeVanilla}})
	if !ms[0].finished {
		t.Fatal("oracle-run workload did not finish")
	}
	if err := ms[0].run.Err(); err != nil {
		t.Fatalf("clean run surfaced an I/O error: %v", err)
	}
	return cl
}

func TestVerifyIntegrityPassesCleanRun(t *testing.T) {
	cl := oracleRun(t)
	if err := VerifyIntegrity(cl); err != nil {
		t.Fatalf("oracle failed a clean quorum-replicated run: %v", err)
	}
}

func TestVerifyIntegrityCatchesCorruptedReplica(t *testing.T) {
	cl := oracleRun(t)
	// A clean read first: the corruption below must be the only difference.
	if err := VerifyIntegrity(cl); err != nil {
		t.Fatalf("pre-corruption verify: %v", err)
	}
	// Flip bits on the rank-0 replica of stripe 0 (server 0 local bytes
	// [0, 4k)). Reads prefer rank 0, so the oracle must hit the bad copy.
	cl.FS.Tracker().Corrupt(0, "checkpoint.dat", ext.Extent{Off: 0, Len: 4096})
	err := VerifyIntegrity(cl)
	if err == nil {
		t.Fatal("oracle passed a run with a corrupted replica")
	}
	if !strings.Contains(err.Error(), "read back v-1") {
		t.Fatalf("oracle error %q does not name the corrupted stamp", err)
	}
}

func TestDiffSegs(t *testing.T) {
	exp := []VersionSeg{
		{Ext: ext.Extent{Off: 0, Len: 100}, Ver: 3},
		{Ext: ext.Extent{Off: 200, Len: 50}, Ver: 7},
	}
	if msg := diffSegs(exp, exp); msg != "" {
		t.Fatalf("identical segs diff: %s", msg)
	}
	stale := []VersionSeg{
		{Ext: ext.Extent{Off: 0, Len: 100}, Ver: 3},
		{Ext: ext.Extent{Off: 200, Len: 50}, Ver: 6}, // replica missed v7
	}
	if msg := diffSegs(exp, stale); msg == "" {
		t.Fatal("stale replica stamp not flagged")
	}
	hole := []VersionSeg{
		{Ext: ext.Extent{Off: 0, Len: 40}, Ver: 3},
		{Ext: ext.Extent{Off: 40, Len: 60}}, // unwritten gap (Ver 0)
		{Ext: ext.Extent{Off: 200, Len: 50}, Ver: 7},
	}
	if msg := diffSegs(exp, hole); msg == "" {
		t.Fatal("unwritten hole in read-back not flagged")
	}
}
