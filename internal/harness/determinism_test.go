package harness

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dualpar/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files from this run")

// renderResult flattens a Result to the text the experiments command
// prints: title, notes, table, and charts. Byte equality of this rendering
// is the determinism contract the sweep pool guarantees.
func renderResult(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", res.Title)
	for _, n := range res.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	if res.Table != nil {
		b.WriteString(res.Table.String())
	}
	for _, s := range res.Series {
		b.WriteString(metrics.ASCIIChart(s, 72, 8))
	}
	return b.String()
}

// TestAllParallelMatchesSerial is the determinism golden test for the
// sweep engine: every paper experiment run with four workers must render
// byte-identically to the serial path. ~2x the quick suite, so skipped
// under -short.
func TestAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice; skipped with -short")
	}
	serial := All(Opts{Quick: true, Parallel: 1, Log: io.Discard})
	par := All(Opts{Quick: true, Parallel: 4, Log: io.Discard})
	if len(serial) != len(par) {
		t.Fatalf("result counts differ: serial %d, parallel %d", len(serial), len(par))
	}
	for i := range serial {
		if got, want := renderResult(par[i]), renderResult(serial[i]); got != want {
			t.Errorf("%s: parallel(4) output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				serial[i].ID, want, got)
		}
	}
}

// TestFaultSweepsParallelMatchSerial covers the two fault-injection
// experiments the paper suite does not include: stragglers and crash-stop
// availability, both sweeping cells with DNF-note side channels.
func TestFaultSweepsParallelMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault sweeps; skipped with -short")
	}
	for _, d := range []struct {
		name string
		fn   func(Opts) *Result
	}{
		{"straggler", Straggler},
		{"availability", Availability},
	} {
		t.Run(d.name, func(t *testing.T) {
			serial := renderResult(d.fn(Opts{Quick: true, Parallel: 1, Log: io.Discard}))
			par := renderResult(d.fn(Opts{Quick: true, Parallel: 4, Log: io.Discard}))
			if par != serial {
				t.Errorf("parallel(4) output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					serial, par)
			}
		})
	}
}

// TestGoldenTables pins the quick-mode rendering of two representative
// experiments to checked-in golden files, so any change to simulated
// results (or to table formatting) must be made consciously via -update.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("sub-second sims but not free; skipped with -short")
	}
	for _, d := range []struct {
		name string
		fn   func(Opts) *Result
	}{
		{"fig1a", Fig1a},
		{"fig3", Fig3},
	} {
		t.Run(d.name, func(t *testing.T) {
			got := renderResult(d.fn(Opts{Quick: true, Parallel: 1, Log: io.Discard}))
			path := filepath.Join("testdata", d.name+"_quick.golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with go test ./internal/harness -run Golden -update)", err)
			}
			if got != string(want) {
				t.Errorf("output drifted from %s:\n--- want ---\n%s\n--- got ---\n%s\n(if intended, rerun with -update)",
					path, want, got)
			}
		})
	}
}
