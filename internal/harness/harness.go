// Package harness reproduces the paper's evaluation: one driver per table
// and figure (§II and §V), each returning a Result with the regenerated
// rows/series next to the paper's reported values. Absolute numbers are not
// expected to match (the substrate is a simulator, the data sizes are
// scaled); the shapes — who wins, by roughly what factor, where crossovers
// fall — are the reproduction target.
package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/fault"
	"dualpar/internal/metrics"
	"dualpar/internal/mpiio"
	"dualpar/internal/obs"
	"dualpar/internal/workloads"
)

// Opts tunes an experiment run.
type Opts struct {
	// Quick shrinks workloads for smoke tests and benchmarks.
	Quick bool
	// Log receives progress lines (nil = silent).
	Log io.Writer
	// Seed for the simulation; runs are deterministic per seed.
	Seed int64
	// Parallel caps how many sweep cells run concurrently: 0 means
	// GOMAXPROCS, 1 reproduces the serial path exactly. Result tables are
	// byte-identical at every setting (see pool.go); only progress-log
	// interleaving differs.
	Parallel int
	// Ctx cancels a long sweep mid-flight (nil = never).
	Ctx context.Context
}

func (o Opts) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Opts) parallel() int {
	if o.Parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallel
}

func (o Opts) logf(format string, args ...interface{}) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string
	Title string
	// Table holds the regenerated rows (most experiments).
	Table *metrics.Table
	// Series holds regenerated time series (Fig 1c/d, 6, 7).
	Series []*metrics.Series
	// Notes records scaling decisions and paper-reported reference values.
	Notes []string
}

// note appends a formatted note.
func (r *Result) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// engineOverride is the storage engine every experiment cluster's data
// servers use ("" = the extent default). Set once by SetEngine before the
// suite starts (the worker pool reads it concurrently).
var engineOverride string

// SetEngine routes every subsequent experiment run through the named fs
// storage engine; see fs.Engines for the choices. The engines experiment
// overrides it per cell regardless.
func SetEngine(name string) { engineOverride = name }

// baseConfig is cluster.DefaultConfig plus the harness-wide overrides
// (currently the storage-engine selection). Every experiment builds its
// cluster from here so -engine reaches all of them.
func baseConfig() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.FS.Engine = engineOverride
	return cfg
}

// paperCluster builds the paper's platform: 9 data servers (two-disk RAID,
// CFQ), a metadata server, 8 compute nodes, GigE, PVFS2 with 64 KB stripes.
func paperCluster(seed int64, trace bool) *cluster.Cluster {
	cfg := baseConfig()
	cfg.Seed = seed
	cfg.TraceServers = trace
	return cluster.New(cfg)
}

// runSpec describes one program inside a measurement run.
type runSpec struct {
	prog    workloads.Program
	mode    core.Mode
	nodeOff int // FirstNodeIndex
	startAt time.Duration
	mpiio   mpiio.Config
}

// measured captures one program's outcome.
type measured struct {
	elapsed  time.Duration
	bytes    int64
	ioTime   time.Duration
	finished bool
	run      *core.ProgramRun
}

// throughputMBs is the program's own data volume over its elapsed time.
func (m measured) throughputMBs() float64 {
	if m.elapsed <= 0 {
		return 0
	}
	return float64(m.bytes) / (1 << 20) / m.elapsed.Seconds()
}

// execute runs the given programs together on a fresh cluster and returns
// per-program measurements (in spec order) plus the cluster for stats.
func execute(seed int64, trace bool, maxTime time.Duration, ddCfg core.Config, specs []runSpec) ([]measured, *cluster.Cluster) {
	return executeOn(paperCluster(seed, trace), maxTime, ddCfg, specs)
}

// executeFaults is execute with a fault schedule threaded through the
// cluster and the retry watchdogs armed at both layers (PFS client request
// timeouts plus the coarser CRM batch watchdog above them), so degraded
// runs make progress instead of pinning on a straggler.
func executeFaults(seed int64, maxTime time.Duration, ddCfg core.Config, sch *fault.Schedule, specs []runSpec) ([]measured, *cluster.Cluster) {
	cfg := baseConfig()
	cfg.Seed = seed
	cfg.Faults = sch
	cfg.PFS.RequestTimeout = 250 * time.Millisecond
	cfg.PFS.MaxRetries = 4
	cfg.PFS.RetryBackoff = 20 * time.Millisecond
	ddCfg.CRMTimeout = 2 * time.Second
	ddCfg.CRMMaxRetries = 3
	ddCfg.CRMBackoff = 50 * time.Millisecond
	return executeOn(cluster.New(cfg), maxTime, ddCfg, specs)
}

// auditRuns arms the invariant oracles on every experiment run. Set once by
// SetAudit before the suite starts (the worker pool reads it concurrently).
var auditRuns bool

// SetAudit makes every subsequent experiment run execute with the audit
// oracles armed; any violated invariant panics with the keyed error and its
// reproducer artifact path, failing the suite loudly.
func SetAudit(v bool) { auditRuns = v }

func executeOn(cl *cluster.Cluster, maxTime time.Duration, ddCfg core.Config, specs []runSpec) ([]measured, *cluster.Cluster) {
	if auditRuns {
		ddCfg.Audit = true
	}
	var reportCol *obs.Collector
	if reportRuns && cl.Obs() == nil {
		reportCol = obs.NewCollector()
		cl.EnableObs(reportCol)
	}
	r := core.NewRunner(cl, ddCfg)
	var runs []*core.ProgramRun
	for _, sp := range specs {
		runs = append(runs, r.Add(sp.prog, sp.mode, core.AddOptions{
			RanksPerNode:   8,
			FirstNodeIndex: sp.nodeOff,
			StartAt:        sp.startAt,
			MPIIO:          sp.mpiio,
		}))
	}
	r.Run(maxTime)
	if err := r.AuditErr(); err != nil {
		panic(err)
	}
	if reportCol != nil {
		recordReport(reportKey(cl, specs, reportCol), reportCol)
	}
	out := make([]measured, len(specs))
	for i, pr := range runs {
		var io time.Duration
		for rnk := range pr.Instr().Ranks {
			io += pr.Instr().Ranks[rnk].IOTime
		}
		out[i] = measured{
			elapsed:  pr.Elapsed(),
			bytes:    pr.Instr().TotalBytes(),
			ioTime:   io,
			finished: pr.Done,
			run:      pr,
		}
	}
	return out, cl
}

// aggThroughputMBs is the combined volume of all programs over the time to
// finish them all (the paper's "system I/O throughput" for concurrent
// runs).
func aggThroughputMBs(ms []measured) float64 {
	var bytes int64
	var last time.Duration
	for _, m := range ms {
		bytes += m.bytes
		if m.elapsed > last {
			last = m.elapsed
		}
	}
	if last <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / last.Seconds()
}

// mb formats a throughput cell.
func mb(v float64) string { return fmt.Sprintf("%.1f", v) }

// secs formats a duration cell.
func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// modes under comparison in most experiments.
var threeSchemes = []struct {
	label string
	mode  core.Mode
}{
	{"vanilla", core.ModeVanilla},
	{"collective", core.ModeCollective},
	{"dualpar", core.ModeDataDriven},
}
