package harness

import (
	"testing"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/tenant"
	"dualpar/internal/workloads"
)

// TestFairImprovesWorstTenantP99 pins the experiment's headline claim: in
// the hot-flood sweep cell (one tenant floods the cluster at six times the
// cold tenants' Poisson rate), the fair policy's work-conserving
// reservations leave the worst tenant's p99 stretch strictly better than
// FCFS, where the flood re-steals every freed grant at submission and
// drags every tenant to the hot tenant's tail.
func TestFairImprovesWorstTenantP99(t *testing.T) {
	if testing.Short() {
		t.Skip("two multi-hundred-job shared-cluster runs; skipped with -short")
	}
	base := soloBaselines(1, 2, true)
	run := func(policy string) mixStats {
		tc, err := tenant.ParseSpec(
			"tenants:4,arrival=poisson:12,policy=" + policy +
				",grants=12,cache=64M,jobs=40,ranks=2,hot=0x6")
		if err != nil {
			t.Fatal(err)
		}
		tc.Seed = 1
		out := runTenantMix(1, tc, true)
		if !out.finished {
			t.Fatalf("%s cell did not finish in budget", policy)
		}
		return summarize(out, base, tc.Tenants)
	}
	fcfs, fair := run("fcfs"), run("fair")
	if fair.worstP99 >= fcfs.worstP99 {
		t.Fatalf("fair worst-tenant p99 %.2f not better than fcfs %.2f",
			fair.worstP99, fcfs.worstP99)
	}
	// The improvement must be substantial, not makespan noise.
	if fair.worstP99 > 0.95*fcfs.worstP99 {
		t.Errorf("fair worst-tenant p99 %.2f improves fcfs %.2f by under 5%%",
			fair.worstP99, fcfs.worstP99)
	}
}

// TestMultitenantQuickConcurrency pins the scale contract: the quick
// sweep's biggest cell runs at least 500 simultaneously active jobs on the
// shared cluster.
func TestMultitenantQuickConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("750-job shared-cluster run; skipped with -short")
	}
	base := soloBaselines(1, 2, true)
	tc, err := tenant.ParseSpec(multitenantSpecs(true)[0])
	if err != nil {
		t.Fatal(err)
	}
	tc.Seed = 1
	st := summarize(runTenantMix(1, tc, true), base, tc.Tenants)
	if st.peak < 500 {
		t.Fatalf("peak concurrency %d, want >= 500", st.peak)
	}
}

// TestSingleTenantMatchesUntenanted is the tenancy-off regression: a
// cluster configured with the default single-tenant tenancy (one tenant,
// fcfs, unbounded grants, no cache partition) must produce byte-identical
// measurements to an untenanted cluster — the arbiter must be a pure
// pass-through until a bound or partition is configured.
func TestSingleTenantMatchesUntenanted(t *testing.T) {
	specs := func() []runSpec {
		var out []runSpec
		for i, mode := range []core.Mode{core.ModeDataDriven, core.ModeVanilla, core.ModeDualPar} {
			d := workloads.DefaultDemo()
			d.Procs = 2
			d.SegBytes = 4 << 10
			d.SegsPerCall = 4
			d.FileBytes = 96 << 10
			d.FileName = "st.dat"
			out = append(out, runSpec{prog: d, mode: mode, nodeOff: i})
		}
		return out
	}
	ddCfg := core.DefaultConfig()
	ddCfg.SlotEvery = 250 * time.Millisecond

	plain, _ := executeOn(paperCluster(7, false), time.Hour, ddCfg, specs())

	cfg := cluster.DefaultConfig()
	cfg.Seed = 7
	tc := tenant.DefaultConfig()
	cfg.Tenancy = &tc
	tenanted, cl := executeOn(cluster.New(cfg), time.Hour, ddCfg, specs())

	if cl.Arbiter() == nil {
		t.Fatal("tenanted cluster has no arbiter")
	}
	for i := range plain {
		if plain[i].elapsed != tenanted[i].elapsed || plain[i].bytes != tenanted[i].bytes {
			t.Errorf("spec %d: untenanted (%v, %d bytes) != single-tenant default (%v, %d bytes)",
				i, plain[i].elapsed, plain[i].bytes, tenanted[i].elapsed, tenanted[i].bytes)
		}
	}
	if d := cl.Arbiter().Denies(0); d != 0 {
		t.Errorf("unbounded single-tenant arbiter denied %d grants", d)
	}
}
