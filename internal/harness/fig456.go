package harness

import (
	"fmt"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/disk"
	"dualpar/internal/metrics"
	"dualpar/internal/workloads"
)

// diskMonotonicity and diskMeanSeek re-export trace summaries for results.
func diskMonotonicity(entries []disk.Entry) float64 { return disk.Monotonicity(entries) }
func diskMeanSeek(entries []disk.Entry) float64     { return disk.MeanSeek(entries) }

// Fig4 regenerates Figure 4: three concurrent BTIO instances, system I/O
// throughput as process parallelism grows (16, 64, 256), under the three
// schemes.
func Fig4(o Opts) *Result {
	res := &Result{
		ID:    "fig4",
		Title: "Fig 4: 3 concurrent BTIO instances, system throughput (MB/s)",
		Table: &metrics.Table{Header: []string{"procs", "req_bytes", "vanilla", "collective", "dualpar"}},
	}
	res.note("paper: collective and DualPar beat vanilla by up to 24x and 35x; collective's edge shrinks as procs grow; DualPar scales better")
	o = o.forSweep()
	procsList := []int{16, 64, 256}
	total := int64(6 << 20)
	steps := 2
	if o.Quick {
		procsList = []int{16, 64}
		total = 2 << 20
	}
	vals := make([][]string, len(procsList))
	prefixes := make([][]string, len(procsList))
	var cells []Cell
	for pi, procs := range procsList {
		vals[pi] = make([]string, len(threeSchemes))
		b := workloads.DefaultBTIO()
		b.Procs = procs
		b.TotalBytes = total
		b.Steps = steps
		b.StepCompute = 20 * time.Millisecond
		prefixes[pi] = []string{fmt.Sprintf("%d", procs), fmt.Sprintf("%d", b.BlockBytes())}
		for si, sch := range threeSchemes {
			cells = append(cells, Cell{
				Key: fmt.Sprintf("fig4/procs=%d/%s", procs, sch.label),
				Run: func() {
					specs := make([]runSpec, 3)
					for i := range specs {
						inst := b
						inst.FileName = fmt.Sprintf("btio-%d.dat", i)
						specs[i] = runSpec{prog: inst, mode: sch.mode}
					}
					ms, _ := execute(o.seed(), false, 12*time.Hour, core.DefaultConfig(), specs)
					vals[pi][si] = mb(aggThroughputMBs(ms))
					o.logf("fig4 procs=%d %s: %.2f MB/s", procs, sch.label, aggThroughputMBs(ms))
				},
			})
		}
	}
	runSweep(o, cells)
	for pi := range procsList {
		res.Table.AddRow(append(prefixes[pi], vals[pi]...)...)
	}
	return res
}

// Fig5 regenerates Figure 5: three concurrent S3asim instances, total I/O
// time as the query count grows.
func Fig5(o Opts) *Result {
	res := &Result{
		ID:    "fig5",
		Title: "Fig 5: 3 concurrent S3asim instances, I/O time (s)",
		Table: &metrics.Table{Header: []string{"queries", "vanilla", "collective", "dualpar"}},
	}
	res.note("paper: DualPar's I/O times are up to 25%% and on average 17%% below the other schemes (requests are larger, so gains are modest)")
	o = o.forSweep()
	queries := []int{16, 24, 32}
	if o.Quick {
		queries = []int{16}
	}
	vals := make([][]string, len(queries))
	var cells []Cell
	for qi, q := range queries {
		vals[qi] = make([]string, len(threeSchemes))
		s := workloads.DefaultS3asim()
		s.Procs = 16
		s.Queries = q
		if o.Quick {
			s.FragmentBytes = 1 << 20
		}
		for si, sch := range threeSchemes {
			cells = append(cells, Cell{
				Key: fmt.Sprintf("fig5/q=%d/%s", q, sch.label),
				Run: func() {
					mode := sch.mode
					if mode == core.ModeCollective {
						// S3asim's per-rank call counts are irregular; its original
						// implementation uses independent I/O inside collective
						// phases. Model "collective IO" as list-I/O batching.
						mode = core.ModeVanilla
					}
					specs := make([]runSpec, 3)
					for i := range specs {
						inst := s
						inst.DBName = fmt.Sprintf("s3db-%d.dat", i)
						inst.OutName = fmt.Sprintf("s3out-%d.dat", i)
						specs[i] = runSpec{prog: inst, mode: mode}
						if sch.mode == core.ModeCollective {
							cfgIO := specs[i].mpiio
							cfgIO.ListIO = true
							specs[i].mpiio = cfgIO
						}
					}
					ms, _ := execute(o.seed(), false, 12*time.Hour, core.DefaultConfig(), specs)
					var io time.Duration
					var ranks int
					for _, m := range ms {
						io += m.ioTime
						ranks += s.Procs
					}
					perRank := io / time.Duration(ranks)
					vals[qi][si] = secs(perRank)
					o.logf("fig5 q=%d %s: %.2fs avg I/O per rank", q, sch.label, perRank.Seconds())
				},
			})
		}
	}
	runSweep(o, cells)
	for qi, q := range queries {
		res.Table.AddRow(append([]string{fmt.Sprintf("%d", q)}, vals[qi]...)...)
	}
	return res
}

// Table2 regenerates Table II: two concurrent mpi-io-test instances,
// aggregate read and write throughput.
func Table2(o Opts) *Result {
	res := &Result{
		ID:    "table2",
		Title: "Table II: 2 concurrent mpi-io-test instances, aggregate throughput (MB/s)",
		Table: &metrics.Table{Header: []string{"rw", "vanilla", "collective", "dualpar"}},
	}
	res.note("paper: read 106?/168/284 MB/s; write 54/67/127 MB/s; DualPar cuts the average seek distance by up to 10x")
	o = o.forSweep()
	rws := []struct {
		label string
		write bool
	}{{"read", false}, {"write", true}}
	vals := make([][]string, len(rws))
	var cells []Cell
	for ri, rw := range rws {
		vals[ri] = make([]string, len(threeSchemes))
		for si, sch := range threeSchemes {
			cells = append(cells, Cell{
				Key: fmt.Sprintf("table2/%s/%s", rw.label, sch.label),
				Run: func() {
					ms, _ := table2Run(o, rw.write, sch.mode, false)
					vals[ri][si] = mb(aggThroughputMBs(ms))
					o.logf("table2 %s %s: %.1f MB/s", rw.label, sch.label, aggThroughputMBs(ms))
				},
			})
		}
	}
	runSweep(o, cells)
	for ri, rw := range rws {
		res.Table.AddRow(append([]string{rw.label}, vals[ri]...)...)
	}
	return res
}

// table2Run executes the two-instance mpi-io-test scenario.
func table2Run(o Opts, write bool, mode core.Mode, trace bool) ([]measured, *cluster.Cluster) {
	size := int64(96 << 20)
	if o.Quick {
		size = 16 << 20
	}
	mk := func(i int) workloads.MPIIOTest {
		m := workloads.DefaultMPIIOTest()
		m.FileBytes = size
		m.Write = write
		m.FileName = fmt.Sprintf("mpiio-%d.dat", i)
		return m
	}
	ms, cl := execute(o.seed(), trace, 12*time.Hour, core.DefaultConfig(), []runSpec{
		{prog: mk(0), mode: mode},
		{prog: mk(1), mode: mode},
	})
	return ms, cl
}

// Fig6 regenerates Figure 6: the LBN access order on data server 1 during
// the two-instance mpi-io-test run, vanilla vs DualPar, plus the aggregate
// seek reduction.
func Fig6(o Opts) *Result {
	res := &Result{
		ID:    "fig6",
		Title: "Fig 6: disk access order, 2x mpi-io-test, vanilla vs DualPar",
		Table: &metrics.Table{Header: []string{"scheme", "accesses", "monotonicity", "mean_seek_sectors"}},
	}
	res.note("paper: vanilla hops between the two files' regions; DualPar reduces average seek distance by up to 10x")
	o = o.forSweep()
	schemes := []struct {
		label string
		mode  core.Mode
	}{{"vanilla", core.ModeVanilla}, {"dualpar", core.ModeDataDriven}}
	type out struct {
		series *metrics.Series
		row    []string
	}
	outs := make([]out, len(schemes))
	cells := make([]Cell, len(schemes))
	for i, sch := range schemes {
		cells[i] = Cell{
			Key: "fig6/" + sch.label,
			Run: func() {
				s, row := table2RunTraced(o, sch.mode)
				outs[i] = out{series: s, row: row}
			},
		}
	}
	runSweep(o, cells)
	for _, out := range outs {
		res.Series = append(res.Series, out.series)
		res.Table.AddRow(out.row...)
	}
	return res
}

// table2RunTraced runs the traced two-instance scenario under one scheme
// and returns the LBN series plus the table row for it.
func table2RunTraced(o Opts, mode core.Mode) (*metrics.Series, []string) {
	size := int64(96 << 20)
	if o.Quick {
		size = 16 << 20
	}
	mk := func(i int) workloads.MPIIOTest {
		m := workloads.DefaultMPIIOTest()
		m.FileBytes = size
		m.FileName = fmt.Sprintf("mpiio-%d.dat", i)
		return m
	}
	ms, cl := execute(o.seed(), true, 12*time.Hour, core.DefaultConfig(), []runSpec{
		{prog: mk(0), mode: mode},
		{prog: mk(1), mode: mode},
	})
	tr := cl.Stores[0].Device().Trace()
	// Sample a one-second (or one-third-of-run) window mid-run, like the
	// paper's randomly selected second.
	longest := ms[0].elapsed
	if ms[1].elapsed > longest {
		longest = ms[1].elapsed
	}
	from := longest / 3
	win := time.Second
	if win > longest/3 {
		win = longest / 3
	}
	entries := tr.Window(from, from+win)
	if len(entries) < 2 {
		entries = tr.Entries()
	}
	label := "vanilla"
	if mode == core.ModeDataDriven {
		label = "dualpar"
	}
	s := &metrics.Series{Name: "lbn-" + label}
	for _, e := range entries {
		s.Add(e.At, float64(e.LBN))
	}
	row := []string{label,
		fmt.Sprintf("%d", len(entries)),
		fmt.Sprintf("%.2f", diskMonotonicity(entries)),
		fmt.Sprintf("%.0f", diskMeanSeek(entries))}
	o.logf("fig6 %s: %d accesses, mean seek %.0f sectors", label, len(entries), diskMeanSeek(entries))
	return s, row
}
