package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunCellsWorkerCounts runs the same cell set at worker counts below,
// at, and above the cell count (plus 0 = GOMAXPROCS) and checks every slot
// is filled exactly once.
func TestRunCellsWorkerCounts(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 7
			hits := make([]int32, n)
			cells := make([]Cell, n)
			for i := range cells {
				cells[i] = Cell{
					Key: fmt.Sprintf("cell%d", i),
					Run: func() { atomic.AddInt32(&hits[i], 1) },
				}
			}
			if err := RunCells(context.Background(), workers, cells); err != nil {
				t.Fatalf("RunCells: %v", err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Errorf("cell %d ran %d times, want 1", i, h)
				}
			}
		})
	}
}

// TestRunCellsSerialOrder: workers == 1 must run cells in slice order on
// the calling goroutine — that is the documented serial path.
func TestRunCellsSerialOrder(t *testing.T) {
	var order []int
	cells := make([]Cell, 5)
	for i := range cells {
		cells[i] = Cell{Key: fmt.Sprintf("c%d", i), Run: func() { order = append(order, i) }}
	}
	if err := RunCells(context.Background(), 1, cells); err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order %v, want ascending", order)
		}
	}
}

// TestRunCellsEmpty: no cells is a no-op at any worker count.
func TestRunCellsEmpty(t *testing.T) {
	if err := RunCells(context.Background(), 4, nil); err != nil {
		t.Fatalf("RunCells(nil cells): %v", err)
	}
}

// TestRunCellsCancelMidSweep cancels the context from inside an early cell
// and checks that no further cell starts and ctx.Err() comes back.
func TestRunCellsCancelMidSweep(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const n = 32
			var ran int32
			cells := make([]Cell, n)
			for i := range cells {
				cells[i] = Cell{
					Key: fmt.Sprintf("c%d", i),
					Run: func() {
						atomic.AddInt32(&ran, 1)
						if i == 2 {
							cancel()
						}
					},
				}
			}
			err := RunCells(ctx, workers, cells)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// In-flight cells may finish, but dispatch stops: far fewer
			// than n cells run (at most the cancel point + workers).
			if got := atomic.LoadInt32(&ran); int(got) > 3+workers {
				t.Errorf("%d cells ran after cancel, want <= %d", got, 3+workers)
			}
		})
	}
}

// TestRunCellsCanceledBeforeStart: an already-canceled context runs
// nothing.
func TestRunCellsCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	cells := []Cell{{Key: "c0", Run: func() { atomic.AddInt32(&ran, 1) }}}
	if err := RunCells(ctx, 4, cells); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d cells ran under a pre-canceled context", ran)
	}
}

// TestRunCellsPanic: a panicking cell surfaces as a *CellError naming the
// cell, the other cells still complete, and with several failures the
// canonically-first cell's error is the one returned regardless of worker
// scheduling.
func TestRunCellsPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 8
			var ran int32
			cells := make([]Cell, n)
			for i := range cells {
				cells[i] = Cell{
					Key: fmt.Sprintf("cell/%d", i),
					Run: func() {
						atomic.AddInt32(&ran, 1)
						if i == 3 || i == 6 {
							panic(fmt.Sprintf("boom %d", i))
						}
					},
				}
			}
			err := RunCells(context.Background(), workers, cells)
			var ce *CellError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v (%T), want *CellError", err, err)
			}
			if ce.Key != "cell/3" {
				t.Errorf("reported cell %q, want canonical first failure cell/3", ce.Key)
			}
			if ce.Value != "boom 3" {
				t.Errorf("panic value %v, want boom 3", ce.Value)
			}
			if len(ce.Stack) == 0 {
				t.Error("CellError carries no stack")
			}
			if !strings.Contains(ce.Error(), "cell/3") {
				t.Errorf("Error() = %q, want the cell key in it", ce.Error())
			}
			if got := atomic.LoadInt32(&ran); got != n {
				t.Errorf("%d cells ran, want all %d despite the panics", got, n)
			}
		})
	}
}

// TestSyncWriterSharedLog is the regression test for the shared-Opts.Log
// race: concurrent cells logging through one bytes.Buffer. Run under -race
// this fails without forSweep's syncWriter wrapping.
func TestSyncWriterSharedLog(t *testing.T) {
	var buf bytes.Buffer
	o := Opts{Log: &buf, Parallel: 4}.forSweep()
	cells := make([]Cell, 16)
	for i := range cells {
		cells[i] = Cell{
			Key: fmt.Sprintf("c%d", i),
			Run: func() { o.logf("line from cell %d", i) },
		}
	}
	if err := RunCells(context.Background(), 4, cells); err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	if got := strings.Count(buf.String(), "line from cell"); got != len(cells) {
		t.Errorf("log has %d lines, want %d", got, len(cells))
	}
}

// TestForSweepIdempotent: wrapping twice must not stack a second lock.
func TestForSweepIdempotent(t *testing.T) {
	var buf bytes.Buffer
	once := Opts{Log: &buf}.forSweep()
	twice := once.forSweep()
	if once.Log != twice.Log {
		t.Error("forSweep re-wrapped an already-synchronized writer")
	}
	if o := (Opts{}).forSweep(); o.Log != nil {
		t.Error("forSweep invented a writer for nil Log")
	}
}

// TestRunCellsConcurrentSlotWrites: cells writing distinct slots of one
// slice need no locking — this is the pool's core contract, and under
// -race it verifies the WaitGroup edge publishes every slot to the caller.
func TestRunCellsConcurrentSlotWrites(t *testing.T) {
	const n = 64
	out := make([]int, n)
	var mu sync.Mutex // touched only to give the race detector work to check
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{Key: fmt.Sprintf("c%d", i), Run: func() {
			mu.Lock()
			mu.Unlock()
			out[i] = i + 1
		}}
	}
	if err := RunCells(context.Background(), 8, cells); err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("slot %d = %d, want %d", i, v, i+1)
		}
	}
}
