package cluster

import (
	"testing"
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/iosched"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

func TestDefaultShapeMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.DataServers != 9 {
		t.Fatalf("data servers = %d, want 9", cfg.DataServers)
	}
	if cfg.DisksPerRAID != 2 {
		t.Fatalf("disks per RAID = %d, want 2", cfg.DisksPerRAID)
	}
	if cfg.PFS.StripeUnit != 64<<10 {
		t.Fatalf("stripe unit = %d, want 64K", cfg.PFS.StripeUnit)
	}
}

func TestClusterAssembles(t *testing.T) {
	cl := New(DefaultConfig())
	if len(cl.Stores) != 9 {
		t.Fatalf("stores = %d", len(cl.Stores))
	}
	if cl.FS.NumServers() != 9 {
		t.Fatalf("pfs servers = %d", cl.FS.NumServers())
	}
	if len(cl.ComputeNodes()) != 8 || cl.ComputeNodes()[0] != ComputeNodeBase {
		t.Fatalf("compute nodes = %v", cl.ComputeNodes())
	}
	if cl.MetaNode() != 0 {
		t.Fatalf("meta node = %d", cl.MetaNode())
	}
}

func TestEndToEndReadThroughCluster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataServers = 3
	cl := New(cfg)
	client := cl.FS.Client(ComputeNodeBase)
	var took time.Duration
	cl.K.Spawn("client", func(p *sim.Proc) {
		client.Create(p, "f", 8<<20)
		t0 := p.Now()
		client.Read(p, "f", []ext.Extent{{Off: 0, Len: 8 << 20}}, 1, obs.Ctx{})
		took = p.Now() - t0
	})
	cl.K.RunUntil(time.Minute)
	if took <= 0 {
		t.Fatalf("read did not complete")
	}
	// 8MB at GigE client downlink ~117MB/s floor is ~68ms; disk adds more.
	if took > 2*time.Second {
		t.Fatalf("8MB read took %v, implausibly slow", took)
	}
	st := cl.ServerStats()
	if st.BytesRead < 8<<20 {
		t.Fatalf("server stats read bytes = %d", st.BytesRead)
	}
}

func TestSchedulerFactoryRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataServers = 2
	calls := 0
	cfg.NewScheduler = func() iosched.Algorithm {
		calls++
		return iosched.NewNOOP()
	}
	cl := New(cfg)
	if calls != 2 {
		t.Fatalf("scheduler factory called %d times, want 2", calls)
	}
	if cl.Stores[0].Dispatcher().Algorithm().Name() != "noop" {
		t.Fatalf("scheduler = %s", cl.Stores[0].Dispatcher().Algorithm().Name())
	}
}

func TestTraceServersEnablesTraces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataServers = 2
	cfg.TraceServers = true
	cl := New(cfg)
	for i, st := range cl.Stores {
		if st.Device().Trace() == nil {
			t.Fatalf("server %d has no trace", i)
		}
	}
}

func TestSingleDiskConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataServers = 1
	cfg.DisksPerRAID = 1
	cl := New(cfg)
	if cl.Stores[0].Device().Sectors() != cfg.Disk.Sectors {
		t.Fatalf("single-disk capacity mismatch")
	}
}
