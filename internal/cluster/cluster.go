// Package cluster assembles the simulated testbed the paper evaluates on:
// a metadata server, a set of PVFS2 data servers (each with a two-disk
// RAID behind a kernel I/O scheduler), compute nodes, and a switched
// Gigabit Ethernet connecting them.
//
// Node numbering: node 0 is the metadata server, nodes 1..DataServers are
// data servers, and compute nodes start at ComputeNodeBase.
package cluster

import (
	"fmt"

	"dualpar/internal/burst"
	"dualpar/internal/check"
	"dualpar/internal/disk"
	"dualpar/internal/fault"
	"dualpar/internal/fs"
	"dualpar/internal/iosched"
	"dualpar/internal/netsim"
	"dualpar/internal/obs"
	"dualpar/internal/pfs"
	"dualpar/internal/sim"
	"dualpar/internal/tenant"
)

// ComputeNodeBase is the first compute-node id.
const ComputeNodeBase = 100

// Config describes a cluster.
type Config struct {
	DataServers   int
	ComputeNodes  int
	DisksPerRAID  int
	Disk          disk.Params
	FS            fs.Config
	Net           netsim.Config
	PFS           pfs.Config
	Seed          int64
	TraceServers  bool                     // enable blktrace-style logs on all data servers
	NewScheduler  func() iosched.Algorithm // per-server elevator; nil = CFQ
	RAIDChunkSect int64                    // RAID0 chunk in sectors
	// SSD replaces the rotating RAID with a flash device on every data
	// server (forward-looking ablation: the paper's premise is seek-bound
	// storage).
	SSD *disk.SSDParams
	// Obs, when non-nil, enables simulation-wide tracing and metrics: it is
	// threaded through the network, the data servers' storage stacks, and
	// the block-layer dispatchers. Nil (the default) costs one nil check per
	// instrumentation point and leaves the virtual timeline untouched.
	Obs *obs.Collector
	// Faults, when non-nil, threads a deterministic fault-injection
	// schedule through the testbed: per-server disk degradation, link
	// degradation and transient drops, and server stall/slowdown windows.
	// An empty schedule leaves the run byte-identical to Faults == nil.
	Faults *fault.Schedule
	// Burst, when non-nil, adds per-compute-node burst-buffer write logs:
	// checkpoint writes tagged with an epoch absorb into the node's log and
	// drain to the PFS in the background. Nil takes none of the burst code
	// paths, leaving the run byte-identical to a build without the tier.
	Burst *burst.Config
	// Tenancy, when non-nil, shares the cluster among competing tenants: a
	// cluster-wide arbiter rations data-driven grants and (optionally)
	// partitions cache capacity per tenant. Nil takes none of the tenancy
	// code paths, leaving the run byte-identical to a build without it.
	Tenancy *tenant.Config
}

// DefaultConfig matches the paper's platform: 9 data servers + 1 metadata
// server, CFQ, PVFS2 with 64 KB striping, Gigabit Ethernet, two-drive RAID.
func DefaultConfig() Config {
	return Config{
		DataServers:   9,
		ComputeNodes:  8,
		DisksPerRAID:  2,
		Disk:          disk.DefaultParams(),
		FS:            fs.DefaultConfig(),
		Net:           netsim.DefaultConfig(),
		PFS:           pfs.DefaultConfig(),
		Seed:          1,
		RAIDChunkSect: 128, // 64 KB
	}
}

// Cluster is an assembled testbed.
type Cluster struct {
	K      *sim.Kernel
	Net    *netsim.Network
	FS     *pfs.FileSystem
	Stores []*fs.Store
	cfg    Config
	inj    *fault.Injector
	tier   *burst.Tier
	arb    *tenant.Arbiter
}

// New builds a cluster.
func New(cfg Config) *Cluster {
	if cfg.DataServers <= 0 || cfg.ComputeNodes <= 0 || cfg.DisksPerRAID <= 0 {
		panic(fmt.Sprintf("cluster: bad shape %d/%d/%d", cfg.DataServers, cfg.ComputeNodes, cfg.DisksPerRAID))
	}
	k := sim.NewKernel(cfg.Seed)
	net := netsim.New(k, cfg.Net)
	var inj *fault.Injector
	if cfg.Faults != nil {
		inj = fault.NewInjector(k, cfg.Faults, cfg.Seed*31337+7, cfg.Obs)
		net.SetFaults(inj)
	}
	newSched := cfg.NewScheduler
	if newSched == nil {
		newSched = func() iosched.Algorithm { return iosched.NewCFQ() }
	}
	var nodes []int
	var stores []*fs.Store
	for i := 0; i < cfg.DataServers; i++ {
		var dev disk.Device
		dp := cfg.Disk
		dp.Seed = cfg.Seed*7919 + int64(i)*101
		if cfg.SSD != nil {
			sp := *cfg.SSD
			sp.Seed = dp.Seed
			sd := disk.NewSSD(sp)
			if cfg.TraceServers {
				sd.EnableTrace()
			}
			dev = sd
		} else if cfg.DisksPerRAID == 1 {
			d := disk.New(dp)
			if cfg.TraceServers {
				d.EnableTrace()
			}
			dev = d
		} else {
			members := make([]*disk.Disk, cfg.DisksPerRAID)
			for m := range members {
				mp := dp
				mp.Seed = dp.Seed + int64(m) + 1
				members[m] = disk.New(mp)
			}
			r := disk.NewRAID0(members, cfg.RAIDChunkSect)
			if cfg.TraceServers {
				r.EnableTrace()
			}
			dev = r
		}
		if inj != nil {
			dev = fault.WrapDevice(dev, inj, i)
		}
		st := fs.New(k, fmt.Sprintf("server%d", i), dev, newSched(), cfg.FS, flusherOriginBase+i)
		stores = append(stores, st)
		nodes = append(nodes, 1+i)
	}
	fsys := pfs.New(k, net, cfg.PFS, 0, nodes, stores)
	if inj != nil {
		// Let the transport void messages to crash-stopped data servers and
		// arm the PFS failure detector / online rebuild.
		inj.BindServerNodes(nodes)
		fsys.SetFaults(inj)
	}
	if cfg.Obs != nil {
		net.SetObs(cfg.Obs)
		fsys.SetObs(cfg.Obs)
		for _, st := range stores {
			st.SetObs(cfg.Obs)
		}
	}
	var tier *burst.Tier
	if cfg.Burst != nil {
		tier = burst.NewTier(k, *cfg.Burst, func(node int) burst.Writer {
			return fsys.Client(node)
		}, cfg.Obs)
	}
	var arb *tenant.Arbiter
	if cfg.Tenancy != nil {
		arb = tenant.NewArbiter(*cfg.Tenancy, k.Now)
		if cfg.Obs != nil {
			arb.SetObs(cfg.Obs)
		}
	}
	return &Cluster{K: k, Net: net, FS: fsys, Stores: stores, cfg: cfg, inj: inj, tier: tier, arb: arb}
}

// flusherOriginBase keeps server-flusher origins away from program origins.
const flusherOriginBase = 1 << 20

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// EnableAudit attaches the run auditor to every layer the cluster owns: the
// kernel's monotone-clock check, each dispatcher's pending/byte ledgers, the
// file system's served/rebuild byte accounting, and end-of-run conservation
// probes tying the ledgers together. Final (not per-cycle) probes are used
// for byte conservation because the linked counters update at different
// points around yields and only agree once the run is quiescent.
func (c *Cluster) EnableAudit(a *check.Auditor) {
	c.K.SetAudit(a)
	c.FS.SetAudit(a)
	for i, st := range c.Stores {
		i, st := i, st
		st.Dispatcher().SetAudit(a)
		a.RegisterFinalProbe(fmt.Sprintf("conserve.disk.server%d", i), func() error {
			stats := st.Device().Stats()
			disk := stats.BytesRead + stats.BytesWritten
			if got := st.Dispatcher().AuditDispatchedBytes(); got != disk {
				return fmt.Errorf("scheduler dispatched %d bytes, disk moved %d", got, disk)
			}
			return nil
		})
		a.RegisterFinalProbe(fmt.Sprintf("conserve.store.server%d", i), func() error {
			store := st.BytesRead() + st.BytesWritten()
			served := c.FS.AuditServedBytes(i)
			rebuild := c.FS.AuditRebuildBytes(i)
			if store != served+rebuild {
				return fmt.Errorf("store moved %d logical bytes, pfs accounted %d (served %d + rebuild %d)",
					store, served+rebuild, served, rebuild)
			}
			return nil
		})
		// The storage engine's layout oracle: extent maps must match their
		// source of truth (B+tree vs flat shadow) and log byte ledgers must
		// conserve across compaction (LSM).
		a.RegisterFinalProbe(fmt.Sprintf("engine.server%d", i), func() error {
			return st.Engine().CheckInvariants()
		})
	}
	if c.tier != nil {
		c.tier.RegisterAudit(a)
	}
	if c.arb != nil {
		c.arb.RegisterAudit(a)
		// Final probes only run at quiescence (every program finished), the
		// one point where all grants must have been returned.
		a.RegisterFinalProbe("tenant.grants.leak", c.arb.CheckDrained)
	}
}

// Obs returns the cluster-wide collector (nil when tracing is off).
func (c *Cluster) Obs() *obs.Collector { return c.cfg.Obs }

// EnableObs wires a collector into an already-built cluster: the network,
// the PFS layer, and every store pick it up exactly as if it had been set in
// the Config at construction. Call before any simulation runs; a nil
// collector is a no-op.
func (c *Cluster) EnableObs(col *obs.Collector) {
	if col == nil {
		return
	}
	c.cfg.Obs = col
	c.Net.SetObs(col)
	c.FS.SetObs(col)
	for _, st := range c.Stores {
		st.SetObs(col)
	}
	if c.arb != nil {
		c.arb.SetObs(col)
	}
}

// Faults returns the cluster's fault injector (nil when no schedule was
// configured; a nil injector is safe to query).
func (c *Cluster) Faults() *fault.Injector { return c.inj }

// Burst returns the cluster's burst-buffer tier (nil when not configured).
func (c *Cluster) Burst() *burst.Tier { return c.tier }

// Arbiter returns the cluster-wide tenancy arbiter (nil when the cluster is
// untenanted).
func (c *Cluster) Arbiter() *tenant.Arbiter { return c.arb }

// ComputeNodes returns the compute-node ids.
func (c *Cluster) ComputeNodes() []int {
	out := make([]int, c.cfg.ComputeNodes)
	for i := range out {
		out[i] = ComputeNodeBase + i
	}
	return out
}

// MetaNode returns the metadata server's node id.
func (c *Cluster) MetaNode() int { return 0 }

// ServerStats aggregates device stats across data servers.
func (c *Cluster) ServerStats() disk.Stats {
	var agg disk.Stats
	for _, st := range c.Stores {
		s := st.Device().Stats()
		agg.Accesses += s.Accesses
		agg.Seeks += s.Seeks
		agg.SeekSectors += s.SeekSectors
		agg.BytesRead += s.BytesRead
		agg.BytesWritten += s.BytesWritten
		agg.BusyTime += s.BusyTime
		agg.SequentialRun += s.SequentialRun
		agg.SeekTime += s.SeekTime
		agg.TransferTime += s.TransferTime
	}
	return agg
}
