package core

import (
	"testing"
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// TestWritebackOnlyCycleClosesMisPrefetchSample is the regression test for
// the sample-accounting bug: the mis-prefetch sample used to close only
// when the cycle carried a prefetch wish list, so writeback-only cycles
// (write-quota suspensions) let consumedCycle accumulate across cycles and
// skew the next ratio.
func TestWritebackOnlyCycleClosesMisPrefetchSample(t *testing.T) {
	cl := smallCluster(1)
	r := NewRunner(cl, DefaultConfig())
	pr := r.Add(smallMPIIOTest(true), ModeDataDriven, AddOptions{RanksPerNode: 4})
	pr.prefetchedCycle = 100
	pr.consumedCycle = 40
	done := false
	cl.K.Spawn("test", func(p *sim.Proc) {
		pr.crmServe(p, nil, nil) // writeback-only: no wish list
		done = true
	})
	cl.K.RunUntil(time.Minute)
	if !done {
		t.Fatal("crmServe did not return")
	}
	if len(pr.misSamples) != 1 || pr.misSamples[0] != 0.6 {
		t.Fatalf("misSamples = %v, want [0.6]", pr.misSamples)
	}
	if pr.consumedCycle != 0 || pr.prefetchedCycle != 0 {
		t.Fatalf("cycle counters not reset: consumed=%d prefetched=%d",
			pr.consumedCycle, pr.prefetchedCycle)
	}
}

// A write-heavy program whose prefetches go entirely unconsumed must trip
// PEC's fast path even when every served cycle is writeback-only.
func TestWriteHeavyCyclesTripFastPath(t *testing.T) {
	cl := smallCluster(1)
	cfg := DefaultConfig()
	r := NewRunner(cl, cfg)
	pr := r.Add(smallMPIIOTest(true), ModeDataDriven, AddOptions{RanksPerNode: 4})
	cl.K.Spawn("test", func(p *sim.Proc) {
		for i := 0; i < cfg.MisCyclesToDisable; i++ {
			pr.prefetchedCycle = 1 << 20
			pr.consumedCycle = 0
			pr.crmServe(p, nil, nil)
		}
	})
	cl.K.RunUntil(time.Minute)
	if !pr.disabled {
		t.Fatalf("%d all-waste writeback-only cycles did not disable data-driven mode",
			cfg.MisCyclesToDisable)
	}
	if pr.dataDriven {
		t.Fatal("data-driven mode still on after fast-path disable")
	}
}

// TestClipToFileTracksGrownFile is the regression test for the prefetch
// clipping bug: clipToFile used to bound extents by the workload-declared
// static size only, dropping the prefetchable tail of a file grown past
// its declaration by writebacks.
func TestClipToFileTracksGrownFile(t *testing.T) {
	cl := smallCluster(1)
	r := NewRunner(cl, DefaultConfig())
	m := smallMPIIOTest(true)
	pr := r.Add(m, ModeDataDriven, AddOptions{RanksPerNode: 4})
	static := m.FileBytes
	grown := static + (1 << 20)
	cl.K.Spawn("grow", func(p *sim.Proc) {
		clnt := cl.FS.Client(cl.ComputeNodes()[0])
		clnt.Write(p, m.FileName, []ext.Extent{{Off: grown - 4096, Len: 4096}}, 1, obs.Ctx{})
	})
	cl.K.RunUntil(time.Minute)
	if got := cl.FS.FileSize(m.FileName); got != grown {
		t.Fatalf("metadata size = %d after growing write, want %d", got, grown)
	}
	out := pr.clipToFile(m.FileName, []ext.Extent{{Off: 0, Len: grown + (1 << 20)}})
	if got := ext.Total(out); got != grown {
		t.Fatalf("clipped total = %d, want %d (the grown size, not the static %d)",
			got, grown, static)
	}
	// The static declaration still applies when it is the larger bound.
	out = pr.clipToFile(m.FileName, []ext.Extent{{Off: 0, Len: static / 2}})
	if got := ext.Total(out); got != static/2 {
		t.Fatalf("in-bounds extents were clipped: total = %d, want %d", got, static/2)
	}
}
