package core

import (
	"testing"
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/workloads"
)

// stagger is a workload where rank 0 reads immediately and the other ranks
// compute for a long time first — the shape that forces the fill deadline
// (a cycle must not wait forever for ranks that have not suspended).
type stagger struct {
	procs int
	delay time.Duration
}

func (s stagger) Name() string { return "stagger" }
func (s stagger) Ranks() int   { return s.procs }
func (s stagger) Files() []workloads.FileSpec {
	return []workloads.FileSpec{{Name: "stagger.dat", Size: 16 << 20, Precreate: true}}
}
func (s stagger) NewRank(r int) workloads.RankGen {
	return &staggerGen{s: s, rank: r}
}

type staggerGen struct {
	s       stagger
	rank    int
	step    int
	delayed bool
}

func (g *staggerGen) Next(env workloads.Env) workloads.Op {
	if g.rank != 0 && !g.delayed {
		g.delayed = true
		return workloads.Op{Kind: workloads.OpCompute, Dur: g.s.delay}
	}
	if g.step >= 4 {
		return workloads.Op{Kind: workloads.OpDone}
	}
	off := int64(g.rank)*(4<<20) + int64(g.step)*(64<<10)
	g.step++
	return workloads.Op{
		Kind: workloads.OpRead, File: "stagger.dat",
		Extents: []ext64{{Off: off, Len: 64 << 10}},
	}
}

func (g *staggerGen) Clone() workloads.RankGen {
	cp := *g
	return &cp
}

// extAlias keeps workload literals compact in this file.
type extAlias = ext.Extent
type ext64 = extAlias

func TestFillDeadlineUnblocksLoneRank(t *testing.T) {
	// Rank 0 misses at t=0; ranks 1..3 compute for a second. The cycle
	// must serve rank 0 at the fill deadline, far before the others join.
	cl := smallCluster(1)
	cfg := DefaultConfig()
	cfg.MinFillWait = 30 * time.Millisecond
	cfg.MaxFillWait = 100 * time.Millisecond
	r := NewRunner(cl, cfg)
	pr := r.Add(stagger{procs: 4, delay: time.Second}, ModeDataDriven, AddOptions{RanksPerNode: 4})
	if !r.Run(time.Hour) {
		t.Fatalf("did not finish")
	}
	// Rank 0 performed its 4 reads long before the 1s compute of the rest
	// finished: its I/O time must be well under a second.
	if io := pr.Instr().Ranks[0].IOTime; io > 600*time.Millisecond {
		t.Fatalf("rank 0 I/O time %v: the fill deadline did not fire", io)
	}
	if pr.ctrl.Cycles() == 0 {
		t.Fatalf("no cycles ran")
	}
}

func TestJoinGraceBatchesLockstepRanks(t *testing.T) {
	// All ranks miss at the same instant: one cycle should cover everyone
	// (the grace window gathers them), not one cycle per rank.
	m := workloads.DefaultMPIIOTest()
	m.Procs = 16
	m.FileBytes = 4 << 20
	m.BarrierEvery = 0
	cl := smallCluster(1)
	r := NewRunner(cl, DefaultConfig())
	pr := r.Add(m, ModeDataDriven, AddOptions{RanksPerNode: 8})
	if !r.Run(time.Hour) {
		t.Fatalf("did not finish")
	}
	// 4MB file, 16 ranks x 1MB quota: everything fits in very few cycles.
	if c := pr.ctrl.Cycles(); c > 4 {
		t.Fatalf("cycles = %d, want few (ranks batching together)", c)
	}
}

func TestGhostRecordsStopAtQuota(t *testing.T) {
	// A tiny quota must bound each cycle's prefetch volume.
	m := workloads.DefaultMPIIOTest()
	m.Procs = 8
	m.FileBytes = 4 << 20
	m.BarrierEvery = 0
	cl := smallCluster(1)
	cfg := DefaultConfig()
	cfg.CacheQuotaBytes = 128 << 10
	r := NewRunner(cl, cfg)
	pr := r.Add(m, ModeDataDriven, AddOptions{RanksPerNode: 8})
	if !r.Run(time.Hour) {
		t.Fatalf("did not finish")
	}
	// More cycles than with the 1MB default: 4MB / (8 ranks x 128KB) = 4+.
	if c := pr.ctrl.Cycles(); c < 3 {
		t.Fatalf("cycles = %d, want several with a 128KB quota", c)
	}
}

func TestGhostEnvHidesRecordedReads(t *testing.T) {
	env := newGhostEnv()
	env.record("f", []extAlias{{Off: 100, Len: 50}})
	if v := env.Value("f", 120); v != 0 {
		t.Fatalf("recorded offset visible: %d", v)
	}
	if v := env.Value("f", 10); v == 0 {
		t.Fatalf("unrecorded offset hidden")
	}
	if v := env.Value("g", 120); v == 0 {
		t.Fatalf("other file hidden")
	}
}

func TestCycleServesWritebackBeforePrefetch(t *testing.T) {
	// A mixed read/write program (s3asim) must never lose dirty data even
	// though read cycles interleave with writeback.
	s := workloads.DefaultS3asim()
	s.Procs = 8
	s.Queries = 8
	s.FragmentBytes = 1 << 20
	cl := smallCluster(1)
	r := NewRunner(cl, DefaultConfig())
	r.Add(s, ModeDataDriven, AddOptions{RanksPerNode: 8})
	if !r.Run(time.Hour) {
		t.Fatalf("did not finish")
	}
	var written int64
	for _, st := range cl.Stores {
		written += st.BytesWritten()
	}
	var want int64
	for q := 0; q < s.Queries; q++ {
		want += s3asimResultBytes(s, q)
	}
	if written < want {
		t.Fatalf("servers saw %d write bytes, want >= %d", written, want)
	}
}

// s3asimResultBytes mirrors the workload's deterministic result size.
func s3asimResultBytes(s workloads.S3asim, q int) int64 {
	span := s.MaxResult - s.MinResult
	if span <= 0 {
		return s.MinResult
	}
	return s.MinResult + workloads.Content("s3asim-result", int64(q))%span
}
