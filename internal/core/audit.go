package core

import (
	"fmt"
	"strings"

	"dualpar/internal/check"
)

// newRunAuditor builds a run's auditor and wires it through every layer:
// the kernel's monotone-clock check, the cluster's dispatcher and byte
// ledgers, the PFS integrity tracker (for the per-cycle writeback coherence
// oracle), and — as programs register — each global cache's used/dirty
// accounting. The auditor is pure bookkeeping driven from simulation
// context; it adds no events, so an audited run's timeline is identical to
// an unaudited one.
func newRunAuditor(r *Runner) *check.Auditor {
	cl := r.cl
	ccfg := cl.Config()
	desc := fmt.Sprintf("%d servers x %d disks, %d compute nodes, seed %d",
		ccfg.DataServers, ccfg.DisksPerRAID, ccfg.ComputeNodes, ccfg.Seed)
	a := check.New(ccfg.Seed, desc)
	a.SetClock(cl.K.Now)
	if o := cl.Obs(); o != nil {
		a.SetInstantSource(func(max int) []string {
			ins := o.Instants()
			if len(ins) > max {
				ins = ins[len(ins)-max:]
			}
			out := make([]string, len(ins))
			for i, in := range ins {
				var b strings.Builder
				fmt.Fprintf(&b, "t=%v %s/%s", in.At, in.Track, in.Name)
				for _, arg := range in.Args {
					fmt.Fprintf(&b, " %s=%s", arg.Key, arg.Val)
				}
				out[i] = b.String()
			}
			return out
		})
	}
	cl.EnableAudit(a)
	cl.FS.EnableIntegrity()
	return a
}

// Auditor returns the run auditor (nil unless Config.Audit was set).
func (r *Runner) Auditor() *check.Auditor { return r.audit }

// AuditErr returns the first violated invariant of an audited run, nil when
// every oracle held (or audit is off). Call after Run.
func (r *Runner) AuditErr() error {
	if r.audit == nil {
		return nil
	}
	return r.audit.Err()
}
