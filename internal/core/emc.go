package core

import (
	"sort"
	"time"

	"dualpar/internal/disk"
	"dualpar/internal/mpiio"
	"dualpar/internal/obs"
)

// emc is the Execution Mode Control daemon (paper §IV-B). Conceptually it
// runs on the metadata server; every slot it gathers
//
//   - aveSeekDist: mean disk seek distance across the data servers'
//     locality daemons (delta over the slot), and
//   - aveReqDist: mean distance between adjacent requests after sorting
//     each program's logged requests by file offset — the best order a
//     data-driven execution could achieve,
//
// and switches a program into data-driven mode when its I/O ratio exceeds
// IORatioThreshold and aveSeekDist/aveReqDist exceeds T_improvement. It
// reverts when the program stops being I/O bound and disables data-driven
// mode for good when the mean mis-prefetch ratio exceeds the threshold.
type emc struct {
	r *Runner

	lastDisk  []disk.Stats
	lastIO    []time.Duration
	lastComp  []time.Duration
	lastBytes []int64
	lastMis   []int     // consumed mis-sample count per program
	lowSlots  []int     // consecutive low-I/O-ratio slots while data-driven
	highSlots []int     // consecutive qualifying slots while computation-driven
	ratioEWMA []float64 // smoothed per-program I/O ratio
	ratioInit []bool    // ratioEWMA seeded with a first sample
	ticking   bool      // a slot tick is scheduled

	// Decisions logs every evaluation for analysis.
	Decisions []Decision
}

// Decision is one per-slot, per-program EMC evaluation.
type Decision struct {
	At          time.Duration
	Program     int
	IORatio     float64
	AveSeekDist float64 // sectors; median of per-server means
	AveReqDist  float64 // sectors
	Improvement float64
	MisRatio    float64
	DataDriven  bool
	// PerServerSeek lists the per-server mean seek distances behind
	// AveSeekDist (servers idle over the slot omitted). Shared by all
	// programs evaluated in the same slot.
	PerServerSeek []float64
}

func newEMC(r *Runner) *emc {
	return &emc{r: r}
}

// initState sizes the per-server and per-program sampling state.
func (e *emc) initState() {
	e.lastDisk = make([]disk.Stats, len(e.r.cl.Stores))
	e.ensure()
}

// ensure grows the per-program state arrays to cover programs added while
// the simulation is running (arrival drivers, closed loops).
func (e *emc) ensure() {
	n := len(e.r.progs)
	for len(e.lastIO) < n {
		e.lastIO = append(e.lastIO, 0)
		e.lastComp = append(e.lastComp, 0)
		e.lastBytes = append(e.lastBytes, 0)
		e.lastMis = append(e.lastMis, 0)
		e.lowSlots = append(e.lowSlots, 0)
		e.highSlots = append(e.highSlots, 0)
		e.ratioEWMA = append(e.ratioEWMA, 0)
		e.ratioInit = append(e.ratioInit, false)
	}
}

// start arms the slot chain. It stops once every program has finished, so
// the simulation can drain; a mid-run Add re-arms it (Runner.Add).
func (e *emc) start() {
	e.initState()
	e.arm()
}

// arm schedules the next slot tick unless one is already pending.
func (e *emc) arm() {
	if e.ticking {
		return
	}
	e.ticking = true
	e.r.cl.K.After(e.r.cfg.SlotEvery, e.tick)
}

func (e *emc) tick() {
	e.ticking = false
	e.slot()
	for _, pr := range e.r.progs {
		if !pr.Done {
			e.arm()
			return
		}
	}
}

// slot is one sampling period.
func (e *emc) slot() {
	e.ensure()
	now := e.r.cl.K.Now()
	aveSeek, perSeek := e.sampleServers()
	// ReqDist is a system-wide metric (§IV-B): the logs of all registered
	// programs are pooled before sorting per file.
	var pooled []mpiio.ReqRecord
	drained := make([][]mpiio.ReqRecord, len(e.r.progs))
	for i, pr := range e.r.progs {
		if pr.Done || now < pr.startAt {
			continue
		}
		drained[i] = pr.instr.DrainLog()
		if pr.mode == ModeDualPar || pr.mode == ModeDataDriven {
			pooled = append(pooled, drained[i]...)
		}
	}
	reqDist := reqDistSectors(pooled)
	improvement := aveSeek / reqDist
	for i, pr := range e.r.progs {
		if pr.Done || now < pr.startAt {
			continue
		}
		// Per-slot I/O ratio from instrumentation deltas.
		var ioT, compT time.Duration
		var bytes int64
		for rnk := range pr.instr.Ranks {
			rs := &pr.instr.Ranks[rnk]
			ioT += rs.IOTime
			compT += rs.ComputeTime
			bytes += rs.Bytes
		}
		dIO, dComp, dBytes := ioT-e.lastIO[i], compT-e.lastComp[i], bytes-e.lastBytes[i]
		e.lastIO[i], e.lastComp[i], e.lastBytes[i] = ioT, compT, bytes
		ioRatio := 0.0
		if dIO+dComp > 0 {
			ioRatio = float64(dIO) / float64(dIO+dComp)
			// A data-driven cycle alternates suspension-heavy and
			// consumption-heavy slots; smoothing keeps single consumption
			// slots from reading as "no longer I/O bound".
			if !e.ratioInit[i] {
				e.ratioInit[i] = true
				e.ratioEWMA[i] = ioRatio
			} else {
				e.ratioEWMA[i] = 0.5*e.ratioEWMA[i] + 0.5*ioRatio
			}
			ioRatio = e.ratioEWMA[i]
		}
		// Per-rank consumption rate feeds the cycle fill deadline.
		if dBytes > 0 {
			perRank := float64(dBytes) / float64(pr.prog.Ranks()) / e.r.cfg.SlotEvery.Seconds()
			pr.recentRankBps = 0.5*pr.recentRankBps + 0.5*perRank
		}

		if pr.mode != ModeDualPar && pr.mode != ModeDataDriven {
			continue
		}

		// Mis-prefetch: mean of new samples this slot.
		mis, nMis := 0.0, 0
		samples := pr.misSamples
		for _, s := range samples[e.lastMis[i]:] {
			mis += s
			nMis++
		}
		e.lastMis[i] = len(samples)
		if nMis > 0 {
			mis /= float64(nMis)
		}

		if !pr.disabled {
			e.applyDecision(i, pr, dIO+dComp > 0, ioRatio, improvement, mis, nMis)
		}
		e.Decisions = append(e.Decisions, Decision{
			At:            now,
			Program:       i,
			IORatio:       ioRatio,
			AveSeekDist:   aveSeek,
			AveReqDist:    reqDist,
			Improvement:   improvement,
			MisRatio:      mis,
			DataDriven:    pr.dataDriven,
			PerServerSeek: perSeek,
		})
		dd := "off"
		if pr.dataDriven {
			dd = "on"
		}
		e.r.cl.Obs().Instant("emc.decision", "emc", now,
			obs.I64("program", int64(i)), obs.F64("io_ratio", ioRatio),
			obs.F64("improvement", improvement), obs.F64("mis_ratio", mis),
			obs.Str("data_driven", dd))
	}
}

// applyDecision runs the mode-switch hysteresis for program i (the switch
// over EMC's evidence, extracted so slot sequences can be driven directly
// in tests). active reports whether the slot saw any instrumented rank
// activity (dIO+dComp > 0); an idle slot — every rank suspended on a cycle
// fill, or a program between phases — carries no evidence in either
// direction and must not reset the consecutive-slot counters.
func (e *emc) applyDecision(i int, pr *ProgramRun, active bool, ioRatio, improvement, mis float64, nMis int) {
	cfg := e.r.cfg
	switch {
	case nMis >= cfg.MisCyclesToDisable && mis > cfg.MisPrefetchThreshold:
		// Too much wasted prefetching: turn data-driven off for
		// good (§IV-C) — a one-time cost for the program. This
		// guard applies even when data-driven mode was forced. A
		// single bad cycle (mode-transition turbulence) is not
		// enough evidence; the PEC fast path uses the same
		// consecutive-cycle rule.
		pr.disabled = true
		pr.setDataDriven(false)
	case pr.mode != ModeDualPar:
		// ModeDataDriven pins the mode on; only the mis-prefetch
		// guard above can turn it off. A pinned program the arbiter
		// denied at Add retries its grant every slot.
		if !pr.dataDriven {
			pr.tryEnterDataDriven()
		}
	case !active:
		// No evidence either way: leave the hysteresis counters alone.
	case !pr.dataDriven && ioRatio > cfg.IORatioThreshold && improvement > cfg.TImprovement:
		// Two consecutive qualifying slots are required: the first
		// slot of a run carries the one-time seek into the file
		// region and must not trip the mode.
		e.highSlots[i]++
		if e.highSlots[i] >= 2 {
			if pr.tryEnterDataDriven() {
				e.highSlots[i] = 0
			} else {
				// Arbiter denial: the program stays eligible and asks
				// again next qualifying slot instead of re-earning its
				// two-slot streak.
				e.highSlots[i] = 2
			}
		}
		e.lowSlots[i] = 0
	case pr.dataDriven && ioRatio < cfg.IORatioThreshold/2:
		// The program stopped being I/O bound. Two consecutive low
		// slots are required before reverting (hysteresis against
		// flapping); the seek-distance condition is not re-checked
		// while data-driven because the improvement it causes would
		// immediately un-trigger it.
		e.lowSlots[i]++
		if e.lowSlots[i] >= 2 {
			pr.setDataDriven(false)
			e.lowSlots[i] = 0
		}
	default:
		e.lowSlots[i] = 0
		e.highSlots[i] = 0
	}
}

// sampleServers returns the per-slot seek-distance signal: the median of
// the per-server mean seek distances (sectors per access) over the last
// slot, plus the per-server means themselves (servers idle over the slot
// omitted). The median makes the aggregate robust to a single straggler:
// one degraded server whose head travel explodes can neither fake a
// system-wide improvement signal nor mask a real one, both of which a
// pooled mean allows.
func (e *emc) sampleServers() (float64, []float64) {
	per := make([]float64, 0, len(e.r.cl.Stores))
	for i, st := range e.r.cl.Stores {
		s := st.Device().Stats()
		d := s.Sub(e.lastDisk[i])
		e.lastDisk[i] = s
		if d.Accesses == 0 {
			continue
		}
		// A crash-stopped server's head is parked, not well-placed: its
		// stale (often zero-seek) sample would drag the median down and
		// fake an improvement signal. The delta above still consumes the
		// window so recovery restarts sampling cleanly.
		if !e.r.cl.FS.Alive(i) {
			continue
		}
		per = append(per, float64(d.SeekSectors)/float64(d.Accesses))
	}
	if len(per) == 0 {
		return 0, nil
	}
	return median(per), per
}

// median returns the middle value of xs (mean of the two middles for even
// length) without mutating it.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// reqDistSectors computes aveReqDist: requests are grouped by file, sorted
// by offset, and the mean start-to-start distance of adjacent requests is
// returned in sectors (never below one request's size — the floor of what
// the disk must travel per request even in the perfect order).
func reqDistSectors(records []mpiio.ReqRecord) float64 {
	if len(records) == 0 {
		return 1
	}
	byFile := make(map[string][]mpiio.ReqRecord)
	var files []string
	for _, r := range records {
		if _, ok := byFile[r.File]; !ok {
			files = append(files, r.File)
		}
		byFile[r.File] = append(byFile[r.File], r)
	}
	sort.Strings(files)
	var total float64
	var n int
	for _, f := range files {
		rs := byFile[f]
		sort.Slice(rs, func(i, j int) bool { return rs[i].Ext.Off < rs[j].Ext.Off })
		for i := 1; i < len(rs); i++ {
			d := rs[i].Ext.Off - rs[i-1].Ext.Off
			if d < rs[i-1].Ext.Len {
				d = rs[i-1].Ext.Len // overlapping/duplicate requests
			}
			total += float64(d)
			n++
		}
		if len(rs) == 1 {
			total += float64(rs[0].Ext.Len)
			n++
		}
	}
	if n == 0 {
		return 1
	}
	sectors := total / float64(n) / 512
	if sectors < 1 {
		sectors = 1
	}
	return sectors
}
