package core

import (
	"testing"
	"testing/quick"
	"time"

	"dualpar/internal/workloads"
)

// runInvariants executes a program and checks the end-state invariants that
// must hold regardless of mode: all ranks finished, instrumented bytes match
// the program's data volume, no dirty data is stranded in the cache, and
// the cycle controller is quiescent.
func runInvariants(t *testing.T, prog workloads.Program, mode Mode, wantBytes int64) {
	t.Helper()
	cl := smallCluster(1)
	r := NewRunner(cl, DefaultConfig())
	pr := r.Add(prog, mode, AddOptions{RanksPerNode: 8})
	if !r.Run(time.Hour) {
		t.Fatalf("%s/%v did not finish", prog.Name(), mode)
	}
	if got := pr.Instr().TotalBytes(); got != wantBytes {
		t.Errorf("%s/%v: instr bytes %d, want %d", prog.Name(), mode, got, wantBytes)
	}
	if pr.cache != nil {
		if d := pr.cache.DirtyBytes(); d != 0 {
			t.Errorf("%s/%v: %d dirty bytes stranded", prog.Name(), mode, d)
		}
	}
	if pr.ctrl != nil && pr.ctrl.state != ctrlIdle {
		t.Errorf("%s/%v: controller not idle at exit", prog.Name(), mode)
	}
	for rnk := range pr.Instr().Ranks {
		rs := pr.Instr().Ranks[rnk]
		if rs.IOTime < 0 || rs.ComputeTime < 0 {
			t.Errorf("%s/%v: negative times at rank %d: %+v", prog.Name(), mode, rnk, rs)
		}
	}
}

func TestInvariantsAcrossModesAndWorkloads(t *testing.T) {
	demo := workloads.DefaultDemo()
	demo.FileBytes = 8 << 20
	mpiio := workloads.DefaultMPIIOTest()
	mpiio.Procs = 16
	mpiio.FileBytes = 8 << 20
	mpiioW := mpiio
	mpiioW.Write = true
	nc := workloads.DefaultNoncontig()
	nc.Procs = 16
	nc.FileBytes = 8 << 20
	btio := workloads.DefaultBTIO()
	btio.Procs = 16
	btio.TotalBytes = 2 << 20
	btio.Steps = 2

	cases := []struct {
		prog  workloads.Program
		bytes int64
	}{
		{demo, 8 << 20},
		{mpiio, 8 << 20},
		{mpiioW, 8 << 20},
		{nc, 8 << 20},
		{btio, btio.StepBytes() * int64(btio.Steps)},
	}
	for _, c := range cases {
		for _, mode := range []Mode{ModeVanilla, ModeCollective, ModeStrategy2, ModeDataDriven} {
			if mode == ModeCollective && c.prog.Name() == "demo" {
				continue // demo is defined as an independent-I/O program
			}
			runInvariants(t, c.prog, mode, c.bytes)
		}
	}
}

// Property: arbitrary small demo configurations finish under every mode and
// serve exactly the file's bytes.
func TestDemoConfigSpaceInvariant(t *testing.T) {
	f := func(procsSeed, segSeed, callSeed uint8) bool {
		procs := 2 + int(procsSeed)%6            // 2..7
		seg := int64(1+int(segSeed)%8) * 4 << 10 // 4..32 KB
		calls := int64(2 + int(callSeed)%6)      // 2..7 calls
		d := workloads.DefaultDemo()
		d.Procs = procs
		d.SegBytes = seg
		d.FileBytes = calls * int64(procs) * int64(d.SegsPerCall) * seg
		cl := smallCluster(int64(procsSeed)<<16 | int64(segSeed)<<8 | int64(callSeed))
		r := NewRunner(cl, DefaultConfig())
		pr := r.Add(d, ModeDataDriven, AddOptions{RanksPerNode: 4})
		if !r.Run(time.Hour) {
			return false
		}
		return pr.Instr().TotalBytes() == d.FileBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The simulation must be bit-identical for equal seeds across every mode.
func TestDeterminismAcrossModes(t *testing.T) {
	for _, mode := range []Mode{ModeVanilla, ModeCollective, ModeStrategy2, ModeDataDriven, ModeDualPar} {
		elapsed := func() time.Duration {
			m := workloads.DefaultMPIIOTest()
			m.Procs = 16
			m.FileBytes = 4 << 20
			cl := smallCluster(42)
			r := NewRunner(cl, DefaultConfig())
			pr := r.Add(m, mode, AddOptions{RanksPerNode: 8})
			if !r.Run(time.Hour) {
				t.Fatalf("mode %v did not finish", mode)
			}
			return pr.Elapsed()
		}
		if a, b := elapsed(), elapsed(); a != b {
			t.Fatalf("mode %v nondeterministic: %v vs %v", mode, a, b)
		}
	}
}

// Different seeds must (almost surely) give different timings — the jitter
// sources are actually wired in.
func TestSeedsActuallyMatter(t *testing.T) {
	run := func(seed int64) time.Duration {
		m := workloads.DefaultMPIIOTest()
		m.Procs = 16
		m.FileBytes = 4 << 20
		cl := smallCluster(seed)
		r := NewRunner(cl, DefaultConfig())
		pr := r.Add(m, ModeVanilla, AddOptions{RanksPerNode: 8})
		r.Run(time.Hour)
		return pr.Elapsed()
	}
	if run(1) == run(2) {
		t.Fatalf("different seeds produced identical elapsed times")
	}
}
